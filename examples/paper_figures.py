#!/usr/bin/env python
"""Regenerate every table and figure of the paper's evaluation section.

Runs the full harness — Tables 1-4, Figure 3 (rooflines), Figures 4-7
(kernel performance on the four platforms) and the Observations 1-5
check — at a configurable downscale factor, printing each report and
writing CSVs under results/.  This is the script behind EXPERIMENTS.md.

Run:  python examples/paper_figures.py [--scale 2000] [--quick]
"""

import argparse
import os
import sys
import time

from repro.bench import (
    RunnerConfig,
    figure3,
    figure_perf,
    observations,
    table1,
    table2,
    table3,
    table4,
)

RESULTS = os.path.join(os.path.dirname(__file__), "..", "results")

QUICK_REAL = ["vast", "nell2", "darpa", "crime4d", "nips4d", "enron4d"]
QUICK_SYN = ["regS", "regM", "irrS", "irrM", "regS4d", "irrS4d", "irr2S4d"]


def emit(report):
    os.makedirs(RESULTS, exist_ok=True)
    print(report.render())
    print()
    path = os.path.join(RESULTS, f"{report.exp_id}.csv")
    report.save_csv(path)
    print(f"[saved {path}]\n")


def main(argv=None) -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--scale", type=float, default=2000.0,
                    help="dataset downscale factor vs the paper (default 2000)")
    ap.add_argument("--quick", action="store_true",
                    help="restrict figures to a representative tensor subset")
    ap.add_argument("--full-host", action="store_true",
                    help="also measure host wall-clock for CPU figures (slower)")
    args = ap.parse_args(argv)

    t0 = time.time()
    emit(table1())
    emit(table2(scale=args.scale))
    emit(table3(scale=args.scale))
    emit(table4())
    emit(figure3())

    keys_real = QUICK_REAL if args.quick else None
    keys_syn = QUICK_SYN if args.quick else None
    for fig in ("fig4", "fig5", "fig6", "fig7"):
        for dataset, keys in (("real", keys_real), ("synthetic", keys_syn)):
            cfg = RunnerConfig(
                measure_host=args.full_host and fig in ("fig4", "fig5"),
                cache_scale=args.scale,
                repeats=1,
            )
            rep = figure_perf(
                fig, dataset=dataset, scale=args.scale, keys=keys, config=cfg
            )
            rep.exp_id = f"{fig}-{dataset}"
            emit(rep)

    emit(
        observations(
            scale=args.scale,
            keys_real=keys_real,
            keys_syn=keys_syn,
        )
    )
    print(f"total: {time.time() - t0:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
