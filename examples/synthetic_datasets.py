#!/usr/bin/env python
"""Synthetic tensor generation and graph-property validation (Section 4).

Generates scaled-down versions of the paper's Table 3 tensors with both
generators (stochastic Kronecker and biased power-law), verifies the
properties the paper selects the generators for — heavy-tailed degree
distributions, mass concentrated in hubs — and prints the surrogate
mapping for the Table 2 real tensors.

Run:  python examples/synthetic_datasets.py
"""

from repro.datasets import REAL_TENSORS, make_surrogate
from repro.generate import (
    degree_distribution,
    degree_tail_ratio,
    get_synthetic,
    powerlaw_exponent_mle,
)
from repro.sptensor import summarize
from repro.util.tables import render_table

SCALE = 1000.0


def main() -> None:
    rows = []
    for key in ("regS", "irrS", "regS4d", "irrS4d", "irr2S4d"):
        cfg = get_synthetic(key)
        t = cfg.generate(scale=SCALE, seed=11)
        s = summarize(t, key)
        deg = degree_distribution(t, 0)
        rows.append(
            [
                key,
                {"kron": "Kronecker", "pl": "power-law"}[cfg.generator],
                " x ".join(map(str, s.shape)),
                s.nnz,
                f"{s.density:.2e}",
                f"{powerlaw_exponent_mle(deg, dmin=2):.2f}",
                f"{degree_tail_ratio(deg):.1%}",
            ]
        )
    print(render_table(
        ["tensor", "generator", "dims", "nnz", "density",
         "alpha (MLE)", "top-1% share"],
        rows,
        title=f"Table 3 tensors at scale {SCALE:g}",
    ))
    print("\n(top-1% share = non-zeros owned by the top 1% of mode-0 "
          "indices; heavy tails concentrate mass in hubs)\n")

    rows = []
    for info in REAL_TENSORS[:6]:
        t = make_surrogate(info.key, scale=SCALE, seed=23)
        s = summarize(t, info.name)
        rows.append(
            [
                info.name,
                " x ".join(f"{d:,}" for d in info.shape),
                f"{info.density:.1e}",
                " x ".join(map(str, s.shape)),
                f"{s.density:.1e}",
                s.nnz,
            ]
        )
    print(render_table(
        ["tensor", "paper dims", "paper density", "surrogate dims",
         "surrogate density", "surrogate nnz"],
        rows,
        title="Table 2 surrogates (shape ratios and density preserved)",
    ))


if __name__ == "__main__":
    main()
