#!/usr/bin/env python
"""Measured locality study: why HiCOO's Morton order helps (Observation 4).

The paper attributes HiCOO's CPU advantage to "better data locality";
this example makes that claim observable.  It generates a Kronecker
tensor, extracts the *gather traces* of Ttv (the vector accesses in the
order each layout visits non-zeros), and replays them through a simulated
LRU cache — for plain sorted COO order, HiCOO's Morton block order, and a
degree-reordered layout — then sweeps the cache size to find where the
orders converge.

Run:  python examples/locality_study.py
"""

from repro.cachesim import simulate_trace, ttv_gather_trace
from repro.generate import kronecker_tensor
from repro.sptensor import HiCOOTensor, degree_reorder
from repro.util.tables import render_table


def main() -> None:
    x = kronecker_tensor((4096, 4096, 4096), 20_000, seed=0)
    coo = x.copy().sort()
    hic = HiCOOTensor.from_coo(coo, 128)
    reord, _ = degree_reorder(coo)
    reord.sort()
    print(f"tensor: {x}")
    print(f"hicoo:  {hic.nblocks} blocks, "
          f"{x.nnz / hic.nblocks:.1f} nnz/block\n")

    rows = []
    for cache_kb in (2, 4, 8, 16, 64):
        cache = cache_kb * 1024
        for mode, label in ((0, "mode 0 (sort-major)"), (1, "mode 1"), (2, "mode 2")):
            a = simulate_trace(ttv_gather_trace(coo, mode), cache)
            b = simulate_trace(ttv_gather_trace(hic, mode), cache)
            c = simulate_trace(ttv_gather_trace(reord, mode), cache)
            rows.append(
                [f"{cache_kb} KB", label,
                 f"{a.miss_rate:.3f}", f"{b.miss_rate:.3f}",
                 f"{c.miss_rate:.3f}"]
            )
    print(render_table(
        ["cache", "gather mode", "COO order", "HiCOO (Morton)", "degree-reordered"],
        rows,
        title="Ttv vector-gather miss rates (LRU cache simulation)",
    ))

    print("""
reading the table:
 - on COO's sort-major mode 0, the sorted order is nearly sequential and
   unbeatable — exactly the 'mode orientation' trade-off of Section 1;
 - on modes 1 and 2, small caches punish COO's scattered gathers while
   Morton-ordered blocks keep revisiting the same vector lines: the
   measured mechanism behind HiCOO's CPU advantage (Observation 4);
 - once the cache holds the whole gathered vector, the orders converge —
   the cache-capacity crossover of Observation 2.""")

    # sanity assertions matching the narrative
    small = 4 * 1024
    a = simulate_trace(ttv_gather_trace(coo, 1), small)
    b = simulate_trace(ttv_gather_trace(hic, 1), small)
    assert b.miss_rate < a.miss_rate
    big = 1 << 22
    a2 = simulate_trace(ttv_gather_trace(coo, 1), big)
    b2 = simulate_trace(ttv_gather_trace(hic, 1), big)
    assert abs(a2.miss_rate - b2.miss_rate) < 0.02
    print("\nOK: Morton order wins on small caches, converges on large")


if __name__ == "__main__":
    main()
