#!/usr/bin/env python
"""Tucker decomposition with sparse TTM-chains (Ttm workload).

TTM-chain is the paper's first named future-work operation; this example
uses it twice: directly (projecting a sparse tensor onto small subspaces)
and inside HOOI, the alternating Tucker algorithm whose per-mode update is
a TTM-chain over all other modes.

Run:  python examples/tucker_ttm_chain.py
"""

import numpy as np

from repro.methods import ttm_chain, tucker_hooi
from repro.sptensor import COOTensor
from repro.sptensor.dense import unfold


def planted_tucker_tensor(shape, ranks, seed=0, factor_fill=0.25):
    """An *exactly* Tucker-(ranks) sparse tensor: dense small core
    contracted with sparse factor matrices (sparsity lives in the
    factors so the multilinear rank is preserved)."""
    rng = np.random.default_rng(seed)
    core = rng.standard_normal(ranks)
    dense = core
    for mode, (s, r) in enumerate(zip(shape, ranks)):
        u = rng.standard_normal((s, r))
        u[rng.random((s, r)) > factor_fill] = 0.0
        dense = np.moveaxis(np.tensordot(dense, u, axes=([mode], [1])), -1, mode)
    return COOTensor.from_dense(dense)


def main() -> None:
    shape, ranks = (40, 36, 30), (4, 3, 3)
    x = planted_tucker_tensor(shape, ranks, seed=5)
    print(f"tensor: {x}  (planted Tucker ranks {ranks})")

    # Direct TTM-chain: project all modes onto random orthonormal bases.
    rng = np.random.default_rng(1)
    mats = [np.linalg.qr(rng.standard_normal((s, 5)))[0] for s in shape]
    small = ttm_chain(x, mats, [0, 1, 2])
    print(f"TTM-chain projection: {x.shape} -> {small.shape} "
          f"({small.nnz} stored entries)")
    assert small.shape == (5, 5, 5)

    # Validate the chain against dense tensordot.
    dense = x.to_dense().astype(np.float64)
    want = dense
    for mode, u in enumerate(mats):
        want = np.moveaxis(np.tensordot(want, u, axes=([mode], [0])), -1, mode)
    np.testing.assert_allclose(small.to_dense(), want, rtol=1e-5, atol=1e-8)
    print("chain matches dense tensordot: OK")

    # HOOI: recover the planted subspaces.
    result = tucker_hooi(x, ranks, n_iters=10, seed=2)
    print(f"\nHOOI fit per iteration: {[round(f, 4) for f in result.fits]}")
    assert result.fits[-1] > 0.95, "HOOI failed to recover Tucker structure"

    # Core energy captures the tensor norm.
    core_norm = np.linalg.norm(result.core)
    x_norm = np.linalg.norm(x.values.astype(np.float64))
    print(f"||core|| / ||X|| = {core_norm / x_norm:.4f}")
    print("OK: sparse TTM-chain + HOOI recover the planted Tucker structure")


if __name__ == "__main__":
    main()
