#!/usr/bin/env python
"""Roofline analysis of the suite's kernels (Figure 3 + Observation 2).

Prints the roofline ceilings of the paper's four platforms with the five
kernels marked at their Table 1 operational intensities, characterizes
the *host* machine with ERT-style micro-kernels, then shows per-tensor
accurate OIs and roofline bounds for a generated tensor — including the
cache-residency effect that pushes small tensors above the DRAM roofline.

Run:  python examples/roofline_analysis.py
"""

from repro.generate import powerlaw_tensor
from repro.roofline import (
    PLATFORMS,
    RooflineModel,
    extract_features,
    measure_host,
)
from repro.util.tables import render_table


def main() -> None:
    rows = []
    for p in PLATFORMS:
        model = RooflineModel(p)
        for mark in model.kernel_marks():
            rows.append(
                [p.name, mark.kernel.value, f"{mark.oi:.4f}",
                 f"{mark.attainable_gflops:.1f}",
                 f"{p.peak_sp_gflops:.0f}", f"{p.ridge_oi:.1f}"]
            )
    print(render_table(
        ["platform", "kernel", "OI", "ERT-DRAM bound GF", "peak GF", "ridge OI"],
        rows,
        title="Figure 3: kernel OIs on each platform's roofline",
    ))
    print("\nevery kernel OI << ridge OI: all kernels are memory bound\n")

    host = measure_host()
    print(
        f"host ERT: GEMM {host.peak_sp_gflops:.1f} GFLOPS, "
        f"DRAM triad {host.ert_dram_bw_gbs:.1f} GB/s, "
        f"LLC/DRAM {host.llc_bw_ratio:.2f}x, "
        f"ridge OI {host.ridge_oi:.2f}"
    )

    # Per-tensor accurate OIs (the Figures 4-7 bounds).
    x = powerlaw_tensor((3000, 3000, 24), nnz=40_000, dense_modes=(2,), seed=3)
    feats = extract_features(x, "demo", 128)
    model = RooflineModel(PLATFORMS[0])  # Bluesky
    rows = []
    for kernel in ("tew", "ts", "ttv", "ttm", "mttkrp"):
        for fmt in ("coo", "hicoo"):
            from repro.roofline import accurate_oi

            oi = accurate_oi(feats, kernel, fmt)
            rows.append([kernel, fmt, f"{oi:.4f}",
                         f"{model.attainable(oi):.2f}"])
    print()
    print(render_table(
        ["kernel", "format", "accurate OI", "Bluesky bound GF"],
        rows,
        title=f"per-tensor bounds for {x!r}",
    ))


if __name__ == "__main__":
    main()
