#!/usr/bin/env python
"""CP decomposition of a sparse tensor with CP-ALS (Mttkrp workload).

The paper motivates Mttkrp as the bottleneck of CANDECOMP/PARAFAC; this
example plants a ground-truth rank-R structure, fits CP-ALS using the
suite's sparse Mttkrp in *both* COO and HiCOO formats, and shows that
(1) the fit recovers the planted structure, and (2) both formats walk the
identical optimization trajectory.

Run:  python examples/cp_decomposition.py
"""

import numpy as np

from repro.methods import cp_als
from repro.sptensor import COOTensor, HiCOOTensor
from repro.sptensor.dense import outer


def planted_lowrank_tensor(shape, rank, seed=0, factor_fill=0.3):
    """An *exactly* rank-R sparse tensor: sum of outer products of sparse
    factor columns (zeroing factor entries keeps the rank, unlike
    thresholding the dense sum, which destroys it)."""
    rng = np.random.default_rng(seed)
    factors = []
    for s in shape:
        f = np.abs(rng.random((s, rank))) + 0.1
        f[rng.random((s, rank)) > factor_fill] = 0.0
        factors.append(f)
    dense = np.zeros(shape)
    for r in range(rank):
        dense += outer([f[:, r] for f in factors])
    return COOTensor.from_dense(dense)


def main() -> None:
    shape, true_rank = (60, 50, 40), 4
    x = planted_lowrank_tensor(shape, true_rank, seed=3)
    print(f"tensor: {x}  (planted rank {true_rank})")

    res_coo = cp_als(x, rank=8, n_iters=40, seed=1)
    print(
        f"COO   CP-ALS: fit {res_coo.fits[-1]:.4f} after "
        f"{res_coo.n_iters} iters (converged={res_coo.converged})"
    )

    h = HiCOOTensor.from_coo(x, 16)
    res_hicoo = cp_als(h, rank=8, n_iters=40, seed=1)
    print(
        f"HiCOO CP-ALS: fit {res_hicoo.fits[-1]:.4f} after "
        f"{res_hicoo.n_iters} iters"
    )

    assert res_coo.fits[-1] > 0.85, "CP-ALS failed to capture planted structure"
    assert abs(res_coo.fits[-1] - res_hicoo.fits[-1]) < 1e-6, (
        "COO and HiCOO Mttkrp produced different ALS trajectories"
    )
    print("\nfit trajectory (first 10):",
          [round(f, 4) for f in res_coo.fits[:10]])
    print("weights:", np.sort(res_coo.weights)[::-1].round(2))
    print("OK: both formats agree and the planted structure is recovered")


if __name__ == "__main__":
    main()
