#!/usr/bin/env python
"""Orthogonal tensor decomposition via the tensor power method (Ttv).

The paper motivates Ttv through the tensor power method used in latent-
variable learning (Anandkumar et al.).  This example builds a symmetric
tensor with known orthogonal components and recovers the components with
the suite's sparse Ttv kernel, including sparse deflation via Tew.

Run:  python examples/tensor_power_method.py
"""

import numpy as np

from repro.methods import symmetric_rank1_tensor, tensor_power_method


def main() -> None:
    rng = np.random.default_rng(42)
    dim, k = 40, 4
    # Orthonormal ground-truth components with distinct weights.
    q, _ = np.linalg.qr(rng.standard_normal((dim, k)))
    weights = np.array([9.0, 6.5, 4.0, 2.0])
    t = symmetric_rank1_tensor(weights, q)
    print(f"symmetric tensor: {t}  (components: {k})")

    result = tensor_power_method(t, n_components=k, n_restarts=6, seed=0)

    print("\nrecovered vs true eigenvalues:")
    for i, (lam, its) in enumerate(zip(result.eigenvalues, result.iterations)):
        print(f"  lambda_{i}: {lam:8.4f}  (true {weights[i]:.1f}, "
              f"{its} power iterations)")

    # Verify recovery: eigenvalues match and eigenvectors align (up to sign).
    for i in range(k):
        assert abs(result.eigenvalues[i] - weights[i]) < 1e-2, "eigenvalue off"
        align = abs(result.eigenvectors[i] @ q[:, i])
        assert align > 0.999, f"component {i} misaligned ({align:.4f})"
    print("\nOK: all components recovered via sparse Ttv + Tew deflation")


if __name__ == "__main__":
    main()
