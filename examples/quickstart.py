#!/usr/bin/env python
"""Quickstart: run the five benchmark kernels in COO and HiCOO.

Builds a power-law tensor (the suite's synthetic generator), converts it
to HiCOO, runs Tew/Ts/Ttv/Ttm/Mttkrp in both formats, validates the
results against each other, and prints measured host GFLOPS per kernel.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro
from repro.generate import powerlaw_tensor
from repro.kernels import kernel_cost
from repro.roofline import extract_features
from repro.util.tables import render_table
from repro.util.timing import time_call

RANK = 16
BLOCK = 128


def main() -> None:
    # A 3rd-order power-law tensor: two sparse hub modes, one short dense.
    x = powerlaw_tensor((4000, 4000, 32), nnz=60_000, dense_modes=(2,), seed=7)
    x.sort()
    h = repro.HiCOOTensor.from_coo(x, BLOCK)
    feats = extract_features(x, "quickstart", BLOCK, h)
    print(f"tensor: {x}")
    print(f"hicoo:  {h}  (compression {h.compression_ratio():.2f}x)")

    rng = np.random.default_rng(0)
    v = rng.random(x.shape[2]).astype(np.float32)
    mats = [rng.random((s, RANK)).astype(np.float32) for s in x.shape]

    runs = {
        ("tew", "coo"): lambda: repro.tew(x, x, "add", assume_same_pattern=True),
        ("tew", "hicoo"): lambda: repro.tew(h, h, "add", assume_same_pattern=True),
        ("ts", "coo"): lambda: repro.ts(x, 1.5, "mul"),
        ("ts", "hicoo"): lambda: repro.ts(h, 1.5, "mul"),
        ("ttv", "coo"): lambda: repro.ttv(x, v, 2),
        ("ttv", "hicoo"): lambda: repro.ttv(h, v, 2),
        ("ttm", "coo"): lambda: repro.ttm(x, mats[2], 2),
        ("ttm", "hicoo"): lambda: repro.ttm(h, mats[2], 2),
        ("mttkrp", "coo"): lambda: repro.mttkrp(x, mats, 0),
        ("mttkrp", "hicoo"): lambda: repro.mttkrp(h, mats, 0),
    }

    rows = []
    results = {}
    for (kernel, fmt), fn in runs.items():
        timing = time_call(fn, repeats=3, warmup=1)
        cost = kernel_cost(
            kernel,
            fmt,
            m=feats.nnz,
            mf=int(feats.mf_avg),
            r=RANK,
            nb=feats.nb,
            block_size=BLOCK,
        )
        results[(kernel, fmt)] = timing.result
        rows.append(
            [
                kernel,
                fmt,
                f"{timing.seconds * 1e3:.2f} ms",
                f"{cost.flops / timing.seconds / 1e9:.3f}",
                f"{cost.oi:.3f}",
            ]
        )
    print()
    print(render_table(["kernel", "format", "time", "GFLOPS", "OI"], rows,
                       title="measured host performance"))

    # Cross-format validation: COO and HiCOO must agree numerically.
    a = results[("mttkrp", "coo")]
    b = results[("mttkrp", "hicoo")]
    assert np.allclose(a, b, rtol=1e-3), "COO/HiCOO Mttkrp disagree!"
    print("\nCOO and HiCOO Mttkrp agree: OK")


if __name__ == "__main__":
    main()
