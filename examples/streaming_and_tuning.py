#!/usr/bin/env python
"""Streaming ingestion, locality reordering and format auto-tuning.

An end-to-end pipeline on the suite's "extension" subsystems:

1. ingest a FireHose-style power-law event stream into a tensor
   (duplicate events accumulate);
2. inspect the hub structure, reorder for locality and compare the
   HiCOO blocking quality before/after;
3. ask the tuner which format/block size suits an Mttkrp-heavy workload;
4. track a sliding window over the stream — the anomaly-detection state
   pattern from the paper's application list.

Run:  python examples/streaming_and_tuning.py
"""

import numpy as np

from repro.generate import degree_distribution, powerlaw_stream
from repro.sptensor import blocking_quality, degree_reorder
from repro.stream import SlidingWindowTensor, StreamingTensorBuilder
from repro.tune import recommend_format
from repro.util.tables import render_table

SHAPE = (8000, 8000, 24)
EVENTS = 60_000


def main() -> None:
    # 1. Stream ingestion.
    builder = StreamingTensorBuilder(SHAPE, merge_threshold=8192)
    builder.consume(
        powerlaw_stream(EVENTS, SHAPE, dense_modes=(2,), seed=11, batch=4096)
    )
    tensor = builder.finish()
    print(
        f"ingested {builder.events_seen} events -> {tensor.nnz} distinct "
        f"non-zeros ({builder.merges} staged merges)"
    )
    deg = degree_distribution(tensor, 0)
    print(
        f"hub structure: max degree {int(deg.max())} vs mean "
        f"{deg.mean():.1f} (events concentrate on hot keys)\n"
    )

    # 2. Reordering for locality.
    before = blocking_quality(tensor, 128)
    reordered, _ = degree_reorder(tensor)
    after = blocking_quality(reordered, 128)
    print(render_table(
        ["layout", "HiCOO blocks", "nnz/block", "bytes", "compression"],
        [
            ["as-ingested", before["nblocks"], f"{before['alpha']:.1f}",
             before["hicoo_bytes"], f"{before['compression']:.2f}x"],
            ["degree-reordered", after["nblocks"], f"{after['alpha']:.1f}",
             after["hicoo_bytes"], f"{after['compression']:.2f}x"],
        ],
        title="blocking quality before/after reordering",
    ))
    assert after["nblocks"] <= before["nblocks"]

    # 3. Format auto-tuning.
    print()
    rec = recommend_format(reordered, kernels=["mttkrp", "ttv"])
    print(rec)

    # 4. Sliding-window state.
    print()
    window = SlidingWindowTensor(SHAPE, window=4)
    rng = np.random.default_rng(5)
    sizes = []
    for coords, values in powerlaw_stream(
        20_000, SHAPE, dense_modes=(2,), seed=13, batch=2500
    ):
        state = window.push(coords, values)
        sizes.append(state.nnz)
    print(
        f"sliding window (4 batches): state nnz over time {sizes} — "
        "grows until the window fills, then stabilizes as batches expire"
    )
    assert max(sizes[4:]) <= max(sizes) * 1.2


if __name__ == "__main__":
    main()
