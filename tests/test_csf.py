"""Tests for the CSF extension format."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.sptensor import COOTensor, CSFTensor


class TestRoundtrip:
    def test_natural_order(self, coo3):
        c = CSFTensor.from_coo(coo3)
        assert c.to_coo().allclose(coo3)

    @pytest.mark.parametrize("order", [(0, 1, 2), (2, 1, 0), (1, 0, 2), (1, 2, 0)])
    def test_any_mode_order(self, coo3, order):
        c = CSFTensor.from_coo(coo3, order)
        assert c.mode_order == order
        assert c.to_coo().allclose(coo3)

    def test_4th_order(self, coo4):
        c = CSFTensor.from_coo(coo4, (3, 1, 0, 2))
        assert c.to_coo().allclose(coo4)

    def test_empty(self):
        c = CSFTensor.from_coo(COOTensor.empty((3, 3, 3)))
        assert c.nnz == 0
        assert c.to_coo().nnz == 0

    def test_duplicates_coalesced(self):
        t = COOTensor(
            (3, 3), np.array([[1, 1], [1, 1]]), np.array([1.0, 2.0])
        )
        c = CSFTensor.from_coo(t)
        assert c.nnz == 1
        assert c.values[0] == pytest.approx(3.0)


class TestTreeStructure:
    def test_level_widths_monotone(self, coo3):
        c = CSFTensor.from_coo(coo3)
        widths = c.nodes_per_level()
        assert len(widths) == 3
        assert widths[0] <= widths[1] <= widths[2]
        assert widths[2] == coo3.nnz

    def test_root_level_counts_distinct_indices(self, coo3):
        c = CSFTensor.from_coo(coo3, (1, 0, 2))
        distinct = len(np.unique(coo3.indices[:, 1]))
        assert c.nodes_per_level()[0] == distinct

    def test_fptr_spans_children(self, coo3):
        c = CSFTensor.from_coo(coo3)
        for lvl in range(2):
            assert c.fptr[lvl][0] == 0
            assert c.fptr[lvl][-1] == len(c.fids[lvl + 1])
            assert (np.diff(c.fptr[lvl]) >= 1).all()

    def test_compression_vs_coo(self):
        """CSF shares fiber prefixes, so clustered tensors store fewer
        index words than COO."""
        rng = np.random.default_rng(0)
        # few slices, many entries per slice -> strong prefix sharing
        inds = np.stack(
            [
                rng.integers(0, 4, size=6000),
                rng.integers(0, 50, size=6000),
                rng.integers(0, 5000, size=6000),
            ],
            axis=1,
        )
        t = COOTensor((4, 50, 5000), inds, rng.random(6000)).coalesce()
        c = CSFTensor.from_coo(t)
        assert c.nbytes < t.nbytes

    def test_invalid_mode_order(self, coo3):
        with pytest.raises(ShapeError):
            CSFTensor.from_coo(coo3, (0, 0, 1))
