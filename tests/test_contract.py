"""Tests for sparse contraction and sparse x sparse operand kernels."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.kernels import sparse_contract, sparse_inner, sparse_ttm, sparse_ttv
from repro.sptensor import COOTensor


@pytest.fixture
def x():
    return COOTensor.random((9, 11, 7), nnz=120, rng=0).astype(np.float64)


@pytest.fixture
def y():
    return COOTensor.random((7, 8), nnz=30, rng=1).astype(np.float64)


class TestSparseContract:
    def test_single_mode_matches_tensordot(self, x, y):
        z = sparse_contract(x, y, [2], [0])
        want = np.tensordot(x.to_dense(), y.to_dense(), axes=([2], [0]))
        np.testing.assert_allclose(z.to_dense(), want, rtol=1e-9)

    def test_two_mode_contraction(self, x):
        y = COOTensor.random((11, 7, 5), nnz=80, rng=2).astype(np.float64)
        z = sparse_contract(x, y, [1, 2], [0, 1])
        want = np.tensordot(x.to_dense(), y.to_dense(), axes=([1, 2], [0, 1]))
        np.testing.assert_allclose(z.to_dense(), want, rtol=1e-9)

    def test_output_coalesced(self, x, y):
        z = sparse_contract(x, y, [2], [0])
        assert not z.has_duplicates()

    def test_disjoint_patterns_empty(self):
        a = COOTensor((4, 4), np.array([[0, 0]]), np.array([1.0]))
        b = COOTensor((4, 4), np.array([[3, 3]]), np.array([1.0]))
        z = sparse_contract(a, b, [1], [0])
        assert z.nnz == 0

    def test_dim_mismatch(self, x):
        bad = COOTensor.random((6, 6), nnz=5, rng=3)
        with pytest.raises(ShapeError):
            sparse_contract(x, bad, [2], [0])

    def test_pairing_mismatch(self, x, y):
        with pytest.raises(ShapeError):
            sparse_contract(x, y, [2], [0, 1])

    def test_duplicate_modes_rejected(self, x):
        y3 = COOTensor.random((7, 7, 3), nnz=20, rng=4)
        with pytest.raises(ShapeError):
            sparse_contract(x, y3, [2, 2], [0, 1])

    def test_scalar_output_rejected(self, y):
        other = COOTensor.random((7, 8), nnz=10, rng=5)
        with pytest.raises(ShapeError, match="sparse_inner"):
            sparse_contract(y, other, [0, 1], [0, 1])

    def test_empty_operand(self, x):
        empty = COOTensor.empty((7, 8))
        z = sparse_contract(x, empty, [2], [0])
        assert z.nnz == 0
        assert z.shape == (9, 11, 8)


class TestSparseInner:
    def test_matches_dense(self, x):
        w = COOTensor.random(x.shape, nnz=100, rng=6).astype(np.float64)
        want = float((x.to_dense() * w.to_dense()).sum())
        assert sparse_inner(x, w) == pytest.approx(want)

    def test_self_inner_is_norm_squared(self, x):
        assert sparse_inner(x, x) == pytest.approx(
            float((x.values.astype(np.float64) ** 2).sum())
        )

    def test_disjoint_zero(self):
        a = COOTensor((3, 3), np.array([[0, 0]]), np.array([2.0]))
        b = COOTensor((3, 3), np.array([[1, 1]]), np.array([3.0]))
        assert sparse_inner(a, b) == 0.0

    def test_shape_mismatch(self, x, y):
        with pytest.raises(ShapeError):
            sparse_inner(x, y)


class TestSparseVectorMatrix:
    def test_sparse_ttv_matches_dense_vector(self, x):
        vi = np.array([1, 4, 6])
        vv = np.array([2.0, -1.0, 0.5])
        vd = np.zeros(x.shape[2])
        vd[vi] = vv
        got = sparse_ttv(x, vi, vv, 2).to_dense()
        want = np.tensordot(x.to_dense(), vd, axes=([2], [0]))
        np.testing.assert_allclose(got, want, rtol=1e-9)

    def test_sparse_ttv_validation(self, x):
        with pytest.raises(ShapeError):
            sparse_ttv(x, np.array([99]), np.array([1.0]), 2)
        with pytest.raises(ShapeError):
            sparse_ttv(x, np.array([1, 2]), np.array([1.0]), 2)

    def test_sparse_ttm_matches_contract(self, x, y):
        got = sparse_ttm(x, y, 2)
        want = sparse_contract(x, y, [2], [0])
        assert got.allclose(want)

    def test_sparse_ttm_validation(self, x):
        with pytest.raises(ShapeError):
            sparse_ttm(x, COOTensor.random((7, 3, 2), nnz=5, rng=0), 2)
        with pytest.raises(ShapeError):
            sparse_ttm(x, COOTensor.random((6, 3), nnz=5, rng=0), 2)
