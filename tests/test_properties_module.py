"""Tests for sptensor.properties (fiber/block/tensor statistics)."""

import numpy as np
import pytest

from repro.sptensor import (
    COOTensor,
    HiCOOTensor,
    block_stats,
    fiber_stats,
    mode_fill,
    nnz_per_slice,
    summarize,
)


class TestFiberStats:
    def test_lengths_consistent(self, coo3):
        st = fiber_stats(coo3, 0)
        assert st.nfibers == coo3.num_fibers(0)
        assert st.min_len >= 1
        assert st.max_len >= st.min_len
        assert st.mean_len * st.nfibers == pytest.approx(coo3.nnz)

    def test_imbalance_ge_one(self, coo3):
        for m in range(3):
            assert fiber_stats(coo3, m).imbalance >= 1.0

    def test_empty(self):
        st = fiber_stats(COOTensor.empty((3, 3)), 0)
        assert st.nfibers == 0
        assert st.imbalance == 1.0

    def test_skewed_tensor_detected(self):
        """One long fiber among singletons has high imbalance."""
        inds = [[0, 0, k] for k in range(50)] + [[i, 1, 0] for i in range(1, 10)]
        t = COOTensor((10, 2, 50), np.array(inds), np.ones(59))
        st = fiber_stats(t, 2)
        assert st.max_len == 50
        assert st.imbalance > 5


class TestBlockStats:
    def test_consistent(self, hicoo3):
        st = block_stats(hicoo3)
        assert st.nblocks == hicoo3.nblocks
        assert st.mean_nnz * st.nblocks == pytest.approx(hicoo3.nnz)
        assert st.alpha == st.mean_nnz

    def test_empty(self):
        h = HiCOOTensor.from_coo(COOTensor.empty((4, 4)), 4)
        st = block_stats(h)
        assert st.nblocks == 0
        assert st.imbalance == 1.0


class TestSummary:
    def test_summarize(self, coo3):
        s = summarize(coo3, "demo")
        assert s.name == "demo"
        assert s.order == 3
        assert s.nnz == coo3.nnz
        assert len(s.fibers_per_mode) == 3
        assert s.density == pytest.approx(coo3.density)
        assert s.avg_fibers > 0
        assert s.max_fiber_imbalance >= 1.0


class TestSliceHistogram:
    def test_counts_sum_to_nnz(self, coo3):
        for m in range(3):
            counts = nnz_per_slice(coo3, m)
            assert counts.sum() == coo3.nnz
            assert len(counts) == coo3.shape[m]

    def test_mode_fill_bounds(self, coo3):
        for m in range(3):
            f = mode_fill(coo3, m)
            assert 0 < f <= 1.0

    def test_dense_short_mode_fill_is_one(self):
        t = COOTensor.random((1000, 4), nnz=900, rng=0)
        assert mode_fill(t, 1) == 1.0
