"""Tests for the Ttv kernel (COO, HiCOO, gHiCOO) vs the dense reference."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.kernels import coo_ttv, dense_ttv, ghicoo_ttv, hicoo_ttv, ttv
from repro.parallel import OpenMPBackend, SequentialBackend
from repro.sptensor import COOTensor, GHiCOOTensor, HiCOOTensor
from repro.types import Schedule


def vec_for(shape, mode, seed=0, dtype=np.float64):
    return np.random.default_rng(seed).random(shape[mode]).astype(dtype)


class TestCooTtv:
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_matches_dense_all_modes(self, coo3, dense3, mode):
        x = coo3.astype(np.float64)
        v = vec_for(x.shape, mode)
        out = coo_ttv(x, v, mode)
        np.testing.assert_allclose(out.to_dense(), dense_ttv(dense3, v, mode), rtol=1e-6)

    @pytest.mark.parametrize("mode", [0, 1, 2, 3])
    def test_4th_order(self, coo4, dense4, mode):
        x = coo4.astype(np.float64)
        v = vec_for(x.shape, mode, seed=mode)
        out = coo_ttv(x, v, mode)
        np.testing.assert_allclose(out.to_dense(), dense_ttv(dense4, v, mode), rtol=1e-6)

    def test_output_shape_drops_mode(self, coo3):
        v = vec_for(coo3.shape, 1)
        out = coo_ttv(coo3, v, 1)
        assert out.shape == (coo3.shape[0], coo3.shape[2])

    def test_output_nnz_equals_fiber_count(self, coo3):
        """The sparse-dense property: one output non-zero per fiber."""
        v = np.ones(coo3.shape[2], dtype=np.float64)
        out = coo_ttv(coo3, v, 2)
        assert out.nnz == coo3.num_fibers(2)

    def test_negative_mode(self, coo3, dense3):
        v = vec_for(coo3.shape, 2)
        out = coo_ttv(coo3.astype(np.float64), v, -1)
        np.testing.assert_allclose(out.to_dense(), dense_ttv(dense3, v, 2), rtol=1e-6)

    def test_wrong_vector_length(self, coo3):
        with pytest.raises(ShapeError):
            coo_ttv(coo3, np.ones(coo3.shape[2] + 1), 2)

    def test_order1_rejected(self):
        t = COOTensor((5,), np.array([[1]]), np.array([1.0]))
        with pytest.raises(ShapeError):
            coo_ttv(t, np.ones(5), 0)

    def test_empty_tensor(self):
        out = coo_ttv(COOTensor.empty((4, 5, 6)), np.ones(6), 2)
        assert out.nnz == 0
        assert out.shape == (4, 5)

    def test_zero_vector_zero_output_values(self, coo3):
        out = coo_ttv(coo3, np.zeros(coo3.shape[0]), 0)
        assert np.abs(out.values).max(initial=0) == 0


class TestHicooTtv:
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_matches_dense(self, coo3, dense3, mode):
        h = HiCOOTensor.from_coo(coo3.astype(np.float64), 8)
        v = vec_for(coo3.shape, mode)
        out = hicoo_ttv(h, v, mode)
        assert isinstance(out, HiCOOTensor)
        np.testing.assert_allclose(
            out.to_coo().to_dense(), dense_ttv(dense3, v, mode), rtol=1e-6
        )

    def test_4th_order(self, coo4, dense4):
        h = HiCOOTensor.from_coo(coo4.astype(np.float64), 4)
        v = vec_for(coo4.shape, 3, seed=9)
        out = hicoo_ttv(h, v, 3)
        np.testing.assert_allclose(
            out.to_coo().to_dense(), dense_ttv(dense4, v, 3), rtol=1e-6
        )

    def test_output_is_blocked(self, hicoo3):
        v = np.ones(hicoo3.shape[2], dtype=np.float64)
        out = hicoo_ttv(hicoo3, v, 2)
        assert out.nblocks >= 1
        assert out.nmodes == 2


class TestGhicooTtv:
    def test_requires_uncompressed_product_mode(self, coo3):
        g = GHiCOOTensor.from_coo(coo3, 8, (0, 1, 2))
        with pytest.raises(ShapeError):
            ghicoo_ttv(g, np.ones(coo3.shape[2]), 2)

    def test_matches_coo(self, coo3, dense3):
        g = GHiCOOTensor.from_coo(coo3.astype(np.float64), 8, (0, 1))
        v = vec_for(coo3.shape, 2, seed=5)
        out = ghicoo_ttv(g, v, 2)
        np.testing.assert_allclose(
            out.to_coo().to_dense(), dense_ttv(dense3, v, 2), rtol=1e-6
        )

    def test_empty(self):
        g = GHiCOOTensor.from_coo(COOTensor.empty((8, 8, 8)), 4, (0, 1))
        out = ghicoo_ttv(g, np.ones(8), 2)
        assert out.nnz == 0


class TestTtvParallel:
    @pytest.mark.parametrize("schedule", list(Schedule))
    def test_schedules_match_sequential(self, coo3, schedule):
        x = coo3.astype(np.float64)
        v = vec_for(x.shape, 1, seed=2)
        ref = coo_ttv(x, v, 1)
        be = OpenMPBackend(nthreads=4)
        try:
            got = coo_ttv(x, v, 1, backend=be, schedule=schedule)
            assert got.allclose(ref, rtol=1e-12)
        finally:
            be.shutdown()

    def test_chunked_sequential_matches(self, coo3):
        x = coo3.astype(np.float64)
        v = vec_for(x.shape, 0, seed=3)
        ref = coo_ttv(x, v, 0)
        got = coo_ttv(x, v, 0, backend=SequentialBackend(chunks_hint=7))
        assert got.allclose(ref, rtol=1e-12)

    def test_dispatcher(self, coo3, hicoo3):
        v = vec_for(coo3.shape, 2, seed=4)
        a = ttv(coo3, v, 2)
        b = ttv(hicoo3, v, 2)
        np.testing.assert_allclose(
            b.to_coo().to_dense(), a.to_dense(), rtol=1e-5
        )
