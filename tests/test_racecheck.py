"""The race-check harness: contracts, footprint checking, mutation tests.

Three layers of coverage:

* the output-access contract registry (every shipped parallel kernel
  declares its discipline, and the declarations resolve correctly);
* :class:`RaceCheckBackend` mechanics — mutation self-tests where
  deliberately racy decompositions MUST be flagged (the checker is only
  trustworthy if it fails on purpose-built bugs), plus the atomic
  contract's permitted-overlap path and the non-strict survey mode;
* the full kernel x format x method matrix executed under the checker:
  every shipped combination must produce reference results with zero
  contract violations.
"""

import numpy as np
import pytest

from repro.kernels import (
    Access,
    coo_mttkrp,
    coo_tew,
    coo_ts,
    coo_ttm,
    coo_ttv,
    hicoo_mttkrp,
    hicoo_tew,
    hicoo_ts,
    hicoo_ttm,
    hicoo_ttv,
    output_contract,
    registered_contracts,
)
from repro.parallel import (
    OpenMPBackend,
    RaceCheckBackend,
    RaceViolation,
    get_backend,
)
from repro.sptensor import COOTensor, HiCOOTensor


@pytest.fixture
def rc():
    return RaceCheckBackend(nthreads=4, default_chunk=64)


@pytest.fixture(scope="module")
def tensor():
    return COOTensor.random((60, 50, 40), 3000, rng=13).astype(np.float64)


@pytest.fixture(scope="module")
def hicoo(tensor):
    return HiCOOTensor.from_coo(tensor, 8)


@pytest.fixture(scope="module")
def mats(tensor):
    rng = np.random.default_rng(17)
    return [rng.random((s, 5)) for s in tensor.shape]


class TestContractRegistry:
    def test_every_parallel_kernel_declares(self):
        contracts = registered_contracts()
        for kernel in (
            "coo_mttkrp", "hicoo_mttkrp",
            "coo_ttv", "hicoo_ttv", "ghicoo_ttv",
            "coo_ttm", "hicoo_ttm", "ghicoo_ttm",
            "coo_tew", "hicoo_tew", "coo_ts", "hicoo_ts",
        ):
            assert kernel in contracts, f"{kernel} has no output contract"

    def test_mttkrp_per_method_resolution(self):
        c = output_contract(coo_mttkrp)
        assert c.methods == ("atomic", "owner", "sort")
        assert c.resolve("atomic") is Access.WORKSPACE
        assert c.resolve("sort") is Access.DISJOINT
        assert c.resolve("owner") is Access.OWNER
        with pytest.raises(ValueError, match="pass method="):
            c.resolve()
        with pytest.raises(ValueError, match="no contract for method"):
            c.resolve("magic")

    def test_single_strategy_kernels_resolve_without_method(self):
        for fn in (coo_ttv, coo_ttm, coo_tew, coo_ts):
            c = output_contract(fn)
            assert c.methods is None
            assert c.resolve() is Access.DISJOINT

    def test_lookup_by_name_matches_function(self):
        assert output_contract("hicoo_mttkrp") == output_contract(hicoo_mttkrp)
        with pytest.raises(KeyError, match="no output contract"):
            output_contract("nonexistent_kernel")

    def test_registered_backend(self):
        assert isinstance(get_backend("racecheck"), RaceCheckBackend)


def racy_scatter_mttkrp(out, rows, contrib, backend, access):
    """A deliberately racy Mttkrp-style scatter: chunks of the nnz stream
    scatter-add straight into the shared output while (falsely) declaring
    ``access``.  Under a real threaded backend this is a write-write race
    whenever two chunks hit the same output row."""

    def body(lo, hi):
        np.add.at(out, rows[lo:hi], contrib[lo:hi])

    with backend.check_output(out, access):
        backend.parallel_for(len(rows), body, schedule="dynamic", chunk=32)


class TestMutationSelfTest:
    """The checker must flag decompositions built to be racy."""

    def _collision_stream(self, n=400, nrows=8, r=3, seed=0):
        # Few output rows, many updates: chunk overlap is certain.
        rng = np.random.default_rng(seed)
        rows = rng.integers(0, nrows, size=n)
        contrib = rng.random((n, r)) + 0.5  # bounded away from 0
        return rows, contrib, np.zeros((nrows, r))

    def test_racy_kernel_flagged_under_owner_claim(self, rc):
        rows, contrib, out = self._collision_stream()
        with pytest.raises(RaceViolation, match="owner contract violated"):
            racy_scatter_mttkrp(out, rows, contrib, rc, Access.OWNER)

    def test_racy_kernel_flagged_under_disjoint_claim(self, rc):
        rows, contrib, out = self._collision_stream(seed=1)
        with pytest.raises(RaceViolation, match="disjoint contract violated"):
            racy_scatter_mttkrp(out, rows, contrib, rc, "disjoint")

    def test_shared_write_flagged_under_workspace_claim(self, rc):
        # Workspace discipline bans *any* chunk-time write to the shared
        # output — even non-overlapping ones.
        out = np.zeros(128)

        def body(lo, hi):
            out[lo:hi] = 1.0  # disjoint, but not privatized

        with pytest.raises(RaceViolation, match="workspace contract violated"):
            with rc.check_output(out, Access.WORKSPACE):
                rc.parallel_for(128, body, schedule="dynamic", chunk=32)

    def test_atomic_claim_permits_overlap(self, rc):
        rows, contrib, out = self._collision_stream(seed=2)
        racy_scatter_mttkrp(out, rows, contrib, rc, Access.ATOMIC)  # no raise
        report = rc.history[-1]
        assert report.access == "atomic"
        assert report.overlaps > 0  # overlap happened and was recorded
        assert report.conflicts == []  # ...but is declared-safe
        ref = np.zeros_like(out)
        np.add.at(ref, rows, contrib)
        np.testing.assert_allclose(out, ref, rtol=1e-12)

    def test_non_strict_records_without_raising(self):
        rc = RaceCheckBackend(nthreads=4, default_chunk=64, strict=False)
        rows, contrib, out = self._collision_stream(seed=3)
        racy_scatter_mttkrp(out, rows, contrib, rc, Access.OWNER)  # survey mode
        report = rc.history[-1]
        assert report.conflicts, "violation must still be recorded"
        assert report.overlaps > 0

    def test_disjoint_decomposition_passes(self, rc):
        out = np.zeros(100)

        def body(lo, hi):
            out[lo:hi] = np.arange(lo, hi, dtype=float) + 1.0

        with rc.check_output(out, "disjoint"):
            rc.parallel_for(100, body, schedule="dynamic", chunk=16)
        report = rc.history[-1]
        assert report.writes == 100 and report.overlaps == 0

    def test_violation_message_names_coordinates(self, rc):
        rows = np.zeros(64, dtype=np.int64)  # every update hits row 0
        contrib = np.ones((64, 2))
        out = np.zeros((4, 2))
        with pytest.raises(RaceViolation) as exc:
            racy_scatter_mttkrp(out, rows, contrib, rc, "owner")
        msg = str(exc.value)
        assert "chunks" in msg and "(0," in msg  # witness coordinates

    def test_unknown_access_kind_rejected(self, rc):
        with pytest.raises(ValueError, match="unknown output-access"):
            with rc.check_output(np.zeros(4), "fuzzy"):
                pass


class TestRaceCheckMechanics:
    def test_plan_matches_openmp(self):
        rc = RaceCheckBackend(nthreads=4, default_chunk=128)
        omp = OpenMPBackend(nthreads=4, default_chunk=128)
        for sched in ("static", "dynamic", "guided"):
            for chunk in (None, 17):
                assert rc.plan(1000, sched, chunk) == omp.plan(1000, sched, chunk)
        omp.shutdown()

    def test_is_threaded_despite_sequential_execution(self, rc):
        assert rc.is_threaded
        assert rc.nthreads == 4

    def test_chunk_zero_rejected(self, rc):
        with pytest.raises(ValueError, match="chunk must be >= 1"):
            rc.parallel_for(100, lambda lo, hi: None, chunk=0)

    def test_no_declaration_executes_plainly(self, rc):
        out = np.zeros(50)
        rc.parallel_for(50, lambda lo, hi: out.__setitem__(slice(lo, hi), 1.0))
        assert out.sum() == 50
        assert rc.history == []

    def test_region_state_is_per_loop(self, rc):
        # One check_output scope may enclose several loops; footprints must
        # not leak between them (chunk 0 of loop 2 is not chunk 0 of loop 1).
        out = np.zeros(64)

        def body(lo, hi):
            out[lo:hi] += 1.0

        with rc.check_output(out, "atomic"):
            rc.parallel_for(64, body, schedule="dynamic", chunk=16)
            rc.parallel_for(64, body, schedule="dynamic", chunk=16)
        assert len(rc.history) == 2
        for report in rc.history[-2:]:
            assert report.nchunks == 4 and report.writes == 64

    def test_clear_history(self, rc):
        out = np.zeros(8)
        with rc.check_output(out, "disjoint"):
            rc.parallel_for(8, lambda lo, hi: out.__setitem__(slice(lo, hi), 2.0))
        assert rc.history
        rc.clear_history()
        assert rc.history == []


class TestKernelMatrixUnderChecker:
    """Every shipped kernel x format x method combination passes the
    checker and matches the sequential reference (ISSUE acceptance)."""

    @pytest.mark.parametrize("method", ["atomic", "sort", "owner"])
    @pytest.mark.parametrize("schedule", ["static", "dynamic", "guided"])
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_coo_mttkrp(self, tensor, mats, rc, method, schedule, mode):
        ref = coo_mttkrp(tensor, mats, mode)
        got = coo_mttkrp(
            tensor, mats, mode, backend=rc, method=method, schedule=schedule
        )
        np.testing.assert_allclose(got, ref, rtol=1e-12)

    @pytest.mark.parametrize("method", ["atomic", "sort", "owner"])
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_hicoo_mttkrp(self, hicoo, mats, rc, method, mode):
        ref = hicoo_mttkrp(hicoo, mats, mode)
        got = hicoo_mttkrp(
            hicoo, mats, mode, backend=rc, method=method, blocks_per_chunk=3
        )
        np.testing.assert_allclose(got, ref, rtol=1e-12)

    @pytest.mark.parametrize("privatize", ["arena", "chunk"])
    def test_mttkrp_privatization_modes(self, tensor, mats, rc, privatize):
        ref = coo_mttkrp(tensor, mats, 0)
        got = coo_mttkrp(
            tensor, mats, 0, backend=rc, schedule="dynamic", privatize=privatize
        )
        np.testing.assert_allclose(got, ref, rtol=1e-12)
        assert rc.history, "workspace region must have been checked"
        assert rc.history[-1].access == "workspace"

    @pytest.mark.parametrize("partition", ["uniform", "balanced"])
    def test_ttv_ttm(self, tensor, hicoo, rc, partition):
        rng = np.random.default_rng(5)
        v = rng.random(tensor.shape[1])
        u = rng.random((tensor.shape[1], 4))
        ref_v = coo_ttv(tensor, v, 1)
        assert ref_v.allclose(
            coo_ttv(tensor, v, 1, backend=rc, partition=partition), rtol=1e-12
        )
        ref_m = coo_ttm(tensor, u, 1)
        got_m = coo_ttm(tensor, u, 1, backend=rc, partition=partition)
        np.testing.assert_allclose(got_m.values, ref_m.values, rtol=1e-12)
        v2 = rng.random(tensor.shape[2])
        ref_hv = hicoo_ttv(hicoo, v2, 2)
        got_hv = hicoo_ttv(hicoo, v2, 2, backend=rc, partition=partition)
        np.testing.assert_allclose(got_hv.values, ref_hv.values, rtol=1e-12)
        u2 = rng.random((tensor.shape[2], 4))
        ref_hm = hicoo_ttm(hicoo, u2, 2)
        got_hm = hicoo_ttm(hicoo, u2, 2, backend=rc, partition=partition)
        np.testing.assert_allclose(got_hm.values, ref_hm.values, rtol=1e-12)

    def test_tew_ts(self, tensor, hicoo, rc):
        other = COOTensor(
            tensor.shape, tensor.indices, tensor.values * 2.0, copy=True,
            check=False,
        )
        ref = coo_tew(tensor, other, "add", assume_same_pattern=True)
        got = coo_tew(tensor, other, "add", backend=rc, assume_same_pattern=True)
        np.testing.assert_allclose(got.values, ref.values, rtol=1e-12)
        ref_s = coo_ts(tensor, 2.5, "mul")
        got_s = coo_ts(tensor, 2.5, "mul", backend=rc)
        np.testing.assert_allclose(got_s.values, ref_s.values, rtol=1e-12)
        href = hicoo_ts(hicoo, 0.5, "mul")
        hgot = hicoo_ts(hicoo, 0.5, "mul", backend=rc)
        np.testing.assert_allclose(hgot.values, href.values, rtol=1e-12)
        hother = hicoo_ts(hicoo, 3.0, "mul")
        href_t = hicoo_tew(hicoo, hother, "add")
        hgot_t = hicoo_tew(hicoo, hother, "add", backend=rc)
        np.testing.assert_allclose(hgot_t.values, href_t.values, rtol=1e-12)

    def test_matrix_regions_all_clean(self, tensor, hicoo, mats, rc):
        # A sweep across methods leaves a non-trivial history with zero
        # conflicts anywhere.
        for method in ("atomic", "owner"):
            coo_mttkrp(tensor, mats, 0, backend=rc, method=method)
            hicoo_mttkrp(hicoo, mats, 1, backend=rc, method=method)
        coo_ttv(tensor, np.ones(tensor.shape[0]), 0, backend=rc)
        assert len(rc.history) >= 5
        assert all(r.conflicts == [] for r in rc.history)
