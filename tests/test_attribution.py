"""Tests for roofline attribution (repro.obs.attribution)."""

import pytest

from repro.kernels.flops import KernelCost
from repro.obs import (
    CAT_KERNEL,
    COMPUTE_BOUND,
    MEMORY_BOUND,
    Tracer,
    attach_to_trace,
    attribute,
    classify_boundedness,
    effective_bandwidth_gbs,
)
from repro.roofline import RooflineModel, get_platform
from repro.types import Format, Kernel


def _model():
    return RooflineModel(get_platform("Bluesky"))


def _cost(flops=1e6, nbytes=1e7):
    return KernelCost(Kernel.TTV, Format.COO, float(flops), float(nbytes))


class TestClassification:
    def test_boundedness_splits_at_the_ridge(self):
        assert classify_boundedness(0.1, 4.0) == MEMORY_BOUND
        assert classify_boundedness(8.0, 4.0) == COMPUTE_BOUND
        assert classify_boundedness(4.0, 4.0) == COMPUTE_BOUND

    def test_effective_bandwidth(self):
        assert effective_bandwidth_gbs(2e9, 1.0) == pytest.approx(2.0)
        assert effective_bandwidth_gbs(1e9, 0.0) == 0.0


class TestAttribute:
    def test_memory_bound_attribution(self):
        model = _model()
        cost = _cost()  # OI = 0.1, far left of Bluesky's ridge
        attr = attribute(model, cost, seconds=1e-4, host_seconds=1e-3)
        assert attr.platform == "Bluesky"
        assert attr.kernel == "ttv" and attr.fmt == "coo"
        assert attr.oi == pytest.approx(0.1)
        assert attr.boundedness == MEMORY_BOUND
        # The bound is the memory roof: OI x ERT-DRAM bandwidth.
        assert attr.bound_gflops == pytest.approx(
            cost.oi * model.platform.ert_dram_bw_gbs
        )
        assert attr.achieved_gflops == pytest.approx(1e6 / 1e-4 / 1e9)
        assert attr.bound_fraction == pytest.approx(
            attr.achieved_gflops / attr.bound_gflops
        )
        # Effective bw uses the *host* measurement: 1e7 B / 1e-3 s.
        assert attr.effective_bw_gbs == pytest.approx(10.0)
        assert attr.bw_fraction == pytest.approx(
            10.0 / model.platform.ert_dram_bw_gbs
        )

    def test_unmeasured_host_gives_zero_bandwidth(self):
        attr = attribute(_model(), _cost(), seconds=1e-4, host_seconds=0.0)
        assert attr.effective_bw_gbs == 0.0
        assert attr.bw_fraction == 0.0

    def test_compute_bound_attribution(self):
        model = _model()
        # OI of 100 flops/byte sits right of any CPU ridge point.
        cost = KernelCost(Kernel.MTTKRP, Format.HICOO, 1e9, 1e7)
        attr = attribute(model, cost, seconds=1.0)
        assert attr.boundedness == COMPUTE_BOUND
        assert attr.bound_gflops == pytest.approx(model.platform.peak_sp_gflops)

    def test_as_dict_is_json_safe_and_complete(self):
        import json

        attr = attribute(_model(), _cost(), seconds=1e-4, host_seconds=1e-3)
        d = attr.as_dict()
        assert json.loads(json.dumps(d)) == d
        assert set(d) == {
            "platform", "kernel", "fmt", "oi", "ridge_oi", "bound_gflops",
            "achieved_gflops", "bound_fraction", "boundedness",
            "modeled_flops", "modeled_bytes", "bw_ceiling_gbs",
            "effective_bw_gbs", "bw_fraction",
        }


class TestAttachToTrace:
    def test_kernel_spans_gain_roofline_attrs(self):
        tracer = Tracer()
        with tracer.span("ttv", cat=CAT_KERNEL, mode=0):
            pass
        with tracer.span("chunk0", cat="chunk"):
            pass
        trace = tracer.freeze()
        attr = attribute(_model(), _cost(), seconds=1e-4, host_seconds=1e-3)
        out = attach_to_trace(trace, attr)
        assert out is trace
        (kspan,) = trace.spans(CAT_KERNEL)
        assert kspan.attrs["roofline.boundedness"] == MEMORY_BOUND
        assert kspan.attrs["roofline.bound_fraction"] == pytest.approx(
            attr.bound_fraction, abs=1e-4
        )
        # Non-kernel spans stay untouched.
        (chunk,) = trace.spans("chunk")
        assert not any(k.startswith("roofline.") for k in chunk.attrs)


class TestRunnerIntegration:
    def test_records_carry_roofline_block(self):
        from repro.bench import RunnerConfig, SuiteRunner
        from repro.generate import powerlaw_tensor
        from repro.roofline import PLATFORMS

        cfg = RunnerConfig(
            measure_host=False, kernels=(Kernel.TTV,), formats=(Format.COO,)
        )
        x = powerlaw_tensor((40, 30, 8), nnz=500, seed=5)
        for platform in PLATFORMS:
            (rec,) = SuiteRunner(platform, cfg).run_tensor("t", x)
            block = rec.extra["roofline"]
            assert block["platform"] == platform.name
            assert block["bound_gflops"] == pytest.approx(rec.bound_gflops)
            assert block["bound_fraction"] == pytest.approx(rec.efficiency)
            assert block["boundedness"] in (MEMORY_BOUND, COMPUTE_BOUND)
