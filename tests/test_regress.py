"""Tests for the perf-regression sentinel (repro.bench.regress)."""

import json

import pytest

from repro.bench.regress import (
    IMPROVED,
    INSUFFICIENT,
    NEUTRAL,
    REGRESSED,
    Measurement,
    RegressError,
    compare_measurements,
    compare_paths,
    load_measurements,
)


def _meas(tensor, kernel="ttv", fmt="coo", value=1.0, method=""):
    return Measurement(
        identity=(tensor, kernel, fmt, "Bluesky"),
        group=(kernel, fmt, method),
        value=value,
    )


def _pair_sets(values_a, values_b, **kw):
    a = [_meas(f"t{i}", value=v) for i, v in enumerate(values_a)]
    b = [_meas(f"t{i}", value=v) for i, v in enumerate(values_b)]
    return compare_measurements(a, b, **kw)


class TestClassification:
    def test_identical_measurements_are_neutral(self):
        report = _pair_sets([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])
        (g,) = report.groups
        assert g.classification == NEUTRAL
        assert g.ci.estimate == pytest.approx(1.0)
        assert report.exit_code == 0

    def test_consistent_2x_slowdown_regresses(self):
        report = _pair_sets(
            [1.0, 2.0, 3.0, 4.0], [2.0, 4.1, 5.9, 8.2]
        )
        (g,) = report.groups
        assert g.classification == REGRESSED
        assert g.ci.lo > 1.0  # CI excludes no-change
        assert g.ci.excludes(1.0)
        assert report.exit_code == 1

    def test_consistent_speedup_improves(self):
        report = _pair_sets([2.0, 4.0, 6.0], [1.0, 2.05, 2.9])
        (g,) = report.groups
        assert g.classification == IMPROVED
        assert report.exit_code == 0

    def test_single_pair_is_insufficient(self):
        report = _pair_sets([1.0], [10.0])
        (g,) = report.groups
        assert g.classification == INSUFFICIENT
        assert report.exit_code == 0  # never gates

    def test_nonpositive_times_are_dropped_not_compared(self):
        report = _pair_sets([0.0, 1.0, 1.0], [1.0, 1.0, 1.0])
        (g,) = report.groups
        assert g.n_pairs == 2 and g.n_dropped == 1

    def test_groups_judged_independently(self):
        a = [_meas("t0"), _meas("t1"),
             _meas("t0", kernel="tew"), _meas("t1", kernel="tew")]
        b = [_meas("t0", value=2.0), _meas("t1", value=2.1),
             _meas("t0", kernel="tew"), _meas("t1", kernel="tew")]
        report = compare_measurements(a, b)
        verdicts = {g.group[0]: g.classification for g in report.groups}
        assert verdicts == {"ttv": REGRESSED, "tew": NEUTRAL}
        assert report.counts()[REGRESSED] == 1

    def test_no_overlap_raises(self):
        with pytest.raises(RegressError):
            compare_measurements([_meas("t0")], [_meas("other")])

    def test_unmatched_cases_counted(self):
        a = [_meas("t0"), _meas("t1"), _meas("only-a")]
        b = [_meas("t0"), _meas("t1"), _meas("only-b"), _meas("only-b2")]
        report = compare_measurements(a, b)
        assert report.unmatched_a == 1 and report.unmatched_b == 2

    def test_render_and_dict(self):
        report = _pair_sets([1.0, 2.0], [2.0, 4.1])
        text = report.render()
        assert "ttv/coo" in text and "regressed" in text
        d = report.as_dict()
        assert json.loads(json.dumps(d)) == d
        assert d["exit_code"] == 1
        assert d["counts"][REGRESSED] == 1


class TestLoaders:
    def _write_store(self, tmp_path, name, host_scale=1.0):
        from repro.bench import RunnerConfig, RunStore, SweepCase
        from repro.bench.runner import enumerate_cases
        from repro.metrics.perf import PerfRecord

        store = RunStore(tmp_path / name)
        cfg = RunnerConfig(kernels=("ttv",), formats=("coo", "hicoo"))
        cases = enumerate_cases(
            {"t0": {"kind": "random", "shape": (4, 4, 4), "nnz": 8, "seed": 0},
             "t1": {"kind": "random", "shape": (5, 5, 5), "nnz": 9, "seed": 0}},
            cfg,
        )
        for i, case in enumerate(cases):
            rec = PerfRecord(
                tensor=case.tensor, kernel=case.kernel, fmt=case.fmt,
                platform=case.platform, flops=1e6,
                seconds=0.001 * (i + 1),
                gflops=1.0, bound_gflops=2.0, efficiency=0.5,
                host_seconds=0.01 * (i + 1) * host_scale,
            )
            store.append_record(case, rec, attempt=0, elapsed_s=0.1)
        return store.path

    def test_store_loader_prefers_host_seconds(self, tmp_path):
        path = self._write_store(tmp_path, "a.jsonl")
        ms = load_measurements(path)
        assert len(ms) == 4
        assert all(m.value in (0.01, 0.02, 0.03, 0.04) for m in ms)
        assert {m.group for m in ms} == {("ttv", "coo", ""), ("ttv", "hicoo", "")}

    def test_self_compare_exits_zero(self, tmp_path):
        path = self._write_store(tmp_path, "a.jsonl")
        report = compare_paths(path, path)
        assert report.exit_code == 0
        assert all(g.classification == NEUTRAL for g in report.groups)

    def test_synthetic_2x_slowdown_detected(self, tmp_path):
        a = self._write_store(tmp_path, "a.jsonl")
        b = self._write_store(tmp_path, "b.jsonl", host_scale=2.0)
        report = compare_paths(a, b)
        assert report.exit_code == 1
        for g in report.groups:
            assert g.classification == REGRESSED
            assert g.ci.estimate == pytest.approx(2.0)
            assert g.ci.excludes(1.0)

    def test_bench_json_loader(self, tmp_path):
        data = {
            "meta": {"nthreads": 4},
            "results": [
                {"kernel": "mttkrp", "format": "coo", "backend": "openmp",
                 "method": "atomic", "median_s": 0.05, "min_s": 0.04,
                 "reps": 7, "imbalance": 1.1},
                {"kernel": "mttkrp", "format": "coo", "backend": "openmp",
                 "method": "owner", "median_s": 0.03, "min_s": 0.03, "reps": 7},
            ],
        }
        path = tmp_path / "BENCH_kernels.json"
        path.write_text(json.dumps(data))
        ms = load_measurements(str(path))
        assert len(ms) == 2
        assert {m.group for m in ms} == {
            ("mttkrp", "coo", "atomic"), ("mttkrp", "coo", "owner"),
        }
        # Identity excludes measurement fields, so a re-run with different
        # timings pairs with the original.
        report = compare_paths(str(path), str(path))
        assert report.exit_code == 0

    def test_committed_bench_file_self_compares_clean(self):
        report = compare_paths("BENCH_kernels.json", "BENCH_kernels.json")
        assert report.exit_code == 0

    def test_missing_file_raises(self):
        with pytest.raises(RegressError):
            load_measurements("/nonexistent/path.jsonl")


class TestDragInjection:
    def test_perf_drag_env_slows_one_kernel(self, monkeypatch):
        from repro.bench import RunnerConfig, SuiteRunner
        from repro.generate import powerlaw_tensor
        from repro.roofline import get_platform

        cfg = RunnerConfig(
            measure_host=True, repeats=1, warmup=0,
            kernels=("ttv",), formats=("coo",), backend="sequential",
        )
        x = powerlaw_tensor((30, 20, 8), nnz=300, seed=2)
        runner = SuiteRunner(get_platform("Bluesky"), cfg)
        monkeypatch.delenv("REPRO_PERF_DRAG", raising=False)
        (fast,) = runner.run_tensor("t", x)
        monkeypatch.setenv("REPRO_PERF_DRAG", "ttv:0.05,mttkrp:0.01")
        (slow,) = runner.run_tensor("t", x)
        assert slow.host_seconds >= fast.host_seconds + 0.04
        # Modeled platform time is unaffected.
        assert slow.seconds == pytest.approx(fast.seconds)

    def test_drag_ignores_other_kernels_and_garbage(self, monkeypatch):
        from repro.bench.runner import _drag_seconds
        from repro.types import Kernel

        monkeypatch.setenv("REPRO_PERF_DRAG", "ttv:0.05,ttm:oops")
        assert _drag_seconds(Kernel.TTV) == 0.05
        assert _drag_seconds(Kernel.TTM) == 0.0
        assert _drag_seconds(Kernel.TEW) == 0.0
        monkeypatch.delenv("REPRO_PERF_DRAG")
        assert _drag_seconds(Kernel.TTV) == 0.0
