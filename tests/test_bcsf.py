"""Tests for the balanced CSF (BCSF) format and its Mttkrp."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.generate import powerlaw_tensor
from repro.kernels import coo_mttkrp, dense_mttkrp
from repro.sptensor import COOTensor
from repro.sptensor.bcsf import BCSFTensor, bcsf_mttkrp
from tests.conftest import random_mats


@pytest.fixture(scope="module")
def skewed():
    """A power-law tensor: a few hub roots own most of the non-zeros."""
    return powerlaw_tensor((400, 400, 20), 6000, dense_modes=(2,), seed=7).astype(
        np.float64
    )


class TestVirtualRoots:
    def test_vroots_cover_all_leaves(self, skewed):
        b = BCSFTensor.from_coo(skewed, max_nnz_per_vroot=64)
        assert b.vroot_nnz().sum() == skewed.nnz

    def test_vroot_ranges_disjoint_and_sorted(self, skewed):
        b = BCSFTensor.from_coo(skewed, max_nnz_per_vroot=64)
        pos = 0
        for v in b.vroots:
            assert v.leaf_lo == pos
            assert v.leaf_hi > v.leaf_lo
            pos = v.leaf_hi
        assert pos == skewed.nnz

    def test_balancing_beats_plain_roots(self, skewed):
        b = BCSFTensor.from_coo(skewed, max_nnz_per_vroot=64)
        assert b.imbalance() < b.root_imbalance()

    def test_cap_respected_up_to_single_children(self, skewed):
        cap = 64
        b = BCSFTensor.from_coo(skewed, max_nnz_per_vroot=cap)
        for v in b.vroots:
            # a unit may exceed the cap only if it is a single child
            assert v.nnz <= cap or (v.child_hi - v.child_lo) == 1

    def test_smaller_cap_more_vroots(self, skewed):
        b_small = BCSFTensor.from_coo(skewed, max_nnz_per_vroot=16)
        b_big = BCSFTensor.from_coo(skewed, max_nnz_per_vroot=1024)
        assert b_small.nvroots > b_big.nvroots

    def test_order2(self):
        t = COOTensor.random((50, 40), nnz=300, rng=0)
        b = BCSFTensor.from_coo(t, max_nnz_per_vroot=8)
        assert b.vroot_nnz().sum() == t.nnz
        assert all(v.nnz <= 8 for v in b.vroots)

    def test_empty(self):
        b = BCSFTensor.from_coo(COOTensor.empty((4, 4, 4)))
        assert b.nvroots == 0
        assert b.imbalance() == 1.0

    def test_invalid_cap(self, skewed):
        from repro.sptensor.csf import CSFTensor

        with pytest.raises(ShapeError):
            BCSFTensor(CSFTensor.from_coo(skewed), 0)

    def test_roundtrip(self, skewed):
        b = BCSFTensor.from_coo(skewed, max_nnz_per_vroot=32)
        assert b.to_coo().allclose(skewed)


class TestBcsfMttkrp:
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_matches_dense(self, skewed, mode):
        mats = random_mats(skewed.shape, 4, seed=mode)
        b = BCSFTensor.from_coo(skewed, max_nnz_per_vroot=64)
        got = bcsf_mttkrp(b, mats, mode)
        want = dense_mttkrp(skewed.to_dense(), mats, mode)
        np.testing.assert_allclose(got, want, rtol=1e-8)

    def test_matches_coo(self, skewed):
        mats = random_mats(skewed.shape, 3, seed=9)
        b = BCSFTensor.from_coo(skewed, max_nnz_per_vroot=16)
        np.testing.assert_allclose(
            bcsf_mttkrp(b, mats, 0), coo_mttkrp(skewed, mats, 0), rtol=1e-8
        )

    def test_cap_invariance(self, skewed):
        """The split granularity must not change the numbers."""
        mats = random_mats(skewed.shape, 3, seed=4)
        outs = [
            bcsf_mttkrp(BCSFTensor.from_coo(skewed, max_nnz_per_vroot=c), mats, 1)
            for c in (8, 128, 10**6)
        ]
        np.testing.assert_allclose(outs[0], outs[1], rtol=1e-10)
        np.testing.assert_allclose(outs[1], outs[2], rtol=1e-10)

    def test_4th_order(self, coo4):
        x = coo4.astype(np.float64)
        mats = random_mats(x.shape, 3, seed=5)
        b = BCSFTensor.from_coo(x, max_nnz_per_vroot=32)
        np.testing.assert_allclose(
            bcsf_mttkrp(b, mats, 2),
            dense_mttkrp(x.to_dense(), mats, 2),
            rtol=1e-8,
        )

    def test_empty(self):
        b = BCSFTensor.from_coo(COOTensor.empty((5, 5, 5)))
        out = bcsf_mttkrp(b, random_mats((5, 5, 5), 2), 0)
        assert out.sum() == 0
