"""Tests for the Table 2/3 registries and surrogate generation."""

import pytest

from repro.datasets import (
    REAL_TENSORS,
    get_real,
    make_surrogate,
    surrogate_nnz,
    surrogate_shape,
    surrogate_suite,
)
from repro.generate import SYNTHETIC_TENSORS, generate_suite, get_synthetic
from repro.errors import GenerationError


class TestTable2Registry:
    def test_fifteen_rows(self):
        assert len(REAL_TENSORS) == 15

    def test_paper_metadata_sample(self):
        darpa = get_real("darpa")
        assert darpa.key == "r4"
        assert darpa.shape == (22_000, 22_000, 24_000_000)
        assert darpa.nnz == 28_000_000
        nell2 = get_real("r2")
        assert nell2.name == "nell2"

    def test_orders(self):
        assert all(t.order == 3 for t in REAL_TENSORS[:9])
        assert all(t.order == 4 for t in REAL_TENSORS[9:])

    def test_density_matches_paper_order_of_magnitude(self):
        # Table 2 quotes vast at 6.9e-3 and deli4d at 4.3e-15.
        assert 1e-3 < get_real("vast").density < 1e-2
        assert 1e-15 < get_real("deli4d").density < 1e-14

    def test_unknown_key(self):
        with pytest.raises(KeyError):
            get_real("unknown")


class TestTable3Registry:
    def test_fifteen_rows(self):
        assert len(SYNTHETIC_TENSORS) == 15

    def test_generators_by_family(self):
        assert get_synthetic("regS").generator == "kron"
        assert get_synthetic("irrM").generator == "pl"
        assert get_synthetic("irr2L4d").generator == "pl"

    def test_paper_shapes(self):
        assert get_synthetic("s1").paper_shape == (65_000,) * 3
        assert get_synthetic("irr2S4d").paper_shape == (
            1_000_000, 1_000_000, 122, 436,
        )

    def test_scaling_preserves_density_regime(self):
        cfg = get_synthetic("regM")
        paper_d = cfg.paper_density
        shape = cfg.scaled_shape(1000)
        cap = 1.0
        for s in shape:
            cap *= s
        scaled_d = cfg.scaled_nnz(1000) / cap
        assert scaled_d / paper_d < 50  # same regime (floors distort a bit)
        assert scaled_d / paper_d > 1 / 50

    def test_scale_below_one_rejected(self):
        with pytest.raises(GenerationError):
            get_synthetic("regS").scaled_shape(0.5)

    def test_generate_matches_config(self):
        cfg = get_synthetic("irrS")
        t = cfg.generate(scale=2000, seed=1)
        assert t.nmodes == cfg.order
        assert t.shape == cfg.scaled_shape(2000)

    def test_generate_suite_subset(self):
        suite = generate_suite(["regS", "irrS"], scale=5000, seed=0)
        assert set(suite) == {"regS", "irrS"}
        assert all(t.nnz > 0 for t in suite.values())


class TestSurrogates:
    def test_shape_ratio_preserved(self):
        info = get_real("darpa")
        shape = surrogate_shape(info, 1000)
        # mode 2 is ~1000x longer than modes 0/1 in the paper; preserved
        assert shape[2] / shape[0] > 100

    def test_order_and_positivity(self):
        for key in ("vast", "crime4d"):
            info = get_real(key)
            shape = surrogate_shape(info, 1000)
            assert len(shape) == info.order
            assert all(s >= 2 for s in shape)

    def test_nnz_scaling(self):
        info = get_real("fb-m")
        assert surrogate_nnz(info, 1000) == 100_000

    def test_make_surrogate(self):
        t = make_surrogate("nips4d", scale=1000, seed=3)
        info = get_real("nips4d")
        assert t.nmodes == info.order
        assert t.nnz > 0
        assert t.shape == surrogate_shape(info, 1000)

    def test_surrogate_deterministic(self):
        a = make_surrogate("vast", scale=2000, seed=7)
        b = make_surrogate("vast", scale=2000, seed=7)
        assert a.allclose(b)

    def test_suite_subset(self):
        suite = surrogate_suite(["vast", "uber4d"], scale=2000)
        assert set(suite) == {"vast", "uber4d"}
