"""Tests for the biased power-law stream generator."""

import numpy as np
import pytest

from repro.errors import GenerationError
from repro.generate import (
    powerlaw_indices,
    powerlaw_stream,
    powerlaw_tensor,
)
from repro.generate.graph import (
    degree_distribution,
    degree_tail_ratio,
    powerlaw_exponent_mle,
)
from repro.sptensor import COOTensor


class TestPowerlawIndices:
    def test_range_and_count(self):
        rng = np.random.default_rng(0)
        idx = powerlaw_indices(5000, 1000, 2.0, rng)
        assert len(idx) == 5000
        assert idx.min() >= 0 and idx.max() < 1000

    def test_heavy_tail(self):
        rng = np.random.default_rng(1)
        idx = powerlaw_indices(20000, 10000, 2.2, rng, shuffle_map=False)
        counts = np.bincount(idx)
        # rank-0 key should dominate strongly
        assert counts[0] > 0.2 * len(idx)

    def test_alpha_controls_skew(self):
        rng = np.random.default_rng(2)
        mild = powerlaw_indices(20000, 1000, 1.5, np.random.default_rng(2), shuffle_map=False)
        steep = powerlaw_indices(20000, 1000, 3.0, np.random.default_rng(2), shuffle_map=False)
        assert np.bincount(steep)[0] > np.bincount(mild)[0]

    def test_invalid_params(self):
        rng = np.random.default_rng(0)
        with pytest.raises(GenerationError):
            powerlaw_indices(10, 0, 2.0, rng)
        with pytest.raises(GenerationError):
            powerlaw_indices(10, 10, 1.0, rng)

    def test_shuffle_map_scatters_hubs(self):
        a = powerlaw_indices(1000, 500, 2.0, np.random.default_rng(3), shuffle_map=False)
        b = powerlaw_indices(1000, 500, 2.0, np.random.default_rng(3), shuffle_map=True)
        # unshuffled hubs sit at low ranks; shuffled ones are spread
        assert a.mean() < b.mean()


class TestPowerlawTensor:
    def test_exact_nnz_distinct(self):
        t = powerlaw_tensor((2000, 2000, 16), 3000, dense_modes=(2,), seed=0)
        assert t.nnz == 3000
        assert not t.has_duplicates()

    def test_determinism(self):
        a = powerlaw_tensor((500, 500, 8), 800, seed=9)
        b = powerlaw_tensor((500, 500, 8), 800, seed=9)
        assert a.allclose(b)

    def test_dense_mode_fully_occupied(self):
        """A short uniform mode is effectively dense (the paper's
        irregular tensors have 'one mode completely dense')."""
        t = powerlaw_tensor((5000, 5000, 12), 10000, dense_modes=(2,), seed=1)
        from repro.sptensor import mode_fill

        assert mode_fill(t, 2) == 1.0

    def test_sparse_modes_powerlaw(self):
        t = powerlaw_tensor((20000, 20000, 8), 30000, dense_modes=(2,), seed=2)
        deg = degree_distribution(t, 0)
        alpha = powerlaw_exponent_mle(deg, dmin=2)
        assert 1.2 < alpha < 4.0
        assert degree_tail_ratio(deg) > 0.05

    def test_capacity_check(self):
        with pytest.raises(GenerationError):
            powerlaw_tensor((3, 3), 100, seed=0)

    def test_hub_saturation_raises(self):
        """Extremely steep power laws cannot realize many distinct
        coordinates; the generator reports it rather than spinning."""
        with pytest.raises(GenerationError):
            powerlaw_tensor((20, 20), 350, alpha=8.0, seed=0, max_rounds=4)

    def test_4th_order_two_dense_modes(self):
        t = powerlaw_tensor(
            (3000, 3000, 10, 14), 5000, dense_modes=(2, 3), seed=3
        )
        assert t.nmodes == 4
        assert t.nnz == 5000


class TestPowerlawStream:
    def test_batches_accumulate_to_tensor(self):
        shape = (400, 400, 8)
        parts = list(powerlaw_stream(5000, shape, dense_modes=(2,), seed=4, batch=1024))
        assert sum(len(v) for _, v in parts) == 5000
        coords = np.concatenate([c for c, _ in parts])
        vals = np.concatenate([v for _, v in parts])
        t = COOTensor(shape, coords, vals).coalesce()
        assert 0 < t.nnz <= 5000  # stream revisits hot keys

    def test_stream_has_duplicates(self):
        """Unlike the tensor generator, the raw stream revisits keys."""
        shape = (50, 50, 4)
        parts = list(powerlaw_stream(5000, shape, seed=5))
        coords = np.concatenate([c for c, _ in parts])
        uniq = np.unique(coords, axis=0)
        assert len(uniq) < len(coords)
