"""Chaos scheduling: determinism, churn regression trap, failure injection.

The headline test is the worker-churn regression trap from the ISSUE: a
kernel run under ``ChaosBackend(churn=1.0)`` executes every chunk on a
fresh OS thread.  The fixed (slot-keyed) :class:`WorkspacePool` is
indifferent to that; the pre-fix pool — reproduced here as
``IdentKeyedPool``, arenas keyed by raw ``threading.get_ident()`` with no
reclamation — accumulates one arena per fresh thread and deterministically
blows its ``max_arenas`` bound.  The harness must fail on the old pool and
pass on the new one.
"""

import threading

import numpy as np
import pytest

from repro.kernels import coo_mttkrp, coo_ttv
from repro.parallel import (
    ChaosBackend,
    ChaosError,
    OpenMPBackend,
    WorkspacePool,
)
from repro.sptensor import COOTensor


@pytest.fixture(scope="module")
def tensor():
    return COOTensor.random((60, 50, 40), 2000, rng=3).astype(np.float64)


@pytest.fixture(scope="module")
def mats(tensor):
    rng = np.random.default_rng(9)
    return [rng.random((s, 4)) for s in tensor.shape]


def make_chaos(nthreads=2, default_chunk=256, **kw):
    return ChaosBackend(
        OpenMPBackend(nthreads=nthreads, default_chunk=default_chunk), **kw
    )


class IdentKeyedPool(WorkspacePool):
    """The pre-fix workspace pool: arenas keyed by raw OS thread ident.

    The ``"legacy"`` tag keeps :meth:`WorkspacePool._adopt_departed` from
    reclaiming these arenas, reproducing the original behavior exactly:
    every new worker thread ident costs one arena, forever.
    """

    def _key(self):
        return ("legacy", threading.get_ident())


class TestShuffleDeterminism:
    def run_order(self, seed, total=64, chunk=8):
        chaos = make_chaos(nthreads=1, seed=seed)
        order = []
        try:
            chaos.parallel_for(
                total, lambda lo, hi: order.append((lo, hi)),
                schedule="dynamic", chunk=chunk,
            )
        finally:
            chaos.shutdown()
        return order

    def test_same_seed_replays_same_order(self):
        assert self.run_order(3) == self.run_order(3)

    def test_order_is_shuffled_but_covering(self):
        order = self.run_order(3)
        expected = [(i, i + 8) for i in range(0, 64, 8)]
        assert sorted(order) == expected
        assert order != expected, "seed 3 must actually permute the chunks"

    def test_different_seeds_differ(self):
        assert self.run_order(3) != self.run_order(4)

    def test_reseed_restarts_stream(self):
        chaos = make_chaos(nthreads=1, seed=7)
        try:
            a, b = [], []
            chaos.parallel_for(
                64, lambda lo, hi: a.append(lo), schedule="dynamic", chunk=8
            )
            chaos.reseed(7)
            chaos.parallel_for(
                64, lambda lo, hi: b.append(lo), schedule="dynamic", chunk=8
            )
            assert a == b
        finally:
            chaos.shutdown()

    def test_shuffle_off_preserves_chunk_order(self):
        chaos = make_chaos(nthreads=1, seed=0, shuffle=False)
        try:
            order = []
            chaos.parallel_for(
                40, lambda lo, hi: order.append(lo), schedule="dynamic", chunk=8
            )
            assert order == [0, 8, 16, 24, 32]
        finally:
            chaos.shutdown()


class TestChaosEquivalence:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_mttkrp_matches_reference_under_chaos(self, tensor, mats, seed):
        ref = coo_mttkrp(tensor, mats, 0)
        chaos = make_chaos(seed=seed, churn=0.5)
        try:
            got = coo_mttkrp(tensor, mats, 0, backend=chaos, schedule="dynamic")
            np.testing.assert_allclose(got, ref, rtol=1e-12)
        finally:
            chaos.shutdown()

    def test_ttv_matches_reference_under_chaos(self, tensor):
        v = np.random.default_rng(2).random(tensor.shape[1])
        ref = coo_ttv(tensor, v, 1)
        chaos = make_chaos(seed=5, churn=0.3)
        try:
            got = coo_ttv(tensor, v, 1, backend=chaos, schedule="dynamic")
            assert ref.allclose(got, rtol=1e-12)
        finally:
            chaos.shutdown()

    def test_owner_method_bit_identical_under_chaos(self, tensor, mats):
        ref = coo_mttkrp(tensor, mats, 0)
        chaos = make_chaos(seed=11, churn=0.5)
        try:
            got = coo_mttkrp(tensor, mats, 0, backend=chaos, method="owner")
            assert np.array_equal(got, ref)
        finally:
            chaos.shutdown()


class TestWorkerChurnRegressionTrap:
    """ISSUE acceptance: churn fails on the pre-fix pool, passes after."""

    def test_fixed_pool_survives_total_churn(self, tensor, mats):
        ref = coo_mttkrp(tensor, mats, 0)
        chaos = make_chaos(seed=5, churn=1.0)
        try:
            got = coo_mttkrp(tensor, mats, 0, backend=chaos, schedule="dynamic")
            np.testing.assert_allclose(got, ref, rtol=1e-12)
            # More fresh threads ran chunks than the pool may hold arenas:
            # only slot keying makes that survivable.
            assert chaos.churned > chaos.nthreads
            with chaos.workspace((tensor.shape[0], 4), np.float64) as pool:
                assert pool.narenas <= chaos.nthreads
        finally:
            chaos.shutdown()

    def test_ident_keyed_pool_blows_arena_bound(self, tensor, mats):
        chaos = make_chaos(seed=5, churn=1.0)
        chaos.workspace_cls = IdentKeyedPool
        try:
            with pytest.raises(RuntimeError, match="invariant violated"):
                coo_mttkrp(tensor, mats, 0, backend=chaos, schedule="dynamic")
        finally:
            chaos.shutdown()

    def test_churned_threads_get_distinct_idents(self):
        chaos = make_chaos(nthreads=1, seed=0, shuffle=False, churn=1.0)
        idents = []
        try:
            chaos.parallel_for(
                40, lambda lo, hi: idents.append(threading.get_ident()),
                schedule="dynamic", chunk=8,
            )
            # Parked (still-alive) churn threads guarantee distinctness.
            assert len(set(idents)) == 5 == chaos.churned
        finally:
            chaos.shutdown()

    def test_drain_joins_parked_threads(self):
        chaos = make_chaos(nthreads=1, seed=0, churn=1.0)
        try:
            before = threading.active_count()
            chaos.parallel_for(32, lambda lo, hi: None, schedule="dynamic", chunk=8)
            # _execute drains on exit: no parked thread outlives the region.
            assert threading.active_count() == before
            assert chaos._parked == []
        finally:
            chaos.shutdown()


class TestFailureInjection:
    def test_fail_chunks_raises_and_skips_rest(self):
        chaos = make_chaos(nthreads=1, seed=0, shuffle=False, fail_chunks={2})
        ran = []
        try:
            with pytest.raises(ChaosError, match=r"chunk 2 \[16, 24\)"):
                chaos.parallel_for(
                    40, lambda lo, hi: ran.append(lo), schedule="dynamic", chunk=8
                )
            # Chunks after the injected failure never start (mirrors the
            # executor cancelling not-yet-started futures).
            assert ran == [0, 8]
        finally:
            chaos.shutdown()

    def test_failure_rate_one_fails_first_chunk(self):
        chaos = make_chaos(nthreads=1, seed=1, failure_rate=1.0)
        ran = []
        try:
            with pytest.raises(ChaosError, match="injected failure"):
                chaos.parallel_for(
                    40, lambda lo, hi: ran.append(lo), schedule="dynamic", chunk=8
                )
            assert ran == []
        finally:
            chaos.shutdown()

    def test_earliest_chunk_order_failure_wins(self):
        # Shuffled execution, two injected failures: the raised error is
        # the earliest in *chunk* order regardless of execution order.
        chaos = make_chaos(nthreads=1, seed=9, fail_chunks={1, 3})
        try:
            with pytest.raises(ChaosError, match="chunk [13] "):
                chaos.parallel_for(40, lambda lo, hi: None, schedule="dynamic", chunk=8)
        finally:
            chaos.shutdown()

    def test_body_exception_propagates(self):
        chaos = make_chaos(nthreads=1, seed=0, shuffle=False)

        def body(lo, hi):
            if lo == 16:
                raise ValueError("kernel bug")

        try:
            with pytest.raises(ValueError, match="kernel bug"):
                chaos.parallel_for(40, body, schedule="dynamic", chunk=8)
        finally:
            chaos.shutdown()

    def test_exception_inside_churned_chunk_propagates(self):
        chaos = make_chaos(nthreads=1, seed=0, shuffle=False, churn=1.0)

        def body(lo, hi):
            if lo == 8:
                raise ValueError("churned bug")

        try:
            with pytest.raises(ValueError, match="churned bug"):
                chaos.parallel_for(24, body, schedule="dynamic", chunk=8)
            assert chaos._parked == []  # error path still drains
        finally:
            chaos.shutdown()

    def test_usable_after_failure(self, tensor, mats):
        chaos = make_chaos(seed=0, fail_chunks={0})
        try:
            with pytest.raises(ChaosError):
                coo_mttkrp(tensor, mats, 0, backend=chaos, schedule="dynamic")
            chaos.fail_chunks = frozenset()
            got = coo_mttkrp(tensor, mats, 0, backend=chaos, schedule="dynamic")
            np.testing.assert_allclose(got, coo_mttkrp(tensor, mats, 0), rtol=1e-12)
        finally:
            chaos.shutdown()


class TestChaosWiring:
    def test_requires_planning_inner(self):
        from repro.parallel import SequentialBackend

        with pytest.raises(TypeError, match="plan"):
            ChaosBackend(SequentialBackend())

    def test_is_threaded_accounts_for_churn(self):
        solo = make_chaos(nthreads=1)
        churny = make_chaos(nthreads=1, churn=0.5)
        wide = make_chaos(nthreads=4)
        try:
            assert not solo.is_threaded
            assert churny.is_threaded
            assert wide.is_threaded
        finally:
            for be in (solo, churny, wide):
                be.shutdown()

    def test_map_ranges_covers(self):
        chaos = make_chaos(nthreads=2, seed=2)
        seen = []
        try:
            chaos.map_ranges(
                [(0, 5), (5, 9), (9, 12)], lambda lo, hi: seen.append((lo, hi))
            )
            assert sorted(seen) == [(0, 5), (5, 9), (9, 12)]
        finally:
            chaos.shutdown()

    def test_empty_loop_noop(self):
        chaos = make_chaos(nthreads=2)
        try:
            chaos.parallel_for(0, lambda lo, hi: pytest.fail("must not run"))
        finally:
            chaos.shutdown()
