"""Tests for the slot-aware metrics registry (repro.obs.registry)."""

import json
import threading

import pytest

from repro.obs import MetricsRegistry, Tracer, get_metrics, set_metrics
from repro.obs.registry import MetricsError


class TestCountersAndGauges:
    def test_counter_accumulates_per_label_set(self):
        reg = MetricsRegistry()
        reg.inc("runs", kernel="ttv", fmt="coo")
        reg.inc("runs", 2, kernel="ttv", fmt="coo")
        reg.inc("runs", kernel="ttv", fmt="hicoo")
        assert reg.counter_value("runs", kernel="ttv", fmt="coo") == 3.0
        assert reg.counter_value("runs", kernel="ttv", fmt="hicoo") == 1.0
        assert reg.counter_value("runs", kernel="mttkrp") == 0.0
        assert reg.counter_value("absent") == 0.0

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        reg.inc("c", kernel="ttv", fmt="coo")
        reg.inc("c", fmt="coo", kernel="ttv")
        assert reg.counter_value("c", fmt="coo", kernel="ttv") == 2.0

    def test_gauge_keeps_last_value_per_cell(self):
        reg = MetricsRegistry()
        reg.set_gauge("level", 5.0, pool="a")
        reg.set_gauge("level", 3.0, pool="a")
        assert reg.gauge_value("level", pool="a") == 3.0

    def test_kind_clash_raises(self):
        reg = MetricsRegistry()
        reg.inc("x")
        with pytest.raises(MetricsError):
            reg.set_gauge("x", 1.0)
        with pytest.raises(MetricsError):
            reg.observe("x", 1.0)

    def test_concurrent_increments_from_threads(self):
        reg = MetricsRegistry()

        def worker():
            for _ in range(500):
                reg.inc("hits", kernel="ttv")

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.counter_value("hits", kernel="ttv") == 2000.0


class TestHistograms:
    def test_observe_and_snapshot(self):
        reg = MetricsRegistry()
        for v in (0.0005, 0.003, 0.003, 10.0, 1e9):
            reg.observe("lat", v, kernel="ttv")
        snap = reg.histogram_snapshot("lat", kernel="ttv")
        assert snap["count"] == 5
        assert snap["sum"] == pytest.approx(1e9 + 10.0065)
        # Cumulative bucket counts; the huge value only lands in +Inf.
        assert snap["buckets"]["0.0005"] == 1
        assert snap["buckets"]["0.005"] == 3
        assert snap["buckets"]["10"] == 4
        assert snap["buckets"]["+Inf"] == 5

    def test_custom_buckets_and_validation(self):
        reg = MetricsRegistry()
        reg.observe("d", 1.5, buckets=(1.0, 2.0))
        snap = reg.histogram_snapshot("d")
        assert snap["buckets"] == {"1": 0, "2": 1, "+Inf": 1}
        with pytest.raises(MetricsError):
            MetricsRegistry().observe("bad", 1.0, buckets=(2.0, 1.0))

    def test_missing_histogram_snapshot_is_empty(self):
        reg = MetricsRegistry()
        assert reg.histogram_snapshot("none") == {
            "count": 0, "sum": 0.0, "buckets": {},
        }


class TestExporters:
    def _populated(self):
        reg = MetricsRegistry()
        reg.inc("exec.completed", 3, kernel="mttkrp", fmt="hicoo")
        reg.set_gauge("ws.bytes", 4096.0, pool="main")
        reg.observe("case_s", 0.02, buckets=(0.01, 0.1), kernel="mttkrp")
        return reg

    def test_prometheus_text_format(self):
        text = self._populated().render_prometheus()
        assert "# TYPE exec_completed counter" in text
        assert 'exec_completed{fmt="hicoo",kernel="mttkrp"} 3' in text
        assert "# TYPE ws_bytes gauge" in text
        assert 'ws_bytes{pool="main"} 4096' in text
        assert 'case_s_bucket{kernel="mttkrp",le="0.1"} 1' in text
        assert 'case_s_bucket{kernel="mttkrp",le="+Inf"} 1' in text
        assert 'case_s_count{kernel="mttkrp"} 1' in text
        assert text.endswith("\n")

    def test_prometheus_escapes_label_values(self):
        reg = MetricsRegistry()
        reg.inc("c", path='we"ird\\path\n')
        text = reg.render_prometheus()
        assert r'path="we\"ird\\path\n"' in text

    def test_as_dict_round_trips_json(self):
        d = self._populated().as_dict()
        assert json.loads(json.dumps(d)) == d
        assert d["counters"]["exec.completed"][0]["value"] == 3.0
        assert d["gauges"]["ws.bytes"][0]["labels"] == {"pool": "main"}
        assert d["histograms"]["case_s"][0]["count"] == 1

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().render_prometheus() == ""
        assert MetricsRegistry().as_dict() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_clear(self):
        reg = self._populated()
        reg.clear()
        assert reg.as_dict()["counters"] == {}


class TestTraceAbsorption:
    def test_absorb_trace_counters_and_gauge_peaks(self):
        tracer = Tracer()
        tracer.count("kernel.nnz", 100)
        tracer.gauge("arena", 512.0)
        tracer.gauge("arena", 128.0)  # shrank: peak must survive
        reg = MetricsRegistry()
        reg.absorb_trace(tracer.freeze(), kernel="ttv", fmt="coo")
        assert reg.counter_value("kernel.nnz", kernel="ttv", fmt="coo") == 100.0
        assert reg.gauge_value("arena", kernel="ttv", fmt="coo") == 512.0


class TestGlobalRegistry:
    def test_get_set_roundtrip(self):
        mine = MetricsRegistry()
        prev = set_metrics(mine)
        try:
            assert get_metrics() is mine
        finally:
            set_metrics(prev)
        assert get_metrics() is prev


class TestExecutorFeed:
    def test_sweep_feeds_registry(self, tmp_path):
        from repro.bench import (
            ExecutorConfig,
            RunnerConfig,
            RunStore,
            SuiteExecutor,
            enumerate_cases,
        )

        specs = {"tiny": {"kind": "random", "shape": (30, 20, 10), "nnz": 300, "seed": 1}}
        cfg = RunnerConfig(
            measure_host=False,
            kernels=("ttv",), formats=("coo",),
        )
        cases = enumerate_cases(specs, cfg, platforms=("Bluesky",))
        mine = MetricsRegistry()
        prev = set_metrics(mine)
        try:
            SuiteExecutor(
                cases,
                RunStore(tmp_path / "s.jsonl"),
                ExecutorConfig(isolation="inline"),
            ).run()
        finally:
            set_metrics(prev)
        assert mine.counter_value(
            "exec.completed", kernel="ttv", fmt="coo", platform="Bluesky"
        ) == 1.0
        snap = mine.histogram_snapshot(
            "exec.case_seconds", kernel="ttv", fmt="coo", platform="Bluesky"
        )
        assert snap["count"] == 1 and snap["sum"] > 0.0
