"""Parametric conversion-matrix tests: every format through as_format."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.sptensor import (
    COOTensor,
    CSFTensor,
    GHiCOOTensor,
    HiCOOTensor,
    SemiCOOTensor,
    SemiHiCOOTensor,
    as_format,
    to_coo,
)
from repro.types import Format


@pytest.fixture(scope="module")
def base():
    return COOTensor.random((30, 25, 20), nnz=500, rng=6)


EXPECTED_TYPE = {
    Format.COO: COOTensor,
    Format.HICOO: HiCOOTensor,
    Format.GHICOO: GHiCOOTensor,
    Format.SCOO: SemiCOOTensor,
    Format.SHICOO: SemiHiCOOTensor,
    Format.CSF: CSFTensor,
}


class TestAsFormat:
    @pytest.mark.parametrize("fmt", list(Format))
    def test_roundtrip_every_format(self, base, fmt):
        kw = {}
        if fmt in (Format.SCOO, Format.SHICOO):
            kw["dense_modes"] = (2,)
        converted = as_format(base, fmt, block_size=8, **kw)
        assert isinstance(converted, EXPECTED_TYPE[fmt])
        assert to_coo(converted).allclose(base, rtol=1e-5, atol=1e-6)

    @pytest.mark.parametrize(
        "src_fmt", [Format.HICOO, Format.GHICOO, Format.CSF]
    )
    @pytest.mark.parametrize(
        "dst_fmt", [Format.COO, Format.HICOO, Format.CSF]
    )
    def test_cross_conversions(self, base, src_fmt, dst_fmt):
        src = as_format(base, src_fmt, block_size=8)
        dst = as_format(src, dst_fmt, block_size=16)
        assert to_coo(dst).allclose(base, rtol=1e-5, atol=1e-6)

    def test_ghicoo_compressed_modes_forwarded(self, base):
        g = as_format(base, "ghicoo", block_size=8, compressed_modes=(0, 2))
        assert g.compressed_modes == (0, 2)

    def test_csf_mode_order_forwarded(self, base):
        c = as_format(base, "csf", mode_order=(2, 0, 1))
        assert c.mode_order == (2, 0, 1)

    def test_scoo_requires_dense_modes(self, base):
        with pytest.raises(FormatError):
            as_format(base, "scoo")
        with pytest.raises(FormatError):
            as_format(base, "shicoo")

    def test_string_format_names(self, base):
        assert isinstance(as_format(base, "hicoo"), HiCOOTensor)

    def test_to_coo_identity(self, base):
        assert to_coo(base) is base

    def test_to_coo_rejects_unknown(self):
        with pytest.raises(FormatError):
            to_coo(object())

    @pytest.mark.parametrize("fmt", [Format.HICOO, Format.GHICOO, Format.CSF])
    def test_empty_tensor_every_format(self, fmt):
        empty = COOTensor.empty((5, 5, 5))
        converted = as_format(empty, fmt, block_size=4)
        assert to_coo(converted).nnz == 0

    def test_storage_comparison_across_formats(self, base):
        """All formats store the same values; bytes differ by metadata."""
        sizes = {
            fmt: as_format(base, fmt, block_size=8).nbytes
            for fmt in (Format.COO, Format.HICOO, Format.CSF)
        }
        assert all(v > 0 for v in sizes.values())
        # value payload alone is a lower bound for every format
        assert min(sizes.values()) >= base.nnz * 4
