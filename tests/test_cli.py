"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.sptensor import load_npz, read_tns


class TestInfo:
    def test_info_runs(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Bluesky" in out and "DGX-1V" in out


class TestGenerate:
    def test_kron_to_tns(self, tmp_path, capsys):
        out = tmp_path / "k.tns"
        rc = main([
            "generate", "--kind", "kron", "--shape", "64", "64", "64",
            "--nnz", "200", "--seed", "1", "-o", str(out),
        ])
        assert rc == 0
        t = read_tns(out)
        assert t.nnz == 200

    def test_pl_to_npz(self, tmp_path):
        out = tmp_path / "p.npz"
        rc = main([
            "generate", "--kind", "pl", "--shape", "300", "300", "8",
            "--nnz", "400", "--dense-modes", "2", "-o", str(out),
        ])
        assert rc == 0
        assert load_npz(out).nnz == 400

    def test_table3_config(self, tmp_path):
        out = tmp_path / "s.npz"
        rc = main([
            "generate", "--kind", "table3", "--name", "irrS",
            "--scale", "5000", "-o", str(out),
        ])
        assert rc == 0
        assert load_npz(out).nmodes == 3

    def test_table2_surrogate(self, tmp_path):
        out = tmp_path / "r.npz"
        rc = main([
            "generate", "--kind", "table2", "--name", "uber4d",
            "--scale", "2000", "-o", str(out),
        ])
        assert rc == 0
        assert load_npz(out).nmodes == 4

    def test_missing_shape_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "--kind", "kron", "-o", str(tmp_path / "x.tns")])

    def test_missing_name_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "--kind", "table3", "-o", str(tmp_path / "x.tns")])


class TestBench:
    def test_table1(self, capsys):
        assert main(["bench", "--exp", "table1"]) == 0
        assert "mttkrp" in capsys.readouterr().out

    def test_table4_csv(self, tmp_path, capsys):
        csv = tmp_path / "t4.csv"
        assert main(["bench", "--exp", "table4", "--csv", str(csv)]) == 0
        assert csv.exists()

    def test_fig3(self, capsys):
        assert main(["bench", "--exp", "fig3"]) == 0
        assert "Bluesky" in capsys.readouterr().out

    def test_fig4_subset(self, capsys):
        rc = main([
            "bench", "--exp", "fig4", "--scale", "20000",
            "--dataset", "synthetic", "--tensors", "irrS",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "irrS" in out and "mttkrp" in out


class TestSelfcheck:
    def test_generated_tensor_passes(self, capsys):
        rc = main(["selfcheck", "--shape", "20", "18", "16", "--nnz", "300"])
        assert rc == 0
        assert "PASSED" in capsys.readouterr().out

    def test_file_input(self, tmp_path, capsys):
        src = tmp_path / "v.tns"
        main([
            "generate", "--kind", "pl", "--shape", "30", "30", "4",
            "--nnz", "120", "--dense-modes", "2", "-o", str(src),
        ])
        capsys.readouterr()
        assert main(["selfcheck", str(src)]) == 0
        assert "PASSED" in capsys.readouterr().out


class TestTune:
    def test_tune_file(self, tmp_path, capsys):
        src = tmp_path / "t.npz"
        main([
            "generate", "--kind", "pl", "--shape", "400", "400", "8",
            "--nnz", "1500", "--dense-modes", "2", "-o", str(src),
        ])
        capsys.readouterr()
        assert main(["tune", str(src), "--kernels", "mttkrp", "ttv"]) == 0
        out = capsys.readouterr().out
        assert "recommended format" in out
        assert "coo" in out and "hicoo" in out

    def test_chart_flag(self, capsys):
        rc = main([
            "bench", "--exp", "fig4", "--scale", "20000",
            "--dataset", "synthetic", "--tensors", "irrS", "--chart",
        ])
        assert rc == 0
        assert "█" in capsys.readouterr().out


class TestConvert:
    def test_convert_roundtrip(self, tmp_path, capsys):
        src = tmp_path / "a.tns"
        main([
            "generate", "--kind", "pl", "--shape", "100", "100", "4",
            "--nnz", "150", "--dense-modes", "2", "-o", str(src),
        ])
        dst = tmp_path / "a.npz"
        assert main(["convert", str(src), "-o", str(dst)]) == 0
        out = capsys.readouterr().out
        assert "HiCOO" in out
        assert load_npz(dst).nnz == 150


class TestObservability:
    def _sweep(self, tmp_path, name):
        store = tmp_path / name
        rc = main([
            "sweep", "--dataset", "synthetic", "--tensors", "regS", "irrS",
            "--scale", "300", "--isolation", "inline", "--measure-host",
            "--store", str(store),
        ])
        assert rc == 0
        return store

    def test_report_from_store(self, tmp_path, capsys):
        store = self._sweep(tmp_path, "a.jsonl")
        capsys.readouterr()
        assert main(["report", "--store", str(store)]) == 0
        out = capsys.readouterr().out
        assert "Observation 1" in out and "Observation 5" in out
        assert "bound" in out

    def test_report_markdown_and_json(self, tmp_path, capsys):
        import json

        store = self._sweep(tmp_path, "a.jsonl")
        capsys.readouterr()
        assert main(["report", "--store", str(store), "--format", "markdown"]) == 0
        assert "|---|" in capsys.readouterr().out
        assert main(["report", "--store", str(store), "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["nrecords"] > 0 and len(doc["sections"]) == 5

    def test_report_empty_store_fails(self, tmp_path, capsys):
        empty = tmp_path / "e.jsonl"
        empty.write_text("")
        assert main(["report", "--store", str(empty)]) == 1

    def test_regress_self_compare_is_clean(self, tmp_path, capsys):
        store = self._sweep(tmp_path, "a.jsonl")
        capsys.readouterr()
        assert main(["regress", str(store), str(store)]) == 0
        out = capsys.readouterr().out
        assert "0 regressed" in out

    def test_regress_detects_injected_slowdown(self, tmp_path, capsys, monkeypatch):
        a = self._sweep(tmp_path, "a.jsonl")
        monkeypatch.setenv("REPRO_PERF_DRAG", "ttv:0.05")
        b = self._sweep(tmp_path, "b.jsonl")
        monkeypatch.delenv("REPRO_PERF_DRAG")
        capsys.readouterr()
        rc = main(["regress", str(a), str(b), "--threshold", "3.0"])
        out = capsys.readouterr().out
        assert rc == 1
        assert "ttv/coo" in out and "regressed" in out

    def test_regress_json_output(self, tmp_path, capsys):
        import json

        store = self._sweep(tmp_path, "a.jsonl")
        capsys.readouterr()
        assert main(["regress", str(store), str(store), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["exit_code"] == 0
        assert all(g["classification"] == "neutral" for g in doc["groups"])

    def test_regress_missing_input_exits_two(self, tmp_path, capsys):
        assert main(["regress", "/nonexistent/a.jsonl", "/nonexistent/b.jsonl"]) == 2

    def test_metrics_from_store(self, tmp_path, capsys):
        import json

        store = self._sweep(tmp_path, "a.jsonl")
        capsys.readouterr()
        assert main(["metrics", "--store", str(store)]) == 0
        prom = capsys.readouterr().out
        assert "# TYPE exec_completed counter" in prom
        assert 'kernel="ttv"' in prom
        assert main(["metrics", "--store", str(store), "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert "exec.completed" in doc["counters"]

    def test_sweep_writes_metrics_file(self, tmp_path, capsys):
        store = tmp_path / "a.jsonl"
        prom_path = tmp_path / "m.prom"
        rc = main([
            "sweep", "--dataset", "synthetic", "--tensors", "irrS",
            "--scale", "300", "--isolation", "inline",
            "--store", str(store), "--metrics", str(prom_path),
        ])
        assert rc == 0
        text = prom_path.read_text()
        assert "# TYPE exec_completed counter" in text
        assert "exec_case_seconds_bucket" in text

    def test_trace_prints_attribution(self, tmp_path, capsys):
        rc = main([
            "trace", "--kernel", "ttv", "--fmt", "coo",
            "--shape", "60", "40", "10", "--nnz", "600",
            "-o", str(tmp_path / "trace.json"),
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "roofline (Bluesky)" in out
        assert "bound fraction" in out and "effective DRAM bw" in out
