"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.sptensor import load_npz, read_tns


class TestInfo:
    def test_info_runs(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "Bluesky" in out and "DGX-1V" in out


class TestGenerate:
    def test_kron_to_tns(self, tmp_path, capsys):
        out = tmp_path / "k.tns"
        rc = main([
            "generate", "--kind", "kron", "--shape", "64", "64", "64",
            "--nnz", "200", "--seed", "1", "-o", str(out),
        ])
        assert rc == 0
        t = read_tns(out)
        assert t.nnz == 200

    def test_pl_to_npz(self, tmp_path):
        out = tmp_path / "p.npz"
        rc = main([
            "generate", "--kind", "pl", "--shape", "300", "300", "8",
            "--nnz", "400", "--dense-modes", "2", "-o", str(out),
        ])
        assert rc == 0
        assert load_npz(out).nnz == 400

    def test_table3_config(self, tmp_path):
        out = tmp_path / "s.npz"
        rc = main([
            "generate", "--kind", "table3", "--name", "irrS",
            "--scale", "5000", "-o", str(out),
        ])
        assert rc == 0
        assert load_npz(out).nmodes == 3

    def test_table2_surrogate(self, tmp_path):
        out = tmp_path / "r.npz"
        rc = main([
            "generate", "--kind", "table2", "--name", "uber4d",
            "--scale", "2000", "-o", str(out),
        ])
        assert rc == 0
        assert load_npz(out).nmodes == 4

    def test_missing_shape_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "--kind", "kron", "-o", str(tmp_path / "x.tns")])

    def test_missing_name_errors(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["generate", "--kind", "table3", "-o", str(tmp_path / "x.tns")])


class TestBench:
    def test_table1(self, capsys):
        assert main(["bench", "--exp", "table1"]) == 0
        assert "mttkrp" in capsys.readouterr().out

    def test_table4_csv(self, tmp_path, capsys):
        csv = tmp_path / "t4.csv"
        assert main(["bench", "--exp", "table4", "--csv", str(csv)]) == 0
        assert csv.exists()

    def test_fig3(self, capsys):
        assert main(["bench", "--exp", "fig3"]) == 0
        assert "Bluesky" in capsys.readouterr().out

    def test_fig4_subset(self, capsys):
        rc = main([
            "bench", "--exp", "fig4", "--scale", "20000",
            "--dataset", "synthetic", "--tensors", "irrS",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "irrS" in out and "mttkrp" in out


class TestSelfcheck:
    def test_generated_tensor_passes(self, capsys):
        rc = main(["selfcheck", "--shape", "20", "18", "16", "--nnz", "300"])
        assert rc == 0
        assert "PASSED" in capsys.readouterr().out

    def test_file_input(self, tmp_path, capsys):
        src = tmp_path / "v.tns"
        main([
            "generate", "--kind", "pl", "--shape", "30", "30", "4",
            "--nnz", "120", "--dense-modes", "2", "-o", str(src),
        ])
        capsys.readouterr()
        assert main(["selfcheck", str(src)]) == 0
        assert "PASSED" in capsys.readouterr().out


class TestTune:
    def test_tune_file(self, tmp_path, capsys):
        src = tmp_path / "t.npz"
        main([
            "generate", "--kind", "pl", "--shape", "400", "400", "8",
            "--nnz", "1500", "--dense-modes", "2", "-o", str(src),
        ])
        capsys.readouterr()
        assert main(["tune", str(src), "--kernels", "mttkrp", "ttv"]) == 0
        out = capsys.readouterr().out
        assert "recommended format" in out
        assert "coo" in out and "hicoo" in out

    def test_chart_flag(self, capsys):
        rc = main([
            "bench", "--exp", "fig4", "--scale", "20000",
            "--dataset", "synthetic", "--tensors", "irrS", "--chart",
        ])
        assert rc == 0
        assert "█" in capsys.readouterr().out


class TestConvert:
    def test_convert_roundtrip(self, tmp_path, capsys):
        src = tmp_path / "a.tns"
        main([
            "generate", "--kind", "pl", "--shape", "100", "100", "4",
            "--nnz", "150", "--dense-modes", "2", "-o", str(src),
        ])
        dst = tmp_path / "a.npz"
        assert main(["convert", str(src), "-o", str(dst)]) == 0
        out = capsys.readouterr().out
        assert "HiCOO" in out
        assert load_npz(dst).nnz == 150
