"""Tests for the compiled execution tier (``repro.compiled``).

The load-bearing contract is *bit-compatibility by floating-point
schedule*: the compiled tier's deterministic lowerings replay the exact
summation order of their NumPy-tier partners (``atomic``/``owner`` ->
linear per-row accumulation, ``sort``/fibers -> pairwise ``reduceat``,
elementwise -> one rounding per element), so the equivalence matrix below
asserts ``array_equal``, not ``allclose`` — except the ``atomic`` method,
whose per-thread slab reduction legitimately reassociates on both tiers.

Everything here runs without Numba (the fused fallback *is* the compiled
tier then); the Numba-specific tests skip cleanly via ``importorskip``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.compiled import (
    DESCRIPTORS,
    ENV_VAR,
    TIERS,
    available,
    compile_stats,
    default_tier,
    describe_all,
    descriptor_for,
    killed,
    resolve_tier,
)
from repro.compiled.plans import cached_plan, scatter_plan
from repro.kernels import (
    coo_mttkrp,
    coo_tew,
    coo_ts,
    coo_ttm,
    coo_ttv,
    hicoo_mttkrp,
    hicoo_tew,
    hicoo_ts,
    hicoo_ttm,
    hicoo_ttv,
)
from repro.parallel import ChaosBackend, OpenMPBackend, RaceCheckBackend
from repro.sptensor import COOTensor, HiCOOTensor
from repro.tune import TIER_DISPATCH_S, recommend_tier
from tests.conftest import random_mats

RANK = 5


@pytest.fixture
def omp():
    be = OpenMPBackend(nthreads=4)
    yield be
    be.shutdown()


def _tensor(dtype):
    return COOTensor.random((40, 30, 20), nnz=900, rng=7).astype(dtype).sort()


# ------------------------------------------------------------------ #
# Descriptor registry
# ------------------------------------------------------------------ #
class TestDescriptors:
    def test_registry_covers_issue_matrix(self):
        for fmt in ("coo", "hicoo"):
            for method in ("atomic", "sort", "owner"):
                assert descriptor_for("mttkrp", fmt, method) is not None
            assert descriptor_for("tew", fmt, "elementwise") is not None
            assert descriptor_for("ts", fmt, "elementwise") is not None
        for fmt in ("coo", "hicoo", "ghicoo"):
            assert descriptor_for("ttv", fmt, "fiber") is not None
            assert descriptor_for("ttm", fmt, "fiber") is not None

    def test_unknown_cell_has_no_descriptor(self):
        assert descriptor_for("mttkrp", "csf", "atomic") is None
        assert descriptor_for("nope", "coo", "atomic") is None

    def test_describe_all_renders_every_nest(self):
        text = describe_all()
        assert len(text.splitlines()) >= len(DESCRIPTORS)
        assert "mttkrp" in text and "dense-rows" in text


# ------------------------------------------------------------------ #
# Tier resolution and gating
# ------------------------------------------------------------------ #
class TestTierResolution:
    def test_default_tier_is_numpy_when_env_unset(self, monkeypatch):
        monkeypatch.delenv(ENV_VAR, raising=False)
        assert default_tier() == "numpy"
        assert not killed()
        assert resolve_tier(None, kernel="mttkrp", fmt="coo",
                            method="atomic") == "numpy"

    def test_env_1_flips_default_to_auto(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "1")
        assert default_tier() == "auto"

    def test_env_0_kills_even_explicit_requests(self, monkeypatch):
        monkeypatch.setenv(ENV_VAR, "0")
        assert killed()
        assert resolve_tier("compiled", kernel="mttkrp", fmt="coo",
                            method="atomic") == "numpy"

    def test_unknown_tier_rejected(self):
        with pytest.raises(ValueError, match="unknown execution tier"):
            resolve_tier("fortran", kernel="mttkrp", fmt="coo",
                         method="atomic")
        assert set(TIERS) == {"numpy", "compiled", "auto"}

    def test_cells_without_descriptor_stay_numpy(self):
        assert resolve_tier("compiled", kernel="mttkrp", fmt="csf",
                            method="atomic") == "numpy"

    def test_racecheck_and_chaos_backends_refuse_compiled(self):
        rc = RaceCheckBackend(nthreads=2, default_chunk=64)
        ch = ChaosBackend(OpenMPBackend(nthreads=2))
        for be in (rc, ch):
            assert not be.supports_compiled
            assert resolve_tier("compiled", backend=be, kernel="mttkrp",
                                fmt="coo", method="atomic") == "numpy"

    def test_available_probe_never_raises(self):
        assert available() in (True, False)


class TestAutoThreshold:
    def test_tiny_tensors_stay_numpy(self):
        assert recommend_tier("mttkrp", nnz=10, r=4) == "numpy"

    def test_large_tensors_go_compiled(self):
        assert recommend_tier("mttkrp", nnz=1_000_000, r=16) == "compiled"

    def test_dispatch_overhead_orders(self):
        # The compiled tier charges more dispatch overhead (plan-cache
        # lookup + JIT dispatch), which is what protects tiny tensors.
        assert TIER_DISPATCH_S["compiled"] > TIER_DISPATCH_S["numpy"]

    def test_auto_resolves_through_resolve_tier(self):
        small = resolve_tier("auto", kernel="mttkrp", fmt="coo",
                             method="atomic", nnz=10, r=4)
        big = resolve_tier("auto", kernel="mttkrp", fmt="coo",
                           method="atomic", nnz=1_000_000, r=16)
        assert small == "numpy"
        assert big == "compiled"


# ------------------------------------------------------------------ #
# Equivalence matrix: compiled vs NumPy tier
# ------------------------------------------------------------------ #
@pytest.mark.parametrize("dtype", [np.float32, np.float64])
class TestMttkrpEquivalence:
    @pytest.mark.parametrize("fmt", ["coo", "hicoo"])
    @pytest.mark.parametrize("method", ["atomic", "sort", "owner"])
    def test_matrix(self, fmt, method, dtype, omp):
        x = _tensor(dtype)
        mats = random_mats(x.shape, RANK, seed=3, dtype=dtype)
        if fmt == "hicoo":
            x = HiCOOTensor.from_coo(x, block_size=8)
            fn = hicoo_mttkrp
        else:
            fn = coo_mttkrp
        want = fn(x, mats, 0, omp, method=method, tier="numpy")
        got = fn(x, mats, 0, omp, method=method, tier="compiled")
        if method == "atomic":
            # Atomic is the one reassociating method on *both* tiers:
            # the NumPy tier reduces per-thread slabs in thread order,
            # the Numba tier in its own — only tolerance comparison holds.
            rtol = 1e-5 if dtype == np.float32 else 1e-12
            np.testing.assert_allclose(got, want, rtol=rtol)
        else:
            # Deterministic lowerings replay the NumPy tier's exact
            # floating-point schedule.
            assert np.array_equal(got, want)

    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_unsorted_modes_coo(self, mode, dtype, omp):
        # Modes 1/2 scatter an unsorted row stream: exercises the
        # stable-argsort plan path, still bit-identical for owner.
        x = _tensor(dtype)
        mats = random_mats(x.shape, RANK, seed=4, dtype=dtype)
        want = coo_mttkrp(x, mats, mode, omp, method="owner", tier="numpy")
        got = coo_mttkrp(x, mats, mode, omp, method="owner", tier="compiled")
        assert np.array_equal(got, want)


@pytest.mark.parametrize("dtype", [np.float32, np.float64])
class TestFiberAndValueEquivalence:
    def test_ttv(self, dtype, omp):
        x = _tensor(dtype)
        h = HiCOOTensor.from_coo(x, block_size=8)
        vec = np.random.default_rng(5).random(x.shape[1]).astype(dtype)
        for fn, t in ((coo_ttv, x), (hicoo_ttv, h)):
            want = fn(t, vec, 1, omp, tier="numpy")
            got = fn(t, vec, 1, omp, tier="compiled")
            assert np.array_equal(got.values, want.values)

    def test_ttm(self, dtype, omp):
        x = _tensor(dtype)
        h = HiCOOTensor.from_coo(x, block_size=8)
        u = np.random.default_rng(6).random((x.shape[1], RANK)).astype(dtype)
        for fn, t in ((coo_ttm, x), (hicoo_ttm, h)):
            want = fn(t, u, 1, omp, tier="numpy")
            got = fn(t, u, 1, omp, tier="compiled")
            assert np.array_equal(got.values, want.values)

    def test_tew(self, dtype, omp):
        x = _tensor(dtype)
        h = HiCOOTensor.from_coo(x, block_size=8)
        for fn, t in ((coo_tew, x), (hicoo_tew, h)):
            for op in ("add", "mul"):
                want = fn(t, t, op, omp, assume_same_pattern=True,
                          tier="numpy")
                got = fn(t, t, op, omp, assume_same_pattern=True,
                         tier="compiled")
                assert np.array_equal(got.values, want.values)

    def test_ts(self, dtype, omp):
        x = _tensor(dtype)
        h = HiCOOTensor.from_coo(x, block_size=8)
        for fn, t in ((coo_ts, x), (hicoo_ts, h)):
            want = fn(t, 1.5, "mul", omp, tier="numpy")
            got = fn(t, 1.5, "mul", omp, tier="compiled")
            assert np.array_equal(got.values, want.values)


class TestSequentialBitIdentity:
    def test_compiled_owner_matches_sequential(self):
        # The paper-level invariant the bench asserts: owner-computes
        # accumulates linearly in storage order on every tier.
        x = _tensor(np.float32)
        mats = random_mats(x.shape, RANK, seed=8, dtype=np.float32)
        ref = coo_mttkrp(x, mats, 0, "sequential")
        got = coo_mttkrp(x, mats, 0, "sequential", method="owner",
                         tier="compiled")
        assert np.array_equal(got, ref)


# ------------------------------------------------------------------ #
# Contract backends still verify the compiled call sites
# ------------------------------------------------------------------ #
class TestContractBackends:
    def test_racecheck_passes_under_compiled_request(self):
        # tier="compiled" degrades to the chunked NumPy tier under the
        # race checker, so its replay contracts still run (and pass).
        rc = RaceCheckBackend(nthreads=4, default_chunk=64)
        x = _tensor(np.float64)
        mats = random_mats(x.shape, RANK, seed=9)
        got = coo_mttkrp(x, mats, 0, rc, method="atomic", tier="compiled")
        want = coo_mttkrp(x, mats, 0, "sequential")
        np.testing.assert_allclose(got, want, rtol=1e-10)

    def test_chaos_passes_under_compiled_request(self):
        ch = ChaosBackend(OpenMPBackend(nthreads=4), churn=1.0)
        x = _tensor(np.float64)
        got = coo_ttv(x, np.ones(x.shape[1]), 1, ch, tier="compiled")
        want = coo_ttv(x, np.ones(x.shape[1]), 1, "sequential")
        np.testing.assert_allclose(got.values, want.values, rtol=1e-10)


# ------------------------------------------------------------------ #
# Plan cache and accounting
# ------------------------------------------------------------------ #
class TestPlansAndStats:
    def test_plan_cached_per_tensor_and_tag(self):
        x = _tensor(np.float64)
        rows = x.indices[:, 0].astype(np.int64)
        p1 = scatter_plan(x, rows, x.shape[0], np.dtype(np.float64), tag=0)
        p2 = scatter_plan(x, rows, x.shape[0], np.dtype(np.float64), tag=0)
        assert p1 is p2
        p3 = scatter_plan(x, x.indices[:, 1].astype(np.int64), x.shape[1],
                          np.dtype(np.float64), tag=1)
        assert p3 is not p1

    def test_sort_invalidates_coo_plan_cache(self):
        x = COOTensor.random((20, 20, 20), nnz=300, rng=11)
        built = []
        cached_plan(x, ("probe",), lambda: built.append(1) or object())
        x.sort()
        cached_plan(x, ("probe",), lambda: built.append(1) or object())
        assert len(built) == 2

    def test_cache_survives_on_foreign_objects(self):
        # Tensors without the _plan_cache slot degrade to build-per-call.
        class Bare:
            __slots__ = ()

        built = []
        cached_plan(Bare(), ("k",), lambda: built.append(1) or object())
        cached_plan(Bare(), ("k",), lambda: built.append(1) or object())
        assert len(built) == 2

    def test_compiled_calls_are_accounted(self, omp):
        x = _tensor(np.float32)
        mats = random_mats(x.shape, RANK, seed=12, dtype=np.float32)
        before = compile_stats()
        coo_mttkrp(x, mats, 0, omp, method="owner", tier="compiled")
        after = compile_stats()
        assert after["calls"] == before["calls"] + 1
        assert after["compile_seconds"] >= before["compile_seconds"]
        if not available():
            # Fallback flavors count as fallback executions.
            assert after["fallback_calls"] == before["fallback_calls"] + 1

    def test_presorted_stream_needs_no_permutation(self):
        x = _tensor(np.float64)
        rows = x.indices[:, 0].astype(np.int64)  # sorted: mode-0 stream
        plan = scatter_plan(x, rows, x.shape[0], np.dtype(np.float64), tag=0)
        assert plan.presorted and plan.order is None


# ------------------------------------------------------------------ #
# Numba-specific behavior (skips cleanly without the compiled extra)
# ------------------------------------------------------------------ #
class TestNumbaTier:
    def test_jit_kernels_execute_and_account(self, omp):
        pytest.importorskip("numba")
        from repro.compiled import numba_tier as nb

        assert nb.HAVE_NUMBA and available()
        x = _tensor(np.float32)
        mats = random_mats(x.shape, RANK, seed=13, dtype=np.float32)
        before = compile_stats()
        got = coo_mttkrp(x, mats, 0, omp, method="atomic", tier="compiled")
        want = coo_mttkrp(x, mats, 0, omp, method="atomic", tier="numpy")
        np.testing.assert_allclose(got, want, rtol=1e-5)
        # First execution compiles at least one @njit signature.
        assert compile_stats()["jit_compiles"] >= before["jit_compiles"]

    def test_unsupported_dtype_uses_fallback(self, omp):
        pytest.importorskip("numba")
        from repro.compiled import numba_tier as nb

        assert not nb.jit_supported(np.int64)
        assert nb.jit_supported(np.float32)
        assert nb.jit_supported(np.float64)

    def test_elementwise_jit_bit_identical(self, omp):
        pytest.importorskip("numba")
        x = _tensor(np.float64)
        want = coo_ts(x, 3.0, "mul", omp, tier="numpy")
        got = coo_ts(x, 3.0, "mul", omp, tier="compiled")
        assert np.array_equal(got.values, want.values)
