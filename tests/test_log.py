"""Tests for structured JSON-lines logging (repro.obs.log).

Pins the emit contract (modes, levels, reserved keys, trace
correlation) and — the property the rest of the suite depends on — that
logging rides **stderr** only, so every machine-readable stdout surface
(``repro client``, ``repro ingest-bench --json``) stays byte-clean under
``REPRO_LOG=json``.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.obs import log as obs_log
from repro.obs.context import TraceContext, activate_context
from repro.obs.log import LEVELS, MODES, configure, get_logger, reset


@pytest.fixture(autouse=True)
def _fresh_config(monkeypatch):
    monkeypatch.delenv("REPRO_LOG", raising=False)
    monkeypatch.delenv("REPRO_LOG_LEVEL", raising=False)
    reset()
    yield
    reset()


def capture(mode="json", level="debug"):
    buf = io.StringIO()
    configure(mode=mode, level=level, stream=buf)
    return buf


class TestEmit:
    def test_json_lines_have_reserved_keys(self):
        buf = capture()
        get_logger("repro.test").info("case.completed", fingerprint="fp", n=3)
        (line,) = buf.getvalue().splitlines()
        record = json.loads(line)
        assert record["event"] == "case.completed"
        assert record["level"] == "info"
        assert record["logger"] == "repro.test"
        assert record["fingerprint"] == "fp" and record["n"] == 3
        assert isinstance(record["ts"], float)

    def test_reserved_keys_beat_caller_fields(self):
        buf = capture()
        get_logger("repro.test").info("real", level="fake", logger="fake")
        record = json.loads(buf.getvalue())
        assert record["event"] == "real"
        assert record["level"] == "info"
        assert record["logger"] == "repro.test"

    def test_level_threshold_filters(self):
        buf = capture(level="warn")
        logger = get_logger("repro.test")
        logger.debug("quiet")
        logger.info("quiet")
        logger.warn("loud")
        logger.error("loud")
        lines = buf.getvalue().splitlines()
        assert len(lines) == 2
        assert not logger.enabled_for("info")
        assert logger.enabled_for("error")

    def test_off_mode_emits_nothing(self):
        buf = capture(mode="off")
        get_logger("repro.test").error("nope")
        assert buf.getvalue() == ""
        assert not get_logger("repro.test").enabled_for("error")

    def test_text_mode_is_human_oriented(self):
        buf = capture(mode="text")
        get_logger("repro.test").warn("slow.case", seconds=1.5)
        line = buf.getvalue()
        assert "warn" in line and "repro.test: slow.case" in line
        assert "seconds=1.5" in line

    def test_env_config_is_honored(self, monkeypatch):
        monkeypatch.setenv("REPRO_LOG", "off")
        reset()
        assert not get_logger("repro.test").enabled_for("error")
        monkeypatch.setenv("REPRO_LOG", "json")
        monkeypatch.setenv("REPRO_LOG_LEVEL", "error")
        reset()
        logger = get_logger("repro.test")
        assert logger.enabled_for("error")
        assert not logger.enabled_for("warn")

    def test_active_trace_context_is_attached(self):
        buf = capture()
        with activate_context(TraceContext(trace_id="cafe", parent_span="feed")):
            get_logger("repro.test").info("traced")
        record = json.loads(buf.getvalue())
        assert record["trace_id"] == "cafe"
        assert record["span"] == "feed"

    def test_closed_stream_never_raises(self):
        buf = capture()
        buf.close()
        get_logger("repro.test").info("into the void")  # must not raise

    def test_mode_and_level_tables_are_pinned(self):
        assert MODES == ("json", "text", "off")
        assert set(LEVELS) == {"debug", "info", "warn", "error"}

    def test_get_logger_is_cached(self):
        assert get_logger("repro.x") is get_logger("repro.x")


class TestStdoutStaysClean:
    """--json stdout surfaces parse cleanly with REPRO_LOG=json active."""

    def test_ingest_bench_json_stdout(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main

        monkeypatch.setenv("REPRO_LOG", "json")
        monkeypatch.setenv("REPRO_LOG_LEVEL", "debug")
        reset()
        rc = main([
            "ingest-bench", "--shape", "48", "48", "8", "--events", "4000",
            "--batch", "1000", "--window", "2", "--workers", "2",
            "--query-every", "2", "--rank", "4", "--json",
            "--store", str(tmp_path / "ingest.jsonl"),
        ])
        captured = capsys.readouterr()
        assert rc == 0
        doc = json.loads(captured.out)  # stdout is exactly one JSON doc
        assert doc["summary"]["events"] == 4000
        # the lifecycle diagnostics landed on stderr as JSON lines
        events = [json.loads(l)["event"] for l in captured.err.splitlines()]
        assert "ingest.started" in events
        assert "ingest.completed" in events

    def test_client_json_stdout(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main
        from test_serve import service_thread

        monkeypatch.setenv("REPRO_LOG", "json")
        monkeypatch.setenv("REPRO_LOG_LEVEL", "debug")
        reset()
        with service_thread(tmp_path) as service:
            rc = main([
                "client", "--socket", service.config.socket_path, "status",
            ])
        captured = capsys.readouterr()
        assert rc == 0
        payload = json.loads(captured.out)
        assert payload["records"] == 0
        for line in captured.err.splitlines():
            json.loads(line)  # every stderr line is a JSON record

    def test_health_json_stdout(self, tmp_path, monkeypatch, capsys):
        from repro.cli import main
        from test_serve import service_thread

        monkeypatch.setenv("REPRO_LOG", "json")
        reset()
        with service_thread(tmp_path) as service:
            rc = main([
                "health", "--socket", service.config.socket_path, "--json",
            ])
        captured = capsys.readouterr()
        assert rc == 0
        health = json.loads(captured.out)
        assert health["cache_hit_rate"] is None
