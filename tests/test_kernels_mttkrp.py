"""Tests for the Mttkrp kernel (COO atomic/sort, HiCOO blocked)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.kernels import coo_mttkrp, dense_mttkrp, hicoo_mttkrp, mttkrp
from repro.parallel import OpenMPBackend
from repro.sptensor import COOTensor, HiCOOTensor
from tests.conftest import random_mats


class TestCooMttkrp:
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_matches_dense_all_modes(self, coo3, dense3, mats3, mode):
        x = coo3.astype(np.float64)
        got = coo_mttkrp(x, mats3, mode)
        want = dense_mttkrp(dense3.astype(np.float64), mats3, mode)
        np.testing.assert_allclose(got, want, rtol=1e-6)

    @pytest.mark.parametrize("mode", [0, 1, 2, 3])
    def test_4th_order(self, coo4, dense4, mats4, mode):
        x = coo4.astype(np.float64)
        got = coo_mttkrp(x, mats4, mode)
        want = dense_mttkrp(dense4.astype(np.float64), mats4, mode)
        np.testing.assert_allclose(got, want, rtol=1e-6)

    def test_sort_method_matches_atomic(self, coo3, mats3):
        x = coo3.astype(np.float64)
        a = coo_mttkrp(x, mats3, 1, method="atomic")
        b = coo_mttkrp(x, mats3, 1, method="sort")
        np.testing.assert_allclose(a, b, rtol=1e-10)

    def test_unknown_method(self, coo3, mats3):
        with pytest.raises(ValueError):
            coo_mttkrp(coo3, mats3, 0, method="magic")

    def test_product_mode_matrix_ignored(self, coo3, mats3):
        x = coo3.astype(np.float64)
        mats_none = list(mats3)
        mats_none[0] = None
        np.testing.assert_allclose(
            coo_mttkrp(x, mats_none, 0), coo_mttkrp(x, mats3, 0), rtol=1e-12
        )

    def test_wrong_matrix_count(self, coo3):
        with pytest.raises(ShapeError):
            coo_mttkrp(coo3, [np.ones((5, 2))], 0)

    def test_mismatched_rank(self, coo3):
        mats = random_mats(coo3.shape, 3)
        mats[2] = np.ones((coo3.shape[2], 4))
        with pytest.raises(ShapeError, match="share R"):
            coo_mttkrp(coo3, mats, 0)

    def test_wrong_matrix_rows(self, coo3):
        mats = random_mats(coo3.shape, 3)
        mats[1] = np.ones((coo3.shape[1] + 2, 3))
        with pytest.raises(ShapeError):
            coo_mttkrp(coo3, mats, 0)

    def test_empty_tensor(self):
        t = COOTensor.empty((4, 5, 6))
        out = coo_mttkrp(t, random_mats(t.shape, 2), 0)
        assert out.shape == (4, 2)
        assert out.sum() == 0

    def test_output_shape(self, coo3, mats3):
        out = coo_mttkrp(coo3, mats3, 2)
        assert out.shape == (coo3.shape[2], mats3[0].shape[1])


class TestHicooMttkrp:
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_matches_dense(self, coo3, dense3, mats3, mode):
        h = HiCOOTensor.from_coo(coo3.astype(np.float64), 8)
        got = hicoo_mttkrp(h, mats3, mode)
        want = dense_mttkrp(dense3.astype(np.float64), mats3, mode)
        np.testing.assert_allclose(got, want, rtol=1e-6)

    def test_4th_order(self, coo4, dense4, mats4):
        h = HiCOOTensor.from_coo(coo4.astype(np.float64), 4)
        got = hicoo_mttkrp(h, mats4, 2)
        want = dense_mttkrp(dense4.astype(np.float64), mats4, 2)
        np.testing.assert_allclose(got, want, rtol=1e-6)

    @pytest.mark.parametrize("block_size", [2, 16, 128])
    def test_block_size_invariance(self, coo3, mats3, block_size):
        x = coo3.astype(np.float64)
        ref = coo_mttkrp(x, mats3, 0)
        h = HiCOOTensor.from_coo(x, block_size)
        np.testing.assert_allclose(hicoo_mttkrp(h, mats3, 0), ref, rtol=1e-8)

    def test_empty(self):
        h = HiCOOTensor.from_coo(COOTensor.empty((4, 5, 6)), 4)
        out = hicoo_mttkrp(h, random_mats((4, 5, 6), 2), 1)
        assert out.shape == (5, 2)
        assert out.sum() == 0


class TestMttkrpParallel:
    def test_coo_openmp_matches(self, coo3, mats3):
        x = coo3.astype(np.float64)
        ref = coo_mttkrp(x, mats3, 0)
        be = OpenMPBackend(nthreads=4)
        try:
            got = coo_mttkrp(x, mats3, 0, backend=be)
            np.testing.assert_allclose(got, ref, rtol=1e-10)
        finally:
            be.shutdown()

    def test_hicoo_openmp_matches(self, coo3, mats3):
        x = coo3.astype(np.float64)
        h = HiCOOTensor.from_coo(x, 8)
        ref = hicoo_mttkrp(h, mats3, 1)
        be = OpenMPBackend(nthreads=4)
        try:
            got = hicoo_mttkrp(h, mats3, 1, backend=be, blocks_per_chunk=4)
            np.testing.assert_allclose(got, ref, rtol=1e-10)
        finally:
            be.shutdown()

    def test_dispatcher(self, coo3, hicoo3, mats3):
        a = mttkrp(coo3, mats3, 0)
        b = mttkrp(hicoo3, mats3, 0)
        np.testing.assert_allclose(a, b, rtol=1e-4)
