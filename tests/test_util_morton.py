"""Tests for Morton (Z-order) encoding."""

import numpy as np
import pytest

from repro.util.morton import morton_decode, morton_encode, morton_order


class TestMortonEncode:
    def test_known_2d_codes(self):
        # Classic 2-D Z-order: (x=row-major-major per our bit placement).
        coords = np.array([[0, 0], [0, 1], [1, 0], [1, 1]])
        codes = morton_encode(coords)
        # mode 0 is most significant within each bit-plane.
        assert codes[0] == 0
        assert set(codes.tolist()) == {0, 1, 2, 3}
        assert codes[2] > codes[1]  # (1,0) after (0,1) in our convention

    def test_roundtrip_3d(self):
        rng = np.random.default_rng(0)
        coords = rng.integers(0, 1 << 10, size=(200, 3)).astype(np.uint64)
        codes = morton_encode(coords, nbits=10)
        back = morton_decode(codes, 3, 10)
        np.testing.assert_array_equal(back, coords)

    def test_overflow_rejected(self):
        coords = np.full((4, 4), (1 << 20) - 1, dtype=np.uint64)
        with pytest.raises(ValueError, match="64-bit"):
            morton_encode(coords, nbits=20)

    def test_empty(self):
        codes = morton_encode(np.empty((0, 3), dtype=np.uint64))
        assert codes.shape == (0,)

    def test_non_2d_rejected(self):
        with pytest.raises(ValueError):
            morton_encode(np.arange(5))


class TestMortonOrder:
    def test_orders_are_permutations(self):
        rng = np.random.default_rng(1)
        coords = rng.integers(0, 100, size=(500, 3))
        order = morton_order(coords)
        assert sorted(order.tolist()) == list(range(500))

    def test_groups_identical_coords_contiguously(self):
        coords = np.array([[1, 2], [0, 0], [1, 2], [0, 0], [3, 3]])
        order = morton_order(coords)
        sorted_coords = coords[order]
        # identical rows must be adjacent after sorting
        seen = set()
        prev = None
        for row in map(tuple, sorted_coords):
            if row != prev and row in seen:
                pytest.fail(f"row {row} appears in two separate runs")
            seen.add(row)
            prev = row

    def test_wide_coords_fall_back_to_lexicographic(self):
        coords = np.array(
            [[2**40, 1, 1], [0, 0, 0], [2**40, 0, 0]], dtype=np.int64
        )
        order = morton_order(coords)
        s = coords[order]
        assert tuple(s[0]) == (0, 0, 0)
        assert tuple(s[1]) == (2**40, 0, 0)

    def test_zorder_locality_beats_random(self):
        """Morton order should place blocks of a 2^k grid in Z-curve runs:
        consecutive codes differ in few high bits on average."""
        n = 32
        grid = np.stack(np.meshgrid(np.arange(n), np.arange(n)), axis=-1).reshape(-1, 2)
        rng = np.random.default_rng(2)
        shuffled = rng.permutation(grid)
        order = morton_order(shuffled)
        s = shuffled[order]
        jumps = np.abs(np.diff(s.astype(int), axis=0)).sum(axis=1)
        assert jumps.mean() < 4.0  # Z-curve: mostly unit steps
