"""Tests for gHiCOO — the paper's generalized HiCOO variant."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.sptensor import COOTensor, GHiCOOTensor, HiCOOTensor


class TestRoundtrip:
    @pytest.mark.parametrize("comp", [(0,), (1,), (2,), (0, 1), (0, 2), (1, 2), (0, 1, 2)])
    def test_any_compressed_subset(self, coo3, comp):
        g = GHiCOOTensor.from_coo(coo3, 8, comp)
        assert g.compressed_modes == comp
        assert g.to_coo().allclose(coo3)

    def test_default_compresses_all(self, coo3):
        g = GHiCOOTensor.from_coo(coo3, 8)
        assert g.compressed_modes == (0, 1, 2)

    def test_empty(self):
        g = GHiCOOTensor.from_coo(COOTensor.empty((4, 4, 4)), 4, (0, 1))
        assert g.nnz == 0
        assert g.to_coo().nnz == 0

    def test_4th_order(self, coo4):
        g = GHiCOOTensor.from_coo(coo4, 4, (1, 3))
        assert g.to_coo().allclose(coo4)


class TestStructure:
    def test_requires_a_compressed_mode(self, coo3):
        with pytest.raises(FormatError):
            GHiCOOTensor.from_coo(coo3, 8, ())

    def test_duplicate_modes_rejected(self, coo3):
        with pytest.raises(FormatError):
            GHiCOOTensor.from_coo(coo3, 8, (0, 0))

    def test_uncompressed_column_access(self, coo3):
        g = GHiCOOTensor.from_coo(coo3, 8, (0, 1))
        col = g.uncompressed_column(2)
        assert col.shape == (coo3.nnz,)
        with pytest.raises(FormatError):
            g.uncompressed_column(0)

    def test_full_compression_matches_hicoo_grouping(self, coo3):
        g = GHiCOOTensor.from_coo(coo3, 8, (0, 1, 2))
        h = HiCOOTensor.from_coo(coo3, 8)
        assert g.nblocks == h.nblocks
        np.testing.assert_array_equal(g.bptr, h.bptr)
        np.testing.assert_array_equal(
            g.binds.astype(np.int64), h.binds.astype(np.int64)
        )


class TestHypersparseRescue:
    """gHiCOO's motivation: on hyper-sparse tensors, compressing fewer
    modes shrinks storage versus full HiCOO (paper Sec. 3.3)."""

    def test_partial_compression_beats_full_on_hypersparse(self):
        t = COOTensor.random((2**20, 2**20, 64), nnz=3000, rng=2)
        full = HiCOOTensor.from_coo(t, 128)
        partial = GHiCOOTensor.from_coo(t, 128, (2,))
        assert partial.nbytes < full.nbytes

    def test_block_count_shrinks_with_fewer_modes(self, coo3):
        g_all = GHiCOOTensor.from_coo(coo3, 4, (0, 1, 2))
        g_one = GHiCOOTensor.from_coo(coo3, 4, (0,))
        assert g_one.nblocks <= g_all.nblocks
