"""Tests for dense tensor algebra helpers (unfold/fold/Khatri-Rao)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.sptensor.dense import (
    fold,
    khatri_rao,
    khatri_rao_list,
    mttkrp_khatri_rao_operand,
    outer,
    unfold,
)


class TestUnfoldFold:
    def test_unfold_shape(self):
        x = np.arange(24.0).reshape(2, 3, 4)
        assert unfold(x, 0).shape == (2, 12)
        assert unfold(x, 1).shape == (3, 8)
        assert unfold(x, 2).shape == (4, 6)

    def test_fold_inverts_unfold(self):
        x = np.random.default_rng(0).random((3, 4, 5))
        for mode in range(3):
            np.testing.assert_allclose(fold(unfold(x, mode), mode, x.shape), x)

    def test_fold_rejects_bad_shape(self):
        with pytest.raises(ShapeError):
            fold(np.zeros((3, 5)), 0, (3, 4))

    def test_unfold_rows_are_mode_slices(self):
        x = np.random.default_rng(1).random((4, 3, 2))
        u = unfold(x, 1)
        np.testing.assert_allclose(u[2], x[:, 2, :].ravel())


class TestKhatriRao:
    def test_columnwise_kron(self):
        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        b = np.array([[5.0, 6.0], [7.0, 8.0], [9.0, 10.0]])
        c = khatri_rao(a, b)
        assert c.shape == (6, 2)
        np.testing.assert_allclose(c[:, 0], np.kron(a[:, 0], b[:, 0]))
        np.testing.assert_allclose(c[:, 1], np.kron(a[:, 1], b[:, 1]))

    def test_mismatched_columns_rejected(self):
        with pytest.raises(ShapeError):
            khatri_rao(np.zeros((2, 2)), np.zeros((2, 3)))

    def test_list_associativity(self):
        rng = np.random.default_rng(2)
        mats = [rng.random((n, 3)) for n in (2, 3, 4)]
        left = khatri_rao(khatri_rao(mats[0], mats[1]), mats[2])
        np.testing.assert_allclose(khatri_rao_list(mats), left)

    def test_empty_list_rejected(self):
        with pytest.raises(ShapeError):
            khatri_rao_list([])


class TestMttkrpOperand:
    def test_consistency_with_unfold(self):
        """unfold(X, n) @ operand must equal the elementwise definition."""
        rng = np.random.default_rng(3)
        x = rng.random((3, 4, 5))
        mats = [rng.random((s, 2)) for s in x.shape]
        for mode in range(3):
            kr = mttkrp_khatri_rao_operand(mats, mode)
            got = unfold(x, mode) @ kr
            # brute force
            want = np.zeros((x.shape[mode], 2))
            for i in range(3):
                for j in range(4):
                    for k in range(5):
                        idx = (i, j, k)
                        for r in range(2):
                            p = x[i, j, k]
                            for m in range(3):
                                if m != mode:
                                    p *= mats[m][idx[m], r]
                            want[idx[mode], r] += p
            np.testing.assert_allclose(got, want)


class TestOuter:
    def test_rank1(self):
        u, v, w = np.array([1.0, 2.0]), np.array([3.0, 4.0]), np.array([5.0])
        t = outer([u, v, w])
        assert t.shape == (2, 2, 1)
        assert t[1, 0, 0] == pytest.approx(2 * 3 * 5)
