"""Tests for the resilient sharded sweep executor.

The resilience matrix: chaos-injected flaky cases recover via retry with
exponential backoff, permanently failing cases land in quarantine with
their failure log (without aborting the sweep), hung workers are killed
at the per-case timeout, killed workers are absorbed as crashes — and
through all of it the run store stays a faithful journal: an interrupted
run resumes to completion and an N-shard merged store equals the
un-sharded run's records case-for-case.
"""

import json
import os

import pytest

from repro.bench import (
    ExecutorConfig,
    RunnerConfig,
    RunStore,
    SuiteExecutor,
    SweepCase,
    canonical_tensor_spec,
    dataset_case_specs,
    derive_case_seed,
    enumerate_cases,
    execute_case,
    materialize_tensor,
    merge_stores,
)
from repro.bench.executor import (
    FAIL_CRASH,
    FAIL_ERROR,
    FAIL_TIMEOUT,
    ExecutorError,
    match_fault,
)
from repro.bench.runstore import StoreError
from repro.types import Format, Kernel

TINY_SPEC = {"kind": "random", "shape": [20, 15, 6], "nnz": 100, "seed": 3}


def tiny_cases(kernels=(Kernel.TS,), formats=(Format.COO,), names=("tiny",)):
    cfg = RunnerConfig(measure_host=False, kernels=kernels, formats=formats)
    specs = {
        name: dict(TINY_SPEC, seed=TINY_SPEC["seed"] + i)
        for i, name in enumerate(names)
    }
    return enumerate_cases(specs, cfg)


def inline(store, cases, **kw):
    kw.setdefault("isolation", "inline")
    sleep = kw.pop("sleep", lambda s: None)
    return SuiteExecutor(cases, store, ExecutorConfig(**kw), sleep=sleep)


class TestEnumeration:
    def test_deterministic_and_order_independent(self):
        cfg = RunnerConfig(measure_host=False)
        specs_fwd = {"a": TINY_SPEC, "b": dict(TINY_SPEC, seed=4)}
        specs_rev = {"b": dict(TINY_SPEC, seed=4), "a": TINY_SPEC}
        fwd = enumerate_cases(specs_fwd, cfg, platforms=["Bluesky", "DGX-1V"])
        rev = enumerate_cases(specs_rev, cfg, platforms=["Bluesky", "DGX-1V"])
        assert fwd == rev
        assert len(fwd) == 2 * 2 * 5 * 2  # platforms x tensors x kernels x fmts
        fps = [c.fingerprint for c in fwd]
        assert len(set(fps)) == len(fps)

    def test_shards_partition_disjointly(self):
        cases = tiny_cases(kernels=(Kernel.TS, Kernel.TEW), names=("a", "b", "c"))
        store = RunStore(os.devnull)
        shards = [
            inline(store, cases, shards=4, shard_index=i).shard_cases()
            for i in range(4)
        ]
        seen = [c.fingerprint for s in shards for c in s]
        assert sorted(seen) == sorted(c.fingerprint for c in cases)
        assert len(set(seen)) == len(cases)

    def test_fingerprint_distinguishes_every_field(self):
        base = tiny_cases()[0]
        import dataclasses

        for change in (
            {"kernel": "tew"},
            {"fmt": "hicoo"},
            {"platform": "Wingtip"},
            {"rank": 8},
            {"block_size": 64},
            {"base_seed": 1},
            {"tensor_spec": canonical_tensor_spec(dict(TINY_SPEC, nnz=101))},
        ):
            other = dataclasses.replace(base, **change)
            assert other.fingerprint != base.fingerprint

    def test_case_json_round_trip(self):
        case = tiny_cases()[0]
        back = SweepCase.from_dict(json.loads(json.dumps(case.to_dict())))
        assert back == case
        assert back.fingerprint == case.fingerprint
        assert back.case_seed == case.case_seed

    def test_pinned_fingerprint_and_seed(self):
        # Regression pins: a fingerprint/seed change silently invalidates
        # every run store on disk, so it must be a deliberate, visible
        # decision.
        case = SweepCase(
            tensor="tiny", kernel="ts", fmt="coo", platform="Bluesky",
            tensor_spec=canonical_tensor_spec(TINY_SPEC),
        )
        assert case.fingerprint == "cb40f06215fd96ad"
        assert case.case_seed == 75001056417400780

    def test_config_validation(self):
        with pytest.raises(ExecutorError):
            ExecutorConfig(shards=0)
        with pytest.raises(ExecutorError):
            ExecutorConfig(shards=2, shard_index=2)
        with pytest.raises(ExecutorError):
            ExecutorConfig(isolation="thread")
        with pytest.raises(ExecutorError):
            ExecutorConfig(retries=-1)
        with pytest.raises(ExecutorError):
            ExecutorConfig(workers=0)


class TestFaultMatching:
    def test_precedence(self):
        case = tiny_cases()[0]
        faults = {
            "*": {"fail_attempts": 1},
            case.tensor: {"fail_attempts": 2},
            f"{case.tensor}/{case.kernel}/{case.fmt}": {"fail_attempts": 3},
            case.fingerprint: {"fail_attempts": 4},
        }
        assert match_fault(case, faults)["fail_attempts"] == 4
        del faults[case.fingerprint]
        assert match_fault(case, faults)["fail_attempts"] == 3
        del faults[f"{case.tensor}/{case.kernel}/{case.fmt}"]
        assert match_fault(case, faults)["fail_attempts"] == 2
        del faults[case.tensor]
        assert match_fault(case, faults)["fail_attempts"] == 1
        assert match_fault(case, {}) == {}


class TestMaterialize:
    def test_random_spec(self):
        t = materialize_tensor(TINY_SPEC)
        assert t.shape == (20, 15, 6) and t.nnz == 100
        t2 = materialize_tensor(canonical_tensor_spec(TINY_SPEC))
        assert t2.allclose(t)

    def test_registry_specs(self):
        specs = dataset_case_specs("both", scale=50000, seed=0, keys=["regS", "r1"])
        assert set(specs) == {"regS", "vast"}
        for spec in specs.values():
            assert materialize_tensor(spec).nnz > 0

    def test_unknown_kind_and_keys(self):
        with pytest.raises(ExecutorError):
            materialize_tensor({"kind": "teleport"})
        with pytest.raises(ExecutorError):
            dataset_case_specs("synthetic", keys=["nope"])
        with pytest.raises(ExecutorError):
            dataset_case_specs("imaginary")


class TestRetryAndQuarantine:
    def test_chaos_flaky_case_recovers_via_retry(self, tmp_path):
        cases = tiny_cases()
        store = RunStore(tmp_path / "run.jsonl")
        sleeps = []
        report = inline(
            store, cases, retries=3, sleep=sleeps.append,
            faults={"tiny": {"fail_attempts": 2}},
        ).run()
        assert report.completed == [cases[0].fingerprint]
        assert report.retries == 2 and not report.quarantined
        line = store.load().records[cases[0].fingerprint]
        assert line["attempt"] == 2
        # the injected failures are genuine ChaosErrors
        assert sleeps == [
            pytest.approx(0.05), pytest.approx(0.1)
        ]

    def test_backoff_is_exponential_and_capped(self, tmp_path):
        ex = inline(
            RunStore(tmp_path / "r.jsonl"), tiny_cases(),
            retries=8, backoff_base_s=0.05, backoff_max_s=0.4,
        )
        delays = [ex.backoff_s(a) for a in range(6)]
        assert delays == [0.05, 0.1, 0.2, 0.4, 0.4, 0.4]

    def test_permanent_failure_quarantines_without_aborting(self, tmp_path):
        cases = tiny_cases(names=("bad", "good"))
        store = RunStore(tmp_path / "run.jsonl")
        report = inline(
            store, cases, retries=1, faults={"bad": {"fail_attempts": 99}}
        ).run()
        bad = next(c for c in cases if c.tensor == "bad")
        good = next(c for c in cases if c.tensor == "good")
        assert report.quarantined == [bad.fingerprint]
        assert good.fingerprint in report.completed
        state = store.load()
        assert good.fingerprint in state.records
        qline = state.quarantined[bad.fingerprint]
        assert [f["attempt"] for f in qline["failures"]] == [0, 1]
        assert all(f["kind"] == FAIL_ERROR for f in qline["failures"])
        assert all("ChaosError" in f["detail"] for f in qline["failures"])

    def test_execute_case_raises_chaos_error(self):
        from repro.parallel.chaos import ChaosError

        case = tiny_cases()[0]
        with pytest.raises(ChaosError):
            execute_case(case, attempt=0, faults={"tiny": {"fail_attempts": 1}})
        record = execute_case(case, attempt=1, faults={"tiny": {"fail_attempts": 1}})
        assert record.tensor == "tiny" and record.seconds > 0


class TestResume:
    def test_interrupted_run_resumes_to_clean_result(self, tmp_path):
        cases = tiny_cases(
            kernels=(Kernel.TS, Kernel.TTV), formats=(Format.COO, Format.HICOO),
            names=("a", "b"),
        )
        clean = RunStore(tmp_path / "clean.jsonl")
        inline(clean, cases).run()
        clean_state = clean.load()

        # "interrupt": only the first 3 cases ran, writer died mid-line
        part = RunStore(tmp_path / "part.jsonl")
        inline(part, cases[:3]).run()
        with open(part.path, "a") as f:
            f.write('{"v": 1, "kind": "record", "fingerp')
        report = inline(part, cases, resume=True).run()
        assert len(report.skipped) == 3
        assert len(report.completed) == len(cases) - 3
        state = part.load()
        assert set(state.records) == set(clean_state.records)
        for fp in clean_state.records:
            assert state.records[fp]["record"] == clean_state.records[fp]["record"]
            assert state.records[fp]["seed"] == clean_state.records[fp]["seed"]

    def test_resume_reattempts_quarantined_cases(self, tmp_path):
        cases = tiny_cases()
        store = RunStore(tmp_path / "run.jsonl")
        report = inline(
            store, cases, retries=0, faults={"tiny": {"fail_attempts": 99}}
        ).run()
        assert report.quarantined
        # the fault clears (e.g. a fixed environment); resume retries it
        report2 = inline(store, cases, retries=0, resume=True).run()
        assert report2.completed == [cases[0].fingerprint]
        state = store.load()
        assert not state.quarantined and cases[0].fingerprint in state.records

    def test_without_resume_cases_rerun(self, tmp_path):
        cases = tiny_cases()
        store = RunStore(tmp_path / "run.jsonl")
        inline(store, cases).run()
        report = inline(store, cases).run()
        assert report.completed and not report.skipped

    def test_corrupt_mid_file_line_raises(self, tmp_path):
        store = RunStore(tmp_path / "run.jsonl")
        inline(store, tiny_cases()).run()
        with open(store.path) as f:
            good = f.read()
        with open(store.path, "w") as f:
            f.write("not json\n" + good)
        with pytest.raises(StoreError):
            store.load()

    def test_line_missing_required_key_raises_with_context(self, tmp_path):
        # A line that parses but lacks the schema is corruption, not
        # truncation — it must raise StoreError naming the file and line,
        # never a bare KeyError (even as the final line).
        store = RunStore(tmp_path / "run.jsonl")
        inline(store, tiny_cases()).run()
        with open(store.path, "a") as f:
            f.write('{"v": 1, "kind": "record"}\n')  # no fingerprint
        with pytest.raises(StoreError, match=r"run\.jsonl:\d+.*fingerprint"):
            store.load()
        with open(store.path, "w") as f:
            f.write('{"v": 1, "fingerprint": "abc"}\n')  # no kind
        with pytest.raises(StoreError, match=r"run\.jsonl:1.*kind"):
            store.load()
        with open(store.path, "w") as f:
            f.write('{"v": 1, "fingerprint": "abc", "kind": "wat"}\n')
        with pytest.raises(StoreError, match="unknown run-store line kind"):
            store.load()

    def test_non_object_json_line_raises(self, tmp_path):
        store = RunStore(tmp_path / "run.jsonl")
        with open(store.path, "w") as f:
            f.write('[1, 2, 3]\n')
        with pytest.raises(StoreError, match="not a JSON object"):
            store.load()


class TestFingerprintSchemaStaleness:
    """Regression: a store journaled under a different SweepCase field
    set must fail loudly on load — its fingerprints are not comparable
    to the current ones, so every cache/resume lookup against it would
    silently miss (or worse, falsely hit)."""

    def test_stale_schema_header_fails_load(self, tmp_path):
        store = RunStore(tmp_path / "run.jsonl")
        inline(store, tiny_cases()).run()
        lines = open(store.path).read().splitlines()
        header = json.loads(lines[0])
        assert header["kind"] == "header"
        header["fingerprint_schema"] = "dead00000000"  # a different field set
        with open(store.path, "w") as f:
            f.write("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        with pytest.raises(StoreError, match="fingerprint schema"):
            store.load()

    def test_current_schema_header_loads_and_is_exposed(self, tmp_path):
        from repro.bench import fingerprint_schema_version

        store = RunStore(tmp_path / "run.jsonl")
        inline(store, tiny_cases()).run()
        state = store.load()
        assert state.header is not None
        assert state.header["fingerprint_schema"] == fingerprint_schema_version()
        assert len(state.records) == 1

    def test_header_written_once_per_journal(self, tmp_path):
        store = RunStore(tmp_path / "run.jsonl")
        cases = tiny_cases(kernels=(Kernel.TS, Kernel.TEW))
        inline(store, cases).run()
        kinds = [
            json.loads(line)["kind"]
            for line in open(store.path).read().splitlines()
        ]
        assert kinds == ["header", "record", "record"]

    def test_schema_version_is_pinned(self):
        # Changing the SweepCase field set invalidates every journal on
        # disk; this pin makes that a deliberate, visible decision (bump
        # it together with the golden fingerprint pins above).
        from repro.bench import fingerprint_schema_version

        assert fingerprint_schema_version() == "dcd57e2a558e"


class TestWorkStealingExecutor:
    def test_stealing_run_matches_serial_run(self, tmp_path):
        cases = tiny_cases(
            kernels=(Kernel.TS, Kernel.TEW, Kernel.TTV),
            formats=(Format.COO, Format.HICOO),
            names=("a", "b"),
        )
        serial = RunStore(tmp_path / "serial.jsonl")
        inline(serial, cases).run()
        serial_state = serial.load()

        pooled = RunStore(tmp_path / "pooled.jsonl")
        report = inline(pooled, cases, workers=4).run()
        assert sorted(report.completed) == sorted(
            c.fingerprint for c in cases
        )
        state = pooled.load()
        assert set(state.records) == set(serial_state.records)
        for fp, line in serial_state.records.items():
            assert state.records[fp]["record"] == line["record"]
            assert state.records[fp]["seed"] == line["seed"]

    def test_stealing_quarantine_and_retry_counts_match(self, tmp_path):
        cases = tiny_cases(names=("bad", "flaky", "ok"))
        report = inline(
            RunStore(tmp_path / "run.jsonl"), cases, retries=1, workers=3,
            faults={
                "bad": {"fail_attempts": 99},
                "flaky": {"fail_attempts": 1},
            },
        ).run()
        bad = next(c for c in cases if c.tensor == "bad")
        assert report.quarantined == [bad.fingerprint]
        assert len(report.completed) == 2
        assert report.retries == 2  # flaky once, bad once
        assert "steals" in report.render()

    def test_single_worker_config_uses_serial_loop(self, tmp_path):
        report = inline(RunStore(tmp_path / "run.jsonl"), tiny_cases()).run()
        assert report.steals == 0


class TestShardMerge:
    def test_four_shard_merge_equals_unsharded(self, tmp_path):
        cases = tiny_cases(
            kernels=(Kernel.TS, Kernel.TEW, Kernel.TTV),
            formats=(Format.COO, Format.HICOO),
            names=("a", "b"),
        )
        clean = RunStore(tmp_path / "clean.jsonl")
        inline(clean, cases).run()
        clean_state = clean.load()

        paths = []
        for i in range(4):
            path = tmp_path / f"shard{i}.jsonl"
            paths.append(path)
            inline(RunStore(path), cases, shards=4, shard_index=i).run()
        merged = merge_stores(paths, out_path=tmp_path / "merged.jsonl")

        assert set(merged.records) == set(clean_state.records)
        for fp, line in clean_state.records.items():
            assert merged.records[fp]["record"] == line["record"]
            assert merged.records[fp]["seed"] == line["seed"]
        # the merged store renders case-for-case like the clean run
        order = [c.fingerprint for c in cases]
        merged_recs = merged.perf_records(order)
        clean_recs = clean_state.perf_records(order)
        assert merged_recs == clean_recs
        # and the merged journal on disk reloads to the same state
        reloaded = RunStore(tmp_path / "merged.jsonl").load()
        assert set(reloaded.records) == set(merged.records)

    def test_merge_record_supersedes_quarantine(self, tmp_path):
        cases = tiny_cases()
        bad = RunStore(tmp_path / "bad.jsonl")
        inline(bad, cases, retries=0, faults={"tiny": {"fail_attempts": 9}}).run()
        good = RunStore(tmp_path / "good.jsonl")
        inline(good, cases).run()
        for order in ([bad.path, good.path], [good.path, bad.path]):
            merged = merge_stores(order)
            assert not merged.quarantined
            assert cases[0].fingerprint in merged.records

    def test_merge_later_store_wins_same_kind(self, tmp_path):
        # Cross-store precedence pins the documented resume semantics:
        # among lines of the same kind for one fingerprint, the LATER
        # store listed wins — a resumed (fresher) shard overrides its
        # stale predecessor, exactly as later lines win within one
        # journal.  (The old setdefault-based merge kept the first.)
        def write(path, marker):
            s = RunStore(path)
            s._append({
                "v": 1, "kind": "record", "fingerprint": "fp",
                "seed": 0, "case": {}, "attempt": marker,
                "elapsed_s": 0.0, "record": {"marker": marker},
            })
            return path

        old = write(tmp_path / "old.jsonl", 1)
        new = write(tmp_path / "new.jsonl", 2)
        assert merge_stores([old, new]).records["fp"]["attempt"] == 2
        assert merge_stores([new, old]).records["fp"]["attempt"] == 1

        # same rule for quarantine lines (fresher failure log wins)
        def write_q(path, marker):
            s = RunStore(path)
            s._append({
                "v": 1, "kind": "quarantine", "fingerprint": "qfp",
                "seed": 0, "case": {},
                "failures": [{"kind": "error", "detail": str(marker)}],
            })
            return path

        qa = write_q(tmp_path / "qa.jsonl", "first")
        qb = write_q(tmp_path / "qb.jsonl", "second")
        merged = merge_stores([qa, qb])
        assert merged.quarantined["qfp"]["failures"][0]["detail"] == "second"


@pytest.mark.slow
class TestProcessIsolation:
    """Real worker subprocesses: kill, hang/timeout, and a clean pass."""

    def test_process_success_and_kill_recovery(self, tmp_path):
        cases = tiny_cases()
        store = RunStore(tmp_path / "run.jsonl")
        report = SuiteExecutor(
            cases, store,
            ExecutorConfig(
                isolation="process", timeout_s=120, retries=1,
                faults={"tiny": {"kill_attempts": 1}},
            ),
            sleep=lambda s: None,
        ).run()
        assert report.completed == [cases[0].fingerprint]
        assert report.crashes == 1 and report.retries == 1
        line = store.load().records[cases[0].fingerprint]
        assert line["attempt"] == 1
        # the worker's record matches the inline result bit-for-bit
        assert line["record"] == execute_case(cases[0]).to_dict()

    def test_hung_worker_times_out_into_quarantine(self, tmp_path):
        cases = tiny_cases()
        store = RunStore(tmp_path / "run.jsonl")
        report = SuiteExecutor(
            cases, store,
            ExecutorConfig(
                isolation="process", timeout_s=4, retries=0,
                faults={"tiny": {"hang_attempts": 9, "hang_s": 120}},
            ),
            sleep=lambda s: None,
        ).run()
        assert report.quarantined == [cases[0].fingerprint]
        assert report.timeouts == 1
        failures = store.load().quarantined[cases[0].fingerprint]["failures"]
        assert failures[0]["kind"] == FAIL_TIMEOUT

    def test_worker_error_verdict_is_not_a_crash(self, tmp_path):
        # an invalid case raises inside the worker; the verdict carries
        # the error back instead of a crash
        case = tiny_cases()[0]
        import dataclasses

        broken = dataclasses.replace(
            case, tensor_spec=canonical_tensor_spec({"kind": "teleport"})
        )
        store = RunStore(tmp_path / "run.jsonl")
        report = SuiteExecutor(
            [broken], store,
            ExecutorConfig(isolation="process", timeout_s=120, retries=0),
            sleep=lambda s: None,
        ).run()
        assert report.quarantined and report.crashes == 0
        failure = store.load().quarantined[broken.fingerprint]["failures"][0]
        assert failure["kind"] == FAIL_ERROR
        assert "teleport" in failure["detail"]


class TestObservability:
    def test_executor_counters_and_case_spans(self, tmp_path):
        from repro.obs import CAT_CASE, Tracer

        cases = tiny_cases(names=("ok", "flaky"))
        store = RunStore(tmp_path / "run.jsonl")
        tracer = Tracer()
        with tracer:
            inline(
                store, cases, retries=1, faults={"flaky": {"fail_attempts": 1}}
            ).run()
            inline(store, cases, resume=True).run()
        trace = tracer.freeze()
        assert trace.counter_total("exec.completed") == 2
        assert trace.counter_total("exec.retries") == 1
        assert trace.counter_total("exec.skipped") == 2
        assert trace.counter_total("exec.quarantined") == 0
        case_spans = trace.spans(CAT_CASE)
        assert len(case_spans) == 3  # ok, flaky attempt 0, flaky attempt 1
        attempts = sorted(
            (s.attrs["tensor"], s.attrs["attempt"]) for s in case_spans
        )
        assert attempts == [("flaky", 0), ("flaky", 1), ("ok", 0)]

    def test_quarantine_counters(self, tmp_path):
        from repro.obs import Tracer

        store = RunStore(tmp_path / "run.jsonl")
        tracer = Tracer()
        with tracer:
            inline(
                store, tiny_cases(), retries=2,
                faults={"tiny": {"fail_attempts": 99}},
            ).run()
        trace = tracer.freeze()
        assert trace.counter_total("exec.quarantined") == 1
        assert trace.counter_total("exec.retries") == 2
        assert trace.counter_total("exec.completed") == 0


class TestSeedDerivation:
    def test_pinned_derived_seeds(self):
        # Pinned values: changing the derivation silently changes every
        # case's random operands and breaks cross-run comparability.
        assert derive_case_seed(0, "demo") == 1159387945627138118
        assert derive_case_seed(1, "demo") == 1068097318734766121
        assert derive_case_seed(0, "bundle", "vast") == 2564662850791965524

    def test_derivation_is_order_and_collision_safe(self):
        assert derive_case_seed(0, "a", "b") != derive_case_seed(0, "b", "a")
        assert derive_case_seed(0, "ab") != derive_case_seed(0, "a", "b")
        seeds = {derive_case_seed(0, "case", i) for i in range(1000)}
        assert len(seeds) == 1000
        assert all(0 <= s < 2**63 for s in seeds)
