"""End-to-end integration: generate → reorder → convert → compute → decompose.

One test per realistic pipeline, chaining many subsystems the way a
downstream user would — the failure mode these catch is interface drift
between modules that unit tests miss.
"""

import numpy as np
import pytest

from repro.bench import RunnerConfig, SuiteRunner
from repro.datasets import make_surrogate
from repro.generate import get_synthetic, powerlaw_tensor
from repro.kernels import coo_mttkrp, csf_mttkrp, hicoo_mttkrp
from repro.methods import cp_als
from repro.roofline import BLUESKY, RooflineModel, extract_features
from repro.sptensor import (
    CSFTensor,
    HiCOOTensor,
    as_format,
    degree_reorder,
    read_tns,
    write_tns,
)
from repro.tune import recommend_format
from repro.validate import validate_tensor


class TestGenerateToDecompose:
    def test_synthetic_to_cp(self):
        """Table 3 config -> HiCOO -> CP-ALS converges identically to COO."""
        t = get_synthetic("irrS").generate(scale=5000, seed=4).astype(np.float64)
        h = HiCOOTensor.from_coo(t, 64)
        a = cp_als(t, rank=4, n_iters=5, seed=0, tol=0.0)
        b = cp_als(h, rank=4, n_iters=5, seed=0, tol=0.0)
        np.testing.assert_allclose(a.fits, b.fits, rtol=1e-8)

    def test_surrogate_through_file_roundtrip_to_kernels(self, tmp_path):
        """Table 2 surrogate -> .tns on disk -> reload -> all formats agree."""
        t = make_surrogate("uber4d", scale=4000, seed=5)
        p = tmp_path / "uber.tns"
        write_tns(t, p)
        back = read_tns(p).astype(np.float64)
        mats = [
            np.random.default_rng(1).random((s, 4)) for s in back.shape
        ]
        want = coo_mttkrp(back, mats, 0)
        np.testing.assert_allclose(
            hicoo_mttkrp(HiCOOTensor.from_coo(back, 16), mats, 0),
            want,
            rtol=1e-8,
        )
        np.testing.assert_allclose(
            csf_mttkrp(CSFTensor.from_coo(back), mats, 0), want, rtol=1e-8
        )

    def test_reorder_then_tune_then_run(self):
        """Stream-shaped tensor -> degree reorder -> tuner -> runner."""
        t = powerlaw_tensor((3000, 3000, 16), 15_000, dense_modes=(2,), seed=6)
        reordered, _ = degree_reorder(t)
        rec = recommend_format(reordered, kernels=["mttkrp", "ttv"])
        fmt = rec.fmt.value
        converted = as_format(reordered, fmt, block_size=rec.block_size)
        runner = SuiteRunner(
            BLUESKY, RunnerConfig(measure_host=False, cache_scale=2000)
        )
        records = runner.run_tensor("pipeline", reordered)
        assert len(records) == 10
        assert all(r.gflops > 0 for r in records)
        # the recommended format's Mttkrp should not be slower than the
        # alternative by more than the model's margin
        by = {(r.kernel, r.fmt): r.seconds for r in records}
        chosen = by[("mttkrp", fmt)]
        other = by[("mttkrp", "hicoo" if fmt == "coo" else "coo")]
        assert chosen <= other * 1.25

    def test_roofline_consistency_with_runner(self):
        """The runner's bound must equal the model's bound for the same
        features — no drift between the two code paths."""
        t = powerlaw_tensor((2000, 2000, 8), 8_000, dense_modes=(2,), seed=7)
        runner = SuiteRunner(
            BLUESKY, RunnerConfig(measure_host=False, cache_scale=1.0)
        )
        records = runner.run_tensor("x", t)
        feats = extract_features(t.copy().sort(), "x", 128)
        model = RooflineModel(BLUESKY)
        for rec in records:
            want = model.bound_for(feats, rec.kernel, rec.fmt)
            assert rec.bound_gflops == pytest.approx(want, rel=1e-6)

    def test_selfcheck_on_generated(self):
        t = get_synthetic("regS").generate(scale=20000, seed=8)
        assert validate_tensor(t, nthreads=2).passed
