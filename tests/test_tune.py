"""Tests for input-adaptive format/parameter selection."""

import numpy as np
import pytest

from repro.generate import kronecker_tensor, powerlaw_tensor
from repro.roofline import extract_features
from repro.sptensor import COOTensor
from repro.tune import (
    FormatScore,
    recommend_block_size,
    recommend_format,
    score_formats,
    storage_bytes,
)
from repro.types import Format, Kernel


@pytest.fixture(scope="module")
def clustered():
    """Dense-ish cluster: HiCOO territory."""
    rng = np.random.default_rng(0)
    inds = np.unique(rng.integers(0, 48, size=(4000, 3)), axis=0)
    return COOTensor((10000, 10000, 10000), inds, rng.random(len(inds)))


@pytest.fixture(scope="module")
def hypersparse():
    """~1 nnz per block: COO territory."""
    return COOTensor.random((1 << 20, 1 << 20, 1 << 20), nnz=3000, rng=1)


class TestStorageModel:
    def test_matches_actual_formats(self, clustered):
        from repro.sptensor import HiCOOTensor

        feats = extract_features(clustered, "c", 128)
        assert storage_bytes(feats, Format.COO) == clustered.nbytes
        h = HiCOOTensor.from_coo(clustered, 128)
        assert storage_bytes(feats, Format.HICOO) == h.nbytes

    def test_unknown_format(self, clustered):
        feats = extract_features(clustered, "c", 128)
        with pytest.raises(ValueError):
            storage_bytes(feats, Format.CSF)


class TestScoreFormats:
    def test_scores_cover_both_formats(self, clustered):
        feats = extract_features(clustered, "c", 128)
        scores = score_formats(feats)
        assert {s.fmt for s in scores} == {Format.COO, Format.HICOO}
        assert all(s.modeled_seconds > 0 for s in scores)

    def test_hypersparse_flagged(self, hypersparse):
        feats = extract_features(hypersparse, "h", 128)
        scores = score_formats(feats)
        hicoo = next(s for s in scores if s.fmt is Format.HICOO)
        assert "hypersparse" in hicoo.notes


class TestBlockSize:
    def test_clustered_gets_small_blocks(self, clustered):
        b, alpha = recommend_block_size(clustered)
        assert b <= 64
        assert alpha >= 1.5

    def test_hypersparse_falls_back_to_largest(self, hypersparse):
        b, alpha = recommend_block_size(hypersparse)
        assert b == 256
        assert alpha < 1.5


class TestRecommendFormat:
    def test_clustered_prefers_hicoo(self, clustered):
        rec = recommend_format(clustered, kernels=[Kernel.MTTKRP])
        assert rec.fmt is Format.HICOO
        assert rec.alpha > 1.5

    def test_hypersparse_prefers_coo(self, hypersparse):
        rec = recommend_format(hypersparse, kernels=[Kernel.MTTKRP])
        assert rec.fmt is Format.COO

    def test_scores_exposed(self, clustered):
        rec = recommend_format(clustered)
        assert len(rec.scores) == 2
        assert all(isinstance(s, FormatScore) for s in rec.scores)

    def test_kernel_mix_accepted_as_strings(self, clustered):
        rec = recommend_format(clustered, kernels=["tew", "ttv"])
        assert rec.fmt in (Format.COO, Format.HICOO)

    def test_generator_tensors(self):
        pl = powerlaw_tensor((5000, 5000, 16), 8000, dense_modes=(2,), seed=2)
        kron = kronecker_tensor((4096, 4096, 4096), 4000, seed=3)
        for t in (pl, kron):
            rec = recommend_format(t)
            assert rec.block_size in (32, 64, 128, 256)
