"""Tests for the Tew and Ts kernels against dense references."""

import numpy as np
import pytest

from repro.errors import PatternMismatchError
from repro.kernels import (
    coo_tew,
    coo_ts,
    dense_tew,
    dense_ts,
    hicoo_tew,
    hicoo_ts,
    tew,
    ts,
)
from repro.parallel import OpenMPBackend
from repro.sptensor import COOTensor, HiCOOTensor
from repro.types import OpKind


@pytest.fixture
def pair(rng):
    """Two tensors with overlapping but different patterns."""
    x = COOTensor.random((15, 14, 13), nnz=300, rng=rng).astype(np.float64)
    y = COOTensor.random((15, 14, 13), nnz=300, rng=rng).astype(np.float64)
    return x, y


class TestCooTewGeneral:
    def test_add_union_semantics(self, pair):
        x, y = pair
        z = coo_tew(x, y, "add")
        np.testing.assert_allclose(z.to_dense(), x.to_dense() + y.to_dense())

    def test_sub_union_semantics(self, pair):
        x, y = pair
        z = coo_tew(x, y, "sub")
        np.testing.assert_allclose(z.to_dense(), x.to_dense() - y.to_dense())

    def test_mul_intersection_semantics(self, pair):
        x, y = pair
        z = coo_tew(x, y, "mul")
        np.testing.assert_allclose(z.to_dense(), x.to_dense() * y.to_dense())

    def test_div_intersection_semantics(self, pair):
        x, y = pair
        z = coo_tew(x, y, "div")
        dx, dy = x.to_dense(), y.to_dense()
        want = dense_tew(dx, dy, OpKind.DIV)  # zero where y == 0
        # sparse div only defines entries where BOTH stored
        mask = (dx != 0) & (dy != 0)
        np.testing.assert_allclose(z.to_dense()[mask], want[mask])
        assert (z.to_dense()[~mask] == 0).all()

    def test_disjoint_patterns_add(self):
        x = COOTensor((4, 4), np.array([[0, 0]]), np.array([1.0]))
        y = COOTensor((4, 4), np.array([[3, 3]]), np.array([2.0]))
        z = coo_tew(x, y, "add")
        assert z.nnz == 2
        d = z.to_dense()
        assert d[0, 0] == 1.0 and d[3, 3] == 2.0

    def test_disjoint_patterns_mul_empty(self):
        x = COOTensor((4, 4), np.array([[0, 0]]), np.array([1.0]))
        y = COOTensor((4, 4), np.array([[3, 3]]), np.array([2.0]))
        assert coo_tew(x, y, "mul").nnz == 0

    def test_shape_mismatch(self, pair):
        x, _ = pair
        other = COOTensor.empty((2, 2, 2))
        with pytest.raises(Exception):
            coo_tew(x, other, "add")


class TestCooTewSamePattern:
    def test_fast_path_matches_general(self, coo3):
        x = coo3.copy().sort()
        y = x.copy()
        y.values = y.values * 2
        fast = coo_tew(x, y, "add", assume_same_pattern=True)
        general = coo_tew(x, y, "add")
        assert fast.allclose(general, rtol=1e-5)

    def test_nnz_mismatch_rejected(self, coo3):
        y = COOTensor.random(coo3.shape, nnz=coo3.nnz - 10, rng=0)
        with pytest.raises(PatternMismatchError):
            coo_tew(coo3, y, "add", assume_same_pattern=True)

    def test_all_ops_on_same_pattern(self, coo3):
        x = coo3.astype(np.float64).sort()
        y = x.copy()
        y.values = np.abs(y.values) + 1.0
        for op in OpKind:
            z = coo_tew(x, y, op, assume_same_pattern=True)
            want = {
                OpKind.ADD: x.values + y.values,
                OpKind.SUB: x.values - y.values,
                OpKind.MUL: x.values * y.values,
                OpKind.DIV: x.values / y.values,
            }[op]
            np.testing.assert_allclose(z.values, want)


class TestHicooTew:
    def test_same_structure_fast_path(self, coo3):
        hx = HiCOOTensor.from_coo(coo3, 8)
        hy = HiCOOTensor.from_coo(coo3, 8)
        hz = hicoo_tew(hx, hy, "add")
        np.testing.assert_allclose(
            hz.to_coo().to_dense(), 2 * coo3.to_dense(), rtol=1e-5
        )
        # structure is shared, not rebuilt
        np.testing.assert_array_equal(hz.bptr, hx.bptr)

    def test_different_patterns_merge(self, rng):
        x = COOTensor.random((20, 20, 20), nnz=200, rng=rng)
        y = COOTensor.random((20, 20, 20), nnz=200, rng=rng)
        hz = hicoo_tew(
            HiCOOTensor.from_coo(x, 8), HiCOOTensor.from_coo(y, 8), "add"
        )
        np.testing.assert_allclose(
            hz.to_coo().to_dense(), x.to_dense() + y.to_dense(), rtol=1e-5
        )

    def test_dispatcher(self, coo3, hicoo3):
        zc = tew(coo3, coo3, "add")
        zh = tew(hicoo3, hicoo3, "add")
        np.testing.assert_allclose(
            zh.to_coo().to_dense(), zc.to_dense(), rtol=1e-5
        )


class TestTs:
    @pytest.mark.parametrize("op", ["add", "sub", "mul", "div"])
    def test_coo_matches_dense(self, coo3, dense3, op):
        z = coo_ts(coo3.astype(np.float64), 2.5, op)
        want = dense_ts(dense3.astype(np.float64), 2.5, op)
        np.testing.assert_allclose(z.to_dense(), want, rtol=1e-6)

    def test_pattern_preserved(self, coo3):
        z = coo_ts(coo3, 3.0, "add")
        assert z.pattern_equals(coo3)

    def test_hicoo_matches_coo(self, coo3, hicoo3):
        zc = coo_ts(coo3, 0.5, "mul")
        zh = hicoo_ts(hicoo3, 0.5, "mul")
        assert zh.to_coo().allclose(zc, rtol=1e-5)

    def test_hicoo_structure_shared(self, hicoo3):
        zh = hicoo_ts(hicoo3, 2.0, "mul")
        np.testing.assert_array_equal(zh.bptr, hicoo3.bptr)
        np.testing.assert_array_equal(zh.binds, hicoo3.binds)

    def test_div_by_zero_rejected(self, coo3, hicoo3):
        with pytest.raises(ZeroDivisionError):
            coo_ts(coo3, 0.0, "div")
        with pytest.raises(ZeroDivisionError):
            hicoo_ts(hicoo3, 0.0, "div")

    def test_dispatcher(self, coo3, hicoo3):
        assert ts(coo3, 2.0).allclose(coo_ts(coo3, 2.0))
        np.testing.assert_allclose(
            ts(hicoo3, 2.0).values, hicoo_ts(hicoo3, 2.0).values
        )


class TestTewTsParallel:
    def test_openmp_matches_sequential(self, pair):
        x, y = pair
        be = OpenMPBackend(nthreads=4)
        try:
            for op in ("add", "mul"):
                a = coo_tew(x, y, op)
                b = coo_tew(x, y, op, backend=be)
                assert a.allclose(b, rtol=1e-12)
            np.testing.assert_allclose(
                coo_ts(x, 1.5, "mul").values,
                coo_ts(x, 1.5, "mul", backend=be).values,
            )
        finally:
            be.shutdown()
