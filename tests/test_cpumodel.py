"""Tests for the analytic CPU performance model (Observation 3 shapes)."""

import numpy as np
import pytest

from repro.bench.cpumodel import modeled_cpu_time
from repro.roofline import BLUESKY, WINGTIP, extract_features
from repro.roofline.oi import TensorFeatures
from repro.sptensor import COOTensor
from repro.types import Format, Kernel


def synthetic_features(m=1_000_000, mf_frac=0.3, nb_div=64, contention=40.0):
    """Hand-built features at paper-like magnitudes."""
    mf = int(m * mf_frac)
    return TensorFeatures(
        name="synth",
        shape=(10_000, 10_000, 10_000),
        nnz=m,
        mf_per_mode=(mf, mf, mf),
        nb=max(1, m // nb_div),
        block_size=128,
        max_fiber_imbalance=4.0,
        max_block_nnz=nb_div * 4,
        contention_per_mode=(contention,) * 3,
    )


class TestComponents:
    def test_streaming_kernels_near_bound(self):
        f = synthetic_features()
        t = modeled_cpu_time(BLUESKY, Kernel.TEW, Format.COO, f)
        assert t.fiber_s == 0 and t.atomic_s == 0 and t.block_s == 0
        assert t.total_s == t.memory_s

    def test_ttv_pays_fiber_overhead(self):
        f = synthetic_features()
        t = modeled_cpu_time(BLUESKY, Kernel.TTV, Format.COO, f)
        assert t.fiber_s > 0
        assert t.total_s > t.memory_s

    def test_mttkrp_pays_atomics(self):
        f = synthetic_features()
        t = modeled_cpu_time(BLUESKY, Kernel.MTTKRP, Format.COO, f)
        assert t.atomic_s > t.memory_s  # atomics dominate on CPUs

    def test_hicoo_block_overhead_only_mttkrp(self):
        f = synthetic_features()
        for kernel in (Kernel.TEW, Kernel.TS, Kernel.TTV, Kernel.TTM):
            assert modeled_cpu_time(BLUESKY, kernel, Format.HICOO, f).block_s == 0
        assert modeled_cpu_time(BLUESKY, Kernel.MTTKRP, Format.HICOO, f).block_s > 0

    def test_cache_resident_small_tensor(self):
        f = synthetic_features(m=1000)
        t = modeled_cpu_time(BLUESKY, Kernel.TS, Format.COO, f)
        assert t.cache_resident
        assert t.effective_bw_gbs == BLUESKY.ert_llc_bw_gbs

    def test_per_mode_fiber_counts(self):
        f = TensorFeatures(
            "x", (100, 100, 100), 10_000, (100, 5000, 5000), 10, 128, 2.0,
            50, (1.0, 1.0, 1.0),
        )
        t0 = modeled_cpu_time(BLUESKY, Kernel.TTV, Format.COO, f, mode=0)
        t1 = modeled_cpu_time(BLUESKY, Kernel.TTV, Format.COO, f, mode=1)
        assert t0.fiber_s < t1.fiber_s


class TestObservation3Shapes:
    """The calibrated efficiency shapes of the paper's Observation 3."""

    @staticmethod
    def _eff(platform, kernel, fmt, f):
        from repro.roofline import RooflineModel
        from repro.roofline.oi import cost_for

        t = modeled_cpu_time(platform, kernel, fmt, f)
        cost = cost_for(f, kernel, fmt)
        achieved = cost.flops / t.total_s / 1e9
        bound = RooflineModel(platform).attainable(cost.oi)
        return achieved / bound

    def test_bluesky_ttv_efficiency_range(self):
        f = synthetic_features()
        eff = self._eff(BLUESKY, Kernel.TTV, Format.COO, f)
        assert 0.1 < eff < 0.6  # paper: ~31%

    def test_wingtip_ttv_worse_than_bluesky(self):
        f = synthetic_features()
        assert self._eff(WINGTIP, Kernel.TTV, Format.COO, f) < self._eff(
            BLUESKY, Kernel.TTV, Format.COO, f
        )

    def test_ttm_efficiency_higher_than_ttv(self):
        f = synthetic_features()
        for p in (BLUESKY, WINGTIP):
            assert self._eff(p, Kernel.TTM, Format.COO, f) > self._eff(
                p, Kernel.TTV, Format.COO, f
            )

    def test_mttkrp_single_digit(self):
        f = synthetic_features()
        for p in (BLUESKY, WINGTIP):
            assert self._eff(p, Kernel.MTTKRP, Format.COO, f) < 0.15

    def test_hicoo_ttv_beats_coo(self):
        f = synthetic_features()
        t_coo = modeled_cpu_time(BLUESKY, Kernel.TTV, Format.COO, f)
        t_hic = modeled_cpu_time(BLUESKY, Kernel.TTV, Format.HICOO, f)
        assert t_hic.total_s < t_coo.total_s

    def test_real_tensor_features_work(self):
        t = COOTensor.random((200, 200, 30), nnz=5000, rng=0)
        f = extract_features(t, "t", 32)
        for kernel in Kernel:
            for fmt in (Format.COO, Format.HICOO):
                timing = modeled_cpu_time(BLUESKY, kernel, fmt, f)
                assert timing.total_s > 0
