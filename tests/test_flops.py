"""Tests for the Table 1 work/bytes/OI analysis."""

import pytest

from repro.kernels import (
    TABLE1_ASYMPTOTIC_OI,
    kernel_cost,
    mttkrp_cost,
    tew_cost,
    ts_cost,
    ttm_cost,
    ttv_cost,
)
from repro.types import Format, Kernel


M = 1_000_000
MF = 50_000
R = 16


class TestTable1Formulas:
    def test_tew(self):
        c = tew_cost(M)
        assert c.flops == M
        assert c.bytes == 12 * M
        assert c.oi == pytest.approx(1 / 12)

    def test_ts(self):
        c = ts_cost(M)
        assert c.flops == M
        assert c.bytes == 8 * M
        assert c.oi == pytest.approx(1 / 8)

    def test_ttv(self):
        c = ttv_cost(M, MF)
        assert c.flops == 2 * M
        assert c.bytes == 12 * M + 12 * MF
        # asymptotically 1/6 when MF << M
        assert c.oi == pytest.approx(1 / 6, rel=0.1)

    def test_ttm(self):
        c = ttm_cost(M, MF, R)
        assert c.flops == 2 * M * R
        assert c.bytes == 4 * M * R + 4 * MF * R + 8 * M + 8 * MF
        assert c.oi == pytest.approx(1 / 2, rel=0.2)

    def test_mttkrp_coo(self):
        c = mttkrp_cost(M, R, Format.COO)
        assert c.flops == 3 * M * R
        assert c.bytes == 12 * M * R + 16 * M
        assert c.oi == pytest.approx(1 / 4, rel=0.1)

    def test_mttkrp_hicoo_less_traffic(self):
        """HiCOO-Mttkrp moves fewer bytes than COO (Table 1) whenever the
        blocks contain several non-zeros each."""
        nb = M // 64  # 64 nnz per block on average
        coo = mttkrp_cost(M, R, Format.COO)
        hic = mttkrp_cost(M, R, Format.HICOO, nb=nb, block_size=128)
        assert hic.bytes < coo.bytes
        assert hic.oi > coo.oi

    def test_mttkrp_hicoo_requires_nb(self):
        with pytest.raises(ValueError):
            mttkrp_cost(M, R, Format.HICOO)

    def test_mttkrp_hicoo_min_clamp(self):
        """For hyper-sparse tensors (nb ~ M), traffic is capped at 12RM."""
        c = mttkrp_cost(1000, R, Format.HICOO, nb=1000, block_size=128)
        assert c.bytes == 12 * R * 1000 + 7 * 1000 + 20 * 1000


class TestDispatcher:
    def test_all_kernels_dispatch(self):
        assert kernel_cost("tew", "coo", M).kernel is Kernel.TEW
        assert kernel_cost("ts", "coo", M).kernel is Kernel.TS
        assert kernel_cost("ttv", "coo", M, mf=MF).kernel is Kernel.TTV
        assert kernel_cost("ttm", "coo", M, mf=MF, r=R).kernel is Kernel.TTM
        assert (
            kernel_cost("mttkrp", "hicoo", M, r=R, nb=M // 10).kernel
            is Kernel.MTTKRP
        )

    def test_missing_mf_raises(self):
        with pytest.raises(ValueError):
            kernel_cost("ttv", "coo", M)
        with pytest.raises(ValueError):
            kernel_cost("ttm", "coo", M)


class TestOrderGeneralization:
    """The Table 1 formulas generalize beyond third order."""

    def test_third_order_matches_table1(self):
        """At N=3 the general formulas reduce to the quoted ones."""
        assert ttv_cost(M, MF, order=3).bytes == 12 * M + 12 * MF
        assert ttm_cost(M, MF, R, order=3).bytes == (
            4 * M * R + 4 * MF * R + 8 * M + 8 * MF
        )
        assert mttkrp_cost(M, R, order=3).bytes == 12 * M * R + 16 * M
        nb = M // 64
        assert mttkrp_cost(M, R, Format.HICOO, nb=nb, order=3).bytes == (
            12 * R * min(nb * 128, M) + 7 * M + 20 * nb
        )

    def test_fourth_order_scales_index_terms(self):
        t3 = ttv_cost(M, MF, order=3)
        t4 = ttv_cost(M, MF, order=4)
        assert t4.bytes - t3.bytes == 4 * MF  # one more output index array

    def test_mttkrp_flops_scale_with_order(self):
        assert mttkrp_cost(M, R, order=4).flops == 4 * M * R

    def test_tew_ts_order_independent(self):
        assert tew_cost(M, order=3).bytes == tew_cost(M, order=5).bytes
        assert ts_cost(M, order=3).bytes == ts_cost(M, order=5).bytes

    def test_dispatcher_forwards_order(self):
        c3 = kernel_cost("mttkrp", "coo", M, r=R, order=3)
        c4 = kernel_cost("mttkrp", "coo", M, r=R, order=4)
        assert c4.flops > c3.flops and c4.bytes > c3.bytes


class TestAsymptoticOIs:
    def test_paper_values(self):
        assert TABLE1_ASYMPTOTIC_OI[Kernel.TEW] == pytest.approx(1 / 12)
        assert TABLE1_ASYMPTOTIC_OI[Kernel.TS] == pytest.approx(1 / 8)
        assert TABLE1_ASYMPTOTIC_OI[Kernel.TTV] == pytest.approx(1 / 6)
        assert TABLE1_ASYMPTOTIC_OI[Kernel.TTM] == pytest.approx(1 / 2)
        assert TABLE1_ASYMPTOTIC_OI[Kernel.MTTKRP] == pytest.approx(1 / 4)

    def test_exact_converges_to_asymptotic(self):
        """With MF/M -> 0 and R -> inf where applicable, the exact OI tends
        to the quoted asymptotic value."""
        m = 10**9
        assert ttv_cost(m, 1).oi == pytest.approx(1 / 6, rel=1e-4)
        assert ttm_cost(m, 1, 10**4).oi == pytest.approx(1 / 2, rel=1e-3)
        assert mttkrp_cost(m, 10**4).oi == pytest.approx(1 / 4, rel=1e-3)

    def test_kernel_ranking_by_oi(self):
        """Table 1 ordering: Tew < Ts < Ttv < Mttkrp < Ttm."""
        ois = TABLE1_ASYMPTOTIC_OI
        assert (
            ois[Kernel.TEW]
            < ois[Kernel.TS]
            < ois[Kernel.TTV]
            < ois[Kernel.MTTKRP]
            < ois[Kernel.TTM]
        )
