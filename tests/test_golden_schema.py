"""Golden-schema regression tests for on-disk/wire formats.

External consumers parse run-store journals and exported Chrome traces
from disk, so their schemas are contracts: these tests pin the exact key
sets and round-trip behaviour.  If one fails because you changed a
schema on purpose, bump the relevant version constant and update the
goldens here in the same commit.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.bench import RunStore, SweepCase, canonical_tensor_spec
from repro.bench.runstore import STORE_VERSION, StoreError
from repro.metrics.perf import PerfRecord
from repro.obs import Tracer
from repro.obs.export import CHROME_TRACE_VERSION, chrome_trace

# ---------------------------------------------------------------------- #
# Golden key sets
# ---------------------------------------------------------------------- #

PERF_RECORD_KEYS = {
    "tensor",
    "kernel",
    "fmt",
    "platform",
    "flops",
    "seconds",
    "gflops",
    "bound_gflops",
    "efficiency",
    "host_seconds",
    "host_gflops",
    "extra",
}

SWEEP_CASE_KEYS = {
    "tensor",
    "kernel",
    "fmt",
    "platform",
    "tensor_spec",
    "rank",
    "block_size",
    "repeats",
    "warmup",
    "measure_host",
    "backend",
    "base_seed",
    "cache_scale",
}

RECORD_LINE_KEYS = {
    "v",
    "kind",
    "fingerprint",
    "seed",
    "case",
    "attempt",
    "elapsed_s",
    "record",
}

QUARANTINE_LINE_KEYS = {"v", "kind", "fingerprint", "seed", "case", "failures"}

HEADER_LINE_KEYS = {"v", "kind", "fingerprint_schema"}

# Serve-protocol goldens (repro.serve.protocol): scripted clients parse
# these wire lines and scrape these metric names.
SERVE_REQUEST_KEYS = {"v", "id", "op", "params"}
SERVE_REQUEST_OPTIONAL_KEYS = {"trace"}
SERVE_TRACE_KEYS = {"trace_id", "parent_span", "baggage"}
SERVE_RESPONSE_KEYS = {"v", "id", "ok", "kind", "payload"}
SERVE_OPS = {"sweep", "report", "regress", "status", "health"}
SERVE_PARAM_KEYS = {
    "sweep": {"dataset", "tensors", "platforms", "scale", "seed", "rank"},
    "report": {"format"},
    "regress": {
        "baseline", "threshold", "confidence", "resamples", "min_pairs", "seed",
    },
    "status": set(),
    "health": set(),
}
SERVE_HEALTH_RESULT_KEYS = {
    "protocol", "uptime_s", "store", "records", "quarantined", "inflight",
    "queued", "workers", "steals", "requests", "errors", "cache_hits",
    "cache_misses", "cache_hit_rate", "request_seconds",
}
SERVE_HEALTH_LATENCY_KEYS = {"count", "sum", "p50", "p95", "p99"}
SERVE_SWEEP_RESULT_KEYS = {
    "total", "hits", "misses", "coalesced", "executed", "completed",
    "quarantined", "fingerprints", "records",
}
SERVE_STATUS_RESULT_KEYS = {
    "protocol", "store", "fingerprint_schema", "records", "quarantined",
    "inflight", "workers", "isolation", "counters",
}
SERVE_PROGRESS_KEYS = {"total", "hits", "done", "pending"}
SERVE_COUNTER_NAMES = {
    "serve.cache_hits",
    "serve.cache_misses",
    "serve.coalesced",
    "serve.errors",
    "serve.executed",
    "serve.quarantined",
    "serve.requests",
    "serve.steals",
}


def sample_record(**overrides) -> PerfRecord:
    base = dict(
        tensor="vast",
        kernel="mttkrp",
        fmt="coo",
        platform="Bluesky",
        flops=1.5e6,
        seconds=0.0125,
        gflops=0.12,
        bound_gflops=3.4,
        efficiency=0.0352941,
        host_seconds=0.002,
        host_gflops=0.75,
        extra={"mode": 1, "method": "owner"},
    )
    base.update(overrides)
    return PerfRecord(**base)


def sample_case() -> SweepCase:
    return SweepCase(
        tensor="tiny",
        kernel="ts",
        fmt="coo",
        platform="Bluesky",
        tensor_spec=canonical_tensor_spec(
            {"kind": "random", "shape": [20, 15, 6], "nnz": 100, "seed": 3}
        ),
        rank=4,
        block_size=4,
        repeats=1,
        warmup=0,
    )


# ---------------------------------------------------------------------- #
# PerfRecord wire format
# ---------------------------------------------------------------------- #


class TestPerfRecordRoundTrip:
    def test_dict_keys_are_pinned(self):
        assert set(sample_record().to_dict()) == PERF_RECORD_KEYS

    def test_json_round_trip_is_exact(self):
        rec = sample_record()
        back = PerfRecord.from_dict(json.loads(json.dumps(rec.to_dict())))
        assert back == rec

    def test_numpy_extras_are_sanitized(self):
        rec = sample_record(
            extra={
                "np_float": np.float64(2.5),
                "np_int": np.int32(7),
                "np_bool": np.bool_(True),
                "nested": {"arr": [np.float32(1.0), 2]},
                "none": None,
            }
        )
        wire = json.loads(json.dumps(rec.to_dict()))
        assert wire["extra"]["np_float"] == 2.5
        assert wire["extra"]["np_int"] == 7
        assert wire["extra"]["np_bool"] is True
        assert wire["extra"]["nested"]["arr"] == [1.0, 2]
        assert wire["extra"]["none"] is None
        back = PerfRecord.from_dict(wire)
        assert back.extra == wire["extra"]

    def test_unknown_field_is_rejected(self):
        wire = sample_record().to_dict()
        wire["surprise"] = 1
        with pytest.raises(ValueError, match="surprise"):
            PerfRecord.from_dict(wire)


# ---------------------------------------------------------------------- #
# Run-store line schema
# ---------------------------------------------------------------------- #


class TestRunStoreLines:
    def test_store_version_is_pinned(self):
        assert STORE_VERSION == 1

    def test_record_line_keys(self, tmp_path):
        store = RunStore(tmp_path / "run.jsonl")
        case = sample_case()
        store.append_record(case, sample_record(), attempt=1, elapsed_s=0.5)
        header, line = (tmp_path / "run.jsonl").read_text().splitlines()
        assert set(json.loads(header)) == HEADER_LINE_KEYS
        payload = json.loads(line)
        assert set(payload) == RECORD_LINE_KEYS
        assert payload["v"] == STORE_VERSION
        assert payload["kind"] == "record"
        assert payload["fingerprint"] == case.fingerprint
        assert payload["seed"] == case.case_seed
        assert set(payload["case"]) == SWEEP_CASE_KEYS
        assert set(payload["record"]) == PERF_RECORD_KEYS
        assert payload["attempt"] == 1
        assert payload["elapsed_s"] == 0.5

    def test_quarantine_line_keys(self, tmp_path):
        store = RunStore(tmp_path / "run.jsonl")
        case = sample_case()
        failures = [{"attempt": 0, "status": "fail_timeout", "error": "t"}]
        store.append_quarantine(case, failures)
        _header, line = (tmp_path / "run.jsonl").read_text().splitlines()
        payload = json.loads(line)
        assert set(payload) == QUARANTINE_LINE_KEYS
        assert payload["kind"] == "quarantine"
        assert payload["failures"] == failures

    def test_record_round_trips_through_store(self, tmp_path):
        store = RunStore(tmp_path / "run.jsonl")
        case = sample_case()
        rec = sample_record()
        store.append_record(case, rec, attempt=0, elapsed_s=0.1)
        state = store.load()
        assert state.perf_records([case.fingerprint]) == [rec]
        stored_case = SweepCase.from_dict(state.records[case.fingerprint]["case"])
        assert stored_case == case
        assert stored_case.fingerprint == case.fingerprint

    def test_version_drift_fails_load(self, tmp_path):
        path = tmp_path / "run.jsonl"
        store = RunStore(path)
        store.append_record(sample_case(), sample_record(), attempt=0, elapsed_s=0.1)
        header, line = path.read_text().splitlines()
        payload = json.loads(line)
        payload["v"] = STORE_VERSION + 1
        path.write_text(header + "\n" + json.dumps(payload) + "\n")
        with pytest.raises(StoreError, match="version"):
            store.load()

    def test_fresh_journal_opens_with_header(self, tmp_path):
        path = tmp_path / "run.jsonl"
        RunStore(path).append_record(
            sample_case(), sample_record(), attempt=0, elapsed_s=0.1
        )
        header = json.loads(path.read_text().splitlines()[0])
        assert set(header) == HEADER_LINE_KEYS
        assert header["kind"] == "header"
        assert header["v"] == STORE_VERSION
        from repro.bench import fingerprint_schema_version

        assert header["fingerprint_schema"] == fingerprint_schema_version()

    def test_headerless_legacy_journal_still_loads(self, tmp_path):
        path = tmp_path / "run.jsonl"
        store = RunStore(path)
        case = sample_case()
        store.append_record(case, sample_record(), attempt=0, elapsed_s=0.1)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[1:]) + "\n")  # strip the header
        state = store.load()
        assert state.header is None
        assert case.fingerprint in state.records


# ---------------------------------------------------------------------- #
# Chrome trace-event export schema
# ---------------------------------------------------------------------- #


def traced() -> dict:
    tracer = Tracer(meta={"suite": "golden"})
    with tracer:
        with tracer.span("outer", cat="kernel", mode=1):
            tracer.instant("tick", cat="kernel")
            tracer.count("nnz", 64)
    return chrome_trace(tracer.freeze())


class TestChromeTraceSchema:
    def test_top_level_keys(self):
        doc = traced()
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["displayTimeUnit"] == "ms"
        assert doc["otherData"]["exporter"] == "repro.obs"
        assert doc["otherData"]["version"] == CHROME_TRACE_VERSION
        assert doc["otherData"]["suite"] == "golden"

    def test_event_phases_and_keys(self):
        events = traced()["traceEvents"]
        by_ph = {}
        for e in events:
            by_ph.setdefault(e["ph"], []).append(e)
        assert set(by_ph) == {"M", "X", "i", "C"}

        (span,) = by_ph["X"]
        assert set(span) == {"name", "cat", "ph", "ts", "pid", "tid", "args", "dur"}
        assert span["name"] == "outer"
        assert span["args"]["mode"] == 1

        (instant,) = by_ph["i"]
        assert set(instant) == {"name", "cat", "ph", "ts", "pid", "tid", "args", "s"}
        assert instant["s"] == "t"

        (counter,) = by_ph["C"]
        assert set(counter) == {"name", "ph", "ts", "pid", "tid", "args"}
        assert counter["name"] == "nnz"
        assert counter["args"] == {"value": 64}

        (meta,) = by_ph["M"]
        assert set(meta) == {"name", "ph", "pid", "tid", "args"}
        assert meta["name"] == "thread_name"

    def test_export_is_json_serializable(self):
        doc = traced()
        assert json.loads(json.dumps(doc)) == doc


def merged_inputs() -> tuple:
    from repro.obs import Trace

    parent = Tracer(trace_id="cafe", meta={"process": "daemon"})
    with parent:
        with parent.span("serve.sweep", cat="request", span_id="feed"):
            pass
    child = Tracer(
        trace_id="cafe", meta={"process": "worker", "parent_span": "feed"}
    )
    with child:
        with child.span("run.mttkrp", cat="kernel"):
            pass
    root = parent.freeze()
    # Round-trip the child through the verdict wire format first, as the
    # executor does when folding a worker subprocess's spans back in.
    kid = Trace.from_dict(json.loads(json.dumps(child.freeze().to_dict())))
    return root, kid


def merged() -> dict:
    from repro.obs import merge_traces

    root, kid = merged_inputs()
    return merge_traces(root, children=[kid], trace_id="cafe")


class TestMergedTraceSchema:
    def test_top_level_keys(self):
        doc = merged()
        assert set(doc) == {"traceEvents", "displayTimeUnit", "otherData"}
        assert doc["otherData"]["exporter"] == "repro.obs"
        assert doc["otherData"]["version"] == CHROME_TRACE_VERSION
        assert doc["otherData"]["trace_id"] == "cafe"
        assert doc["otherData"]["processes"] == 2

    def test_processes_and_flow_events(self):
        events = merged()["traceEvents"]
        names = {
            e["pid"]: e["args"]["name"]
            for e in events
            if e["ph"] == "M" and e["name"] == "process_name"
        }
        assert names == {0: "daemon", 1: "worker"}
        spans = [e for e in events if e["ph"] == "X"]
        assert {e["pid"] for e in spans} == {0, 1}
        flows = sorted(
            (e for e in events if e.get("cat") == "flow"),
            key=lambda e: e["ph"],
        )
        assert [e["ph"] for e in flows] == ["f", "s"]
        assert all(e["name"] == "spawn" for e in flows)
        assert all(e["id"] == "feed" for e in flows)
        assert flows[1]["pid"] == 0 and flows[0]["pid"] == 1

    def test_merge_is_deterministic(self):
        from repro.obs import merge_traces

        root, kid = merged_inputs()
        once = json.dumps(merge_traces(root, children=[kid], trace_id="cafe"))
        again = json.dumps(merge_traces(root, children=[kid], trace_id="cafe"))
        assert once == again


# ---------------------------------------------------------------------- #
# Roofline attribution block (PerfRecord.extra["roofline"])
# ---------------------------------------------------------------------- #

ROOFLINE_KEYS = {
    "platform",
    "kernel",
    "fmt",
    "oi",
    "ridge_oi",
    "bound_gflops",
    "achieved_gflops",
    "bound_fraction",
    "boundedness",
    "modeled_flops",
    "modeled_bytes",
    "bw_ceiling_gbs",
    "effective_bw_gbs",
    "bw_fraction",
}


class TestRooflineBlockSchema:
    def _block(self):
        from repro.kernels.flops import KernelCost
        from repro.obs import attribute
        from repro.roofline import RooflineModel, get_platform
        from repro.types import Format, Kernel

        model = RooflineModel(get_platform("Bluesky"))
        cost = KernelCost(Kernel.TTV, Format.COO, 1e6, 1e7)
        return attribute(model, cost, seconds=1e-4, host_seconds=1e-3).as_dict()

    def test_block_keys_are_pinned(self):
        assert set(self._block()) == ROOFLINE_KEYS

    def test_block_rides_record_wire_format(self):
        rec = sample_record(extra={"roofline": self._block()})
        back = PerfRecord.from_dict(json.loads(json.dumps(rec.to_dict())))
        assert set(back.extra["roofline"]) == ROOFLINE_KEYS
        assert back.extra["roofline"]["boundedness"] in ("memory", "compute")


# ---------------------------------------------------------------------- #
# Serve wire protocol (repro.serve.protocol)
# ---------------------------------------------------------------------- #


class TestServeProtocolGolden:
    def test_protocol_version_is_pinned(self):
        from repro.serve import protocol

        assert protocol.PROTOCOL_VERSION == 1

    def test_ops_and_key_sets_are_pinned(self):
        from repro.serve import protocol

        assert set(protocol.OPS) == SERVE_OPS
        assert set(protocol.REQUEST_KEYS) == SERVE_REQUEST_KEYS
        assert set(protocol.RESPONSE_KEYS) == SERVE_RESPONSE_KEYS
        for op, keys in SERVE_PARAM_KEYS.items():
            assert set(protocol.PARAM_KEYS[op]) == keys, op
        assert set(protocol.SWEEP_RESULT_KEYS) == SERVE_SWEEP_RESULT_KEYS
        assert set(protocol.STATUS_RESULT_KEYS) == SERVE_STATUS_RESULT_KEYS
        assert set(protocol.PROGRESS_KEYS) == SERVE_PROGRESS_KEYS
        assert set(protocol.REQUEST_OPTIONAL_KEYS) == SERVE_REQUEST_OPTIONAL_KEYS
        assert set(protocol.TRACE_KEYS) == SERVE_TRACE_KEYS
        assert set(protocol.HEALTH_RESULT_KEYS) == SERVE_HEALTH_RESULT_KEYS
        assert set(protocol.HEALTH_LATENCY_KEYS) == SERVE_HEALTH_LATENCY_KEYS

    def test_serve_counter_names_are_pinned(self):
        from repro.serve import protocol

        assert set(protocol.SERVE_COUNTERS) == SERVE_COUNTER_NAMES
        assert set(protocol.SERVE_HISTOGRAMS) == {"serve.request_seconds"}

    def test_request_wire_round_trip(self):
        from repro.serve import protocol

        req = protocol.make_request("sweep", {"tensors": ["s1"]}, id="7")
        assert set(req) == SERVE_REQUEST_KEYS
        back = protocol.validate_request(protocol.decode(protocol.encode(req)))
        assert back == req

    def test_traced_request_wire_round_trip(self):
        from repro.serve import protocol

        trace = {"trace_id": "cafe", "parent_span": "beef", "baggage": {}}
        req = protocol.make_request("sweep", {"tensors": ["s1"]}, trace=trace)
        assert set(req) == SERVE_REQUEST_KEYS | {"trace"}
        assert set(req["trace"]) == SERVE_TRACE_KEYS
        back = protocol.validate_request(protocol.decode(protocol.encode(req)))
        assert back == req
        # An untraced request stays byte-identical to protocol v1 wire.
        assert "trace" not in protocol.make_request("sweep", {})

    def test_malformed_trace_is_rejected(self):
        from repro.serve import protocol

        req = protocol.make_request("status")
        req["trace"] = {"trace_id": ""}
        with pytest.raises(protocol.ProtocolError, match="trace"):
            protocol.validate_request(req)
        req["trace"] = {"trace_id": "cafe", "surprise": 1}
        with pytest.raises(protocol.ProtocolError, match="trace"):
            protocol.validate_request(req)

    def test_response_wire_round_trip(self):
        from repro.serve import protocol

        resp = protocol.make_response("7", "result", {"total": 0})
        assert set(resp) == SERVE_RESPONSE_KEYS
        assert resp["ok"] is True
        err = protocol.make_response("7", "error", {"error": "boom"})
        assert err["ok"] is False
        back = protocol.validate_response(protocol.decode(protocol.encode(resp)))
        assert back == resp

    def test_unknown_op_and_params_are_rejected(self):
        from repro.serve import protocol

        with pytest.raises(protocol.ProtocolError, match="unknown op"):
            protocol.make_request("explode")
        with pytest.raises(protocol.ProtocolError, match="param"):
            protocol.make_request("report", {"tensors": ["s1"]})
        with pytest.raises(protocol.ProtocolError, match="baseline"):
            protocol.make_request("regress", {"threshold": 1.1})

    def test_version_drift_is_rejected(self):
        from repro.serve import protocol

        req = protocol.make_request("status")
        req["v"] = protocol.PROTOCOL_VERSION + 1
        with pytest.raises(protocol.ProtocolError, match="version"):
            protocol.validate_request(req)


# ---------------------------------------------------------------------- #
# Prometheus text exposition
# ---------------------------------------------------------------------- #


class TestPrometheusExportGolden:
    def test_exact_render(self):
        from repro.obs import MetricsRegistry

        reg = MetricsRegistry()
        reg.inc("exec.completed", 3, kernel="mttkrp", fmt="hicoo")
        reg.set_gauge("ws.bytes", 4096.0, pool="main")
        reg.observe("case_s", 0.02, buckets=(0.01, 0.1), kernel="mttkrp")
        assert reg.render_prometheus() == (
            "# TYPE case_s histogram\n"
            'case_s_bucket{kernel="mttkrp",le="0.01"} 0\n'
            'case_s_bucket{kernel="mttkrp",le="0.1"} 1\n'
            'case_s_bucket{kernel="mttkrp",le="+Inf"} 1\n'
            'case_s_sum{kernel="mttkrp"} 0.02\n'
            'case_s_count{kernel="mttkrp"} 1\n'
            "# TYPE case_s_quantile gauge\n"
            'case_s_quantile{kernel="mttkrp",quantile="0.5"} 0.02\n'
            'case_s_quantile{kernel="mttkrp",quantile="0.95"} 0.02\n'
            'case_s_quantile{kernel="mttkrp",quantile="0.99"} 0.02\n'
            "# TYPE exec_completed counter\n"
            'exec_completed{fmt="hicoo",kernel="mttkrp"} 3\n'
            "# TYPE ws_bytes gauge\n"
            'ws_bytes{pool="main"} 4096\n'
        )
