"""Tests for bit utilities."""

import pytest

from repro.util.bits import ilog2, is_pow2, next_pow2


class TestIsPow2:
    def test_powers(self):
        for k in range(20):
            assert is_pow2(1 << k)

    def test_non_powers(self):
        for n in (0, 3, 5, 6, 7, 9, 100, -4):
            assert not is_pow2(n)


class TestNextPow2:
    def test_exact_power_unchanged(self):
        assert next_pow2(64) == 64

    def test_rounds_up(self):
        assert next_pow2(65) == 128
        assert next_pow2(3) == 4

    def test_degenerate(self):
        assert next_pow2(0) == 1
        assert next_pow2(1) == 1


class TestIlog2:
    def test_values(self):
        assert ilog2(1) == 0
        assert ilog2(128) == 7

    def test_rejects_non_power(self):
        with pytest.raises(ValueError):
            ilog2(100)
