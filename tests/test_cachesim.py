"""Tests for the cache simulator and kernel gather traces."""

import numpy as np
import pytest

from repro.cachesim import (
    CacheStats,
    LRUCache,
    measure_gather_locality,
    mttkrp_gather_trace,
    simulate_trace,
    ttv_gather_trace,
)
from repro.errors import ShapeError
from repro.generate import kronecker_tensor
from repro.sptensor import COOTensor, HiCOOTensor


class TestLRUCache:
    def test_geometry(self):
        c = LRUCache(64 * 1024, line_size=64, ways=8)
        assert c.nsets * c.ways * c.line_size == c.size_bytes
        assert c.size_bytes <= 64 * 1024

    def test_cold_miss_then_hit(self):
        c = LRUCache(4096, 64, 4)
        assert not c.access(0)
        assert c.access(0)
        assert c.access(63)  # same line
        assert not c.access(64)  # next line

    def test_lru_eviction_order(self):
        c = LRUCache(64 * 4 * 1, 64, 4)  # 1 set, 4 ways
        assert c.nsets == 1
        for i in range(4):
            c.access(i * 64)  # fill the set
        c.access(0)  # refresh line 0
        c.access(4 * 64)  # evicts LRU = line 1
        assert c.access(0)  # still resident
        assert not c.access(64)  # line 1 was evicted

    def test_capacity_streaming_misses(self):
        """A working set twice the cache streams at ~100% misses."""
        c = LRUCache(4096, 64, 4)
        trace = np.tile(np.arange(0, 8192, 64, dtype=np.int64), 4)
        c.access_block(trace)
        assert c.stats.miss_rate > 0.9

    def test_fitting_working_set_hits(self):
        c = LRUCache(8192, 64, 8)
        trace = np.tile(np.arange(0, 4096, 64, dtype=np.int64), 8)
        c.access_block(trace)
        # cold misses only: 64 lines out of 512 accesses
        assert c.stats.hits == 512 - 64

    def test_block_matches_scalar_path(self):
        rng = np.random.default_rng(0)
        trace = rng.integers(0, 1 << 16, 500, dtype=np.int64)
        a = LRUCache(4096, 64, 4)
        a.access_block(trace)
        b = LRUCache(4096, 64, 4)
        for addr in trace:
            b.access(int(addr))
        assert a.stats.accesses == b.stats.accesses
        assert a.stats.hits == b.stats.hits

    def test_stats_helpers(self):
        s = CacheStats(accesses=10, hits=7)
        assert s.misses == 3
        assert s.hit_rate == pytest.approx(0.7)
        assert s.miss_bytes(64) == 192

    def test_invalid_geometry(self):
        with pytest.raises(ShapeError):
            LRUCache(64, 64, 8)  # too small for the ways
        with pytest.raises(ShapeError):
            LRUCache(4096, 60, 4)  # non-power-of-two line

    def test_reset(self):
        c = LRUCache(4096, 64, 4)
        c.access(0)
        c.reset()
        assert c.stats.accesses == 0
        assert not c.access(0)  # cold again


class TestTraces:
    @pytest.fixture(scope="class")
    def x(self):
        return kronecker_tensor((1024, 1024, 1024), 5000, seed=4)

    def test_ttv_trace_addresses(self, x):
        trace = ttv_gather_trace(x, 1)
        assert len(trace) == x.nnz
        np.testing.assert_array_equal(
            np.sort(np.unique(trace // 4)),
            np.sort(np.unique(x.indices[:, 1].astype(np.int64))),
        )

    def test_hicoo_trace_same_multiset(self, x):
        h = HiCOOTensor.from_coo(x, 64)
        a = np.sort(ttv_gather_trace(x, 2))
        b = np.sort(ttv_gather_trace(h, 2))
        np.testing.assert_array_equal(a, b)

    def test_mttkrp_trace_shape(self, x):
        trace = mttkrp_gather_trace(x, 0, r=16)
        # R=16 floats = 64 bytes = 1 line per row, 3 modes per entry
        assert len(trace) == x.nnz * 3

    def test_mttkrp_trace_regions_disjoint(self, x):
        trace = mttkrp_gather_trace(x, 0, r=16)
        regions = np.unique(trace >> 40)
        assert len(regions) == 3  # one region per mode's matrix

    def test_unknown_kernel(self, x):
        with pytest.raises(ValueError):
            measure_gather_locality(x, 0, 4096, kernel="spmv")


class TestLocalityClaims:
    """The measured form of the paper's HiCOO locality claims."""

    @pytest.fixture(scope="class")
    def kron(self):
        return kronecker_tensor((4096, 4096, 4096), 15000, seed=0)

    def test_morton_order_wins_on_non_major_modes(self, kron):
        """COO's sort order favors mode 0 only; HiCOO's Morton order
        gives every mode block locality.  On a small cache the non-major
        gathers miss far less in HiCOO order."""
        coo = kron.copy().sort()
        hic = HiCOOTensor.from_coo(coo, 128)
        for mode in (1, 2):
            a = simulate_trace(ttv_gather_trace(coo, mode), 4 * 1024)
            b = simulate_trace(ttv_gather_trace(hic, mode), 4 * 1024)
            assert b.miss_rate < a.miss_rate * 0.5, (
                f"mode {mode}: hicoo {b.miss_rate:.3f} vs coo {a.miss_rate:.3f}"
            )

    def test_coo_wins_its_sort_major_mode(self, kron):
        """The flip side: sorted COO walks mode-0 rows almost
        sequentially, which Morton order cannot beat."""
        coo = kron.copy().sort()
        hic = HiCOOTensor.from_coo(coo, 128)
        a = simulate_trace(ttv_gather_trace(coo, 0), 4 * 1024)
        b = simulate_trace(ttv_gather_trace(hic, 0), 4 * 1024)
        assert a.miss_rate <= b.miss_rate + 1e-9

    def test_big_cache_erases_the_difference(self, kron):
        res = measure_gather_locality(
            kron, 1, cache_bytes=1 << 22, kernel="ttv"
        )
        assert abs(res["coo"].miss_rate - res["hicoo"].miss_rate) < 0.02
