"""Tests for the live streaming-ingestion benchmark (:mod:`repro.ingest`)."""

import dataclasses
import json

import numpy as np
import pytest

from repro.bench.runstore import RunStore
from repro.ingest import (
    IngestBench,
    IngestConfig,
    IngestError,
    WindowBlocker,
    reference_window_state,
    run_ingest_bench,
    verify_window_state,
)
from repro.parallel import ChaosBackend
from repro.sptensor import COOTensor, HiCOOTensor


def small_config(**kw):
    kw.setdefault("shape", (32, 32, 8))
    kw.setdefault("events", 6000)
    kw.setdefault("batch", 512)
    kw.setdefault("window", 3)
    kw.setdefault("workers", 3)
    kw.setdefault("queue_depth", 3)
    kw.setdefault("query_every", 4)
    kw.setdefault("rank", 4)
    kw.setdefault("seed", 13)
    kw.setdefault("block_size", 8)
    return IngestConfig(**kw)


def assert_bit_exact(got, want):
    assert got.shape == want.shape
    np.testing.assert_array_equal(got.indices, want.indices)
    np.testing.assert_array_equal(
        got.values.view(np.uint8), want.values.view(np.uint8)
    )


class TestIngestConfig:
    def test_validation(self):
        with pytest.raises(IngestError):
            IngestConfig(events=0)
        with pytest.raises(IngestError):
            IngestConfig(workers=0)
        with pytest.raises(IngestError):
            IngestConfig(eviction="nope")
        with pytest.raises(IngestError):
            IngestConfig(block_size=3)

    def test_fingerprint_stable_and_fault_insensitive(self):
        a = small_config()
        b = small_config(fail_at_batch=5)
        assert a.fingerprint == b.fingerprint  # fault knob excluded
        c = small_config(seed=99)
        assert a.fingerprint != c.fingerprint

    def test_store_case_shape(self):
        case = small_config().store_case("ttv", "coo")
        d = case.to_dict()
        assert d["kernel"] == "ttv" and d["fmt"] == "coo"
        assert case.fingerprint.endswith(":ttv/coo")
        assert isinstance(case.case_seed, int)


class TestConcurrentIngest:
    def test_window_state_bit_exact_vs_serial_replay(self):
        cfg = small_config()
        result = IngestBench(cfg).run()
        assert result.batches == cfg.nbatches
        assert result.evictions == cfg.nbatches - cfg.window
        assert_bit_exact(result.state, reference_window_state(cfg))
        ok, detail = verify_window_state(result)
        assert ok, detail

    def test_single_worker_and_wide_window(self):
        # window >> nbatches: nothing evicts, state is the whole stream
        cfg = small_config(workers=1, window=100, query_every=0)
        result = IngestBench(cfg).run()
        assert result.evictions == 0
        assert_bit_exact(result.state, reference_window_state(cfg))

    def test_worker_churn_preserves_state(self):
        cfg = small_config(worker_lifetime=1)
        result = IngestBench(cfg).run()
        assert result.churned > 0
        assert_bit_exact(result.state, reference_window_state(cfg))

    def test_backpressure_bounded_and_counted(self):
        cfg = small_config(
            workers=1, queue_depth=2, query_every=0, events=3000
        )
        result = IngestBench(cfg, apply_delay_s=0.01).run()
        assert result.backpressure_stalls > 0
        assert result.queue_max_depth <= cfg.queue_depth
        assert_bit_exact(result.state, reference_window_state(cfg))

    def test_latency_percentiles_recorded(self):
        result = IngestBench(small_config(query_every=0)).run()
        lat = result.latency_s
        assert set(lat) == {"p50", "p95", "p99"}
        assert 0 < lat["p50"] <= lat["p95"] <= lat["p99"]
        assert result.events_per_s > 0

    def test_queries_race_ingestion(self):
        cfg = small_config(query_every=2)
        result = IngestBench(cfg).run()
        assert result.queries >= 4  # at least the final round
        assert set(result.query_latency_s) <= {
            ("ttv", "coo"), ("ttv", "hicoo"),
            ("mttkrp", "coo"), ("mttkrp", "hicoo"),
        }
        assert_bit_exact(result.state, reference_window_state(cfg))

    def test_chaos_query_backend_does_not_corrupt_window(self):
        cfg = small_config(query_every=2, worker_lifetime=2)
        backend = ChaosBackend(seed=5, churn=True, failure_rate=0.5)
        result = IngestBench(cfg, query_backend=backend).run()
        # chaos at 50% failure over many rounds essentially always bites
        assert result.query_failures > 0
        assert result.churned > 0
        assert_bit_exact(result.state, reference_window_state(cfg))

    def test_injected_failure_raises(self):
        cfg = small_config(query_every=0, fail_at_batch=3)
        with pytest.raises(IngestError, match="injected"):
            IngestBench(cfg).run()

    def test_perf_records_carry_summary_and_roofline(self):
        cfg = small_config()
        result = IngestBench(cfg).run()
        marker = [r for r in result.records if r.kernel == "ingest"]
        assert len(marker) == 1
        summary = marker[0].extra["ingest"]
        assert summary["events"] == cfg.events
        assert summary["events_per_s"] > 0
        assert set(summary["latency_s"]) == {"p50", "p95", "p99"}
        kernels = [r for r in result.records if r.kernel != "ingest"]
        assert kernels
        for rec in kernels:
            assert rec.tensor == cfg.tensor_name
            assert rec.extra["roofline"]["bound_gflops"] > 0
            assert set(rec.extra["ingest"]["query_latency_s"]) == {
                "p50", "p95", "p99"
            }
            # exact JSON round trip (run-store requirement)
            assert (
                rec.from_dict(json.loads(json.dumps(rec.to_dict()))) == rec
            )

    def test_observability(self):
        from repro.obs import Tracer, get_metrics

        tracer = Tracer()
        with tracer:
            IngestBench(small_config()).run()
        trace = tracer.freeze()
        names = {s.name for s in trace.spans()}
        assert "ingest.run" in names
        assert "ingest.batch" in names
        assert "ingest.query" in names
        text = get_metrics().render_prometheus()
        assert "ingest_batches" in text
        assert "ingest_events" in text


class TestWindowBlocker:
    def _batches(self, shape, n, seed=0):
        rng = np.random.default_rng(seed)
        out = []
        for _ in range(n):
            m = int(rng.integers(4, 40))
            coords = rng.integers(0, shape, size=(m, len(shape)))
            values = rng.random(m, dtype=np.float64)
            out.append(COOTensor(shape, coords, values).coalesce())
        return out

    def test_snapshot_matches_from_coo(self):
        shape = (32, 24, 8)
        blocker = WindowBlocker(shape, block_size=8)
        window = []
        for bid, batch in enumerate(self._batches(shape, 6, seed=3)):
            blocker.admit(bid, blocker.decompose(batch))
            window.append(batch)
            if len(window) > 3:
                blocker.evict(bid - 3)
                window.pop(0)
            coords = np.concatenate([b.indices for b in window], axis=0)
            values = np.concatenate([b.values for b in window])
            state = COOTensor(shape, coords, values).coalesce()
            got = blocker.snapshot()
            want = HiCOOTensor.from_coo(state, 8)
            assert got.to_coo().allclose(want.to_coo(), rtol=0, atol=1e-12)
            np.testing.assert_array_equal(got.bptr, want.bptr)
            np.testing.assert_array_equal(got.binds, want.binds)

    def test_cross_batch_duplicates_coalesce(self):
        shape = (16, 16)
        blocker = WindowBlocker(shape, block_size=4)
        a = COOTensor(shape, np.array([[1, 1]]), np.array([1.0]))
        b = COOTensor(shape, np.array([[1, 1]]), np.array([2.0]))
        blocker.admit(0, blocker.decompose(a))
        blocker.admit(1, blocker.decompose(b))
        snap = blocker.snapshot().to_coo()
        assert snap.nnz == 1
        assert snap.values[0] == 3.0

    def test_empty_window(self):
        blocker = WindowBlocker((8, 8), block_size=4)
        assert blocker.snapshot().to_coo().nnz == 0

    def test_memoization_on_version(self):
        shape = (16, 16)
        blocker = WindowBlocker(shape, block_size=4)
        batch = COOTensor(shape, np.array([[2, 3]]), np.array([1.0]))
        blocker.admit(0, blocker.decompose(batch))
        s1 = blocker.snapshot(version=1)
        s2 = blocker.snapshot(version=1)
        assert s2 is s1
        assert blocker.reblocks == 1 and blocker.cache_hits == 1
        blocker.admit(1, blocker.decompose(batch))
        s3 = blocker.snapshot(version=2)
        assert s3 is not s1
        assert blocker.reblocks == 2

    def test_bad_block_size(self):
        with pytest.raises(IngestError):
            WindowBlocker((8, 8), block_size=5)


class TestRunIngestBench:
    def test_store_journal_and_cached_resume(self, tmp_path):
        store = tmp_path / "ingest.jsonl"
        cfg = small_config()
        first = run_ingest_bench(cfg, store=store)
        state = RunStore(store).load()
        assert len(state.records) == len(first.records)
        assert not state.quarantined
        # resume serves the completed scenario from the journal
        again = run_ingest_bench(cfg, store=store, resume=True)
        assert again.from_cache
        assert again.events == first.events
        assert again.window_nnz == first.window_nnz
        assert again.latency_s == first.latency_s
        assert len(again.records) == len(first.records)
        assert {(r.kernel, r.fmt) for r in again.records} == {
            (r.kernel, r.fmt) for r in first.records
        }

    def test_failure_quarantines_then_resume_clears(self, tmp_path):
        store = tmp_path / "ingest.jsonl"
        bad = small_config(query_every=0, fail_at_batch=4)
        with pytest.raises(IngestError):
            run_ingest_bench(bad, store=store)
        state = RunStore(store).load()
        assert len(state.quarantined) == 1
        (q,) = state.quarantined.values()
        assert q["failures"][0]["kind"] == "error"
        assert "injected" in q["failures"][0]["detail"]
        # the healthy config shares the fingerprint, so its success
        # supersedes the quarantine (sweep-resume discipline)
        good = dataclasses.replace(bad, fail_at_batch=0)
        result = run_ingest_bench(good, store=store, resume=True)
        assert not result.from_cache
        state = RunStore(store).load()
        assert not state.quarantined
        assert state.records
        ok, detail = verify_window_state(result)
        assert ok, detail

    def test_without_store(self):
        result = run_ingest_bench(small_config(query_every=0))
        assert not result.from_cache
        assert result.batches == result.config.nbatches
