"""Integration tests: every example script runs to completion.

Examples are the suite's user-facing contract; each asserts its own
domain-level success criteria internally, so a clean exit is a meaningful
end-to-end check of the public API.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

FAST_EXAMPLES = [
    "quickstart.py",
    "cp_decomposition.py",
    "tensor_power_method.py",
    "tucker_ttm_chain.py",
    "synthetic_datasets.py",
    "roofline_analysis.py",
    "streaming_and_tuning.py",
    "locality_study.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    path = os.path.join(EXAMPLES_DIR, script)
    proc = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=420,
    )
    assert proc.returncode == 0, (
        f"{script} failed\nstdout:\n{proc.stdout[-2000:]}\n"
        f"stderr:\n{proc.stderr[-2000:]}"
    )
    assert proc.stdout.strip(), f"{script} produced no output"


def test_paper_figures_quick(tmp_path):
    """The full-harness driver in quick mode (writes CSVs)."""
    path = os.path.join(EXAMPLES_DIR, "paper_figures.py")
    proc = subprocess.run(
        [sys.executable, path, "--quick", "--scale", "20000"],
        capture_output=True,
        text=True,
        timeout=420,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    assert "observations" in proc.stdout
