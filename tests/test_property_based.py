"""Property-based tests (hypothesis) on format round-trips and kernels.

These are the invariants the whole suite rests on:

* every format round-trips through COO losslessly;
* every kernel agrees with the dense reference on arbitrary tensors;
* structural invariants (Morton grouping, bptr partitioning, fiber
  pointers) hold for arbitrary shapes/patterns, including adversarial
  ones hypothesis discovers.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import (
    coo_mttkrp,
    coo_tew,
    coo_ts,
    coo_ttm,
    coo_ttv,
    dense_mttkrp,
    dense_ttm,
    dense_ttv,
    hicoo_mttkrp,
    hicoo_tew,
    hicoo_ts,
    hicoo_ttm,
    hicoo_ttv,
)
from repro.sptensor import (
    COOTensor,
    CSFTensor,
    GHiCOOTensor,
    HiCOOTensor,
    SemiCOOTensor,
)


@st.composite
def sparse_tensors(draw, max_order=4, max_dim=24, max_nnz=60):
    """Random COO tensors of arbitrary small shape and pattern."""
    order = draw(st.integers(2, max_order))
    shape = tuple(draw(st.integers(1, max_dim)) for _ in range(order))
    capacity = int(np.prod(shape))
    nnz = draw(st.integers(0, min(max_nnz, capacity)))
    seed = draw(st.integers(0, 2**31 - 1))
    rng = np.random.default_rng(seed)
    if nnz == 0:
        return COOTensor.empty(shape, dtype=np.float64)
    lin = rng.choice(capacity, size=nnz, replace=False)
    coords = np.stack(np.unravel_index(lin, shape), axis=1)
    # values bounded away from zero so drop_zeros never fires
    vals = rng.uniform(0.5, 2.0, size=nnz) * rng.choice([-1.0, 1.0], size=nnz)
    return COOTensor(shape, coords, vals.astype(np.float64), check=False)


block_sizes = st.sampled_from([1, 2, 4, 8, 16, 128])


class TestFormatRoundtrips:
    @given(sparse_tensors(), block_sizes)
    @settings(max_examples=60, deadline=None)
    def test_hicoo_roundtrip(self, t, b):
        h = HiCOOTensor.from_coo(t, b)
        assert h.nnz == t.nnz
        assert h.to_coo().allclose(t)

    @given(sparse_tensors(), block_sizes, st.data())
    @settings(max_examples=60, deadline=None)
    def test_ghicoo_roundtrip(self, t, b, data):
        comp = data.draw(
            st.lists(
                st.integers(0, t.nmodes - 1), min_size=1, max_size=t.nmodes,
                unique=True,
            )
        )
        g = GHiCOOTensor.from_coo(t, b, comp)
        assert g.to_coo().allclose(t)

    @given(sparse_tensors(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_csf_roundtrip_any_order(self, t, data):
        order = data.draw(st.permutations(range(t.nmodes)))
        c = CSFTensor.from_coo(t, order)
        assert c.to_coo().allclose(t)

    @given(sparse_tensors(max_order=3, max_dim=12), st.data())
    @settings(max_examples=40, deadline=None)
    def test_scoo_roundtrip(self, t, data):
        dm = data.draw(st.integers(0, t.nmodes - 1))
        sc = SemiCOOTensor.from_coo(t, (dm,))
        assert sc.to_coo().allclose(t)

    @given(sparse_tensors())
    @settings(max_examples=40, deadline=None)
    def test_dense_roundtrip(self, t):
        assert COOTensor.from_dense(t.to_dense()).allclose(t)

    @given(sparse_tensors(), st.data())
    @settings(max_examples=40, deadline=None)
    def test_sort_preserves_values(self, t, data):
        order = tuple(data.draw(st.permutations(range(t.nmodes))))
        d = t.to_dense()
        t.sort(order)
        np.testing.assert_allclose(t.to_dense(), d)
        lin = t.linearize(order)
        assert (np.diff(lin) >= 0).all()


class TestStructuralInvariants:
    @given(sparse_tensors(), block_sizes)
    @settings(max_examples=60, deadline=None)
    def test_hicoo_bptr_partitions(self, t, b):
        h = HiCOOTensor.from_coo(t, b)
        assert h.bptr[0] == 0 and h.bptr[-1] == h.nnz
        nnzb = h.nnz_per_block()
        assert (nnzb >= 1).all() or h.nnz == 0
        # every entry's block coordinate matches its owning block
        if h.nnz:
            bid = h.entry_block_ids()
            blocks = h.global_indices() // h.block_size
            np.testing.assert_array_equal(
                blocks, h.binds[bid].astype(np.int64)
            )

    @given(sparse_tensors())
    @settings(max_examples=40, deadline=None)
    def test_fiber_index_partitions(self, t):
        for mode in range(t.nmodes):
            fi = t.fiber_index(mode)
            assert fi.fptr[0] == 0 and fi.fptr[-1] == t.nnz
            assert fi.fiber_lengths().sum() == t.nnz

    @given(sparse_tensors())
    @settings(max_examples=40, deadline=None)
    def test_coalesce_idempotent(self, t):
        c = t.coalesce()
        cc = c.coalesce()
        assert c.allclose(cc)
        assert not c.has_duplicates()


class TestKernelsAgainstDense:
    @given(sparse_tensors(max_order=3), st.data())
    @settings(max_examples=40, deadline=None)
    def test_ttv(self, t, data):
        mode = data.draw(st.integers(0, t.nmodes - 1))
        seed = data.draw(st.integers(0, 1000))
        v = np.random.default_rng(seed).uniform(-1, 1, t.shape[mode])
        got = coo_ttv(t, v, mode).to_dense()
        np.testing.assert_allclose(
            got, dense_ttv(t.to_dense(), v, mode), rtol=1e-7, atol=1e-9
        )

    @given(sparse_tensors(max_order=3, max_dim=12), st.data())
    @settings(max_examples=40, deadline=None)
    def test_ttm(self, t, data):
        mode = data.draw(st.integers(0, t.nmodes - 1))
        r = data.draw(st.integers(1, 4))
        seed = data.draw(st.integers(0, 1000))
        u = np.random.default_rng(seed).uniform(-1, 1, (t.shape[mode], r))
        got = coo_ttm(t, u, mode).to_dense()
        np.testing.assert_allclose(
            got, dense_ttm(t.to_dense(), u, mode), rtol=1e-7, atol=1e-9
        )

    @given(sparse_tensors(max_order=3, max_dim=10), st.data(), block_sizes)
    @settings(max_examples=40, deadline=None)
    def test_mttkrp_both_formats(self, t, data, b):
        mode = data.draw(st.integers(0, t.nmodes - 1))
        seed = data.draw(st.integers(0, 1000))
        rng = np.random.default_rng(seed)
        mats = [rng.uniform(-1, 1, (s, 3)) for s in t.shape]
        want = dense_mttkrp(t.to_dense(), mats, mode)
        np.testing.assert_allclose(
            coo_mttkrp(t, mats, mode), want, rtol=1e-7, atol=1e-9
        )
        h = HiCOOTensor.from_coo(t, b)
        np.testing.assert_allclose(
            hicoo_mttkrp(h, mats, mode), want, rtol=1e-7, atol=1e-9
        )

    @given(sparse_tensors(max_order=3, max_dim=10), block_sizes, st.data())
    @settings(max_examples=30, deadline=None)
    def test_hicoo_ttv_matches_coo(self, t, b, data):
        if t.nmodes < 2:
            return
        mode = data.draw(st.integers(0, t.nmodes - 1))
        v = np.random.default_rng(7).uniform(-1, 1, t.shape[mode])
        h = HiCOOTensor.from_coo(t, b)
        got = hicoo_ttv(h, v, mode).to_coo()
        want = coo_ttv(t, v, mode)
        # compare as tensors (block order differs from sort order)
        np.testing.assert_allclose(
            got.to_dense(), want.to_dense(), rtol=1e-7, atol=1e-9
        )

    @given(sparse_tensors(max_order=3, max_dim=10), st.data())
    @settings(max_examples=30, deadline=None)
    def test_tew_add_commutes(self, t, data):
        seed = data.draw(st.integers(0, 1000))
        other = COOTensor.random(t.shape, nnz=min(t.nnz + 1, 30), rng=seed).astype(
            np.float64
        )
        a = coo_tew(t, other, "add")
        b = coo_tew(other, t, "add")
        assert a.allclose(b, rtol=1e-10)

    @given(sparse_tensors(), st.floats(0.1, 10.0))
    @settings(max_examples=30, deadline=None)
    def test_ts_mul_div_inverse(self, t, s):
        forward = coo_ts(t, s, "mul")
        back = coo_ts(forward, s, "div")
        np.testing.assert_allclose(back.values, t.values, rtol=1e-9)

#: Every (scatter method, privatization) the Mttkrp kernels accept:
#: "workspace" is the atomic method's per-thread arena pool, "chunk" the
#: seed's per-chunk buffers kept as the ablation baseline.
SCATTER_METHODS = [
    ("atomic", "arena"),
    ("atomic", "chunk"),
    ("sort", "arena"),
    ("owner", "arena"),
]

BACKENDS = ["sequential", "openmp", "racecheck"]


class TestCrossFormatMatrix:
    """COO vs HiCOO vs dense, across scatter methods and backends.

    The executor assumes a case's result is a pure function of its
    fingerprint — true only if every (kernel, format, method, backend)
    combination computes the same mathematical answer.  This matrix pins
    that equivalence; the racecheck column additionally proves each
    combination writes without data races.
    """

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("method,privatize", SCATTER_METHODS)
    @given(t=sparse_tensors(max_order=3, max_dim=10, max_nnz=40), data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_mttkrp(self, t, data, method, privatize, backend):
        mode = data.draw(st.integers(0, t.nmodes - 1))
        b = data.draw(block_sizes)
        rng = np.random.default_rng(data.draw(st.integers(0, 1000)))
        mats = [rng.uniform(-1, 1, (s, 3)) for s in t.shape]
        want = dense_mttkrp(t.to_dense(), mats, mode)
        got_coo = coo_mttkrp(
            t, mats, mode, backend=backend, method=method, privatize=privatize
        )
        np.testing.assert_allclose(got_coo, want, rtol=1e-7, atol=1e-9)
        h = HiCOOTensor.from_coo(t, b)
        got_hicoo = hicoo_mttkrp(
            h, mats, mode, backend=backend, method=method, privatize=privatize
        )
        np.testing.assert_allclose(got_hicoo, want, rtol=1e-7, atol=1e-9)

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(t=sparse_tensors(max_order=3, max_dim=10, max_nnz=40), data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_tew(self, t, data, backend):
        b = data.draw(block_sizes)
        other = COOTensor.random(
            t.shape, nnz=min(t.nnz + 1, 30), rng=data.draw(st.integers(0, 1000))
        ).astype(np.float64)
        want = t.to_dense() + other.to_dense()
        got_coo = coo_tew(t, other, "add", backend=backend).to_dense()
        np.testing.assert_allclose(got_coo, want, rtol=1e-7, atol=1e-9)
        got_hicoo = hicoo_tew(
            HiCOOTensor.from_coo(t, b),
            HiCOOTensor.from_coo(other, b),
            "add",
            backend=backend,
        )
        np.testing.assert_allclose(
            got_hicoo.to_coo().to_dense(), want, rtol=1e-7, atol=1e-9
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(
        t=sparse_tensors(max_order=3, max_dim=10, max_nnz=40),
        s=st.floats(0.1, 10.0),
        data=st.data(),
    )
    @settings(max_examples=10, deadline=None)
    def test_ts(self, t, s, data, backend):
        b = data.draw(block_sizes)
        want = t.to_dense() * s
        got_coo = coo_ts(t, s, "mul", backend=backend).to_dense()
        np.testing.assert_allclose(got_coo, want, rtol=1e-9, atol=0)
        got_hicoo = hicoo_ts(HiCOOTensor.from_coo(t, b), s, "mul", backend=backend)
        np.testing.assert_allclose(
            got_hicoo.to_coo().to_dense(), want, rtol=1e-9, atol=0
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(t=sparse_tensors(max_order=3, max_dim=10, max_nnz=40), data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_ttv(self, t, data, backend):
        mode = data.draw(st.integers(0, t.nmodes - 1))
        b = data.draw(block_sizes)
        v = np.random.default_rng(data.draw(st.integers(0, 1000))).uniform(
            -1, 1, t.shape[mode]
        )
        want = dense_ttv(t.to_dense(), v, mode)
        got_coo = coo_ttv(t, v, mode, backend=backend).to_dense()
        np.testing.assert_allclose(got_coo, want, rtol=1e-7, atol=1e-9)
        got_hicoo = hicoo_ttv(HiCOOTensor.from_coo(t, b), v, mode, backend=backend)
        np.testing.assert_allclose(
            got_hicoo.to_coo().to_dense(), want, rtol=1e-7, atol=1e-9
        )

    @pytest.mark.parametrize("backend", BACKENDS)
    @given(t=sparse_tensors(max_order=3, max_dim=8, max_nnz=30), data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_ttm(self, t, data, backend):
        mode = data.draw(st.integers(0, t.nmodes - 1))
        b = data.draw(block_sizes)
        r = data.draw(st.integers(1, 4))
        u = np.random.default_rng(data.draw(st.integers(0, 1000))).uniform(
            -1, 1, (t.shape[mode], r)
        )
        want = dense_ttm(t.to_dense(), u, mode)
        got_coo = coo_ttm(t, u, mode, backend=backend).to_dense()
        np.testing.assert_allclose(got_coo, want, rtol=1e-7, atol=1e-9)
        got_hicoo = hicoo_ttm(HiCOOTensor.from_coo(t, b), u, mode, backend=backend)
        np.testing.assert_allclose(
            got_hicoo.to_coo().to_dense(), want, rtol=1e-7, atol=1e-9
        )


class TestKernelLinearity:
    @given(sparse_tensors())
    @settings(max_examples=30, deadline=None)
    def test_ttv_linearity(self, t):
        """Ttv(a*v + w) == a*Ttv(v) + Ttv(w) — kernel linearity."""
        if t.nmodes < 2:
            return
        rng = np.random.default_rng(1)
        v = rng.uniform(-1, 1, t.shape[-1])
        w = rng.uniform(-1, 1, t.shape[-1])
        a = 2.5
        left = coo_ttv(t, a * v + w, t.nmodes - 1).to_dense()
        right = a * coo_ttv(t, v, t.nmodes - 1).to_dense() + coo_ttv(
            t, w, t.nmodes - 1
        ).to_dense()
        np.testing.assert_allclose(left, right, rtol=1e-7, atol=1e-9)


class TestStealSchedulerEquivalence:
    """Scheduling is invisible in the results: any worker count and any
    steal order produce the same completed fingerprints and the same
    store contents as the single-worker run (case seeds derive from
    fingerprints, never from execution order)."""

    #: Fixed case pool the strategy draws subsets from (built lazily —
    #: enumerate once, reuse across examples).
    _pool = None

    @classmethod
    def case_pool(cls):
        if cls._pool is None:
            from repro.bench import RunnerConfig, enumerate_cases
            from repro.types import Format, Kernel

            cfg = RunnerConfig(
                measure_host=False,
                kernels=(Kernel.TS, Kernel.TEW, Kernel.TTV),
                formats=(Format.COO, Format.HICOO),
            )
            specs = {
                name: {
                    "kind": "random", "shape": [20, 15, 6], "nnz": 100,
                    "seed": 3 + i,
                }
                for i, name in enumerate(("a", "b"))
            }
            cls._pool = enumerate_cases(specs, cfg)
        return cls._pool

    @given(st.data())
    @settings(max_examples=12, deadline=None)
    def test_any_schedule_matches_single_worker_run(self, data):
        import tempfile

        from repro.bench import ExecutorConfig, RunStore, SuiteExecutor
        from repro.bench.runner import derive_case_seed

        pool = self.case_pool()
        picks = data.draw(
            st.lists(
                st.integers(0, len(pool) - 1),
                min_size=1, max_size=len(pool), unique=True,
            )
        )
        cases = [pool[i] for i in picks]
        workers = data.draw(st.integers(2, 4))
        steal_seed = derive_case_seed(
            data.draw(st.integers(0, 1000)), "property", workers
        )

        with tempfile.TemporaryDirectory(prefix="steal-prop-") as tmp:
            serial = RunStore(f"{tmp}/serial.jsonl")
            SuiteExecutor(
                cases, serial, ExecutorConfig(isolation="inline"),
                sleep=lambda s: None,
            ).run()
            pooled = RunStore(f"{tmp}/pooled.jsonl")
            report = SuiteExecutor(
                cases, pooled,
                ExecutorConfig(
                    isolation="inline", workers=workers, steal_seed=steal_seed,
                ),
                sleep=lambda s: None,
            ).run()
            serial_state, pooled_state = serial.load(), pooled.load()

        assert sorted(report.completed) == sorted(c.fingerprint for c in cases)
        assert set(pooled_state.records) == set(serial_state.records)
        for fp, line in serial_state.records.items():
            assert pooled_state.records[fp]["record"] == line["record"], fp
            assert pooled_state.records[fp]["seed"] == line["seed"], fp
