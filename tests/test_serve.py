"""Concurrency harness for the benchmark-serving layer.

The serving contract under fire:

* **single-flight** — N async clients submitting overlapping duplicate
  sweeps execute each fingerprint exactly once; duplicates coalesce
  onto the in-flight execution or hit the cache, never re-run;
* **cache-hit bit-identity** — a sweep answered from the cache returns
  records bit-identical to a cold ``SuiteExecutor`` run of the same
  cases (case seeds derive from fingerprints, never from scheduling);
* **work stealing** — an injected straggler's queued work migrates to
  the idle workers instead of idling behind it;
* **crash resume** — a daemon SIGKILLed mid-sweep restarts on the same
  journal and completes the sweep, the final store identical to an
  uninterrupted run's.
"""

import asyncio
import dataclasses
import json
import os
import signal
import subprocess
import sys
import threading
import time

import pytest

from repro.bench import (
    ExecutorConfig,
    RunnerConfig,
    RunStore,
    SuiteExecutor,
    build_sweep_cases,
)
from repro.serve import (
    BenchService,
    ResultCache,
    SchedulerError,
    ServeConfig,
    ServeError,
    StealScheduler,
    async_request,
    wait_for_socket,
)
from repro.serve.client import ServeClient

#: One tiny tensor x 5 kernels x 2 formats = 10 fast modeled cases.
SWEEP_PARAMS = {
    "dataset": "synthetic",
    "tensors": ["s1"],
    "scale": 8000.0,
    "seed": 0,
    "rank": 4,
}


def sweep_cases():
    """The exact case list the daemon enumerates for SWEEP_PARAMS."""
    config = RunnerConfig(
        rank=SWEEP_PARAMS["rank"],
        measure_host=False,
        cache_scale=SWEEP_PARAMS["scale"],
        seed=SWEEP_PARAMS["seed"],
    )
    return build_sweep_cases(
        dataset=SWEEP_PARAMS["dataset"],
        scale=SWEEP_PARAMS["scale"],
        seed=SWEEP_PARAMS["seed"],
        keys=SWEEP_PARAMS["tensors"],
        platforms=("Bluesky",),
        config=config,
    )


def reference_store(tmp_path, name="reference.jsonl"):
    """An uninterrupted serial run of the sweep — the bit-identity oracle."""
    store = RunStore(tmp_path / name)
    SuiteExecutor(
        sweep_cases(), store, ExecutorConfig(isolation="inline"),
        sleep=lambda s: None,
    ).run()
    return store.load()


def assert_stores_identical(state, reference):
    """Record payloads (and seeds) equal fingerprint-for-fingerprint."""
    assert set(state.records) == set(reference.records)
    for fp, line in reference.records.items():
        assert state.records[fp]["record"] == line["record"], fp
        assert state.records[fp]["seed"] == line["seed"], fp


class service_thread:
    """An in-process daemon on a background thread (context manager)."""

    def __init__(self, tmp_path, **overrides):
        overrides.setdefault("workers", 3)
        overrides.setdefault("progress_interval_s", 0.05)
        self.config = ServeConfig(
            socket_path=str(tmp_path / "serve.sock"),
            store_path=str(tmp_path / "serve.jsonl"),
            **overrides,
        )

    def __enter__(self) -> BenchService:
        from repro.obs import get_metrics

        get_metrics().clear()  # serve.* counters are process-global
        self.service = BenchService(self.config)
        self.thread = threading.Thread(
            target=self.service.serve_forever, daemon=True
        )
        self.thread.start()
        wait_for_socket(self.config.socket_path)
        return self.service

    def __exit__(self, *exc) -> bool:
        self.service.stop()
        self.thread.join(timeout=30)
        assert not self.thread.is_alive(), "daemon thread failed to stop"
        return False


# ---------------------------------------------------------------------- #
# single-flight under concurrent duplicate requests
# ---------------------------------------------------------------------- #


class TestSingleFlight:
    def test_duplicate_concurrent_sweeps_execute_each_case_once(self, tmp_path):
        # A "*" delay keeps every case in flight long enough that all
        # clients genuinely overlap, exercising coalescing (not just the
        # completed-case cache path).
        with service_thread(
            tmp_path, faults={"*": {"delay_s": 0.05}}
        ) as service:
            sock = service.config.socket_path

            async def hammer(n):
                return await asyncio.gather(
                    *[async_request(sock, "sweep", SWEEP_PARAMS) for _ in range(n)]
                )

            results = asyncio.run(hammer(6))
            total = results[0]["total"]
            assert total == 10
            for r in results:
                assert r["total"] == total
                assert not r["quarantined"]
                assert r["hits"] + r["coalesced"] + r["executed"] == total
            # the whole burst executed each fingerprint exactly once
            assert sum(r["executed"] for r in results) == total
            assert sum(r["coalesced"] for r in results) == 5 * total
            assert service.scheduler.executed == total

    def test_second_request_is_all_cache_hits(self, tmp_path):
        with service_thread(tmp_path) as service:
            with ServeClient(service.config.socket_path) as client:
                cold = client.request("sweep", SWEEP_PARAMS)
                warm = client.request("sweep", SWEEP_PARAMS)
            assert cold["executed"] == cold["total"]
            assert warm["hits"] == warm["total"]
            assert warm["executed"] == 0 and warm["coalesced"] == 0
            assert warm["records"] == cold["records"]
            assert service.scheduler.executed == cold["total"]

    def test_status_counters_reflect_the_traffic(self, tmp_path):
        with service_thread(tmp_path) as service:
            with ServeClient(service.config.socket_path) as client:
                client.request("sweep", SWEEP_PARAMS)
                client.request("sweep", SWEEP_PARAMS)
                status = client.request("status")
            counters = status["counters"]
            assert counters["serve.executed"] == 10.0
            assert counters["serve.cache_hits"] == 10.0
            assert status["records"] == 10
            assert status["inflight"] == 0
            assert status["workers"] == service.config.workers

    def test_error_response_for_bad_request(self, tmp_path):
        from repro.serve import ProtocolError

        with service_thread(tmp_path) as service:
            with ServeClient(service.config.socket_path) as client:
                # invalid at the client: never reaches the wire
                with pytest.raises(ProtocolError, match="baseline"):
                    client.request("regress", {})
                # valid on the wire, fails in the handler: error response
                with pytest.raises(ServeError, match="missing.jsonl"):
                    client.request(
                        "regress", {"baseline": str(tmp_path / "missing.jsonl")}
                    )
                # the connection survives the error for the next request
                assert client.request("status")["records"] == 0


# ---------------------------------------------------------------------- #
# cache-hit bit-identity against a cold executor run
# ---------------------------------------------------------------------- #


class TestCacheBitIdentity:
    def test_served_sweep_equals_cold_executor_run(self, tmp_path):
        reference = reference_store(tmp_path)
        with service_thread(tmp_path) as service:
            with ServeClient(service.config.socket_path) as client:
                served = client.request("sweep", SWEEP_PARAMS)
            store_state = RunStore(service.config.store_path).load()
        assert_stores_identical(store_state, reference)
        # the wire payload carries the same records, in case order
        order = [c.fingerprint for c in sweep_cases()]
        assert served["fingerprints"] == order
        assert served["records"] == [
            reference.records[fp]["record"] for fp in order
        ]

    def test_cache_hits_replay_journaled_records_verbatim(self, tmp_path):
        reference = reference_store(tmp_path)
        with service_thread(tmp_path) as service:
            sock = service.config.socket_path
            with ServeClient(sock) as client:
                client.request("sweep", SWEEP_PARAMS)
            with ServeClient(sock) as client:  # fresh connection, warm cache
                warm = client.request("sweep", SWEEP_PARAMS)
        order = [c.fingerprint for c in sweep_cases()]
        assert warm["hits"] == len(order)
        assert warm["records"] == [
            reference.records[fp]["record"] for fp in order
        ]

    def test_record_supersedes_quarantine_on_reserve(self, tmp_path):
        # A quarantined case is a cache MISS: a later request retries it,
        # and the eventual success supersedes the quarantine — the
        # record-supersedes-quarantine rule, preserved through serving.
        cases = sweep_cases()[:1]
        store = RunStore(tmp_path / "serve.jsonl")
        SuiteExecutor(
            cases, store,
            ExecutorConfig(
                isolation="inline", retries=0,
                faults={"*": {"fail_attempts": 99}},
            ),
            sleep=lambda s: None,
        ).run()
        assert store.load().quarantined
        with service_thread(tmp_path) as service:
            with ServeClient(service.config.socket_path) as client:
                result = client.request("sweep", SWEEP_PARAMS)
            assert not result["quarantined"]
            state = RunStore(service.config.store_path).load()
        assert not state.quarantined
        assert cases[0].fingerprint in state.records


# ---------------------------------------------------------------------- #
# work stealing under an injected straggler
# ---------------------------------------------------------------------- #


@dataclasses.dataclass(frozen=True)
class FakeCase:
    fingerprint: str
    delay_s: float = 0.0


class TestWorkStealing:
    def test_straggler_work_migrates_to_idle_workers(self):
        # Round-robin homing puts the straggler plus 3 fast cases on
        # worker 0; worker 1 drains its own 4 fast cases while worker 0
        # sleeps, then steals worker 0's queued tail.
        cases = [FakeCase("straggler", delay_s=1.5)] + [
            FakeCase(f"fast{i}", delay_s=0.01) for i in range(7)
        ]
        executed = []
        lock = threading.Lock()

        def run_case(case):
            time.sleep(case.delay_s)
            with lock:
                executed.append(case.fingerprint)
            return True

        scheduler = StealScheduler(run_case, workers=2, steal_seed=0).start()
        try:
            ticket = scheduler.submit(cases)
            assert ticket.wait(timeout=30)
        finally:
            scheduler.shutdown()
        assert sorted(executed) == sorted(c.fingerprint for c in cases)
        assert ticket.completed() == {c.fingerprint for c in cases}
        # worker 0 spent the run inside the straggler; its queued cases
        # were stolen and completed by worker 1
        assert scheduler.steals >= 3
        assert scheduler.completions[1] >= 6
        assert scheduler.completions[0] <= 2

    def test_steal_takes_victim_tail_not_head(self):
        # One worker hogs a long case; the other steals. With FIFO-own /
        # steal-from-tail, the victim's LAST queued case is taken first.
        order = []
        lock = threading.Lock()
        release = threading.Event()

        def run_case(case):
            if case.fingerprint == "hog":
                release.wait(10)
            with lock:
                order.append(case.fingerprint)
            return True

        # workers=2: hog->w0, a->w1, b->w0, c->w1, d->w0, e->w1
        cases = [FakeCase("hog")] + [FakeCase(x) for x in "abcde"]
        scheduler = StealScheduler(run_case, workers=2, steal_seed=0).start()
        try:
            ticket = scheduler.submit(cases)
            # let w1 drain its own (a, c, e) and steal w0's tail (d, then b)
            deadline = time.monotonic() + 10
            while len(order) < 5 and time.monotonic() < deadline:
                time.sleep(0.01)
            release.set()
            assert ticket.wait(timeout=10)
        finally:
            scheduler.shutdown()
        stolen = [fp for fp in order if fp in ("b", "d")]
        assert stolen == ["d", "b"], f"tail-first steal order violated: {order}"

    def test_single_flight_coalesces_duplicate_submissions(self):
        started = threading.Event()
        release = threading.Event()
        runs = []

        def run_case(case):
            started.set()
            release.wait(10)
            runs.append(case.fingerprint)
            return True

        scheduler = StealScheduler(run_case, workers=2).start()
        try:
            first = scheduler.submit([FakeCase("dup")])
            assert started.wait(10)
            second = scheduler.submit([FakeCase("dup")])
            assert second.coalesced == ["dup"] and not second.queued
            release.set()
            assert first.wait(10) and second.wait(10)
        finally:
            scheduler.shutdown()
        assert runs == ["dup"]
        assert scheduler.executed == 1 and scheduler.coalesced == 1

    def test_completed_probe_presatisfies_hits(self):
        done = {"cached"}
        scheduler = StealScheduler(lambda c: True, workers=1).start()
        try:
            ticket = scheduler.submit(
                [FakeCase("cached"), FakeCase("new")],
                completed=lambda fp: fp in done,
            )
            assert ticket.hits == ["cached"] and ticket.queued == ["new"]
            assert ticket.wait(10)
        finally:
            scheduler.shutdown()
        assert ticket.completed() == {"cached", "new"}

    def test_shutdown_abandons_queued_work_and_wakes_waiters(self):
        release = threading.Event()

        def run_case(case):
            release.wait(10)
            return True

        scheduler = StealScheduler(run_case, workers=1).start()
        ticket = scheduler.submit([FakeCase(f"c{i}") for i in range(5)])
        release.set()
        scheduler.shutdown()
        assert ticket.wait(1)  # nobody left hanging
        assert ticket.abandoned()  # some cases never ran
        with pytest.raises(SchedulerError):
            scheduler.submit([FakeCase("late")])

    def test_worker_count_validation(self):
        with pytest.raises(SchedulerError):
            StealScheduler(lambda c: True, workers=0)


# ---------------------------------------------------------------------- #
# kill -9 mid-sweep, restart, resume
# ---------------------------------------------------------------------- #


def spawn_daemon(sock, store, tmp_path, faults=None):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    argv = [
        sys.executable, "-m", "repro", "serve",
        "--socket", str(sock), "--store", str(store), "--workers", "2",
    ]
    if faults:
        argv += ["--faults", json.dumps(faults)]
    return subprocess.Popen(
        argv, stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env,
        text=True, cwd=str(tmp_path),
    )


@pytest.mark.slow
class TestCrashResume:
    def test_sigkilled_daemon_resumes_to_identical_store(self, tmp_path):
        reference = reference_store(tmp_path)
        sock = tmp_path / "serve.sock"
        store = tmp_path / "serve.jsonl"

        # Phase 1: slow daemon (per-case straggler delay), killed once
        # the journal holds some — but not all — records.
        daemon = spawn_daemon(
            sock, store, tmp_path, faults={"*": {"delay_s": 0.4}}
        )
        try:
            wait_for_socket(str(sock), timeout_s=60)
            client_rc = {}

            def fire_sweep():
                try:
                    with ServeClient(str(sock)) as client:
                        client_rc["result"] = client.request("sweep", SWEEP_PARAMS)
                except Exception as exc:  # noqa: BLE001 - daemon dies mid-request
                    client_rc["error"] = exc

            t = threading.Thread(target=fire_sweep, daemon=True)
            t.start()
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if store.exists() and sum(
                    1 for line in open(store)
                    if '"kind":"record"' in line
                ) >= 2:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("daemon journaled no records before the kill")
            os.kill(daemon.pid, signal.SIGKILL)
            daemon.wait(timeout=30)
            t.join(timeout=30)
            assert "error" in client_rc, "client should see the connection die"
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait(timeout=30)

        partial = RunStore(store).load()
        assert 0 < len(partial.records) < len(reference.records)

        # Phase 2: restart on the same journal (no delay faults now) and
        # re-request — journaled cases are hits, the rest execute.
        daemon = spawn_daemon(sock, store, tmp_path)
        try:
            wait_for_socket(str(sock), timeout_s=60)
            with ServeClient(str(sock)) as client:
                resumed = client.request("sweep", SWEEP_PARAMS)
                status = client.request("status")
        finally:
            daemon.terminate()
            try:
                daemon.wait(timeout=30)
            except subprocess.TimeoutExpired:
                daemon.kill()
                daemon.wait(timeout=30)

        assert resumed["hits"] == len(partial.records)
        assert resumed["executed"] == len(reference.records) - len(partial.records)
        assert not resumed["quarantined"]
        assert status["counters"]["serve.executed"] == resumed["executed"]
        assert_stores_identical(RunStore(store).load(), reference)

    def test_torn_journal_tail_is_absorbed_on_restart(self, tmp_path):
        # A SIGKILL can tear the line being written; the cache load
        # tolerates the torn tail and the case simply re-executes.
        cases = sweep_cases()
        store = RunStore(tmp_path / "serve.jsonl")
        SuiteExecutor(
            cases[:3], store, ExecutorConfig(isolation="inline"),
            sleep=lambda s: None,
        ).run()
        with open(store.path, "a") as f:
            f.write('{"v": 1, "kind": "record", "fingerp')  # torn write
        cache = ResultCache(store)
        assert len(cache.completed()) == 3
        with service_thread(tmp_path) as service:
            with ServeClient(service.config.socket_path) as client:
                result = client.request("sweep", SWEEP_PARAMS)
        assert result["hits"] == 3
        assert result["executed"] == len(cases) - 3
        assert_stores_identical(
            RunStore(str(tmp_path / "serve.jsonl")).load(),
            reference_store(tmp_path),
        )


# ---------------------------------------------------------------------- #
# report / regress over the wire
# ---------------------------------------------------------------------- #


class TestReportAndRegress:
    def test_report_over_the_wire(self, tmp_path):
        with service_thread(tmp_path) as service:
            with ServeClient(service.config.socket_path) as client:
                client.request("sweep", SWEEP_PARAMS)
                text = client.request("report", {"format": "text"})
                as_json = client.request("report", {"format": "json"})
            assert text["nrecords"] == 10
            assert "Observation" in text["report"]
            assert as_json["report"]["nrecords"] == 10

    def test_regress_against_own_baseline_passes(self, tmp_path):
        reference = reference_store(tmp_path)
        baseline = tmp_path / "reference.jsonl"
        assert len(reference.records) == 10 and baseline.exists()
        with service_thread(tmp_path) as service:
            with ServeClient(service.config.socket_path) as client:
                client.request("sweep", SWEEP_PARAMS)
                verdict = client.request("regress", {"baseline": str(baseline)})
        assert verdict["exit_code"] == 0
        assert verdict["candidate"] == service.config.store_path


# ---------------------------------------------------------------------- #
# live health telemetry and end-to-end request tracing
# ---------------------------------------------------------------------- #


class TestHealth:
    def test_health_reports_live_telemetry(self, tmp_path):
        from repro.serve import protocol

        with service_thread(tmp_path) as service:
            with ServeClient(service.config.socket_path) as client:
                client.request("sweep", SWEEP_PARAMS)  # cold: all misses
                client.request("sweep", SWEEP_PARAMS)  # warm: all hits
                health = client.request("health")
        assert set(health) == set(protocol.HEALTH_RESULT_KEYS)
        assert set(health["request_seconds"]) == set(
            protocol.HEALTH_LATENCY_KEYS
        )
        assert health["protocol"] == protocol.PROTOCOL_VERSION
        assert health["uptime_s"] > 0.0
        assert health["store"] == service.config.store_path
        assert health["records"] == 10
        assert health["workers"] == service.config.workers
        assert health["inflight"] == 0 and health["queued"] == 0
        assert health["cache_hits"] == 10 and health["cache_misses"] == 10
        assert health["cache_hit_rate"] == pytest.approx(0.5)
        # The in-flight health request is not yet observed: both sweeps are.
        lat = health["request_seconds"]
        assert lat["count"] == 2
        assert lat["p50"] is not None and lat["p99"] >= lat["p50"] > 0.0

    def test_fresh_daemon_health_has_null_rates(self, tmp_path):
        with service_thread(tmp_path) as service:
            with ServeClient(service.config.socket_path) as client:
                health = client.request("health")
        assert health["cache_hit_rate"] is None
        assert health["request_seconds"]["count"] == 0
        assert health["request_seconds"]["p50"] is None


class TestRequestTracing:
    def wait_for_traces(self, trace_dir, n, timeout_s=30.0):
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            files = sorted(trace_dir.glob("req-*.json"))
            if len(files) >= n:
                return files
            time.sleep(0.05)
        raise AssertionError(f"{n} merged trace(s) never appeared in {trace_dir}")

    def test_client_trace_id_round_trips_to_worker_spans(self, tmp_path):
        trace_dir = tmp_path / "traces"
        with service_thread(
            tmp_path, isolation="process", trace_dir=str(trace_dir)
        ) as service:
            with ServeClient(service.config.socket_path) as client:
                result = client.request(
                    "sweep",
                    SWEEP_PARAMS,
                    trace={
                        "trace_id": "cafe0123feedbeef",
                        "parent_span": "",
                        "baggage": {},
                    },
                )
            assert result["executed"] == result["total"] == 10
            (path,) = self.wait_for_traces(trace_dir, 1)
            doc = json.loads(path.read_text())
        assert "cafe0123feedbeef" in path.name
        assert doc["otherData"]["trace_id"] == "cafe0123feedbeef"
        events = doc["traceEvents"]
        request_spans = [
            e for e in events if e["ph"] == "X" and e["name"] == "serve.sweep"
        ]
        assert len(request_spans) == 1 and request_spans[0]["pid"] == 0
        sched_spans = [e for e in events if e["name"] == "sched.execute"]
        assert len(sched_spans) == 10
        assert all(e["pid"] == 0 for e in sched_spans)
        # The tentpole regression: worker-subprocess kernel spans appear
        # in the daemon's merged trace, in their own Chrome processes,
        # linked back by flow events.
        worker_kernel = [
            e for e in events
            if e["ph"] == "X" and e.get("cat") == "kernel" and e["pid"] != 0
        ]
        assert worker_kernel, "no worker kernel spans in merged trace"
        assert doc["otherData"]["processes"] == 11  # daemon + 10 workers
        flows = [e for e in events if e.get("cat") == "flow"]
        assert sum(1 for e in flows if e["ph"] == "s") == 10
        assert sum(1 for e in flows if e["ph"] == "f") == 10

    def test_untraced_client_still_gets_a_minted_trace(self, tmp_path):
        trace_dir = tmp_path / "traces"
        with service_thread(
            tmp_path, trace_dir=str(trace_dir)
        ) as service:
            with ServeClient(service.config.socket_path) as client:
                client.request("status")
            (path,) = self.wait_for_traces(trace_dir, 1)
            doc = json.loads(path.read_text())
        assert doc["otherData"]["trace_id"]
        assert any(
            e["ph"] == "X" and e["name"] == "serve.status"
            for e in doc["traceEvents"]
        )

    def test_no_trace_dir_means_no_tracing(self, tmp_path):
        with service_thread(tmp_path) as service:
            with ServeClient(service.config.socket_path) as client:
                client.request(
                    "sweep",
                    SWEEP_PARAMS,
                    trace={
                        "trace_id": "cafe",
                        "parent_span": "",
                        "baggage": {},
                    },
                )
        assert not list(tmp_path.glob("**/req-*.json"))
