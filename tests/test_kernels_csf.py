"""Tests for the CSF kernels (Ttv and SPLATT-style Mttkrp)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.kernels import csf_mttkrp, csf_ttv, dense_mttkrp, dense_ttv
from repro.kernels import coo_mttkrp, coo_ttv
from repro.sptensor import COOTensor, CSFTensor
from tests.conftest import random_mats


@pytest.fixture(scope="module")
def x():
    return COOTensor.random((18, 15, 12), nnz=350, rng=11).astype(np.float64)


@pytest.fixture(scope="module")
def c(x):
    return CSFTensor.from_coo(x)


class TestCsfTtv:
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_matches_dense_all_modes(self, x, c, mode):
        v = np.random.default_rng(mode).random(x.shape[mode])
        out = csf_ttv(c, v, mode)
        np.testing.assert_allclose(
            out.to_coo().to_dense(), dense_ttv(x.to_dense(), v, mode), rtol=1e-9
        )

    def test_leaf_mode_no_rebuild(self, x):
        """With the product mode already at the leaves the upper levels
        carry over unchanged."""
        c = CSFTensor.from_coo(x, (0, 1, 2))
        v = np.ones(x.shape[2])
        out = csf_ttv(c, v, 2)
        np.testing.assert_array_equal(out.fids[0], c.fids[0])
        np.testing.assert_array_equal(out.fptr[0], c.fptr[0])

    def test_output_order(self, x, c):
        v = np.ones(x.shape[1])
        out = csf_ttv(c, v, 1)
        assert out.nmodes == 2
        assert out.shape == (x.shape[0], x.shape[2])

    def test_4th_order(self, coo4):
        x4 = coo4.astype(np.float64)
        c4 = CSFTensor.from_coo(x4, (2, 0, 3, 1))
        v = np.random.default_rng(5).random(x4.shape[3])
        out = csf_ttv(c4, v, 3)
        np.testing.assert_allclose(
            out.to_coo().to_dense(), dense_ttv(x4.to_dense(), v, 3), rtol=1e-9
        )

    def test_order2_reduces_to_matvec(self):
        x = COOTensor.random((20, 15), nnz=100, rng=3).astype(np.float64)
        c = CSFTensor.from_coo(x)
        v = np.random.default_rng(1).random(15)
        out = csf_ttv(c, v, 1)
        np.testing.assert_allclose(
            out.to_coo().to_dense(), x.to_dense() @ v, rtol=1e-9
        )

    def test_empty(self):
        c = CSFTensor.from_coo(COOTensor.empty((5, 5, 5)))
        out = csf_ttv(c, np.ones(5), 0)
        assert out.nnz == 0

    def test_bad_vector(self, c):
        with pytest.raises(ShapeError):
            csf_ttv(c, np.ones(99), 0)

    def test_matches_coo_ttv(self, x, c):
        v = np.random.default_rng(8).random(x.shape[0])
        np.testing.assert_allclose(
            csf_ttv(c, v, 0).to_coo().to_dense(),
            coo_ttv(x, v, 0).to_dense(),
            rtol=1e-9,
        )


class TestCsfMttkrp:
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_matches_dense_all_modes(self, x, c, mode):
        mats = random_mats(x.shape, 4, seed=mode)
        np.testing.assert_allclose(
            csf_mttkrp(c, mats, mode),
            dense_mttkrp(x.to_dense(), mats, mode),
            rtol=1e-9,
        )

    def test_root_mode_no_rebuild(self, x):
        c = CSFTensor.from_coo(x, (1, 0, 2))
        mats = random_mats(x.shape, 3, seed=9)
        np.testing.assert_allclose(
            csf_mttkrp(c, mats, 1), coo_mttkrp(x, mats, 1), rtol=1e-9
        )

    def test_4th_order(self, coo4):
        x4 = coo4.astype(np.float64)
        c4 = CSFTensor.from_coo(x4)
        mats = random_mats(x4.shape, 3, seed=2)
        np.testing.assert_allclose(
            csf_mttkrp(c4, mats, 2),
            dense_mttkrp(x4.to_dense(), mats, 2),
            rtol=1e-9,
        )

    def test_empty(self):
        c = CSFTensor.from_coo(COOTensor.empty((4, 4, 4)))
        out = csf_mttkrp(c, random_mats((4, 4, 4), 2), 0)
        assert out.shape == (4, 2)
        assert out.sum() == 0

    def test_validation(self, c, x):
        with pytest.raises(ShapeError):
            csf_mttkrp(c, [np.ones((5, 2))], 0)
        bad = random_mats(x.shape, 3)
        bad[1] = np.ones((x.shape[1], 5))
        with pytest.raises(ShapeError):
            csf_mttkrp(c, bad, 0)
