"""Tests for the CPU parallel substrate."""

import threading
import time

import numpy as np
import pytest

from repro.parallel import (
    OpenMPBackend,
    SequentialBackend,
    SlotPool,
    WorkspacePool,
    atomic_add_rows,
    balanced_partition,
    bound_slot,
    chunk_ranges,
    contention_stats,
    current_slot,
    fixed_chunks,
    get_backend,
    guided_chunks,
    load_imbalance,
    makespan,
    register_backend,
    sorted_reduce_rows,
)
from repro.types import Schedule


def collect_ranges(backend, total, **kw):
    ranges = []
    backend.parallel_for(total, lambda lo, hi: ranges.append((lo, hi)), **kw)
    return sorted(ranges)


def assert_covers(ranges, total):
    pos = 0
    for lo, hi in ranges:
        assert lo == pos, f"gap/overlap at {lo}, expected {pos}"
        assert hi > lo
        pos = hi
    assert pos == total


class TestPartitioners:
    def test_chunk_ranges_cover(self):
        assert_covers(chunk_ranges(100, 7), 100)

    def test_chunk_ranges_degenerate(self):
        assert chunk_ranges(0, 4) == []
        assert chunk_ranges(3, 10) == [(0, 1), (1, 2), (2, 3)]

    def test_fixed_chunks_cover(self):
        assert_covers(fixed_chunks(103, 10), 103)
        assert fixed_chunks(103, 10)[-1] == (100, 103)

    def test_guided_chunks_decrease(self):
        ranges = guided_chunks(1000, 4)
        assert_covers(ranges, 1000)
        sizes = [hi - lo for lo, hi in ranges]
        assert sizes[0] >= sizes[-1]

    def test_balanced_partition_equalizes_weight(self):
        # one huge item among many small: the huge one should sit alone-ish
        w = np.ones(100)
        w[50] = 100.0
        parts = balanced_partition(w, 4)
        assert_covers(parts, 100)
        sums = [w[lo:hi].sum() for lo, hi in parts]
        assert max(sums) < w.sum()  # did split at all
        # the heavy chunk cannot be subdivided below the single max item
        assert max(sums) <= 100 + 50

    def test_balanced_partition_zero_weights(self):
        parts = balanced_partition(np.zeros(10), 3)
        assert_covers(parts, 10)


class TestLoadMetrics:
    def test_imbalance_balanced(self):
        assert load_imbalance(np.full(8, 5.0)) == pytest.approx(1.0)

    def test_imbalance_skewed(self):
        assert load_imbalance(np.array([1.0, 1.0, 6.0])) == pytest.approx(6.0 / (8 / 3))

    def test_imbalance_empty(self):
        assert load_imbalance(np.array([])) == 1.0

    def test_makespan_single_worker(self):
        assert makespan(np.array([1.0, 2.0, 3.0]), 1) == pytest.approx(6.0)

    def test_makespan_lower_bounds(self):
        costs = np.array([5.0, 1.0, 1.0, 1.0])
        ms = makespan(costs, 2)
        assert ms >= max(5.0, costs.sum() / 2)
        assert ms <= costs.sum()

    def test_makespan_large_uses_bound(self):
        costs = np.ones(100000)
        assert makespan(costs, 10) == pytest.approx(10000.0)

    def test_makespan_empty(self):
        assert makespan(np.array([]), 4) == 0.0


class TestSequentialBackend:
    def test_covers_iteration_space(self):
        be = SequentialBackend(chunks_hint=5)
        assert_covers(collect_ranges(be, 100), 100)

    def test_schedules_all_cover(self):
        be = SequentialBackend(chunks_hint=3)
        for sched in Schedule:
            assert_covers(collect_ranges(be, 57, schedule=sched), 57)

    def test_explicit_chunk(self):
        be = SequentialBackend()
        ranges = collect_ranges(be, 10, chunk=3)
        assert ranges == [(0, 3), (3, 6), (6, 9), (9, 10)]


class TestOpenMPBackend:
    @pytest.fixture
    def be(self):
        backend = OpenMPBackend(nthreads=4)
        yield backend
        backend.shutdown()

    def test_static_covers(self, be):
        assert_covers(collect_ranges(be, 1000), 1000)

    def test_dynamic_covers(self, be):
        assert_covers(
            collect_ranges(be, 1000, schedule="dynamic", chunk=64), 1000
        )

    def test_guided_covers(self, be):
        assert_covers(collect_ranges(be, 1000, schedule="guided"), 1000)

    def test_zero_total_noop(self, be):
        assert collect_ranges(be, 0) == []

    def test_parallel_sum_matches_serial(self, be):
        data = np.random.default_rng(0).random(10000)
        out = np.zeros(len(data))

        def body(lo, hi):
            out[lo:hi] = data[lo:hi] * 2

        be.parallel_for(len(data), body, schedule="dynamic", chunk=512)
        np.testing.assert_allclose(out, data * 2)

    def test_exception_propagates(self, be):
        def body(lo, hi):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            be.parallel_for(100, body)

    def test_map_ranges(self, be):
        seen = []
        be.map_ranges([(0, 5), (5, 9)], lambda lo, hi: seen.append((lo, hi)))
        assert sorted(seen) == [(0, 5), (5, 9)]

    def test_env_thread_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "3")
        assert OpenMPBackend().nthreads == 3


class TestChunkValidation:
    """chunk=0 must be rejected loudly, not silently swapped for a default
    (the old ``chunk or default`` discarded falsy chunks)."""

    @pytest.mark.parametrize("bad", [0, -1, -64])
    def test_openmp_rejects_nonpositive_chunk(self, bad):
        be = OpenMPBackend(nthreads=2)
        try:
            with pytest.raises(ValueError, match="chunk must be >= 1"):
                be.parallel_for(100, lambda lo, hi: None, chunk=bad)
        finally:
            be.shutdown()

    @pytest.mark.parametrize("bad", [0, -5])
    def test_sequential_rejects_nonpositive_chunk(self, bad):
        with pytest.raises(ValueError, match="chunk must be >= 1"):
            SequentialBackend().parallel_for(100, lambda lo, hi: None, chunk=bad)

    @pytest.mark.parametrize("schedule", ["static", "dynamic", "guided"])
    def test_rejected_on_every_schedule(self, schedule):
        be = OpenMPBackend(nthreads=2)
        try:
            with pytest.raises(ValueError, match="chunk must be >= 1"):
                be.parallel_for(
                    100, lambda lo, hi: None, schedule=schedule, chunk=0
                )
        finally:
            be.shutdown()

    def test_chunk_none_still_uses_default(self):
        be = OpenMPBackend(nthreads=2, default_chunk=32)
        try:
            ranges = []
            be.parallel_for(
                100, lambda lo, hi: ranges.append((lo, hi)),
                schedule="dynamic", chunk=None,
            )
            assert max(hi - lo for lo, hi in ranges) == 32
        finally:
            be.shutdown()


class TestExceptionPropagation:
    def test_earliest_chunk_failure_raised(self):
        # Every chunk fails with a distinct message; the error raised must
        # be chunk 0's (chunk order), not an arbitrary member of the
        # unordered wait() done-set.
        be = OpenMPBackend(nthreads=4)
        try:
            def body(lo, hi):
                raise ValueError(f"chunk@{lo}")

            with pytest.raises(ValueError, match=r"^chunk@0$"):
                be.parallel_for(640, body, schedule="dynamic", chunk=10)
        finally:
            be.shutdown()

    def test_failure_cancels_pending_chunks(self):
        be = OpenMPBackend(nthreads=2)
        started = []
        lock = threading.Lock()

        def body(lo, hi):
            with lock:
                started.append(lo)
            if lo == 0:
                raise RuntimeError("early failure")
            time.sleep(0.02)

        try:
            with pytest.raises(RuntimeError, match="early failure"):
                be.parallel_for(640, body, schedule="dynamic", chunk=10)
            # 64 chunks planned; the failure in chunk 0 cancels the queue
            # while workers sleep, so most chunks never start.
            assert len(started) < 32
        finally:
            be.shutdown()

    def test_exception_type_preserved(self):
        be = OpenMPBackend(nthreads=2)

        class KernelBug(Exception):
            pass

        def body(lo, hi):
            if lo >= 50:
                raise KernelBug("exact type please")

        try:
            with pytest.raises(KernelBug, match="exact type"):
                be.parallel_for(100, body, schedule="dynamic", chunk=10)
        finally:
            be.shutdown()

    def test_backend_usable_after_failure(self):
        be = OpenMPBackend(nthreads=2)
        try:
            with pytest.raises(RuntimeError):
                be.parallel_for(
                    100, lambda lo, hi: (_ for _ in ()).throw(RuntimeError("x")),
                    schedule="dynamic", chunk=10,
                )
            out = np.zeros(100)
            be.parallel_for(
                100, lambda lo, hi: out.__setitem__(slice(lo, hi), 1.0),
                schedule="dynamic", chunk=10,
            )
            assert out.sum() == 100
        finally:
            be.shutdown()


class TestBackendLifecycle:
    def test_shutdown_then_reuse_recreates_executor(self):
        be = OpenMPBackend(nthreads=2)
        try:
            assert_covers(collect_ranges(be, 100, schedule="dynamic", chunk=8), 100)
            be.shutdown()
            assert be._pool is None
            assert_covers(collect_ranges(be, 100, schedule="dynamic", chunk=8), 100)
            assert be._pool is not None
        finally:
            be.shutdown()

    def test_cached_workspace_survives_executor_recycling(self):
        # The worker threads after shutdown() are brand new OS threads;
        # a pool cached across the recycle must stay bounded and correct.
        be = OpenMPBackend(nthreads=2, default_chunk=16)
        rng = np.random.default_rng(0)
        rows = rng.integers(0, 20, size=400)
        contrib = rng.random((400, 3))
        ref = np.zeros((20, 3))
        np.add.at(ref, rows, contrib)

        def run():
            out = np.zeros((20, 3))
            with be.workspace(out.shape, out.dtype) as pool:
                be.parallel_for(
                    400,
                    lambda lo, hi: np.add.at(
                        pool.acquire(), rows[lo:hi], contrib[lo:hi]
                    ),
                    schedule="dynamic", chunk=16,
                )
                assert pool.narenas <= be.nthreads
                pool.reduce_into(out)
            return out

        try:
            np.testing.assert_allclose(run(), ref, rtol=1e-12)
            be.shutdown()  # recycle: fresh executor, fresh thread idents
            np.testing.assert_allclose(run(), ref, rtol=1e-12)
            be.shutdown()
            np.testing.assert_allclose(run(), ref, rtol=1e-12)
            with be.workspace((20, 3), np.float64) as pool:
                assert pool.narenas <= be.nthreads
        finally:
            be.shutdown()

    def test_concurrent_same_geometry_checkouts_distinct(self):
        be = OpenMPBackend(nthreads=2)
        barrier = threading.Barrier(2)
        pools = []
        lock = threading.Lock()

        def checkout():
            with be.workspace((6, 2), np.float64) as pool:
                with lock:
                    pools.append(pool)
                barrier.wait(timeout=5)  # both hold their pool at once

        try:
            threads = [threading.Thread(target=checkout) for _ in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(pools) == 2 and pools[0] is not pools[1]
        finally:
            be.shutdown()

    def test_ensure_pool_race_creates_one_executor(self, monkeypatch):
        import repro.parallel.openmp as openmp_mod

        created = []
        real = openmp_mod.ThreadPoolExecutor

        class Counting(real):
            def __init__(self, *args, **kw):
                created.append(self)
                super().__init__(*args, **kw)

        monkeypatch.setattr(openmp_mod, "ThreadPoolExecutor", Counting)
        be = OpenMPBackend(nthreads=4)
        barrier = threading.Barrier(2)

        def loop():
            barrier.wait(timeout=5)
            be.parallel_for(200, lambda lo, hi: None, schedule="dynamic", chunk=10)

        try:
            threads = [threading.Thread(target=loop) for _ in range(2)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert len(created) == 1, "racing loops must share one executor"
        finally:
            be.shutdown()


class TestWorkspacePoolLifetime:
    def test_second_reduce_raises(self):
        pool = WorkspacePool((4,), np.float64, max_arenas=2)
        pool.acquire()[:] = 2.0
        out = np.zeros(4)
        pool.reduce_into(out)
        np.testing.assert_array_equal(out, 2.0)
        with pytest.raises(RuntimeError, match="reduce_into.*twice"):
            pool.reduce_into(out)
        np.testing.assert_array_equal(out, 2.0)  # no silent double-count

    def test_acquire_after_reduce_raises(self):
        pool = WorkspacePool((4,), np.float64, max_arenas=2)
        pool.acquire()
        pool.reduce_into(np.zeros(4))
        with pytest.raises(RuntimeError, match="acquire.*after reduce_into"):
            pool.acquire()

    def test_reset_reenables_the_pool(self):
        pool = WorkspacePool((3,), np.float64, max_arenas=1)
        pool.acquire()[:] = 5.0
        out = np.zeros(3)
        pool.reduce_into(out)
        pool.reset()
        buf = pool.acquire()  # allowed again
        assert buf.sum() == 0  # and zeroed
        buf[:] = 1.0
        pool.reduce_into(out)
        np.testing.assert_array_equal(out, 6.0)

    def test_dead_thread_arena_adopted_with_contents(self):
        # A worker that dies mid-loop must not strand its arena (the old
        # leak) nor lose its partial sums (adoption keeps the buffer).
        pool = WorkspacePool((2,), np.float64, max_arenas=1)

        def worker():
            pool.acquire()[:] = 7.0

        t = threading.Thread(target=worker)
        t.start()
        t.join()  # thread is dead; its ident-keyed arena is stale
        buf = pool.acquire()  # at capacity: adopts the departed arena
        np.testing.assert_array_equal(buf, 7.0)
        assert pool.narenas == 1
        out = np.zeros(2)
        pool.reduce_into(out)
        np.testing.assert_array_equal(out, 7.0)

    def test_slot_key_shared_across_os_threads(self):
        # Two different OS threads bound to the same worker slot (in turn)
        # must get the same arena: slot identity, not thread identity.
        pool = WorkspacePool((2,), np.float64, max_arenas=4)
        seen = []

        def worker():
            with bound_slot(1):
                seen.append(id(pool.acquire()))

        for _ in range(3):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert len(set(seen)) == 1
        assert pool.narenas == 1


class TestSlotPool:
    def test_lease_binds_and_releases(self):
        slots = SlotPool(2)
        assert current_slot() is None
        with slots.lease() as slot:
            assert slot == 0
            assert current_slot() == 0
            with slots.lease() as inner:
                assert inner == 1
        assert current_slot() is None

    def test_exhaustion_raises(self):
        slots = SlotPool(1)
        with slots.lease():
            with pytest.raises(RuntimeError, match="SlotPool exhausted"):
                with slots.lease():
                    pass

    def test_released_slot_reusable(self):
        slots = SlotPool(1)
        for _ in range(3):
            with slots.lease() as slot:
                assert slot == 0

    def test_bound_slot_restores_previous(self):
        with bound_slot(3):
            assert current_slot() == 3
            with bound_slot(5):
                assert current_slot() == 5
            assert current_slot() == 3
        assert current_slot() is None

    def test_backend_chunks_run_under_slots(self):
        be = OpenMPBackend(nthreads=3)
        seen = set()
        lock = threading.Lock()

        def body(lo, hi):
            with lock:
                seen.add(current_slot())

        try:
            be.parallel_for(300, body, schedule="dynamic", chunk=10)
            assert seen and seen <= {0, 1, 2}
        finally:
            be.shutdown()


class TestBackendRegistry:
    def test_default_is_sequential(self):
        assert isinstance(get_backend(None), SequentialBackend)

    def test_lookup_by_name(self):
        assert isinstance(get_backend("openmp"), OpenMPBackend)
        assert get_backend("omp") is get_backend("openmp")

    def test_instance_passthrough(self):
        be = SequentialBackend()
        assert get_backend(be) is be

    def test_unknown_key(self):
        with pytest.raises(KeyError):
            get_backend("tpu")

    def test_register_custom(self):
        be = SequentialBackend(chunks_hint=2)
        register_backend("custom-test", be)
        assert get_backend("custom-test") is be


class TestAtomics:
    def test_atomic_add_handles_duplicates(self):
        out = np.zeros((3, 2))
        rows = np.array([0, 1, 0, 0])
        contrib = np.ones((4, 2))
        atomic_add_rows(out, rows, contrib)
        np.testing.assert_allclose(out[0], [3, 3])
        np.testing.assert_allclose(out[1], [1, 1])

    def test_sorted_reduce_matches_atomic(self):
        rng = np.random.default_rng(4)
        rows = rng.integers(0, 50, size=1000)
        contrib = rng.random((1000, 4))
        a = np.zeros((50, 4))
        b = np.zeros((50, 4))
        atomic_add_rows(a, rows, contrib)
        sorted_reduce_rows(b, rows, contrib)
        np.testing.assert_allclose(a, b, rtol=1e-12)

    def test_sorted_reduce_empty(self):
        out = np.zeros((3, 2))
        sorted_reduce_rows(out, np.array([], dtype=int), np.zeros((0, 2)))
        assert out.sum() == 0

    def test_contention_stats(self):
        stats = contention_stats(np.array([0, 0, 0, 1, 2]))
        assert stats.n_updates == 5
        assert stats.n_targets == 3
        assert stats.max_per_target == 3
        assert stats.conflict_factor == pytest.approx(5 / 3)

    def test_contention_empty(self):
        stats = contention_stats(np.array([], dtype=int))
        assert stats.n_updates == 0
        assert stats.conflict_factor == 0.0
