"""Tests for the CPU parallel substrate."""

import numpy as np
import pytest

from repro.parallel import (
    OpenMPBackend,
    SequentialBackend,
    atomic_add_rows,
    balanced_partition,
    chunk_ranges,
    contention_stats,
    fixed_chunks,
    get_backend,
    guided_chunks,
    load_imbalance,
    makespan,
    register_backend,
    sorted_reduce_rows,
)
from repro.types import Schedule


def collect_ranges(backend, total, **kw):
    ranges = []
    backend.parallel_for(total, lambda lo, hi: ranges.append((lo, hi)), **kw)
    return sorted(ranges)


def assert_covers(ranges, total):
    pos = 0
    for lo, hi in ranges:
        assert lo == pos, f"gap/overlap at {lo}, expected {pos}"
        assert hi > lo
        pos = hi
    assert pos == total


class TestPartitioners:
    def test_chunk_ranges_cover(self):
        assert_covers(chunk_ranges(100, 7), 100)

    def test_chunk_ranges_degenerate(self):
        assert chunk_ranges(0, 4) == []
        assert chunk_ranges(3, 10) == [(0, 1), (1, 2), (2, 3)]

    def test_fixed_chunks_cover(self):
        assert_covers(fixed_chunks(103, 10), 103)
        assert fixed_chunks(103, 10)[-1] == (100, 103)

    def test_guided_chunks_decrease(self):
        ranges = guided_chunks(1000, 4)
        assert_covers(ranges, 1000)
        sizes = [hi - lo for lo, hi in ranges]
        assert sizes[0] >= sizes[-1]

    def test_balanced_partition_equalizes_weight(self):
        # one huge item among many small: the huge one should sit alone-ish
        w = np.ones(100)
        w[50] = 100.0
        parts = balanced_partition(w, 4)
        assert_covers(parts, 100)
        sums = [w[lo:hi].sum() for lo, hi in parts]
        assert max(sums) < w.sum()  # did split at all
        # the heavy chunk cannot be subdivided below the single max item
        assert max(sums) <= 100 + 50

    def test_balanced_partition_zero_weights(self):
        parts = balanced_partition(np.zeros(10), 3)
        assert_covers(parts, 10)


class TestLoadMetrics:
    def test_imbalance_balanced(self):
        assert load_imbalance(np.full(8, 5.0)) == pytest.approx(1.0)

    def test_imbalance_skewed(self):
        assert load_imbalance(np.array([1.0, 1.0, 6.0])) == pytest.approx(6.0 / (8 / 3))

    def test_imbalance_empty(self):
        assert load_imbalance(np.array([])) == 1.0

    def test_makespan_single_worker(self):
        assert makespan(np.array([1.0, 2.0, 3.0]), 1) == pytest.approx(6.0)

    def test_makespan_lower_bounds(self):
        costs = np.array([5.0, 1.0, 1.0, 1.0])
        ms = makespan(costs, 2)
        assert ms >= max(5.0, costs.sum() / 2)
        assert ms <= costs.sum()

    def test_makespan_large_uses_bound(self):
        costs = np.ones(100000)
        assert makespan(costs, 10) == pytest.approx(10000.0)

    def test_makespan_empty(self):
        assert makespan(np.array([]), 4) == 0.0


class TestSequentialBackend:
    def test_covers_iteration_space(self):
        be = SequentialBackend(chunks_hint=5)
        assert_covers(collect_ranges(be, 100), 100)

    def test_schedules_all_cover(self):
        be = SequentialBackend(chunks_hint=3)
        for sched in Schedule:
            assert_covers(collect_ranges(be, 57, schedule=sched), 57)

    def test_explicit_chunk(self):
        be = SequentialBackend()
        ranges = collect_ranges(be, 10, chunk=3)
        assert ranges == [(0, 3), (3, 6), (6, 9), (9, 10)]


class TestOpenMPBackend:
    @pytest.fixture
    def be(self):
        backend = OpenMPBackend(nthreads=4)
        yield backend
        backend.shutdown()

    def test_static_covers(self, be):
        assert_covers(collect_ranges(be, 1000), 1000)

    def test_dynamic_covers(self, be):
        assert_covers(
            collect_ranges(be, 1000, schedule="dynamic", chunk=64), 1000
        )

    def test_guided_covers(self, be):
        assert_covers(collect_ranges(be, 1000, schedule="guided"), 1000)

    def test_zero_total_noop(self, be):
        assert collect_ranges(be, 0) == []

    def test_parallel_sum_matches_serial(self, be):
        data = np.random.default_rng(0).random(10000)
        out = np.zeros(len(data))

        def body(lo, hi):
            out[lo:hi] = data[lo:hi] * 2

        be.parallel_for(len(data), body, schedule="dynamic", chunk=512)
        np.testing.assert_allclose(out, data * 2)

    def test_exception_propagates(self, be):
        def body(lo, hi):
            raise RuntimeError("boom")

        with pytest.raises(RuntimeError, match="boom"):
            be.parallel_for(100, body)

    def test_map_ranges(self, be):
        seen = []
        be.map_ranges([(0, 5), (5, 9)], lambda lo, hi: seen.append((lo, hi)))
        assert sorted(seen) == [(0, 5), (5, 9)]

    def test_env_thread_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_NUM_THREADS", "3")
        assert OpenMPBackend().nthreads == 3


class TestBackendRegistry:
    def test_default_is_sequential(self):
        assert isinstance(get_backend(None), SequentialBackend)

    def test_lookup_by_name(self):
        assert isinstance(get_backend("openmp"), OpenMPBackend)
        assert get_backend("omp") is get_backend("openmp")

    def test_instance_passthrough(self):
        be = SequentialBackend()
        assert get_backend(be) is be

    def test_unknown_key(self):
        with pytest.raises(KeyError):
            get_backend("tpu")

    def test_register_custom(self):
        be = SequentialBackend(chunks_hint=2)
        register_backend("custom-test", be)
        assert get_backend("custom-test") is be


class TestAtomics:
    def test_atomic_add_handles_duplicates(self):
        out = np.zeros((3, 2))
        rows = np.array([0, 1, 0, 0])
        contrib = np.ones((4, 2))
        atomic_add_rows(out, rows, contrib)
        np.testing.assert_allclose(out[0], [3, 3])
        np.testing.assert_allclose(out[1], [1, 1])

    def test_sorted_reduce_matches_atomic(self):
        rng = np.random.default_rng(4)
        rows = rng.integers(0, 50, size=1000)
        contrib = rng.random((1000, 4))
        a = np.zeros((50, 4))
        b = np.zeros((50, 4))
        atomic_add_rows(a, rows, contrib)
        sorted_reduce_rows(b, rows, contrib)
        np.testing.assert_allclose(a, b, rtol=1e-12)

    def test_sorted_reduce_empty(self):
        out = np.zeros((3, 2))
        sorted_reduce_rows(out, np.array([], dtype=int), np.zeros((0, 2)))
        assert out.sum() == 0

    def test_contention_stats(self):
        stats = contention_stats(np.array([0, 0, 0, 1, 2]))
        assert stats.n_updates == 5
        assert stats.n_targets == 3
        assert stats.max_per_target == 3
        assert stats.conflict_factor == pytest.approx(5 / 3)

    def test_contention_empty(self):
        stats = contention_stats(np.array([], dtype=int))
        assert stats.n_updates == 0
        assert stats.conflict_factor == 0.0
