"""Property-based tests for the extension kernels and subsystems."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kernels import (
    coo_ttv,
    csf_mttkrp,
    csf_ttv,
    coo_mttkrp,
    sparse_contract,
    sparse_inner,
)
from repro.sptensor import COOTensor, CSFTensor
from repro.sptensor.bcsf import BCSFTensor, bcsf_mttkrp
from repro.sptensor.reorder import apply_permutations, random_reorder
from repro.stream import StreamingTensorBuilder
from tests.test_property_based import sparse_tensors


class TestContractionProperties:
    @given(sparse_tensors(max_order=3, max_dim=10), st.data())
    @settings(max_examples=30, deadline=None)
    def test_matches_tensordot(self, x, data):
        mode = data.draw(st.integers(0, x.nmodes - 1))
        seed = data.draw(st.integers(0, 100))
        other_dim = data.draw(st.integers(1, 6))
        rng = np.random.default_rng(seed)
        nnz_y = data.draw(st.integers(0, 12))
        y = COOTensor.random((x.shape[mode], other_dim), nnz=nnz_y, rng=rng)
        y = y.astype(np.float64)
        z = sparse_contract(x, y, [mode], [0])
        want = np.tensordot(x.to_dense(), y.to_dense(), axes=([mode], [0]))
        np.testing.assert_allclose(z.to_dense(), want, rtol=1e-9, atol=1e-11)

    @given(sparse_tensors(max_order=3, max_dim=8), st.data())
    @settings(max_examples=25, deadline=None)
    def test_bilinearity(self, x, data):
        """contract(a*X, Y) == a*contract(X, Y)."""
        seed = data.draw(st.integers(0, 100))
        y = COOTensor.random((x.shape[-1], 4), nnz=10, rng=seed).astype(np.float64)
        a = 3.5
        xs = COOTensor(x.shape, x.indices, x.values * a, check=False)
        left = sparse_contract(xs, y, [x.nmodes - 1], [0]).to_dense()
        right = a * sparse_contract(x, y, [x.nmodes - 1], [0]).to_dense()
        np.testing.assert_allclose(left, right, rtol=1e-9, atol=1e-11)

    @given(sparse_tensors(max_order=3, max_dim=8), st.data())
    @settings(max_examples=25, deadline=None)
    def test_inner_symmetry(self, x, data):
        seed = data.draw(st.integers(0, 100))
        y = COOTensor.random(x.shape, nnz=min(20, x.nnz + 5), rng=seed).astype(
            np.float64
        )
        assert sparse_inner(x, y) == sparse_inner(y, x)

    @given(sparse_tensors(max_order=3))
    @settings(max_examples=25, deadline=None)
    def test_inner_self_nonnegative(self, x):
        assert sparse_inner(x, x) >= 0.0


class TestCsfBcsfProperties:
    @given(sparse_tensors(max_order=4, max_dim=10), st.data())
    @settings(max_examples=25, deadline=None)
    def test_csf_ttv_matches_coo(self, t, data):
        mode = data.draw(st.integers(0, t.nmodes - 1))
        v = np.random.default_rng(1).uniform(-1, 1, t.shape[mode])
        if t.nmodes < 2:
            return
        c = CSFTensor.from_coo(t)
        got = csf_ttv(c, v, mode).to_coo().to_dense()
        want = coo_ttv(t, v, mode).to_dense()
        np.testing.assert_allclose(got, want, rtol=1e-9, atol=1e-11)

    @given(sparse_tensors(max_order=3, max_dim=10), st.data())
    @settings(max_examples=25, deadline=None)
    def test_bcsf_mttkrp_cap_invariant(self, t, data):
        mode = data.draw(st.integers(0, t.nmodes - 1))
        cap = data.draw(st.sampled_from([1, 4, 64, 10**6]))
        rng = np.random.default_rng(2)
        mats = [rng.uniform(-1, 1, (s, 3)) for s in t.shape]
        want = coo_mttkrp(t, mats, mode)
        b = BCSFTensor.from_coo(t, max_nnz_per_vroot=cap)
        np.testing.assert_allclose(
            bcsf_mttkrp(b, mats, mode), want, rtol=1e-9, atol=1e-11
        )
        assert b.vroot_nnz().sum() == t.nnz

    @given(sparse_tensors(max_order=3, max_dim=10), st.data())
    @settings(max_examples=25, deadline=None)
    def test_csf_mttkrp_matches_coo(self, t, data):
        mode = data.draw(st.integers(0, t.nmodes - 1))
        rng = np.random.default_rng(3)
        mats = [rng.uniform(-1, 1, (s, 2)) for s in t.shape]
        c = CSFTensor.from_coo(t)
        np.testing.assert_allclose(
            csf_mttkrp(c, mats, mode),
            coo_mttkrp(t, mats, mode),
            rtol=1e-9,
            atol=1e-11,
        )


class TestReorderProperties:
    @given(sparse_tensors(max_order=3), st.integers(0, 1000))
    @settings(max_examples=25, deadline=None)
    def test_reorder_preserves_multiset(self, t, seed):
        out, perms = random_reorder(t, seed=seed)
        assert out.nnz == t.nnz
        np.testing.assert_allclose(
            np.sort(out.values), np.sort(t.values)
        )
        # inverse permutations restore the tensor
        inv = {
            m: np.argsort(p) for m, p in perms.items()
        }
        assert apply_permutations(out, inv).allclose(t)

    @given(sparse_tensors(max_order=3), st.integers(0, 1000))
    @settings(max_examples=20, deadline=None)
    def test_reorder_preserves_fiber_multiset(self, t, seed):
        """Relabeling permutes fibers but not their length distribution."""
        out, _ = random_reorder(t, seed=seed)
        for mode in range(t.nmodes):
            a = np.sort(t.fiber_index(mode).fiber_lengths())
            b = np.sort(out.fiber_index(mode).fiber_lengths())
            np.testing.assert_array_equal(a, b)


class TestStreamProperties:
    @given(
        st.integers(1, 6),
        st.integers(1, 200),
        st.integers(0, 1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_batching_invariance(self, nbatches, per_batch, seed):
        """Any batching of the same events accumulates the same tensor."""
        rng = np.random.default_rng(seed)
        total = nbatches * per_batch
        coords = rng.integers(0, [12, 11, 4], size=(total, 3))
        values = rng.random(total)
        one = StreamingTensorBuilder((12, 11, 4))
        one.push(coords, values)
        many = StreamingTensorBuilder((12, 11, 4), merge_threshold=7)
        for b in range(nbatches):
            sl = slice(b * per_batch, (b + 1) * per_batch)
            many.push(coords[sl], values[sl])
        assert one.finish().allclose(many.finish(), rtol=1e-5, atol=1e-6)
