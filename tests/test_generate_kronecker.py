"""Tests for the stochastic Kronecker tensor generator."""

import numpy as np
import pytest

from repro.errors import GenerationError
from repro.generate import default_initiator, kronecker_tensor
from repro.generate.graph import degree_distribution, degree_tail_ratio


class TestInitiator:
    def test_shape_and_normalization(self):
        init = default_initiator(3)
        assert init.shape == (2, 2, 2)
        assert init.sum() == pytest.approx(1.0)

    def test_corner_weighted(self):
        init = default_initiator(3, skew=0.5)
        assert init[0, 0, 0] == init.max()
        assert init[1, 1, 1] == init.min()

    def test_order4(self):
        assert default_initiator(4).ndim == 4

    def test_invalid_params(self):
        with pytest.raises(GenerationError):
            default_initiator(3, dim=1)
        with pytest.raises(GenerationError):
            default_initiator(3, skew=1.5)


class TestKroneckerTensor:
    def test_exact_nnz_distinct_in_bounds(self):
        t = kronecker_tensor((100, 100, 100), 2000, seed=0)
        assert t.nnz == 2000
        assert not t.has_duplicates()
        assert int(t.indices.max()) < 100

    def test_determinism(self):
        a = kronecker_tensor((64, 64, 64), 500, seed=42)
        b = kronecker_tensor((64, 64, 64), 500, seed=42)
        assert a.allclose(b)

    def test_seeds_differ(self):
        a = kronecker_tensor((64, 64, 64), 500, seed=1)
        b = kronecker_tensor((64, 64, 64), 500, seed=2)
        assert not a.pattern_equals(b)

    def test_non_power_shape_stripped(self):
        """The strip-oversize trick handles non-power-of-2 dims."""
        t = kronecker_tensor((100, 77, 50), 800, seed=3)
        assert t.nnz == 800
        maxs = t.indices.max(axis=0).astype(int)
        assert maxs[0] < 100 and maxs[1] < 77 and maxs[2] < 50

    def test_4th_order(self):
        t = kronecker_tensor((32, 32, 32, 32), 600, seed=4)
        assert t.nmodes == 4
        assert t.nnz == 600

    def test_heavy_tail(self):
        """Kronecker tensors concentrate non-zeros in hub indices."""
        t = kronecker_tensor((512, 512, 512), 20000, seed=5)
        deg = degree_distribution(t, 0)
        # top 1% of vertices should own far more than 1% of non-zeros
        assert degree_tail_ratio(deg, quantile=0.99) > 0.05
        assert deg.max() > 5 * deg.mean()

    def test_custom_initiator(self):
        init = np.full((3, 3, 3), 1.0 / 27)
        t = kronecker_tensor((81, 81, 81), 400, initiator=init, seed=6)
        assert t.nnz == 400

    def test_initiator_validation(self):
        with pytest.raises(GenerationError):
            kronecker_tensor((10, 10), 5, initiator=np.ones((2, 2, 2)))
        with pytest.raises(GenerationError):
            kronecker_tensor((10, 10, 10), 5, initiator=np.ones((2, 3, 2)))
        with pytest.raises(GenerationError):
            kronecker_tensor((10, 10, 10), 5, initiator=-np.ones((2, 2, 2)))

    def test_saturation_raises(self):
        """Requesting more nnz than the skewed model can realize fails
        loudly instead of looping forever."""
        with pytest.raises(GenerationError):
            kronecker_tensor((2, 2, 2), 9, max_rounds=3)

    def test_values_positive(self):
        t = kronecker_tensor((64, 64, 64), 300, seed=7)
        assert (t.values > 0).all()
