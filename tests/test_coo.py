"""Tests for the COO tensor format."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.sptensor import COOTensor, stack_entries


class TestConstruction:
    def test_basic(self):
        t = stack_entries((3, 4), [((0, 1), 2.0), ((2, 3), -1.0)])
        assert t.shape == (3, 4)
        assert t.nnz == 2
        assert t.nmodes == 2

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ShapeError):
            COOTensor((2, 2), np.array([[0, 2]]), np.array([1.0]))

    def test_negative_index_rejected(self):
        with pytest.raises(ShapeError):
            COOTensor((2, 2), np.array([[-1, 0]], dtype=np.int64), np.array([1.0]))

    def test_mismatched_values_rejected(self):
        with pytest.raises(ShapeError):
            COOTensor((2, 2), np.array([[0, 0]]), np.array([1.0, 2.0]))

    def test_wrong_index_width_rejected(self):
        with pytest.raises(ShapeError):
            COOTensor((2, 2, 2), np.array([[0, 0]]), np.array([1.0]))

    def test_empty(self):
        t = COOTensor.empty((5, 5, 5))
        assert t.nnz == 0
        assert t.to_dense().sum() == 0

    def test_integer_values_promoted_to_float(self):
        t = COOTensor((2, 2), np.array([[0, 0]]), np.array([3]))
        assert np.issubdtype(t.values.dtype, np.floating)

    def test_1d_tensor(self):
        t = COOTensor((10,), np.array([[2], [5]]), np.array([1.0, 2.0]))
        d = t.to_dense()
        assert d[2] == 1.0 and d[5] == 2.0


class TestDenseRoundtrip:
    def test_roundtrip(self, coo3):
        back = COOTensor.from_dense(coo3.to_dense())
        assert back.allclose(coo3)

    def test_from_dense_pattern(self):
        arr = np.zeros((3, 3))
        arr[1, 2] = 5.0
        t = COOTensor.from_dense(arr)
        assert t.nnz == 1
        assert t.values[0] == 5.0

    def test_duplicates_summed_in_dense(self):
        t = COOTensor((2, 2), np.array([[0, 0], [0, 0]]), np.array([1.0, 2.0]))
        assert t.to_dense()[0, 0] == 3.0


class TestRandom:
    def test_exact_nnz_and_distinct(self):
        t = COOTensor.random((30, 30, 30), nnz=500, rng=1)
        assert t.nnz == 500
        assert not t.has_duplicates()

    def test_determinism(self):
        a = COOTensor.random((10, 10), nnz=40, rng=3)
        b = COOTensor.random((10, 10), nnz=40, rng=3)
        assert a.allclose(b)

    def test_nnz_clamped_to_capacity(self):
        t = COOTensor.random((2, 2), nnz=100, rng=0)
        assert t.nnz == 4

    def test_values_nonzero(self):
        t = COOTensor.random((10, 10), nnz=50, rng=5)
        assert (np.abs(t.values) > 0).all()


class TestSortLinearize:
    def test_sort_rowmajor(self, coo3):
        coo3.sort()
        lin = coo3.linearize()
        assert (np.diff(lin) >= 0).all()
        assert coo3.sort_order == (0, 1, 2)

    def test_sort_custom_order(self, coo3):
        coo3.sort((2, 0, 1))
        lin = coo3.linearize((2, 0, 1))
        assert (np.diff(lin) >= 0).all()

    def test_sort_is_cached(self, coo3):
        coo3.sort()
        inds_before = coo3.indices
        coo3.sort()  # second call is a no-op
        assert coo3.indices is inds_before

    def test_sort_preserves_tensor(self, coo3):
        d = coo3.to_dense()
        coo3.sort((1, 2, 0))
        np.testing.assert_allclose(coo3.to_dense(), d)

    def test_linearize_invalid_order(self, coo3):
        with pytest.raises(ShapeError):
            coo3.linearize((0, 0, 1))


class TestCoalesce:
    def test_sums_duplicates(self):
        t = COOTensor(
            (3, 3),
            np.array([[1, 1], [0, 0], [1, 1]]),
            np.array([2.0, 1.0, 3.0]),
        )
        c = t.coalesce()
        assert c.nnz == 2
        np.testing.assert_allclose(c.to_dense(), t.to_dense())

    def test_sorted_output(self):
        t = COOTensor(
            (4, 4), np.array([[3, 0], [0, 1], [2, 2]]), np.array([1.0, 2.0, 3.0])
        )
        c = t.coalesce()
        assert (np.diff(c.linearize()) > 0).all()

    def test_empty(self):
        c = COOTensor.empty((2, 2)).coalesce()
        assert c.nnz == 0


class TestFiberIndex:
    def test_counts_match_dense(self, coo3, dense3):
        for mode in range(3):
            fi = coo3.fiber_index(mode)
            # count non-empty fibers from the dense array
            moved = np.moveaxis(dense3, mode, -1)
            dense_fibers = int((np.abs(moved).sum(axis=-1) > 0).sum())
            assert fi.nfibers == dense_fibers

    def test_fiber_lengths_sum_to_nnz(self, coo4):
        for mode in range(4):
            fi = coo4.fiber_index(mode)
            assert fi.fiber_lengths().sum() == coo4.nnz

    def test_fibers_share_other_coords(self, coo3):
        fi = coo3.fiber_index(1)
        inds = coo3.indices[fi.order]
        for f in range(min(fi.nfibers, 20)):
            seg = inds[fi.fptr[f]:fi.fptr[f + 1]]
            assert (seg[:, 0] == seg[0, 0]).all()
            assert (seg[:, 2] == seg[0, 2]).all()

    def test_empty_tensor(self):
        fi = COOTensor.empty((3, 3)).fiber_index(0)
        assert fi.nfibers == 0


class TestComparison:
    def test_pattern_equals_ignores_order(self, coo3):
        shuffled = coo3.copy()
        perm = np.random.default_rng(0).permutation(coo3.nnz)
        shuffled.indices = shuffled.indices[perm]
        shuffled.values = shuffled.values[perm]
        shuffled._sort_order = None
        assert coo3.pattern_equals(shuffled)

    def test_allclose_detects_value_change(self, coo3):
        other = coo3.copy()
        other.values = other.values.copy()
        other.values[0] += 1.0
        assert not coo3.allclose(other)

    def test_allclose_drops_explicit_zeros(self):
        a = COOTensor((2, 2), np.array([[0, 0], [1, 1]]), np.array([1.0, 0.0]))
        b = COOTensor((2, 2), np.array([[0, 0]]), np.array([1.0]))
        assert a.allclose(b)

    def test_allclose_shape_mismatch(self, coo3):
        other = COOTensor.empty((1, 1, 1))
        assert not coo3.allclose(other)


class TestTransforms:
    def test_permute_modes(self, coo3, dense3):
        p = coo3.permute_modes((2, 0, 1))
        np.testing.assert_allclose(p.to_dense(), np.transpose(dense3, (2, 0, 1)))

    def test_astype(self, coo3):
        t64 = coo3.astype(np.float64)
        assert t64.values.dtype == np.float64
        np.testing.assert_allclose(t64.to_dense(), coo3.to_dense())

    def test_drop_zeros(self):
        t = COOTensor((2, 2), np.array([[0, 0], [1, 1]]), np.array([0.0, 2.0]))
        assert t.drop_zeros().nnz == 1


class TestStorage:
    def test_paper_byte_model(self, coo3):
        # 4(N+1)M bytes for order N with M nnz
        assert coo3.nbytes == 4 * (3 + 1) * coo3.nnz

    def test_density(self):
        t = COOTensor.random((10, 10, 10), nnz=100, rng=0)
        assert t.density == pytest.approx(0.1)
