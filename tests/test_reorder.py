"""Tests for tensor reordering (locality optimization)."""

import numpy as np
import pytest

from repro.generate import powerlaw_tensor
from repro.sptensor import (
    COOTensor,
    apply_permutations,
    blocking_quality,
    degree_reorder,
    lexi_reorder,
    random_reorder,
)


@pytest.fixture(scope="module")
def pl():
    return powerlaw_tensor((2000, 2000, 12), 12_000, dense_modes=(2,), seed=1)


class TestApplyPermutations:
    def test_identity(self, coo3):
        perms = {m: np.arange(coo3.shape[m]) for m in range(3)}
        out = apply_permutations(coo3, perms)
        assert out.allclose(coo3)

    def test_is_bijective_relabeling(self, coo3):
        rng = np.random.default_rng(0)
        perms = {0: rng.permutation(coo3.shape[0])}
        out = apply_permutations(coo3, perms)
        assert out.nnz == coo3.nnz
        np.testing.assert_array_equal(np.sort(out.values), np.sort(coo3.values))
        # undo
        inv = np.empty_like(perms[0])
        inv[perms[0]] = np.arange(len(perms[0]))
        back = apply_permutations(out, {0: inv})
        assert back.allclose(coo3)

    def test_wrong_length_rejected(self, coo3):
        with pytest.raises(ValueError):
            apply_permutations(coo3, {0: np.arange(coo3.shape[0] + 1)})


class TestStrategies:
    def test_degree_reorder_hubs_first(self, pl):
        out, perms = degree_reorder(pl, modes=[0])
        counts = np.bincount(out.indices[:, 0].astype(np.int64),
                             minlength=out.shape[0])
        # after reordering, slice sizes are non-increasing
        assert (np.diff(counts) <= 0).all()

    def test_degree_reorder_improves_blocking(self, pl):
        base = blocking_quality(pl, 128)
        out, _ = degree_reorder(pl)
        after = blocking_quality(out, 128)
        assert after["nblocks"] < base["nblocks"]
        assert after["alpha"] > base["alpha"]

    def test_lexi_reorder_not_worse(self, pl):
        base = blocking_quality(pl, 128)
        out, _ = lexi_reorder(pl, sweeps=6)
        after = blocking_quality(out, 128)
        assert after["nblocks"] <= base["nblocks"]

    def test_random_reorder_deterministic(self, coo3):
        a, _ = random_reorder(coo3, seed=5)
        b, _ = random_reorder(coo3, seed=5)
        assert a.allclose(b)

    def test_reorder_preserves_tensor_up_to_relabeling(self, pl):
        """Kernels on a reordered tensor give permuted results: Mttkrp
        rows permute exactly with the mode permutation."""
        from repro.kernels import coo_mttkrp

        out, perms = degree_reorder(pl)
        rng = np.random.default_rng(0)
        mats = [rng.random((s, 3)) for s in pl.shape]
        # permute the factor matrices consistently
        mats_perm = [m.copy() for m in mats]
        for mode, perm in perms.items():
            mats_perm[mode][perm] = mats[mode]
        want = coo_mttkrp(pl.astype(np.float64), mats, 0)
        got = coo_mttkrp(out.astype(np.float64), mats_perm, 0)
        np.testing.assert_allclose(got[perms[0]], want, rtol=1e-8)

    def test_lexi_returns_total_permutations(self, coo3):
        out, perms = lexi_reorder(coo3, sweeps=4)
        rebuilt = apply_permutations(coo3, perms)
        assert rebuilt.allclose(out)


class TestBlockingQuality:
    def test_fields(self, coo3):
        q = blocking_quality(coo3, 8)
        assert set(q) == {"nblocks", "alpha", "hicoo_bytes", "compression"}
        assert q["nblocks"] > 0
        assert q["alpha"] * q["nblocks"] == pytest.approx(coo3.nnz)

    def test_empty(self):
        q = blocking_quality(COOTensor.empty((4, 4)), 4)
        assert q["nblocks"] == 0
        assert q["alpha"] == 0.0
