"""Tests for timing, PRNG, table rendering and validation helpers."""

import time

import numpy as np
import pytest

from repro.errors import ModeError, ShapeError
from repro.util.prng import rng_from_seed, spawn
from repro.util.tables import render_table, write_csv
from repro.util.timing import Timer, time_call
from repro.util.validation import (
    check_indices_in_bounds,
    check_mode,
    check_same_shape,
    check_shape,
)


class TestTimer:
    def test_accumulates(self):
        t = Timer()
        with t:
            time.sleep(0.01)
        first = t.elapsed
        with t:
            time.sleep(0.01)
        assert t.elapsed > first >= 0.01

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0

    def test_reentrant_enter_raises(self):
        t = Timer()
        with t:
            with pytest.raises(RuntimeError, match="re-entrant"):
                t.__enter__()
        # The failed re-entry must not corrupt the accumulated total:
        # the timer is stopped and usable again.
        before = t.elapsed
        with t:
            time.sleep(0.005)
        assert t.elapsed > before

    def test_split_reads_running_clock(self):
        t = Timer()
        assert t.split() == 0.0
        with t:
            time.sleep(0.005)
            mid = t.split()
            assert mid >= 0.005
            time.sleep(0.005)
        assert t.elapsed >= mid
        assert t.split() == t.elapsed  # stopped: split is the total

    def test_reset_while_running_raises(self):
        t = Timer()
        with t:
            with pytest.raises(RuntimeError, match="running"):
                t.reset()


class TestTimeCall:
    def test_statistics_and_result(self):
        calls = []
        res = time_call(lambda: calls.append(1) or 42, repeats=3, warmup=1)
        assert res.result == 42
        assert res.repeats == 3
        assert len(calls) == 4  # warmup + repeats
        assert res.best <= res.mean <= res.worst
        assert res.seconds == res.mean

    def test_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            time_call(lambda: None, repeats=0)


class TestPrng:
    def test_seed_determinism(self):
        a = rng_from_seed(5).random(10)
        b = rng_from_seed(5).random(10)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(1)
        assert rng_from_seed(gen) is gen

    def test_spawn_streams_differ(self):
        children = spawn(rng_from_seed(7), 3)
        draws = [c.random(5).tolist() for c in children]
        assert draws[0] != draws[1] != draws[2]

    def test_spawn_deterministic(self):
        a = [c.random(3).tolist() for c in spawn(rng_from_seed(9), 2)]
        b = [c.random(3).tolist() for c in spawn(rng_from_seed(9), 2)]
        assert a == b


class TestRenderTable:
    def test_alignment_and_title(self):
        out = render_table(["a", "bb"], [[1, 2.5], [30, 0.001234]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[2] and "bb" in lines[2]
        assert len(lines) == 6

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            render_table(["a"], [[1, 2]])

    def test_float_formatting(self):
        out = render_table(["x"], [[1234567.0], [0.00001]])
        assert "1.23e+06" in out
        assert "1e-05" in out

    def test_csv_roundtrip(self, tmp_path):
        p = tmp_path / "t.csv"
        write_csv(p, ["a", "b"], [[1, "x"], [2, "y"]])
        text = p.read_text().strip().splitlines()
        assert text[0] == "a,b"
        assert text[2] == "2,y"


class TestValidation:
    def test_check_mode_negative(self):
        assert check_mode(-1, 3) == 2

    def test_check_mode_out_of_range(self):
        with pytest.raises(ModeError):
            check_mode(3, 3)

    def test_check_mode_non_integer(self):
        with pytest.raises(ModeError):
            check_mode(1.5, 3)

    def test_check_shape(self):
        assert check_shape([2, 3]) == (2, 3)
        with pytest.raises(ShapeError):
            check_shape([])
        with pytest.raises(ShapeError):
            check_shape([0, 3])

    def test_check_same_shape(self):
        class S:
            shape = (2, 3)

        class T:
            shape = (2, 4)

        check_same_shape(S(), S())
        with pytest.raises(ShapeError):
            check_same_shape(S(), T())

    def test_indices_bounds(self):
        inds = np.array([[0, 1], [2, 3]])
        check_indices_in_bounds(inds, (3, 4))
        with pytest.raises(ShapeError, match="mode 1"):
            check_indices_in_bounds(inds, (3, 3))

    def test_indices_wrong_shape(self):
        with pytest.raises(ShapeError):
            check_indices_in_bounds(np.zeros((2, 3), dtype=int), (3, 4))
