"""Tests for the graph-property validators (Section 4 claims)."""

import numpy as np
import pytest

from repro.generate import (
    clustering_coefficient,
    degree_distribution,
    degree_tail_ratio,
    effective_diameter,
    kronecker_tensor,
    powerlaw_exponent_mle,
    powerlaw_tensor,
    project_graph,
)
from repro.sptensor import COOTensor


class TestDegreeDistribution:
    def test_sums_to_nnz(self):
        t = COOTensor.random((50, 40, 30), nnz=300, rng=0)
        for m in range(3):
            assert degree_distribution(t, m).sum() == t.nnz

    def test_only_nonzero_degrees(self):
        t = COOTensor((10, 10), np.array([[0, 0], [0, 1]]), np.ones(2))
        deg = degree_distribution(t, 0)
        assert (deg > 0).all()
        assert len(deg) == 1


class TestExponentFit:
    def test_recovers_planted_exponent(self):
        """MLE on samples from a known power law lands near the truth.

        The continuous-MLE-with-offset estimator is biased at dmin=1 on
        discrete data (Clauset et al. fit the tail), so fit from dmin=3.
        """
        rng = np.random.default_rng(0)
        alpha_true = 2.5
        degrees = rng.zipf(alpha_true, 50000)
        est = powerlaw_exponent_mle(degrees, dmin=3)
        assert abs(est - alpha_true) < 0.2

    def test_degenerate_input(self):
        assert np.isnan(powerlaw_exponent_mle(np.array([3])))

    def test_tail_ratio_uniform_vs_skewed(self):
        uniform = np.ones(1000)
        skewed = np.ones(1000)
        skewed[:10] = 500
        assert degree_tail_ratio(skewed) > degree_tail_ratio(uniform)

    def test_tail_ratio_empty(self):
        assert degree_tail_ratio(np.zeros(5)) == 0.0


class TestProjections:
    @pytest.fixture(scope="class")
    def small_pl(self):
        return powerlaw_tensor((200, 200, 6), 1500, dense_modes=(2,), seed=2)

    def test_project_graph_bipartite(self, small_pl):
        g = project_graph(small_pl, (0, 1))
        assert g.number_of_edges() > 0
        # sides are disjoint thanks to the offset
        assert max(n for n in g.nodes) >= small_pl.shape[0]

    def test_clustering_positive_for_generated(self, small_pl):
        cc = clustering_coefficient(small_pl)
        assert 0.0 <= cc <= 1.0

    def test_kronecker_clusters_more_than_uniform(self):
        """Paper claim: Kronecker graphs have high clustering; uniform
        random tensors of the same size do not."""
        kron = kronecker_tensor((256, 256, 256), 3000, seed=3)
        unif = COOTensor.random((256, 256, 256), nnz=3000, rng=3)
        assert clustering_coefficient(kron) > clustering_coefficient(unif)

    def test_effective_diameter_small(self, small_pl):
        """Power-law graphs exhibit a small diameter (paper claim)."""
        d = effective_diameter(small_pl)
        assert 0 < d <= 8
