"""Robustness / failure-injection tests.

Benchmark suites meet hostile inputs: duplicate coordinates, NaN/inf
values, dimensions beyond 32-bit indices, adversarial emptiness.  These
tests pin down the suite's behavior in each case — either correct results
(duplicates are legal COO: they sum) or loud, early failures (corrupted
structure must not produce silent garbage).
"""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.kernels import (
    coo_mttkrp,
    coo_tew,
    coo_ts,
    coo_ttm,
    coo_ttv,
    dense_mttkrp,
    dense_ttv,
)
from repro.sptensor import COOTensor, HiCOOTensor
from repro.types import index_dtype_for


@pytest.fixture
def dup_tensor():
    """Legal-but-tricky COO: repeated coordinates (they sum)."""
    inds = np.array(
        [[0, 0, 0], [0, 0, 0], [1, 2, 3], [1, 2, 3], [1, 2, 3], [4, 4, 4]]
    )
    vals = np.array([1.0, 2.0, 10.0, -4.0, 1.0, 5.0])
    return COOTensor((5, 5, 5), inds, vals)


class TestDuplicateCoordinates:
    def test_ttv_sums_duplicates(self, dup_tensor):
        v = np.arange(1.0, 6.0)
        got = coo_ttv(dup_tensor, v, 2)
        want = dense_ttv(dup_tensor.to_dense(), v, 2)
        np.testing.assert_allclose(got.to_dense(), want, rtol=1e-9)

    def test_mttkrp_sums_duplicates(self, dup_tensor):
        mats = [np.arange(10.0).reshape(5, 2) + m for m in range(3)]
        got = coo_mttkrp(dup_tensor, mats, 0)
        want = dense_mttkrp(dup_tensor.to_dense(), mats, 0)
        np.testing.assert_allclose(got, want, rtol=1e-9)

    def test_hicoo_roundtrip_keeps_duplicates(self, dup_tensor):
        h = HiCOOTensor.from_coo(dup_tensor, 4)
        assert h.nnz == dup_tensor.nnz  # stored entries preserved
        np.testing.assert_allclose(
            h.to_coo().to_dense(), dup_tensor.to_dense(), rtol=1e-9
        )

    def test_coalesce_removes_them(self, dup_tensor):
        c = dup_tensor.coalesce()
        assert c.nnz == 3
        np.testing.assert_allclose(c.to_dense(), dup_tensor.to_dense())


class TestNonFiniteValues:
    def test_nan_propagates_not_corrupts(self):
        t = COOTensor(
            (3, 3), np.array([[0, 0], [1, 1]]), np.array([np.nan, 2.0])
        )
        out = coo_ts(t, 2.0, "mul")
        assert np.isnan(out.values[out.to_dense()[0, 0] != out.to_dense()[0, 0]].sum()) or np.isnan(
            out.to_dense()[0, 0]
        )
        assert out.to_dense()[1, 1] == 4.0  # untouched entry correct

    def test_inf_in_tew(self):
        a = COOTensor((2, 2), np.array([[0, 0]]), np.array([np.inf]))
        b = COOTensor((2, 2), np.array([[0, 0]]), np.array([1.0]))
        out = coo_tew(a, b, "add")
        assert np.isinf(out.to_dense()[0, 0])

    def test_allclose_with_nan_is_false(self):
        a = COOTensor((2, 2), np.array([[0, 0]]), np.array([np.nan]))
        b = COOTensor((2, 2), np.array([[0, 0]]), np.array([1.0]))
        assert not a.allclose(b)


class TestHugeDimensions:
    def test_index_dtype_widens(self):
        shape = (2**33, 4, 4)
        assert index_dtype_for(shape) == np.dtype(np.int64)
        t = COOTensor(
            shape,
            np.array([[2**33 - 2, 1, 1], [5, 0, 0]], dtype=np.int64),
            np.array([1.0, 2.0]),
        )
        assert t.indices.dtype == np.int64
        assert int(t.indices[:, 0].max()) == 2**33 - 2

    def test_linearize_does_not_overflow(self):
        shape = (2**21, 2**21, 2**21)  # product exceeds 2^63? (2^63) exactly
        t = COOTensor(
            (2**20, 2**20, 2**20),
            np.array([[2**20 - 1, 2**20 - 1, 2**20 - 1]], dtype=np.int64),
            np.array([1.0]),
        )
        lin = t.linearize()
        assert lin[0] == (2**20 - 1) * (2**40 + 2**20 + 1)

    def test_kernels_on_wide_tensor(self):
        t = COOTensor(
            (2**34, 8),
            np.array([[2**34 - 1, 3], [17, 5]], dtype=np.int64),
            np.array([2.0, 3.0]),
        )
        v = np.arange(8.0)
        out = coo_ttv(t, v, 1)
        assert out.nnz == 2
        vals = dict(zip(out.indices[:, 0].tolist(), out.values.tolist()))
        assert vals[2**34 - 1] == pytest.approx(6.0)
        assert vals[17] == pytest.approx(15.0)


class TestCorruptedStructures:
    def test_hicoo_rejects_truncated_values(self, coo3):
        h = HiCOOTensor.from_coo(coo3, 8)
        with pytest.raises(Exception):
            HiCOOTensor(
                h.shape, 8, h.bptr, h.binds, h.einds, h.values[:-1]
            )

    def test_hicoo_rejects_decreasing_bptr(self, coo3):
        h = HiCOOTensor.from_coo(coo3, 8)
        bad = h.bptr.copy()
        if len(bad) > 2:
            bad[1], bad[2] = bad[2] + 1, bad[1]
            with pytest.raises(Exception):
                HiCOOTensor(h.shape, 8, bad, h.binds, h.einds, h.values)

    def test_kernel_rejects_wrong_operand_silently_never(self, coo3):
        with pytest.raises(ShapeError):
            coo_ttm(coo3, np.ones((coo3.shape[0], 4, 2)), 0)  # 3-D operand

    def test_empty_everything(self):
        e = COOTensor.empty((4, 4, 4))
        assert coo_ttv(e, np.ones(4), 0).nnz == 0
        assert coo_mttkrp(e, [np.ones((4, 2))] * 3, 1).sum() == 0
        assert coo_tew(e, e, "add").nnz == 0
        assert coo_ts(e, 2.0, "mul").nnz == 0

    def test_single_entry_everything(self):
        t = COOTensor((4, 4, 4), np.array([[1, 2, 3]]), np.array([5.0]))
        assert coo_ttv(t, np.ones(4), 2).to_dense()[1, 2] == 5.0
        h = HiCOOTensor.from_coo(t, 4)
        assert h.nblocks == 1
        out = coo_mttkrp(t, [np.ones((4, 2))] * 3, 0)
        assert out[1, 0] == pytest.approx(5.0)


class TestValueDtypes:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_kernels_preserve_dtype_family(self, dtype):
        t = COOTensor.random((20, 20, 20), nnz=100, rng=0, dtype=dtype)
        v = np.ones(20, dtype=dtype)
        out = coo_ttv(t, v, 0)
        assert out.values.dtype == dtype

    def test_mixed_precision_promotes(self):
        t = COOTensor.random((10, 10, 10), nnz=50, rng=1, dtype=np.float32)
        v = np.ones(10, dtype=np.float64)
        out = coo_ttv(t, v, 0)
        assert out.values.dtype == np.float64
