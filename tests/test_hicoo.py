"""Tests for the HiCOO format."""

import numpy as np
import pytest

from repro.errors import FormatError
from repro.sptensor import COOTensor, HiCOOTensor
from repro.util.morton import morton_encode


class TestRoundtrip:
    @pytest.mark.parametrize("block_size", [1, 2, 4, 8, 128, 256])
    def test_coo_roundtrip(self, coo3, block_size):
        h = HiCOOTensor.from_coo(coo3, block_size)
        assert h.to_coo().allclose(coo3)

    def test_4th_order_roundtrip(self, coo4):
        h = HiCOOTensor.from_coo(coo4, 4)
        assert h.to_coo().allclose(coo4)

    def test_empty(self):
        h = HiCOOTensor.from_coo(COOTensor.empty((5, 5)), 4)
        assert h.nnz == 0
        assert h.nblocks == 0
        assert h.to_coo().nnz == 0

    def test_single_entry(self):
        t = COOTensor((300, 300), np.array([[257, 129]]), np.array([7.0]))
        h = HiCOOTensor.from_coo(t, 128)
        assert h.nblocks == 1
        np.testing.assert_array_equal(h.binds[0], [2, 1])
        np.testing.assert_array_equal(h.einds[0], [1, 1])
        assert h.to_coo().allclose(t)


class TestStructure:
    def test_block_sizes_validated(self, coo3):
        with pytest.raises(FormatError):
            HiCOOTensor.from_coo(coo3, 100)  # not a power of two
        with pytest.raises(FormatError):
            HiCOOTensor.from_coo(coo3, 512)  # exceeds 8-bit element index

    def test_einds_within_block(self, hicoo3):
        assert int(hicoo3.einds.max()) < hicoo3.block_size

    def test_bptr_partitions_entries(self, hicoo3):
        assert hicoo3.bptr[0] == 0
        assert hicoo3.bptr[-1] == hicoo3.nnz
        assert (np.diff(hicoo3.bptr) >= 1).all()  # no empty blocks

    def test_blocks_in_morton_order(self, hicoo3):
        codes = morton_encode(hicoo3.binds.astype(np.uint64))
        assert (np.diff(codes.astype(np.int64)) > 0).all()  # strictly: unique blocks

    def test_entries_grouped_by_block(self, hicoo3):
        """Every entry's reconstructed block coordinate matches its block."""
        bid = hicoo3.entry_block_ids()
        ginds = hicoo3.global_indices()
        blocks = ginds // hicoo3.block_size
        np.testing.assert_array_equal(blocks, hicoo3.binds[bid].astype(np.int64))

    def test_nnz_per_block_sums(self, hicoo3):
        assert hicoo3.nnz_per_block().sum() == hicoo3.nnz


class TestStorageModel:
    def test_paper_bytes_formula(self, hicoo3):
        n = hicoo3.nmodes
        expected = hicoo3.nblocks * (8 + 4 * n) + hicoo3.nnz * (n + 4)
        assert hicoo3.nbytes == expected

    def test_compression_wins_on_clustered_tensor(self):
        """A dense-ish cluster compresses well under HiCOO (paper claim)."""
        rng = np.random.default_rng(0)
        # entries concentrated in a 64^3 corner of a large tensor
        inds = rng.integers(0, 64, size=(5000, 3))
        inds = np.unique(inds, axis=0)
        t = COOTensor((100000, 100000, 100000), inds, rng.random(len(inds)))
        h = HiCOOTensor.from_coo(t, 128)
        assert h.compression_ratio() > 1.5

    def test_hypersparse_tensor_compresses_poorly(self):
        """One nnz per block: HiCOO overhead exceeds COO (motivates gHiCOO)."""
        t = COOTensor.random((2**20, 2**20, 2**20), nnz=2000, rng=1)
        h = HiCOOTensor.from_coo(t, 128)
        assert h.nnz_per_block().mean() < 1.5
        assert h.compression_ratio() < 1.0


class TestValidation:
    def test_inconsistent_bptr_rejected(self, coo3):
        h = HiCOOTensor.from_coo(coo3, 8)
        bad = h.bptr.copy()
        bad[-1] += 1
        with pytest.raises(Exception):
            HiCOOTensor(h.shape, 8, bad, h.binds, h.einds, h.values)

    def test_eind_overflow_rejected(self, coo3):
        h = HiCOOTensor.from_coo(coo3, 8)
        bad = h.einds.copy()
        bad[0, 0] = 9
        with pytest.raises(Exception):
            HiCOOTensor(h.shape, 8, h.bptr, h.binds, bad, h.values)
