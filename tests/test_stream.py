"""Tests for streaming tensor accumulation."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.generate import powerlaw_stream
from repro.sptensor import COOTensor
from repro.stream import SlidingWindowTensor, StreamingTensorBuilder


class TestStreamingBuilder:
    def test_duplicates_sum(self):
        b = StreamingTensorBuilder((4, 4))
        b.push(np.array([[0, 0], [0, 0], [1, 1]]), np.array([1.0, 2.0, 5.0]))
        t = b.finish()
        d = t.to_dense()
        assert d[0, 0] == 3.0 and d[1, 1] == 5.0
        assert t.nnz == 2

    def test_matches_one_shot_coalesce(self):
        rng = np.random.default_rng(0)
        shape = (50, 40, 8)
        coords = rng.integers(0, [50, 40, 8], size=(5000, 3))
        values = rng.random(5000)
        b = StreamingTensorBuilder(shape, merge_threshold=512)
        for lo in range(0, 5000, 700):
            b.push(coords[lo:lo + 700], values[lo:lo + 700])
        got = b.finish()
        want = COOTensor(shape, coords, values).coalesce()
        assert got.allclose(want, rtol=1e-5, atol=1e-6)

    def test_bounded_staging_triggers_merges(self):
        b = StreamingTensorBuilder((100, 100), merge_threshold=100)
        rng = np.random.default_rng(1)
        for _ in range(10):
            b.push(rng.integers(0, 100, size=(60, 2)), rng.random(60))
        assert b.merges >= 5
        assert b.events_seen == 600

    def test_consume_powerlaw_stream(self):
        shape = (300, 300, 6)
        b = StreamingTensorBuilder(shape, merge_threshold=1000)
        b.consume(powerlaw_stream(4000, shape, dense_modes=(2,), seed=2, batch=512))
        t = b.finish()
        assert b.events_seen == 4000
        assert 0 < t.nnz <= 4000  # hot keys revisited
        assert not t.has_duplicates()

    def test_empty_stream(self):
        b = StreamingTensorBuilder((5, 5))
        assert b.finish().nnz == 0

    def test_bad_batch_shapes(self):
        b = StreamingTensorBuilder((5, 5))
        with pytest.raises(ShapeError):
            b.push(np.zeros((3, 3), dtype=int), np.zeros(3))
        with pytest.raises(ShapeError):
            b.push(np.zeros((3, 2), dtype=int), np.zeros(2))

    def test_current_nnz_progresses(self):
        b = StreamingTensorBuilder((10, 10), merge_threshold=10**6)
        b.push(np.array([[1, 1]]), np.array([1.0]))
        assert b.current_nnz == 1


class TestSlidingWindow:
    def test_state_equals_window_sum(self):
        rng = np.random.default_rng(3)
        shape = (20, 20)
        w = SlidingWindowTensor(shape, window=3)
        batches = [
            (rng.integers(0, 20, size=(30, 2)), rng.random(30))
            for _ in range(6)
        ]
        for coords, values in batches:
            state = w.push(coords, values)
        # state must equal sum of the last 3 batches
        want = COOTensor.empty(shape).astype(np.float64)
        from repro.kernels import coo_tew

        for coords, values in batches[-3:]:
            want = coo_tew(want, COOTensor(shape, coords, values).coalesce(), "add")
        np.testing.assert_allclose(
            state.to_dense(), want.to_dense(), rtol=1e-5, atol=1e-6
        )
        assert w.nbatches == 3

    def test_eviction_removes_entries(self):
        w = SlidingWindowTensor((5, 5), window=1)
        w.push(np.array([[0, 0]]), np.array([1.0]))
        state = w.push(np.array([[4, 4]]), np.array([2.0]))
        d = state.to_dense()
        assert d[0, 0] == 0.0 and d[4, 4] == 2.0

    def test_window_validation(self):
        with pytest.raises(ShapeError):
            SlidingWindowTensor((5, 5), window=0)
        with pytest.raises(ValueError):
            SlidingWindowTensor((5, 5), window=2, eviction="nope")

    def test_push_validates_bounds_immediately(self):
        w = SlidingWindowTensor((5, 5), window=2)
        with pytest.raises(ShapeError):
            w.push(np.array([[5, 0]]), np.array([1.0]))
        b = StreamingTensorBuilder((5, 5))
        with pytest.raises(ShapeError):
            b.push(np.array([[0, -6]]), np.array([1.0]))

    def test_push_coerces_integer_values(self):
        b = StreamingTensorBuilder((5, 5), merge_threshold=10**6)
        b.push(np.array([[1, 2]]), np.array([3]))
        assert np.issubdtype(b._staged_values[0].dtype, np.floating)
        w = SlidingWindowTensor((5, 5), window=2)
        state = w.push(np.array([[1, 2]]), np.array([3]))
        assert np.issubdtype(state.values.dtype, np.floating)

    def test_push_copies_input_arrays(self):
        coords = np.array([[1, 1]])
        values = np.array([2.0])
        w = SlidingWindowTensor((5, 5), window=3)
        w.push(coords, values)
        coords[0, 0] = 4
        values[0] = 99.0
        assert w.state.to_dense()[1, 1] == 2.0

    def test_exact_nnz_vs_current_nnz(self):
        b = StreamingTensorBuilder((10, 10), merge_threshold=10**6)
        b.push(np.array([[1, 1], [1, 1]]), np.array([1.0, 2.0]))
        # staged duplicates are overcounted by the cheap upper bound
        assert b.current_nnz == 2
        assert b.exact_nnz() == 1
        assert b.current_nnz == 1  # post-merge the bound is tight


def _window_reference(shape, batches):
    """The invariant: coalesce the concatenation of the live batches."""
    if not batches:
        return COOTensor.empty(shape)
    coords = np.concatenate([np.asarray(c) for c, _ in batches], axis=0)
    values = np.concatenate(
        [np.asarray(v, dtype=np.float64) for _, v in batches]
    )
    return COOTensor(shape, coords, values).coalesce()


def _assert_bit_exact(state, want):
    assert state.shape == want.shape
    np.testing.assert_array_equal(state.indices, want.indices)
    assert state.values.dtype == want.values.dtype
    np.testing.assert_array_equal(
        state.values.view(np.uint8), want.values.view(np.uint8)
    )


class TestExactEviction:
    """The sliding window's exact mode is bit-identical to re-coalescing.

    These are the regression tests for the eviction-corruption bug: the
    old subtract-and-drop path destroyed genuine values <= its tolerance
    and drifted state through float residue.  ``test_subtract_mode_*``
    pin that the opt-in lossy mode still loses — i.e. they FAIL when run
    against the old default.
    """

    @pytest.mark.parametrize("window", [1, 3, 10])
    def test_random_stream_bit_exact(self, window):
        rng = np.random.default_rng(11)
        shape = (12, 9, 4)
        w = SlidingWindowTensor(shape, window=window)
        live = []
        for step in range(7):  # window 10 > nbatches: nothing ever evicts
            n = int(rng.integers(1, 40))
            coords = rng.integers(0, shape, size=(n, 3))
            values = rng.random(n, dtype=np.float64)
            state = w.push(coords, values)
            live.append((coords, values))
            live = live[-window:]
            _assert_bit_exact(state, _window_reference(shape, live))
        assert w.nbatches == min(7, window)
        assert w.evictions == max(0, 7 - window)
        assert w.version == 7

    def test_tiny_values_survive(self):
        # Genuine magnitudes below the old drop tolerance (1e-12) must
        # survive any number of evictions.
        shape = (4, 4)
        w = SlidingWindowTensor(shape, window=2)
        for i in range(5):
            state = w.push(np.array([[i % 4, 0]]), np.array([1e-15]))
        assert state.nnz == 2
        assert np.all(state.values == 1e-15)

    def test_exact_cancellation_keeps_explicit_zero(self):
        # +1 and -1 at the same coordinate in the live window sum to an
        # explicit 0.0 entry — coalesce() keeps it, so exact mode must.
        shape = (3, 3)
        w = SlidingWindowTensor(shape, window=2)
        w.push(np.array([[1, 1]]), np.array([1.0]))
        state = w.push(np.array([[1, 1]]), np.array([-1.0]))
        want = _window_reference(
            shape,
            [(np.array([[1, 1]]), np.array([1.0])),
             (np.array([[1, 1]]), np.array([-1.0]))],
        )
        assert want.nnz == 1  # the reference itself keeps the zero
        _assert_bit_exact(state, want)

    def test_no_float_residue_after_eviction(self):
        # 0.1 + 0.2 - 0.1 != 0.2 in binary floating point: the subtract
        # path leaves residue at [0,0]; exact mode is residue-free.
        shape = (2, 2)
        w = SlidingWindowTensor(shape, window=1)
        w.push(np.array([[0, 0]]), np.array([0.1]))
        state = w.push(np.array([[0, 0]]), np.array([0.2]))
        assert state.nnz == 1
        assert state.values[0] == np.float64(0.2)

    def test_subtract_mode_destroys_tiny_values(self):
        # The documented loss of the opt-in fast path (and the bug when
        # it was the only path): an eviction drops live tiny values.
        w = SlidingWindowTensor((4, 4), window=1, eviction="subtract")
        w.push(np.array([[0, 0]]), np.array([1.0]))
        state = w.push(np.array([[1, 1]]), np.array([1e-15]))
        assert state.nnz == 0  # the genuine 1e-15 entry is gone
        exact = SlidingWindowTensor((4, 4), window=1)
        exact.push(np.array([[0, 0]]), np.array([1.0]))
        state = exact.push(np.array([[1, 1]]), np.array([1e-15]))
        assert state.nnz == 1 and state.values[0] == 1e-15

    def test_subtract_mode_still_close_for_large_values(self):
        # The fast path remains available and approximately correct when
        # magnitudes stay far above the tolerance.
        rng = np.random.default_rng(5)
        shape = (15, 15)
        fast = SlidingWindowTensor(shape, window=3, eviction="subtract")
        exact = SlidingWindowTensor(shape, window=3)
        for _ in range(8):
            n = int(rng.integers(5, 30))
            coords = rng.integers(0, 15, size=(n, 2))
            values = rng.random(n) + 0.5
            f = fast.push(coords, values)
            e = exact.push(coords, values)
        np.testing.assert_allclose(
            f.to_dense(), e.to_dense(), rtol=1e-9, atol=1e-9
        )

    def test_powerlaw_stream_windowed_bit_exact(self):
        shape = (64, 64, 8)
        w = SlidingWindowTensor(shape, window=3)
        live = []
        for coords, values in powerlaw_stream(
            3000, shape, dense_modes=(2,), seed=9, batch=512
        ):
            state = w.push(coords, values)
            live.append((coords, values.astype(np.float64)))
            live = live[-3:]
        # reference in the same dtype the window accumulates
        coords = np.concatenate([c for c, _ in live], axis=0)
        values = np.concatenate([np.asarray(v) for _, v in live]).astype(
            np.float32
        )
        want = COOTensor(shape, coords, values).coalesce()
        _assert_bit_exact(state, want)
