"""Tests for streaming tensor accumulation."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.generate import powerlaw_stream
from repro.sptensor import COOTensor
from repro.stream import SlidingWindowTensor, StreamingTensorBuilder


class TestStreamingBuilder:
    def test_duplicates_sum(self):
        b = StreamingTensorBuilder((4, 4))
        b.push(np.array([[0, 0], [0, 0], [1, 1]]), np.array([1.0, 2.0, 5.0]))
        t = b.finish()
        d = t.to_dense()
        assert d[0, 0] == 3.0 and d[1, 1] == 5.0
        assert t.nnz == 2

    def test_matches_one_shot_coalesce(self):
        rng = np.random.default_rng(0)
        shape = (50, 40, 8)
        coords = rng.integers(0, [50, 40, 8], size=(5000, 3))
        values = rng.random(5000)
        b = StreamingTensorBuilder(shape, merge_threshold=512)
        for lo in range(0, 5000, 700):
            b.push(coords[lo:lo + 700], values[lo:lo + 700])
        got = b.finish()
        want = COOTensor(shape, coords, values).coalesce()
        assert got.allclose(want, rtol=1e-5, atol=1e-6)

    def test_bounded_staging_triggers_merges(self):
        b = StreamingTensorBuilder((100, 100), merge_threshold=100)
        rng = np.random.default_rng(1)
        for _ in range(10):
            b.push(rng.integers(0, 100, size=(60, 2)), rng.random(60))
        assert b.merges >= 5
        assert b.events_seen == 600

    def test_consume_powerlaw_stream(self):
        shape = (300, 300, 6)
        b = StreamingTensorBuilder(shape, merge_threshold=1000)
        b.consume(powerlaw_stream(4000, shape, dense_modes=(2,), seed=2, batch=512))
        t = b.finish()
        assert b.events_seen == 4000
        assert 0 < t.nnz <= 4000  # hot keys revisited
        assert not t.has_duplicates()

    def test_empty_stream(self):
        b = StreamingTensorBuilder((5, 5))
        assert b.finish().nnz == 0

    def test_bad_batch_shapes(self):
        b = StreamingTensorBuilder((5, 5))
        with pytest.raises(ShapeError):
            b.push(np.zeros((3, 3), dtype=int), np.zeros(3))
        with pytest.raises(ShapeError):
            b.push(np.zeros((3, 2), dtype=int), np.zeros(2))

    def test_current_nnz_progresses(self):
        b = StreamingTensorBuilder((10, 10), merge_threshold=10**6)
        b.push(np.array([[1, 1]]), np.array([1.0]))
        assert b.current_nnz == 1


class TestSlidingWindow:
    def test_state_equals_window_sum(self):
        rng = np.random.default_rng(3)
        shape = (20, 20)
        w = SlidingWindowTensor(shape, window=3)
        batches = [
            (rng.integers(0, 20, size=(30, 2)), rng.random(30))
            for _ in range(6)
        ]
        for coords, values in batches:
            state = w.push(coords, values)
        # state must equal sum of the last 3 batches
        want = COOTensor.empty(shape).astype(np.float64)
        from repro.kernels import coo_tew

        for coords, values in batches[-3:]:
            want = coo_tew(want, COOTensor(shape, coords, values).coalesce(), "add")
        np.testing.assert_allclose(
            state.to_dense(), want.to_dense(), rtol=1e-5, atol=1e-6
        )
        assert w.nbatches == 3

    def test_eviction_removes_entries(self):
        w = SlidingWindowTensor((5, 5), window=1)
        w.push(np.array([[0, 0]]), np.array([1.0]))
        state = w.push(np.array([[4, 4]]), np.array([2.0]))
        d = state.to_dense()
        assert d[0, 0] == 0.0 and d[4, 4] == 2.0

    def test_window_validation(self):
        with pytest.raises(ShapeError):
            SlidingWindowTensor((5, 5), window=0)
