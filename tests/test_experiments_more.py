"""Additional harness tests: observations, device scaling, GPU figures."""

import numpy as np
import pytest

from repro.bench import RunnerConfig, observations
from repro.bench.experiments import EXPERIMENTS, _dataset
from repro.gpu.device import P100, V100


class TestDeviceScaling:
    def test_scaled_shrinks_concurrency_and_overhead(self):
        s = P100.scaled(1000)
        assert s.sm_count < P100.sm_count
        assert s.sm_count >= 2
        assert s.launch_overhead_s == pytest.approx(
            P100.launch_overhead_s / 1000
        )

    def test_rates_untouched(self):
        s = V100.scaled(500)
        assert s.dram_bw_gbs == V100.dram_bw_gbs
        assert s.atomic_gups == V100.atomic_gups
        assert s.peak_sp_gflops == V100.peak_sp_gflops

    def test_scale_one_is_identity(self):
        assert P100.scaled(1.0) is P100
        assert P100.scaled(0.5) is P100


class TestDatasetHelper:
    def test_real_and_synthetic(self):
        real = _dataset("real", 20000, 0, keys=["vast"])
        syn = _dataset("synthetic", 20000, 0, keys=["irrS"])
        assert set(real) == {"vast"}
        assert set(syn) == {"irrS"}

    def test_unknown_kind(self):
        with pytest.raises(ValueError):
            _dataset("imaginary", 1000, 0)


class TestObservationsSubset:
    def test_runs_on_tiny_subset(self):
        """Fast smoke of the Observations machinery (full run is a bench).

        Only the structural integrity is asserted here — tiny subsets are
        not expected to satisfy every qualitative claim."""
        rep = observations(
            scale=20000,
            keys_real=["vast", "nell2"],
            keys_syn=["irrS", "regS"],
            config=RunnerConfig(measure_host=False, cache_scale=20000),
        )
        assert rep.exp_id == "observations"
        obs_ids = {row[0] for row in rep.rows}
        assert obs_ids == {"1", "2", "3", "4", "5"}
        assert all(row[-1] in ("yes", "NO") for row in rep.rows)


class TestExperimentRegistry:
    def test_all_ids_registered(self):
        assert set(EXPERIMENTS) == {
            "table1", "table2", "table3", "table4",
            "fig3", "fig4", "fig5", "fig6", "fig7", "observations",
            "sweep-nnz", "sweep-rank", "sweep-density", "sweep-blocksize",
        }

    def test_sweep_experiment_runs(self):
        rep = EXPERIMENTS["sweep-blocksize"](scale=1000.0)
        assert rep.rows

    @pytest.mark.parametrize("exp", ["table1", "table2", "table3", "table4", "fig3"])
    def test_cheap_experiments_run(self, exp):
        rep = EXPERIMENTS[exp](scale=1000.0)
        assert rep.rows
