"""Tests for distributed trace-context propagation (repro.obs.context).

Covers the context dataclass and its wire/env round-trips, thread-local
vs process-global scoping for both contexts and tracers, the Trace
serialization that carries worker-subprocess spans home in verdicts,
multi-process trace merging, registry absorption, and the end-to-end
regression that a sharded process-isolation sweep's merged Chrome trace
contains the worker subprocesses' kernel spans — the telemetry that used
to be silently lost.
"""

from __future__ import annotations

import json
import threading

import pytest

from repro.bench import ExecutorConfig, RunStore, SuiteExecutor
from repro.obs import (
    MetricsRegistry,
    Trace,
    Tracer,
    get_metrics,
    merge_traces,
    set_metrics,
)
from repro.obs.context import (
    TRACE_ENV,
    ContextError,
    TraceContext,
    activate_context,
    current_context,
    derive_span_id,
    install_context,
    new_trace_id,
)
from repro.obs.tracer import CAT_KERNEL, current_tracer, scoped_tracer

from test_executor import tiny_cases


@pytest.fixture(autouse=True)
def _clean_scopes():
    """No test may leak an installed context/tracer into the next."""
    yield
    install_context(None)


# ---------------------------------------------------------------------- #
# TraceContext
# ---------------------------------------------------------------------- #


class TestTraceContext:
    def test_round_trips_through_dict(self):
        ctx = TraceContext(
            trace_id="cafe", parent_span="beef", baggage={"op": "sweep"}
        )
        back = TraceContext.from_dict(json.loads(json.dumps(ctx.to_dict())))
        assert back == ctx
        assert back.trace_id == "cafe"
        assert back.parent_span == "beef"
        assert dict(back.baggage) == {"op": "sweep"}

    def test_round_trips_through_env(self):
        ctx = TraceContext(trace_id="cafe", baggage={"k": "v"})
        env = {TRACE_ENV: ctx.to_env()}
        assert TraceContext.from_env(env) == ctx

    def test_from_env_is_none_on_missing_or_garbage(self):
        assert TraceContext.from_env({}) is None
        assert TraceContext.from_env({TRACE_ENV: "not json"}) is None
        assert TraceContext.from_env({TRACE_ENV: '{"trace_id": ""}'}) is None

    def test_empty_trace_id_rejected(self):
        with pytest.raises(ContextError):
            TraceContext(trace_id="")
        with pytest.raises(ContextError):
            TraceContext.from_dict({"trace_id": "x", "surprise": 1})

    def test_child_rebases_parent_span(self):
        ctx = TraceContext(trace_id="cafe", parent_span="old")
        kid = ctx.child("new")
        assert kid.trace_id == "cafe"
        assert kid.parent_span == "new"
        assert ctx.parent_span == "old"  # frozen; child does not mutate

    def test_new_trace_id_is_unique_hex(self):
        ids = {new_trace_id() for _ in range(64)}
        assert len(ids) == 64
        assert all(len(i) == 16 and int(i, 16) >= 0 for i in ids)

    def test_derive_span_id_deterministic(self):
        a = derive_span_id("cafe", "fp", 0)
        assert a == derive_span_id("cafe", "fp", 0)
        assert a != derive_span_id("cafe", "fp", 1)
        assert a != derive_span_id("feed", "fp", 0)
        assert len(a) == 16


class TestContextScoping:
    def test_default_is_none(self):
        assert current_context() is None

    def test_activate_restores_previous(self):
        outer = TraceContext(trace_id="aa")
        inner = TraceContext(trace_id="bb")
        with activate_context(outer):
            assert current_context() == outer
            with activate_context(inner):
                assert current_context() == inner
            assert current_context() == outer
        assert current_context() is None

    def test_install_is_global_and_returns_previous(self):
        ctx = TraceContext(trace_id="aa")
        assert install_context(ctx) is None
        assert current_context() == ctx
        seen = []
        t = threading.Thread(target=lambda: seen.append(current_context()))
        t.start()
        t.join()
        assert seen == [ctx]  # global fallback crosses threads
        assert install_context(None) == ctx
        assert current_context() is None

    def test_thread_scope_overrides_global(self):
        glob = TraceContext(trace_id="aa")
        local = TraceContext(trace_id="bb")
        install_context(glob)
        with activate_context(local):
            assert current_context() == local
            seen = []
            t = threading.Thread(target=lambda: seen.append(current_context()))
            t.start()
            t.join()
            assert seen == [glob]  # the overlay is thread-local
        assert current_context() == glob


class TestTracerScoping:
    def test_scoped_tracer_overlays_installed(self):
        installed = Tracer(trace_id="aa").install()
        scoped = Tracer(trace_id="bb")
        try:
            assert current_tracer() is installed
            with scoped_tracer(scoped):
                assert current_tracer() is scoped
                seen = []
                t = threading.Thread(
                    target=lambda: seen.append(current_tracer())
                )
                t.start()
                t.join()
                assert seen == [installed]
            assert current_tracer() is installed
        finally:
            installed.uninstall()


# ---------------------------------------------------------------------- #
# Trace wire format and multi-process merge
# ---------------------------------------------------------------------- #


def worker_trace(trace_id="cafe", parent_span="feed", t_shift=0.0):
    tracer = Tracer(
        trace_id=trace_id,
        meta={"process": "worker fp0", "parent_span": parent_span},
    )
    with tracer:
        with tracer.span("run.mttkrp", cat=CAT_KERNEL, tensor="tiny"):
            tracer.count("kernel.nnz_processed", 64)
    trace = tracer.freeze()
    if t_shift:
        object.__setattr__(trace, "epoch_offset_s", trace.epoch_offset_s + t_shift)
    return trace


class TestTraceWire:
    def test_trace_round_trips_through_json(self):
        trace = worker_trace()
        back = Trace.from_dict(json.loads(json.dumps(trace.to_dict())))
        assert len(back.events) == len(trace.events)
        got, want = back.events[0], trace.events[0]
        assert (got.name, got.cat, got.t0, got.t1, got.attrs) == (
            want.name, want.cat, want.t0, want.t1, want.attrs
        )
        assert back.counters == trace.counters
        assert back.meta == trace.meta
        assert back.epoch_offset_s == trace.epoch_offset_s

    def test_adopted_children_survive_freeze_and_wire(self):
        parent = Tracer(trace_id="cafe", meta={"process": "daemon"})
        with parent:
            with parent.span("serve.sweep", cat="request", span_id="feed"):
                parent.adopt(worker_trace())
        root = parent.freeze()
        assert len(root.children) == 1
        back = Trace.from_dict(json.loads(json.dumps(root.to_dict())))
        assert len(back.children) == 1
        assert back.children[0].meta["process"] == "worker fp0"

    def test_merge_rebases_cross_process_timestamps(self):
        parent = Tracer(trace_id="cafe", meta={"process": "daemon"})
        with parent:
            with parent.span("serve.sweep", cat="request", span_id="feed"):
                pass
        # A child whose wall-clock anchor sits 5s later than the parent's
        # must land 5s later on the merged timeline, whatever its raw
        # perf_counter values were.
        kid = worker_trace(t_shift=5.0)
        doc = merge_traces(parent.freeze(), children=[kid])
        spans = {e["pid"]: e for e in doc["traceEvents"] if e["ph"] == "X"}
        assert set(spans) == {0, 1}
        assert spans[1]["ts"] - spans[0]["ts"] >= 4.9e6  # microseconds

    def test_merge_without_children_is_single_process(self):
        tracer = Tracer(meta={"process": "main"})
        with tracer:
            with tracer.span("outer", cat=CAT_KERNEL):
                pass
        doc = merge_traces(tracer.freeze())
        assert doc["otherData"]["processes"] == 1
        assert all(e["pid"] == 0 for e in doc["traceEvents"])
        assert not [e for e in doc["traceEvents"] if e.get("cat") == "flow"]


# ---------------------------------------------------------------------- #
# Registry quantiles and cross-process absorption
# ---------------------------------------------------------------------- #


class TestRegistryQuantiles:
    def test_quantiles_from_observation_window(self):
        reg = MetricsRegistry()
        for v in (0.01, 0.02, 0.03):
            reg.observe("case_s", v, kernel="ttv")
        q = reg.histogram_quantiles("case_s", kernel="ttv")
        assert q["p50"] == pytest.approx(0.02)
        assert q["p95"] >= q["p50"]
        assert reg.histogram_quantiles("case_s") == q  # pooled across labels

    def test_quantiles_none_when_empty(self):
        reg = MetricsRegistry()
        assert reg.histogram_quantiles("missing") is None
        reg.inc("some.counter")
        assert reg.histogram_quantiles("some.counter") is None

    def test_absorbed_histograms_merge_but_carry_no_window(self):
        worker = MetricsRegistry()
        worker.inc("exec.completed", 2, kernel="ts")
        worker.observe("case_s", 0.04, buckets=(0.01, 0.1), kernel="ts")
        parent = MetricsRegistry()
        parent.observe("case_s", 0.02, buckets=(0.01, 0.1), kernel="ts")
        parent.absorb_dict(json.loads(json.dumps(worker.as_dict())))
        dump = parent.as_dict()
        assert dump["counters"]["exec.completed"][0]["value"] == 2
        (series,) = dump["histograms"]["case_s"]
        assert series["count"] == 2
        assert series["sum"] == pytest.approx(0.06)
        # The bounded quantile reservoir is local-only: absorbing a dump
        # merges buckets, not samples.
        q = parent.histogram_quantiles("case_s", kernel="ts")
        assert q["p50"] == pytest.approx(0.02)

    def test_as_dict_exposes_quantiles(self):
        reg = MetricsRegistry()
        reg.observe("case_s", 0.02, kernel="ts")
        (series,) = reg.as_dict()["histograms"]["case_s"]
        assert series["quantiles"]["p50"] == pytest.approx(0.02)


# ---------------------------------------------------------------------- #
# Worker verdict telemetry (in-process worker.main)
# ---------------------------------------------------------------------- #


def run_worker(tmp_path, payload):
    from repro.bench import worker

    case_json = tmp_path / "case.json"
    verdict_json = tmp_path / "verdict.json"
    case_json.write_text(json.dumps(payload))
    assert worker.main([str(case_json), str(verdict_json)]) == 0
    return json.loads(verdict_json.read_text())


class TestWorkerVerdictTelemetry:
    def test_untraced_verdict_is_unchanged(self, tmp_path, monkeypatch):
        monkeypatch.delenv(TRACE_ENV, raising=False)
        case = tiny_cases()[0]
        verdict = run_worker(tmp_path, {"case": case.to_dict(), "attempt": 0})
        assert verdict["ok"] is True
        assert set(verdict) == {
            "ok", "fingerprint", "seed", "record", "elapsed_s"
        }

    def test_traced_verdict_carries_spans_and_metrics(self, tmp_path):
        case = tiny_cases()[0]
        ctx = TraceContext(trace_id="cafe", parent_span="feed")
        verdict = run_worker(
            tmp_path,
            {"case": case.to_dict(), "attempt": 0, "trace": ctx.to_dict()},
        )
        assert verdict["ok"] is True
        trace = Trace.from_dict(verdict["trace"])
        assert trace.meta["trace_id"] == "cafe"
        assert trace.meta["parent_span"] == "feed"
        kernel_spans = trace.spans(CAT_KERNEL)
        assert any(s.name.startswith("run.") for s in kernel_spans)
        assert isinstance(verdict["metrics"], dict)

    def test_env_context_reaches_worker(self, tmp_path, monkeypatch):
        case = tiny_cases()[0]
        ctx = TraceContext(trace_id="feed")
        monkeypatch.setenv(TRACE_ENV, ctx.to_env())
        verdict = run_worker(tmp_path, {"case": case.to_dict(), "attempt": 0})
        assert verdict["trace"]["meta"]["trace_id"] == "feed"


# ---------------------------------------------------------------------- #
# End-to-end: sharded process-isolation sweep folds worker spans home
# ---------------------------------------------------------------------- #


class TestSweepTraceFold:
    def sweep(self, tmp_path, traced: bool):
        cases = tiny_cases(names=("a", "b"))
        store = RunStore(tmp_path / ("traced.jsonl" if traced else "plain.jsonl"))
        executor = SuiteExecutor(
            cases, store, ExecutorConfig(isolation="process", timeout_s=120.0)
        )
        tracer = None
        if traced:
            ctx = TraceContext(trace_id=new_trace_id())
            tracer = Tracer(
                trace_id=ctx.trace_id, meta={"process": "sweep"}
            ).install()
            install_context(ctx)
        try:
            report = executor.run()
        finally:
            if tracer is not None:
                tracer.uninstall()
                install_context(None)
        assert len(report.completed) == len(cases)
        return store.load(), tracer

    def test_merged_trace_contains_worker_kernel_spans(self, tmp_path):
        prev = get_metrics()
        set_metrics(MetricsRegistry())
        try:
            _state, tracer = self.sweep(tmp_path, traced=True)
        finally:
            set_metrics(prev)
        root = tracer.freeze()
        # Regression: worker-subprocess telemetry used to be dropped on
        # the floor. Every executed case's subprocess trace must have
        # been adopted, carrying its kernel spans.
        assert len(root.children) == 2
        for kid in root.children:
            assert kid.meta["trace_id"] == root.meta["trace_id"]
            assert any(
                s.name.startswith("run.") for s in kid.spans(CAT_KERNEL)
            )
        doc = merge_traces(root, trace_id=root.meta["trace_id"])
        assert doc["otherData"]["processes"] == 3
        kernel_spans = [
            e for e in doc["traceEvents"]
            if e["ph"] == "X" and e.get("cat") == CAT_KERNEL and e["pid"] != 0
        ]
        assert kernel_spans, "no worker kernel spans in the merged trace"
        flows = [e for e in doc["traceEvents"] if e.get("cat") == "flow"]
        assert {e["ph"] for e in flows} == {"s", "f"}
        assert len(flows) == 4  # one s/f pair per worker process

    def test_tracing_off_changes_no_records(self, tmp_path):
        prev = get_metrics()
        set_metrics(MetricsRegistry())
        try:
            plain, _ = self.sweep(tmp_path, traced=False)
            traced, _ = self.sweep(tmp_path, traced=True)
        finally:
            set_metrics(prev)
        assert sorted(plain.records) == sorted(traced.records)
        for fp in plain.records:
            assert plain.records[fp]["record"] == traced.records[fp]["record"]


class TestAbsorbVerdict:
    def test_malformed_telemetry_is_tolerated(self):
        from repro.bench.executor import CaseRunner

        runner = CaseRunner(ExecutorConfig(isolation="inline"))
        tracer = Tracer(trace_id="cafe").install()
        try:
            # Garbage shapes must not raise — they log and move on.
            runner._absorb_verdict({"trace": {"events": "nope"}})
            runner._absorb_verdict({"metrics": "nope"})
            runner._absorb_verdict({})
        finally:
            tracer.uninstall()
