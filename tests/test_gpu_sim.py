"""Tests for the simulated GPU substrate."""

import numpy as np
import pytest

from repro.gpu import (
    P100,
    V100,
    DeviceSpec,
    atomic_time,
    effective_bandwidth,
    get_device,
    gpu_coo_mttkrp,
    gpu_hicoo_mttkrp,
    gpu_tew,
    gpu_ts,
    gpu_ttm,
    gpu_ttv,
    memory_time,
)
from repro.kernels import dense_mttkrp, dense_ttm, dense_ttv
from repro.roofline.platform import BLUESKY
from repro.sptensor import COOTensor, HiCOOTensor


@pytest.fixture(scope="module")
def x():
    return COOTensor.random((400, 300, 50), nnz=15_000, rng=7).astype(np.float64)


@pytest.fixture(scope="module")
def h(x):
    return HiCOOTensor.from_coo(x, 64)


@pytest.fixture(scope="module")
def mats(x):
    rng = np.random.default_rng(0)
    return [rng.random((s, 8)) for s in x.shape]


class TestDevices:
    def test_paper_parameters(self):
        assert P100.sm_count == 56 and V100.sm_count == 80
        assert V100.llc_bytes == 2 * P100.llc_bytes
        assert V100.atomic_gups > P100.atomic_gups
        assert V100.address_overlap > P100.address_overlap

    def test_lookup(self):
        assert get_device("p100") is P100
        assert get_device("DGX-1V") is V100
        with pytest.raises(KeyError):
            get_device("a100")

    def test_cpu_platform_rejected(self):
        with pytest.raises(ValueError):
            DeviceSpec.from_platform(BLUESKY)


class TestCostModel:
    def test_memory_time_converges_to_bandwidth(self):
        """Many balanced blocks -> total_bytes / BW."""
        blocks = np.full(10_000, 4096.0)
        t, imb, bw, res = memory_time(P100, blocks, working_set_bytes=float("inf"))
        ideal = blocks.sum() / (P100.dram_bw_gbs * 1e9)
        assert t == pytest.approx(ideal, rel=0.05)
        assert imb == pytest.approx(1.0, rel=0.05)
        assert not res

    def test_single_block_cannot_saturate(self):
        """One block gets 1/W of the device bandwidth."""
        t, imb, _, _ = memory_time(P100, np.array([1e6]), float("inf"))
        ideal = 1e6 / (P100.dram_bw_gbs * 1e9)
        assert t == pytest.approx(ideal * P100.max_concurrent_blocks, rel=0.01)
        assert imb == pytest.approx(P100.max_concurrent_blocks, rel=0.01)

    def test_imbalance_stretches_makespan(self):
        balanced = np.full(1000, 1000.0)
        skewed = balanced.copy()
        skewed[0] = 500_000.0
        t_b, _, _, _ = memory_time(P100, balanced, float("inf"))
        t_s, imb_s, _, _ = memory_time(P100, skewed, float("inf"))
        assert t_s > t_b
        assert imb_s > 1.5

    def test_cache_residency_boosts_bandwidth(self):
        blocks = np.full(1000, 512.0)
        _, _, bw_small, res_small = memory_time(P100, blocks, working_set_bytes=1024)
        _, _, bw_big, res_big = memory_time(P100, blocks, working_set_bytes=1e9)
        assert res_small and not res_big
        assert bw_small > bw_big

    def test_effective_bandwidth(self):
        bw, res = effective_bandwidth(V100, V100.llc_bytes - 1)
        assert res and bw == V100.llc_bw_gbs
        bw, res = effective_bandwidth(V100, V100.llc_bytes + 1)
        assert not res and bw == V100.dram_bw_gbs

    def test_atomic_time_scales(self):
        low = atomic_time(P100, 1e6, 1.0)
        high = atomic_time(P100, 1e6, 1000.0)
        assert high > low > 0
        assert atomic_time(P100, 0, 10.0) == 0.0

    def test_v100_atomics_faster(self):
        assert atomic_time(V100, 1e6, 50.0) < atomic_time(P100, 1e6, 50.0)

    def test_atomic_requires_gpu(self):
        cpu_like = DeviceSpec(
            name="cpu", sm_count=1, blocks_per_sm=1, threads_per_block=1,
            peak_sp_gflops=1, dram_bw_gbs=1, llc_bytes=1, llc_bw_gbs=1,
            atomic_gups=0.0,
        )
        with pytest.raises(ValueError):
            atomic_time(cpu_like, 10, 1.0)

    def test_empty_launch(self):
        t, imb, _, _ = memory_time(P100, np.zeros(0), None)
        assert t == 0.0 and imb == 1.0


class TestGpuKernels:
    def test_tew_value_correct(self, x):
        res = gpu_tew(x, x, "add", P100, assume_same_pattern=True)
        np.testing.assert_allclose(res.value.values, 2 * x.values)
        assert res.seconds > P100.launch_overhead_s

    def test_ts_value_correct(self, x):
        res = gpu_ts(x, 3.0, "mul", V100)
        np.testing.assert_allclose(res.value.values, 3 * x.values)

    def test_ttv_value_correct(self, x):
        v = np.random.default_rng(1).random(x.shape[2])
        res = gpu_ttv(x, v, 2, P100)
        np.testing.assert_allclose(
            res.value.to_dense(), dense_ttv(x.to_dense(), v, 2), rtol=1e-8
        )

    def test_ttm_value_correct(self, x, mats):
        res = gpu_ttm(x, mats[1], 1, V100)
        np.testing.assert_allclose(
            res.value.to_dense(), dense_ttm(x.to_dense(), mats[1], 1), rtol=1e-8
        )

    def test_mttkrp_value_correct(self, x, mats):
        res = gpu_coo_mttkrp(x, mats, 0, P100)
        np.testing.assert_allclose(
            res.value, dense_mttkrp(x.to_dense(), mats, 0), rtol=1e-8
        )

    def test_hicoo_mttkrp_matches_coo(self, x, h, mats):
        a = gpu_coo_mttkrp(x, mats, 0, V100)
        b = gpu_hicoo_mttkrp(h, mats, 0, V100)
        np.testing.assert_allclose(a.value, b.value, rtol=1e-8)

    def test_hicoo_kernels_accept_hicoo(self, h):
        res = gpu_ts(h, 2.0, "mul", P100)
        assert isinstance(res.value, HiCOOTensor)

    def test_gflops_helper(self, x):
        res = gpu_ts(x, 2.0, "mul", P100)
        assert res.gflops(x.nnz) == pytest.approx(x.nnz / res.seconds / 1e9)


class TestPaperStructure:
    """The structural GPU effects behind Observations 2 and 4."""

    def test_v100_mttkrp_faster_than_p100(self, x, mats):
        t_p = gpu_coo_mttkrp(x, mats, 0, P100).seconds
        t_v = gpu_coo_mttkrp(x, mats, 0, V100).seconds
        assert t_v < t_p

    def test_hicoo_mttkrp_not_faster_on_gpu(self, x, h, mats):
        t_coo = gpu_coo_mttkrp(x, mats, 0, V100).seconds
        t_hic = gpu_hicoo_mttkrp(h, mats, 0, V100).seconds
        assert t_hic >= 0.9 * t_coo

    def test_skewed_fibers_hurt_ttv(self):
        """A tensor with one giant fiber is slower than a balanced one of
        equal size (COO-Ttv-GPU load imbalance)."""
        rng = np.random.default_rng(3)
        n = 20_000
        balanced = COOTensor(
            (n // 4, 4, 50),
            np.stack(
                [np.repeat(np.arange(n // 4), 4)[:n],
                 np.tile(np.arange(4), n // 4)[:n],
                 rng.integers(0, 50, n)], axis=1,
            ),
            rng.random(n),
        ).coalesce()
        m = balanced.nnz
        skew_inds = np.stack(
            [np.zeros(m, dtype=np.int64),
             np.zeros(m, dtype=np.int64),
             rng.permutation(max(m, 50))[:m] % 50], axis=1,
        )
        # one fiber holds almost everything
        skew_inds[: m // 50, 2] = np.arange(m // 50) % 50
        skewed = COOTensor((n // 4, 4, 50), skew_inds, rng.random(m)).coalesce()
        v = rng.random(50)
        t_bal = gpu_ttv(balanced, v, 2, P100).timing
        t_skw = gpu_ttv(skewed, v, 2, P100).timing
        assert t_skw.imbalance > t_bal.imbalance
