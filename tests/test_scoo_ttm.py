"""Tests for the semi-sparse Ttm kernel and TTM-chain."""

import numpy as np
import pytest

from repro.errors import FormatError, ShapeError
from repro.kernels import coo_ttm, scoo_ttm, scoo_ttm_chain
from repro.methods import ttm_chain
from repro.sptensor import COOTensor, SemiCOOTensor


def dense_ttm_at(d, u, mode):
    return np.moveaxis(np.tensordot(d, u, axes=([mode], [0])), -1, mode)


@pytest.fixture(scope="module")
def x4():
    return COOTensor.random((12, 10, 9, 8), nnz=400, rng=2).astype(np.float64)


@pytest.fixture(scope="module")
def mats(x4):
    rng = np.random.default_rng(0)
    return {m: rng.random((s, m + 2)) for m, s in enumerate(x4.shape)}


class TestScooTtm:
    def test_second_contraction_matches_dense(self, x4, mats):
        d = x4.to_dense()
        semi = coo_ttm(x4, mats[1], 1)
        out = scoo_ttm(semi, mats[3], 3)
        want = dense_ttm_at(dense_ttm_at(d, mats[1], 1), mats[3], 3)
        np.testing.assert_allclose(out.to_dense(), want, rtol=1e-9)

    def test_dense_mode_ordering(self, x4, mats):
        """Contracting a mode *before* the existing dense mode must slot
        the new axis correctly."""
        d = x4.to_dense()
        semi = coo_ttm(x4, mats[2], 2)
        out = scoo_ttm(semi, mats[0], 0)
        assert out.dense_modes == (0, 2)
        want = dense_ttm_at(dense_ttm_at(d, mats[2], 2), mats[0], 0)
        np.testing.assert_allclose(out.to_dense(), want, rtol=1e-9)

    def test_already_dense_mode_rejected(self, x4, mats):
        semi = coo_ttm(x4, mats[1], 1)
        with pytest.raises(FormatError):
            scoo_ttm(semi, mats[1], 1)

    def test_last_sparse_mode_rejected(self):
        x = COOTensor.random((6, 5), nnz=15, rng=1).astype(np.float64)
        semi = coo_ttm(x, np.ones((5, 2)), 1)
        with pytest.raises(FormatError):
            scoo_ttm(semi, np.ones((6, 2)), 0)

    def test_bad_matrix(self, x4, mats):
        semi = coo_ttm(x4, mats[1], 1)
        with pytest.raises(ShapeError):
            scoo_ttm(semi, np.ones((99, 2)), 0)

    def test_sparse_structure_shrinks(self, x4, mats):
        semi1 = coo_ttm(x4, mats[1], 1)
        semi2 = scoo_ttm(semi1, mats[3], 3)
        assert len(semi2.sparse_modes) == 2
        assert semi2.nnz_sparse <= semi1.nnz_sparse


class TestScooChain:
    def test_matches_expanding_chain(self, x4, mats):
        order = [1, 3, 0]
        ms = [mats[m] for m in order]
        fast = scoo_ttm_chain(x4, ms, order)
        slow = ttm_chain(x4, ms, order)
        np.testing.assert_allclose(
            fast.to_dense(), slow.to_dense(), rtol=1e-9
        )

    def test_single_step(self, x4, mats):
        out = scoo_ttm_chain(x4, [mats[2]], [2])
        assert isinstance(out, SemiCOOTensor)
        np.testing.assert_allclose(
            out.to_dense(), dense_ttm_at(x4.to_dense(), mats[2], 2), rtol=1e-9
        )

    def test_all_modes_rejected(self, x4, mats):
        with pytest.raises(ShapeError):
            scoo_ttm_chain(x4, [mats[m] for m in range(4)], [0, 1, 2, 3])

    def test_duplicate_modes_rejected(self, x4, mats):
        with pytest.raises(ShapeError):
            scoo_ttm_chain(x4, [mats[1], mats[1]], [1, 1])

    def test_mismatched_lengths(self, x4, mats):
        with pytest.raises(ShapeError):
            scoo_ttm_chain(x4, [mats[1]], [1, 2])
