"""Tests for the Ttm kernel (COO→sCOO, HiCOO→sHiCOO) vs dense reference."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.kernels import coo_ttm, dense_ttm, ghicoo_ttm, hicoo_ttm, ttm
from repro.parallel import OpenMPBackend
from repro.sptensor import (
    COOTensor,
    GHiCOOTensor,
    HiCOOTensor,
    SemiCOOTensor,
    SemiHiCOOTensor,
)


def mat_for(shape, mode, r=6, seed=0, dtype=np.float64):
    return np.random.default_rng(seed).random((shape[mode], r)).astype(dtype)


class TestCooTtm:
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_matches_dense_all_modes(self, coo3, dense3, mode):
        x = coo3.astype(np.float64)
        u = mat_for(x.shape, mode, seed=mode)
        out = coo_ttm(x, u, mode)
        assert isinstance(out, SemiCOOTensor)
        np.testing.assert_allclose(out.to_dense(), dense_ttm(dense3, u, mode), rtol=1e-6)

    @pytest.mark.parametrize("mode", [0, 2, 3])
    def test_4th_order(self, coo4, dense4, mode):
        x = coo4.astype(np.float64)
        u = mat_for(x.shape, mode, r=3, seed=mode)
        out = coo_ttm(x, u, mode)
        np.testing.assert_allclose(out.to_dense(), dense_ttm(dense4, u, mode), rtol=1e-6)

    def test_output_semi_sparse_structure(self, coo3):
        u = mat_for(coo3.shape, 1, r=4)
        out = coo_ttm(coo3, u, 1)
        assert out.dense_modes == (1,)
        assert out.shape == (coo3.shape[0], 4, coo3.shape[2])
        assert out.nnz_sparse == coo3.num_fibers(1)

    def test_rank_one_matrix_matches_ttv(self, coo3):
        """Ttm with an R=1 matrix is Ttv with an extra unit mode."""
        from repro.kernels import coo_ttv

        x = coo3.astype(np.float64)
        v = np.random.default_rng(1).random(x.shape[2])
        out_ttm = coo_ttm(x, v[:, None], 2)
        out_ttv = coo_ttv(x, v, 2)
        np.testing.assert_allclose(
            out_ttm.to_dense()[:, :, 0], out_ttv.to_dense(), rtol=1e-6
        )

    def test_wrong_matrix_rows(self, coo3):
        with pytest.raises(ShapeError):
            coo_ttm(coo3, np.ones((coo3.shape[0] + 1, 4)), 0)

    def test_vector_rejected(self, coo3):
        with pytest.raises(ShapeError):
            coo_ttm(coo3, np.ones(coo3.shape[0]), 0)


class TestHicooTtm:
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_matches_dense(self, coo3, dense3, mode):
        h = HiCOOTensor.from_coo(coo3.astype(np.float64), 8)
        u = mat_for(coo3.shape, mode, seed=10 + mode)
        out = hicoo_ttm(h, u, mode)
        assert isinstance(out, SemiHiCOOTensor)
        np.testing.assert_allclose(out.to_dense(), dense_ttm(dense3, u, mode), rtol=1e-6)

    def test_ghicoo_requires_uncompressed_mode(self, coo3):
        g = GHiCOOTensor.from_coo(coo3, 8, (0, 1, 2))
        with pytest.raises(ShapeError):
            ghicoo_ttm(g, np.ones((coo3.shape[2], 4)), 2)

    def test_ghicoo_direct(self, coo3, dense3):
        g = GHiCOOTensor.from_coo(coo3.astype(np.float64), 8, (0, 2))
        u = mat_for(coo3.shape, 1, seed=7)
        out = ghicoo_ttm(g, u, 1)
        np.testing.assert_allclose(out.to_dense(), dense_ttm(dense3, u, 1), rtol=1e-6)

    def test_empty(self):
        g = GHiCOOTensor.from_coo(COOTensor.empty((6, 6, 6)), 4, (0, 1))
        out = ghicoo_ttm(g, np.ones((6, 3)), 2)
        assert out.nnz_sparse == 0


class TestTtmParallel:
    def test_openmp_matches_sequential(self, coo3):
        x = coo3.astype(np.float64)
        u = mat_for(x.shape, 2, seed=8)
        ref = coo_ttm(x, u, 2)
        be = OpenMPBackend(nthreads=4)
        try:
            got = coo_ttm(x, u, 2, backend=be, schedule="dynamic")
            np.testing.assert_allclose(got.to_dense(), ref.to_dense(), rtol=1e-12)
        finally:
            be.shutdown()

    def test_dispatcher(self, coo3, hicoo3):
        u = mat_for(coo3.shape, 0, seed=9)
        a = ttm(coo3, u, 0)
        b = ttm(hicoo3, u, 0)
        np.testing.assert_allclose(b.to_dense(), a.to_dense(), rtol=1e-4)
