"""Tests for performance metrics and aggregation."""

import pytest

from repro.metrics import (
    PerfRecord,
    average_efficiency,
    average_gflops,
    efficiency,
    geomean,
    gflops,
    gflops_range,
    group_by,
    mean_over_modes,
)


def rec(tensor="t", kernel="tew", fmt="coo", g=10.0, bound=20.0):
    return PerfRecord(
        tensor=tensor,
        kernel=kernel,
        fmt=fmt,
        platform="Bluesky",
        flops=1e9,
        seconds=0.1,
        gflops=g,
        bound_gflops=bound,
        efficiency=g / bound,
    )


class TestBasics:
    def test_gflops(self):
        assert gflops(2e9, 1.0) == pytest.approx(2.0)
        assert gflops(1e9, 0.0) == 0.0

    def test_efficiency(self):
        assert efficiency(10, 20) == pytest.approx(0.5)
        assert efficiency(10, 0) == 0.0

    def test_record_row(self):
        r = rec()
        row = r.as_row()
        assert row[0] == "t" and row[4] == 10.0

    def test_mean_over_modes(self):
        assert mean_over_modes([1.0, 2.0, 3.0]) == pytest.approx(2.0)
        assert mean_over_modes([]) == 0.0

    def test_geomean(self):
        assert geomean([1.0, 100.0]) == pytest.approx(10.0)
        assert geomean([]) == 0.0
        assert geomean([0.0, -1.0]) == 0.0  # non-positive dropped


class TestAggregation:
    @pytest.fixture
    def records(self):
        return [
            rec("a", "tew", "coo", 10.0),
            rec("b", "tew", "coo", 30.0),
            rec("a", "tew", "hicoo", 40.0),
            rec("a", "ttv", "coo", 2.0, bound=10.0),
        ]

    def test_group_by(self, records):
        groups = group_by(records, "kernel")
        assert set(groups) == {("tew",), ("ttv",)}
        assert len(groups[("tew",)]) == 3

    def test_average_gflops(self, records):
        avg = average_gflops(records)
        assert avg[("tew", "coo")] == pytest.approx(20.0)
        assert avg[("tew", "hicoo")] == pytest.approx(40.0)

    def test_average_efficiency(self, records):
        avg = average_efficiency(records)
        assert avg[("ttv", "coo")] == pytest.approx(0.2)

    def test_gflops_range(self, records):
        lo, hi = gflops_range(records)
        assert lo == 2.0 and hi == 40.0
        assert gflops_range([]) == (0.0, 0.0)
