"""Tests for performance metrics and aggregation."""

import pytest

from repro.metrics import (
    PerfRecord,
    average_efficiency,
    average_gflops,
    bootstrap_ci,
    drop_nonpositive,
    efficiency,
    geomean,
    geomean_detail,
    geomean_ratio_ci,
    gflops,
    gflops_range,
    group_by,
    mean_over_modes,
)


def rec(tensor="t", kernel="tew", fmt="coo", g=10.0, bound=20.0):
    return PerfRecord(
        tensor=tensor,
        kernel=kernel,
        fmt=fmt,
        platform="Bluesky",
        flops=1e9,
        seconds=0.1,
        gflops=g,
        bound_gflops=bound,
        efficiency=g / bound,
    )


class TestBasics:
    def test_gflops(self):
        assert gflops(2e9, 1.0) == pytest.approx(2.0)
        assert gflops(1e9, 0.0) == 0.0

    def test_efficiency(self):
        assert efficiency(10, 20) == pytest.approx(0.5)
        assert efficiency(10, 0) == 0.0

    def test_record_row(self):
        r = rec()
        row = r.as_row()
        assert row[0] == "t" and row[4] == 10.0

    def test_mean_over_modes(self):
        assert mean_over_modes([1.0, 2.0, 3.0]) == pytest.approx(2.0)
        assert mean_over_modes([]) == 0.0

    def test_geomean(self):
        assert geomean([1.0, 100.0]) == pytest.approx(10.0)
        # No data is None, not a fake 0.0 measurement.
        assert geomean([]) is None
        assert geomean([0.0, -1.0]) is None  # non-positive dropped

    def test_geomean_detail_reports_dropped(self):
        detail = geomean_detail([2.0, 8.0, 0.0, -3.0])
        assert detail.value == pytest.approx(4.0)
        assert detail.n_used == 2
        assert detail.n_dropped == 2
        empty = geomean_detail([])
        assert empty.value is None and empty.n_dropped == 0

    def test_drop_nonpositive(self):
        kept, dropped = drop_nonpositive([1.0, 0.0, -2.0, 3.0])
        assert kept == [1.0, 3.0] and dropped == 2


class TestAggregation:
    @pytest.fixture
    def records(self):
        return [
            rec("a", "tew", "coo", 10.0),
            rec("b", "tew", "coo", 30.0),
            rec("a", "tew", "hicoo", 40.0),
            rec("a", "ttv", "coo", 2.0, bound=10.0),
        ]

    def test_group_by(self, records):
        groups = group_by(records, "kernel")
        assert set(groups) == {("tew",), ("ttv",)}
        assert len(groups[("tew",)]) == 3

    def test_average_gflops(self, records):
        avg = average_gflops(records)
        assert avg[("tew", "coo")] == pytest.approx(20.0)
        assert avg[("tew", "hicoo")] == pytest.approx(40.0)

    def test_average_efficiency(self, records):
        avg = average_efficiency(records)
        assert avg[("ttv", "coo")] == pytest.approx(0.2)

    def test_gflops_range(self, records):
        lo, hi = gflops_range(records)
        assert lo == 2.0 and hi == 40.0
        # An empty group has no range, not a (0, 0) one.
        assert gflops_range([]) is None


class TestBootstrap:
    def test_ci_brackets_the_mean(self):
        ci = bootstrap_ci([1.0, 2.0, 3.0, 4.0, 5.0], seed=7)
        assert ci.estimate == pytest.approx(3.0)
        assert ci.lo <= ci.estimate <= ci.hi
        assert ci.n == 5 and ci.confidence == 0.95

    def test_seeded_rng_is_reproducible(self):
        values = [1.1, 0.9, 1.3, 1.0, 1.2, 0.8]
        a = bootstrap_ci(values, seed=42)
        b = bootstrap_ci(values, seed=42)
        assert (a.lo, a.hi) == (b.lo, b.hi)
        c = bootstrap_ci(values, seed=43)
        assert (a.lo, a.hi) != (c.lo, c.hi)

    def test_empty_and_singleton(self):
        assert bootstrap_ci([]) is None
        ci = bootstrap_ci([2.5])
        assert (ci.estimate, ci.lo, ci.hi) == (2.5, 2.5, 2.5)

    def test_geomean_ratio_ci(self):
        # Identical ratios collapse to a degenerate interval at the value.
        ci = geomean_ratio_ci([2.0, 2.0, 2.0], seed=0)
        assert ci.estimate == pytest.approx(2.0)
        assert ci.lo == pytest.approx(2.0) and ci.hi == pytest.approx(2.0)
        # A consistent 2x slowdown excludes 1.0 with spread ratios too.
        ci = geomean_ratio_ci([1.9, 2.1, 2.0, 1.95, 2.05], seed=0)
        assert ci.excludes(1.0)
        assert geomean_ratio_ci([0.0, -1.0]) is None

    def test_ci_excludes(self):
        ci = bootstrap_ci([1.0, 1.0, 1.0])
        assert ci.excludes(2.0) and not ci.excludes(1.0)
