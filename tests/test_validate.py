"""Tests for the cross-format consistency checker."""

import numpy as np
import pytest

from repro.sptensor import COOTensor
from repro.validate import CheckResult, ValidationReport, validate_tensor


class TestValidateTensor:
    def test_random_tensor_passes(self):
        t = COOTensor.random((30, 25, 20), nnz=600, rng=0)
        report = validate_tensor(t, name="rnd", nthreads=2)
        assert report.passed, report.render()
        # full matrix: tew + ts + per-mode checks
        assert len(report.checks) > 20

    def test_4th_order_passes(self):
        t = COOTensor.random((10, 9, 8, 7), nnz=400, rng=1)
        report = validate_tensor(t, rank=4, block_size=4, nthreads=2)
        assert report.passed, report.render()

    def test_large_tensor_skips_dense(self):
        t = COOTensor.random((3000, 3000, 3000), nnz=500, rng=2)
        report = validate_tensor(t, nthreads=1, densify_limit=10_000)
        assert report.passed
        assert not any("vs dense" in c.name for c in report.checks)

    def test_render_mentions_status(self):
        t = COOTensor.random((12, 12, 12), nnz=100, rng=3)
        report = validate_tensor(t, nthreads=1)
        text = report.render()
        assert "PASSED" in text
        assert "mttkrp" in text


class TestReportMechanics:
    def test_shape_mismatch_fails(self):
        rep = ValidationReport("x")
        rep.add("bad", np.zeros(3), np.zeros(4), 1e-6, 1e-9)
        assert not rep.passed
        assert "shape" in rep.checks[0].detail

    def test_value_mismatch_fails(self):
        rep = ValidationReport("x")
        rep.add("off", np.array([1.0]), np.array([2.0]), 1e-6, 1e-9)
        assert not rep.passed
        assert rep.checks[0].max_error == pytest.approx(1.0)

    def test_close_values_pass(self):
        rep = ValidationReport("x")
        rep.add("ok", np.array([1.0 + 1e-12]), np.array([1.0]), 1e-6, 1e-9)
        assert rep.passed

    def test_check_result_fields(self):
        c = CheckResult("n", True, 0.5)
        assert c.name == "n" and c.passed and c.max_error == 0.5
