"""Tests for ASCII chart rendering."""

import pytest

from repro.metrics import PerfRecord
from repro.util.charts import _bar, grouped_bars, perf_records_chart


class TestBar:
    def test_full_bar(self):
        assert _bar(10, 10, 8, log=False) == "████████"

    def test_half_bar(self):
        assert len(_bar(5, 10, 8, log=False)) in (4, 5)

    def test_zero_and_negative(self):
        assert _bar(0, 10, 8, log=False) == ""
        assert _bar(-1, 10, 8, log=False) == ""

    def test_log_compression(self):
        small = len(_bar(1.0, 1000, 30, log=True))
        mid = len(_bar(100.0, 1000, 30, log=True))
        assert small < mid < 30 + 1

    def test_fractional_glyphs(self):
        out = _bar(1, 16, 8, log=False)
        assert out in ("▌", "▍")  # 1/16 of 8 cells = half a cell


class TestGroupedBars:
    def test_structure(self):
        out = grouped_bars({"t1": {"a": 1.0, "b": 2.0}}, width=10)
        lines = out.splitlines()
        assert lines[0] == "t1"
        assert "a" in lines[1] and "1.00" in lines[1]
        assert "b" in lines[2] and "2.00" in lines[2]

    def test_empty(self):
        assert grouped_bars({}) == "(no data)"

    def test_marker_tick(self):
        out = grouped_bars(
            {"t": {"k": 5.0}},
            width=20,
            marker={("t", "k"): 10.0},
        )
        assert "|" in out
        assert "roofline" in out

    def test_marker_scales_axis(self):
        no_marker = grouped_bars({"t": {"k": 5.0}}, width=20)
        with_marker = grouped_bars(
            {"t": {"k": 5.0}}, width=20, marker={("t", "k"): 100.0}
        )
        bar_len = lambda s: s.splitlines()[1].count("█")
        assert bar_len(with_marker) < bar_len(no_marker)


class TestPerfRecordsChart:
    def _rec(self, tensor, kernel, g, bound):
        return PerfRecord(
            tensor=tensor, kernel=kernel, fmt="coo", platform="P",
            flops=1.0, seconds=1.0, gflops=g, bound_gflops=bound,
            efficiency=g / bound,
        )

    def test_groups_by_tensor(self):
        recs = [
            self._rec("a", "tew", 10.0, 20.0),
            self._rec("a", "ttv", 5.0, 30.0),
            self._rec("b", "tew", 8.0, 20.0),
        ]
        out = perf_records_chart(recs)
        lines = out.splitlines()
        assert lines[0] == "a"
        assert any(line.strip().startswith("b") for line in lines)
        assert "tew/coo" in out and "ttv/coo" in out

    def test_above_bound_bar_crosses_tick(self):
        """A cache-resident case (gflops > bound) draws past its tick."""
        recs = [self._rec("t", "ts", 40.0, 10.0)]
        out = perf_records_chart(recs, log=False)
        bar_line = out.splitlines()[1]
        assert "|" in bar_line
        assert bar_line.index("|") < bar_line.rindex("█")
