"""Tests for the roofline subsystem (platforms, ERT, model, OI)."""

import numpy as np
import pytest

from repro.kernels import TABLE1_ASYMPTOTIC_OI
from repro.roofline import (
    BLUESKY,
    DGX_1P,
    DGX_1V,
    PLATFORMS,
    WINGTIP,
    RooflineModel,
    accurate_oi,
    cost_for,
    extract_features,
    get_platform,
    measure_host,
    modeled_ceilings,
)
from repro.sptensor import COOTensor, HiCOOTensor
from repro.types import Format, Kernel


class TestPlatforms:
    def test_table4_values(self):
        assert BLUESKY.cores == 24 and BLUESKY.sockets == 2
        assert WINGTIP.cores == 56 and WINGTIP.sockets == 4
        assert DGX_1P.sm_count == 56 and DGX_1P.mem_bw_gbs == 732.0
        assert DGX_1V.sm_count == 80 and DGX_1V.peak_sp_gflops == 14_900.0

    def test_gpu_advantages_match_paper(self):
        """Paper: GPUs lead CPUs by ~4-12x peak and ~3-7x bandwidth."""
        for gpu in (DGX_1P, DGX_1V):
            for cpu in (BLUESKY, WINGTIP):
                assert 4 <= gpu.peak_sp_gflops / cpu.peak_sp_gflops <= 15
                assert 2.5 <= gpu.mem_bw_gbs / cpu.mem_bw_gbs <= 7

    def test_ert_ceilings_below_theoretical(self):
        for p in PLATFORMS:
            assert p.ert_dram_bw_gbs < p.mem_bw_gbs
            assert p.ert_llc_bw_gbs > p.ert_dram_bw_gbs

    def test_lookup(self):
        assert get_platform("bluesky") is BLUESKY
        assert get_platform("DGX-1V") is DGX_1V
        with pytest.raises(KeyError):
            get_platform("summit")

    def test_with_overrides(self):
        p = BLUESKY.with_overrides(llc_bytes=1024)
        assert p.llc_bytes == 1024
        assert p.name == BLUESKY.name
        assert BLUESKY.llc_bytes != 1024  # original untouched


class TestRooflineModel:
    def test_attainable_memory_regime(self):
        model = RooflineModel(BLUESKY)
        oi = 0.1
        assert model.attainable(oi) == pytest.approx(oi * BLUESKY.ert_dram_bw_gbs)

    def test_attainable_compute_regime(self):
        model = RooflineModel(BLUESKY)
        assert model.attainable(1000.0) == BLUESKY.peak_sp_gflops

    def test_llc_ceiling_higher(self):
        model = RooflineModel(DGX_1P)
        assert model.attainable(0.2, "llc") > model.attainable(0.2, "dram")

    def test_all_kernels_memory_bound_everywhere(self):
        """The paper's Figure 3 conclusion."""
        for p in PLATFORMS:
            assert RooflineModel(p).memory_bound_kernels()

    def test_marks_match_table1(self):
        model = RooflineModel(WINGTIP)
        marks = {m.kernel: m.oi for m in model.kernel_marks()}
        assert marks == TABLE1_ASYMPTOTIC_OI

    def test_series_monotone(self):
        model = RooflineModel(DGX_1V)
        series = model.series(points=20)
        dram = [pt["ert_dram"] for pt in series]
        assert dram == sorted(dram)
        assert all(pt["ert_llc"] >= pt["ert_dram"] for pt in series)

    def test_memory_bound_time(self):
        model = RooflineModel(BLUESKY)
        t = COOTensor.random((100, 100, 100), nnz=5000, rng=0)
        feats = extract_features(t, "t", 16)
        sec = model.memory_bound_time(feats, "tew", "coo")
        assert sec == pytest.approx(12 * 5000 / (BLUESKY.ert_dram_bw_gbs * 1e9))


class TestFeaturesAndOI:
    @pytest.fixture(scope="class")
    def feats(self):
        t = COOTensor.random((300, 200, 40), nnz=8000, rng=1)
        return extract_features(t, "ft", 32)

    def test_feature_consistency(self, feats):
        assert feats.nnz == 8000
        assert len(feats.mf_per_mode) == 3
        assert feats.nb > 0
        assert feats.max_fiber_imbalance >= 1.0
        assert all(c >= 1.0 for c in feats.contention_per_mode)

    def test_reuse_prebuilt_hicoo(self):
        t = COOTensor.random((100, 100, 100), nnz=2000, rng=2)
        h = HiCOOTensor.from_coo(t, 16)
        feats = extract_features(t, "x", 16, hicoo=h)
        assert feats.nb == h.nblocks

    def test_accurate_oi_close_to_asymptotic(self, feats):
        """For MF << M the accurate OI approaches the Table 1 value."""
        oi = accurate_oi(feats, Kernel.TS, Format.COO)
        assert oi == pytest.approx(1 / 8)

    def test_ttv_oi_below_asymptotic(self, feats):
        """The +12MF output term always pulls Ttv OI below 1/6."""
        assert accurate_oi(feats, Kernel.TTV, Format.COO) < 1 / 6

    def test_hicoo_mttkrp_oi_at_least_coo(self, feats):
        coo = accurate_oi(feats, Kernel.MTTKRP, Format.COO)
        hic = accurate_oi(feats, Kernel.MTTKRP, Format.HICOO)
        assert hic >= coo * 0.9

    def test_cost_for_flops_positive(self, feats):
        for kernel in Kernel:
            c = cost_for(feats, kernel, Format.COO)
            assert c.flops > 0 and c.bytes > 0


class TestErt:
    def test_host_measurement_sane(self):
        host = measure_host(dram_elems=1_000_000, llc_elems=50_000)
        assert host.peak_sp_gflops > 0.1
        assert host.ert_dram_bw_gbs > 0.1
        assert host.llc_bw_ratio >= 1.0
        assert host.dram_derate == 1.0

    def test_modeled_ceilings(self):
        c = modeled_ceilings(DGX_1P)
        assert c.platform == "DGX-1P"
        assert c.dram_bw_gbs == pytest.approx(DGX_1P.ert_dram_bw_gbs)
        assert c.llc_bw_gbs > c.dram_bw_gbs
        assert c.theoretical_bw_gbs == 732.0
