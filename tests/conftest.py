"""Shared fixtures: deterministic random tensors of assorted shapes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.sptensor import COOTensor, HiCOOTensor


@pytest.fixture
def rng():
    return np.random.default_rng(20200222)


@pytest.fixture
def coo3(rng):
    """A modest third-order tensor with ragged dimensions."""
    return COOTensor.random((23, 17, 12), nnz=400, rng=rng)


@pytest.fixture
def coo4(rng):
    """A fourth-order tensor (the suite supports arbitrary orders)."""
    return COOTensor.random((11, 9, 8, 7), nnz=600, rng=rng)


@pytest.fixture
def hicoo3(coo3):
    return HiCOOTensor.from_coo(coo3, block_size=8)


@pytest.fixture
def hicoo4(coo4):
    return HiCOOTensor.from_coo(coo4, block_size=4)


@pytest.fixture
def dense3(coo3):
    return coo3.to_dense()


@pytest.fixture
def dense4(coo4):
    return coo4.to_dense()


def random_mats(shape, r, seed=0, dtype=np.float64):
    """One (I_m, r) factor matrix per mode."""
    gen = np.random.default_rng(seed)
    return [gen.random((s, r)).astype(dtype) for s in shape]


@pytest.fixture
def mats3(coo3):
    return random_mats(coo3.shape, 5, seed=1)


@pytest.fixture
def mats4(coo4):
    return random_mats(coo4.shape, 4, seed=2)
