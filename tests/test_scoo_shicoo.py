"""Tests for the semi-sparse formats sCOO and sHiCOO."""

import numpy as np
import pytest

from repro.errors import FormatError, ShapeError
from repro.sptensor import COOTensor, SemiCOOTensor, SemiHiCOOTensor


class TestSemiCOO:
    def test_dense_roundtrip(self, coo3, dense3):
        for dm in [(0,), (1,), (2,)]:
            sc = SemiCOOTensor.from_coo(coo3, dm)
            np.testing.assert_allclose(sc.to_dense(), dense3, rtol=1e-5)

    def test_coo_roundtrip(self, coo3):
        sc = SemiCOOTensor.from_coo(coo3, (1,))
        assert sc.to_coo().allclose(coo3)

    def test_two_dense_modes(self, coo4):
        sc = SemiCOOTensor.from_coo(coo4, (1, 3))
        np.testing.assert_allclose(sc.to_dense(), coo4.to_dense(), rtol=1e-5)

    def test_sparse_nnz_counts_fibers(self, coo3):
        sc = SemiCOOTensor.from_coo(coo3, (2,))
        assert sc.nnz_sparse == coo3.num_fibers(2)

    def test_total_nnz(self, coo3):
        sc = SemiCOOTensor.from_coo(coo3, (2,))
        assert sc.nnz == sc.nnz_sparse * coo3.shape[2]

    def test_dense_modes_validation(self, coo3):
        with pytest.raises(FormatError):
            SemiCOOTensor.from_coo(coo3, ())
        with pytest.raises(FormatError):
            SemiCOOTensor.from_coo(coo3, (0, 1, 2))  # nothing sparse left

    def test_bad_value_shape_rejected(self):
        with pytest.raises(ShapeError):
            SemiCOOTensor(
                (3, 4),
                (1,),
                np.array([[0]]),
                np.zeros((1, 5)),  # dense dim should be 4
            )

    def test_empty(self):
        sc = SemiCOOTensor.from_coo(COOTensor.empty((3, 4, 5)), (2,))
        assert sc.nnz_sparse == 0
        assert sc.to_coo().nnz == 0

    def test_storage_model(self, coo3):
        sc = SemiCOOTensor.from_coo(coo3, (2,))
        assert sc.nbytes == sc.nnz_sparse * 2 * 4 + sc.nnz * 4


class TestSemiHiCOO:
    def test_roundtrip_through_scoo(self, coo3, dense3):
        sc = SemiCOOTensor.from_coo(coo3, (2,))
        sh = SemiHiCOOTensor.from_scoo(sc, 8)
        np.testing.assert_allclose(sh.to_dense(), dense3, rtol=1e-5)
        assert sh.to_coo().allclose(coo3)

    def test_block_grouping(self, coo3):
        sc = SemiCOOTensor.from_coo(coo3, (2,))
        sh = SemiHiCOOTensor.from_scoo(sc, 8)
        assert sh.bptr[-1] == sh.nnz_sparse
        assert (np.diff(sh.bptr) >= 1).all()
        assert int(sh.einds.max(initial=0)) < 8

    def test_empty(self):
        sc = SemiCOOTensor.from_coo(COOTensor.empty((4, 4, 4)), (1,))
        sh = SemiHiCOOTensor.from_scoo(sc, 4)
        assert sh.nnz_sparse == 0
        assert sh.nblocks == 0

    def test_storage_smaller_than_scoo_when_clustered(self):
        rng = np.random.default_rng(3)
        inds = np.unique(rng.integers(0, 32, size=(2000, 3)), axis=0)
        t = COOTensor((10000, 10000, 8), inds % [10000, 10000, 8], rng.random(len(inds)))
        t = t.coalesce()
        sc = SemiCOOTensor.from_coo(t, (2,))
        sh = SemiHiCOOTensor.from_scoo(sc, 32)
        # index storage shrinks; value storage identical
        assert sh.nbytes <= sc.nbytes

    def test_block_size_validated(self, coo3):
        sc = SemiCOOTensor.from_coo(coo3, (2,))
        with pytest.raises(FormatError):
            SemiHiCOOTensor.from_scoo(sc, 100)
