"""Tests for the benchmark runner and experiment reports."""

import numpy as np
import pytest

from repro.bench import (
    Report,
    RunnerConfig,
    SuiteRunner,
    TensorBundle,
    derive_case_seed,
    figure3,
    figure3_series,
    figure_perf,
    table1,
    table2,
    table3,
    table4,
)
from repro.roofline import BLUESKY, DGX_1V, get_platform
from repro.sptensor import COOTensor
from repro.types import Format, Kernel


@pytest.fixture(scope="module")
def tensor():
    return COOTensor.random((150, 120, 30), nnz=4000, rng=0)


@pytest.fixture(scope="module")
def cpu_runner():
    return SuiteRunner(BLUESKY, RunnerConfig(repeats=1, measure_host=True))


@pytest.fixture(scope="module")
def gpu_runner():
    return SuiteRunner(DGX_1V, RunnerConfig(measure_host=False))


class TestRunner:
    def test_bundle_preparation(self, tensor):
        b = TensorBundle.prepare("x", tensor, RunnerConfig(block_size=16))
        assert b.coo.sort_order is not None
        assert b.hicoo.nnz == tensor.nnz
        assert len(b.vectors) == 3 and len(b.matrices) == 3
        assert b.matrices[0].shape == (150, 16)

    def test_cpu_records_complete(self, cpu_runner, tensor):
        records = cpu_runner.run_tensor("demo", tensor)
        assert len(records) == 10  # 5 kernels x 2 formats
        for r in records:
            assert r.platform == "Bluesky"
            assert r.gflops > 0
            assert r.bound_gflops > 0
            assert r.host_seconds > 0  # host measurement enabled
            assert r.seconds > 0

    def test_gpu_records_simulated(self, gpu_runner, tensor):
        rec = gpu_runner.run_kernel(
            TensorBundle.prepare("g", tensor, gpu_runner.config),
            Kernel.MTTKRP,
            Format.COO,
        )
        assert rec.platform == "DGX-1V"
        assert rec.seconds > 0
        assert rec.host_seconds == 0.0

    def test_cache_scale_shrinks_llc(self, tensor):
        runner = SuiteRunner(BLUESKY, RunnerConfig(cache_scale=1000, measure_host=False))
        assert runner.platform.llc_bytes < BLUESKY.llc_bytes

    def test_kernel_subset(self, tensor):
        cfg = RunnerConfig(
            kernels=(Kernel.TS,), formats=(Format.COO,), measure_host=False
        )
        records = SuiteRunner(BLUESKY, cfg).run_tensor("t", tensor)
        assert len(records) == 1
        assert records[0].kernel == "ts"

    def test_run_dataset(self, tensor):
        cfg = RunnerConfig(
            kernels=(Kernel.TEW,), formats=(Format.COO,), measure_host=False
        )
        runner = SuiteRunner(BLUESKY, cfg)
        recs = runner.run_dataset({"a": tensor, "b": tensor})
        assert {r.tensor for r in recs} == {"a", "b"}


class TestSeeding:
    """Bundle inputs derive from (config seed, tensor name) only.

    The sharded executor re-runs any case in isolation and expects a
    bit-identical record, so the factor matrices/vectors a bundle draws
    must not depend on how many tensors ran before it in the sweep.
    """

    def test_derived_seed_is_pinned(self):
        # Regression pin: changing the derivation silently invalidates
        # every stored run; this must only move with STORE_VERSION.
        assert derive_case_seed(0, "bundle", "vast") == 2564662850791965524

    def test_bundle_inputs_depend_on_name_and_seed(self, tensor):
        cfg = RunnerConfig(measure_host=False)
        a1 = TensorBundle.prepare("a", tensor, cfg)
        a2 = TensorBundle.prepare("a", tensor, cfg)
        for m1, m2 in zip(a1.matrices, a2.matrices):
            np.testing.assert_array_equal(m1, m2)
        for v1, v2 in zip(a1.vectors, a2.vectors):
            np.testing.assert_array_equal(v1, v2)
        b = TensorBundle.prepare("b", tensor, cfg)
        assert not np.array_equal(a1.matrices[0], b.matrices[0])
        reseeded = TensorBundle.prepare("a", tensor, RunnerConfig(
            measure_host=False, seed=1,
        ))
        assert not np.array_equal(a1.matrices[0], reseeded.matrices[0])

    def test_dataset_records_are_order_independent(self, tensor):
        cfg = RunnerConfig(
            kernels=(Kernel.MTTKRP, Kernel.TTV),
            formats=(Format.COO,),
            measure_host=False,
        )
        other = COOTensor.random((60, 50, 20), nnz=900, rng=5)
        runner = SuiteRunner(BLUESKY, cfg)

        def keyed(records):
            return {(r.tensor, r.kernel, r.fmt): r for r in records}

        forward = keyed(runner.run_dataset({"a": tensor, "b": other}))
        reverse = keyed(runner.run_dataset({"b": other, "a": tensor}))
        solo = keyed(runner.run_tensor("b", other))
        assert forward == reverse
        for key, record in solo.items():
            assert forward[key] == record


class TestReports:
    def test_table1_report(self):
        rep = table1()
        assert len(rep.rows) == 5
        text = rep.render()
        assert "mttkrp" in text and "1/12" in text

    def test_table2_report(self):
        rep = table2(scale=1000)
        assert len(rep.rows) == 15
        assert rep.rows[0][1] == "vast"

    def test_table3_report(self):
        rep = table3(scale=1000)
        assert len(rep.rows) == 15
        assert rep.rows[0][1] == "regS"

    def test_table4_report(self):
        rep = table4()
        names = [row[0] for row in rep.rows]
        assert names == ["Bluesky", "Wingtip", "DGX-1P", "DGX-1V"]

    def test_figure3_report(self):
        rep = figure3()
        assert len(rep.rows) == 20
        assert all(row[-1] for row in rep.rows)

    def test_figure3_series(self):
        rep = figure3_series("Bluesky")
        ois = [row[0] for row in rep.rows]
        assert ois == sorted(ois)

    def test_report_csv(self, tmp_path):
        rep = table4()
        p = tmp_path / "t4.csv"
        rep.save_csv(p)
        assert p.read_text().startswith("platform,")

    def test_figure_perf_small(self):
        rep = figure_perf(
            "fig4",
            dataset="synthetic",
            scale=20000,
            keys=["irrS"],
            config=RunnerConfig(measure_host=False, cache_scale=20000),
        )
        assert len(rep.records) == 10
        assert all(r.platform == "Bluesky" for r in rep.records)

    def test_figure_perf_gpu(self):
        rep = figure_perf(
            "fig7",
            dataset="synthetic",
            scale=20000,
            keys=["irrS"],
            config=RunnerConfig(measure_host=False, cache_scale=20000),
        )
        assert all(r.platform == "DGX-1V" for r in rep.records)

    def test_unknown_dataset_kind(self):
        with pytest.raises(ValueError):
            figure_perf("fig4", dataset="imaginary", scale=20000)

    def test_render_chart_on_perf_report(self):
        rep = figure_perf(
            "fig4",
            dataset="synthetic",
            scale=20000,
            keys=["irrS"],
            config=RunnerConfig(measure_host=False, cache_scale=20000),
        )
        chart = rep.render_chart()
        assert "irrS" in chart
        assert "█" in chart
        assert "roofline" in chart

    def test_render_chart_falls_back_without_records(self):
        rep = table4()
        assert rep.render_chart() == rep.render()
