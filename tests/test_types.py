"""Tests for dtype conventions and enum coercion."""

import numpy as np
import pytest

from repro.types import (
    DEFAULT_BLOCK_SIZE,
    DEFAULT_RANK,
    Format,
    Kernel,
    OpKind,
    Schedule,
    index_dtype_for,
)


class TestEnumCoercion:
    def test_opkind_from_string(self):
        assert OpKind.coerce("add") is OpKind.ADD
        assert OpKind.coerce("MUL") is OpKind.MUL

    def test_opkind_identity(self):
        assert OpKind.coerce(OpKind.DIV) is OpKind.DIV

    def test_opkind_invalid(self):
        with pytest.raises(ValueError, match="unknown element-wise op"):
            OpKind.coerce("pow")

    def test_schedule_from_string(self):
        assert Schedule.coerce("dynamic") is Schedule.DYNAMIC
        assert Schedule.coerce("GUIDED") is Schedule.GUIDED

    def test_schedule_invalid(self):
        with pytest.raises(ValueError):
            Schedule.coerce("chaotic")

    def test_kernel_from_string(self):
        assert Kernel.coerce("mttkrp") is Kernel.MTTKRP
        assert Kernel.coerce("Tew") is Kernel.TEW

    def test_kernel_invalid(self):
        with pytest.raises(ValueError):
            Kernel.coerce("spmv")

    def test_format_from_string(self):
        assert Format.coerce("hicoo") is Format.HICOO
        assert Format.coerce("gHiCOO") is Format.GHICOO

    def test_format_invalid(self):
        with pytest.raises(ValueError):
            Format.coerce("csr")


class TestIndexDtype:
    def test_small_shape_uses_uint32(self):
        assert index_dtype_for((100, 200, 300)) == np.dtype(np.uint32)

    def test_huge_dim_widens(self):
        assert index_dtype_for((2**33, 10)) == np.dtype(np.int64)

    def test_boundary(self):
        limit = np.iinfo(np.uint32).max
        assert index_dtype_for((limit - 1,)) == np.dtype(np.uint32)
        assert index_dtype_for((limit,)) == np.dtype(np.int64)


class TestPaperConstants:
    def test_paper_block_size(self):
        assert DEFAULT_BLOCK_SIZE == 128

    def test_paper_rank(self):
        assert DEFAULT_RANK == 16
