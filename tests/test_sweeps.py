"""Tests for the parameter-sweep harness."""

import pytest

from repro.bench.sweeps import (
    blocksize_sweep,
    density_sweep,
    nnz_sweep,
    rank_sweep,
)
from repro.sptensor import COOTensor


class TestNnzSweep:
    def test_structure_and_crossover(self):
        rep = nnz_sweep(
            nnz_values=(500, 4_000, 64_000),
            shape=(1 << 14, 1 << 14, 32),
            cache_scale=1000,
        )
        assert len(rep.rows) == 6  # 3 sizes x 2 formats
        # Observation 2's mechanism: the smallest size is cache resident,
        # the largest is not.
        coo_rows = [r for r in rep.rows if r[1] == "coo"]
        assert coo_rows[0][5] is True or coo_rows[0][5] == "True"
        assert coo_rows[-1][5] in (False, "False")
        # efficiency drops across the crossover
        assert coo_rows[0][4] > coo_rows[-1][4]


class TestRankSweep:
    def test_gflops_grow_with_rank(self):
        rep = rank_sweep(ranks=(2, 16, 64), nnz=20_000, cache_scale=1000)
        coo = [r for r in rep.rows if r[1] == "coo"]
        gflops = [r[2] for r in coo]
        assert gflops[0] < gflops[-1]  # higher OI -> higher attainable
        bounds = [r[3] for r in coo]
        assert bounds == sorted(bounds)


class TestDensitySweep:
    def test_occupancy_erodes_with_sparsity(self):
        rep = density_sweep(
            densities=(1e-6, 1e-4), nnz=20_000, cache_scale=1000
        )
        hicoo = [r for r in rep.rows if r[2] == "hicoo"]
        # sparser tensor -> fewer nnz per block
        assert hicoo[0][3] <= hicoo[1][3]


class TestBlocksizeSweep:
    def test_blocks_shrink_with_bigger_b(self):
        t = COOTensor.random((4096, 4096, 64), nnz=20_000, rng=5)
        rep = blocksize_sweep(block_sizes=(8, 64, 256), tensor=t, cache_scale=1000)
        nblocks = [r[1] for r in rep.rows]
        assert nblocks == sorted(nblocks, reverse=True)
        occupancy = [r[2] for r in rep.rows]
        assert occupancy == sorted(occupancy)

    def test_report_renders(self):
        t = COOTensor.random((1024, 1024, 16), nnz=5_000, rng=6)
        rep = blocksize_sweep(block_sizes=(32, 128), tensor=t)
        text = rep.render()
        assert "HiCOO" in text and "128" in text
