"""Tests for the simulated distributed-memory substrate."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.distributed import (
    SimNetwork,
    distributed_cp_als,
    distributed_mttkrp,
    partition_nnz,
)
from repro.kernels import coo_mttkrp
from repro.methods import cp_als
from repro.sptensor import COOTensor


@pytest.fixture
def x():
    return COOTensor.random((60, 50, 40), nnz=3000, rng=8).astype(np.float64)


@pytest.fixture
def mats(x):
    rng = np.random.default_rng(0)
    return [rng.random((s, 6)) for s in x.shape]


class TestSimNetwork:
    def test_clocks_start_zero(self):
        net = SimNetwork(4)
        assert net.makespan == 0.0

    def test_local_work_advances_one_rank(self):
        net = SimNetwork(3)
        net.local_work(1, 0.5)
        assert net.makespan == 0.5
        assert net.clocks[0] == 0.0

    def test_barrier_synchronizes(self):
        net = SimNetwork(3)
        net.local_work(2, 1.0)
        net.barrier()
        np.testing.assert_allclose(net.clocks, 1.0)

    def test_allreduce_value(self):
        net = SimNetwork(3)
        parts = [np.full((2, 2), float(r)) for r in range(3)]
        total = net.allreduce(parts)
        np.testing.assert_allclose(total, np.full((2, 2), 3.0))
        assert net.makespan > 0
        assert net.collectives == 1

    def test_allreduce_single_rank_free(self):
        net = SimNetwork(1)
        net.allreduce([np.ones(4)])
        assert net.makespan == 0.0

    def test_allreduce_shape_checks(self):
        net = SimNetwork(2)
        with pytest.raises(ShapeError):
            net.allreduce([np.ones(3)])
        with pytest.raises(ShapeError):
            net.allreduce([np.ones(3), np.ones(4)])

    def test_allgather(self):
        net = SimNetwork(2)
        got = net.allgather([np.zeros(2), np.ones(3)])
        assert len(got) == 2
        assert got[1].shape == (3,)

    def test_reduce_scatter_slices(self):
        net = SimNetwork(2)
        parts = [np.arange(4.0).reshape(4, 1)] * 2
        slices = net.reduce_scatter(parts)
        assert len(slices) == 2
        np.testing.assert_allclose(np.concatenate(slices), 2 * np.arange(4.0).reshape(4, 1))

    def test_cost_formulas(self):
        net = SimNetwork(4, latency_s=1e-6, bw_gbs=10.0)
        assert net.ptp_time(1e7) == pytest.approx(1e-6 + 1e-3)
        assert net.allreduce_time(1e7) == pytest.approx(
            6e-6 + 2 * 0.75 * 1e7 / 1e10
        )
        assert net.allgather_time(1e7) == pytest.approx(
            3e-6 + 0.75 * 1e7 / 1e10
        )

    def test_invalid_rank_count(self):
        with pytest.raises(ShapeError):
            SimNetwork(0)


class TestDistributedMttkrp:
    def test_partition_covers(self, x):
        shards = partition_nnz(x, 5)
        assert sum(s.nnz for s in shards) == x.nnz

    def test_value_matches_serial(self, x, mats):
        net = SimNetwork(4)
        res = distributed_mttkrp(x, mats, 0, net)
        want = coo_mttkrp(x, mats, 0)
        np.testing.assert_allclose(res.value, want, rtol=1e-9)

    def test_time_components(self, x, mats):
        net = SimNetwork(4)
        res = distributed_mttkrp(x, mats, 1, net)
        assert res.seconds > 0
        assert res.comm_seconds > 0
        assert len(res.local_seconds) == 4
        assert res.seconds >= max(res.local_seconds)

    def test_more_ranks_less_local_time(self, x, mats):
        r2 = distributed_mttkrp(x, mats, 0, SimNetwork(2))
        r8 = distributed_mttkrp(x, mats, 0, SimNetwork(8))
        assert max(r8.local_seconds) < max(r2.local_seconds)

    def test_comm_grows_with_ranks(self, x, mats):
        r2 = distributed_mttkrp(x, mats, 0, SimNetwork(2))
        r8 = distributed_mttkrp(x, mats, 0, SimNetwork(8))
        assert r8.comm_seconds > r2.comm_seconds


class TestDistributedCpAls:
    def test_fit_matches_serial(self, x):
        net = SimNetwork(4)
        dist = distributed_cp_als(x, rank=4, net=net, n_iters=6, seed=3)
        serial = cp_als(x, rank=4, n_iters=6, seed=3, tol=0.0)
        np.testing.assert_allclose(
            dist.fits, serial.fits[: len(dist.fits)], rtol=1e-6
        )

    def test_time_accumulates(self, x):
        net = SimNetwork(4)
        res = distributed_cp_als(x, rank=3, net=net, n_iters=3, tol=0.0)
        assert res.seconds > 0
        assert res.comm_seconds > 0
        assert res.nranks == 4
