"""Tests for the multi-GPU scaling simulation."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.gpu import (
    P100,
    V100,
    allreduce_time,
    gpu_coo_mttkrp,
    multi_gpu_mttkrp,
    multi_gpu_ttv,
    partition_by_nnz,
    scaling_sweep,
)
from repro.kernels import coo_mttkrp, coo_ttv
from repro.sptensor import COOTensor


@pytest.fixture(scope="module")
def x():
    return COOTensor.random((800, 700, 60), nnz=30_000, rng=4).astype(np.float64)


@pytest.fixture(scope="module")
def mats(x):
    rng = np.random.default_rng(0)
    return [rng.random((s, 8)) for s in x.shape]


class TestPartition:
    def test_shards_cover_nnz(self, x):
        shards = partition_by_nnz(x, 4)
        assert sum(s.nnz for s in shards) == x.nnz
        assert len(shards) == 4

    def test_shards_disjoint(self, x):
        shards = partition_by_nnz(x, 3)
        merged = np.concatenate([s.linearize() for s in shards])
        assert len(np.unique(merged)) == x.nnz

    def test_single_gpu(self, x):
        shards = partition_by_nnz(x, 1)
        assert shards[0].nnz == x.nnz

    def test_invalid_count(self, x):
        with pytest.raises(ShapeError):
            partition_by_nnz(x, 0)


class TestAllreduce:
    def test_single_gpu_free(self):
        assert allreduce_time(1e6, 1, 50.0) == 0.0

    def test_ring_formula(self):
        t = allreduce_time(1e9, 4, 50.0)
        assert t == pytest.approx(2 * 0.75 * 1e9 / 50e9)

    def test_grows_with_gpus(self):
        assert allreduce_time(1e9, 8, 50.0) > allreduce_time(1e9, 2, 50.0)


class TestMultiGpuKernels:
    def test_mttkrp_value_exact(self, x, mats):
        want = coo_mttkrp(x, mats, 0)
        res = multi_gpu_mttkrp(x, mats, 0, P100, 4)
        np.testing.assert_allclose(res.value, want, rtol=1e-8)

    def test_mttkrp_speedup_with_gpus(self, x, mats):
        t1 = multi_gpu_mttkrp(x, mats, 0, P100, 1).seconds
        t4 = multi_gpu_mttkrp(x, mats, 0, P100, 4).seconds
        assert t4 < t1

    def test_allreduce_limits_scaling(self, x, mats):
        """Speedup saturates: the reduction term grows with G."""
        res8 = multi_gpu_mttkrp(x, mats, 0, P100, 8)
        assert res8.allreduce_seconds > 0
        assert res8.seconds > res8.max_shard  # reduction visible

    def test_ttv_value_matches_single(self, x):
        v = np.random.default_rng(1).random(x.shape[2])
        want = coo_ttv(x, v, 2)
        res = multi_gpu_ttv(x, v, 2, V100, 4)
        np.testing.assert_allclose(
            res.value.to_dense(), want.to_dense(), rtol=1e-8
        )
        assert res.allreduce_seconds == 0.0

    def test_scaling_sweep_rows(self, x, mats):
        rows = scaling_sweep(
            lambda g: multi_gpu_mttkrp(x, mats, 0, V100, g), [1, 2, 4]
        )
        assert [r["ngpus"] for r in rows] == [1, 2, 4]
        assert rows[0]["speedup"] == pytest.approx(1.0)
        assert all(r["seconds"] > 0 for r in rows)

    def test_matches_single_gpu_kernel_at_g1(self, x, mats):
        res = multi_gpu_mttkrp(x, mats, 0, P100, 1)
        single = gpu_coo_mttkrp(x.copy().sort(), mats, 0, P100)
        assert res.seconds == pytest.approx(single.seconds, rel=0.05)
