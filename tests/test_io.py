"""Tests for tensor I/O (.tns text and .npz binary)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.sptensor import (
    COOTensor,
    CSFTensor,
    HiCOOTensor,
    load_csf_npz,
    load_hicoo_npz,
    load_npz,
    read_tns,
    save_csf_npz,
    save_hicoo_npz,
    save_npz,
    tns_dumps,
    write_tns,
)


class TestTns:
    def test_roundtrip(self, coo3, tmp_path):
        p = tmp_path / "t.tns"
        write_tns(coo3, p)
        back = read_tns(p)
        assert back.shape == coo3.shape
        assert back.allclose(coo3, rtol=1e-4, atol=1e-5)

    def test_one_based_indices(self, tmp_path):
        t = COOTensor((2, 2), np.array([[0, 0]]), np.array([1.5]))
        p = tmp_path / "t.tns"
        write_tns(t, p)
        body = [
            line for line in p.read_text().splitlines() if not line.startswith("#")
        ]
        assert body == ["1 1 1.5"]

    def test_shape_header_recovered(self, coo3, tmp_path):
        """Without the header the trailing empty slices would be lost."""
        p = tmp_path / "t.tns"
        write_tns(coo3, p)
        assert read_tns(p).shape == coo3.shape

    def test_shape_inference_without_header(self, tmp_path):
        p = tmp_path / "t.tns"
        p.write_text("2 3 1.0\n4 1 2.0\n")
        t = read_tns(p)
        assert t.shape == (4, 3)
        assert t.nnz == 2

    def test_explicit_shape_wins(self, tmp_path):
        p = tmp_path / "t.tns"
        p.write_text("1 1 5.0\n")
        t = read_tns(p, shape=(10, 10))
        assert t.shape == (10, 10)

    def test_zero_index_rejected(self, tmp_path):
        p = tmp_path / "t.tns"
        p.write_text("0 1 5.0\n")
        with pytest.raises(ShapeError):
            read_tns(p)

    def test_shape_mode_mismatch(self, tmp_path):
        p = tmp_path / "t.tns"
        p.write_text("1 1 1 5.0\n")
        with pytest.raises(ShapeError):
            read_tns(p, shape=(5, 5))

    def test_empty_file_needs_shape(self, tmp_path):
        p = tmp_path / "t.tns"
        p.write_text("")
        with pytest.raises(ShapeError):
            read_tns(p)
        assert read_tns(p, shape=(3, 3)).nnz == 0

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        p = tmp_path / "t.tns"
        p.write_text("# a comment\n\n1 2 3.0\n")
        assert read_tns(p).nnz == 1

    def test_dumps_matches_file(self, coo3, tmp_path):
        p = tmp_path / "t.tns"
        write_tns(coo3, p)
        assert p.read_text() == tns_dumps(coo3)


class TestFormatCaches:
    def test_hicoo_roundtrip(self, coo3, tmp_path):
        h = HiCOOTensor.from_coo(coo3, 8)
        p = tmp_path / "h.npz"
        save_hicoo_npz(h, p)
        back = load_hicoo_npz(p)
        assert back.block_size == 8
        np.testing.assert_array_equal(back.bptr, h.bptr)
        np.testing.assert_array_equal(back.binds, h.binds)
        np.testing.assert_array_equal(back.einds, h.einds)
        assert back.to_coo().allclose(coo3, rtol=1e-5, atol=1e-6)

    def test_csf_roundtrip(self, coo4, tmp_path):
        c = CSFTensor.from_coo(coo4, (2, 0, 3, 1))
        p = tmp_path / "c.npz"
        save_csf_npz(c, p)
        back = load_csf_npz(p)
        assert back.mode_order == (2, 0, 3, 1)
        assert back.to_coo().allclose(coo4, rtol=1e-5, atol=1e-6)

    def test_kind_mismatch_rejected(self, coo3, tmp_path):
        h = HiCOOTensor.from_coo(coo3, 8)
        p = tmp_path / "h.npz"
        save_hicoo_npz(h, p)
        with pytest.raises(ShapeError):
            load_csf_npz(p)


class TestNpz:
    def test_roundtrip_exact(self, coo4, tmp_path):
        p = tmp_path / "t.npz"
        save_npz(coo4, p)
        back = load_npz(p)
        assert back.shape == coo4.shape
        np.testing.assert_array_equal(back.indices, coo4.indices)
        np.testing.assert_array_equal(back.values, coo4.values)

    def test_empty_roundtrip(self, tmp_path):
        p = tmp_path / "e.npz"
        save_npz(COOTensor.empty((7, 8)), p)
        back = load_npz(p)
        assert back.shape == (7, 8)
        assert back.nnz == 0
