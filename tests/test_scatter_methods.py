"""Backend/schedule/method equivalence for the scatter-add kernels.

Every combination of backend (sequential, OpenMP), schedule (static,
dynamic, guided), update method (atomic, sort, owner) and privatization
(arena, chunk) must produce the same Mttkrp/Ttv/Ttm results — including
the empty-tensor and single-block edge cases — and the owner-computes
method must be *bit-identical* to the sequential kernel.
"""

import numpy as np
import pytest

from repro.kernels import (
    coo_mttkrp,
    coo_ttm,
    coo_ttv,
    hicoo_mttkrp,
    hicoo_ttm,
    hicoo_ttv,
)
from repro.parallel import (
    ChaosBackend,
    OpenMPBackend,
    RaceCheckBackend,
    WorkspacePool,
    owner_partition,
    owner_scatter_add,
    get_backend,
)
from repro.sptensor import COOTensor, HiCOOTensor

SCHEDULES = ["static", "dynamic", "guided"]
METHODS = ["atomic", "sort", "owner"]


@pytest.fixture(scope="module")
def omp4():
    be = OpenMPBackend(nthreads=4, default_chunk=256)
    yield be
    be.shutdown()


@pytest.fixture(scope="module")
def racecheck():
    # Same decomposition as omp4, executed under write-footprint checking:
    # every combination below must hold its declared output contract.
    return RaceCheckBackend(nthreads=4, default_chunk=256)


@pytest.fixture(scope="module")
def chaos():
    be = ChaosBackend(
        OpenMPBackend(nthreads=4, default_chunk=256), seed=42, churn=0.25
    )
    yield be
    be.shutdown()


@pytest.fixture(scope="module")
def tensor():
    return COOTensor.random((120, 90, 40), 6000, rng=7).astype(np.float64)


@pytest.fixture(scope="module")
def hicoo(tensor):
    return HiCOOTensor.from_coo(tensor, 16)


@pytest.fixture(scope="module")
def mats(tensor):
    rng = np.random.default_rng(11)
    return [rng.random((s, 6)) for s in tensor.shape]


class TestMttkrpEquivalence:
    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("schedule", SCHEDULES)
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_coo_all_combinations(
        self, tensor, mats, omp4, racecheck, method, schedule, mode
    ):
        ref = coo_mttkrp(tensor, mats, mode)
        for backend in (None, omp4, racecheck):
            got = coo_mttkrp(
                tensor, mats, mode, backend=backend,
                method=method, schedule=schedule,
            )
            np.testing.assert_allclose(got, ref, rtol=1e-12)

    @pytest.mark.parametrize("method", METHODS)
    @pytest.mark.parametrize("schedule", SCHEDULES)
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_hicoo_all_combinations(
        self, hicoo, mats, omp4, racecheck, method, schedule, mode
    ):
        ref = hicoo_mttkrp(hicoo, mats, mode)
        for backend in (None, omp4, racecheck):
            got = hicoo_mttkrp(
                hicoo, mats, mode, backend=backend,
                method=method, schedule=schedule, blocks_per_chunk=3,
            )
            np.testing.assert_allclose(got, ref, rtol=1e-12)

    @pytest.mark.parametrize("privatize", ["arena", "chunk"])
    def test_privatization_modes_agree(self, tensor, mats, omp4, privatize):
        ref = coo_mttkrp(tensor, mats, 0)
        got = coo_mttkrp(
            tensor, mats, 0, backend=omp4,
            schedule="dynamic", privatize=privatize,
        )
        np.testing.assert_allclose(got, ref, rtol=1e-12)

    def test_unknown_privatize_rejected(self, tensor, mats):
        with pytest.raises(ValueError, match="privatization"):
            coo_mttkrp(tensor, mats, 0, privatize="magic")

    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_owner_bit_identical_coo(self, tensor, mats, omp4, mode):
        ref = coo_mttkrp(tensor, mats, mode)  # sequential atomic
        assert np.array_equal(ref, coo_mttkrp(tensor, mats, mode, method="owner"))
        assert np.array_equal(
            ref, coo_mttkrp(tensor, mats, mode, backend=omp4, method="owner")
        )

    def test_owner_bit_identical_hicoo(self, hicoo, mats, omp4):
        ref = hicoo_mttkrp(hicoo, mats, 0)
        assert np.array_equal(
            ref, hicoo_mttkrp(hicoo, mats, 0, backend=omp4, method="owner")
        )

    @pytest.mark.parametrize("method", METHODS)
    def test_empty_tensor(self, omp4, method):
        t = COOTensor.empty((4, 5, 6))
        mats = [np.ones((s, 2)) for s in t.shape]
        out = coo_mttkrp(t, mats, 0, backend=omp4, method=method)
        assert out.shape == (4, 2) and out.sum() == 0
        h = HiCOOTensor.from_coo(t, 4)
        hout = hicoo_mttkrp(h, mats, 1, backend=omp4, method=method)
        assert hout.shape == (5, 2) and hout.sum() == 0

    @pytest.mark.parametrize("method", METHODS)
    def test_single_block_hicoo(self, omp4, method):
        # All entries land in one HiCOO block: one owner, one arena.
        t = COOTensor(
            (8, 8, 8),
            np.array([[0, 1, 2], [3, 2, 1], [0, 1, 2], [7, 7, 7]]),
            np.array([1.0, 2.0, 3.0, 4.0]),
        )
        h = HiCOOTensor.from_coo(t, 8)
        assert h.nblocks == 1
        mats = [np.arange(8 * 3, dtype=np.float64).reshape(8, 3) for _ in range(3)]
        ref = hicoo_mttkrp(h, mats, 0)
        got = hicoo_mttkrp(h, mats, 0, backend=omp4, method=method)
        np.testing.assert_allclose(got, ref, rtol=1e-12)


class TestChaosSchedulingEquivalence:
    """Shuffled completion order + worker churn must not change results."""

    @pytest.mark.parametrize("method", METHODS)
    def test_coo_mttkrp_under_chaos(self, tensor, mats, chaos, method):
        ref = coo_mttkrp(tensor, mats, 0)
        got = coo_mttkrp(
            tensor, mats, 0, backend=chaos, method=method, schedule="dynamic"
        )
        np.testing.assert_allclose(got, ref, rtol=1e-12)

    def test_hicoo_mttkrp_under_chaos(self, hicoo, mats, chaos):
        ref = hicoo_mttkrp(hicoo, mats, 0)
        got = hicoo_mttkrp(hicoo, mats, 0, backend=chaos, blocks_per_chunk=3)
        np.testing.assert_allclose(got, ref, rtol=1e-12)

    def test_coo_ttv_under_chaos(self, tensor, chaos):
        v = np.random.default_rng(6).random(tensor.shape[1])
        ref = coo_ttv(tensor, v, 1)
        assert ref.allclose(coo_ttv(tensor, v, 1, backend=chaos), rtol=1e-12)


class TestFiberPartitionEquivalence:
    @pytest.mark.parametrize("partition", ["uniform", "balanced"])
    @pytest.mark.parametrize("schedule", SCHEDULES)
    def test_coo_ttv_ttm(self, tensor, omp4, racecheck, partition, schedule):
        rng = np.random.default_rng(3)
        v = rng.random(tensor.shape[1])
        u = rng.random((tensor.shape[1], 5))
        ref_v = coo_ttv(tensor, v, 1)
        ref_m = coo_ttm(tensor, u, 1)
        for backend in (None, omp4, racecheck):
            got_v = coo_ttv(
                tensor, v, 1, backend=backend,
                schedule=schedule, partition=partition,
            )
            assert ref_v.allclose(got_v, rtol=1e-12)
            got_m = coo_ttm(
                tensor, u, 1, backend=backend,
                schedule=schedule, partition=partition,
            )
            np.testing.assert_allclose(got_m.values, ref_m.values, rtol=1e-12)

    @pytest.mark.parametrize("partition", ["uniform", "balanced"])
    def test_hicoo_ttv_ttm(self, tensor, hicoo, omp4, partition):
        rng = np.random.default_rng(4)
        v = rng.random(tensor.shape[2])
        u = rng.random((tensor.shape[2], 5))
        ref_v = coo_ttv(tensor, v, 2)
        got_v = hicoo_ttv(hicoo, v, 2, backend=omp4, partition=partition)
        assert got_v.to_coo().allclose(ref_v, rtol=1e-10)
        ref_m = hicoo_ttm(hicoo, u, 2)
        got_m = hicoo_ttm(hicoo, u, 2, backend=omp4, partition=partition)
        np.testing.assert_allclose(got_m.values, ref_m.values, rtol=1e-12)

    def test_unknown_partition_rejected(self, tensor):
        with pytest.raises(ValueError, match="partition"):
            coo_ttv(tensor, np.ones(tensor.shape[0]), 0, partition="magic")


class TestWorkspacePool:
    def test_arena_per_thread_and_reduce(self):
        pool = WorkspacePool((4, 2), np.float64, max_arenas=3)
        buf = pool.acquire()
        assert buf.shape == (4, 2) and buf.sum() == 0
        assert pool.acquire() is buf  # same thread -> same arena
        buf[0, 0] = 5.0
        out = np.ones((4, 2))
        pool.reduce_into(out)
        assert out[0, 0] == 6.0
        assert pool.narenas == 1

    def test_reset_zeroes(self):
        pool = WorkspacePool((3,), np.float32, max_arenas=1)
        pool.acquire()[:] = 7
        pool.reset()
        assert pool.acquire().sum() == 0

    def test_invariant_bounds_arena_count(self):
        import threading

        pool = WorkspacePool((2,), np.float64, max_arenas=1)
        pool.acquire()
        err = []

        def other():
            try:
                pool.acquire()
            except RuntimeError as exc:
                err.append(exc)

        t = threading.Thread(target=other)
        t.start()
        t.join()
        assert err, "second thread should exceed max_arenas=1"

    def test_backend_checkout_caches_and_zeroes(self):
        be = OpenMPBackend(nthreads=2)
        try:
            with be.workspace((5, 2), np.float64) as pool:
                pool.acquire()[:] = 3.0
                first = pool
            with be.workspace((5, 2), np.float64) as pool:
                assert pool is first  # reused, not reallocated
                assert pool.acquire().sum() == 0  # zeroed between uses
            with be.workspace((5, 3), np.float64) as pool:
                assert pool is not first  # different geometry
        finally:
            be.shutdown()

    def test_mttkrp_arena_count_bounded(self, tensor, mats):
        # Dynamic schedule with tiny chunks: many chunks, few arenas.
        be = OpenMPBackend(nthreads=2, default_chunk=64)
        try:
            with be.workspace((tensor.shape[0], 6), np.float64) as pool:
                pass
            got = coo_mttkrp(tensor, mats, 0, backend=be, schedule="dynamic")
            np.testing.assert_allclose(got, coo_mttkrp(tensor, mats, 0), rtol=1e-12)
            # the pool the kernel used went back into the cache; its arena
            # count obeys the invariant even though there were ~100 chunks
            with be.workspace((tensor.shape[0], 6), np.float64) as pool:
                assert pool.narenas <= be.nthreads
        finally:
            be.shutdown()


class TestOwnerPartition:
    def test_disjoint_covering_rows(self):
        rng = np.random.default_rng(0)
        rows = rng.integers(0, 97, size=2000)
        part = owner_partition(rows, 97, 4)
        assert part.row_bounds[0] == 0 and part.row_bounds[-1] == 97
        assert (np.diff(part.row_bounds) > 0).all()
        # every entry lands in exactly one part, stable within the part
        seen = np.sort(part.order)
        np.testing.assert_array_equal(seen, np.arange(2000))
        for p, (lo, hi) in enumerate(zip(part.part_ptr[:-1], part.part_ptr[1:])):
            sel = part.order[lo:hi]
            assert (np.diff(sel) > 0).all()  # stable = increasing
            r = rows[sel]
            assert (r >= part.row_bounds[p]).all()
            assert (r < part.row_bounds[p + 1]).all()

    def test_alignment_snaps_bounds(self):
        rng = np.random.default_rng(1)
        rows = rng.integers(0, 128, size=5000)
        part = owner_partition(rows, 128, 4, align=16)
        assert (part.row_bounds[1:-1] % 16 == 0).all()

    def test_empty(self):
        part = owner_partition(np.empty(0, dtype=np.int64), 10, 4)
        assert part.nparts == 1
        assert part.entry_ranges() == []

    def test_owner_scatter_add_matches_reference(self):
        rng = np.random.default_rng(2)
        rows = rng.integers(0, 50, size=1000)
        contrib = rng.random((1000, 4))
        ref = np.zeros((50, 4))
        np.add.at(ref, rows, contrib)
        out = np.zeros((50, 4))
        part = owner_partition(rows, 50, 3)
        owner_scatter_add(out, rows, contrib, part, get_backend("sequential"))
        np.testing.assert_array_equal(out, ref)


class TestGuidedScheduleFloor:
    def test_guided_floors_at_default_chunk(self):
        be = OpenMPBackend(nthreads=4, default_chunk=100)
        try:
            ranges = []
            be.parallel_for(
                10_000, lambda lo, hi: ranges.append((lo, hi)), schedule="guided"
            )
            sizes = [hi - lo for lo, hi in sorted(ranges)]
            # every chunk floors at default_chunk except a possible short tail
            assert all(s >= 100 for s in sizes[:-1])
            assert sizes.count(1) <= 1  # no degenerate 1-element chunk train
        finally:
            be.shutdown()

    def test_guided_explicit_chunk_still_wins(self):
        be = OpenMPBackend(nthreads=4, default_chunk=100)
        try:
            ranges = []
            be.parallel_for(
                1000, lambda lo, hi: ranges.append((lo, hi)),
                schedule="guided", chunk=10,
            )
            sizes = [hi - lo for lo, hi in sorted(ranges)]
            # explicit chunk overrides the default floor (short tail allowed)
            assert all(s >= 10 for s in sizes[:-1])
        finally:
            be.shutdown()
