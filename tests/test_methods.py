"""Tests for the tensor methods (CP-ALS, power method, Tucker/TTM-chain)."""

import numpy as np
import pytest

from repro.errors import ShapeError
from repro.methods import (
    cp_als,
    symmetric_rank1_tensor,
    tensor_power_method,
    ttm_chain,
    ttv_collapse,
    tucker_hooi,
)
from repro.sptensor import COOTensor, HiCOOTensor
from repro.sptensor.dense import outer


def sparse_lowrank(shape, rank, seed=0, fill=0.3):
    rng = np.random.default_rng(seed)
    factors = []
    for s in shape:
        f = np.abs(rng.random((s, rank))) + 0.1
        f[rng.random((s, rank)) > fill] = 0.0
        factors.append(f)
    dense = np.zeros(shape)
    for r in range(rank):
        dense += outer([f[:, r] for f in factors])
    return COOTensor.from_dense(dense), factors


class TestCpAls:
    def test_recovers_planted_rank(self):
        x, _ = sparse_lowrank((25, 20, 15), 3, seed=1)
        res = cp_als(x, rank=3, n_iters=80, seed=2)
        assert res.fits[-1] > 0.98

    def test_fit_monotone_enough(self):
        x, _ = sparse_lowrank((20, 20, 20), 3, seed=3)
        res = cp_als(x, rank=4, n_iters=30, seed=4)
        # ALS fit is monotonically non-decreasing (tiny fp slack)
        fits = np.array(res.fits)
        assert (np.diff(fits) > -1e-8).all()

    def test_hicoo_matches_coo_trajectory(self):
        x, _ = sparse_lowrank((20, 18, 16), 2, seed=5)
        h = HiCOOTensor.from_coo(x, 8)
        a = cp_als(x, rank=3, n_iters=10, seed=6)
        b = cp_als(h, rank=3, n_iters=10, seed=6)
        np.testing.assert_allclose(a.fits, b.fits, rtol=1e-8)

    def test_reconstruction_error(self):
        x, _ = sparse_lowrank((15, 12, 10), 2, seed=7)
        res = cp_als(x, rank=2, n_iters=120, seed=8, tol=1e-12)
        dense = x.to_dense()
        approx = res.to_dense()
        rel = np.linalg.norm(approx - dense) / np.linalg.norm(dense)
        assert rel < 0.1

    def test_norm_identity(self):
        x, _ = sparse_lowrank((10, 10, 10), 2, seed=9)
        res = cp_als(x, rank=2, n_iters=50, seed=10)
        assert res.norm() == pytest.approx(
            np.linalg.norm(res.to_dense()), rel=1e-6
        )

    def test_init_factors(self):
        x, facs = sparse_lowrank((12, 11, 10), 2, seed=11)
        res = cp_als(x, rank=2, n_iters=30, init_factors=facs)
        assert res.fits[-1] > 0.99

    def test_invalid_args(self):
        x, _ = sparse_lowrank((8, 8, 8), 2, seed=12)
        with pytest.raises(ShapeError):
            cp_als(x, rank=0)
        with pytest.raises(ShapeError):
            cp_als(x, rank=2, init_factors=[np.ones((8, 3))] * 3)

    def test_4th_order(self):
        x, _ = sparse_lowrank((8, 8, 8, 8), 2, seed=13, fill=0.4)
        res = cp_als(x, rank=3, n_iters=60, seed=14)
        assert res.fits[-1] > 0.9


class TestPowerMethod:
    @pytest.fixture(scope="class")
    def planted(self):
        rng = np.random.default_rng(0)
        q, _ = np.linalg.qr(rng.standard_normal((25, 3)))
        w = np.array([7.0, 4.0, 2.0])
        return symmetric_rank1_tensor(w, q), w, q

    def test_symmetric_builder(self, planted):
        t, w, q = planted
        d = t.to_dense()
        np.testing.assert_allclose(d, np.transpose(d, (1, 0, 2)), atol=1e-8)

    def test_collapse_matches_dense(self, planted):
        t, _, q = planted
        v = q[:, 0]
        got = ttv_collapse(t, v)
        want = np.einsum("ijk,j,k->i", t.to_dense(), v, v)
        np.testing.assert_allclose(got, want, rtol=1e-6)

    def test_recovers_components(self, planted):
        t, w, q = planted
        res = tensor_power_method(t, n_components=3, n_restarts=5, seed=1)
        np.testing.assert_allclose(res.eigenvalues, w, rtol=1e-3)
        for i in range(3):
            assert abs(res.eigenvectors[i] @ q[:, i]) > 0.999

    def test_requires_cubical_3rd_order(self):
        t = COOTensor.random((5, 6, 7), nnz=20, rng=0)
        with pytest.raises(ShapeError):
            tensor_power_method(t)


class TestTtmChainTucker:
    def test_chain_matches_dense(self):
        x = COOTensor.random((12, 10, 8), nnz=200, rng=1).astype(np.float64)
        rng = np.random.default_rng(2)
        mats = [rng.random((12, 3)), rng.random((8, 2))]
        got = ttm_chain(x, mats, [0, 2]).to_dense()
        want = x.to_dense()
        want = np.moveaxis(np.tensordot(want, mats[0], axes=([0], [0])), -1, 0)
        want = np.moveaxis(np.tensordot(want, mats[1], axes=([2], [0])), -1, 2)
        np.testing.assert_allclose(got, want, rtol=1e-6)

    def test_chain_validation(self):
        x = COOTensor.random((5, 5, 5), nnz=10, rng=0)
        with pytest.raises(ShapeError):
            ttm_chain(x, [np.ones((5, 2))], [0, 1])
        with pytest.raises(ShapeError):
            ttm_chain(x, [np.ones((5, 2))] * 2, [0, 0])

    def test_hooi_exact_recovery(self):
        rng = np.random.default_rng(3)
        core = rng.standard_normal((3, 2, 2))
        dense = core
        for mode, (s, r) in enumerate(zip((15, 12, 10), (3, 2, 2))):
            u = rng.standard_normal((s, r))
            u[rng.random((s, r)) > 0.4] = 0.0
            dense = np.moveaxis(
                np.tensordot(dense, u, axes=([mode], [1])), -1, mode
            )
        x = COOTensor.from_dense(dense)
        res = tucker_hooi(x, (3, 2, 2), n_iters=8, seed=4)
        assert res.fits[-1] > 0.999
        assert res.core.shape == (3, 2, 2)
        # factors orthonormal
        for u in res.factors:
            np.testing.assert_allclose(u.T @ u, np.eye(u.shape[1]), atol=1e-8)

    def test_hooi_rank_validation(self):
        x = COOTensor.random((6, 6, 6), nnz=30, rng=5)
        with pytest.raises(ShapeError):
            tucker_hooi(x, (7, 2, 2))
        with pytest.raises(ShapeError):
            tucker_hooi(x, (2, 2))
