"""Tests for the span tracer, analytics and exporters (repro.obs)."""

import json
import threading

import numpy as np
import pytest

from repro.obs import (
    CAT_CHUNK,
    CAT_KERNEL,
    CAT_REGION,
    NULL_TRACER,
    NullTracer,
    SpanEvent,
    Trace,
    Tracer,
    analyze,
    chrome_trace,
    current_tracer,
    flame_summary,
    imbalance_factor,
    load_chrome,
    save_chrome,
    worker_busy,
    write_jsonl,
)
from repro.parallel import OpenMPBackend


def _chunk(t0, t1, slot, name="chunk", **attrs):
    """Hand-built chunk span with the worker identity already resolved."""
    return SpanEvent(
        name=name, cat=CAT_CHUNK, t0=t0, t1=t1, slot=slot, depth=0,
        path=(name,), attrs=attrs, worker=f"worker-{slot}", tid=slot,
    )


class TestTracerSpans:
    def test_span_records_bounds_and_attrs(self):
        tracer = Tracer()
        with tracer.span("work", cat=CAT_KERNEL, fmt="coo", mode=1):
            pass
        trace = tracer.freeze()
        (span,) = trace.spans()
        assert span.name == "work"
        assert span.cat == CAT_KERNEL
        assert span.t1 >= span.t0
        assert span.attrs == {"fmt": "coo", "mode": 1}

    def test_nesting_depth_and_path(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        trace = tracer.freeze()
        by_name = {s.name: s for s in trace.spans()}
        assert by_name["outer"].depth == 0
        assert by_name["outer"].path == ("outer",)
        assert by_name["inner"].depth == 1
        assert by_name["inner"].path == ("outer", "inner")
        # The inner span closes first and starts inside the outer one.
        assert by_name["outer"].t0 <= by_name["inner"].t0
        assert by_name["inner"].t1 <= by_name["outer"].t1

    def test_annotate_enriches_innermost_open_span(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                tracer.annotate(entries=7)
        by_name = {s.name: s for s in tracer.freeze().spans()}
        assert by_name["inner"].attrs == {"entries": 7}
        assert "entries" not in by_name["outer"].attrs
        tracer.annotate(ignored=True)  # outside any span: silent no-op

    def test_exception_marks_span(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("no")
        (span,) = tracer.freeze().spans()
        assert span.attrs["error"] == "ValueError"

    def test_counters_gauges_and_instants(self):
        tracer = Tracer()
        tracer.count("nnz", 10)
        tracer.count("nnz", 5)
        tracer.gauge("bytes", 64)
        tracer.gauge("bytes", 128)  # gauge keeps the last value
        tracer.instant("launch", cat="gpu", nblocks=3)
        trace = tracer.freeze()
        assert trace.counter_total("nnz") == 15.0
        assert trace.counter_total("missing") == 0.0
        assert list(trace.gauges["bytes"].values()) == [128.0]
        (ev,) = [e for e in trace.events if e.instant]
        assert ev.name == "launch" and ev.t0 == ev.t1
        assert ev.attrs == {"nblocks": 3}

    def test_clear_drops_everything(self):
        tracer = Tracer()
        with tracer.span("work"):
            tracer.count("c")
        tracer.clear()
        trace = tracer.freeze()
        assert trace.events == () and trace.counters == {}


class TestInstall:
    def test_install_uninstall_restores_previous(self):
        assert current_tracer() is NULL_TRACER
        outer, inner = Tracer(), Tracer()
        with outer:
            assert current_tracer() is outer
            with inner:
                assert current_tracer() is inner
            assert current_tracer() is outer
        assert current_tracer() is NULL_TRACER

    def test_null_tracer_is_noop(self):
        null = NullTracer()
        assert not null.enabled
        # Disabled spans hand out one shared null context — no per-call
        # allocation on the disabled path.
        assert null.span("a") is null.span("b", cat="chunk", x=1)
        with null.span("a"):
            pass
        null.count("c", 5)
        null.gauge("g", 1)
        null.instant("i")
        null.annotate(x=1)

    def test_default_global_is_disabled(self):
        assert isinstance(current_tracer(), NullTracer)
        assert not current_tracer().enabled


class TestConcurrentBuffers:
    def test_openmp_chunks_are_slot_tagged_and_complete(self):
        nthreads = 4
        backend = OpenMPBackend(nthreads=nthreads)
        tracer = Tracer()
        seen = []
        lock = threading.Lock()

        def body(lo, hi):
            with lock:
                seen.append((lo, hi))

        try:
            with tracer:
                backend.parallel_for(1000, body, schedule="dynamic")
        finally:
            backend.shutdown()
        trace = tracer.freeze()
        chunks = trace.spans(CAT_CHUNK)
        # One span per executed chunk, each tagged with a valid slot.
        assert len(chunks) == len(seen)
        assert all(0 <= c.slot < nthreads for c in chunks)
        ranges = sorted((c.attrs["lo"], c.attrs["hi"]) for c in chunks)
        assert ranges == sorted(seen)
        # Chunks reassemble the full iteration space exactly once.
        covered = 0
        for lo, hi in ranges:
            assert lo == covered
            covered = hi
        assert covered == 1000
        regions = trace.spans(CAT_REGION)
        assert [r.name for r in regions] == ["parallel_for"]
        assert regions[0].attrs["schedule"] == "dynamic"

    def test_per_slot_buffer_counters_stay_separate(self):
        backend = OpenMPBackend(nthreads=2)
        tracer = Tracer()

        def body(lo, hi):
            tracer.count("iters", hi - lo)

        try:
            with tracer:
                backend.parallel_for(100, body, schedule="static")
        finally:
            backend.shutdown()
        trace = tracer.freeze()
        assert trace.counter_total("iters") == 100.0
        for worker in trace.counters["iters"]:
            assert worker.startswith("worker-")


class TestAnalytics:
    def _hand_built(self):
        # worker-0: two 1s chunks (busy 2.0); worker-1: one 1s chunk.
        events = (
            SpanEvent(
                name="parallel_for", cat=CAT_REGION, t0=0.0, t1=2.0,
                slot=-1, depth=0, path=("parallel_for",), attrs={},
                worker="thread-0", tid=1000,
            ),
            _chunk(0.0, 1.0, 0),
            _chunk(1.0, 2.0, 0),
            _chunk(0.0, 1.0, 1),
        )
        return Trace(events=events, counters={}, gauges={})

    def test_imbalance_on_hand_built_trace(self):
        stats = analyze(self._hand_built())
        assert stats.nworkers == 2
        assert stats.nchunks == 3
        assert stats.wall_s == pytest.approx(2.0)
        assert stats.total_busy_s == pytest.approx(3.0)
        # max busy 2.0 over mean busy 1.5.
        assert stats.imbalance == pytest.approx(2.0 / 1.5)
        assert stats.chunk_imbalance == pytest.approx(1.0)
        assert stats.busy_frac == pytest.approx(3.0 / (2 * 2.0))
        # Region covers the whole wall: no serial tail.
        assert stats.critical_path_s == pytest.approx(2.0)

    def test_worker_busy_and_factor_helpers(self):
        busy = worker_busy(self._hand_built())
        assert busy == {"worker-0": pytest.approx(2.0),
                        "worker-1": pytest.approx(1.0)}
        assert imbalance_factor({}) == 1.0
        assert imbalance_factor({"a": 1.0, "b": 1.0}) == pytest.approx(1.0)

    def test_render_mentions_imbalance(self):
        text = analyze(self._hand_built()).render()
        assert "load imbalance" in text
        assert "worker-0" in text and "worker-1" in text

    def test_as_dict_is_json_serializable(self):
        d = analyze(self._hand_built()).as_dict()
        json.dumps(d)
        assert d["imbalance"] == pytest.approx(2.0 / 1.5)
        assert set(d["busy_per_worker"]) == {"worker-0", "worker-1"}


class TestExport:
    def _traced_run(self):
        backend = OpenMPBackend(nthreads=2)
        tracer = Tracer(meta={"note": "test"})
        try:
            with tracer:
                with tracer.span("kernel", cat=CAT_KERNEL, fmt="coo"):
                    backend.parallel_for(
                        64, lambda lo, hi: tracer.count("iters", hi - lo)
                    )
        finally:
            backend.shutdown()
        return tracer.freeze()

    def test_chrome_roundtrip_schema(self, tmp_path):
        trace = self._traced_run()
        path = str(tmp_path / "trace.json")
        save_chrome(trace, path)
        doc = load_chrome(path)
        assert doc["otherData"]["exporter"] == "repro.obs"
        assert doc["otherData"]["note"] == "test"
        events = doc["traceEvents"]
        chunks = [e for e in events if e.get("name") == "chunk" and e["ph"] == "X"]
        assert chunks, "expected one X event per executed chunk"
        for c in chunks:
            assert c["args"]["slot"] >= 0
            assert c["tid"] == c["args"]["slot"]
            assert c["ts"] >= 0 and c["dur"] >= 0
        assert any(e["ph"] == "C" and e["name"] == "iters" for e in events)
        names = [e for e in events if e["ph"] == "M"]
        assert {m["args"]["name"] for m in names} >= {"worker-0"}

    def test_load_chrome_rejects_non_trace(self, tmp_path):
        path = tmp_path / "bogus.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(ValueError, match="trace-event"):
            load_chrome(str(path))

    def test_jsonl_events_plus_trailer(self, tmp_path):
        trace = self._traced_run()
        path = str(tmp_path / "events.jsonl")
        write_jsonl(trace, path)
        lines = [json.loads(l) for l in open(path)]
        assert len(lines) == len(trace.events) + 1
        assert lines[-1]["meta"] == {"note": "test"}
        assert lines[-1]["counters"]["iters"]
        assert all("t0_s" in l for l in lines[:-1])

    def test_flame_summary_folds_paths(self):
        trace = self._traced_run()
        text = flame_summary(trace)
        assert "chunk" in text and "kernel" in text
        assert flame_summary(Trace((), {}, {})) == "(no spans recorded)"


class TestKernelIntegration:
    def test_traced_mttkrp_emits_spans_and_counters(self):
        from repro.generate import powerlaw_tensor
        from repro.kernels import coo_mttkrp

        x = powerlaw_tensor((80, 60, 10), nnz=2000, seed=5).sort()
        rng = np.random.default_rng(0)
        mats = [rng.random((s, 4)).astype(np.float32) for s in x.shape]
        backend = OpenMPBackend(nthreads=2)
        tracer = Tracer()
        try:
            with tracer:
                out = coo_mttkrp(x, mats, 0, backend, method="atomic")
        finally:
            backend.shutdown()
        ref = coo_mttkrp(x, mats, 0)
        np.testing.assert_allclose(out, ref, rtol=1e-4)
        trace = tracer.freeze()
        kernels = [s for s in trace.spans(CAT_KERNEL) if s.name == "mttkrp"]
        assert len(kernels) == 1
        assert kernels[0].attrs["nnz"] == x.nnz
        assert trace.spans(CAT_CHUNK)
        assert trace.counter_total("kernel.nnz_processed") == float(x.nnz)
        assert trace.counter_total("kernel.flops") == pytest.approx(3.0 * x.nnz * 4)

    def test_disabled_tracer_records_nothing(self):
        from repro.generate import powerlaw_tensor
        from repro.kernels import coo_ttv

        x = powerlaw_tensor((50, 40, 8), nnz=500, seed=7).sort()
        v = np.ones(x.shape[1], dtype=np.float32)
        probe = Tracer()  # never installed: kernels see the null tracer
        coo_ttv(x, v, 1)
        assert probe.freeze().events == ()
        assert current_tracer() is NULL_TRACER

    def test_gpu_costmodel_emits_launch_instants(self):
        from repro.generate import powerlaw_tensor
        from repro.gpu.device import DeviceSpec
        from repro.gpu.kernels import gpu_coo_mttkrp
        from repro.roofline import PLATFORMS

        gpu = next(p for p in PLATFORMS if p.is_gpu)
        dev = DeviceSpec.from_platform(gpu)
        x = powerlaw_tensor((60, 50, 8), nnz=1000, seed=3).sort()
        rng = np.random.default_rng(0)
        mats = [rng.random((s, 4)).astype(np.float32) for s in x.shape]
        tracer = Tracer()
        with tracer:
            gpu_coo_mttkrp(x, mats, 0, dev)
        trace = tracer.freeze()
        launches = [e for e in trace.events if e.name == "gpu_launch"]
        assert launches and all(e.instant for e in launches)
        assert trace.counter_total("gpu.launches") == len(launches)
        assert trace.counter_total("gpu.atomics_issued") > 0


class TestRunnerTrace:
    def test_runner_attaches_obs_analytics(self):
        from repro.bench.runner import RunnerConfig, SuiteRunner
        from repro.generate import powerlaw_tensor
        from repro.roofline import PLATFORMS
        from repro.types import Format, Kernel

        cpu = next(p for p in PLATFORMS if not p.is_gpu)
        cfg = RunnerConfig(
            trace=True, repeats=1, warmup=0,
            kernels=(Kernel.TTV,), formats=(Format.COO,),
        )
        x = powerlaw_tensor((60, 50, 8), nnz=1000, seed=3)
        (rec,) = SuiteRunner(cpu, cfg).run_tensor("t", x)
        obs = rec.extra["obs"]
        assert obs["imbalance"] >= 1.0
        assert 0.0 <= obs["busy_frac"] <= 1.0
        assert obs["counters"]["kernel.nnz_processed"] > 0
        assert current_tracer() is NULL_TRACER


class TestGaugeRollup:
    def test_tracer_tracks_gauge_peaks(self):
        tracer = Tracer()
        tracer.gauge("bytes", 256)
        tracer.gauge("bytes", 64)  # re-set lower: last wins, peak stays
        trace = tracer.freeze()
        assert list(trace.gauges["bytes"].values()) == [64.0]
        assert list(trace.gauge_peaks["bytes"].values()) == [256.0]

    def test_rollup_is_max_per_worker_then_sum(self):
        from repro.obs import rollup_gauges

        # Two workers, each re-setting the gauge across "regions": the
        # rollup must sum each worker's peak, not the per-observation sum
        # (which double-counts) nor the shrunken last values.
        trace = Trace(
            events=(),
            counters={},
            gauges={"ws.arena_bytes": {"worker-0": 100.0, "worker-1": 50.0}},
            gauge_peaks={"ws.arena_bytes": {"worker-0": 400.0, "worker-1": 300.0}},
        )
        assert rollup_gauges(trace) == {"ws.arena_bytes": 700.0}
        assert analyze(trace).gauges == {"ws.arena_bytes": 700.0}

    def test_rollup_falls_back_to_last_values(self):
        from repro.obs import rollup_gauges

        # Hand-built traces (and old snapshots) carry no peaks: the last
        # values stand in, preserving the one-arena-per-slot sum.
        trace = Trace(
            events=(), counters={},
            gauges={"g": {"worker-0": 10.0, "worker-1": 20.0}},
        )
        assert rollup_gauges(trace) == {"g": 30.0}

    def test_analyze_uses_peaks_not_last_values(self):
        tracer = Tracer()
        tracer.gauge("ws.arena_bytes", 4096)
        tracer.gauge("ws.arena_bytes", 1024)  # arena shrank between regions
        stats = analyze(tracer.freeze())
        assert stats.gauges["ws.arena_bytes"] == 4096.0
