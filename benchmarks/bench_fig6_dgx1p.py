"""Figure 6 — kernel performance on DGX-1P (Tesla P100, simulated)."""

import pytest

from repro.gpu import P100, gpu_coo_mttkrp, gpu_tew, gpu_ts, gpu_ttm, gpu_ttv

from figcommon import REAL_KEYS, SYN_KEYS, check_report, regenerate_figure


def test_regenerate_fig6_real(benchmark):
    report = benchmark(lambda: regenerate_figure("fig6", "real", REAL_KEYS))
    check_report(report)


def test_regenerate_fig6_synthetic(benchmark):
    report = benchmark(lambda: regenerate_figure("fig6", "synthetic", SYN_KEYS))
    check_report(report)


def test_gpu_tew_launch(benchmark, bench_tensor):
    res = benchmark(
        lambda: gpu_tew(bench_tensor, bench_tensor, "add", P100,
                        assume_same_pattern=True)
    )
    assert res.seconds > 0


def test_gpu_ts_launch(benchmark, bench_tensor):
    res = benchmark(lambda: gpu_ts(bench_tensor, 1.5, "mul", P100))
    assert res.seconds > 0


def test_gpu_ttv_launch(benchmark, bench_tensor, bench_vectors):
    res = benchmark(lambda: gpu_ttv(bench_tensor, bench_vectors[2], 2, P100))
    assert res.timing.imbalance >= 1.0


def test_gpu_ttm_launch(benchmark, bench_tensor, bench_mats):
    res = benchmark(lambda: gpu_ttm(bench_tensor, bench_mats[2], 2, P100))
    assert res.seconds > 0


def test_gpu_mttkrp_launch(benchmark, bench_tensor, bench_mats):
    res = benchmark(lambda: gpu_coo_mttkrp(bench_tensor, bench_mats, 0, P100))
    assert res.timing.atomic_s > 0
