"""Ablation — tensor reordering for locality (Li et al. ICS'19, cited).

Measures what reordering buys: HiCOO blocking quality (block count /
occupancy) and Mttkrp time before and after degree/Lexi reordering.
"""

import numpy as np
import pytest

from repro.kernels import hicoo_mttkrp
from repro.sptensor import (
    HiCOOTensor,
    blocking_quality,
    degree_reorder,
    lexi_reorder,
    random_reorder,
)


@pytest.mark.parametrize("strategy", ["none", "random", "degree", "lexi"])
def test_reorder_cost(benchmark, bench_tensor, strategy):
    fn = {
        "none": lambda: bench_tensor,
        "random": lambda: random_reorder(bench_tensor, seed=0)[0],
        "degree": lambda: degree_reorder(bench_tensor)[0],
        "lexi": lambda: lexi_reorder(bench_tensor, sweeps=3)[0],
    }[strategy]
    out = benchmark(fn)
    assert out.nnz == bench_tensor.nnz


@pytest.mark.parametrize("strategy", ["none", "degree"])
def test_hicoo_mttkrp_after_reorder(benchmark, bench_tensor, bench_mats, strategy):
    if strategy == "none":
        t = bench_tensor
        mats = bench_mats
    else:
        t, perms = degree_reorder(bench_tensor)
        mats = [m.copy() for m in bench_mats]
        for mode, perm in perms.items():
            mats[mode][perm] = bench_mats[mode]
    h = HiCOOTensor.from_coo(t, 128)
    out = benchmark(lambda: hicoo_mttkrp(h, mats, 0))
    assert out.shape[0] == t.shape[0]


def test_reordering_improves_blocking(bench_tensor):
    base = blocking_quality(bench_tensor, 128)
    deg = blocking_quality(degree_reorder(bench_tensor)[0], 128)
    assert deg["nblocks"] <= base["nblocks"]
    assert deg["alpha"] >= base["alpha"]
