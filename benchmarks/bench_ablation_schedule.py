"""Ablation — OpenMP scheduling strategy (static/dynamic/guided).

The paper parallelizes with "different scheduling strategies"; this
ablation times the fiber-parallel Ttv (the imbalance-sensitive kernel)
under each schedule, on the thread backend.
"""

import pytest

from repro.kernels import coo_ttv, coo_mttkrp
from repro.parallel import OpenMPBackend
from repro.types import Schedule


@pytest.fixture(scope="module")
def omp():
    be = OpenMPBackend(nthreads=4)
    yield be
    be.shutdown()


@pytest.mark.parametrize("schedule", list(Schedule))
def test_ttv_schedule(benchmark, bench_tensor, bench_vectors, omp, schedule):
    out = benchmark(
        lambda: coo_ttv(bench_tensor, bench_vectors[2], 2, backend=omp,
                        schedule=schedule)
    )
    assert out.nnz > 0


@pytest.mark.parametrize("schedule", [Schedule.STATIC, Schedule.DYNAMIC])
def test_mttkrp_schedule(benchmark, bench_tensor, bench_mats, omp, schedule):
    out = benchmark(
        lambda: coo_mttkrp(bench_tensor, bench_mats, 0, backend=omp,
                           schedule=schedule)
    )
    assert out.sum() != 0
