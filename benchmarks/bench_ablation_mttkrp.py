"""Ablation — Mttkrp update strategy: atomic scatter vs sort-reduce vs
owner-computes row partitioning.

The paper's reference COO-Mttkrp uses atomics; the lock-avoiding
sort-reduce alternative (cited as the tuned approach) trades a sort for
contention-free updates; owner-computes pre-buckets non-zeros by disjoint
output-row ranges so no synchronization is needed at all (and results are
bit-identical to the sequential kernel).  Contention depends on the
tensor: power-law tensors hammer hub rows, Kronecker tensors spread more
evenly.  The threaded ``atomic`` path is additionally ablated over its
privatization strategy: per-thread arenas vs the per-chunk buffers the
seed implementation used (see ``bench_hotpaths.py`` for the tracked
comparison).
"""

import pytest

from repro.kernels import coo_mttkrp
from repro.parallel import OpenMPBackend

METHODS = ["atomic", "sort", "owner"]


@pytest.mark.parametrize("method", METHODS)
def test_mttkrp_method_powerlaw(benchmark, bench_tensor, bench_mats, method):
    out = benchmark(lambda: coo_mttkrp(bench_tensor, bench_mats, 0, method=method))
    assert out.shape == (bench_tensor.shape[0], 16)


@pytest.mark.parametrize("method", METHODS)
def test_mttkrp_method_kronecker(benchmark, bench_kron_tensor, method):
    import numpy as np

    rng = np.random.default_rng(2)
    mats = [
        rng.random((s, 16)).astype(np.float32) for s in bench_kron_tensor.shape
    ]
    out = benchmark(
        lambda: coo_mttkrp(bench_kron_tensor, mats, 0, method=method)
    )
    assert out.shape[0] == bench_kron_tensor.shape[0]


@pytest.mark.parametrize("privatize", ["arena", "chunk"])
def test_mttkrp_privatization(benchmark, bench_tensor, bench_mats, privatize):
    """Per-thread arenas vs the seed's per-chunk buffers (dynamic schedule)."""
    be = OpenMPBackend(nthreads=4)
    try:
        out = benchmark(
            lambda: coo_mttkrp(
                bench_tensor, bench_mats, 0, backend=be,
                schedule="dynamic", privatize=privatize,
            )
        )
        assert out.shape == (bench_tensor.shape[0], 16)
    finally:
        be.shutdown()


def test_methods_agree(bench_tensor, bench_mats):
    import numpy as np

    a = coo_mttkrp(bench_tensor, bench_mats, 1, method="atomic")
    b = coo_mttkrp(bench_tensor, bench_mats, 1, method="sort")
    c = coo_mttkrp(bench_tensor, bench_mats, 1, method="owner")
    np.testing.assert_allclose(a, b, rtol=1e-3)
    # owner is not merely close — it is the sequential result, bit for bit
    np.testing.assert_array_equal(a, c)
