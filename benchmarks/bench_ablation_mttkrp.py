"""Ablation — Mttkrp update strategy: atomic scatter vs sort-reduce.

The paper's reference COO-Mttkrp uses atomics; the lock-avoiding
sort-reduce alternative (cited as the tuned approach) trades a sort for
contention-free updates.  Contention depends on the tensor: power-law
tensors hammer hub rows, Kronecker tensors spread more evenly.
"""

import pytest

from repro.kernels import coo_mttkrp


@pytest.mark.parametrize("method", ["atomic", "sort"])
def test_mttkrp_method_powerlaw(benchmark, bench_tensor, bench_mats, method):
    out = benchmark(lambda: coo_mttkrp(bench_tensor, bench_mats, 0, method=method))
    assert out.shape == (bench_tensor.shape[0], 16)


@pytest.mark.parametrize("method", ["atomic", "sort"])
def test_mttkrp_method_kronecker(benchmark, bench_kron_tensor, method):
    import numpy as np

    rng = np.random.default_rng(2)
    mats = [
        rng.random((s, 16)).astype(np.float32) for s in bench_kron_tensor.shape
    ]
    out = benchmark(
        lambda: coo_mttkrp(bench_kron_tensor, mats, 0, method=method)
    )
    assert out.shape[0] == bench_kron_tensor.shape[0]


def test_methods_agree(bench_tensor, bench_mats):
    import numpy as np

    a = coo_mttkrp(bench_tensor, bench_mats, 1, method="atomic")
    b = coo_mttkrp(bench_tensor, bench_mats, 1, method="sort")
    np.testing.assert_allclose(a, b, rtol=1e-3)
