"""Table 1 — kernel work/traffic/OI analysis + host kernel timings.

Regenerates the Table 1 report and benchmarks each kernel's timed loop in
both formats on the reference tensor so the measured flops/byte behaviour
can be compared against the analytical OIs.
"""

import pytest

from repro.bench import table1
from repro.kernels import (
    coo_mttkrp,
    coo_tew,
    coo_ts,
    coo_ttm,
    coo_ttv,
    hicoo_mttkrp,
    hicoo_tew,
    hicoo_ts,
    hicoo_ttm,
    hicoo_ttv,
)

from conftest import RANK, save_report


def test_regenerate_table1(benchmark):
    report = benchmark(table1)
    assert len(report.rows) == 5
    save_report(report)


@pytest.mark.parametrize("fmt", ["coo", "hicoo"])
def test_tew(benchmark, bench_tensor, bench_hicoo, fmt):
    x = bench_tensor if fmt == "coo" else bench_hicoo
    fn = coo_tew if fmt == "coo" else hicoo_tew
    benchmark(lambda: fn(x, x, "add", assume_same_pattern=True))


@pytest.mark.parametrize("fmt", ["coo", "hicoo"])
def test_ts(benchmark, bench_tensor, bench_hicoo, fmt):
    x = bench_tensor if fmt == "coo" else bench_hicoo
    fn = coo_ts if fmt == "coo" else hicoo_ts
    benchmark(lambda: fn(x, 1.5, "mul"))


@pytest.mark.parametrize("fmt", ["coo", "hicoo"])
def test_ttv(benchmark, bench_tensor, bench_hicoo, bench_vectors, fmt):
    x = bench_tensor if fmt == "coo" else bench_hicoo
    fn = coo_ttv if fmt == "coo" else hicoo_ttv
    benchmark(lambda: fn(x, bench_vectors[2], 2))


@pytest.mark.parametrize("fmt", ["coo", "hicoo"])
def test_ttm(benchmark, bench_tensor, bench_hicoo, bench_mats, fmt):
    x = bench_tensor if fmt == "coo" else bench_hicoo
    fn = coo_ttm if fmt == "coo" else hicoo_ttm
    benchmark(lambda: fn(x, bench_mats[2], 2))


@pytest.mark.parametrize("fmt", ["coo", "hicoo"])
def test_mttkrp(benchmark, bench_tensor, bench_hicoo, bench_mats, fmt):
    x = bench_tensor if fmt == "coo" else bench_hicoo
    fn = coo_mttkrp if fmt == "coo" else hicoo_mttkrp
    benchmark(lambda: fn(x, bench_mats, 0))
