"""Ablation — BCSF load balancing (paper future work: balanced CSF).

On power-law tensors, plain CSF's root-subtree decomposition is badly
skewed; BCSF's virtual roots bound the work per scheduling unit.  This
ablation measures the imbalance reduction and the Mttkrp cost across
split caps.
"""

import pytest

from repro.kernels import coo_mttkrp, csf_mttkrp
from repro.sptensor import BCSFTensor, CSFTensor, bcsf_mttkrp


@pytest.mark.parametrize("cap", [64, 512, 4096])
def test_bcsf_build_cap(benchmark, bench_tensor, cap):
    b = benchmark(lambda: BCSFTensor.from_coo(bench_tensor, max_nnz_per_vroot=cap))
    assert b.vroot_nnz().sum() == bench_tensor.nnz


@pytest.mark.parametrize("cap", [64, 4096])
def test_bcsf_mttkrp_cap(benchmark, bench_tensor, bench_mats, cap):
    b = BCSFTensor.from_coo(bench_tensor, max_nnz_per_vroot=cap)
    out = benchmark(lambda: bcsf_mttkrp(b, bench_mats, 0))
    assert out.shape[0] == bench_tensor.shape[0]


def test_csf_mttkrp_baseline(benchmark, bench_tensor, bench_mats):
    c = CSFTensor.from_coo(bench_tensor)
    out = benchmark(lambda: csf_mttkrp(c, bench_mats, 0))
    assert out.shape[0] == bench_tensor.shape[0]


def test_balancing_effect(bench_tensor, bench_mats):
    """BCSF's point: vroot imbalance far below root imbalance on
    power-law data, at identical numerics."""
    import numpy as np

    b = BCSFTensor.from_coo(bench_tensor, max_nnz_per_vroot=256)
    assert b.imbalance() < b.root_imbalance() / 2
    np.testing.assert_allclose(
        bcsf_mttkrp(b, bench_mats, 0),
        coo_mttkrp(bench_tensor, bench_mats, 0),
        rtol=1e-3,
    )
