"""Hot-path harness: kernel × format × method × schedule × tier wall-clock.

Times the scatter-add kernels (Mttkrp on COO/HiCOO) and the fiber-parallel
kernels (Ttv/Ttm) across update methods (``atomic`` with arena vs per-chunk
privatization, ``sort``, ``owner``), schedules, backends, and execution
tiers (``numpy`` vs ``compiled``), and writes ``BENCH_kernels.json`` at the
repo root.  The JSON is committed so every PR has a perf trajectory to
compare against:

    PYTHONPATH=src python benchmarks/bench_hotpaths.py            # full
    PYTHONPATH=src python benchmarks/bench_hotpaths.py --quick    # CI smoke

Every entry carries a ``tier`` tag; the compiled-tier entries mirror the
NumPy-tier identities cell for cell, so splitting the file by tier yields
two regress-comparable baselines (the CI ``compiled-gate`` does exactly
that).  One-time costs — Numba JIT compilation and fallback scatter-plan
construction — land in warmup, are measured through
:func:`repro.compiled.compile_stats`, and are reported separately as
``compile_s`` per entry so ``median_s`` stays steady-state.  Each entry is
also attributed against the Bluesky CPU roofline
(``bound_fraction = achieved / min(peak, OI x ERT-DRAM)``).

Invariants asserted and recorded under ``checks``:

* the per-thread arena path beats the seed's per-chunk privatization on
  COO-Mttkrp (NumPy tier, dynamic schedule, >= 4 threads);
* ``method="owner"`` is bit-identical to the sequential kernel;
* the compiled tier is bit-identical to its NumPy-tier contract partners
  (owner vs sequential, sort vs the NumPy sort tier);
* the compiled tier is >= 2x faster than the NumPy tier on COO-Mttkrp for
  at least one method (asserted at full size only).
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import time

import numpy as np

from repro.compiled import available as compiled_available
from repro.compiled import compile_stats
from repro.generate import powerlaw_tensor
from repro.kernels import coo_mttkrp, coo_ttm, coo_ttv, hicoo_mttkrp
from repro.obs import Tracer, analyze, chrome_trace
from repro.obs.attribution import attribute
from repro.parallel import OpenMPBackend, get_backend
from repro.roofline import BLUESKY, RooflineModel
from repro.roofline.oi import cost_for, extract_features
from repro.sptensor import HiCOOTensor

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_kernels.json")
RANK = 16
BLOCK = 128
TIERS = ("numpy", "compiled")

#: Entry keys that are measurements; everything else is identity tags
#: (must mirror ``repro.bench.regress._BENCH_VALUE_KEYS``).
_VALUE_KEYS = {
    "median_s", "min_s", "reps", "compile_s",
    "imbalance", "busy_frac", "eff_bw_gbs", "bound_fraction",
}


def _time(fn, reps: int, warmup: int = 1) -> dict:
    # One-time costs (Numba JIT compiles, fallback scatter-plan builds)
    # land in warmup; the compile-stats delta around it is reported as
    # compile_s so median_s measures only steady-state execution.
    c0 = compile_stats()["compile_seconds"]
    for _ in range(warmup):
        fn()
    compile_s = compile_stats()["compile_seconds"] - c0
    samples = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return {
        "median_s": round(statistics.median(samples), 6),
        "min_s": round(min(samples), 6),
        "compile_s": round(compile_s, 6),
        "reps": reps,
    }


def run(quick: bool, nthreads: int, reps: int, trace_path: str | None = None) -> dict:
    shape, nnz = ((2000, 2000, 32), 30_000) if quick else ((8000, 8000, 64), 200_000)
    x = powerlaw_tensor(shape, nnz=nnz, dense_modes=(2,), seed=13).sort()
    h = HiCOOTensor.from_coo(x, BLOCK)
    rng = np.random.default_rng(1)
    mats = [rng.random((s, RANK)).astype(np.float32) for s in x.shape]
    vec = rng.random(x.shape[1]).astype(np.float32)
    u = rng.random((x.shape[1], RANK)).astype(np.float32)
    seq = get_backend("sequential")
    omp = OpenMPBackend(nthreads=nthreads)
    features = extract_features(x, "bench", BLOCK, hicoo=h)
    model = RooflineModel(BLUESKY)

    results = []
    traces: list = []

    def record(kernel, fmt, backend, nthr, fn, **tags):
        entry = {"kernel": kernel, "format": fmt, "backend": backend,
                 "nthreads": nthr, **tags, **_time(fn, reps)}
        # Effective DRAM bandwidth: Table-1 modeled bytes over measured
        # median — comparable against the platform ceilings in Table 1.
        cost = cost_for(features, kernel, fmt, r=RANK)
        if entry["median_s"] > 0:
            entry["eff_bw_gbs"] = round(cost.bytes / entry["median_s"] / 1e9, 3)
            att = attribute(model, cost, entry["median_s"], entry["median_s"])
            entry["bound_fraction"] = round(att.bound_fraction, 4)
        if backend != "sequential":
            # One traced rerun *after* the timing loop: the tracer is only
            # installed here, so the recorded medians keep the untraced
            # hot path while the entry still carries imbalance analytics.
            tracer = Tracer()
            with tracer:
                fn()
            trace = tracer.freeze()
            st = analyze(trace)
            entry["imbalance"] = round(st.imbalance, 3)
            entry["busy_frac"] = round(st.busy_frac, 3)
            if trace_path:
                label = "/".join(
                    str(v) for v in (kernel, fmt, *tags.values())
                )
                traces.append((label, trace))
        results.append(entry)
        return entry

    timings = {}
    for tier in TIERS:
        # --- Mttkrp: the scatter-add ablation ------------------------- #
        record("mttkrp", "coo", "sequential", 1,
               lambda t=tier: coo_mttkrp(x, mats, 0, seq, tier=t),
               method="atomic", tier=tier)
        for schedule in ("static", "dynamic"):
            for privatize in ("arena", "chunk"):
                e = record(
                    "mttkrp", "coo", "openmp", nthreads,
                    lambda s=schedule, p=privatize, t=tier: coo_mttkrp(
                        x, mats, 0, omp, method="atomic", schedule=s,
                        privatize=p, tier=t,
                    ),
                    method="atomic", schedule=schedule, privatize=privatize,
                    tier=tier,
                )
                timings[(tier, schedule, privatize)] = e["median_s"]
        for method in ("sort", "owner"):
            record("mttkrp", "coo", "openmp", nthreads,
                   lambda m=method, t=tier: coo_mttkrp(
                       x, mats, 0, omp, method=m, tier=t),
                   method=method, tier=tier)

        record("mttkrp", "hicoo", "sequential", 1,
               lambda t=tier: hicoo_mttkrp(h, mats, 0, seq, tier=t),
               method="atomic", tier=tier)
        for privatize in ("arena", "chunk"):
            record("mttkrp", "hicoo", "openmp", nthreads,
                   lambda p=privatize, t=tier: hicoo_mttkrp(
                       h, mats, 0, omp, method="atomic", privatize=p, tier=t),
                   method="atomic", schedule="dynamic", privatize=privatize,
                   tier=tier)
        record("mttkrp", "hicoo", "openmp", nthreads,
               lambda t=tier: hicoo_mttkrp(h, mats, 0, omp, method="owner",
                                           tier=t),
               method="owner", tier=tier)

        # --- Ttv / Ttm: fiber partitioning ---------------------------- #
        for partition in ("uniform", "balanced"):
            record("ttv", "coo", "openmp", nthreads,
                   lambda p=partition, t=tier: coo_ttv(
                       x, vec, 1, omp, partition=p, tier=t),
                   partition=partition, tier=tier)
            record("ttm", "coo", "openmp", nthreads,
                   lambda p=partition, t=tier: coo_ttm(
                       x, u, 1, omp, partition=p, tier=t),
                   partition=partition, tier=tier)

    # --- Invariant checks (recorded, and asserted below) --------------- #
    ref = coo_mttkrp(x, mats, 0, seq)
    owner_seq = coo_mttkrp(x, mats, 0, seq, method="owner")
    owner_par = coo_mttkrp(x, mats, 0, omp, method="owner")
    # Compiled-tier bit-compat contracts: owner accumulates linearly in
    # storage order (np.add.at's schedule) so it must match the sequential
    # kernel bit for bit; sort reduces pairwise, so its partner is the
    # NumPy sort tier, not the sequential kernel.
    comp_owner = coo_mttkrp(x, mats, 0, omp, method="owner", tier="compiled")
    sort_np = coo_mttkrp(x, mats, 0, omp, method="sort")
    comp_sort = coo_mttkrp(x, mats, 0, omp, method="sort", tier="compiled")

    # Best compiled-over-numpy speedup across matched COO-Mttkrp cells.
    cells: dict = {}
    for e in results:
        if e["kernel"] == "mttkrp" and e["format"] == "coo":
            key = tuple(sorted(
                (k, str(v)) for k, v in e.items()
                if k not in _VALUE_KEYS and k != "tier"
            ))
            cells.setdefault(key, {})[e["tier"]] = e["median_s"]
    speedups = [
        c["numpy"] / c["compiled"] for c in cells.values()
        if c.get("compiled", 0) > 0 and "numpy" in c
    ]

    arena_s = timings[("numpy", "dynamic", "arena")]
    chunk_s = timings[("numpy", "dynamic", "chunk")]
    checks = {
        "arena_beats_chunk_coo_dynamic": bool(arena_s < chunk_s),
        "arena_speedup_vs_chunk_dynamic": round(chunk_s / arena_s, 3),
        "owner_bitidentical_to_sequential": bool(
            np.array_equal(ref, owner_seq) and np.array_equal(ref, owner_par)
        ),
        "compiled_bitidentical_to_numpy": bool(
            np.array_equal(ref, comp_owner)
            and np.array_equal(sort_np, comp_sort)
        ),
        "compiled_speedup_coo_mttkrp": round(max(speedups), 3),
        "compiled_2x_coo_mttkrp": bool(max(speedups) >= 2.0),
    }
    omp.shutdown()

    if trace_path:
        # One Chrome-trace document, one pid per traced entry, so Perfetto
        # shows each kernel config as its own process lane.
        merged = {"traceEvents": [], "displayTimeUnit": "ms"}
        for pid, (label, trace) in enumerate(traces):
            merged["traceEvents"].append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": label},
            })
            for ev in chrome_trace(trace)["traceEvents"]:
                merged["traceEvents"].append(dict(ev, pid=pid))
        with open(trace_path, "w") as f:
            json.dump(merged, f, indent=1)
            f.write("\n")
        print(f"wrote Chrome trace ({len(traces)} traced reruns) -> {trace_path}")

    stats = compile_stats()
    return {
        "meta": {
            "tensor": {"shape": list(shape), "nnz": int(x.nnz),
                       "generator": "powerlaw(dense_modes=(2,), seed=13)"},
            "rank": RANK,
            "hicoo_block": BLOCK,
            "nthreads": nthreads,
            "host_cpus": os.cpu_count(),
            "numpy": np.__version__,
            "quick": quick,
            "roofline_platform": BLUESKY.name,
            "compiled": {
                "numba_available": compiled_available(),
                "calls": stats["calls"],
                "fallback_calls": stats["fallback_calls"],
                "jit_compiles": stats["jit_compiles"],
                "compile_seconds": round(stats["compile_seconds"], 6),
            },
        },
        "results": results,
        "checks": checks,
    }


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small tensor, fewer reps (CI smoke)")
    ap.add_argument("--out", default=DEFAULT_OUT,
                    help=f"output JSON path (default {DEFAULT_OUT})")
    ap.add_argument("--threads", type=int, default=max(4, os.cpu_count() or 1),
                    help="OpenMP backend thread count (>= 4 for the ablation)")
    ap.add_argument("--reps", type=int, default=None,
                    help="timing repetitions (default 3 quick / 7 full)")
    ap.add_argument("--trace", metavar="PATH", default=None,
                    help="save a Chrome trace of the traced reruns to PATH")
    args = ap.parse_args()
    reps = args.reps or (3 if args.quick else 7)

    report = run(args.quick, args.threads, reps, trace_path=args.trace)
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(f"wrote {args.out}")
    for key, val in report["checks"].items():
        print(f"  {key}: {val}")
    if not report["checks"]["owner_bitidentical_to_sequential"]:
        raise SystemExit("FAIL: owner method not bit-identical to sequential")
    if not report["checks"]["compiled_bitidentical_to_numpy"]:
        raise SystemExit("FAIL: compiled tier not bit-identical to NumPy tier")
    # Timing checks are only meaningful at full size; the quick smoke's
    # tiny tensor produces too few chunks for a stable margin on noisy CI.
    if not args.quick:
        if not report["checks"]["arena_beats_chunk_coo_dynamic"]:
            raise SystemExit("FAIL: arena privatization did not beat per-chunk")
        if not report["checks"]["compiled_2x_coo_mttkrp"]:
            raise SystemExit(
                "FAIL: compiled tier < 2x NumPy tier on COO-Mttkrp"
            )


if __name__ == "__main__":
    main()
