"""Hot-path harness: kernel × format × method × schedule wall-clock.

Times the scatter-add kernels (Mttkrp on COO/HiCOO) and the fiber-parallel
kernels (Ttv/Ttm) across update methods (``atomic`` with arena vs per-chunk
privatization, ``sort``, ``owner``), schedules, and backends, and writes
``BENCH_kernels.json`` at the repo root.  The JSON is committed so every PR
has a perf trajectory to compare against:

    PYTHONPATH=src python benchmarks/bench_hotpaths.py            # full
    PYTHONPATH=src python benchmarks/bench_hotpaths.py --quick    # CI smoke

Two invariants are asserted and recorded under ``checks``:

* the per-thread arena path beats the seed's per-chunk privatization on
  COO-Mttkrp (dynamic schedule, >= 4 threads) — the tentpole claim;
* ``method="owner"`` is bit-identical to the sequential kernel.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import time

import numpy as np

from repro.generate import powerlaw_tensor
from repro.kernels import coo_mttkrp, coo_ttm, coo_ttv, hicoo_mttkrp
from repro.obs import Tracer, analyze, chrome_trace
from repro.parallel import OpenMPBackend, get_backend
from repro.roofline.oi import cost_for, extract_features
from repro.sptensor import HiCOOTensor

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_OUT = os.path.join(REPO_ROOT, "BENCH_kernels.json")
RANK = 16
BLOCK = 128


def _time(fn, reps: int, warmup: int = 1) -> dict:
    for _ in range(warmup):
        fn()
    samples = []
    for _ in range(reps):
        t0 = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - t0)
    return {
        "median_s": round(statistics.median(samples), 6),
        "min_s": round(min(samples), 6),
        "reps": reps,
    }


def run(quick: bool, nthreads: int, reps: int, trace_path: str | None = None) -> dict:
    shape, nnz = ((2000, 2000, 32), 30_000) if quick else ((8000, 8000, 64), 200_000)
    x = powerlaw_tensor(shape, nnz=nnz, dense_modes=(2,), seed=13).sort()
    h = HiCOOTensor.from_coo(x, BLOCK)
    rng = np.random.default_rng(1)
    mats = [rng.random((s, RANK)).astype(np.float32) for s in x.shape]
    vec = rng.random(x.shape[1]).astype(np.float32)
    seq = get_backend("sequential")
    omp = OpenMPBackend(nthreads=nthreads)
    features = extract_features(x, "bench", BLOCK, hicoo=h)

    results = []
    traces: list = []

    def record(kernel, fmt, backend, nthr, fn, **tags):
        entry = {"kernel": kernel, "format": fmt, "backend": backend,
                 "nthreads": nthr, **tags, **_time(fn, reps)}
        # Effective DRAM bandwidth: Table-1 modeled bytes over measured
        # median — comparable against the platform ceilings in Table 1.
        cost = cost_for(features, kernel, fmt, r=RANK)
        if entry["median_s"] > 0:
            entry["eff_bw_gbs"] = round(cost.bytes / entry["median_s"] / 1e9, 3)
        if backend != "sequential":
            # One traced rerun *after* the timing loop: the tracer is only
            # installed here, so the recorded medians keep the untraced
            # hot path while the entry still carries imbalance analytics.
            tracer = Tracer()
            with tracer:
                fn()
            trace = tracer.freeze()
            st = analyze(trace)
            entry["imbalance"] = round(st.imbalance, 3)
            entry["busy_frac"] = round(st.busy_frac, 3)
            if trace_path:
                label = "/".join(
                    str(v) for v in (kernel, fmt, *tags.values())
                )
                traces.append((label, trace))
        results.append(entry)
        return entry

    # --- Mttkrp: the scatter-add ablation ----------------------------- #
    record("mttkrp", "coo", "sequential", 1,
           lambda: coo_mttkrp(x, mats, 0, seq), method="atomic")
    timings = {}
    for schedule in ("static", "dynamic"):
        for privatize in ("arena", "chunk"):
            e = record(
                "mttkrp", "coo", "openmp", nthreads,
                lambda s=schedule, p=privatize: coo_mttkrp(
                    x, mats, 0, omp, method="atomic", schedule=s, privatize=p
                ),
                method="atomic", schedule=schedule, privatize=privatize,
            )
            timings[(schedule, privatize)] = e["median_s"]
    for method in ("sort", "owner"):
        record("mttkrp", "coo", "openmp", nthreads,
               lambda m=method: coo_mttkrp(x, mats, 0, omp, method=m),
               method=method)

    record("mttkrp", "hicoo", "sequential", 1,
           lambda: hicoo_mttkrp(h, mats, 0, seq), method="atomic")
    for privatize in ("arena", "chunk"):
        record("mttkrp", "hicoo", "openmp", nthreads,
               lambda p=privatize: hicoo_mttkrp(
                   h, mats, 0, omp, method="atomic", privatize=p),
               method="atomic", schedule="dynamic", privatize=privatize)
    record("mttkrp", "hicoo", "openmp", nthreads,
           lambda: hicoo_mttkrp(h, mats, 0, omp, method="owner"),
           method="owner")

    # --- Ttv / Ttm: fiber partitioning -------------------------------- #
    u = rng.random((x.shape[1], RANK)).astype(np.float32)
    for partition in ("uniform", "balanced"):
        record("ttv", "coo", "openmp", nthreads,
               lambda p=partition: coo_ttv(x, vec, 1, omp, partition=p),
               partition=partition)
        record("ttm", "coo", "openmp", nthreads,
               lambda p=partition: coo_ttm(x, u, 1, omp, partition=p),
               partition=partition)

    # --- Invariant checks (recorded, and asserted below) --------------- #
    ref = coo_mttkrp(x, mats, 0, seq)
    owner_seq = coo_mttkrp(x, mats, 0, seq, method="owner")
    owner_par = coo_mttkrp(x, mats, 0, omp, method="owner")
    arena_s = timings[("dynamic", "arena")]
    chunk_s = timings[("dynamic", "chunk")]
    checks = {
        "arena_beats_chunk_coo_dynamic": bool(arena_s < chunk_s),
        "arena_speedup_vs_chunk_dynamic": round(chunk_s / arena_s, 3),
        "owner_bitidentical_to_sequential": bool(
            np.array_equal(ref, owner_seq) and np.array_equal(ref, owner_par)
        ),
    }
    omp.shutdown()

    if trace_path:
        # One Chrome-trace document, one pid per traced entry, so Perfetto
        # shows each kernel config as its own process lane.
        merged = {"traceEvents": [], "displayTimeUnit": "ms"}
        for pid, (label, trace) in enumerate(traces):
            merged["traceEvents"].append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": label},
            })
            for ev in chrome_trace(trace)["traceEvents"]:
                merged["traceEvents"].append(dict(ev, pid=pid))
        with open(trace_path, "w") as f:
            json.dump(merged, f, indent=1)
            f.write("\n")
        print(f"wrote Chrome trace ({len(traces)} traced reruns) -> {trace_path}")

    return {
        "meta": {
            "tensor": {"shape": list(shape), "nnz": int(x.nnz),
                       "generator": "powerlaw(dense_modes=(2,), seed=13)"},
            "rank": RANK,
            "hicoo_block": BLOCK,
            "nthreads": nthreads,
            "host_cpus": os.cpu_count(),
            "numpy": np.__version__,
            "quick": quick,
        },
        "results": results,
        "checks": checks,
    }


def main() -> None:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="small tensor, fewer reps (CI smoke)")
    ap.add_argument("--out", default=DEFAULT_OUT,
                    help=f"output JSON path (default {DEFAULT_OUT})")
    ap.add_argument("--threads", type=int, default=max(4, os.cpu_count() or 1),
                    help="OpenMP backend thread count (>= 4 for the ablation)")
    ap.add_argument("--reps", type=int, default=None,
                    help="timing repetitions (default 3 quick / 7 full)")
    ap.add_argument("--trace", metavar="PATH", default=None,
                    help="save a Chrome trace of the traced reruns to PATH")
    args = ap.parse_args()
    reps = args.reps or (3 if args.quick else 7)

    report = run(args.quick, args.threads, reps, trace_path=args.trace)
    with open(args.out, "w") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(f"wrote {args.out}")
    for key, val in report["checks"].items():
        print(f"  {key}: {val}")
    if not report["checks"]["owner_bitidentical_to_sequential"]:
        raise SystemExit("FAIL: owner method not bit-identical to sequential")
    # The timing check is only meaningful at full size; the quick smoke's
    # tiny tensor produces too few chunks for a stable margin on noisy CI.
    if not args.quick and not report["checks"]["arena_beats_chunk_coo_dynamic"]:
        raise SystemExit("FAIL: arena privatization did not beat per-chunk")


if __name__ == "__main__":
    main()
