"""Ablation — matrix rank R for Ttm and Mttkrp.

The paper fixes R = 16 "to reflect the low-rank feature in popular
tensor methods" and notes R < 100 in practice; this ablation sweeps R
(work and OI scale with R — see Table 1) to show where the kernels leave
the bandwidth-starved regime.
"""

import numpy as np
import pytest

from repro.kernels import coo_mttkrp, coo_ttm, mttkrp_cost, ttm_cost


def _mats(shape, r, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.random((s, r)).astype(np.float32) for s in shape]


@pytest.mark.parametrize("rank", [4, 16, 64])
def test_ttm_rank(benchmark, bench_tensor, rank):
    u = _mats(bench_tensor.shape, rank)[2]
    out = benchmark(lambda: coo_ttm(bench_tensor, u, 2))
    assert out.shape[2] == rank


@pytest.mark.parametrize("rank", [4, 16, 64])
def test_mttkrp_rank(benchmark, bench_tensor, rank):
    mats = _mats(bench_tensor.shape, rank)
    out = benchmark(lambda: coo_mttkrp(bench_tensor, mats, 0))
    assert out.shape[1] == rank


def test_oi_grows_with_rank():
    """Table 1: Ttm OI tends to 1/2 and Mttkrp OI to 1/4 as R grows."""
    m, mf = 1_000_000, 50_000
    ttm_ois = [ttm_cost(m, mf, r).oi for r in (2, 16, 128)]
    mtt_ois = [mttkrp_cost(m, r).oi for r in (2, 16, 128)]
    assert ttm_ois == sorted(ttm_ois)
    assert mtt_ois == sorted(mtt_ois)
    assert abs(ttm_ois[-1] - 0.5) < 0.05
    assert abs(mtt_ois[-1] - 0.25) < 0.01
