"""Ablation — CSF (the paper's planned next format) vs COO/HiCOO.

CSF's fiber tree shares index prefixes, so its Ttv touches fewer index
words and its Mttkrp computes each fiber's partial product once.  This
ablation times all three formats on the same tensors.
"""

import numpy as np
import pytest

from repro.kernels import (
    coo_mttkrp,
    coo_ttv,
    csf_mttkrp,
    csf_ttv,
    hicoo_mttkrp,
    hicoo_ttv,
)
from repro.sptensor import CSFTensor


@pytest.fixture(scope="module")
def csf(bench_tensor):
    return CSFTensor.from_coo(bench_tensor)


@pytest.mark.parametrize("fmt", ["coo", "hicoo", "csf"])
def test_ttv_format(benchmark, bench_tensor, bench_hicoo, csf, bench_vectors, fmt):
    # product mode at the CSF leaves = no tree rebuild
    v = bench_vectors[2]
    fn = {
        "coo": lambda: coo_ttv(bench_tensor, v, 2),
        "hicoo": lambda: hicoo_ttv(bench_hicoo, v, 2),
        "csf": lambda: csf_ttv(csf, v, 2),
    }[fmt]
    out = benchmark(fn)
    assert out is not None


@pytest.mark.parametrize("fmt", ["coo", "hicoo", "csf"])
def test_mttkrp_format(benchmark, bench_tensor, bench_hicoo, csf, bench_mats, fmt):
    # product mode at the CSF root = no tree rebuild
    fn = {
        "coo": lambda: coo_mttkrp(bench_tensor, bench_mats, 0),
        "hicoo": lambda: hicoo_mttkrp(bench_hicoo, bench_mats, 0),
        "csf": lambda: csf_mttkrp(csf, bench_mats, 0),
    }[fmt]
    out = benchmark(fn)
    assert out is not None


@pytest.mark.parametrize("fmt", ["coo", "csf"])
def test_mode_genericity_all_modes_mttkrp(
    benchmark, bench_tensor, csf, bench_mats, fmt
):
    """The paper's reason for choosing COO/HiCOO: one representation
    serves every mode.  CSF must rebuild its tree per product mode — this
    bench charges that cost by running Mttkrp over *all* modes."""

    def run_coo():
        return [
            coo_mttkrp(bench_tensor, bench_mats, m)
            for m in range(bench_tensor.nmodes)
        ]

    def run_csf():
        # csf_mttkrp transparently rebuilds for non-root modes
        return [
            csf_mttkrp(csf, bench_mats, m)
            for m in range(bench_tensor.nmodes)
        ]

    outs = benchmark(run_coo if fmt == "coo" else run_csf)
    assert len(outs) == bench_tensor.nmodes


def test_csf_results_agree(bench_tensor, csf, bench_mats, bench_vectors):
    a = coo_mttkrp(bench_tensor, bench_mats, 0)
    b = csf_mttkrp(csf, bench_mats, 0)
    np.testing.assert_allclose(a, b, rtol=1e-3)


def test_csf_storage_vs_coo(bench_tensor, csf):
    """The fiber tree stores at most as many index words as COO on
    sorted tensors with shared prefixes."""
    assert csf.nbytes <= bench_tensor.nbytes * 1.5
