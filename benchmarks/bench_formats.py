"""Format machinery benchmarks: conversions, I/O, reorder, validation.

Pre-processing cost is part of the paper's trade-off analysis ("the time
required to translate between them" is one of the three format-choice
axes); these benches time every conversion path plus the suite's tensor
I/O on the reference workload.
"""

import os

import pytest

from repro.sptensor import (
    COOTensor,
    CSFTensor,
    GHiCOOTensor,
    HiCOOTensor,
    SemiCOOTensor,
    load_npz,
    read_tns,
    save_hicoo_npz,
    save_npz,
    write_tns,
)


def test_convert_hicoo(benchmark, bench_tensor):
    h = benchmark(lambda: HiCOOTensor.from_coo(bench_tensor, 128))
    assert h.nnz == bench_tensor.nnz


def test_convert_ghicoo_partial(benchmark, bench_tensor):
    g = benchmark(lambda: GHiCOOTensor.from_coo(bench_tensor, 128, (0, 1)))
    assert g.nnz == bench_tensor.nnz


def test_convert_csf(benchmark, bench_tensor):
    c = benchmark(lambda: CSFTensor.from_coo(bench_tensor))
    assert c.nnz == bench_tensor.nnz


def test_convert_scoo(benchmark, bench_tensor):
    sc = benchmark(lambda: SemiCOOTensor.from_coo(bench_tensor, (2,)))
    assert sc.nnz_sparse > 0


def test_hicoo_to_coo(benchmark, bench_hicoo):
    t = benchmark(bench_hicoo.to_coo)
    assert t.nnz == bench_hicoo.nnz


def test_sort_rowmajor(benchmark, bench_tensor):
    def run():
        t = bench_tensor.copy()
        t._sort_order = None
        return t.sort()

    benchmark(run)


def test_fiber_index(benchmark, bench_tensor):
    fi = benchmark(lambda: bench_tensor.fiber_index(2))
    assert fi.nfibers > 0


def test_write_read_tns(benchmark, bench_tensor, tmp_path_factory):
    path = tmp_path_factory.mktemp("io") / "t.tns"

    def roundtrip():
        write_tns(bench_tensor, path)
        return read_tns(path)

    t = benchmark(roundtrip)
    assert t.nnz == bench_tensor.nnz


def test_save_load_npz(benchmark, bench_tensor, tmp_path_factory):
    path = tmp_path_factory.mktemp("io") / "t.npz"

    def roundtrip():
        save_npz(bench_tensor, path)
        return load_npz(path)

    t = benchmark(roundtrip)
    assert t.nnz == bench_tensor.nnz


def test_save_hicoo_cache(benchmark, bench_hicoo, tmp_path_factory):
    path = tmp_path_factory.mktemp("io") / "h.npz"
    benchmark(lambda: save_hicoo_npz(bench_hicoo, path))
    assert os.path.getsize(path) > 0


def test_selfcheck_small(benchmark):
    from repro.validate import validate_tensor

    t = COOTensor.random((40, 35, 30), nnz=1500, rng=9)
    report = benchmark(lambda: validate_tensor(t, nthreads=1))
    assert report.passed
