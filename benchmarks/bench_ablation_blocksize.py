"""Ablation — HiCOO block size B.

The paper fixes B = 128 "to fit into the last-level cache in all
platforms"; this ablation sweeps B and reports the storage/bench
trade-off the choice balances: small blocks inflate the block count
(metadata + block-loop overhead), huge blocks couldn't keep their matrix
slices cache-resident.
"""

import pytest

from repro.sptensor import HiCOOTensor
from repro.kernels import hicoo_mttkrp, hicoo_ttv


@pytest.mark.parametrize("block_size", [8, 32, 128, 256])
def test_hicoo_conversion_blocksize(benchmark, bench_tensor, block_size):
    h = benchmark(lambda: HiCOOTensor.from_coo(bench_tensor, block_size))
    assert h.nnz == bench_tensor.nnz


@pytest.mark.parametrize("block_size", [8, 32, 128, 256])
def test_hicoo_mttkrp_blocksize(benchmark, bench_tensor, bench_mats, block_size):
    h = HiCOOTensor.from_coo(bench_tensor, block_size)
    out = benchmark(lambda: hicoo_mttkrp(h, bench_mats, 0))
    assert out.shape[0] == bench_tensor.shape[0]


@pytest.mark.parametrize("block_size", [8, 128])
def test_hicoo_ttv_blocksize(benchmark, bench_tensor, bench_vectors, block_size):
    h = HiCOOTensor.from_coo(bench_tensor, block_size)
    out = benchmark(lambda: hicoo_ttv(h, bench_vectors[2], 2))
    assert out.nnz > 0


def test_blocksize_storage_tradeoff(bench_tensor):
    """Smaller blocks -> more blocks -> more metadata bytes."""
    sizes = {}
    for b in (8, 32, 128):
        h = HiCOOTensor.from_coo(bench_tensor, b)
        sizes[b] = (h.nblocks, h.nbytes)
    assert sizes[8][0] >= sizes[32][0] >= sizes[128][0]
