"""Ablation — distributed-memory scaling (paper future work).

Strong-scaling of the coarse-grained distributed Mttkrp over 1-16
simulated ranks: local compute shrinks with the shard, the factor-matrix
all-reduce grows with the rank count.
"""

import pytest

from repro.distributed import SimNetwork, distributed_cp_als, distributed_mttkrp


@pytest.mark.parametrize("nranks", [1, 4, 16])
def test_distributed_mttkrp_scaling(benchmark, bench_tensor, bench_mats, nranks):
    def run():
        net = SimNetwork(nranks)
        return distributed_mttkrp(bench_tensor, bench_mats, 0, net)

    res = benchmark(run)
    assert res.nranks == nranks


def test_strong_scaling_shape(bench_tensor, bench_mats):
    times = {}
    for n in (1, 2, 4, 8, 16):
        net = SimNetwork(n)
        times[n] = distributed_mttkrp(bench_tensor, bench_mats, 0, net).seconds
    assert times[4] < times[1]  # parallelism wins at first
    # communication eventually bounds the simulated time from below
    assert times[16] > 0


def test_distributed_cp_als_runs(benchmark, bench_tensor):
    small = bench_tensor
    res = benchmark(
        lambda: distributed_cp_als(
            small, rank=8, net=SimNetwork(4), n_iters=2, tol=0.0
        )
    )
    assert len(res.fits) == 2
