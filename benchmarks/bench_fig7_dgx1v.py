"""Figure 7 — kernel performance on DGX-1V (Tesla V100, simulated).

V100 contrasts with P100 (paper Observation 2): twice the LLC, improved
atomics, and independent int/fp datapaths — Mttkrp benefits most.
"""

import numpy as np
import pytest

from repro.gpu import P100, V100, gpu_coo_mttkrp, gpu_hicoo_mttkrp
from repro.sptensor import HiCOOTensor

from figcommon import REAL_KEYS, SYN_KEYS, check_report, regenerate_figure


def test_regenerate_fig7_real(benchmark):
    report = benchmark(lambda: regenerate_figure("fig7", "real", REAL_KEYS))
    check_report(report)


def test_regenerate_fig7_synthetic(benchmark):
    report = benchmark(lambda: regenerate_figure("fig7", "synthetic", SYN_KEYS))
    check_report(report)


def test_gpu_mttkrp_v100_beats_p100(benchmark, bench_tensor, bench_mats):
    res_v = benchmark(lambda: gpu_coo_mttkrp(bench_tensor, bench_mats, 0, V100))
    res_p = gpu_coo_mttkrp(bench_tensor, bench_mats, 0, P100)
    assert res_v.seconds < res_p.seconds  # Volta's atomics/caches win


def test_gpu_hicoo_mttkrp_block_imbalance(benchmark, bench_tensor, bench_mats):
    h = HiCOOTensor.from_coo(bench_tensor, 128)
    res = benchmark(lambda: gpu_hicoo_mttkrp(h, bench_mats, 0, V100))
    assert res.timing.notes["block_imbalance"] >= 1.0
    # Observation 4: block-parallel HiCOO-Mttkrp does not beat COO on GPUs.
    res_coo = gpu_coo_mttkrp(bench_tensor, bench_mats, 0, V100)
    np.testing.assert_allclose(res.value, res_coo.value, rtol=1e-3)
    assert res.seconds >= res_coo.seconds * 0.9
