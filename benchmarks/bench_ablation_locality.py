"""Ablation — measured cache locality: COO order vs HiCOO Morton order.

Observation 4 attributes HiCOO's CPU wins to "better data locality and
smaller memory footprint"; this ablation quantifies the locality half by
simulating the factor/vector gather traces through an LRU cache, for both
orders and for a degree-reordered layout (the ICS'19 technique).
"""

import numpy as np
import pytest

from repro.cachesim import simulate_trace, ttv_gather_trace, mttkrp_gather_trace
from repro.sptensor import HiCOOTensor, degree_reorder

CACHE = 8 * 1024  # scaled LLC slice for the gathered structure


@pytest.fixture(scope="module")
def layouts(bench_tensor):
    coo = bench_tensor.copy().sort()
    hic = HiCOOTensor.from_coo(coo, 128)
    reord, _ = degree_reorder(coo)
    reord.sort()
    return {"coo": coo, "hicoo": hic, "reordered": reord}


@pytest.mark.parametrize("layout", ["coo", "hicoo", "reordered"])
def test_ttv_gather_miss_rate(benchmark, layouts, layout):
    trace = ttv_gather_trace(layouts[layout], 1)
    stats = benchmark(lambda: simulate_trace(trace, CACHE))
    assert 0.0 <= stats.miss_rate <= 1.0


@pytest.mark.parametrize("layout", ["coo", "hicoo"])
def test_mttkrp_gather_miss_rate(benchmark, layouts, layout):
    trace = mttkrp_gather_trace(layouts[layout], 0, r=16)
    stats = benchmark(lambda: simulate_trace(trace, CACHE))
    assert stats.accesses == len(trace)


def test_locality_ordering_holds(layouts):
    """Reordered-and-sorted and Morton orders both beat plain COO order
    on the non-major gather mode of a power-law tensor."""
    base = simulate_trace(ttv_gather_trace(layouts["coo"], 1), CACHE)
    morton = simulate_trace(ttv_gather_trace(layouts["hicoo"], 1), CACHE)
    reord = simulate_trace(ttv_gather_trace(layouts["reordered"], 1), CACHE)
    assert morton.miss_rate <= base.miss_rate + 0.02
    assert reord.miss_rate <= base.miss_rate + 0.02
