"""Streaming-ingestion benchmarks (the FireHose-style live scenario).

Times the end-to-end ingestion bench (:mod:`repro.ingest`) at varying
worker counts, ablates exact vs subtract window eviction and incremental
vs from-scratch re-blocking, and checks the concurrency knobs don't
change the answer (the final window is bit-identical across them).
"""

import numpy as np
import pytest

from repro.ingest import (
    IngestBench,
    IngestConfig,
    WindowBlocker,
    reference_window_state,
)
from repro.sptensor import COOTensor, HiCOOTensor
from repro.stream import SlidingWindowTensor

SHAPE = (512, 512, 16)
EVENTS = 60_000
BATCH = 2048
WINDOW = 6
BLOCK = 32


def config(**kw):
    kw.setdefault("shape", SHAPE)
    kw.setdefault("events", EVENTS)
    kw.setdefault("batch", BATCH)
    kw.setdefault("window", WINDOW)
    kw.setdefault("queue_depth", 8)
    kw.setdefault("rank", 8)
    kw.setdefault("seed", 13)
    kw.setdefault("block_size", BLOCK)
    return IngestConfig(**kw)


@pytest.mark.parametrize("workers", [1, 2, 4])
def test_ingest_throughput(benchmark, workers):
    cfg = config(workers=workers, query_every=0)
    result = benchmark.pedantic(
        lambda: IngestBench(cfg).run(), rounds=1, iterations=1, warmup_rounds=0
    )
    assert result.batches == cfg.nbatches
    benchmark.extra_info["events_per_s"] = result.events_per_s
    benchmark.extra_info["p99_latency_s"] = result.latency_s["p99"]


def test_ingest_with_queries(benchmark):
    cfg = config(workers=4, query_every=4)
    result = benchmark.pedantic(
        lambda: IngestBench(cfg).run(), rounds=1, iterations=1, warmup_rounds=0
    )
    assert result.queries > 0
    benchmark.extra_info["events_per_s"] = result.events_per_s
    benchmark.extra_info["queries"] = result.queries


@pytest.mark.parametrize("eviction", ["exact", "subtract"])
def test_window_eviction_ablation(benchmark, eviction):
    """Cost of the bit-exact rebuild vs the lossy subtract fast path."""
    from repro.generate import powerlaw_stream

    batches = list(
        powerlaw_stream(EVENTS, SHAPE, dense_modes=(2,), seed=13, batch=BATCH)
    )

    def run():
        w = SlidingWindowTensor(SHAPE, WINDOW, eviction=eviction)
        for coords, values in batches:
            w.push(coords, values)
        return w

    w = benchmark(run)
    assert w.evictions == len(batches) - WINDOW


def test_incremental_reblock_vs_from_coo(benchmark):
    """The incremental re-blocker against from_coo on every snapshot."""
    from repro.generate import powerlaw_stream

    batches = [
        COOTensor(SHAPE, c, v).coalesce()
        for c, v in powerlaw_stream(
            EVENTS, SHAPE, dense_modes=(2,), seed=13, batch=BATCH
        )
    ]

    def incremental():
        blocker = WindowBlocker(SHAPE, BLOCK)
        snaps = 0
        for bid, batch in enumerate(batches):
            blocker.admit(bid, blocker.decompose(batch))
            if bid >= WINDOW:
                blocker.evict(bid - WINDOW)
            blocker.snapshot()
            snaps += 1
        return snaps

    assert benchmark(incremental) == len(batches)


def test_reblock_baseline_from_coo(benchmark):
    from repro.generate import powerlaw_stream

    batches = list(
        powerlaw_stream(EVENTS, SHAPE, dense_modes=(2,), seed=13, batch=BATCH)
    )

    def from_scratch():
        w = SlidingWindowTensor(SHAPE, WINDOW)
        snaps = 0
        for coords, values in batches:
            state = w.push(coords, values)
            HiCOOTensor.from_coo(state, BLOCK)
            snaps += 1
        return snaps

    assert benchmark(from_scratch) == len(batches)


def test_worker_count_invariance():
    """The concurrency knobs must not change the measured stream: the
    final window is bit-identical across worker counts and churn."""
    want = reference_window_state(config(workers=1, query_every=0))
    for workers, lifetime in [(1, 0), (4, 0), (3, 2)]:
        cfg = config(workers=workers, query_every=0, worker_lifetime=lifetime)
        got = IngestBench(cfg).run().state
        np.testing.assert_array_equal(got.indices, want.indices)
        np.testing.assert_array_equal(
            got.values.view(np.uint8), want.values.view(np.uint8)
        )
