"""Figure 4 — kernel performance on Bluesky (2-socket Skylake CPU)."""

import pytest

from repro.types import Format, Kernel

from conftest import save_report
from figcommon import REAL_KEYS, SYN_KEYS, check_report, platform_runner, regenerate_figure


def test_regenerate_fig4_real(benchmark):
    report = benchmark(lambda: regenerate_figure("fig4", "real", REAL_KEYS))
    check_report(report)


def test_regenerate_fig4_synthetic(benchmark):
    report = benchmark(lambda: regenerate_figure("fig4", "synthetic", SYN_KEYS))
    check_report(report)


@pytest.mark.parametrize("kernel", list(Kernel))
@pytest.mark.parametrize("fmt", [Format.COO, Format.HICOO])
def test_kernel_on_bluesky(benchmark, bench_tensor, kernel, fmt):
    """Host execution of each kernel under the Bluesky runner's config."""
    from repro.bench import TensorBundle

    runner = platform_runner("Bluesky")
    bundle = TensorBundle.prepare("bench", bench_tensor, runner.config)
    rec = benchmark(lambda: runner.run_kernel(bundle, kernel, fmt))
    assert rec.gflops > 0
