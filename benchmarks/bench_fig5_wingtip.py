"""Figure 5 — kernel performance on Wingtip (4-socket Haswell CPU).

The paper's Observation 3 contrast: the 4-socket NUMA machine loses
efficiency on non-streaming kernels relative to 2-socket Bluesky.
"""

import pytest

from repro.metrics import average_efficiency
from repro.types import Format, Kernel

from figcommon import REAL_KEYS, SYN_KEYS, check_report, platform_runner, regenerate_figure


def test_regenerate_fig5_real(benchmark):
    report = benchmark(lambda: regenerate_figure("fig5", "real", REAL_KEYS))
    check_report(report)


def test_regenerate_fig5_synthetic(benchmark):
    report = benchmark(lambda: regenerate_figure("fig5", "synthetic", SYN_KEYS))
    check_report(report)
    # Observation 3: Ttv efficiency on the 4-socket machine is poor.
    eff = average_efficiency(report.records)
    assert eff[("ttv", "coo")] < 0.35


@pytest.mark.parametrize("kernel", list(Kernel))
@pytest.mark.parametrize("fmt", [Format.COO, Format.HICOO])
def test_kernel_on_wingtip(benchmark, bench_tensor, kernel, fmt):
    from repro.bench import TensorBundle

    runner = platform_runner("Wingtip")
    bundle = TensorBundle.prepare("bench", bench_tensor, runner.config)
    rec = benchmark(lambda: runner.run_kernel(bundle, kernel, fmt))
    assert rec.gflops > 0
