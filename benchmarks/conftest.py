"""Shared fixtures for the benchmark suite.

Benchmarks regenerate the paper's tables/figures (reports are written to
``results/``) and time the suite's kernels on session-scoped tensors so
``pytest benchmarks/ --benchmark-only`` doubles as a host performance run.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.sptensor import COOTensor, HiCOOTensor
from repro.generate import powerlaw_tensor, kronecker_tensor

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "..", "results")

#: Default downscale factor relative to the paper's datasets.
BENCH_SCALE = 2000.0
RANK = 16
BLOCK = 128


def save_report(report) -> str:
    """Write a Report's CSV under results/ and return the path."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, f"{report.exp_id}.csv")
    report.save_csv(path)
    return path


@pytest.fixture(scope="session")
def bench_tensor() -> COOTensor:
    """The reference workload: a power-law tensor with a short dense mode
    (the paper's irregular shape), ~50k nnz."""
    t = powerlaw_tensor((6000, 6000, 48), nnz=50_000, dense_modes=(2,), seed=13)
    return t.sort()


@pytest.fixture(scope="session")
def bench_kron_tensor() -> COOTensor:
    """A Kronecker (regular, equidimensional) workload, ~50k nnz."""
    return kronecker_tensor((4096, 4096, 4096), 50_000, seed=17).sort()


@pytest.fixture(scope="session")
def bench_hicoo(bench_tensor) -> HiCOOTensor:
    return HiCOOTensor.from_coo(bench_tensor, BLOCK)


@pytest.fixture(scope="session")
def bench_vectors(bench_tensor):
    rng = np.random.default_rng(0)
    return [rng.random(s).astype(np.float32) for s in bench_tensor.shape]


@pytest.fixture(scope="session")
def bench_mats(bench_tensor):
    rng = np.random.default_rng(1)
    return [
        rng.random((s, RANK)).astype(np.float32) for s in bench_tensor.shape
    ]
