"""Parameter-sweep benchmarks (the `--exp sweep-*` studies)."""

from repro.bench.sweeps import (
    blocksize_sweep,
    density_sweep,
    nnz_sweep,
    rank_sweep,
)

from conftest import save_report


def test_sweep_nnz(benchmark):
    rep = benchmark(
        lambda: nnz_sweep(nnz_values=(1_000, 8_000, 64_000), cache_scale=2000)
    )
    save_report(rep)
    assert len(rep.rows) == 6


def test_sweep_rank(benchmark):
    rep = benchmark(lambda: rank_sweep(ranks=(4, 16, 64), cache_scale=2000))
    save_report(rep)
    assert len(rep.rows) == 6


def test_sweep_density(benchmark):
    rep = benchmark(
        lambda: density_sweep(densities=(1e-6, 1e-5, 1e-4), cache_scale=2000)
    )
    save_report(rep)
    assert len(rep.rows) == 6


def test_sweep_blocksize(benchmark):
    rep = benchmark(
        lambda: blocksize_sweep(block_sizes=(16, 64, 256), cache_scale=2000)
    )
    save_report(rep)
    assert len(rep.rows) == 3
