"""Tables 2-4 — dataset registries and platform table + generator timings."""

import pytest

from repro.bench import table2, table3, table4
from repro.datasets import make_surrogate
from repro.generate import get_synthetic, kronecker_tensor, powerlaw_tensor

from conftest import BENCH_SCALE, save_report


def test_regenerate_table2(benchmark):
    report = benchmark(lambda: table2(scale=BENCH_SCALE))
    assert len(report.rows) == 15
    save_report(report)


def test_regenerate_table3(benchmark):
    report = benchmark(lambda: table3(scale=BENCH_SCALE))
    assert len(report.rows) == 15
    save_report(report)


def test_regenerate_table4(benchmark):
    report = benchmark(table4)
    assert len(report.rows) == 4
    save_report(report)


def test_gen_kronecker(benchmark):
    t = benchmark(lambda: kronecker_tensor((4096, 4096, 4096), 20_000, seed=1))
    assert t.nnz == 20_000


def test_gen_powerlaw(benchmark):
    t = benchmark(
        lambda: powerlaw_tensor((8192, 8192, 64), 20_000, dense_modes=(2,), seed=2)
    )
    assert t.nnz == 20_000


@pytest.mark.parametrize("name", ["regS", "irrS", "irr2S4d"])
def test_gen_table3_config(benchmark, name):
    cfg = get_synthetic(name)
    t = benchmark(lambda: cfg.generate(scale=BENCH_SCALE, seed=3))
    assert t.nmodes == cfg.order


@pytest.mark.parametrize("name", ["vast", "nell2", "uber4d"])
def test_gen_table2_surrogate(benchmark, name):
    t = benchmark(lambda: make_surrogate(name, scale=BENCH_SCALE, seed=4))
    assert t.nnz > 0
