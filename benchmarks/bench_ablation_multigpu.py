"""Ablation — multi-GPU scaling (paper future work: "multiple GPUs").

Simulated DGX-1 strong scaling of Mttkrp (all-reduce bound) and Ttv
(reduction-free) over 1-8 P100s.
"""

import pytest

from repro.gpu import P100, multi_gpu_mttkrp, multi_gpu_ttv, scaling_sweep


@pytest.mark.parametrize("ngpus", [1, 2, 4, 8])
def test_mttkrp_scaling(benchmark, bench_tensor, bench_mats, ngpus):
    res = benchmark(
        lambda: multi_gpu_mttkrp(bench_tensor, bench_mats, 0, P100, ngpus)
    )
    assert res.ngpus == ngpus


@pytest.mark.parametrize("ngpus", [1, 4])
def test_ttv_scaling(benchmark, bench_tensor, bench_vectors, ngpus):
    res = benchmark(
        lambda: multi_gpu_ttv(bench_tensor, bench_vectors[2], 2, P100, ngpus)
    )
    assert res.allreduce_seconds == 0.0


def test_strong_scaling_curve(bench_tensor, bench_mats):
    rows = scaling_sweep(
        lambda g: multi_gpu_mttkrp(bench_tensor, bench_mats, 0, P100, g),
        [1, 2, 4, 8],
    )
    speedups = [r["speedup"] for r in rows]
    assert speedups[0] == pytest.approx(1.0)
    # monotone improvement but sub-linear (all-reduce + overhead)
    assert speedups[-1] > 1.0
    assert speedups[-1] < 8.0
