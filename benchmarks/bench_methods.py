"""Tensor-method benchmarks: CP-ALS, Tucker HOOI, tensor power method.

The paper motivates its kernels through these methods ("more complete
tensor methods, such as CANDECOMP/PARAFAC and Tucker decompositions" are
its future-work list); these benches time the full methods built on the
suite's kernels, per format.
"""

import numpy as np
import pytest

from repro.methods import cp_als, tensor_power_method, symmetric_rank1_tensor, tucker_hooi
from repro.sptensor import COOTensor, HiCOOTensor


@pytest.fixture(scope="module")
def cp_tensor():
    return COOTensor.random((120, 100, 80), nnz=20_000, rng=3).astype(np.float64)


@pytest.mark.parametrize("fmt", ["coo", "hicoo"])
def test_cp_als_iteration(benchmark, cp_tensor, fmt):
    x = cp_tensor if fmt == "coo" else HiCOOTensor.from_coo(cp_tensor, 64)
    res = benchmark(lambda: cp_als(x, rank=16, n_iters=2, tol=0.0, seed=1))
    assert res.n_iters == 2


def test_tucker_hooi_iteration(benchmark, cp_tensor):
    res = benchmark(lambda: tucker_hooi(cp_tensor, (8, 8, 8), n_iters=1, seed=2))
    assert res.core.shape == (8, 8, 8)


def test_power_method_component(benchmark):
    rng = np.random.default_rng(0)
    q, _ = np.linalg.qr(rng.standard_normal((40, 3)))
    t = symmetric_rank1_tensor([5.0, 3.0, 1.0], q)
    res = benchmark(
        lambda: tensor_power_method(t, n_components=1, n_restarts=2, seed=1)
    )
    assert abs(res.eigenvalues[0] - 5.0) < 1e-2
