"""Shared driver for the Figures 4-7 benchmarks.

Each figure file benchmarks (a) the modeled/simulated sweep that
regenerates the figure's data series, and (b) the host execution of each
kernel under that platform's runner, on a representative tensor subset.
"""

from __future__ import annotations

from repro.bench import RunnerConfig, SuiteRunner, figure_perf
from repro.roofline import get_platform

from conftest import BENCH_SCALE, save_report

#: Representative subsets (keys into Tables 2/3) keeping benches fast.
REAL_KEYS = ["vast", "nell2", "darpa", "crime4d", "nips4d", "enron4d"]
SYN_KEYS = ["regS", "regM", "irrS", "irrM", "regS4d", "irrS4d", "irr2S4d"]


def regenerate_figure(fig_id: str, dataset: str, keys) -> "Report":
    """Run the modeled sweep for one sub-figure and save its CSV."""
    report = figure_perf(
        fig_id,
        dataset=dataset,
        scale=BENCH_SCALE,
        keys=keys,
        config=RunnerConfig(measure_host=False, cache_scale=BENCH_SCALE),
    )
    report.exp_id = f"{fig_id}-{dataset}"
    save_report(report)
    return report


def platform_runner(platform_name: str) -> SuiteRunner:
    return SuiteRunner(
        get_platform(platform_name),
        RunnerConfig(measure_host=False, cache_scale=BENCH_SCALE),
    )


def check_report(report) -> None:
    assert report.records, "figure sweep produced no records"
    for rec in report.records:
        assert rec.gflops >= 0
        assert rec.bound_gflops > 0
