"""Figure 3 — roofline models: regenerate the report and run the host
ERT micro-kernels (the measurement ERT itself performs)."""

from repro.bench import figure3, figure3_series
from repro.roofline import measure_host
from repro.roofline.ert import _bench_gemm, _bench_triad

from conftest import save_report


def test_regenerate_fig3(benchmark):
    report = benchmark(figure3)
    # 4 platforms x 5 kernels
    assert len(report.rows) == 20
    assert all(row[-1] for row in report.rows)  # all memory bound
    save_report(report)


def test_fig3_series_all_platforms(benchmark):
    def gen():
        return [
            figure3_series(name)
            for name in ("Bluesky", "Wingtip", "DGX-1P", "DGX-1V")
        ]

    reports = benchmark(gen)
    for rep in reports:
        assert len(rep.rows) > 10
        save_report(rep)


def test_ert_triad_dram(benchmark):
    bw = benchmark(lambda: _bench_triad(4_000_000, repeats=1))
    assert bw > 0


def test_ert_triad_llc(benchmark):
    bw = benchmark(lambda: _bench_triad(100_000, repeats=1))
    assert bw > 0


def test_ert_gemm(benchmark):
    gf = benchmark(lambda: _bench_gemm(384, repeats=1))
    assert gf > 0


def test_host_characterization(benchmark):
    host = benchmark(lambda: measure_host(2_000_000, 100_000))
    assert host.ert_dram_bw_gbs > 0
    assert host.llc_bw_ratio >= 1.0
