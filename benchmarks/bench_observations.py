"""Observations 1-5 — the paper's qualitative findings, regenerated."""

from repro.bench import RunnerConfig, observations

from conftest import save_report
from figcommon import REAL_KEYS, SYN_KEYS


def test_regenerate_observations(benchmark):
    report = benchmark(
        lambda: observations(
            scale=2000.0,
            keys_real=REAL_KEYS,
            keys_syn=SYN_KEYS,
            config=RunnerConfig(measure_host=False, cache_scale=2000.0),
        )
    )
    save_report(report)
    failures = [row for row in report.rows if row[-1] != "yes"]
    assert not failures, f"observations failing: {failures}"
