"""Ablation — gHiCOO compressed-mode choice (this paper's format).

gHiCOO exists because full HiCOO loses on hyper-sparse tensors; the
right choice of compressed modes trades block metadata against
full-width index columns.  This ablation measures storage and Ttv time
for each choice on a hyper-sparse tensor.
"""

import pytest

from repro.generate import kronecker_tensor
from repro.kernels import ghicoo_ttv
from repro.sptensor import GHiCOOTensor, HiCOOTensor


@pytest.fixture(scope="module")
def hypersparse():
    # ~1 nnz per block at B=128: HiCOO's worst case.
    return kronecker_tensor((1 << 20, 1 << 20, 1 << 20), 20_000, seed=5)


@pytest.mark.parametrize("comp", [(0,), (0, 1), (0, 1, 2)])
def test_ghicoo_conversion(benchmark, hypersparse, comp):
    g = benchmark(lambda: GHiCOOTensor.from_coo(hypersparse, 128, comp))
    assert g.nnz == hypersparse.nnz


def test_ghicoo_storage_beats_hicoo_on_hypersparse(hypersparse):
    full = HiCOOTensor.from_coo(hypersparse, 128)
    partial = GHiCOOTensor.from_coo(hypersparse, 128, (0, 1))
    assert partial.nbytes < full.nbytes
    assert full.compression_ratio() < 1.0  # HiCOO loses vs COO here


@pytest.mark.parametrize("comp", [(0, 1)])
def test_ghicoo_ttv_uncompressed_product_mode(
    benchmark, hypersparse, comp
):
    import numpy as np

    g = GHiCOOTensor.from_coo(hypersparse, 128, comp)
    v = np.ones(hypersparse.shape[2], dtype=np.float32)
    out = benchmark(lambda: ghicoo_ttv(g, v, 2))
    assert out.nnz > 0
