"""Cache simulation substrate: LRU caches + kernel gather traces."""

from repro.cachesim.cache import CacheStats, LRUCache, simulate_trace
from repro.cachesim.trace import (
    measure_gather_locality,
    mttkrp_gather_trace,
    ttv_gather_trace,
)

__all__ = [
    "LRUCache",
    "CacheStats",
    "simulate_trace",
    "ttv_gather_trace",
    "mttkrp_gather_trace",
    "measure_gather_locality",
]
