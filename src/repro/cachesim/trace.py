"""Memory-address trace generators for the suite's kernels.

A trace is the sequence of byte addresses a kernel's *irregular* accesses
touch — the factor-matrix row gathers of Mttkrp, the vector gathers of
Ttv — laid out in the order the algorithm visits non-zeros.  Streaming
accesses (index/value arrays) are perfectly prefetchable and excluded;
the gathers are exactly where COO's sorted order and HiCOO's Morton block
order differ, which is the locality claim the cache simulator measures.

Address layout: each gathered structure gets its own base address, spaced
far apart so structures never alias in the simulated cache.
"""

from __future__ import annotations

import numpy as np

from repro.sptensor.coo import COOTensor
from repro.sptensor.hicoo import HiCOOTensor
from repro.util.validation import check_mode

#: Gap between the simulated base addresses of distinct structures.
_REGION = np.int64(1) << 40


def ttv_gather_trace(
    x: "COOTensor | HiCOOTensor", mode: int, value_bytes: int = 4
) -> np.ndarray:
    """Addresses of the vector elements Ttv gathers, in visit order.

    For COO the visit order is the tensor's storage order; for HiCOO it
    is block (Morton) order — same multiset of gathers, different
    sequence, hence different cache behavior.
    """
    if isinstance(x, HiCOOTensor):
        inds = x.global_indices()[:, check_mode(mode, x.nmodes)]
    else:
        inds = x.indices[:, check_mode(mode, x.nmodes)].astype(np.int64)
    return inds * np.int64(value_bytes)


def mttkrp_gather_trace(
    x: "COOTensor | HiCOOTensor",
    mode: int,
    r: int = 16,
    value_bytes: int = 4,
    lines_per_row: int | None = None,
) -> np.ndarray:
    """Addresses of the factor-matrix rows Mttkrp gathers, per non-zero.

    Each non-zero touches one R-float row of every mode's matrix (the
    (N-1) gathers plus the output update).  A row spans
    ``R * value_bytes`` consecutive bytes; we emit the first address of
    each cache line the row covers (``lines_per_row`` overrides the
    line-derived default of one address per 64 bytes).
    """
    mode = check_mode(mode, x.nmodes)
    if isinstance(x, HiCOOTensor):
        inds = x.global_indices()
        nmodes = x.nmodes
    else:
        inds = x.indices.astype(np.int64)
        nmodes = x.nmodes
    row_bytes = r * value_bytes
    if lines_per_row is None:
        lines_per_row = max(1, row_bytes // 64)
    m = inds.shape[0]
    per_entry = nmodes * lines_per_row
    trace = np.empty(m * per_entry, dtype=np.int64)
    # interleave per entry: mats[0] row, mats[1] row, ..., output row —
    # the order the inner loop touches them.
    offsets = (np.arange(lines_per_row, dtype=np.int64) * 64)
    pos = 0
    # build per-mode address columns then interleave
    cols = []
    for mm in range(nmodes):
        base = _REGION * (mm + 1)
        rows = base + inds[:, mm] * np.int64(row_bytes)
        cols.append(rows[:, None] + offsets[None, :])
    stacked = np.stack(cols, axis=1)  # (m, nmodes, lines_per_row)
    trace = stacked.reshape(-1)
    return trace


def measure_gather_locality(
    x: COOTensor,
    mode: int,
    cache_bytes: int,
    r: int = 16,
    block_size: int = 128,
    kernel: str = "mttkrp",
) -> dict:
    """Miss rates of the same gather multiset in COO vs HiCOO order.

    Returns ``{"coo": CacheStats, "hicoo": CacheStats}``; HiCOO's Morton
    order should miss less whenever the tensor has block structure —
    the measured form of the paper's Observation 4.
    """
    from repro.cachesim.cache import simulate_trace

    coo = x.copy().sort()
    hic = HiCOOTensor.from_coo(coo, block_size)
    if kernel == "mttkrp":
        t_coo = mttkrp_gather_trace(coo, mode, r)
        t_hic = mttkrp_gather_trace(hic, mode, r)
    elif kernel == "ttv":
        t_coo = ttv_gather_trace(coo, mode)
        t_hic = ttv_gather_trace(hic, mode)
    else:
        raise ValueError(f"no trace generator for kernel {kernel!r}")
    return {
        "coo": simulate_trace(t_coo, cache_bytes),
        "hicoo": simulate_trace(t_hic, cache_bytes),
    }
