"""Set-associative LRU cache simulator.

The paper's analysis is memory-traffic based (Table 1) and its HiCOO
claims rest on locality ("data locality is increased due to blocking and
Morton order sorting").  This substrate lets the suite *measure* those
claims instead of asserting them: kernels emit address traces
(:mod:`repro.cachesim.trace`) and this simulator counts hits/misses, so
COO-order vs Morton-order gather locality becomes an observable number.

The simulator models one cache level: ``sets x ways`` lines of
``line_size`` bytes with LRU replacement — the standard teaching model,
sufficient for relative locality comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ShapeError
from repro.util.bits import is_pow2


@dataclass
class CacheStats:
    """Aggregate outcome of a simulated trace."""

    accesses: int = 0
    hits: int = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    @property
    def miss_rate(self) -> float:
        return 1.0 - self.hit_rate

    def miss_bytes(self, line_size: int) -> int:
        """DRAM traffic implied by the misses."""
        return self.misses * line_size


class LRUCache:
    """Set-associative LRU cache over 64-bit byte addresses."""

    def __init__(self, size_bytes: int, line_size: int = 64, ways: int = 8):
        if not is_pow2(line_size):
            raise ShapeError(f"line size must be a power of two, got {line_size}")
        if size_bytes < line_size * ways:
            raise ShapeError(
                f"cache of {size_bytes} B cannot hold {ways} ways of "
                f"{line_size} B lines"
            )
        self.line_size = int(line_size)
        self.ways = int(ways)
        self.nsets = max(1, size_bytes // (line_size * ways))
        if not is_pow2(self.nsets):
            # round down to a power of two (hardware-like indexing)
            self.nsets = 1 << (self.nsets.bit_length() - 1)
        self.size_bytes = self.nsets * self.ways * self.line_size
        # tags[set][way]; lru[set][way] = age (higher = more recent)
        self._tags = np.full((self.nsets, self.ways), -1, dtype=np.int64)
        self._age = np.zeros((self.nsets, self.ways), dtype=np.int64)
        self._clock = 0
        self.stats = CacheStats()

    def reset(self) -> None:
        self._tags.fill(-1)
        self._age.fill(0)
        self._clock = 0
        self.stats = CacheStats()

    # ------------------------------------------------------------------ #
    def access(self, addr: int) -> bool:
        """Touch one byte address; returns True on hit."""
        line = addr // self.line_size
        s = line & (self.nsets - 1)
        tags = self._tags[s]
        self._clock += 1
        self.stats.accesses += 1
        hit = np.flatnonzero(tags == line)
        if hit.size:
            self._age[s, hit[0]] = self._clock
            self.stats.hits += 1
            return True
        victim = int(np.argmin(self._age[s]))
        self._tags[s, victim] = line
        self._age[s, victim] = self._clock
        return False

    def access_block(self, trace: np.ndarray) -> None:
        """Run a whole address trace (int64 byte addresses).

        Implemented as a Python loop over unique-per-line compressed runs:
        consecutive accesses to one line collapse to a single probe (they
        would all hit), which keeps simulation cost proportional to line
        transitions, not raw accesses.
        """
        trace = np.asarray(trace, dtype=np.int64)
        if trace.size == 0:
            return
        lines = trace // self.line_size
        # collapse consecutive duplicates, counting the collapsed hits
        keep = np.ones(len(lines), dtype=bool)
        keep[1:] = lines[1:] != lines[:-1]
        collapsed = lines[keep]
        dup_hits = int(len(lines) - len(collapsed))
        self.stats.accesses += dup_hits
        self.stats.hits += dup_hits
        mask = self.nsets - 1
        tags = self._tags
        age = self._age
        clock = self._clock
        accesses = 0
        hits = 0
        for line in collapsed.tolist():
            s = line & mask
            clock += 1
            accesses += 1
            row = tags[s]
            found = -1
            for w in range(self.ways):
                if row[w] == line:
                    found = w
                    break
            if found >= 0:
                age[s, found] = clock
                hits += 1
            else:
                victim = 0
                amin = age[s, 0]
                for w in range(1, self.ways):
                    if age[s, w] < amin:
                        amin = age[s, w]
                        victim = w
                tags[s, victim] = line
                age[s, victim] = clock
        self._clock = clock
        self.stats.accesses += accesses
        self.stats.hits += hits


def simulate_trace(
    trace: np.ndarray,
    size_bytes: int,
    line_size: int = 64,
    ways: int = 8,
) -> CacheStats:
    """One-shot convenience: run ``trace`` through a fresh cache."""
    cache = LRUCache(size_bytes, line_size, ways)
    cache.access_block(trace)
    return cache.stats
