"""repro — a parallel sparse tensor benchmark suite.

Reproduction of "A Parallel Sparse Tensor Benchmark Suite on CPUs and
GPUs" (Li et al., PPoPP 2020): five reference sparse tensor kernels (Tew,
Ts, Ttv, Ttm, Mttkrp) in COO and HiCOO formats, synthetic tensor
generators (stochastic Kronecker and biased power-law), CPU and
simulated-GPU execution backends, and roofline performance models for the
paper's four platforms.

Quickstart::

    import repro

    x = repro.COOTensor.random((200, 150, 120), nnz=10_000, rng=7)
    y = repro.ttv(x, np.ones(120, dtype=np.float32), mode=2)
    h = repro.HiCOOTensor.from_coo(x, block_size=128)
    a = repro.mttkrp(h, mats, mode=0)
"""

from repro.types import (
    DEFAULT_BLOCK_SIZE,
    DEFAULT_RANK,
    Format,
    Kernel,
    OpKind,
    Schedule,
)
from repro.sptensor import (
    COOTensor,
    CSFTensor,
    GHiCOOTensor,
    HiCOOTensor,
    SemiCOOTensor,
    SemiHiCOOTensor,
    as_format,
    to_coo,
    read_tns,
    write_tns,
    save_npz,
    load_npz,
    summarize,
)
from repro.kernels import mttkrp, tew, ts, ttm, ttv
from repro.parallel import OpenMPBackend, SequentialBackend, get_backend
from repro.stream import SlidingWindowTensor, StreamingTensorBuilder
from repro.tune import recommend_block_size, recommend_format
from repro.validate import validate_tensor

__version__ = "1.0.0"

__all__ = [
    "COOTensor",
    "HiCOOTensor",
    "GHiCOOTensor",
    "SemiCOOTensor",
    "SemiHiCOOTensor",
    "CSFTensor",
    "as_format",
    "to_coo",
    "read_tns",
    "write_tns",
    "save_npz",
    "load_npz",
    "summarize",
    "tew",
    "ts",
    "ttv",
    "ttm",
    "mttkrp",
    "OpKind",
    "Kernel",
    "Format",
    "Schedule",
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_RANK",
    "OpenMPBackend",
    "SequentialBackend",
    "get_backend",
    "StreamingTensorBuilder",
    "SlidingWindowTensor",
    "recommend_format",
    "recommend_block_size",
    "validate_tensor",
    "__version__",
]
