"""Simulated-GPU variants of the five kernels.

Each function executes the kernel numerically (via the NumPy reference
implementations, so results are exact) and simulates the launch the paper
describes for CUDA (Sec. 3.2.2 / 3.4.2):

* Tew / Ts — 1-D grid of 1-D thread blocks over non-zeros (256 threads);
* Ttv — 1-D grid over *fibers* (imbalance from fiber lengths);
* Ttm — 1-D grid of 2-D blocks: x = matrix columns (coalesced), y = nnz;
* COO-Mttkrp — non-zero parallel with ``atomicAdd`` on the output;
* HiCOO-Mttkrp — one *tensor block* per CUDA block: balanced non-zero
  distribution is lost, atomics stay (the paper's Observation 4 case).

The returned :class:`GpuRunResult` carries both the numeric value and a
:class:`~repro.gpu.costmodel.KernelTiming` breakdown.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.types import OpKind
from repro.obs.tracer import current_tracer
from repro.kernels.mttkrp import coo_mttkrp, hicoo_mttkrp
from repro.kernels.tew import coo_tew, hicoo_tew
from repro.kernels.ts import coo_ts, hicoo_ts
from repro.kernels.ttm import coo_ttm, hicoo_ttm
from repro.kernels.ttv import coo_ttv, hicoo_ttv
from repro.gpu.costmodel import (
    KernelTiming,
    atomic_time,
    address_time,
    combine,
    memory_time,
)
from repro.gpu.device import DeviceSpec
from repro.sptensor.coo import COOTensor
from repro.sptensor.hicoo import HiCOOTensor


@dataclass(frozen=True)
class GpuRunResult:
    """Numeric result + simulated timing of one GPU kernel launch."""

    value: Any
    timing: KernelTiming

    @property
    def seconds(self) -> float:
        return self.timing.total_s

    def gflops(self, flops: float) -> float:
        return flops / self.seconds / 1e9 if self.seconds > 0 else 0.0


def _block_sizes(total: int, per_block: int) -> np.ndarray:
    """Entry counts of a 1-D grid of fixed-size thread blocks."""
    if total <= 0:
        return np.zeros(0, dtype=np.int64)
    per_block = max(1, per_block)
    nb = (total + per_block - 1) // per_block
    sizes = np.full(nb, per_block, dtype=np.int64)
    sizes[-1] = total - per_block * (nb - 1)
    return sizes


def _fiber_block_bytes(
    fiber_lengths: np.ndarray,
    fibers_per_block: int,
    entry_bytes: float,
    fiber_bytes: float,
    warp: int = 0,
) -> np.ndarray:
    """Bytes moved by each thread block of a fiber-parallel launch.

    With ``warp > 0`` the model charges *warp divergence*: one thread per
    fiber means every thread in a warp spins until the warp's longest
    fiber finishes, so each fiber is billed at its warp's maximum length —
    the mechanism that keeps COO-Ttv-GPU well under the roofline on
    skewed tensors (paper Sec. 3.2.2).
    """
    nf = len(fiber_lengths)
    if nf == 0:
        return np.zeros(0, dtype=np.float64)
    lengths = fiber_lengths.astype(np.float64)
    if warp > 1:
        ngroups = (nf + warp - 1) // warp
        group_of = np.arange(nf) // warp
        gmax = np.zeros(ngroups, dtype=np.float64)
        np.maximum.at(gmax, group_of, lengths)
        lengths = gmax[group_of]
    nb = (nf + fibers_per_block - 1) // fibers_per_block
    work = lengths * entry_bytes + fiber_bytes
    out = np.zeros(nb, dtype=np.float64)
    np.add.at(out, np.arange(nf) // fibers_per_block, work)
    return out


# --------------------------------------------------------------------- #
# Tew / Ts
# --------------------------------------------------------------------- #
def gpu_tew(x, y, op: "OpKind | str", device: DeviceSpec, **kw) -> GpuRunResult:
    """COO/HiCOO-Tew-GPU: non-zero parallel, 12 bytes per output entry."""
    if isinstance(x, HiCOOTensor):
        value = hicoo_tew(x, y, op, **kw)
        out_nnz = value.nnz
    else:
        value = coo_tew(x, y, op, **kw)
        out_nnz = value.nnz
    blocks = _block_sizes(out_nnz, device.threads_per_block) * 12.0
    mem_s, imb, bw, res = memory_time(device, blocks, working_set_bytes=12.0 * out_nnz)
    return GpuRunResult(value, combine(device, mem_s, imb, bw, res, len(blocks)))


def gpu_ts(x, s: float, op: "OpKind | str", device: DeviceSpec, **kw) -> GpuRunResult:
    """COO/HiCOO-Ts-GPU: non-zero parallel, 8 bytes per entry."""
    value = hicoo_ts(x, s, op, **kw) if isinstance(x, HiCOOTensor) else coo_ts(x, s, op, **kw)
    blocks = _block_sizes(x.nnz, device.threads_per_block) * 8.0
    mem_s, imb, bw, res = memory_time(device, blocks, working_set_bytes=8.0 * x.nnz)
    return GpuRunResult(value, combine(device, mem_s, imb, bw, res, len(blocks)))


# --------------------------------------------------------------------- #
# Ttv
# --------------------------------------------------------------------- #
def gpu_ttv(x, v: np.ndarray, mode: int, device: DeviceSpec, **kw) -> GpuRunResult:
    """COO/HiCOO-Ttv-GPU: one thread per fiber; unbalanced fiber lengths
    make some thread blocks stragglers (paper Sec. 3.2.2)."""
    coo = x.to_coo() if isinstance(x, HiCOOTensor) else x
    lengths = coo.fiber_index(mode).fiber_lengths()
    value = (
        hicoo_ttv(x, v, mode, **kw)
        if isinstance(x, HiCOOTensor)
        else coo_ttv(x, v, mode, **kw)
    )
    blocks = _fiber_block_bytes(
        lengths, device.threads_per_block, 12.0, 12.0, warp=32
    )
    ws = 12.0 * coo.nnz + 12.0 * len(lengths) + 4.0 * coo.shape[mode]
    mem_s, imb, bw, res = memory_time(device, blocks, working_set_bytes=ws)
    return GpuRunResult(value, combine(device, mem_s, imb, bw, res, len(blocks)))


# --------------------------------------------------------------------- #
# Ttm
# --------------------------------------------------------------------- #
def gpu_ttm(x, u: np.ndarray, mode: int, device: DeviceSpec, **kw) -> GpuRunResult:
    """COO/HiCOO-Ttm-GPU: 2-D thread blocks, x-dim = matrix columns for
    coalescing, y-dim = non-zeros (ParTI's kernel)."""
    coo = x.to_coo() if isinstance(x, HiCOOTensor) else x
    r = u.shape[1]
    lengths = coo.fiber_index(mode).fiber_lengths()
    value = (
        hicoo_ttm(x, u, mode, **kw)
        if isinstance(x, HiCOOTensor)
        else coo_ttm(x, u, mode, **kw)
    )
    fibers_per_block = max(1, device.threads_per_block // max(r, 1))
    # 2-D blocks put R columns on the x-dim, so a warp only spans
    # 32/R fibers on the y-dim: divergence is much milder than Ttv's.
    blocks = _fiber_block_bytes(
        lengths, fibers_per_block, 4.0 * r + 8.0, 4.0 * r + 8.0,
        warp=max(1, 32 // max(r, 1)),
    )
    ws = (4.0 * r + 8.0) * (coo.nnz + len(lengths)) + 4.0 * coo.shape[mode] * r
    mem_s, imb, bw, res = memory_time(device, blocks, working_set_bytes=ws)
    return GpuRunResult(value, combine(device, mem_s, imb, bw, res, len(blocks)))


# --------------------------------------------------------------------- #
# Mttkrp
# --------------------------------------------------------------------- #
def _mttkrp_contention(rows: np.ndarray) -> float:
    """Mean scatter-collision depth on the output rows."""
    if len(rows) == 0:
        return 0.0
    counts = np.bincount(rows.astype(np.int64))
    counts = counts[counts > 0]
    return float(counts.mean())


def _mttkrp_atomics(device, rows: np.ndarray, r: int, kw: dict):
    """Atomic cost of an Mttkrp launch, respecting the update method.

    The conflict-free strategies (``owner`` row partitioning, ``sort``
    segmented reduce) issue no ``atomicAdd`` at all — their simulated
    launch charges zero atomic time and unit contention, which is exactly
    the trade the ablation benchmark measures.
    """
    method = kw.get("method", "atomic")
    if method in ("owner", "sort"):
        return 0.0, 1.0
    contention = _mttkrp_contention(rows)
    tracer = current_tracer()
    if tracer.enabled:
        tracer.count("gpu.atomics_issued", float(len(rows)) * r)
        tracer.gauge("gpu.atomic_conflict_depth", contention)
    return atomic_time(device, len(rows) * r, contention), contention


def gpu_coo_mttkrp(
    x: COOTensor,
    mats: Sequence[np.ndarray],
    mode: int,
    device: DeviceSpec,
    **kw,
) -> GpuRunResult:
    """COO-Mttkrp-GPU: non-zero parallel with atomicAdd on the output
    matrix; balanced work, contended updates."""
    value = coo_mttkrp(x, mats, mode, **kw)
    r = value.shape[1]
    m = x.nnz
    entries_per_block = max(1, device.threads_per_block // max(r, 1))
    # Streaming phase: tensor indices + values (16 bytes per entry).
    stream_blocks = _block_sizes(m, entries_per_block) * 16.0
    mem_s, imb, bw, res = memory_time(
        device, stream_blocks, working_set_bytes=float("inf")
    )
    # Gather phases, one per non-product mode plus the scattered output:
    # each gathers one R-float row per entry, and its working set is the
    # rows actually touched — a tensor with a *short* mode keeps that
    # factor matrix in the LLC and can exceed the DRAM roofline
    # (Observation 2 on the V100's larger L2).
    gather_modes = [mm for mm in range(x.nmodes) if mm != mode] + [mode]
    for mm in gather_modes:
        touched = len(np.unique(x.indices[:, mm]))
        ws = 4.0 * r * touched
        blocks = _block_sizes(m, entries_per_block) * (4.0 * r)
        t, i2, b2, r2 = memory_time(device, blocks, working_set_bytes=ws)
        mem_s += t
        imb = max(imb, i2)
        if not r2:
            bw, res = b2, r2
    atom, contention = _mttkrp_atomics(device, x.index_column(mode), r, kw)
    flop_time = 3.0 * m * r / (device.peak_sp_gflops * 1e9)
    addr = address_time(device, 4.0 * m * r, flop_time)
    return GpuRunResult(
        value,
        combine(
            device,
            mem_s,
            imb,
            bw,
            res,
            len(stream_blocks),
            atomic_s=atom,
            address_s=addr,
            contention=contention,
        ),
    )


def gpu_hicoo_mttkrp(
    x: HiCOOTensor,
    mats: Sequence[np.ndarray],
    mode: int,
    device: DeviceSpec,
    **kw,
) -> GpuRunResult:
    """HiCOO-Mttkrp-GPU: one tensor block per CUDA thread block.

    The balanced non-zero distribution of the COO kernel disappears —
    per-CUDA-block work is the tensor block's nnz — while atomics stay, so
    heavy-tailed block occupancy and low block counts can make this
    *slower* than COO-Mttkrp-GPU (paper Observation 4)."""
    value = hicoo_mttkrp(x, mats, mode, **kw)
    r = value.shape[1]
    nnzb = x.nnz_per_block().astype(np.float64)
    ginds = x.global_indices()
    # Per tensor-block traffic: matrix rows (reused within the block, at
    # most B distinct rows per matrix), 8-bit element indices + values.
    per_block = nnzb * (12.0 * r + 7.0) + 20.0
    # Working set: the rows actually touched across the factor matrices
    # (short modes stay cache-resident, as in the COO kernel).
    ws = sum(
        4.0 * r * len(np.unique(ginds[:, mm])) for mm in range(x.nmodes)
    )
    mem_s, imb, bw, res = memory_time(device, per_block, working_set_bytes=ws)
    rows = ginds[:, mode]
    atom, _ = _mttkrp_atomics(device, rows, r, kw)
    flop_time = 3.0 * x.nnz * r / (device.peak_sp_gflops * 1e9)
    addr = address_time(device, 2.0 * x.nnz * r, flop_time)
    return GpuRunResult(
        value,
        combine(
            device,
            mem_s,
            imb,
            bw,
            res,
            len(per_block),
            atomic_s=atom,
            address_s=addr,
            block_imbalance=float(nnzb.max() / nnzb.mean()) if len(nnzb) else 1.0,
        ),
    )


def gpu_mttkrp(x, mats, mode: int, device: DeviceSpec, **kw) -> GpuRunResult:
    """Dispatch on format: COO → nnz-parallel, HiCOO → block-parallel."""
    if isinstance(x, HiCOOTensor):
        return gpu_hicoo_mttkrp(x, mats, mode, device, **kw)
    return gpu_coo_mttkrp(x, mats, mode, device, **kw)
