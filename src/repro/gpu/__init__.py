"""Simulated GPU substrate: devices, cost model, kernel launches."""

from repro.gpu.costmodel import (
    KernelTiming,
    address_time,
    atomic_time,
    combine,
    effective_bandwidth,
    memory_time,
)
from repro.gpu.device import DEVICES, P100, V100, DeviceSpec, get_device
from repro.gpu.multigpu import (
    MultiGpuResult,
    allreduce_time,
    multi_gpu_mttkrp,
    multi_gpu_ttv,
    partition_by_nnz,
    scaling_sweep,
)
from repro.gpu.kernels import (
    GpuRunResult,
    gpu_coo_mttkrp,
    gpu_hicoo_mttkrp,
    gpu_mttkrp,
    gpu_tew,
    gpu_ts,
    gpu_ttm,
    gpu_ttv,
)

__all__ = [
    "DeviceSpec",
    "P100",
    "V100",
    "DEVICES",
    "get_device",
    "KernelTiming",
    "memory_time",
    "atomic_time",
    "address_time",
    "effective_bandwidth",
    "combine",
    "GpuRunResult",
    "gpu_tew",
    "gpu_ts",
    "gpu_ttv",
    "gpu_ttm",
    "gpu_mttkrp",
    "gpu_coo_mttkrp",
    "gpu_hicoo_mttkrp",
    "MultiGpuResult",
    "multi_gpu_mttkrp",
    "multi_gpu_ttv",
    "partition_by_nnz",
    "allreduce_time",
    "scaling_sweep",
]
