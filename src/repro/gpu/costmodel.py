"""GPU kernel cost model: bandwidth sharing, imbalance, atomics, caching.

The model charges each CUDA thread block for the bytes it moves at an
equal share of the device's obtainable bandwidth, then list-schedules the
blocks over the SMs; the makespan is the memory time.  This reproduces
the paper's structural effects directly from tensor statistics:

* *load imbalance* — unequal per-block byte counts (long fibers in
  COO-Ttv, fat tensor blocks in HiCOO-Mttkrp) stretch the makespan;
* *low parallelism* — fewer blocks than the device keeps resident leave
  bandwidth shares idle (HiCOO-Mttkrp-GPU's block-grain parallelism);
* *cache fit* — a working set inside the LLC is charged at the LLC
  bandwidth, letting small/short-mode tensors exceed the DRAM roofline
  (Observation 2, stronger on V100's 6 MB L2);
* *atomic contention* — scatter updates pay the device's atomic
  throughput scaled by the mean collision depth, cheaper on Volta;
* *address arithmetic* — index-heavy kernels pay an integer-pipeline
  term that Volta overlaps with FLOPs (``address_overlap``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.obs.tracer import CAT_GPU, current_tracer
from repro.parallel.partition import makespan
from repro.gpu.device import DeviceSpec


@dataclass(frozen=True)
class KernelTiming:
    """Breakdown of one simulated kernel launch."""

    total_s: float
    memory_s: float
    atomic_s: float
    address_s: float
    overhead_s: float
    nblocks: int
    imbalance: float  # makespan / ideal memory time
    effective_bw_gbs: float
    cache_resident: bool
    notes: dict = field(default_factory=dict)


def effective_bandwidth(device: DeviceSpec, working_set_bytes: float) -> tuple[float, bool]:
    """(GB/s, cache_resident): LLC bandwidth when the working set fits."""
    if working_set_bytes <= device.llc_bytes:
        return device.llc_bw_gbs, True
    return device.dram_bw_gbs, False


def memory_time(
    device: DeviceSpec,
    block_bytes: np.ndarray,
    working_set_bytes: float | None = None,
) -> tuple[float, float, float, bool]:
    """Simulate the memory phase of a launch.

    Returns ``(seconds, imbalance, bw_gbs, cache_resident)``.  Each block
    is served at ``BW / W`` where ``W`` is the device's concurrent block
    capacity, and blocks are LPT-scheduled on ``W`` workers — so a
    perfectly balanced launch with many blocks converges to
    ``total_bytes / BW``, while stragglers and under-subscription stretch
    the makespan exactly as they do on hardware.
    """
    block_bytes = np.asarray(block_bytes, dtype=np.float64)
    total = float(block_bytes.sum())
    if total <= 0 or len(block_bytes) == 0:
        return 0.0, 1.0, device.dram_bw_gbs, False
    ws = total if working_set_bytes is None else working_set_bytes
    bw, resident = effective_bandwidth(device, ws)
    workers = device.max_concurrent_blocks
    per_block_rate = bw * 1e9 / workers
    times = block_bytes / per_block_rate
    span = makespan(times, workers)
    ideal = total / (bw * 1e9)
    return span, span / ideal if ideal > 0 else 1.0, bw, resident


def atomic_time(
    device: DeviceSpec, updates: float, mean_conflicts: float
) -> float:
    """Seconds serialized in atomicAdd traffic.

    ``updates`` scatter-adds are issued; colliding updates to the same
    address serialize, modeled as a damped ``log2(1 + c) / 4`` slowdown
    with mean collision depth ``c`` — hardware coalesces and banks
    same-row conflicts, so the penalty grows far sub-linearly (calibrated
    against the paper's Mttkrp efficiencies: ~40% on P100, up to >100% on
    V100).  Devices without atomics (CPU specs) report 0 throughput and
    must not call this.
    """
    if updates <= 0:
        return 0.0
    if device.atomic_gups <= 0:
        raise ValueError(f"device {device.name} has no atomic throughput set")
    contention_scale = float(np.log2(1.0 + max(mean_conflicts, 0.0))) / 4.0
    return updates * max(contention_scale, 1.0) / (device.atomic_gups * 1e9)


def address_time(
    device: DeviceSpec, index_ops: float, flop_time: float
) -> float:
    """Integer address-arithmetic time not hidden behind FLOPs.

    Index-heavy kernels (Mttkrp computes one address per matrix row
    gather) issue ``index_ops`` integer operations at the same rate as
    FLOPs; ``address_overlap`` of that time is hidden on Volta's
    independent datapaths (Observation 2)."""
    if index_ops <= 0:
        return 0.0
    raw = index_ops / (device.peak_sp_gflops * 1e9)
    exposed = raw * (1.0 - device.address_overlap)
    return max(0.0, exposed - flop_time * device.address_overlap)


def combine(
    device: DeviceSpec,
    mem_s: float,
    imbalance: float,
    bw: float,
    resident: bool,
    nblocks: int,
    atomic_s: float = 0.0,
    address_s: float = 0.0,
    **notes,
) -> KernelTiming:
    """Assemble the launch breakdown (memory, atomics and address phases
    overlap imperfectly; we charge memory plus the exposed serial parts)."""
    total = device.launch_overhead_s + mem_s + atomic_s + address_s
    tracer = current_tracer()
    if tracer.enabled:
        # The launch never executes on real silicon, so the trace records
        # the *model's* verdict: one instant marker per launch plus
        # counters an Mttkrp sweep can roll up across launches.
        occupancy = min(1.0, nblocks / max(1, device.max_concurrent_blocks))
        tracer.instant(
            "gpu_launch", cat=CAT_GPU, device=device.name,
            modeled_s=total, memory_s=mem_s, atomic_s=atomic_s,
            address_s=address_s, nblocks=nblocks, imbalance=imbalance,
            occupancy=occupancy, cache_resident=resident,
            effective_bw_gbs=bw,
        )
        tracer.count("gpu.launches")
        tracer.count("gpu.modeled_s", total)
        tracer.count("gpu.memory_s", mem_s)
        tracer.count("gpu.atomic_s", atomic_s)
        tracer.count("gpu.address_s", address_s)
        tracer.count("gpu.blocks", nblocks)
        tracer.gauge("gpu.occupancy", occupancy)
        tracer.gauge("gpu.imbalance", imbalance)
    return KernelTiming(
        total_s=total,
        memory_s=mem_s,
        atomic_s=atomic_s,
        address_s=address_s,
        overhead_s=device.launch_overhead_s,
        nblocks=nblocks,
        imbalance=imbalance,
        effective_bw_gbs=bw,
        cache_resident=resident,
        notes=dict(notes),
    )
