"""Simulated GPU device specifications.

Substitution (DESIGN.md): no physical P100/V100 is available, so the GPU
side of the suite executes kernels numerically with NumPy (bit-correct
results) while a device simulator produces the execution time.  The
simulator needs the execution-model parameters collected here: SM count,
resident blocks per SM, obtainable bandwidth, cache size, and atomic
throughput — the quantities the paper's GPU observations (2 and 4) hinge
on.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.roofline.platform import DGX_1P, DGX_1V, PlatformSpec


@dataclass(frozen=True)
class DeviceSpec:
    """Execution-model parameters of a simulated CUDA device."""

    name: str
    sm_count: int
    blocks_per_sm: int  # concurrently resident thread blocks per SM
    threads_per_block: int  # the suite's kernels use 256 (paper Sec. 3.2.2)
    peak_sp_gflops: float
    dram_bw_gbs: float  # obtainable (ERT-style) global-memory bandwidth
    llc_bytes: int
    llc_bw_gbs: float
    atomic_gups: float  # global atomicAdd throughput, giga-updates/s
    launch_overhead_s: float = 5e-6
    #: Volta issues integer (address) and floating-point instructions on
    #: independent datapaths, overlapping Mttkrp's address arithmetic with
    #: its FLOPs (paper Observation 2); earlier architectures serialize a
    #: fraction of it.
    address_overlap: float = 0.0

    @property
    def max_concurrent_blocks(self) -> int:
        """Thread blocks the device can keep in flight simultaneously."""
        return self.sm_count * self.blocks_per_sm

    def scaled(self, scale: float) -> "DeviceSpec":
        """A proportionally shrunk device for downscaled datasets.

        Benchmarking a dataset shrunk ``scale``x on a full-size device
        distorts every utilization ratio (launch overhead and concurrency
        are *extensive* relative to the work).  Shrinking the in-flight
        block capacity and the launch overhead by the same factor — rates
        (bandwidth, atomic throughput, peak FLOPS) untouched — restores
        the paper-scale ratios: blocks-per-worker, bandwidth share per
        block, and overhead-to-work all match the full-size run.
        """
        import dataclasses

        if scale <= 1.0:
            return self
        sm = max(2, int(round(self.sm_count / scale)))
        return dataclasses.replace(
            self,
            sm_count=sm,
            launch_overhead_s=self.launch_overhead_s / scale,
        )

    @classmethod
    def from_platform(
        cls,
        platform: PlatformSpec,
        blocks_per_sm: int = 4,
        threads_per_block: int = 256,
        address_overlap: float = 0.0,
    ) -> "DeviceSpec":
        if not platform.is_gpu:
            raise ValueError(f"{platform.name} is not a GPU platform")
        return cls(
            name=platform.name,
            sm_count=platform.sm_count,
            blocks_per_sm=blocks_per_sm,
            threads_per_block=threads_per_block,
            peak_sp_gflops=platform.peak_sp_gflops,
            dram_bw_gbs=platform.ert_dram_bw_gbs,
            llc_bytes=platform.llc_bytes,
            llc_bw_gbs=platform.ert_llc_bw_gbs,
            atomic_gups=platform.atomic_gups,
            address_overlap=address_overlap,
        )


#: Tesla P100 (Pascal): 56 SMs, 3 MB L2, slower atomics, no int/fp overlap.
P100 = DeviceSpec.from_platform(DGX_1P, address_overlap=0.0)

#: Tesla V100 (Volta): 80 SMs, 6 MB L2, fast atomics, int/fp overlap.
V100 = DeviceSpec.from_platform(DGX_1V, address_overlap=0.6)

DEVICES = {"p100": P100, "v100": V100, "dgx-1p": P100, "dgx-1v": V100}


def get_device(name: str) -> DeviceSpec:
    """Look up a simulated device by name."""
    try:
        return DEVICES[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown device {name!r}; known: {sorted(set(DEVICES))}"
        ) from None
