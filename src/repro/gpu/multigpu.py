"""Multi-GPU scaling simulation (paper future work: "multiple GPUs").

Models the standard data-parallel decomposition on a DGX-1-style node:
non-zeros are partitioned across ``G`` devices, each device runs the
single-GPU kernel on its shard, and kernels whose output is shared
(Mttkrp's factor matrix) pay a ring all-reduce over NVLink:

    t = max_g(shard time) + 2 (G-1)/G x out_bytes / nvlink_bw

Ttv/Ttm outputs partition with the non-zeros (fiber-aligned splits), so
they skip the reduction and only pay the imbalance of the shards.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import ShapeError
from repro.gpu.device import DeviceSpec
from repro.gpu.kernels import gpu_coo_mttkrp, gpu_ttv
from repro.sptensor.coo import COOTensor

#: DGX-1 NVLink per-direction bandwidth per GPU (GB/s).
DEFAULT_NVLINK_GBS = 50.0


@dataclass(frozen=True)
class MultiGpuResult:
    """Aggregate timing of a multi-GPU simulated run."""

    value: object
    seconds: float
    shard_seconds: tuple[float, ...]
    allreduce_seconds: float
    ngpus: int

    @property
    def max_shard(self) -> float:
        return max(self.shard_seconds) if self.shard_seconds else 0.0

    def speedup_over(self, single_seconds: float) -> float:
        return single_seconds / self.seconds if self.seconds > 0 else 0.0


def partition_by_nnz(tensor: COOTensor, ngpus: int) -> list[COOTensor]:
    """Split a (sorted) tensor into ``ngpus`` contiguous nnz shards."""
    if ngpus < 1:
        raise ShapeError("need at least one GPU")
    t = tensor.copy().sort()
    bounds = np.linspace(0, t.nnz, ngpus + 1).astype(np.int64)
    shards = []
    for g in range(ngpus):
        lo, hi = int(bounds[g]), int(bounds[g + 1])
        shards.append(
            COOTensor(
                t.shape, t.indices[lo:hi], t.values[lo:hi],
                copy=False, check=False,
            )
        )
    return shards


def allreduce_time(out_bytes: float, ngpus: int, nvlink_gbs: float) -> float:
    """Ring all-reduce: ``2 (G-1)/G x bytes / bw``."""
    if ngpus <= 1:
        return 0.0
    return 2.0 * (ngpus - 1) / ngpus * out_bytes / (nvlink_gbs * 1e9)


def multi_gpu_mttkrp(
    tensor: COOTensor,
    mats: Sequence[np.ndarray],
    mode: int,
    device: DeviceSpec,
    ngpus: int,
    nvlink_gbs: float = DEFAULT_NVLINK_GBS,
) -> MultiGpuResult:
    """Data-parallel Mttkrp: shard non-zeros, reduce the output matrix.

    The numeric result is the exact sum of the shard outputs; the time is
    the slowest shard plus the ring all-reduce of the output matrix.
    """
    shards = partition_by_nnz(tensor, ngpus)
    r = next(np.asarray(u).shape[1] for u in mats if u is not None)
    out = np.zeros((tensor.shape[mode], r))
    shard_times = []
    for shard in shards:
        if shard.nnz == 0:
            shard_times.append(device.launch_overhead_s)
            continue
        res = gpu_coo_mttkrp(shard, mats, mode, device)
        out = out + res.value
        shard_times.append(res.seconds)
    reduce_s = allreduce_time(out.size * 4.0, ngpus, nvlink_gbs)
    total = max(shard_times) + reduce_s
    return MultiGpuResult(out, total, tuple(shard_times), reduce_s, ngpus)


def multi_gpu_ttv(
    tensor: COOTensor,
    v: np.ndarray,
    mode: int,
    device: DeviceSpec,
    ngpus: int,
) -> MultiGpuResult:
    """Data-parallel Ttv: fiber-aligned shards, no reduction needed.

    Shards are split on sorted non-zeros, so a fiber can straddle a cut;
    the numeric result is assembled by coalescing the shard outputs
    (duplicated fiber heads sum), which is also what a real fiber-aligned
    split would produce.
    """
    shards = partition_by_nnz(tensor, ngpus)
    partials = []
    shard_times = []
    for shard in shards:
        if shard.nnz == 0:
            shard_times.append(device.launch_overhead_s)
            continue
        res = gpu_ttv(shard, v, mode, device)
        partials.append(res.value)
        shard_times.append(res.seconds)
    if not partials:
        out_shape = tuple(
            s for m, s in enumerate(tensor.shape) if m != mode
        )
        merged = COOTensor.empty(out_shape)
    else:
        merged = partials[0]
        for p in partials[1:]:
            from repro.kernels.tew import coo_tew

            merged = coo_tew(merged, p, "add")
    return MultiGpuResult(
        merged, max(shard_times), tuple(shard_times), 0.0, ngpus
    )


def scaling_sweep(
    run: Callable[[int], MultiGpuResult], gpu_counts: Sequence[int]
) -> list[dict]:
    """Run a multi-GPU kernel at several device counts; report speedups."""
    base = None
    rows = []
    for g in gpu_counts:
        res = run(g)
        if base is None:
            base = res.seconds
        rows.append(
            {
                "ngpus": g,
                "seconds": res.seconds,
                "speedup": base / res.seconds if res.seconds else 0.0,
                "allreduce_s": res.allreduce_seconds,
                "max_shard_s": res.max_shard,
            }
        )
    return rows
