"""Distributed Mttkrp and CP-ALS on the simulated message-passing substrate.

Implements the *coarse-grained* decomposition used by distributed tensor
libraries (SPLATT's medium-grained scheme simplifies to this when factor
matrices are replicated): non-zeros are partitioned across ranks, every
rank holds a full copy of the factor matrices, each ALS step computes a
local Mttkrp on its shard, and an all-reduce sums the partial output
matrices.  Numeric results equal the serial kernels (up to summation
order); simulated time combines each rank's modeled local compute with
the collective costs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.bench.cpumodel import modeled_cpu_time
from repro.distributed.comm import SimNetwork
from repro.kernels.mttkrp import coo_mttkrp
from repro.roofline.oi import extract_features
from repro.roofline.platform import BLUESKY, PlatformSpec
from repro.sptensor.coo import COOTensor
from repro.types import Format, Kernel


@dataclass(frozen=True)
class DistributedResult:
    """Value + simulated time of one distributed kernel call."""

    value: np.ndarray
    seconds: float
    local_seconds: tuple[float, ...]
    comm_seconds: float
    nranks: int


def partition_nnz(tensor: COOTensor, nranks: int) -> list[COOTensor]:
    """Contiguous nnz shards of a sorted tensor, one per rank."""
    if nranks < 1:
        raise ShapeError("need at least one rank")
    t = tensor.copy().sort()
    bounds = np.linspace(0, t.nnz, nranks + 1).astype(np.int64)
    return [
        COOTensor(
            t.shape,
            t.indices[bounds[r]:bounds[r + 1]],
            t.values[bounds[r]:bounds[r + 1]],
            copy=False,
            check=False,
        )
        for r in range(nranks)
    ]


def _local_time(
    shard: COOTensor, platform: PlatformSpec, rank_count: int, r: int
) -> float:
    """Modeled local Mttkrp time of one shard on one node."""
    if shard.nnz == 0:
        return 0.0
    feats = extract_features(shard, "shard", 128)
    return modeled_cpu_time(
        platform, Kernel.MTTKRP, Format.COO, feats, r=r
    ).total_s


def distributed_mttkrp(
    tensor: COOTensor,
    mats: Sequence[np.ndarray],
    mode: int,
    net: SimNetwork,
    platform: PlatformSpec = BLUESKY,
    shards: Sequence[COOTensor] | None = None,
) -> DistributedResult:
    """Coarse-grained distributed Mttkrp.

    Every rank computes ``coo_mttkrp`` on its shard and the partial
    outputs are all-reduced.  Pass pre-computed ``shards`` to amortize the
    partitioning across ALS iterations.
    """
    if shards is None:
        shards = partition_nnz(tensor, net.nranks)
    if len(shards) != net.nranks:
        raise ShapeError("one shard per rank required")
    rank = next(np.asarray(u).shape[1] for u in mats if u is not None)
    t0 = net.makespan
    locals_: list[float] = []
    partials = []
    for r, shard in enumerate(shards):
        if shard.nnz:
            partial = coo_mttkrp(shard, mats, mode)
        else:
            partial = np.zeros((tensor.shape[mode], rank))
        secs = _local_time(shard, platform, net.nranks, rank)
        net.local_work(r, secs)
        locals_.append(secs)
        partials.append(partial)
    before_comm = net.makespan
    total = net.allreduce(partials)
    return DistributedResult(
        value=total,
        seconds=net.makespan - t0,
        local_seconds=tuple(locals_),
        comm_seconds=net.makespan - before_comm,
        nranks=net.nranks,
    )


@dataclass
class DistributedCPResult:
    """Outcome of a distributed CP-ALS run."""

    weights: np.ndarray
    factors: list
    fits: list
    seconds: float
    comm_seconds: float
    nranks: int


def distributed_cp_als(
    tensor: COOTensor,
    rank: int,
    net: SimNetwork,
    n_iters: int = 10,
    tol: float = 1e-5,
    seed: "int | None" = 0,
    platform: PlatformSpec = BLUESKY,
) -> DistributedCPResult:
    """CP-ALS with replicated factors and distributed Mttkrp.

    The ALS math matches :func:`repro.methods.cpd.cp_als`; each mode
    update's Mttkrp runs distributed, so the fit trajectory agrees with
    the serial algorithm up to floating-point summation order.
    """
    from repro.util.prng import rng_from_seed

    shape = tensor.shape
    n = len(shape)
    rng = rng_from_seed(seed)
    factors = [rng.random((s, rank)) for s in shape]
    grams = [f.T @ f for f in factors]
    shards = partition_nnz(tensor, net.nranks)
    values64 = tensor.values.astype(np.float64)
    norm_x = float(np.sqrt((values64**2).sum()))
    weights = np.ones(rank)
    fits: list[float] = []
    comm_total = 0.0
    t0 = net.makespan
    prev_fit = -np.inf
    for it in range(n_iters):
        for mode in range(n):
            res = distributed_mttkrp(
                tensor, factors, mode, net, platform, shards=shards
            )
            comm_total += res.comm_seconds
            m = res.value.astype(np.float64)
            v = np.ones((rank, rank))
            for other in range(n):
                if other != mode:
                    v = v * grams[other]
            a = m @ np.linalg.pinv(v)
            norms = (
                np.linalg.norm(a, axis=0)
                if it == 0
                else np.maximum(np.abs(a).max(axis=0), 1.0)
            )
            norms = np.where(norms > 0, norms, 1.0)
            a = a / norms
            weights = norms
            factors[mode] = a
            grams[mode] = a.T @ a
            last_mttkrp, last_mode = m, mode
        coeff = np.outer(weights, weights)
        for f in factors:
            coeff = coeff * (f.T @ f)
        norm_k = float(np.sqrt(max(coeff.sum(), 0.0)))
        inner = float(
            (weights * (factors[last_mode] * last_mttkrp).sum(axis=0)).sum()
        )
        residual_sq = max(norm_x**2 + norm_k**2 - 2 * inner, 0.0)
        fit = 1.0 - np.sqrt(residual_sq) / norm_x if norm_x > 0 else 1.0
        fits.append(fit)
        if abs(fit - prev_fit) < tol:
            break
        prev_fit = fit
    return DistributedCPResult(
        weights=weights,
        factors=factors,
        fits=fits,
        seconds=net.makespan - t0,
        comm_seconds=comm_total,
        nranks=net.nranks,
    )
