"""Simulated message-passing substrate for distributed tensor kernels.

The paper lists "distributed systems" among the platforms the suite will
grow to; this module provides the substrate: an SPMD simulation in which
``nranks`` logical processes hold private data and communicate through
collectives whose *results* are computed exactly (NumPy reductions) and
whose *costs* follow the standard LogGP-flavored models:

* point-to-point:  ``t = latency + bytes / bw``
* ring all-reduce: ``t = 2 (n-1) latency + 2 (n-1)/n x bytes / bw``
* all-gather:      ``t = (n-1) latency + (n-1)/n x total_bytes / bw``

Each rank carries a clock; local work advances one clock, collectives
synchronize all participating clocks (barrier semantics) and add the
collective's cost.  The makespan is the maximum clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import ShapeError

#: Defaults loosely modeling a 100 Gb/s (12.5 GB/s) fabric.
DEFAULT_LATENCY_S = 2e-6
DEFAULT_BW_GBS = 12.5


@dataclass
class SimNetwork:
    """The shared interconnect state of an SPMD simulation."""

    nranks: int
    latency_s: float = DEFAULT_LATENCY_S
    bw_gbs: float = DEFAULT_BW_GBS
    clocks: np.ndarray = field(init=False)
    bytes_moved: float = field(init=False, default=0.0)
    collectives: int = field(init=False, default=0)

    def __post_init__(self):
        if self.nranks < 1:
            raise ShapeError("need at least one rank")
        self.clocks = np.zeros(self.nranks, dtype=np.float64)

    # ------------------------------------------------------------------ #
    @property
    def makespan(self) -> float:
        """Simulated elapsed time so far."""
        return float(self.clocks.max())

    def local_work(self, rank: int, seconds: float) -> None:
        """Advance one rank's clock by local computation time."""
        if not 0 <= rank < self.nranks:
            raise ShapeError(f"rank {rank} out of range")
        self.clocks[rank] += max(0.0, seconds)

    def barrier(self) -> None:
        """Synchronize every clock to the latest rank."""
        self.clocks[:] = self.clocks.max()

    # ------------------------------------------------------------------ #
    def ptp_time(self, nbytes: float) -> float:
        return self.latency_s + nbytes / (self.bw_gbs * 1e9)

    def allreduce_time(self, nbytes: float) -> float:
        n = self.nranks
        if n == 1:
            return 0.0
        return 2 * (n - 1) * self.latency_s + 2 * (n - 1) / n * nbytes / (
            self.bw_gbs * 1e9
        )

    def allgather_time(self, total_bytes: float) -> float:
        n = self.nranks
        if n == 1:
            return 0.0
        return (n - 1) * self.latency_s + (n - 1) / n * total_bytes / (
            self.bw_gbs * 1e9
        )

    # ------------------------------------------------------------------ #
    def allreduce(self, contributions: Sequence[np.ndarray]) -> np.ndarray:
        """Sum one array per rank; every rank receives the total.

        Synchronizes the clocks (the collective is blocking) and charges
        the ring cost for the array size.
        """
        if len(contributions) != self.nranks:
            raise ShapeError(
                f"allreduce needs {self.nranks} contributions, got "
                f"{len(contributions)}"
            )
        arrays = [np.asarray(a) for a in contributions]
        shape = arrays[0].shape
        if any(a.shape != shape for a in arrays):
            raise ShapeError("allreduce contributions must share a shape")
        total = np.sum(np.stack(arrays), axis=0)
        self.barrier()
        cost = self.allreduce_time(total.nbytes)
        self.clocks += cost
        self.bytes_moved += total.nbytes * 2 * (self.nranks - 1) / max(self.nranks, 1)
        self.collectives += 1
        return total

    def allgather(self, pieces: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Every rank receives the list of all ranks' pieces."""
        if len(pieces) != self.nranks:
            raise ShapeError(
                f"allgather needs {self.nranks} pieces, got {len(pieces)}"
            )
        arrays = [np.asarray(p) for p in pieces]
        total_bytes = float(sum(a.nbytes for a in arrays))
        self.barrier()
        cost = self.allgather_time(total_bytes)
        self.clocks += cost
        self.bytes_moved += total_bytes * (self.nranks - 1) / max(self.nranks, 1)
        self.collectives += 1
        return arrays

    def reduce_scatter(self, contributions: Sequence[np.ndarray]) -> list[np.ndarray]:
        """Sum per-rank arrays and hand each rank a 1/n row-slice."""
        total = self.allreduce(contributions)  # cost model: ~same ring
        bounds = np.linspace(0, total.shape[0], self.nranks + 1).astype(int)
        return [total[bounds[r]:bounds[r + 1]] for r in range(self.nranks)]
