"""Simulated distributed-memory substrate and distributed tensor kernels."""

from repro.distributed.comm import (
    DEFAULT_BW_GBS,
    DEFAULT_LATENCY_S,
    SimNetwork,
)
from repro.distributed.mttkrp import (
    DistributedCPResult,
    DistributedResult,
    distributed_cp_als,
    distributed_mttkrp,
    partition_nnz,
)

__all__ = [
    "SimNetwork",
    "DEFAULT_LATENCY_S",
    "DEFAULT_BW_GBS",
    "partition_nnz",
    "distributed_mttkrp",
    "DistributedResult",
    "distributed_cp_als",
    "DistributedCPResult",
]
