"""Streaming tensor accumulation (FireHose-style ingestion).

The paper's power-law generator descends from the FireHose *streaming*
benchmarks, where a front-end generator emits an unbounded event stream
and the system under test accumulates state.  This module provides the
accumulation side: a builder that consumes ``(coords, values)`` batches
(duplicates sum, as repeated events increment a key's weight) with bounded
staging memory, and a sliding-window variant that expires old events —
the streaming analytics pattern (anomaly detection over time windows) the
paper's application list motivates.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ShapeError
from repro.sptensor.coo import COOTensor
from repro.util.validation import check_shape


class StreamingTensorBuilder:
    """Accumulate a sparse tensor from a stream of coordinate batches.

    Batches are staged and merged (coalesced) whenever the staging area
    exceeds ``merge_threshold`` entries, keeping memory bounded near the
    size of the accumulated tensor rather than the stream length.

    >>> b = StreamingTensorBuilder((4, 4))
    >>> b.push(np.array([[0, 0], [0, 0]]), np.array([1.0, 2.0]))
    >>> b.finish().to_dense()[0, 0]
    3.0
    """

    def __init__(self, shape: Sequence[int], merge_threshold: int = 1 << 18):
        self.shape = check_shape(shape)
        self.merge_threshold = int(merge_threshold)
        self._staged_coords: list[np.ndarray] = []
        self._staged_values: list[np.ndarray] = []
        self._staged_count = 0
        self._merged: COOTensor | None = None
        self.events_seen = 0
        self.merges = 0

    def push(self, coords: np.ndarray, values: np.ndarray) -> None:
        """Ingest one batch of events."""
        coords = np.asarray(coords)
        values = np.asarray(values)
        if coords.ndim != 2 or coords.shape[1] != len(self.shape):
            raise ShapeError(
                f"coords must be (n, {len(self.shape)}), got {coords.shape}"
            )
        if len(values) != len(coords):
            raise ShapeError("coords and values must align")
        self._staged_coords.append(coords.astype(np.int64))
        self._staged_values.append(values)
        self._staged_count += len(values)
        self.events_seen += len(values)
        if self._staged_count >= self.merge_threshold:
            self._merge()

    def consume(self, stream: Iterable[tuple[np.ndarray, np.ndarray]]) -> None:
        """Ingest an entire generator of batches (e.g. ``powerlaw_stream``)."""
        for coords, values in stream:
            self.push(coords, values)

    def _merge(self) -> None:
        if not self._staged_coords:
            return
        coords = np.concatenate(self._staged_coords, axis=0)
        values = np.concatenate(self._staged_values)
        fresh = COOTensor(self.shape, coords, values, copy=False)
        if self._merged is None:
            self._merged = fresh.coalesce()
        else:
            from repro.kernels.tew import coo_tew

            self._merged = coo_tew(self._merged, fresh.coalesce(), "add")
        self._staged_coords.clear()
        self._staged_values.clear()
        self._staged_count = 0
        self.merges += 1

    @property
    def current_nnz(self) -> int:
        """Distinct coordinates accumulated so far (staged batches count
        approximately until the next merge)."""
        merged = self._merged.nnz if self._merged is not None else 0
        return merged + self._staged_count

    def finish(self) -> COOTensor:
        """Flush staging and return the accumulated tensor."""
        self._merge()
        if self._merged is None:
            return COOTensor.empty(self.shape)
        return self._merged


class SlidingWindowTensor:
    """A tensor over the last ``window`` event batches.

    Each ``push`` admits one batch and evicts the oldest batch beyond the
    window by subtracting it (sparse Tew), keeping the materialized tensor
    equal to the coalesced sum of the live window — the state a streaming
    anomaly detector queries.
    """

    def __init__(self, shape: Sequence[int], window: int):
        if window < 1:
            raise ShapeError("window must be >= 1")
        self.shape = check_shape(shape)
        self.window = int(window)
        self._batches: deque[COOTensor] = deque()
        self._state: COOTensor = COOTensor.empty(self.shape)

    def push(self, coords: np.ndarray, values: np.ndarray) -> COOTensor:
        """Admit a batch, evict the expired one, return the live tensor."""
        from repro.kernels.tew import coo_tew

        batch = COOTensor(self.shape, np.asarray(coords), np.asarray(values)).coalesce()
        self._batches.append(batch)
        self._state = coo_tew(self._state, batch, "add")
        if len(self._batches) > self.window:
            expired = self._batches.popleft()
            self._state = coo_tew(self._state, expired, "sub").drop_zeros(1e-12)
        return self._state

    @property
    def state(self) -> COOTensor:
        return self._state

    @property
    def nbatches(self) -> int:
        return len(self._batches)
