"""Streaming tensor accumulation (FireHose-style ingestion).

The paper's power-law generator descends from the FireHose *streaming*
benchmarks, where a front-end generator emits an unbounded event stream
and the system under test accumulates state.  This module provides the
accumulation side: a builder that consumes ``(coords, values)`` batches
(duplicates sum, as repeated events increment a key's weight) with bounded
staging memory, and a sliding-window variant that expires old events —
the streaming analytics pattern (anomaly detection over time windows) the
paper's application list motivates.

Both containers validate a batch *at push time*: out-of-bounds
coordinates raise on the offending ``push`` call (not on some later
merge, far from the bug), and integer/bool values are coerced to the
suite's value dtype immediately so staged batches concatenate without
surprise promotions.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ShapeError
from repro.sptensor.coo import COOTensor
from repro.types import VALUE_DTYPE
from repro.util.validation import check_indices_in_bounds, check_shape

#: Sliding-window eviction strategies (see :class:`SlidingWindowTensor`).
EVICTION_MODES = ("exact", "subtract")


def validate_batch(
    shape: Sequence[int], coords: np.ndarray, values: np.ndarray
) -> "tuple[np.ndarray, np.ndarray]":
    """Validate and normalize one streamed ``(coords, values)`` batch.

    Checks alignment and coordinate bounds *here*, at the push site, and
    returns defensive copies: ``coords`` as int64 and ``values`` coerced
    to a floating dtype (:data:`~repro.types.VALUE_DTYPE` for
    integer/bool input), so the caller's arrays can be reused or mutated
    without corrupting staged state.
    """
    coords = np.asarray(coords)
    values = np.asarray(values)
    if coords.ndim != 2 or coords.shape[1] != len(shape):
        raise ShapeError(
            f"coords must be (n, {len(shape)}), got {coords.shape}"
        )
    if values.ndim != 1 or len(values) != len(coords):
        raise ShapeError("coords and values must align")
    check_indices_in_bounds(coords, shape)
    coords = coords.astype(np.int64, copy=True)
    if np.issubdtype(values.dtype, np.floating):
        values = values.copy()
    else:
        values = values.astype(VALUE_DTYPE)
    return coords, values


class StreamingTensorBuilder:
    """Accumulate a sparse tensor from a stream of coordinate batches.

    Batches are staged and merged (coalesced) whenever the staging area
    exceeds ``merge_threshold`` entries, keeping memory bounded near the
    size of the accumulated tensor rather than the stream length.

    >>> b = StreamingTensorBuilder((4, 4))
    >>> b.push(np.array([[0, 0], [0, 0]]), np.array([1.0, 2.0]))
    >>> b.finish().to_dense()[0, 0]
    3.0
    """

    def __init__(self, shape: Sequence[int], merge_threshold: int = 1 << 18):
        self.shape = check_shape(shape)
        self.merge_threshold = int(merge_threshold)
        self._staged_coords: list[np.ndarray] = []
        self._staged_values: list[np.ndarray] = []
        self._staged_count = 0
        self._merged: COOTensor | None = None
        self.events_seen = 0
        self.merges = 0

    def push(self, coords: np.ndarray, values: np.ndarray) -> None:
        """Ingest one batch of events (validated and coerced here)."""
        coords, values = validate_batch(self.shape, coords, values)
        self._staged_coords.append(coords)
        self._staged_values.append(values)
        self._staged_count += len(values)
        self.events_seen += len(values)
        if self._staged_count >= self.merge_threshold:
            self._merge()

    def consume(self, stream: Iterable[tuple[np.ndarray, np.ndarray]]) -> None:
        """Ingest an entire generator of batches (e.g. ``powerlaw_stream``)."""
        for coords, values in stream:
            self.push(coords, values)

    def _merge(self) -> None:
        if not self._staged_coords:
            return
        coords = np.concatenate(self._staged_coords, axis=0)
        values = np.concatenate(self._staged_values)
        fresh = COOTensor(self.shape, coords, values, copy=False, check=False)
        if self._merged is None:
            self._merged = fresh.coalesce()
        else:
            from repro.kernels.tew import coo_tew

            self._merged = coo_tew(self._merged, fresh.coalesce(), "add")
        self._staged_coords.clear()
        self._staged_values.clear()
        self._staged_count = 0
        self.merges += 1

    @property
    def current_nnz(self) -> int:
        """Upper bound on the distinct coordinates accumulated so far.

        Staged batches count every event individually until the next
        merge, so duplicates among (or against) staged entries are
        overcounted; use :meth:`exact_nnz` for the coalesced count.
        """
        merged = self._merged.nnz if self._merged is not None else 0
        return merged + self._staged_count

    def exact_nnz(self) -> int:
        """Exact distinct-coordinate count (forces a staging merge)."""
        self._merge()
        return self._merged.nnz if self._merged is not None else 0

    def finish(self) -> COOTensor:
        """Flush staging and return the accumulated tensor."""
        self._merge()
        if self._merged is None:
            return COOTensor.empty(self.shape)
        return self._merged


class SlidingWindowTensor:
    """A tensor over the last ``window`` event batches.

    Each ``push`` admits one batch, evicts the oldest batch beyond the
    window, and keeps the materialized ``state`` equal to the coalesced
    sum of the live batches — the state a streaming anomaly detector
    queries.

    Eviction modes
    --------------
    ``"exact"`` (default)
        Structural eviction: the retained batches are re-coalesced, so
        ``state`` is **bit-identical** to
        ``COOTensor(shape, concat(coords), concat(values)).coalesce()``
        over the live batches — genuine values of any magnitude (even
        below 1e-12) and exact cancellations (explicit zeros) survive,
        and no floating-point residue ever drifts the state.  Costs
        O(window x batch) per push.
    ``"subtract"``
        The historical fast path: the expired batch is subtracted
        (sparse Tew) and near-zeros are dropped with ``subtract_atol``.
        O(state) per push, but **lossy**: any live value with magnitude
        <= ``subtract_atol`` is silently destroyed and subtraction
        residue accumulates.  Opt in only when the window sum is known
        to stay far from the tolerance.
    """

    def __init__(
        self,
        shape: Sequence[int],
        window: int,
        eviction: str = "exact",
        subtract_atol: float = 1e-12,
    ):
        if window < 1:
            raise ShapeError("window must be >= 1")
        if eviction not in EVICTION_MODES:
            raise ValueError(
                f"unknown eviction mode {eviction!r}; expected one of "
                f"{EVICTION_MODES}"
            )
        self.shape = check_shape(shape)
        self.window = int(window)
        self.eviction = eviction
        self.subtract_atol = float(subtract_atol)
        #: Raw validated batches (exact mode's rebuild source).
        self._raw: deque[tuple[np.ndarray, np.ndarray]] = deque()
        #: Per-batch coalesced tensors (subtract mode's eviction source).
        self._coalesced: deque[COOTensor] = deque()
        self._state: COOTensor = COOTensor.empty(self.shape)
        #: Monotonic push counter (snapshot/memoization key for readers).
        self.version = 0
        #: Batches expired out of the window so far.
        self.evictions = 0

    def push(self, coords: np.ndarray, values: np.ndarray) -> COOTensor:
        """Admit a batch, evict the expired one, return the live tensor."""
        coords, values = validate_batch(self.shape, coords, values)
        if self.eviction == "exact":
            self._raw.append((coords, values))
            if len(self._raw) > self.window:
                self._raw.popleft()
                self.evictions += 1
            self._state = self._rebuild()
        else:
            from repro.kernels.tew import coo_tew

            batch = COOTensor(
                self.shape, coords, values, copy=False, check=False
            ).coalesce()
            self._coalesced.append(batch)
            self._state = coo_tew(self._state, batch, "add")
            if len(self._coalesced) > self.window:
                expired = self._coalesced.popleft()
                self.evictions += 1
                self._state = coo_tew(self._state, expired, "sub").drop_zeros(
                    self.subtract_atol
                )
        self.version += 1
        return self._state

    def _rebuild(self) -> COOTensor:
        """Coalesce the live batches from scratch (the exact invariant)."""
        if not self._raw:
            return COOTensor.empty(self.shape)
        coords = np.concatenate([c for c, _ in self._raw], axis=0)
        values = np.concatenate([v for _, v in self._raw])
        return COOTensor(
            self.shape, coords, values, copy=False, check=False
        ).coalesce()

    @property
    def state(self) -> COOTensor:
        return self._state

    @property
    def nbatches(self) -> int:
        return len(self._raw) if self.eviction == "exact" else len(self._coalesced)
