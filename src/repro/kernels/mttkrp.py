"""Matricized tensor times Khatri-Rao product (Mttkrp) — paper Sec. 2.5.

``U~(n) = X_(n) (U(N) ⊙ ... ⊙ U(n+1) ⊙ U(n-1) ⊙ ... ⊙ U(1))``.

Operationally on sparse data, for each non-zero ``x`` at coordinate
``(i_1, ..., i_N)`` and each rank column ``r``:

    out[i_n, r] += x * prod_{m != n} U(m)[i_m, r]

The Khatri-Rao product is never materialized (paper: doing so needs
redundant computation or extra storage).

COO-Mttkrp parallelizes over non-zeros and protects the output rows with
atomic adds (``omp atomic`` / CUDA ``atomicAdd``); HiCOO-Mttkrp (paper
Algorithm 2) parallelizes over tensor blocks, slicing the factor matrices
per block so rows are reused while a block's entries are processed.

NumPy notes: ``np.add.at`` is the race-free scatter-add primitive — it is
the single-thread semantics of an atomic loop.  The multi-threaded path
privatizes per-chunk partial outputs and reduces them at the end, because
concurrent ``np.add.at`` calls on a shared array are not atomic in NumPy;
the *performance model* still charges the kernel for atomic behaviour, so
the benchmark's reported characteristics match the paper's algorithm.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.types import Schedule
from repro.parallel.atomic import atomic_add_rows, sorted_reduce_rows
from repro.parallel.backend import Backend, get_backend
from repro.parallel.openmp import OpenMPBackend
from repro.sptensor.coo import COOTensor
from repro.sptensor.hicoo import HiCOOTensor
from repro.util.validation import check_mode


def _check_matrices(shape, mats: Sequence[np.ndarray], mode: int) -> list:
    n = len(shape)
    if len(mats) != n:
        raise ShapeError(
            f"Mttkrp needs one matrix per mode ({n}), got {len(mats)} "
            "(the product-mode slot may be None)"
        )
    rank = None
    out = []
    for m in range(n):
        if m == mode:
            out.append(None)
            continue
        u = np.asarray(mats[m])
        if u.ndim != 2 or u.shape[0] != shape[m]:
            raise ShapeError(
                f"matrix {m} must be ({shape[m]}, R), got {u.shape}"
            )
        if rank is None:
            rank = u.shape[1]
        elif u.shape[1] != rank:
            raise ShapeError(
                f"all matrices must share R: matrix {m} has {u.shape[1]} "
                f"columns, expected {rank}"
            )
        out.append(u)
    if rank is None:
        raise ShapeError("Mttkrp needs at least one non-product mode matrix")
    return out


def _row_contributions(
    indices: np.ndarray,
    values: np.ndarray,
    mats: Sequence,
    mode: int,
    dtype,
    lo: int = 0,
    hi: int | None = None,
) -> np.ndarray:
    """``contrib[k, :] = x_k * prod_{m != mode} U(m)[i_m(k), :]`` for the
    entry range ``[lo, hi)`` — the per-non-zero work of the kernel."""
    hi = len(values) if hi is None else hi
    contrib = values[lo:hi].astype(dtype, copy=True)[:, None]
    first = True
    for m, u in enumerate(mats):
        if u is None:
            continue
        rows = u[indices[lo:hi, m].astype(np.int64), :]
        if first:
            contrib = contrib * rows
            first = False
        else:
            contrib *= rows
    return contrib


def coo_mttkrp(
    x: COOTensor,
    mats: Sequence[np.ndarray],
    mode: int,
    backend: "Backend | str | None" = None,
    method: str = "atomic",
    schedule: "Schedule | str" = Schedule.STATIC,
) -> np.ndarray:
    """COO-Mttkrp parallelized by non-zeros (ParTI's algorithm).

    Parameters
    ----------
    mats:
        One ``(I_m, R)`` matrix per mode; the entry at ``mode`` is ignored
        (may be ``None``).
    method:
        ``"atomic"`` — scatter-add per chunk (the paper's algorithm);
        ``"sort"``   — sort-by-output-row then segmented reduce (the
        lock-avoiding alternative, used by the ablation benchmark).

    Returns the updated dense matrix ``(I_mode, R)``.
    """
    mode = check_mode(mode, x.nmodes)
    mats = _check_matrices(x.shape, mats, mode)
    backend = get_backend(backend)
    r = next(u.shape[1] for u in mats if u is not None)
    dtype = np.result_type(x.values, *[u for u in mats if u is not None])
    out = np.zeros((x.shape[mode], r), dtype=dtype)
    if x.nnz == 0:
        return out
    rows = x.indices[:, mode].astype(np.int64)

    if method == "sort":
        contrib = _row_contributions(x.indices, x.values, mats, mode, dtype)
        sorted_reduce_rows(out, rows, contrib)
        return out
    if method != "atomic":
        raise ValueError(f"unknown Mttkrp method {method!r}")

    if isinstance(backend, OpenMPBackend) and backend.nthreads > 1:
        # Privatized partial outputs per chunk (see module docstring).
        partials: dict[tuple[int, int], np.ndarray] = {}

        def body(lo: int, hi: int) -> None:
            local = np.zeros_like(out)
            contrib = _row_contributions(
                x.indices, x.values, mats, mode, dtype, lo, hi
            )
            atomic_add_rows(local, rows[lo:hi], contrib)
            partials[(lo, hi)] = local

        backend.parallel_for(x.nnz, body, schedule=schedule)
        for local in partials.values():
            out += local
        return out

    def body(lo: int, hi: int) -> None:
        contrib = _row_contributions(
            x.indices, x.values, mats, mode, dtype, lo, hi
        )
        atomic_add_rows(out, rows[lo:hi], contrib)

    backend.parallel_for(x.nnz, body, schedule=schedule)
    return out


def hicoo_mttkrp(
    x: HiCOOTensor,
    mats: Sequence[np.ndarray],
    mode: int,
    backend: "Backend | str | None" = None,
    schedule: "Schedule | str" = Schedule.DYNAMIC,
    blocks_per_chunk: int = 32,
) -> np.ndarray:
    """HiCOO-Mttkrp (paper Algorithm 2) parallelized by tensor *blocks*.

    For each block ``b``, the factor matrices are sliced at the block
    offsets (``Ab = A + bi·B·R`` etc.) and the block's entries update the
    sliced output with 8-bit element indices — matrix rows are reused
    across the block, which is where HiCOO-Mttkrp's smaller memory traffic
    (Table 1) comes from.  Blocks may collide on output rows, so blocks are
    privatized per chunk exactly like the COO atomic path.
    """
    mode = check_mode(mode, x.nmodes)
    mats = _check_matrices(x.shape, mats, mode)
    backend = get_backend(backend)
    r = next(u.shape[1] for u in mats if u is not None)
    dtype = np.result_type(x.values, *[u for u in mats if u is not None])
    out = np.zeros((x.shape[mode], r), dtype=dtype)
    if x.nnz == 0:
        return out
    bsz = np.int64(x.block_size)
    bid_of_entry = x.entry_block_ids()
    # Global row per entry: block offset + element offset, per mode.
    global_rows = {
        m: x.binds[bid_of_entry, j].astype(np.int64) * bsz
        + x.einds[:, j].astype(np.int64)
        for j, m in enumerate(range(x.nmodes))
    }

    use_private = isinstance(backend, OpenMPBackend) and backend.nthreads > 1
    partials: dict[tuple[int, int], np.ndarray] = {}

    def body(blo: int, bhi: int) -> None:
        lo, hi = int(x.bptr[blo]), int(x.bptr[bhi])
        if hi <= lo:
            return
        contrib = x.values[lo:hi].astype(dtype, copy=False)[:, None]
        first = True
        for m, u in enumerate(mats):
            if u is None:
                continue
            rows_m = u[global_rows[m][lo:hi], :]
            if first:
                contrib = contrib * rows_m
                first = False
            else:
                contrib *= rows_m
        target = out
        if use_private:
            target = np.zeros_like(out)
            partials[(blo, bhi)] = target
        atomic_add_rows(target, global_rows[mode][lo:hi], contrib)

    backend.parallel_for(
        x.nblocks, body, schedule=schedule, chunk=blocks_per_chunk
    )
    if use_private:
        for local in partials.values():
            out += local
    return out
