"""Matricized tensor times Khatri-Rao product (Mttkrp) — paper Sec. 2.5.

``U~(n) = X_(n) (U(N) ⊙ ... ⊙ U(n+1) ⊙ U(n-1) ⊙ ... ⊙ U(1))``.

Operationally on sparse data, for each non-zero ``x`` at coordinate
``(i_1, ..., i_N)`` and each rank column ``r``:

    out[i_n, r] += x * prod_{m != n} U(m)[i_m, r]

The Khatri-Rao product is never materialized (paper: doing so needs
redundant computation or extra storage).

COO-Mttkrp parallelizes over non-zeros and protects the output rows with
atomic adds (``omp atomic`` / CUDA ``atomicAdd``); HiCOO-Mttkrp (paper
Algorithm 2) parallelizes over tensor blocks, slicing the factor matrices
per block so rows are reused while a block's entries are processed.

NumPy notes: ``np.add.at`` is the race-free scatter-add primitive — it is
the single-thread semantics of an atomic loop.  Three update strategies
make the multi-threaded kernels race-free:

* ``method="atomic"`` — each worker thread accumulates into a private
  arena from a shared :class:`~repro.parallel.workspace.WorkspacePool`
  (one buffer per *thread*, reused across every chunk it runs) and the
  arenas are tree-reduced into the output once.  The *performance model*
  still charges the kernel for atomic behaviour, so the benchmark's
  reported characteristics match the paper's algorithm.
* ``method="sort"`` — sort updates by output row, segmented reduce (the
  lock-avoiding alternative the paper cites).
* ``method="owner"`` — owner-computes: non-zeros (or HiCOO blocks) are
  pre-bucketed by disjoint output-row ranges so each thread owns a slice
  of ``out`` and needs no privatization or atomics at all; the stable
  bucketing keeps results bit-identical to the sequential kernel (see
  :mod:`repro.parallel.ownership`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.types import Schedule
from repro.compiled import resolve_tier, run_mttkrp
from repro.obs.tracer import CAT_KERNEL, current_tracer
from repro.kernels.contract import Access, declares_output
from repro.parallel.atomic import atomic_add_rows, sorted_reduce_rows
from repro.parallel.backend import Backend, get_backend
from repro.parallel.ownership import owner_partition
from repro.sptensor.coo import COOTensor
from repro.sptensor.hicoo import HiCOOTensor
from repro.util.validation import check_mode

#: Update strategies shared by the COO and HiCOO kernels.
MTTKRP_METHODS = ("atomic", "sort", "owner")

#: Privatization strategies for the ``atomic`` method under a threaded
#: backend.  ``"chunk"`` reproduces the seed's per-chunk buffers and is
#: kept only as the baseline of the hot-path ablation harness.
PRIVATIZE_MODES = ("arena", "chunk")


def _check_matrices(shape, mats: Sequence[np.ndarray], mode: int) -> list:
    n = len(shape)
    if len(mats) != n:
        raise ShapeError(
            f"Mttkrp needs one matrix per mode ({n}), got {len(mats)} "
            "(the product-mode slot may be None)"
        )
    rank = None
    out = []
    for m in range(n):
        if m == mode:
            out.append(None)
            continue
        u = np.asarray(mats[m])
        if u.ndim != 2 or u.shape[0] != shape[m]:
            raise ShapeError(
                f"matrix {m} must be ({shape[m]}, R), got {u.shape}"
            )
        if rank is None:
            rank = u.shape[1]
        elif u.shape[1] != rank:
            raise ShapeError(
                f"all matrices must share R: matrix {m} has {u.shape[1]} "
                f"columns, expected {rank}"
            )
        out.append(u)
    if rank is None:
        raise ShapeError("Mttkrp needs at least one non-product mode matrix")
    return out


def _check_method(method: str, privatize: str) -> None:
    if method not in MTTKRP_METHODS:
        raise ValueError(
            f"unknown Mttkrp method {method!r}; expected one of {MTTKRP_METHODS}"
        )
    if privatize not in PRIVATIZE_MODES:
        raise ValueError(
            f"unknown privatization {privatize!r}; expected one of {PRIVATIZE_MODES}"
        )


def _row_contributions(
    cols: Sequence["np.ndarray | None"],
    values: np.ndarray,
    mats: Sequence,
    dtype,
    lo: int = 0,
    hi: int | None = None,
    sel: np.ndarray | None = None,
) -> np.ndarray:
    """``contrib[k, :] = x_k * prod_{m != mode} U(m)[i_m(k), :]``.

    ``cols`` holds one canonical int64 index column per mode (``None`` at
    the product mode, whose matrix is also ``None``) so no per-call
    ``astype`` copies happen here.  Entries are selected either by the
    contiguous range ``[lo, hi)`` or by the explicit index array ``sel``
    (the owner-computes path, whose buckets are not contiguous).
    """
    if sel is None:
        hi = len(values) if hi is None else hi
        pick = slice(lo, hi)
    else:
        pick = sel
    contrib = values[pick].astype(dtype, copy=True)[:, None]
    first = True
    for col, u in zip(cols, mats):
        if u is None:
            continue
        rows = u[col[pick], :]
        if first:
            contrib = contrib * rows
            first = False
        else:
            contrib *= rows
    return contrib


def _scatter_add_parallel(
    out: np.ndarray,
    rows: np.ndarray,
    make_contrib,
    total: int,
    backend: Backend,
    schedule: "Schedule | str",
    chunk: int | None,
    privatize: str,
    entry_range,
) -> None:
    """Run the privatized scatter-add loop for the ``atomic`` method.

    ``make_contrib(lo, hi)`` produces the contribution rows of the entry
    range ``[lo, hi)``; ``entry_range(blo, bhi)`` maps a loop-iteration
    range to an entry range (identity for COO, ``bptr`` lookup for HiCOO
    blocks).  Threaded backends privatize into per-thread arenas (or the
    seed's per-chunk buffers when ``privatize="chunk"``); the sequential
    backend scatters straight into ``out``.
    """
    threaded = backend.is_threaded
    if not threaded:
        def body(blo: int, bhi: int) -> None:
            lo, hi = entry_range(blo, bhi)
            if hi <= lo:
                return
            atomic_add_rows(out, rows[lo:hi], make_contrib(lo, hi))

        with backend.check_output(out, Access.ATOMIC):
            backend.parallel_for(total, body, schedule=schedule, chunk=chunk)
        return

    if privatize == "chunk":
        # Seed baseline: one full-size private buffer per *chunk* — an
        # unbounded O(nchunks) allocation + reduction pattern, kept only
        # so the harness can measure what the arena pool saves.
        partials: dict[tuple[int, int], np.ndarray] = {}

        def body(blo: int, bhi: int) -> None:
            lo, hi = entry_range(blo, bhi)
            if hi <= lo:
                return
            local = np.zeros_like(out)
            atomic_add_rows(local, rows[lo:hi], make_contrib(lo, hi))
            partials[(lo, hi)] = local

        with backend.check_output(out, Access.WORKSPACE):
            backend.parallel_for(total, body, schedule=schedule, chunk=chunk)
        for local in partials.values():
            out += local
        return

    tracer = current_tracer()

    with backend.workspace(out.shape, out.dtype) as pool:
        def body(blo: int, bhi: int) -> None:
            lo, hi = entry_range(blo, bhi)
            if hi <= lo:
                return
            if tracer.enabled:
                # Enrich the enclosing chunk span: iteration ranges are
                # blocks for HiCOO, so record the *entry* count the chunk
                # actually moved (what load-imbalance is made of).
                tracer.annotate(entries=hi - lo)
            atomic_add_rows(pool.acquire(), rows[lo:hi], make_contrib(lo, hi))

        with backend.check_output(out, Access.WORKSPACE):
            backend.parallel_for(total, body, schedule=schedule, chunk=chunk)
        # The invariant the per-chunk scheme violated: private buffers
        # are bounded by the thread count, never the chunk count.
        assert pool.narenas <= backend.nthreads
        pool.reduce_into(out)


def _owner_scatter(
    out: np.ndarray,
    rows: np.ndarray,
    cols,
    values,
    mats,
    dtype,
    backend: Backend,
    align: int = 1,
) -> None:
    """Owner-computes scatter: bucket entries by output-row owner, then
    each range gathers and reduces its own disjoint slice of ``out``."""
    part = owner_partition(rows, out.shape[0], backend.nthreads, align=align)
    tracer = current_tracer()

    def body(lo: int, hi: int) -> None:
        sel = part.order[lo:hi]
        if tracer.enabled:
            tracer.annotate(entries=len(sel))
        contrib = _row_contributions(cols, values, mats, dtype, sel=sel)
        atomic_add_rows(out, rows[sel], contrib)

    with backend.check_output(out, Access.OWNER):
        backend.map_ranges(part.entry_ranges(), body)


@declares_output(by_method={
    "atomic": Access.WORKSPACE,  # threaded: per-thread arenas, reduced once
    "sort": Access.DISJOINT,     # segmented reduce writes each row once
    "owner": Access.OWNER,
})
def coo_mttkrp(
    x: COOTensor,
    mats: Sequence[np.ndarray],
    mode: int,
    backend: "Backend | str | None" = None,
    method: str = "atomic",
    schedule: "Schedule | str" = Schedule.STATIC,
    privatize: str = "arena",
    tier: "str | None" = None,
) -> np.ndarray:
    """COO-Mttkrp parallelized by non-zeros (ParTI's algorithm).

    Parameters
    ----------
    mats:
        One ``(I_m, R)`` matrix per mode; the entry at ``mode`` is ignored
        (may be ``None``).
    method:
        ``"atomic"`` — scatter-add per chunk into per-thread arenas (the
        paper's algorithm); ``"sort"`` — sort-by-output-row then segmented
        reduce; ``"owner"`` — owner-computes row partitioning, race-free
        with no privatization and bit-identical to the sequential kernel.
    privatize:
        Arena strategy for the threaded ``atomic`` method: ``"arena"``
        (per-thread workspace pool, the default) or ``"chunk"`` (the seed's
        per-chunk buffers, kept as the harness ablation baseline).
    tier:
        Execution tier: ``"numpy"`` (the chunked loops above),
        ``"compiled"`` (descriptor-lowered JIT/fused execution, see
        :mod:`repro.compiled`), or ``"auto"``; ``None`` takes the
        environment default (:func:`repro.compiled.default_tier`).

    Returns the updated dense matrix ``(I_mode, R)``.
    """
    mode = check_mode(mode, x.nmodes)
    mats = _check_matrices(x.shape, mats, mode)
    _check_method(method, privatize)
    backend = get_backend(backend)
    r = next(u.shape[1] for u in mats if u is not None)
    dtype = np.result_type(x.values, *[u for u in mats if u is not None])
    out = np.zeros((x.shape[mode], r), dtype=dtype)
    if x.nnz == 0:
        return out
    exec_tier = resolve_tier(
        tier, backend=backend, kernel="mttkrp", fmt="coo", method=method,
        nnz=x.nnz, r=r,
    )
    tracer = current_tracer()
    if tracer.enabled:
        tracer.count("kernel.nnz_processed", float(x.nnz))
        tracer.count("kernel.flops", 3.0 * x.nnz * r)
        if method == "atomic":
            # The model charges the paper's algorithm: one scatter-add per
            # (entry, rank column), whatever privatization executes it.
            tracer.count("kernel.atomics_issued", float(x.nnz) * r)
    with tracer.span(
        "mttkrp", cat=CAT_KERNEL, fmt="coo", mode=mode, method=method,
        backend=backend.name, nnz=x.nnz, rank=r, tier=exec_tier,
    ):
        cols = [
            x.index_column(m) if mats[m] is not None else None
            for m in range(x.nmodes)
        ]
        rows = x.index_column(mode)

        if exec_tier == "compiled":
            return run_mttkrp(
                x, rows, cols, x.values, mats, out,
                fmt="coo", method=method, backend=backend,
                privatize=privatize, tag=mode,
            )

        if method == "sort":
            contrib = _row_contributions(cols, x.values, mats, dtype)
            sorted_reduce_rows(out, rows, contrib)
            return out
        if method == "owner":
            _owner_scatter(out, rows, cols, x.values, mats, dtype, backend)
            return out

        def make_contrib(lo: int, hi: int) -> np.ndarray:
            return _row_contributions(cols, x.values, mats, dtype, lo, hi)

        _scatter_add_parallel(
            out, rows, make_contrib, x.nnz, backend, schedule, None, privatize,
            entry_range=lambda lo, hi: (lo, hi),
        )
        return out


@declares_output(by_method={
    "atomic": Access.WORKSPACE,
    "sort": Access.DISJOINT,
    "owner": Access.OWNER,
})
def hicoo_mttkrp(
    x: HiCOOTensor,
    mats: Sequence[np.ndarray],
    mode: int,
    backend: "Backend | str | None" = None,
    method: str = "atomic",
    schedule: "Schedule | str" = Schedule.DYNAMIC,
    blocks_per_chunk: int = 32,
    privatize: str = "arena",
    tier: "str | None" = None,
) -> np.ndarray:
    """HiCOO-Mttkrp (paper Algorithm 2) parallelized by tensor *blocks*.

    For each block ``b``, the factor matrices are sliced at the block
    offsets (``Ab = A + bi·B·R`` etc.) and the block's entries update the
    sliced output with 8-bit element indices — matrix rows are reused
    across the block, which is where HiCOO-Mttkrp's smaller memory traffic
    (Table 1) comes from.  Blocks may collide on output rows, so the
    ``atomic`` method privatizes into per-thread arenas exactly like the
    COO path; ``method="owner"`` instead buckets entries by output-row
    ranges *aligned to block boundaries* (a block is never split between
    owners), making the update conflict-free with no privatization.
    """
    mode = check_mode(mode, x.nmodes)
    mats = _check_matrices(x.shape, mats, mode)
    _check_method(method, privatize)
    backend = get_backend(backend)
    r = next(u.shape[1] for u in mats if u is not None)
    dtype = np.result_type(x.values, *[u for u in mats if u is not None])
    out = np.zeros((x.shape[mode], r), dtype=dtype)
    if x.nnz == 0:
        return out
    exec_tier = resolve_tier(
        tier, backend=backend, kernel="mttkrp", fmt="hicoo", method=method,
        nnz=x.nnz, r=r,
    )
    tracer = current_tracer()
    if tracer.enabled:
        tracer.count("kernel.nnz_processed", float(x.nnz))
        tracer.count("kernel.flops", 3.0 * x.nnz * r)
        if method == "atomic":
            tracer.count("kernel.atomics_issued", float(x.nnz) * r)
    with tracer.span(
        "mttkrp", cat=CAT_KERNEL, fmt="hicoo", mode=mode, method=method,
        backend=backend.name, nnz=x.nnz, rank=r, nblocks=x.nblocks,
        tier=exec_tier,
    ):
        # Cached global coordinates: block offset + element offset, per mode.
        cols = [
            x.global_row(m) if mats[m] is not None else None
            for m in range(x.nmodes)
        ]
        rows = x.global_row(mode)

        if exec_tier == "compiled":
            return run_mttkrp(
                x, rows, cols, x.values, mats, out,
                fmt="hicoo", method=method, backend=backend,
                privatize=privatize, align=x.block_size, tag=mode,
            )

        if method == "sort":
            contrib = _row_contributions(cols, x.values, mats, dtype)
            sorted_reduce_rows(out, rows, contrib)
            return out
        if method == "owner":
            _owner_scatter(
                out, rows, cols, x.values, mats, dtype, backend,
                align=x.block_size,
            )
            return out

        def make_contrib(lo: int, hi: int) -> np.ndarray:
            return _row_contributions(cols, x.values, mats, dtype, lo, hi)

        _scatter_add_parallel(
            out, rows, make_contrib, x.nblocks, backend, schedule,
            blocks_per_chunk, privatize,
            entry_range=lambda blo, bhi: (int(x.bptr[blo]), int(x.bptr[bhi])),
        )
        return out
