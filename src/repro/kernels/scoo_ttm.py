"""Ttm on semi-sparse (sCOO) inputs — the Tucker-chain step.

After one Ttm, the tensor is semi-sparse (one dense mode); the next Ttm of
a TTM-chain contracts a *sparse* mode of that sCOO tensor.  Expanding back
to COO multiplies the non-zero count by the dense block size; this kernel
instead works on the sCOO representation directly: fibers are formed over
the sparse coordinates only, and each entry contributes the outer product
of its dense value block with its matrix row — so the output's dense block
gains one axis (the new R-sized mode) and the sparse structure shrinks by
one mode, exactly the sparse-dense property applied again.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FormatError, ShapeError
from repro.sptensor.coo import COOTensor
from repro.sptensor.scoo import SemiCOOTensor
from repro.util.validation import check_mode


def scoo_ttm(
    x: SemiCOOTensor,
    u: np.ndarray,
    mode: int,
) -> SemiCOOTensor:
    """Ttm of a semi-sparse tensor along one of its *sparse* modes.

    ``u`` is ``(I_mode, R)``; the result keeps the remaining sparse modes,
    its dense modes are the input's plus ``mode`` (with size R), and the
    dense value blocks gain the corresponding axis.
    """
    mode = check_mode(mode, x.nmodes)
    if mode in x.dense_modes:
        raise FormatError(
            f"mode {mode} is already dense; contract a sparse mode "
            f"(sparse modes: {x.sparse_modes})"
        )
    u = np.asarray(u)
    if u.ndim != 2 or u.shape[0] != x.shape[mode]:
        raise ShapeError(
            f"matrix must be ({x.shape[mode]}, R), got {u.shape}"
        )
    if len(x.sparse_modes) < 2:
        raise FormatError(
            "contracting the last sparse mode would densify the tensor; "
            "use to_dense() or ttm_chain's final step instead"
        )
    r = u.shape[1]
    sp_col = x.sparse_modes.index(mode)
    keep_cols = [j for j in range(len(x.sparse_modes)) if j != sp_col]
    keep_modes = [x.sparse_modes[j] for j in keep_cols]

    # Sort entries so rows sharing the kept sparse coordinates are
    # contiguous, with the contracted mode varying fastest.
    inds = x.indices.astype(np.int64)
    key = np.zeros(x.nnz_sparse, dtype=np.int64)
    for j in keep_cols:
        key = key * np.int64(x.shape[x.sparse_modes[j]]) + inds[:, j]
    key = key * np.int64(x.shape[mode]) + inds[:, sp_col]
    order = np.argsort(key, kind="stable")
    inds = inds[order]
    values = x.values[order]
    if x.nnz_sparse == 0:
        starts = np.zeros(0, dtype=np.int64)
        fptr = np.zeros(1, dtype=np.int64)
    else:
        rest = key[order] // np.int64(x.shape[mode])
        change = np.flatnonzero(np.diff(rest)) + 1
        starts = np.concatenate(([0], change))
        fptr = np.concatenate((starts, [x.nnz_sparse])).astype(np.int64)

    dtype = np.result_type(x.values, u)
    # contrib: dense block (M, *D) ⊗ matrix row (M, R) -> (M, *D, R)
    rows = u[inds[:, sp_col], :].astype(dtype)
    contrib = values.astype(dtype)[..., None] * rows.reshape(
        (x.nnz_sparse,) + (1,) * (values.ndim - 1) + (r,)
    )
    nf = len(starts)
    out_vals = np.zeros((nf,) + contrib.shape[1:], dtype=dtype)
    if x.nnz_sparse:
        out_vals[:] = np.add.reduceat(contrib, starts, axis=0)

    out_shape = tuple(
        r if m == mode else s for m, s in enumerate(x.shape)
    )
    out_dense_modes = tuple(sorted(x.dense_modes + (mode,)))
    out_inds = inds[starts][:, keep_cols] if nf else np.empty((0, len(keep_cols)), dtype=np.int64)
    # The value block axes must follow increasing dense-mode order; the
    # new axis currently sits last — move it to its sorted position.
    new_pos = out_dense_modes.index(mode)
    out_vals = np.moveaxis(out_vals, -1, 1 + new_pos)
    return SemiCOOTensor(
        out_shape, out_dense_modes, out_inds, out_vals, check=False
    )


def scoo_ttm_chain(
    tensor: COOTensor,
    mats,
    modes,
) -> SemiCOOTensor:
    """TTM-chain staying in semi-sparse form throughout.

    The first Ttm uses the COO kernel; every subsequent contraction runs
    :func:`scoo_ttm` on the semi-sparse intermediate — no expansion back
    to COO, so the sparse coordinate count only shrinks along the chain.
    Requires at least one mode to remain uncontracted.
    """
    from repro.kernels.ttm import coo_ttm

    modes = [check_mode(m, tensor.nmodes) for m in modes]
    if len(set(modes)) != len(modes):
        raise ShapeError(f"duplicate modes in chain: {modes}")
    if len(mats) != len(modes):
        raise ShapeError("one matrix per contracted mode")
    if len(modes) >= tensor.nmodes:
        raise ShapeError(
            "semi-sparse chain must leave at least one sparse mode; "
            "contract the final mode via to_dense()"
        )
    semi = coo_ttm(tensor, np.asarray(mats[0]), modes[0])
    for u, mode in zip(mats[1:], modes[1:]):
        semi = scoo_ttm(semi, np.asarray(u), mode)
    return semi
