"""Tensor-times-vector (Ttv) — paper Sec. 2.3, Algorithm 1.

``Y = X ×_n v`` contracts mode ``n`` of a sparse tensor with a dense
vector, producing an order-(N-1) sparse tensor.  By the *sparse-dense
property* (Li et al., IA^3'16) the contracted mode disappears and every
other mode keeps the input's sparsity, so the output — one non-zero per
mode-``n`` fiber — can be pre-allocated before the timed loop.  That is
what enables race-free fiber parallelism (paper Algorithm 1): the
pre-processing stage records the ``MF`` fiber start offsets ``fptr``; the
parallel loop then reduces each fiber independently.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.types import Schedule
from repro.compiled import resolve_tier, run_fiber_reduce
from repro.obs.tracer import CAT_KERNEL, current_tracer
from repro.kernels.contract import Access, declares_output
from repro.parallel.backend import Backend, get_backend
from repro.parallel.partition import balanced_partition
from repro.sptensor.coo import COOTensor
from repro.sptensor.ghicoo import GHiCOOTensor
from repro.sptensor.hicoo import HiCOOTensor
from repro.util.validation import check_mode


def _check_vector(x_shape, v: np.ndarray, mode: int) -> np.ndarray:
    v = np.asarray(v)
    if v.ndim != 1 or v.shape[0] != x_shape[mode]:
        raise ShapeError(
            f"vector must have shape ({x_shape[mode]},) for mode {mode}, "
            f"got {v.shape}"
        )
    return v


def fiber_reduce(
    contrib: np.ndarray,
    fptr: np.ndarray,
    out: np.ndarray,
    backend: Backend,
    schedule: "Schedule | str" = Schedule.STATIC,
    partition: str = "uniform",
    kernel: str = "fiber_reduce",
    fmt: str = "coo",
    tier: "str | None" = None,
) -> None:
    """Reduce contiguous fiber segments of ``contrib`` into ``out``.

    ``out[f] = sum(contrib[fptr[f]:fptr[f+1]])`` — the timed loop of
    Algorithm 1, parallelized over fibers.  Different fibers touch disjoint
    output entries, so the loop is race-free by construction; the only
    hazard is load imbalance from unequal fiber lengths.  With
    ``partition="uniform"`` the backend schedule splits the loop by fiber
    *count*; ``partition="balanced"`` instead pre-cuts one contiguous fiber
    range per thread with near-equal *non-zero* totals (the owner-computes
    analogue for fiber-parallel kernels — the mitigation for the skew the
    paper's Observation 4 calls out).

    ``kernel``/``fmt`` label the trace span the loop records when a
    tracer is installed (Ttv and Ttm share this timed loop).
    """
    nf = len(fptr) - 1
    nnz = len(contrib)
    ncols = int(np.prod(contrib.shape[1:], dtype=np.int64)) if contrib.ndim > 1 else 1
    exec_tier = resolve_tier(
        tier, backend=backend, kernel=kernel, fmt=fmt, method="fiber",
        nnz=nnz, r=ncols,
    )
    tracer = current_tracer()

    def body(flo: int, fhi: int) -> None:
        if fhi <= flo:
            return
        if tracer.enabled:
            # Enrich the backend's chunk span with the fiber range's
            # entry count — the quantity load imbalance is made of.
            tracer.annotate(entries=int(fptr[fhi] - fptr[flo]), fibers=fhi - flo)
        seg = contrib[fptr[flo]:fptr[fhi]]
        starts = (fptr[flo:fhi] - fptr[flo]).astype(np.int64)
        out[flo:fhi] = np.add.reduceat(seg, starts, axis=0)

    if tracer.enabled:
        tracer.count("kernel.nnz_processed", float(nnz))
        # One multiply (gathered operand scale) and one add per entry and
        # rank column — Ttv has one column, Ttm has R.
        tracer.count("kernel.flops", 2.0 * nnz * ncols)

    # Different fibers write disjoint output entries — the contract the
    # race-check backend verifies on every replayed decomposition.
    with tracer.span(
        kernel, cat=CAT_KERNEL, fmt=fmt, partition=partition,
        backend=backend.name, nfibers=nf, nnz=nnz, tier=exec_tier,
    ):
        with backend.check_output(out, Access.DISJOINT):
            if exec_tier == "compiled":
                run_fiber_reduce(
                    contrib, fptr, out, kernel=kernel, fmt=fmt,
                    backend=backend,
                )
                return
            if partition == "balanced":
                ranges = balanced_partition(np.diff(fptr), backend.nthreads)
                backend.map_ranges(ranges, body)
            elif partition == "uniform":
                backend.parallel_for(nf, body, schedule=schedule)
            else:
                raise ValueError(
                    f"unknown fiber partition {partition!r}; "
                    "expected 'uniform' or 'balanced'"
                )


@declares_output(Access.DISJOINT)
def coo_ttv(
    x: COOTensor,
    v: np.ndarray,
    mode: int,
    backend: "Backend | str | None" = None,
    schedule: "Schedule | str" = Schedule.STATIC,
    partition: str = "uniform",
    tier: "str | None" = None,
) -> COOTensor:
    """COO-Ttv (paper Algorithm 1): output in COO format, order N-1."""
    mode = check_mode(mode, x.nmodes)
    if x.nmodes < 2:
        raise ShapeError("Ttv needs an order >= 2 tensor (output loses a mode)")
    v = _check_vector(x.shape, v, mode)
    backend = get_backend(backend)
    other = [m for m in range(x.nmodes) if m != mode]
    out_shape = tuple(x.shape[m] for m in other)

    # Pre-processing: fiber pointers + output allocation (untimed).
    fi = x.fiber_index(mode)
    perm = fi.order
    idx_n = x.index_column(mode)[perm]
    vals = x.values[perm]
    dtype = np.result_type(x.values, v)
    out_vals = np.zeros(fi.nfibers, dtype=dtype)
    heads = perm[fi.fptr[:-1]]
    out_inds = x.indices[heads][:, other]

    # Timed loop: scale by the gathered vector entries, reduce per fiber.
    contrib = vals.astype(dtype, copy=False) * v[idx_n]
    fiber_reduce(
        contrib, fi.fptr, out_vals, backend, schedule, partition,
        kernel="ttv", fmt="coo", tier=tier,
    )

    out = COOTensor(out_shape, out_inds, out_vals, copy=False, check=False)
    return out


@declares_output(Access.DISJOINT)
def ghicoo_ttv(
    x: GHiCOOTensor,
    v: np.ndarray,
    mode: int,
    backend: "Backend | str | None" = None,
    schedule: "Schedule | str" = Schedule.STATIC,
    partition: str = "uniform",
    block_size: int | None = None,
    tier: "str | None" = None,
) -> HiCOOTensor:
    """Ttv on a gHiCOO tensor whose product mode is left *uncompressed*.

    Because blocks are formed over exactly the non-product modes, a fiber
    never spans blocks and the blocked structure passes straight through to
    the output (paper Sec. 3.4.1: "Ttv and Ttm can bypass the blocking
    nature of HiCOO and be performed without data race between blocks").
    The output is a HiCOO tensor of order N-1 sharing the input's block
    coordinates.
    """
    mode = check_mode(mode, x.nmodes)
    if mode in x.compressed_modes:
        raise ShapeError(
            f"gHiCOO-Ttv requires the product mode {mode} to be uncompressed; "
            f"compressed modes are {x.compressed_modes}"
        )
    if x.uncompressed_modes != (mode,):
        raise ShapeError(
            "gHiCOO-Ttv expects exactly the product mode uncompressed, got "
            f"uncompressed modes {x.uncompressed_modes}"
        )
    v = _check_vector(x.shape, v, mode)
    backend = get_backend(backend)
    bsz = block_size or x.block_size

    m = x.nnz
    out_shape = tuple(x.shape[mm] for mm in x.compressed_modes)
    dtype = np.result_type(x.values, v)
    if m == 0:
        return HiCOOTensor.from_coo(COOTensor.empty(out_shape, dtype), bsz)

    # Pre-processing: fibers are runs of equal (block, element-coords);
    # entries are already block- then element-ordered by construction.
    bid = np.repeat(np.arange(x.nblocks, dtype=np.int64), np.diff(x.bptr))
    ekey = np.zeros(m, dtype=np.int64)
    for d in range(x.einds.shape[1]):
        ekey = ekey * 256 + x.einds[:, d].astype(np.int64)
    change = np.zeros(m, dtype=bool)
    change[0] = True
    change[1:] = (np.diff(bid) != 0) | (np.diff(ekey) != 0)
    starts = np.flatnonzero(change)
    fptr = np.concatenate((starts, [m])).astype(np.int64)
    nf = len(starts)
    out_vals = np.zeros(nf, dtype=dtype)

    # Timed loop: identical value computation to COO-Ttv.
    idx_n = x.uncompressed_column(mode).astype(np.int64)
    contrib = x.values.astype(dtype, copy=False) * v[idx_n]
    fiber_reduce(
        contrib, fptr, out_vals, backend, schedule, partition,
        kernel="ttv", fmt="ghicoo", tier=tier,
    )

    # Assemble the HiCOO output reusing the input's block structure.
    out_binds = x.binds
    fiber_bid = bid[starts]
    out_bptr = np.searchsorted(fiber_bid, np.arange(x.nblocks + 1)).astype(np.int64)
    out_einds = x.einds[starts]
    out = HiCOOTensor(
        out_shape, x.block_size, out_bptr, out_binds, out_einds, out_vals,
        check=False,
    )
    return _drop_empty_blocks(out)


@declares_output(Access.DISJOINT)
def hicoo_ttv(
    x: HiCOOTensor,
    v: np.ndarray,
    mode: int,
    backend: "Backend | str | None" = None,
    schedule: "Schedule | str" = Schedule.STATIC,
    partition: str = "uniform",
    tier: "str | None" = None,
) -> HiCOOTensor:
    """HiCOO-Ttv: re-represent as gHiCOO with the product mode uncompressed
    (pre-processing, as in the paper), then run the shared value loop."""
    mode = check_mode(mode, x.nmodes)
    comp = tuple(m for m in range(x.nmodes) if m != mode)
    g = GHiCOOTensor.from_coo(x.to_coo(), x.block_size, comp)
    return ghicoo_ttv(g, v, mode, backend, schedule, partition, tier=tier)


def _drop_empty_blocks(t: HiCOOTensor) -> HiCOOTensor:
    """Remove blocks whose fiber runs reduced to zero entries."""
    nnzb = np.diff(t.bptr)
    keep = nnzb > 0
    if keep.all():
        return t
    new_bptr = np.concatenate(([0], np.cumsum(nnzb[keep]))).astype(np.int64)
    return HiCOOTensor(
        t.shape, t.block_size, new_bptr, t.binds[keep], t.einds, t.values,
        check=False,
    )
