"""Kernels on the CSF extension format (SPLATT-style tree walks).

The paper names CSF as the next format the suite will adopt; these
reference kernels show why: the fiber tree factors the index structure so
Ttv contracts the leaf level with one segmented reduction per tree level,
and Mttkrp (Smith et al., IPDPS'15) accumulates factor products bottom-up
with each tree node's partial product computed exactly once.

CSF is mode-*specific*: the algorithms below want the product mode at a
particular tree position (leaf for Ttv, root for Mttkrp).  When the tensor
was built with a different mode order, the kernels transparently rebuild
the tree (the cost SPLATT avoids by keeping one tree per mode).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.sptensor.coo import COOTensor
from repro.sptensor.csf import CSFTensor
from repro.util.validation import check_mode


def _with_mode_last(x: CSFTensor, mode: int) -> CSFTensor:
    if x.mode_order[-1] == mode:
        return x
    rest = [m for m in x.mode_order if m != mode]
    return CSFTensor.from_coo(x.to_coo(), tuple(rest) + (mode,))


def _with_mode_root(x: CSFTensor, mode: int) -> CSFTensor:
    if x.mode_order[0] == mode:
        return x
    rest = [m for m in x.mode_order if m != mode]
    return CSFTensor.from_coo(x.to_coo(), (mode,) + tuple(rest))


def csf_ttv(x: CSFTensor, v: np.ndarray, mode: int) -> CSFTensor:
    """Ttv on CSF: contract the leaf level of the fiber tree.

    With ``mode`` at the leaves, each level-(N-2) node's children form one
    mode-``mode`` fiber; a single segmented reduction of ``val * v[leaf]``
    turns those nodes into the new leaves.  The upper tree levels carry
    over unchanged — no re-sorting, no new index arrays.
    """
    mode = check_mode(mode, x.nmodes)
    if x.nmodes < 2:
        raise ShapeError("Ttv needs an order >= 2 tensor")
    v = np.asarray(v)
    if v.ndim != 1 or v.shape[0] != x.shape[mode]:
        raise ShapeError(
            f"vector must have shape ({x.shape[mode]},), got {v.shape}"
        )
    x = _with_mode_last(x, mode)
    n = x.nmodes
    out_order_modes = x.mode_order[:-1]
    # Map the surviving modes to the output's mode numbering.
    remap = {m: i for i, m in enumerate(sorted(out_order_modes))}
    new_order = tuple(remap[m] for m in out_order_modes)
    out_shape_by_mode = tuple(
        x.shape[m] for m in sorted(out_order_modes)
    )
    if x.nnz == 0:
        return CSFTensor.from_coo(
            COOTensor.empty(out_shape_by_mode, dtype=x.values.dtype), new_order
        )
    contrib = x.values.astype(
        np.result_type(x.values, v), copy=False
    ) * v[x.fids[-1].astype(np.int64)]
    parent_ptr = x.fptr[-1]
    new_values = np.add.reduceat(contrib, parent_ptr[:-1])
    if n == 2:
        # the root level becomes the (single-level) output
        coords = x.fids[0].astype(np.int64).reshape(-1, 1)
        coo = COOTensor(out_shape_by_mode, coords, new_values, check=False)
        return CSFTensor.from_coo(coo, new_order)
    return CSFTensor(
        out_shape_by_mode,
        new_order,
        [p.copy() for p in x.fptr[:-1]],
        [f.copy() for f in x.fids[:-1]],
        new_values,
        check=True,
    )


def csf_mttkrp(
    x: CSFTensor, mats: Sequence[np.ndarray], mode: int
) -> np.ndarray:
    """SPLATT's root-mode Mttkrp on the fiber tree.

    With ``mode`` at the root, partial Khatri-Rao products propagate
    bottom-up: the leaf level contributes ``val * U(leaf)[i, :]``, each
    internal level reduces its children and scales by its own factor rows,
    and the root level scatters into the output.  Every tree node's
    partial product is computed once — the work saving over COO grows with
    the fiber sharing in the tensor.
    """
    mode = check_mode(mode, x.nmodes)
    n = x.nmodes
    if len(mats) != n:
        raise ShapeError(f"Mttkrp needs {n} matrices (product slot may be None)")
    x = _with_mode_root(x, mode)
    rank = None
    for m in range(n):
        if m == mode:
            continue
        u = np.asarray(mats[m])
        if u.ndim != 2 or u.shape[0] != x.shape[m]:
            raise ShapeError(f"matrix {m} must be ({x.shape[m]}, R), got {u.shape}")
        rank = u.shape[1] if rank is None else rank
        if u.shape[1] != rank:
            raise ShapeError("all matrices must share R")
    dtype = np.result_type(
        x.values, *[np.asarray(mats[m]) for m in range(n) if m != mode]
    )
    out = np.zeros((x.shape[mode], rank), dtype=dtype)
    if x.nnz == 0:
        return out
    # Bottom-up sweep: leaves -> level 1.
    leaf_mode = x.mode_order[-1]
    t = x.values.astype(dtype, copy=False)[:, None] * np.asarray(mats[leaf_mode])[
        x.fids[-1].astype(np.int64), :
    ]
    for lvl in range(n - 2, 0, -1):
        t = np.add.reduceat(t, x.fptr[lvl][:-1], axis=0)
        lvl_mode = x.mode_order[lvl]
        t = t * np.asarray(mats[lvl_mode])[x.fids[lvl].astype(np.int64), :]
    # Root: reduce children and scatter (root fids are unique).
    t = np.add.reduceat(t, x.fptr[0][:-1], axis=0)
    out[x.fids[0].astype(np.int64), :] = t
    return out
