"""Tensor element-wise operations (Tew) — paper Sec. 2.1 / 3.2.

``Z = X op Y`` applied per matching coordinate pair.  When both operands
share a non-zero pattern the kernel is a single vectorized loop over the
value arrays (the case the paper analyzes: OI = 1/12).  The general case
iterates both tensors and matches elements; we implement it as a sorted
merge on linearized coordinates, with the semantics:

* ``add`` / ``sub`` — union of patterns, missing entries treated as zero;
* ``mul``           — intersection of patterns (implicit zeros annihilate);
* ``div``           — intersection of patterns (an explicit entry divided
  by an implicit zero would densify the output with infinities; the suite,
  like the paper, only analyzes the matching-pattern case for Tew-div).

Pre-processing allocates the output tensor and its indices (the paper
counts this stage separately from the value computation it times).
"""

from __future__ import annotations

import numpy as np

from repro.errors import PatternMismatchError
from repro.types import OpKind
from repro.compiled import resolve_tier, run_elementwise
from repro.kernels.contract import Access, declares_output
from repro.parallel.backend import Backend, get_backend
from repro.sptensor.coo import COOTensor
from repro.sptensor.hicoo import HiCOOTensor
from repro.util.validation import check_same_shape

_UFUNC = {
    OpKind.ADD: np.add,
    OpKind.SUB: np.subtract,
    OpKind.MUL: np.multiply,
    OpKind.DIV: np.divide,
}


def elementwise_values(
    xv: np.ndarray,
    yv: np.ndarray,
    op: OpKind,
    out: np.ndarray,
    backend: Backend,
    fmt: str = "coo",
    tier: "str | None" = None,
) -> None:
    """The timed value-computation loop, chunked over the backend.

    Shared verbatim by COO and HiCOO (paper: "the value computation of
    HiCOO-Tew-OMP ... is the same with COO-Tew-OMP").
    """
    ufunc = _UFUNC[op]
    exec_tier = resolve_tier(
        tier, backend=backend, kernel="tew", fmt=fmt, method="elementwise",
        nnz=len(out), r=1,
    )

    def body(lo: int, hi: int) -> None:
        ufunc(xv[lo:hi], yv[lo:hi], out=out[lo:hi])

    # Chunks write disjoint slices of the value array by construction.
    with backend.check_output(out, Access.DISJOINT):
        if exec_tier == "compiled":
            run_elementwise(
                op, ufunc, xv, yv, out, kernel="tew", fmt=fmt,
                backend=backend, scalar=False,
            )
            return
        backend.parallel_for(len(out), body)


@declares_output(Access.DISJOINT)
def coo_tew(
    x: COOTensor,
    y: COOTensor,
    op: "OpKind | str" = OpKind.ADD,
    backend: "Backend | str | None" = None,
    assume_same_pattern: bool = False,
    tier: "str | None" = None,
) -> COOTensor:
    """COO-Tew: element-wise op between two COO tensors.

    With ``assume_same_pattern=True`` the kernel skips the merge and pairs
    entries positionally (both tensors must be sorted identically); this is
    the configuration the paper benchmarks.
    """
    check_same_shape(x, y)
    op = OpKind.coerce(op)
    backend = get_backend(backend)

    if assume_same_pattern:
        if x.nnz != y.nnz:
            raise PatternMismatchError(
                f"same-pattern Tew requires equal nnz: {x.nnz} vs {y.nnz}"
            )
        out_vals = np.empty_like(
            x.values, dtype=np.result_type(x.values, y.values)
        )
        elementwise_values(
            x.values, y.values, op, out_vals, backend, fmt="coo", tier=tier
        )
        out = COOTensor(x.shape, x.indices, out_vals, copy=True, check=False)
        out._sort_order = x.sort_order
        return out

    # Pre-processing: merge the patterns on linearized coordinates.
    lx, ly = x.linearize(), y.linearize()
    ox, oy = np.argsort(lx, kind="stable"), np.argsort(ly, kind="stable")
    lx, ly = lx[ox], ly[oy]
    xv, yv = x.values[ox], y.values[oy]
    dtype = np.result_type(x.values, y.values)

    if op in (OpKind.MUL, OpKind.DIV):
        common, ix, iy = np.intersect1d(lx, ly, return_indices=True)
        out_vals = np.empty(len(common), dtype=dtype)
        elementwise_values(
            xv[ix], yv[iy], op, out_vals, backend, fmt="coo", tier=tier
        )
        out_inds = x.indices[ox][ix]
        out = COOTensor(x.shape, out_inds, out_vals, copy=False, check=False)
        out._sort_order = tuple(range(x.nmodes))
        return out

    # Union for add/sub.
    union = np.union1d(lx, ly)
    xvals = np.zeros(len(union), dtype=dtype)
    yvals = np.zeros(len(union), dtype=dtype)
    xvals[np.searchsorted(union, lx)] = xv
    yvals[np.searchsorted(union, ly)] = yv
    out_vals = np.empty(len(union), dtype=dtype)
    elementwise_values(
        xvals, yvals, op, out_vals, backend, fmt="coo", tier=tier
    )
    out_inds = np.stack(np.unravel_index(union, x.shape), axis=1)
    out = COOTensor(x.shape, out_inds, out_vals, copy=False, check=False)
    out._sort_order = tuple(range(x.nmodes))
    return out


@declares_output(Access.DISJOINT)
def hicoo_tew(
    x: HiCOOTensor,
    y: HiCOOTensor,
    op: "OpKind | str" = OpKind.ADD,
    backend: "Backend | str | None" = None,
    assume_same_pattern: bool = False,
    tier: "str | None" = None,
) -> HiCOOTensor:
    """HiCOO-Tew: identical value loop; pre-processing builds the output in
    HiCOO rather than COO format (paper Sec. 3.4.1)."""
    check_same_shape(x, y)
    op = OpKind.coerce(op)
    backend = get_backend(backend)
    if assume_same_pattern or _same_hicoo_pattern(x, y):
        out_vals = np.empty_like(
            x.values, dtype=np.result_type(x.values, y.values)
        )
        if assume_same_pattern and x.nnz != y.nnz:
            raise PatternMismatchError(
                f"same-pattern Tew requires equal nnz: {x.nnz} vs {y.nnz}"
            )
        elementwise_values(
            x.values, y.values, op, out_vals, backend, fmt="hicoo", tier=tier
        )
        return HiCOOTensor(
            x.shape, x.block_size, x.bptr, x.binds, x.einds, out_vals,
            check=False,
        )
    merged = coo_tew(x.to_coo(), y.to_coo(), op, backend, tier=tier)
    return HiCOOTensor.from_coo(merged, x.block_size)


def _same_hicoo_pattern(x: HiCOOTensor, y: HiCOOTensor) -> bool:
    """Cheap structural equality check enabling the in-format fast path."""
    return (
        x.block_size == y.block_size
        and x.nnz == y.nnz
        and x.nblocks == y.nblocks
        and np.array_equal(x.bptr, y.bptr)
        and np.array_equal(x.binds, y.binds)
        and np.array_equal(x.einds, y.einds)
    )
