"""The five benchmark kernels with format-polymorphic dispatchers.

``tew / ts / ttv / ttm / mttkrp`` accept COO or HiCOO tensors and route to
the format-specific implementation; the ``coo_*`` / ``hicoo_*`` functions
remain available for explicit use (the benchmark harness calls them
directly so the format under test is never ambiguous).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import FormatError
from repro.types import OpKind
from repro.kernels.dense_ref import (
    dense_mttkrp,
    dense_tew,
    dense_ts,
    dense_ttm,
    dense_ttv,
)
from repro.kernels.flops import (
    TABLE1_ASYMPTOTIC_OI,
    KernelCost,
    kernel_cost,
    mttkrp_cost,
    tew_cost,
    ts_cost,
    ttm_cost,
    ttv_cost,
)
from repro.kernels.contract import (
    Access,
    OutputContract,
    declares_output,
    output_contract,
    registered_contracts,
    sparse_contract,
    sparse_inner,
    sparse_ttm,
    sparse_ttv,
)
from repro.kernels.csf import csf_mttkrp, csf_ttv
from repro.kernels.scoo_ttm import scoo_ttm, scoo_ttm_chain
from repro.kernels.mttkrp import coo_mttkrp, hicoo_mttkrp
from repro.kernels.tew import coo_tew, hicoo_tew
from repro.kernels.ts import coo_ts, hicoo_ts
from repro.kernels.ttm import coo_ttm, ghicoo_ttm, hicoo_ttm
from repro.kernels.ttv import coo_ttv, ghicoo_ttv, hicoo_ttv
from repro.sptensor.coo import COOTensor
from repro.sptensor.hicoo import HiCOOTensor


def tew(x, y, op: "OpKind | str" = OpKind.ADD, backend=None, **kw):
    """Element-wise ``x op y``; dispatches on the format of ``x``."""
    if isinstance(x, COOTensor):
        return coo_tew(x, y, op, backend, **kw)
    if isinstance(x, HiCOOTensor):
        return hicoo_tew(x, y, op, backend, **kw)
    raise FormatError(f"tew does not support {type(x).__name__}")


def ts(x, s: float, op: "OpKind | str" = OpKind.MUL, backend=None, **kw):
    """Tensor-scalar ``x op s``; dispatches on the format of ``x``."""
    if isinstance(x, COOTensor):
        return coo_ts(x, s, op, backend, **kw)
    if isinstance(x, HiCOOTensor):
        return hicoo_ts(x, s, op, backend, **kw)
    raise FormatError(f"ts does not support {type(x).__name__}")


def ttv(x, v: np.ndarray, mode: int, backend=None, **kw):
    """Tensor-times-vector in ``mode``; dispatches on the format of ``x``."""
    if isinstance(x, COOTensor):
        return coo_ttv(x, v, mode, backend, **kw)
    if isinstance(x, HiCOOTensor):
        return hicoo_ttv(x, v, mode, backend, **kw)
    raise FormatError(f"ttv does not support {type(x).__name__}")


def ttm(x, u: np.ndarray, mode: int, backend=None, **kw):
    """Tensor-times-matrix in ``mode``; dispatches on the format of ``x``."""
    if isinstance(x, COOTensor):
        return coo_ttm(x, u, mode, backend, **kw)
    if isinstance(x, HiCOOTensor):
        return hicoo_ttm(x, u, mode, backend, **kw)
    raise FormatError(f"ttm does not support {type(x).__name__}")


def mttkrp(x, mats: Sequence[np.ndarray], mode: int, backend=None, **kw):
    """Mode-``mode`` Mttkrp; dispatches on the format of ``x``."""
    if isinstance(x, COOTensor):
        return coo_mttkrp(x, mats, mode, backend, **kw)
    if isinstance(x, HiCOOTensor):
        return hicoo_mttkrp(x, mats, mode, backend, **kw)
    raise FormatError(f"mttkrp does not support {type(x).__name__}")


__all__ = [
    "tew",
    "ts",
    "ttv",
    "ttm",
    "mttkrp",
    "coo_tew",
    "hicoo_tew",
    "coo_ts",
    "hicoo_ts",
    "coo_ttv",
    "hicoo_ttv",
    "ghicoo_ttv",
    "coo_ttm",
    "hicoo_ttm",
    "ghicoo_ttm",
    "coo_mttkrp",
    "hicoo_mttkrp",
    "csf_ttv",
    "csf_mttkrp",
    "sparse_contract",
    "sparse_inner",
    "sparse_ttv",
    "sparse_ttm",
    "Access",
    "OutputContract",
    "declares_output",
    "output_contract",
    "registered_contracts",
    "scoo_ttm",
    "scoo_ttm_chain",
    "dense_tew",
    "dense_ts",
    "dense_ttv",
    "dense_ttm",
    "dense_mttkrp",
    "KernelCost",
    "kernel_cost",
    "tew_cost",
    "ts_cost",
    "ttv_cost",
    "ttm_cost",
    "mttkrp_cost",
    "TABLE1_ASYMPTOTIC_OI",
]
