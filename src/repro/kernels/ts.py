"""Tensor-scalar operations (Ts) — paper Sec. 2.2 / 3.2.

``Y = X op s`` applied to the *non-zero values* of ``X`` only (the sparse
convention: implicit zeros stay implicit, so Tsa is an operation on the
stored pattern, not a densifying shift).  The paper implements Tsa and Tsm
as representatives — they suffice to express all four ops — and notes Ts
has the suite's highest-traffic-efficiency loop: 1 flop per 8 bytes.

The output pattern equals the input pattern, so pre-processing is a plain
index copy and the timed loop is a single vectorized pass over values,
identical for COO and HiCOO.
"""

from __future__ import annotations

import numpy as np

from repro.types import OpKind
from repro.compiled import resolve_tier, run_elementwise
from repro.kernels.contract import Access, declares_output
from repro.parallel.backend import Backend, get_backend
from repro.sptensor.coo import COOTensor
from repro.sptensor.hicoo import HiCOOTensor

_SCALAR_UFUNC = {
    OpKind.ADD: np.add,
    OpKind.SUB: np.subtract,
    OpKind.MUL: np.multiply,
    OpKind.DIV: np.divide,
}


def scalar_values(
    xv: np.ndarray,
    s: float,
    op: OpKind,
    out: np.ndarray,
    backend: Backend,
    fmt: str = "coo",
    tier: "str | None" = None,
) -> None:
    """The timed value loop: ``out = xv op s`` in backend-sized chunks."""
    ufunc = _SCALAR_UFUNC[op]
    exec_tier = resolve_tier(
        tier, backend=backend, kernel="ts", fmt=fmt, method="elementwise",
        nnz=len(out), r=1,
    )

    def body(lo: int, hi: int) -> None:
        ufunc(xv[lo:hi], s, out=out[lo:hi])

    # Chunks write disjoint slices of the value array by construction.
    with backend.check_output(out, Access.DISJOINT):
        if exec_tier == "compiled":
            run_elementwise(
                op, ufunc, xv, s, out, kernel="ts", fmt=fmt,
                backend=backend, scalar=True,
            )
            return
        backend.parallel_for(len(out), body)


@declares_output(Access.DISJOINT)
def coo_ts(
    x: COOTensor,
    s: float,
    op: "OpKind | str" = OpKind.MUL,
    backend: "Backend | str | None" = None,
    tier: "str | None" = None,
) -> COOTensor:
    """COO-Ts: scalar op over the stored values."""
    op = OpKind.coerce(op)
    if op is OpKind.DIV and s == 0:
        raise ZeroDivisionError("tensor-scalar division by zero")
    backend = get_backend(backend)
    out_vals = np.empty_like(x.values)
    scalar_values(
        x.values, x.values.dtype.type(s), op, out_vals, backend,
        fmt="coo", tier=tier,
    )
    out = COOTensor(x.shape, x.indices, out_vals, copy=True, check=False)
    out._sort_order = x.sort_order
    return out


@declares_output(Access.DISJOINT)
def hicoo_ts(
    x: HiCOOTensor,
    s: float,
    op: "OpKind | str" = OpKind.MUL,
    backend: "Backend | str | None" = None,
    tier: "str | None" = None,
) -> HiCOOTensor:
    """HiCOO-Ts: identical value loop; output pre-allocated in HiCOO."""
    op = OpKind.coerce(op)
    if op is OpKind.DIV and s == 0:
        raise ZeroDivisionError("tensor-scalar division by zero")
    backend = get_backend(backend)
    out_vals = np.empty_like(x.values)
    scalar_values(
        x.values, x.values.dtype.type(s), op, out_vals, backend,
        fmt="hicoo", tier=tier,
    )
    return HiCOOTensor(
        x.shape,
        x.block_size,
        x.bptr.copy(),
        x.binds.copy(),
        x.einds.copy(),
        out_vals,
        check=False,
    )
