"""Tensor-times-matrix (Ttm) — paper Sec. 2.4 / 3.2.

``Y = X ×_n U`` with ``U ∈ R^{I_n × R}`` (the paper transposes Kolda &
Bader's convention so the R-sized mode is the matrix's second, which walks
rows contiguously under C row-major storage).  By the sparse-dense
property the output's mode ``n`` becomes *dense* with size R while every
other mode keeps the input's sparsity — hence the output is a semi-sparse
tensor, stored in sCOO (for COO-Ttm) or sHiCOO (for HiCOO-Ttm).

The algorithm is COO-Ttv with a vector of R columns: pre-process fibers,
then reduce ``value ⊗ U[k, :]`` per fiber.  Parallelism is over fibers and
race-free; imbalance comes from fiber lengths, as in Ttv.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.types import Schedule
from repro.parallel.backend import Backend, get_backend
from repro.sptensor.coo import COOTensor
from repro.sptensor.ghicoo import GHiCOOTensor
from repro.sptensor.hicoo import HiCOOTensor
from repro.sptensor.scoo import SemiCOOTensor
from repro.sptensor.shicoo import SemiHiCOOTensor
from repro.kernels.contract import Access, declares_output
from repro.kernels.ttv import fiber_reduce
from repro.util.validation import check_mode


def _check_matrix(x_shape, u: np.ndarray, mode: int) -> np.ndarray:
    u = np.asarray(u)
    if u.ndim != 2 or u.shape[0] != x_shape[mode]:
        raise ShapeError(
            f"matrix must have shape ({x_shape[mode]}, R) for mode {mode}, "
            f"got {u.shape}"
        )
    return u


@declares_output(Access.DISJOINT)
def coo_ttm(
    x: COOTensor,
    u: np.ndarray,
    mode: int,
    backend: "Backend | str | None" = None,
    schedule: "Schedule | str" = Schedule.STATIC,
    partition: str = "uniform",
    tier: "str | None" = None,
) -> SemiCOOTensor:
    """COO-Ttm: output in sCOO format with dense mode ``mode`` of size R."""
    mode = check_mode(mode, x.nmodes)
    u = _check_matrix(x.shape, u, mode)
    backend = get_backend(backend)
    r = u.shape[1]
    other = [m for m in range(x.nmodes) if m != mode]
    out_shape = tuple(
        r if m == mode else x.shape[m] for m in range(x.nmodes)
    )
    dtype = np.result_type(x.values, u)

    # Pre-processing (sparse-dense property): fibers + output allocation.
    fi = x.fiber_index(mode)
    perm = fi.order
    idx_n = x.index_column(mode)[perm]
    vals = x.values[perm].astype(dtype, copy=False)
    heads = perm[fi.fptr[:-1]]
    out_inds = x.indices[heads][:, other]
    out_vals = np.zeros((fi.nfibers, r), dtype=dtype)

    # Timed loop: per-entry rank-R row scale, then per-fiber reduction.
    contrib = vals[:, None] * u[idx_n, :]
    fiber_reduce(
        contrib, fi.fptr, out_vals, backend, schedule, partition,
        kernel="ttm", fmt="coo", tier=tier,
    )

    return SemiCOOTensor(out_shape, (mode,), out_inds, out_vals, check=False)


@declares_output(Access.DISJOINT)
def ghicoo_ttm(
    x: GHiCOOTensor,
    u: np.ndarray,
    mode: int,
    backend: "Backend | str | None" = None,
    schedule: "Schedule | str" = Schedule.STATIC,
    partition: str = "uniform",
    tier: "str | None" = None,
) -> SemiHiCOOTensor:
    """Ttm on a gHiCOO tensor with the product mode uncompressed.

    Mirrors :func:`repro.kernels.ttv.ghicoo_ttv`: fibers are runs of equal
    block/element coordinates, the value loop is shared with COO-Ttm, and
    the output reuses the input's block structure in sHiCOO format.
    """
    mode = check_mode(mode, x.nmodes)
    if x.uncompressed_modes != (mode,):
        raise ShapeError(
            "gHiCOO-Ttm expects exactly the product mode uncompressed, got "
            f"uncompressed modes {x.uncompressed_modes}"
        )
    u = _check_matrix(x.shape, u, mode)
    backend = get_backend(backend)
    r = u.shape[1]
    out_shape = tuple(
        r if m == mode else x.shape[m] for m in range(x.nmodes)
    )
    dtype = np.result_type(x.values, u)
    m = x.nnz
    if m == 0:
        ns = len(x.compressed_modes)
        return SemiHiCOOTensor(
            out_shape,
            x.block_size,
            (mode,),
            np.zeros(1, dtype=np.int64),
            np.empty((0, ns), dtype=x.binds.dtype),
            np.empty((0, ns), dtype=x.einds.dtype),
            np.empty((0, r), dtype=dtype),
            check=False,
        )

    bid = np.repeat(np.arange(x.nblocks, dtype=np.int64), np.diff(x.bptr))
    ekey = np.zeros(m, dtype=np.int64)
    for d in range(x.einds.shape[1]):
        ekey = ekey * 256 + x.einds[:, d].astype(np.int64)
    change = np.zeros(m, dtype=bool)
    change[0] = True
    change[1:] = (np.diff(bid) != 0) | (np.diff(ekey) != 0)
    starts = np.flatnonzero(change)
    fptr = np.concatenate((starts, [m])).astype(np.int64)
    nf = len(starts)
    out_vals = np.zeros((nf, r), dtype=dtype)

    idx_n = x.uncompressed_column(mode).astype(np.int64)
    contrib = x.values.astype(dtype, copy=False)[:, None] * u[idx_n, :]
    fiber_reduce(
        contrib, fptr, out_vals, backend, schedule, partition,
        kernel="ttm", fmt="ghicoo", tier=tier,
    )

    fiber_bid = bid[starts]
    out_bptr = np.searchsorted(fiber_bid, np.arange(x.nblocks + 1)).astype(np.int64)
    return SemiHiCOOTensor(
        out_shape,
        x.block_size,
        (mode,),
        out_bptr,
        x.binds,
        x.einds[starts],
        out_vals,
        check=False,
    )


@declares_output(Access.DISJOINT)
def hicoo_ttm(
    x: HiCOOTensor,
    u: np.ndarray,
    mode: int,
    backend: "Backend | str | None" = None,
    schedule: "Schedule | str" = Schedule.STATIC,
    partition: str = "uniform",
    tier: "str | None" = None,
) -> SemiHiCOOTensor:
    """HiCOO-Ttm: gHiCOO re-representation (pre-processing) + shared loop."""
    mode = check_mode(mode, x.nmodes)
    comp = tuple(m for m in range(x.nmodes) if m != mode)
    g = GHiCOOTensor.from_coo(x.to_coo(), x.block_size, comp)
    return ghicoo_ttm(g, u, mode, backend, schedule, partition, tier=tier)
