"""Work / memory-traffic / operational-intensity analysis (paper Table 1).

Table 1 gives, for each kernel on a third-order cubical tensor with ``M``
non-zeros and ``MF`` fibers (``I << MF << M``), the flop count, the bytes
moved under COO and HiCOO, and the resulting operational intensity (OI =
flops / bytes).  The functions here generalize those formulas to the exact
feature values of a *specific* tensor (M, MF, R, nb), which is what the
paper uses to place per-tensor roofline bounds in Figures 4-7 ("The OI
value is an accurate #Flops/#Bytes ratio by taking different tensor
features into account").

Conventions (paper Sec. 3.1/3.2): 32-bit indices, 32-bit values, third
column of Table 1 assumes one-level cache with the minimum size needed for
algorithmic reuse.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.types import DEFAULT_BLOCK_SIZE, DEFAULT_RANK, Format, Kernel


@dataclass(frozen=True)
class KernelCost:
    """Flop and byte counts for one kernel execution."""

    kernel: Kernel
    fmt: Format
    flops: float
    bytes: float

    @property
    def oi(self) -> float:
        """Operational intensity in flops/byte."""
        return self.flops / self.bytes if self.bytes else float("inf")


def tew_cost(
    m: int, fmt: "Format | str" = Format.COO, order: int = 3
) -> KernelCost:
    """Tew: one flop per output non-zero; 12 bytes (two reads + one write
    of a 4-byte value) per non-zero, independent of tensor order (the
    indices are copied in pre-processing).  Identical for COO and HiCOO —
    the value-computation loop is shared (paper Sec. 3.4.1)."""
    fmt = Format.coerce(fmt)
    return KernelCost(Kernel.TEW, fmt, float(m), 12.0 * m)


def ts_cost(
    m: int, fmt: "Format | str" = Format.COO, order: int = 3
) -> KernelCost:
    """Ts: one flop per non-zero; one read + one write per non-zero."""
    fmt = Format.coerce(fmt)
    return KernelCost(Kernel.TS, fmt, float(m), 8.0 * m)


def ttv_cost(
    m: int, mf: int, fmt: "Format | str" = Format.COO, order: int = 3
) -> KernelCost:
    """Ttv: 2M flops (multiply + add).

    Input traffic is order-independent: value + mode-n index +
    irregularly-gathered vector element = 12 bytes per non-zero.  Output
    traffic is ``4 N MF`` — (N-1) 4-byte indices plus a 4-byte value per
    fiber — which reduces to Table 1's ``12MF`` at N=3."""
    fmt = Format.coerce(fmt)
    return KernelCost(
        Kernel.TTV, fmt, 2.0 * m, 12.0 * m + 4.0 * order * mf
    )


def ttm_cost(
    m: int,
    mf: int,
    r: int = DEFAULT_RANK,
    fmt: "Format | str" = Format.COO,
    order: int = 3,
) -> KernelCost:
    """Ttm: 2MR flops; ``4MR`` matrix-row gathers + ``4MFR`` output
    values + ``8M`` per-non-zero index/value traffic + ``4(N-1)MF``
    output index traffic (Table 1's ``8MF`` at N=3)."""
    fmt = Format.coerce(fmt)
    return KernelCost(
        Kernel.TTM,
        fmt,
        2.0 * m * r,
        4.0 * m * r + 4.0 * mf * r + 8.0 * m + 4.0 * (order - 1) * mf,
    )


def mttkrp_cost(
    m: int,
    r: int = DEFAULT_RANK,
    fmt: "Format | str" = Format.COO,
    nb: int | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    order: int = 3,
) -> KernelCost:
    """Mttkrp: ``N M R`` flops ((N-2) multiplies + 1 scale + 1 accumulate
    per rank entry; Table 1's ``3MR`` at N=3).

    COO traffic: ``4 N M R + 4 (N+1) M`` — N matrix rows of R values per
    non-zero ((N-1) gathers + the output update) plus N indices and the
    tensor value; reduces to Table 1's ``12MR + 16M`` at N=3.

    HiCOO traffic: ``4 N R min(nb * B, M) + (N+4) M + (8+4N) nb`` —
    matrix rows are reused across a block (at most ``B`` distinct rows per
    matrix per block), element indices shrink to one byte, and each block
    adds its pointer and block-index overhead; reduces to Table 1's
    ``12 R min{nb B, M} + 7M + 20nb`` at N=3.
    """
    fmt = Format.coerce(fmt)
    flops = float(order) * m * r
    if fmt in (Format.HICOO, Format.GHICOO):
        if nb is None:
            raise ValueError("HiCOO Mttkrp cost requires the block count nb")
        bytes_ = (
            4.0 * order * r * min(nb * block_size, m)
            + (order + 4.0) * m
            + (8.0 + 4.0 * order) * nb
        )
    else:
        bytes_ = 4.0 * order * m * r + 4.0 * (order + 1) * m
    return KernelCost(Kernel.MTTKRP, fmt, flops, bytes_)


def kernel_cost(
    kernel: "Kernel | str",
    fmt: "Format | str",
    m: int,
    mf: int | None = None,
    r: int = DEFAULT_RANK,
    nb: int | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
    order: int = 3,
) -> KernelCost:
    """Uniform dispatcher used by the roofline/OI machinery."""
    kernel = Kernel.coerce(kernel)
    if kernel is Kernel.TEW:
        return tew_cost(m, fmt, order)
    if kernel is Kernel.TS:
        return ts_cost(m, fmt, order)
    if kernel is Kernel.TTV:
        if mf is None:
            raise ValueError("Ttv cost requires the fiber count MF")
        return ttv_cost(m, mf, fmt, order)
    if kernel is Kernel.TTM:
        if mf is None:
            raise ValueError("Ttm cost requires the fiber count MF")
        return ttm_cost(m, mf, r, fmt, order)
    if kernel is Kernel.MTTKRP:
        return mttkrp_cost(m, r, fmt, nb=nb, block_size=block_size, order=order)
    raise ValueError(f"unknown kernel {kernel}")  # pragma: no cover


#: Asymptotic operational intensities quoted by Table 1 for third-order
#: cubical tensors (less significant terms dropped, paper Sec. 3.2).
TABLE1_ASYMPTOTIC_OI = {
    Kernel.TEW: 1.0 / 12.0,
    Kernel.TS: 1.0 / 8.0,
    Kernel.TTV: 1.0 / 6.0,
    Kernel.TTM: 1.0 / 2.0,
    Kernel.MTTKRP: 1.0 / 4.0,
}
