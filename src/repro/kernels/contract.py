"""Sparse tensor contraction kernels and **output-access contracts**.

Two kinds of "contract" live here.  The first half of the module declares
the *output-access contracts* of the parallel kernels — the small
annotation the race-check harness validates.  The second half implements
the binary sparse *tensor contraction* (and sparse-operand Ttv/Ttm), which
is on the paper's future-work list ("additional operations, such as ...
tensor contraction, a sparse tensor with a sparse vector/matrix
operations"); Ttm is the dense-operand special case of that contraction.

Output-access contracts
-----------------------
Every parallel kernel's race-freedom rests on a claim about how its chunk
decomposition writes the shared output.  :class:`Access` names the four
disciplines the suite uses, kernels declare theirs with the
:func:`declares_output` decorator (per update ``method`` where the
strategy is selectable), and
:class:`~repro.parallel.racecheck.RaceCheckBackend` replays the
decomposition and verifies the claim.  See the module docstring of
``repro.parallel.racecheck`` for what each kind promises.

Tensor contraction
------------------
The binary contraction ``Z = contract(X, Y, modes_x, modes_y)`` matches
non-zeros of ``X`` and ``Y`` on the contracted coordinates (a sort-merge
join on linearized keys), multiplies the matched values, and coalesces the
free-coordinate products.  Output order is ``free(X) ++ free(Y)``, as in
``numpy.tensordot``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping, Sequence

import numpy as np

from repro.errors import ShapeError
from repro.sptensor.coo import COOTensor
from repro.util.validation import check_mode


class Access(str, enum.Enum):
    """How a kernel's chunks write their shared output.

    ``ATOMIC``
        Chunks may write overlapping elements; every write is mediated by
        a commutative reduction (``np.add.at`` standing in for
        ``omp atomic``), so overlap is declared-safe.
    ``OWNER``
        Chunks own disjoint contiguous output ranges (owner-computes);
        no two chunks may touch the same element.
    ``WORKSPACE``
        Chunks write only thread-private :class:`~repro.parallel.
        workspace.WorkspacePool` arenas; the shared output changes only
        in the post-loop reduction (dense-workspace discipline of
        Kjolstad et al., arXiv 1802.10574).
    ``DISJOINT``
        Chunks write disjoint output elements by construction (fiber- or
        element-parallel loops; per-nnz disjointness).
    """

    ATOMIC = "atomic"
    OWNER = "owner"
    WORKSPACE = "workspace"
    DISJOINT = "disjoint"


@dataclass(frozen=True)
class OutputContract:
    """A kernel's declared output-access discipline.

    ``access`` is either a single :class:`Access` (the kernel has one
    strategy) or a mapping from the kernel's ``method`` argument values to
    the :class:`Access` each method runs under a threaded backend.
    """

    kernel: str
    access: "Access | Mapping[str, Access]"

    def resolve(self, method: "str | None" = None) -> Access:
        """The access kind for ``method`` (or the single declared kind)."""
        if isinstance(self.access, Access):
            return self.access
        if method is None:
            raise ValueError(
                f"kernel {self.kernel!r} declares per-method contracts "
                f"{sorted(self.access)}; pass method="
            )
        try:
            return self.access[method]
        except KeyError:
            raise ValueError(
                f"kernel {self.kernel!r} has no contract for method "
                f"{method!r}; declared: {sorted(self.access)}"
            ) from None

    @property
    def methods(self) -> "tuple[str, ...] | None":
        """Method names with distinct contracts (``None`` if single)."""
        if isinstance(self.access, Access):
            return None
        return tuple(sorted(self.access))


_CONTRACTS: dict[str, OutputContract] = {}


def declares_output(access=None, *, by_method=None, name=None):
    """Decorator annotating a kernel with its output-access contract.

    Either ``access`` (one :class:`Access` for the kernel) or
    ``by_method`` (a ``{method: Access}`` mapping for kernels whose
    strategy is selected by a ``method`` argument) must be given.  The
    contract is attached as ``fn.__output_contract__`` and registered
    under the kernel's name for harness discovery.
    """
    if (access is None) == (by_method is None):
        raise ValueError("declares_output needs exactly one of access/by_method")
    if by_method is not None:
        spec = MappingProxyType(
            {str(k): Access(v) for k, v in dict(by_method).items()}
        )
    else:
        spec = Access(access)

    def deco(fn):
        contract = OutputContract(kernel=name or fn.__name__, access=spec)
        fn.__output_contract__ = contract
        _CONTRACTS[contract.kernel] = contract
        return fn

    return deco


def output_contract(kernel) -> OutputContract:
    """Look up a registered contract by kernel name or decorated function."""
    contract = getattr(kernel, "__output_contract__", None)
    if contract is not None:
        return contract
    try:
        return _CONTRACTS[str(kernel)]
    except KeyError:
        raise KeyError(
            f"no output contract registered for {kernel!r}; "
            f"registered: {sorted(_CONTRACTS)}"
        ) from None


def registered_contracts() -> dict[str, OutputContract]:
    """Snapshot of every registered kernel contract."""
    return dict(_CONTRACTS)


def _linear_key(indices: np.ndarray, shape: Sequence[int], cols: Sequence[int]) -> np.ndarray:
    key = np.zeros(indices.shape[0], dtype=np.int64)
    for c in cols:
        key = key * np.int64(shape[c]) + indices[:, c].astype(np.int64)
    return key


def sparse_contract(
    x: COOTensor,
    y: COOTensor,
    modes_x: Sequence[int],
    modes_y: Sequence[int],
) -> COOTensor:
    """General sparse x sparse contraction over matching mode pairs.

    ``modes_x[i]`` of ``X`` contracts against ``modes_y[i]`` of ``Y``
    (dimension sizes must agree).  Returns a coalesced COO tensor over the
    free modes of ``X`` followed by the free modes of ``Y``.

    Complexity: a sort-merge join — ``O(Mx log Mx + My log My + P)`` where
    ``P`` is the number of matched pairs (the join's natural output size).
    """
    modes_x = [check_mode(m, x.nmodes) for m in modes_x]
    modes_y = [check_mode(m, y.nmodes) for m in modes_y]
    if len(modes_x) != len(modes_y):
        raise ShapeError("modes_x and modes_y must pair up")
    if len(set(modes_x)) != len(modes_x) or len(set(modes_y)) != len(modes_y):
        raise ShapeError("contracted modes must be distinct")
    for mx, my in zip(modes_x, modes_y):
        if x.shape[mx] != y.shape[my]:
            raise ShapeError(
                f"contracted dims differ: X mode {mx} has {x.shape[mx]}, "
                f"Y mode {my} has {y.shape[my]}"
            )
    free_x = [m for m in range(x.nmodes) if m not in modes_x]
    free_y = [m for m in range(y.nmodes) if m not in modes_y]
    out_shape = tuple(x.shape[m] for m in free_x) + tuple(
        y.shape[m] for m in free_y
    )
    if not out_shape:
        raise ShapeError(
            "full contraction yields a scalar; use sparse_inner instead"
        )
    dtype = np.result_type(x.values, y.values)
    if x.nnz == 0 or y.nnz == 0:
        return COOTensor.empty(out_shape, dtype=dtype)

    kx = _linear_key(x.indices, x.shape, modes_x)
    ky = _linear_key(y.indices, y.shape, modes_y)
    ox, oy = np.argsort(kx, kind="stable"), np.argsort(ky, kind="stable")
    kx, ky = kx[ox], ky[oy]
    # Join: for each X entry, the contiguous run of matching Y entries.
    lo = np.searchsorted(ky, kx, side="left")
    hi = np.searchsorted(ky, kx, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        return COOTensor.empty(out_shape, dtype=dtype)
    x_rep = np.repeat(np.arange(x.nnz), counts)
    # y positions: for each x entry, the run lo..hi
    offsets = np.concatenate(([0], np.cumsum(counts)))[:-1]
    y_pos = np.repeat(lo, counts) + (np.arange(total) - np.repeat(offsets, counts))
    xi = ox[x_rep]
    yi = oy[y_pos]
    vals = x.values[xi].astype(dtype) * y.values[yi].astype(dtype)
    coords = np.empty((total, len(out_shape)), dtype=np.int64)
    for j, m in enumerate(free_x):
        coords[:, j] = x.indices[xi, m].astype(np.int64)
    for j, m in enumerate(free_y):
        coords[:, len(free_x) + j] = y.indices[yi, m].astype(np.int64)
    out = COOTensor(out_shape, coords, vals, copy=False, check=False)
    return out.coalesce()


def sparse_inner(x: COOTensor, y: COOTensor) -> float:
    """Full contraction ``<X, Y>`` (all modes paired in order)."""
    if x.shape != y.shape:
        raise ShapeError(f"inner product needs equal shapes: {x.shape} vs {y.shape}")
    kx = _linear_key(x.indices, x.shape, range(x.nmodes))
    ky = _linear_key(y.indices, y.shape, range(y.nmodes))
    ox, oy = np.argsort(kx, kind="stable"), np.argsort(ky, kind="stable")
    common, ix, iy = np.intersect1d(kx[ox], ky[oy], return_indices=True)
    if len(common) == 0:
        return 0.0
    return float(
        (x.values[ox][ix].astype(np.float64) * y.values[oy][iy].astype(np.float64)).sum()
    )


def sparse_ttv(
    x: COOTensor,
    v_indices: np.ndarray,
    v_values: np.ndarray,
    mode: int,
) -> COOTensor:
    """Ttv with a *sparse* vector: only fibers hitting stored vector
    entries contribute (intersection semantics on the contracted mode)."""
    mode = check_mode(mode, x.nmodes)
    v_indices = np.asarray(v_indices, dtype=np.int64).reshape(-1)
    v_values = np.asarray(v_values).reshape(-1)
    if len(v_indices) != len(v_values):
        raise ShapeError("sparse vector indices/values must align")
    if len(v_indices) and (
        v_indices.min() < 0 or v_indices.max() >= x.shape[mode]
    ):
        raise ShapeError("sparse vector index out of range")
    v = COOTensor(
        (x.shape[mode],), v_indices.reshape(-1, 1), v_values, check=False
    )
    return sparse_contract(x, v, [mode], [0])


def sparse_ttm(
    x: COOTensor,
    u: COOTensor,
    mode: int,
) -> COOTensor:
    """Ttm with a *sparse* matrix ``U`` (stored as a 2-mode COO tensor,
    rows indexed by the contracted mode).  The output R-mode lands last;
    permute if the dense-Ttm mode placement is needed."""
    mode = check_mode(mode, x.nmodes)
    if u.nmodes != 2:
        raise ShapeError("sparse Ttm operand must be a 2-mode tensor")
    if u.shape[0] != x.shape[mode]:
        raise ShapeError(
            f"matrix rows {u.shape[0]} must match mode {mode} size {x.shape[mode]}"
        )
    return sparse_contract(x, u, [mode], [0])
