"""Sparse tensor contraction and sparse x sparse operand kernels.

Both are on the paper's future-work list ("additional operations, such as
... tensor contraction, a sparse tensor with a sparse vector/matrix
operations"); Ttm is the dense-operand special case of the contraction
implemented here.

The binary contraction ``Z = contract(X, Y, modes_x, modes_y)`` matches
non-zeros of ``X`` and ``Y`` on the contracted coordinates (a sort-merge
join on linearized keys), multiplies the matched values, and coalesces the
free-coordinate products.  Output order is ``free(X) ++ free(Y)``, as in
``numpy.tensordot``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.sptensor.coo import COOTensor
from repro.util.validation import check_mode


def _linear_key(indices: np.ndarray, shape: Sequence[int], cols: Sequence[int]) -> np.ndarray:
    key = np.zeros(indices.shape[0], dtype=np.int64)
    for c in cols:
        key = key * np.int64(shape[c]) + indices[:, c].astype(np.int64)
    return key


def sparse_contract(
    x: COOTensor,
    y: COOTensor,
    modes_x: Sequence[int],
    modes_y: Sequence[int],
) -> COOTensor:
    """General sparse x sparse contraction over matching mode pairs.

    ``modes_x[i]`` of ``X`` contracts against ``modes_y[i]`` of ``Y``
    (dimension sizes must agree).  Returns a coalesced COO tensor over the
    free modes of ``X`` followed by the free modes of ``Y``.

    Complexity: a sort-merge join — ``O(Mx log Mx + My log My + P)`` where
    ``P`` is the number of matched pairs (the join's natural output size).
    """
    modes_x = [check_mode(m, x.nmodes) for m in modes_x]
    modes_y = [check_mode(m, y.nmodes) for m in modes_y]
    if len(modes_x) != len(modes_y):
        raise ShapeError("modes_x and modes_y must pair up")
    if len(set(modes_x)) != len(modes_x) or len(set(modes_y)) != len(modes_y):
        raise ShapeError("contracted modes must be distinct")
    for mx, my in zip(modes_x, modes_y):
        if x.shape[mx] != y.shape[my]:
            raise ShapeError(
                f"contracted dims differ: X mode {mx} has {x.shape[mx]}, "
                f"Y mode {my} has {y.shape[my]}"
            )
    free_x = [m for m in range(x.nmodes) if m not in modes_x]
    free_y = [m for m in range(y.nmodes) if m not in modes_y]
    out_shape = tuple(x.shape[m] for m in free_x) + tuple(
        y.shape[m] for m in free_y
    )
    if not out_shape:
        raise ShapeError(
            "full contraction yields a scalar; use sparse_inner instead"
        )
    dtype = np.result_type(x.values, y.values)
    if x.nnz == 0 or y.nnz == 0:
        return COOTensor.empty(out_shape, dtype=dtype)

    kx = _linear_key(x.indices, x.shape, modes_x)
    ky = _linear_key(y.indices, y.shape, modes_y)
    ox, oy = np.argsort(kx, kind="stable"), np.argsort(ky, kind="stable")
    kx, ky = kx[ox], ky[oy]
    # Join: for each X entry, the contiguous run of matching Y entries.
    lo = np.searchsorted(ky, kx, side="left")
    hi = np.searchsorted(ky, kx, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        return COOTensor.empty(out_shape, dtype=dtype)
    x_rep = np.repeat(np.arange(x.nnz), counts)
    # y positions: for each x entry, the run lo..hi
    offsets = np.concatenate(([0], np.cumsum(counts)))[:-1]
    y_pos = np.repeat(lo, counts) + (np.arange(total) - np.repeat(offsets, counts))
    xi = ox[x_rep]
    yi = oy[y_pos]
    vals = x.values[xi].astype(dtype) * y.values[yi].astype(dtype)
    coords = np.empty((total, len(out_shape)), dtype=np.int64)
    for j, m in enumerate(free_x):
        coords[:, j] = x.indices[xi, m].astype(np.int64)
    for j, m in enumerate(free_y):
        coords[:, len(free_x) + j] = y.indices[yi, m].astype(np.int64)
    out = COOTensor(out_shape, coords, vals, copy=False, check=False)
    return out.coalesce()


def sparse_inner(x: COOTensor, y: COOTensor) -> float:
    """Full contraction ``<X, Y>`` (all modes paired in order)."""
    if x.shape != y.shape:
        raise ShapeError(f"inner product needs equal shapes: {x.shape} vs {y.shape}")
    kx = _linear_key(x.indices, x.shape, range(x.nmodes))
    ky = _linear_key(y.indices, y.shape, range(y.nmodes))
    ox, oy = np.argsort(kx, kind="stable"), np.argsort(ky, kind="stable")
    common, ix, iy = np.intersect1d(kx[ox], ky[oy], return_indices=True)
    if len(common) == 0:
        return 0.0
    return float(
        (x.values[ox][ix].astype(np.float64) * y.values[oy][iy].astype(np.float64)).sum()
    )


def sparse_ttv(
    x: COOTensor,
    v_indices: np.ndarray,
    v_values: np.ndarray,
    mode: int,
) -> COOTensor:
    """Ttv with a *sparse* vector: only fibers hitting stored vector
    entries contribute (intersection semantics on the contracted mode)."""
    mode = check_mode(mode, x.nmodes)
    v_indices = np.asarray(v_indices, dtype=np.int64).reshape(-1)
    v_values = np.asarray(v_values).reshape(-1)
    if len(v_indices) != len(v_values):
        raise ShapeError("sparse vector indices/values must align")
    if len(v_indices) and (
        v_indices.min() < 0 or v_indices.max() >= x.shape[mode]
    ):
        raise ShapeError("sparse vector index out of range")
    v = COOTensor(
        (x.shape[mode],), v_indices.reshape(-1, 1), v_values, check=False
    )
    return sparse_contract(x, v, [mode], [0])


def sparse_ttm(
    x: COOTensor,
    u: COOTensor,
    mode: int,
) -> COOTensor:
    """Ttm with a *sparse* matrix ``U`` (stored as a 2-mode COO tensor,
    rows indexed by the contracted mode).  The output R-mode lands last;
    permute if the dense-Ttm mode placement is needed."""
    mode = check_mode(mode, x.nmodes)
    if u.nmodes != 2:
        raise ShapeError("sparse Ttm operand must be a 2-mode tensor")
    if u.shape[0] != x.shape[mode]:
        raise ShapeError(
            f"matrix rows {u.shape[0]} must match mode {mode} size {x.shape[mode]}"
        )
    return sparse_contract(x, u, [mode], [0])
