"""Dense reference implementations of the five kernels.

These follow the paper's defining equations directly on dense ndarrays
(via NumPy's einsum/tensordot), and exist purely as oracles: every sparse
kernel is validated against them in the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.types import OpKind
from repro.sptensor.dense import mttkrp_khatri_rao_operand, unfold
from repro.util.validation import check_mode, check_same_shape


def dense_tew(x: np.ndarray, y: np.ndarray, op: "OpKind | str") -> np.ndarray:
    """Element-wise op (paper Eq. 1).  For mul/div the sparse kernels use
    intersection semantics on stored entries; densified comparison must
    therefore be restricted to the common pattern by the caller."""
    check_same_shape(x, y)
    op = OpKind.coerce(op)
    if op is OpKind.ADD:
        return x + y
    if op is OpKind.SUB:
        return x - y
    if op is OpKind.MUL:
        return x * y
    with np.errstate(divide="ignore", invalid="ignore"):
        out = np.where(y != 0, x / np.where(y != 0, y, 1), 0.0)
    return out


def dense_ts(x: np.ndarray, s: float, op: "OpKind | str") -> np.ndarray:
    """Tensor-scalar op on the *non-zero pattern only* (paper Sec. 2.2
    defines Ts between the non-zero values of a tensor and a scalar)."""
    op = OpKind.coerce(op)
    mask = x != 0
    out = np.array(x, copy=True)
    if op is OpKind.ADD:
        out[mask] = x[mask] + s
    elif op is OpKind.SUB:
        out[mask] = x[mask] - s
    elif op is OpKind.MUL:
        out[mask] = x[mask] * s
    else:
        out[mask] = x[mask] / s
    return out


def dense_ttv(x: np.ndarray, v: np.ndarray, mode: int) -> np.ndarray:
    """Tensor-times-vector (paper Eq. 3): contract mode ``mode`` with v."""
    mode = check_mode(mode, x.ndim)
    return np.tensordot(x, v, axes=([mode], [0]))


def dense_ttm(x: np.ndarray, u: np.ndarray, mode: int) -> np.ndarray:
    """Tensor-times-matrix (paper Eq. 4) with the paper's U ∈ R^{In×R}
    convention: output mode ``mode`` has size R."""
    mode = check_mode(mode, x.ndim)
    out = np.tensordot(x, u, axes=([mode], [0]))  # contracted axis -> last
    return np.moveaxis(out, -1, mode)


def dense_mttkrp(x: np.ndarray, mats, mode: int) -> np.ndarray:
    """Matricized-tensor times Khatri-Rao product (paper Eq. 5)."""
    mode = check_mode(mode, x.ndim)
    kr = mttkrp_khatri_rao_operand(mats, mode)
    return unfold(x, mode) @ kr
