"""Performance metrics and aggregation."""

from repro.metrics.perf import PERF_HEADERS, PerfRecord, efficiency, gflops
from repro.metrics.stats import (
    average_efficiency,
    average_gflops,
    geomean,
    gflops_range,
    group_by,
    mean_over_modes,
)

__all__ = [
    "gflops",
    "efficiency",
    "PerfRecord",
    "PERF_HEADERS",
    "mean_over_modes",
    "geomean",
    "group_by",
    "average_gflops",
    "average_efficiency",
    "gflops_range",
]
