"""Performance metrics and aggregation."""

from repro.metrics.perf import PERF_HEADERS, PerfRecord, efficiency, gflops
from repro.metrics.stats import (
    BootstrapCI,
    GeomeanResult,
    average_efficiency,
    average_gflops,
    bootstrap_ci,
    drop_nonpositive,
    geomean,
    geomean_detail,
    geomean_ratio_ci,
    gflops_range,
    group_by,
    mean_over_modes,
    percentiles,
)

__all__ = [
    "gflops",
    "efficiency",
    "PerfRecord",
    "PERF_HEADERS",
    "mean_over_modes",
    "geomean",
    "geomean_detail",
    "GeomeanResult",
    "drop_nonpositive",
    "group_by",
    "average_gflops",
    "average_efficiency",
    "gflops_range",
    "bootstrap_ci",
    "BootstrapCI",
    "geomean_ratio_ci",
    "percentiles",
]
