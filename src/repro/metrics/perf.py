"""Performance metrics: GFLOPS and roofline efficiency.

The paper compares kernels and platforms in FLOPS (``#Flops`` from Table 1
divided by measured execution time) and reports *performance efficiency* —
achieved GFLOPS over the per-tensor roofline bound — which can exceed 100%
when a working set is served from cache (Observation 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields


def _json_safe(value):
    """Coerce numpy scalars / containers to plain JSON-stable Python.

    ``PerfRecord.extra`` accumulates whatever the kernels and cost models
    attach (numpy floats, bools, nested dicts); the run store journals
    records as JSON, so everything must round-trip ``json.dumps`` →
    ``json.loads`` without loss or type drift.
    """
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, bool) or value is None or isinstance(value, (int, str)):
        return value
    if isinstance(value, float):
        return float(value)
    # numpy scalars expose item(); anything else degrades to str.
    item = getattr(value, "item", None)
    if callable(item):
        return _json_safe(item())
    return str(value)


def gflops(flops: float, seconds: float) -> float:
    """Achieved GFLOPS; 0.0 for non-positive time (empty kernels)."""
    if seconds <= 0:
        return 0.0
    return flops / seconds / 1e9


def efficiency(achieved_gflops: float, bound_gflops: float) -> float:
    """Achieved / roofline bound (1.0 == at the roofline)."""
    if bound_gflops <= 0:
        return 0.0
    return achieved_gflops / bound_gflops


@dataclass(frozen=True)
class PerfRecord:
    """One (tensor, kernel, format, platform) measurement."""

    tensor: str
    kernel: str
    fmt: str
    platform: str
    flops: float
    seconds: float  # modeled platform time (or simulated GPU time)
    gflops: float
    bound_gflops: float  # per-tensor roofline bound
    efficiency: float
    host_seconds: float = 0.0  # measured wall-clock on the executing host
    host_gflops: float = 0.0
    extra: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """JSON-safe dict; ``from_dict`` inverts it exactly.

        The pair is the run store's wire format: a record journaled as a
        JSONL line must deserialize to an *equal* record, which the
        golden-schema tests pin (floats survive JSON round-trips exactly;
        numpy values in ``extra`` are coerced up front).
        """
        return {
            "tensor": self.tensor,
            "kernel": self.kernel,
            "fmt": self.fmt,
            "platform": self.platform,
            "flops": float(self.flops),
            "seconds": float(self.seconds),
            "gflops": float(self.gflops),
            "bound_gflops": float(self.bound_gflops),
            "efficiency": float(self.efficiency),
            "host_seconds": float(self.host_seconds),
            "host_gflops": float(self.host_gflops),
            "extra": _json_safe(self.extra),
        }

    @classmethod
    def from_dict(cls, d: dict) -> "PerfRecord":
        known = {f.name for f in fields(cls)}
        unknown = set(d) - known
        if unknown:
            raise ValueError(
                f"unknown PerfRecord fields {sorted(unknown)} "
                "(run-store schema drift?)"
            )
        return cls(**d)

    def _extra_metric(self, group: str, key: str):
        """A numeric field out of an ``extra`` sub-dict, or ``""``.

        Results CSVs carry observability columns only when the run
        recorded them; an empty cell means "not observed", which a fake
        0.0 would misreport.
        """
        sub = self.extra.get(group)
        if isinstance(sub, dict):
            value = sub.get(key)
            if isinstance(value, (int, float)) and not isinstance(value, bool):
                return float(value)
        return ""

    def as_row(self) -> list:
        return [
            self.tensor,
            self.kernel,
            self.fmt,
            self.platform,
            self.gflops,
            self.bound_gflops,
            self.efficiency,
            self.host_seconds,
            self.host_gflops,
            self._extra_metric("roofline", "bound_fraction"),
            self._extra_metric("obs", "imbalance"),
            self._extra_metric("obs", "busy_frac"),
        ]


PERF_HEADERS = [
    "tensor",
    "kernel",
    "format",
    "platform",
    "gflops",
    "roofline_gflops",
    "efficiency",
    "host_seconds",
    "host_gflops",
    "bound_fraction",
    "imbalance",
    "busy_frac",
]
