"""Performance metrics: GFLOPS and roofline efficiency.

The paper compares kernels and platforms in FLOPS (``#Flops`` from Table 1
divided by measured execution time) and reports *performance efficiency* —
achieved GFLOPS over the per-tensor roofline bound — which can exceed 100%
when a working set is served from cache (Observation 2).
"""

from __future__ import annotations

from dataclasses import dataclass, field


def gflops(flops: float, seconds: float) -> float:
    """Achieved GFLOPS; 0.0 for non-positive time (empty kernels)."""
    if seconds <= 0:
        return 0.0
    return flops / seconds / 1e9


def efficiency(achieved_gflops: float, bound_gflops: float) -> float:
    """Achieved / roofline bound (1.0 == at the roofline)."""
    if bound_gflops <= 0:
        return 0.0
    return achieved_gflops / bound_gflops


@dataclass(frozen=True)
class PerfRecord:
    """One (tensor, kernel, format, platform) measurement."""

    tensor: str
    kernel: str
    fmt: str
    platform: str
    flops: float
    seconds: float  # modeled platform time (or simulated GPU time)
    gflops: float
    bound_gflops: float  # per-tensor roofline bound
    efficiency: float
    host_seconds: float = 0.0  # measured wall-clock on the executing host
    host_gflops: float = 0.0
    extra: dict = field(default_factory=dict)

    def as_row(self) -> list:
        return [
            self.tensor,
            self.kernel,
            self.fmt,
            self.platform,
            self.gflops,
            self.bound_gflops,
            self.efficiency,
            self.host_seconds,
            self.host_gflops,
        ]


PERF_HEADERS = [
    "tensor",
    "kernel",
    "format",
    "platform",
    "gflops",
    "roofline_gflops",
    "efficiency",
    "host_seconds",
    "host_gflops",
]
