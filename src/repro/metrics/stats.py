"""Aggregation helpers for benchmark records.

The paper averages kernel times over five runs and, for mode-oriented
kernels, over all tensor modes; figures then quote per-kernel averages
across a dataset.  These helpers implement those aggregations over
:class:`~repro.metrics.perf.PerfRecord` lists.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

import numpy as np

from repro.metrics.perf import PerfRecord


def mean_over_modes(times: Sequence[float]) -> float:
    """Average kernel time across modes (paper Sec. 5.1.2)."""
    if not times:
        return 0.0
    return float(np.mean(times))


def geomean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (robust cross-tensor average)."""
    vals = [v for v in values if v > 0]
    if not vals:
        return 0.0
    return float(np.exp(np.mean(np.log(vals))))


def group_by(
    records: Iterable[PerfRecord], *keys: str
) -> dict[tuple, list[PerfRecord]]:
    """Group records by the named attributes."""
    out: dict[tuple, list[PerfRecord]] = defaultdict(list)
    for rec in records:
        out[tuple(getattr(rec, k) for k in keys)].append(rec)
    return dict(out)


def average_gflops(
    records: Iterable[PerfRecord], by: tuple[str, ...] = ("kernel", "fmt")
) -> dict[tuple, float]:
    """Arithmetic-mean GFLOPS per group (the paper's per-kernel averages)."""
    return {
        key: float(np.mean([r.gflops for r in recs]))
        for key, recs in group_by(records, *by).items()
    }


def average_efficiency(
    records: Iterable[PerfRecord], by: tuple[str, ...] = ("kernel", "fmt")
) -> dict[tuple, float]:
    """Mean roofline efficiency per group (Observation 3's statistic)."""
    return {
        key: float(np.mean([r.efficiency for r in recs]))
        for key, recs in group_by(records, *by).items()
    }


def gflops_range(records: Iterable[PerfRecord]) -> tuple[float, float]:
    """(min, max) achieved GFLOPS across records (Observation 1)."""
    g = [r.gflops for r in records]
    if not g:
        return (0.0, 0.0)
    return (float(min(g)), float(max(g)))
