"""Aggregation and resampling statistics for benchmark records.

The paper averages kernel times over five runs and, for mode-oriented
kernels, over all tensor modes; figures then quote per-kernel averages
across a dataset.  These helpers implement those aggregations over
:class:`~repro.metrics.perf.PerfRecord` lists, plus the bootstrap
machinery the regression sentinel (:mod:`repro.bench.regress`) builds
its confidence intervals from.

Empty input is *absence of data*, not a measurement of zero:
:func:`geomean` and :func:`gflops_range` return ``None`` when nothing
usable remains after dropping nonpositive values, and
:func:`geomean_detail` reports how many values were dropped so callers
can surface it.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

import numpy as np

from repro.metrics.perf import PerfRecord


#: Default latency quantiles quoted by the ingestion benchmark.
DEFAULT_QUANTILES = (50.0, 95.0, 99.0)


def percentiles(
    values: Iterable[float], qs: Sequence[float] = DEFAULT_QUANTILES
) -> "Optional[dict]":
    """Named sample percentiles (``{"p50": ..., "p95": ..., "p99": ...}``).

    Returns ``None`` on empty input — no sample is absence of data, and a
    fake 0.0 latency would misreport it (same convention as
    :func:`geomean`).  Quantiles are linearly interpolated
    (``np.percentile`` defaults), keys formatted ``p{q:g}`` so fractional
    quantiles like 99.9 render as ``p99.9``.
    """
    arr = np.asarray([float(v) for v in values], dtype=np.float64)
    if arr.size == 0:
        return None
    return {f"p{q:g}": float(np.percentile(arr, q)) for q in qs}


def mean_over_modes(times: Sequence[float]) -> float:
    """Average kernel time across modes (paper Sec. 5.1.2)."""
    if not times:
        return 0.0
    return float(np.mean(times))


def drop_nonpositive(values: Sequence[float]) -> tuple[list, int]:
    """``(kept, n_dropped)`` — the positive values and how many fell out.

    Geometric statistics are undefined at or below zero; callers that
    filter should say how much data the filter cost them.
    """
    kept = [float(v) for v in values if v > 0]
    return kept, len(values) - len(kept)


@dataclass(frozen=True)
class GeomeanResult:
    """A geometric mean together with its data-hygiene footnote."""

    value: Optional[float]
    n_used: int
    n_dropped: int


def geomean_detail(values: Sequence[float]) -> GeomeanResult:
    """Geometric mean plus how many nonpositive values were dropped.

    ``value`` is ``None`` when no positive values remain — no data is
    not a geomean of 0.0.
    """
    vals, dropped = drop_nonpositive(values)
    if not vals:
        return GeomeanResult(value=None, n_used=0, n_dropped=dropped)
    value = float(np.exp(np.mean(np.log(vals))))
    return GeomeanResult(value=value, n_used=len(vals), n_dropped=dropped)


def geomean(values: Sequence[float]) -> Optional[float]:
    """Geometric mean of the positive values, ``None`` if there are none.

    Nonpositive entries are dropped (use :func:`geomean_detail` to learn
    how many); an empty or all-nonpositive input returns ``None`` rather
    than a fake 0.0.
    """
    return geomean_detail(values).value


def group_by(
    records: Iterable[PerfRecord], *keys: str
) -> dict[tuple, list[PerfRecord]]:
    """Group records by the named attributes."""
    out: dict[tuple, list[PerfRecord]] = defaultdict(list)
    for rec in records:
        out[tuple(getattr(rec, k) for k in keys)].append(rec)
    return dict(out)


def average_gflops(
    records: Iterable[PerfRecord], by: tuple[str, ...] = ("kernel", "fmt")
) -> dict[tuple, float]:
    """Arithmetic-mean GFLOPS per group (the paper's per-kernel averages)."""
    return {
        key: float(np.mean([r.gflops for r in recs]))
        for key, recs in group_by(records, *by).items()
    }


def average_efficiency(
    records: Iterable[PerfRecord], by: tuple[str, ...] = ("kernel", "fmt")
) -> dict[tuple, float]:
    """Mean roofline efficiency per group (Observation 3's statistic)."""
    return {
        key: float(np.mean([r.efficiency for r in recs]))
        for key, recs in group_by(records, *by).items()
    }


def gflops_range(records: Iterable[PerfRecord]) -> Optional[tuple]:
    """(min, max) achieved GFLOPS across records (Observation 1).

    ``None`` when there are no records — an empty group has no range,
    and (0.0, 0.0) would read as "measured, and dismal".
    """
    g = [r.gflops for r in records]
    if not g:
        return None
    return (float(min(g)), float(max(g)))


# --------------------------------------------------------------------- #
# Bootstrap resampling (the regression sentinel's uncertainty model)
# --------------------------------------------------------------------- #

@dataclass(frozen=True)
class BootstrapCI:
    """A point estimate with a percentile-bootstrap confidence interval."""

    estimate: float
    lo: float
    hi: float
    #: Sample size the statistic was computed over.
    n: int
    resamples: int
    confidence: float

    def excludes(self, value: float) -> bool:
        """True when ``value`` falls outside [lo, hi]."""
        return value < self.lo or value > self.hi

    def as_dict(self) -> dict:
        return {
            "estimate": self.estimate,
            "lo": self.lo,
            "hi": self.hi,
            "n": self.n,
            "resamples": self.resamples,
            "confidence": self.confidence,
        }


def bootstrap_ci(
    values: Sequence[float],
    statistic: Optional[Callable] = None,
    *,
    resamples: int = 1000,
    confidence: float = 0.95,
    seed: int = 0,
) -> Optional[BootstrapCI]:
    """Percentile bootstrap CI of ``statistic`` over ``values``.

    ``statistic`` maps a 1-D numpy array to a float (default: mean).
    Resampling is with replacement at the original sample size, driven
    by a :func:`numpy.random.default_rng` seeded with ``seed`` so the
    interval is reproducible.  Returns ``None`` on empty input; a
    single-value sample yields a degenerate interval at that value.
    """
    vals = np.asarray([float(v) for v in values], dtype=float)
    if vals.size == 0:
        return None
    stat = statistic if statistic is not None else (lambda a: float(np.mean(a)))
    estimate = float(stat(vals))
    if vals.size == 1:
        return BootstrapCI(
            estimate=estimate, lo=estimate, hi=estimate,
            n=1, resamples=int(resamples), confidence=float(confidence),
        )
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, vals.size, size=(int(resamples), vals.size))
    samples = np.sort([float(stat(vals[row])) for row in idx])
    alpha = (1.0 - confidence) / 2.0
    lo = float(np.quantile(samples, alpha))
    hi = float(np.quantile(samples, 1.0 - alpha))
    return BootstrapCI(
        estimate=estimate, lo=lo, hi=hi,
        n=int(vals.size), resamples=int(resamples),
        confidence=float(confidence),
    )


def _geomean_stat(arr) -> float:
    return float(np.exp(np.mean(np.log(arr))))


def geomean_ratio_ci(
    ratios: Sequence[float],
    *,
    resamples: int = 1000,
    confidence: float = 0.95,
    seed: int = 0,
) -> Optional[BootstrapCI]:
    """Bootstrap CI of the **geometric mean** of paired ratios.

    The regression sentinel's core statistic: ratios of B-time over
    A-time per matched case, summarized by geomean (so a 2x slowdown on
    one case and a 2x speedup on another cancel).  Nonpositive ratios
    are dropped first; ``None`` when nothing positive remains.
    """
    vals, _ = drop_nonpositive(ratios)
    if not vals:
        return None
    return bootstrap_ci(
        vals, _geomean_stat,
        resamples=resamples, confidence=confidence, seed=seed,
    )
