"""Live FireHose ingestion benchmark: stream generation racing analytics.

The paper's power-law generator descends from the FireHose streaming
benchmarks, where an unbounded event stream races analytics over a live
window.  This module builds that scenario end-to-end on the suite's own
primitives:

* a **seeded generator thread** emits power-law event batches
  (:func:`repro.generate.powerlaw.powerlaw_stream`) into a **bounded
  queue** — when ingestion falls behind, the queue fills and the
  generator blocks (backpressure), exactly FireHose's drop-or-stall
  decision point (we stall and count the stalls);
* **N ingest workers** drain the queue concurrently, each leasing a
  :class:`repro.parallel.slots.SlotPool` worker slot per batch.  The
  expensive per-batch work (validation, coalescing, HiCOO block
  decomposition) runs concurrently; the final window application is
  **sequenced by batch id**, so the live window is bit-identical to a
  serial replay of the stream no matter how workers interleave, churn,
  or how deep the queue runs — the property the chaos tests pin;
* the live window is a :class:`repro.stream.SlidingWindowTensor` with
  exact (structural) eviction, re-blocked **incrementally** into HiCOO
  by :class:`WindowBlocker` — each batch's block/element split is
  computed once on admit and snapshots only merge the cached parts;
* the main thread fires **periodic kernel queries** (Ttv / Mttkrp on
  COO and HiCOO snapshots) while ingestion continues, with per-query
  latency, roofline attribution on the final measurements, and injected
  :class:`~repro.parallel.chaos.ChaosError` failures (when the query
  backend is a ChaosBackend) tolerated without corrupting the window.

Results surface as :class:`~repro.metrics.perf.PerfRecord` objects with
throughput and p50/p95/p99 latency in ``extra["ingest"]``, spans and
counters through the :mod:`repro.obs` tracer and metrics registry, and
an optional :class:`~repro.bench.runstore.RunStore` journal reusing the
sweep executor's quarantine/resume discipline for long-running runs.
"""

from __future__ import annotations

import hashlib
import json
import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.generate.powerlaw import powerlaw_stream
from repro.kernels.mttkrp import coo_mttkrp, hicoo_mttkrp
from repro.kernels.ttv import coo_ttv, hicoo_ttv
from repro.metrics.perf import PerfRecord, efficiency, gflops
from repro.metrics.stats import percentiles
from repro.obs.attribution import attribute
from repro.obs.log import get_logger
from repro.obs.registry import get_metrics
from repro.obs.tracer import CAT_KERNEL, CAT_REGION, current_tracer
from repro.parallel.chaos import ChaosError
from repro.parallel.slots import SlotPool
from repro.roofline import RooflineModel, get_platform
from repro.roofline.oi import cost_for, extract_features
from repro.sptensor.coo import COOTensor
from repro.sptensor.hicoo import HiCOOTensor, _hicoo_sort_order
from repro.stream import EVICTION_MODES, SlidingWindowTensor
from repro.types import EINDEX_DTYPE, index_dtype_for
from repro.util.bits import is_pow2
from repro.util.prng import rng_from_seed

#: The (kernel, fmt) cells queried against every window snapshot.
QUERY_CELLS = (("ttv", "coo"), ("ttv", "hicoo"), ("mttkrp", "coo"), ("mttkrp", "hicoo"))

_SENTINEL = object()

_LOG = get_logger("repro.ingest")


class IngestError(RuntimeError):
    """An ingestion-path failure (misconfiguration or injected fault)."""


@dataclass(frozen=True)
class IngestConfig:
    """One ingestion-benchmark scenario (fully seeded and fingerprintable)."""

    shape: tuple = (512, 512, 16)
    #: Total events emitted by the generator.
    events: int = 100_000
    #: Events per generated batch.
    batch: int = 4096
    #: Live window length in batches.
    window: int = 8
    #: Concurrent ingest workers (and worker-slot count).
    workers: int = 4
    #: Bounded generator->ingest queue depth (backpressure bound).
    queue_depth: int = 8
    #: Batches between query rounds (0 disables queries; a final round
    #: always runs when queries are enabled).
    query_every: int = 8
    rank: int = 8
    alpha: float = 2.0
    #: Modes drawn uniformly (the paper's short dense modes).
    dense_modes: tuple = (-1,)
    seed: int = 0
    eviction: str = "exact"
    block_size: int = 32
    #: Batches a worker ingests before retiring and spawning a fresh
    #: replacement thread (worker churn; 0 = stable workers).
    worker_lifetime: int = 0
    platform: str = "Bluesky"
    #: Inject an :class:`IngestError` when this batch id would be applied
    #: (0 = never) — drives the quarantine/resume CI smoke and tests.
    fail_at_batch: int = 0

    def __post_init__(self):
        object.__setattr__(self, "shape", tuple(int(s) for s in self.shape))
        object.__setattr__(
            self, "dense_modes", tuple(int(m) for m in self.dense_modes)
        )
        if self.events < 1 or self.batch < 1:
            raise IngestError("events and batch must be >= 1")
        if self.window < 1 or self.workers < 1 or self.queue_depth < 1:
            raise IngestError("window, workers and queue_depth must be >= 1")
        if self.eviction not in EVICTION_MODES:
            raise IngestError(
                f"unknown eviction {self.eviction!r}; expected {EVICTION_MODES}"
            )
        if not is_pow2(self.block_size) or not (1 <= self.block_size <= 256):
            raise IngestError(
                f"block_size must be a power of two in [1, 256], "
                f"got {self.block_size}"
            )

    @property
    def tensor_name(self) -> str:
        return "stream" + "x".join(str(s) for s in self.shape)

    @property
    def nbatches(self) -> int:
        return -(-self.events // self.batch)

    def to_dict(self) -> dict:
        return {
            "shape": list(self.shape),
            "events": self.events,
            "batch": self.batch,
            "window": self.window,
            "workers": self.workers,
            "queue_depth": self.queue_depth,
            "query_every": self.query_every,
            "rank": self.rank,
            "alpha": self.alpha,
            "dense_modes": list(self.dense_modes),
            "seed": self.seed,
            "eviction": self.eviction,
            "block_size": self.block_size,
            "worker_lifetime": self.worker_lifetime,
            "platform": self.platform,
        }

    @property
    def fingerprint(self) -> str:
        """Stable scenario hash; concurrency/fault knobs excluded.

        ``workers``, ``queue_depth``, ``worker_lifetime`` and
        ``fail_at_batch`` do not change the *measured scenario's
        identity-defining stream* (the final window is bit-identical
        across them), but they do change throughput — so they stay in the
        hash via ``to_dict`` **except** ``fail_at_batch``, which is pure
        fault injection: a resumed run without the fault must match the
        faulted run's fingerprint to clear its quarantine.
        """
        blob = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()[:32]

    @property
    def case_seed(self) -> int:
        from repro.bench.runner import derive_case_seed

        return derive_case_seed(0, "ingest", self.fingerprint)

    def store_case(self, kernel: str, fmt: str) -> "_StoreCase":
        """A run-store case identity for one of this scenario's records."""
        payload = {
            "tensor": self.tensor_name,
            "kernel": kernel,
            "fmt": fmt,
            "platform": self.platform,
            "ingest": self.to_dict(),
        }
        return _StoreCase(
            fingerprint=f"{self.fingerprint}:{kernel}/{fmt}",
            case_seed=self.case_seed,
            payload=payload,
        )


@dataclass(frozen=True)
class _StoreCase:
    """Duck-typed :class:`~repro.bench.runner.SweepCase` for the run store."""

    fingerprint: str
    case_seed: int
    payload: dict

    def to_dict(self) -> dict:
        return dict(self.payload)


def reference_window_state(config: IngestConfig) -> COOTensor:
    """Serial replay of the stream's final window (the ground truth).

    Bit-identical to the concurrent bench's final ``state`` under exact
    eviction: both coalesce the concatenation of the last ``window``
    generated batches in stream order.
    """
    live: list = []
    for coords, values in powerlaw_stream(
        config.events, config.shape, alpha=config.alpha,
        dense_modes=config.dense_modes, seed=config.seed, batch=config.batch,
    ):
        live.append((coords, values))
        if len(live) > config.window:
            live.pop(0)
    if not live:
        return COOTensor.empty(config.shape)
    coords = np.concatenate([c for c, _ in live], axis=0)
    values = np.concatenate([v for _, v in live])
    return COOTensor(config.shape, coords, values, copy=False).coalesce()


class WindowBlocker:
    """Incremental HiCOO re-blocking of a live sliding window.

    ``HiCOOTensor.from_coo`` re-derives the block/element split of every
    entry on every call, but a sliding window changes by one batch per
    push — so this helper decomposes each batch **once** on admit
    (``coords // B`` and the uint8 remainder) and a snapshot only
    concatenates the cached parts of the live batches, Morton-sorts the
    merged entries, and sums duplicate coordinates.  The per-entry
    division work is never repeated for a batch that stays in the
    window, and snapshots memoize on the window version so back-to-back
    queries against an unchanged window are free.

    ``admit``/``evict`` may race ``snapshot`` (internal lock); the cached
    arrays are treated as immutable after admit.
    """

    def __init__(self, shape: Sequence[int], block_size: int = 32):
        if not is_pow2(block_size) or not (1 <= block_size <= 256):
            raise IngestError(
                f"block_size must be a power of two in [1, 256], got {block_size}"
            )
        self.shape = tuple(int(s) for s in shape)
        self.block_size = int(block_size)
        self._parts: dict = {}  # batch id -> (bcoords, ecoords, values)
        self._lock = threading.Lock()
        self._memo_version = None
        self._memo: "HiCOOTensor | None" = None
        #: Snapshot merges actually performed / served from the memo.
        self.reblocks = 0
        self.cache_hits = 0

    def decompose(self, batch: COOTensor) -> tuple:
        """Split one (coalesced) batch into block/element coordinates.

        Pure function of the batch — safe to run concurrently outside
        any lock; pass the result to :meth:`admit`.
        """
        b = np.int64(self.block_size)
        inds = batch.indices.astype(np.int64, copy=False)
        bcoords = inds // b
        ecoords = (inds - bcoords * b).astype(EINDEX_DTYPE)
        return bcoords, ecoords, np.asarray(batch.values)

    def admit(self, bid: int, part: tuple) -> None:
        with self._lock:
            self._parts[int(bid)] = part

    def evict(self, bid: int) -> None:
        with self._lock:
            self._parts.pop(int(bid), None)

    @property
    def nbatches(self) -> int:
        with self._lock:
            return len(self._parts)

    def snapshot(self, version=None) -> HiCOOTensor:
        """The live window as HiCOO (memoized per window ``version``)."""
        with self._lock:
            if version is not None and version == self._memo_version:
                self.cache_hits += 1
                return self._memo
            parts = [self._parts[k] for k in sorted(self._parts)]
        hic = self._merge(parts)
        with self._lock:
            if version is not None:
                self._memo_version, self._memo = version, hic
            self.reblocks += 1
        return hic

    def _merge(self, parts: list) -> HiCOOTensor:
        if not parts or sum(len(p[2]) for p in parts) == 0:
            return HiCOOTensor.from_coo(
                COOTensor.empty(self.shape), self.block_size
            )
        bc = np.concatenate([p[0] for p in parts], axis=0)
        ec = np.concatenate([p[1] for p in parts], axis=0)
        vals = np.concatenate([p[2] for p in parts])
        perm = _hicoo_sort_order(bc, ec)
        bc, ec, vals = bc[perm], ec[perm], vals[perm]
        # Identical (block, element) coordinates are adjacent after the
        # Morton sort; sum each run (cross-batch duplicates coalesce).
        glob = bc * np.int64(self.block_size) + ec
        if len(glob) > 1:
            fresh = np.concatenate(
                ([True], (np.diff(glob, axis=0) != 0).any(axis=1))
            )
        else:
            fresh = np.array([True])
        starts = np.flatnonzero(fresh)
        vals = np.add.reduceat(vals, starts)
        bc, ec = bc[starts], ec[starts]
        m = len(starts)
        bchange = np.flatnonzero((np.diff(bc, axis=0) != 0).any(axis=1)) + 1
        bstarts = np.concatenate(([0], bchange))
        bptr = np.concatenate((bstarts, [m])).astype(np.int64)
        binds = bc[bstarts].astype(index_dtype_for(self.shape))
        return HiCOOTensor(
            self.shape, self.block_size, bptr, binds,
            np.ascontiguousarray(ec), vals, check=False,
        )


@dataclass
class IngestResult:
    """Everything one ingestion-bench run measured."""

    config: IngestConfig
    records: list = field(default_factory=list)
    events: int = 0
    batches: int = 0
    evictions: int = 0
    queries: int = 0
    query_failures: int = 0
    churned: int = 0
    backpressure_stalls: int = 0
    queue_max_depth: int = 0
    duration_s: float = 0.0
    events_per_s: float = 0.0
    #: Enqueue-to-applied batch latency percentiles, seconds (or None).
    latency_s: "dict | None" = None
    #: (kernel, fmt) -> latency percentile dict, seconds.
    query_latency_s: dict = field(default_factory=dict)
    window_nnz: int = 0
    reblocks: int = 0
    reblock_cache_hits: int = 0
    #: The final live window (``None`` for a cache-served resume).
    state: "COOTensor | None" = None

    @property
    def from_cache(self) -> bool:
        return self.state is None

    def summary(self) -> dict:
        """The JSON-safe ingest summary stamped into ``PerfRecord.extra``."""
        return {
            "events": self.events,
            "batches": self.batches,
            "evictions": self.evictions,
            "queries": self.queries,
            "query_failures": self.query_failures,
            "churned_workers": self.churned,
            "backpressure_stalls": self.backpressure_stalls,
            "queue_max_depth": self.queue_max_depth,
            "duration_s": self.duration_s,
            "events_per_s": self.events_per_s,
            "latency_s": self.latency_s,
            "window_nnz": self.window_nnz,
            "reblocks": self.reblocks,
            "reblock_cache_hits": self.reblock_cache_hits,
            "workers": self.config.workers,
            "window": self.config.window,
            "eviction": self.config.eviction,
        }

    def as_dict(self) -> dict:
        return {
            "config": self.config.to_dict(),
            "fingerprint": self.config.fingerprint,
            "summary": self.summary(),
            "query_latency_s": {
                f"{k}/{f}": lat for (k, f), lat in self.query_latency_s.items()
            },
            "records": [r.to_dict() for r in self.records],
        }

    def render(self) -> str:
        cfg = self.config
        lat = self.latency_s or {}

        def ms(d, key):
            v = (d or {}).get(key)
            return f"{v * 1e3:8.2f}ms" if v is not None else "       --"

        lines = [
            f"ingest-bench {cfg.tensor_name}: {self.events} events in "
            f"{self.duration_s:.2f}s = {self.events_per_s / 1e3:.1f}k ev/s"
            + (" (cached)" if self.from_cache else ""),
            f"  batches {self.batches} of {cfg.batch} | window {cfg.window} "
            f"({cfg.eviction} eviction) | evictions {self.evictions} | "
            f"final nnz {self.window_nnz}",
            f"  ingest latency p50 {ms(lat, 'p50')} p95 {ms(lat, 'p95')} "
            f"p99 {ms(lat, 'p99')}",
            f"  queue depth max {self.queue_max_depth}/{cfg.queue_depth}, "
            f"backpressure stalls {self.backpressure_stalls}, "
            f"churned workers {self.churned}",
            f"  queries {self.queries} ({self.query_failures} failed), "
            f"window reblocks {self.reblocks} "
            f"(+{self.reblock_cache_hits} cache hits)",
        ]
        if self.query_latency_s:
            lines.append("  query latency:")
            for (kernel, fmt), qlat in sorted(self.query_latency_s.items()):
                rec = next(
                    (r for r in self.records
                     if r.kernel == kernel and r.fmt == fmt), None,
                )
                bf = ""
                if rec is not None:
                    frac = rec.extra.get("roofline", {}).get("bound_fraction")
                    if frac is not None:
                        bf = f"  bound_fraction {frac:.3f}"
                lines.append(
                    f"    {kernel}/{fmt:<6} p50 {ms(qlat, 'p50')} "
                    f"p95 {ms(qlat, 'p95')} p99 {ms(qlat, 'p99')}{bf}"
                )
        return "\n".join(lines)


class IngestBench:
    """One concurrent ingestion run (see module docstring for the wiring).

    Parameters
    ----------
    config:
        The scenario.
    query_backend:
        Backend executing the query kernels (default: the process
        default backend).  A :class:`~repro.parallel.chaos.ChaosBackend`
        here makes query scheduling adversarial; injected
        :class:`ChaosError` failures abort that query round only.
    apply_delay_s:
        Test hook — sleep this long per batch before applying, to force
        backpressure deterministically.
    """

    def __init__(
        self,
        config: IngestConfig,
        query_backend=None,
        apply_delay_s: float = 0.0,
    ):
        self.config = config
        self.query_backend = query_backend
        self.apply_delay_s = float(apply_delay_s)

    # -- worker/bench internals ---------------------------------------- #
    def _ingest_worker(self) -> None:
        cfg = self.config
        tracer = current_tracer()
        metrics = get_metrics()
        done = 0
        while True:
            try:
                item = self._queue.get(timeout=0.05)
            except queue.Empty:
                if self._stop.is_set():
                    return
                continue
            if item is _SENTINEL:
                # Re-broadcast so sibling and replacement workers drain
                # too (the generator is done by now, so the slot this get
                # freed cannot be stolen — the put cannot block).
                self._queue.put(_SENTINEL)
                return
            bid, t_enq, coords, values = item
            try:
                with self._slots.lease() as slot:
                    with tracer.span(
                        "ingest.batch", cat=CAT_REGION, bid=bid, slot=slot,
                        nevents=len(values),
                    ):
                        # Concurrent heavy lifting: coalesce + block split.
                        batch = COOTensor(cfg.shape, coords, values).coalesce()
                        part = self._blocker.decompose(batch)
                        if self.apply_delay_s:
                            time.sleep(self.apply_delay_s)
                        applied = self._apply(bid, coords, values, part)
                    if not applied:
                        return
                lat = time.perf_counter() - t_enq
                with self._stats_lock:
                    self._latencies.append(lat)
                metrics.inc("ingest.batches")
                metrics.inc("ingest.events", len(values))
                metrics.observe("ingest.batch_latency_seconds", lat)
            except BaseException as exc:  # noqa: BLE001 - relayed to run()
                self._fail(exc)
                return
            done += 1
            if cfg.worker_lifetime and done >= cfg.worker_lifetime:
                # Worker churn: retire this OS thread, hand the lineage to
                # a fresh one (slot leases make this identity-safe).
                t = threading.Thread(
                    target=self._ingest_worker, name="repro-ingest-churn",
                    daemon=True,
                )
                with self._threads_lock:
                    self._threads.append(t)
                    self._churned += 1
                t.start()
                return

    def _apply(self, bid, coords, values, part) -> bool:
        """Apply batch ``bid`` to the window, sequenced by batch id.

        The queue is FIFO, so in-flight batch ids are consecutive and the
        earliest waiter always equals ``next_bid`` — no deadlock.  Returns
        False when the run has failed and the worker should exit.
        """
        cfg = self.config
        metrics = get_metrics()
        with self._apply_cond:
            while self._next_bid != bid and self._failure is None:
                self._apply_cond.wait(timeout=1.0)
            if self._failure is not None:
                return False
            if cfg.fail_at_batch and bid + 1 >= cfg.fail_at_batch:
                raise IngestError(
                    f"injected ingest failure at batch {bid}"
                )
            self._window.push(coords, values)
            self._blocker.admit(bid, part)
            if bid >= cfg.window:
                self._blocker.evict(bid - cfg.window)
            self._next_bid = bid + 1
            nnz = self._window.state.nnz
            self._apply_cond.notify_all()
        metrics.set_gauge("ingest.window_nnz", nnz)
        return True

    def _fail(self, exc: BaseException) -> None:
        """Record the first failure and unwedge every blocked thread.

        Only the stop event and the condition broadcast are needed: the
        generator and the workers both poll ``_stop`` on a short timeout
        instead of blocking indefinitely on the queue, so nothing here
        may itself block (a blocking drain-and-poison would deadlock a
        depth-1 queue against a stalled generator).
        """
        with self._apply_cond:
            first = self._failure is None
            if first:
                self._failure = exc
            self._stop.set()
            self._apply_cond.notify_all()
        if first:
            _LOG.error(
                "ingest.failed",
                error=f"{type(exc).__name__}: {exc}",
                fingerprint=self.config.fingerprint,
            )

    def _put(self, item) -> bool:
        """Timed put that respects the stop event; False when stopped."""
        while not self._stop.is_set():
            try:
                self._queue.put(item, timeout=0.05)
                return True
            except queue.Full:
                continue
        return False

    def _generate(self) -> None:
        cfg = self.config
        try:
            stream = powerlaw_stream(
                cfg.events, cfg.shape, alpha=cfg.alpha,
                dense_modes=cfg.dense_modes, seed=cfg.seed, batch=cfg.batch,
            )
            for bid, (coords, values) in enumerate(stream):
                if self._stop.is_set():
                    return
                item = (bid, time.perf_counter(), coords, values)
                try:
                    self._queue.put_nowait(item)
                except queue.Full:
                    # Backpressure: the bounded queue is full, so the
                    # generator stalls (FireHose would drop here).
                    self._stalls += 1
                    get_metrics().inc("ingest.backpressure_stalls")
                    if not self._put(item):
                        return
                self._qmax = max(self._qmax, self._queue.qsize())
        except BaseException as exc:  # noqa: BLE001 - relayed to run()
            self._fail(exc)
            return
        finally:
            self._put(_SENTINEL)

    def _run_queries(self, collector: dict) -> None:
        cfg = self.config
        tracer = current_tracer()
        metrics = get_metrics()
        with self._apply_cond:
            snap = self._window.state
            version = self._window.version
        if snap.nnz == 0:
            return
        hic = self._blocker.snapshot(version)
        runners = {
            ("ttv", "coo"): lambda: coo_ttv(
                snap, self._vec, 0, self.query_backend
            ),
            ("ttv", "hicoo"): lambda: hicoo_ttv(
                hic, self._vec, 0, self.query_backend
            ),
            ("mttkrp", "coo"): lambda: coo_mttkrp(
                snap, self._mats, 0, self.query_backend, method="atomic"
            ),
            ("mttkrp", "hicoo"): lambda: hicoo_mttkrp(
                hic, self._mats, 0, self.query_backend, method="atomic"
            ),
        }
        for cell in QUERY_CELLS:
            kernel, fmt = cell
            t0 = time.perf_counter()
            try:
                with tracer.span(
                    "ingest.query", cat=CAT_KERNEL, kernel=kernel, fmt=fmt,
                    version=version, nnz=snap.nnz,
                ):
                    runners[cell]()
            except ChaosError:
                self._query_failures += 1
                metrics.inc("ingest.query_failures", kernel=kernel, fmt=fmt)
                _LOG.debug(
                    "ingest.query_failed", kernel=kernel, fmt=fmt,
                    version=version,
                )
                continue
            dt = time.perf_counter() - t0
            collector.setdefault(cell, []).append(dt)
            self._queries += 1
            metrics.inc("ingest.queries", kernel=kernel, fmt=fmt)
            metrics.observe("ingest.query_seconds", dt, kernel=kernel, fmt=fmt)

    def _workers_done(self) -> bool:
        with self._threads_lock:
            threads = list(self._threads)
        return all(not t.is_alive() for t in threads)

    # -- the run ------------------------------------------------------- #
    def run(self) -> IngestResult:
        cfg = self.config
        self._queue: queue.Queue = queue.Queue(maxsize=cfg.queue_depth)
        self._slots = SlotPool(cfg.workers)
        self._window = SlidingWindowTensor(
            cfg.shape, cfg.window, eviction=cfg.eviction
        )
        self._blocker = WindowBlocker(cfg.shape, cfg.block_size)
        self._apply_cond = threading.Condition()
        self._stats_lock = threading.Lock()
        self._threads_lock = threading.Lock()
        self._stop = threading.Event()
        self._next_bid = 0
        self._failure: "BaseException | None" = None
        self._latencies: list = []
        self._stalls = 0
        self._qmax = 0
        self._churned = 0
        self._queries = 0
        self._query_failures = 0

        qrng = rng_from_seed(cfg.case_seed)
        self._mats = [
            qrng.random((s, cfg.rank)).astype(np.float32) for s in cfg.shape
        ]
        self._vec = qrng.random(cfg.shape[0]).astype(np.float32)

        tracer = current_tracer()
        collector: dict = {}
        _LOG.info(
            "ingest.started", fingerprint=cfg.fingerprint, events=cfg.events,
            workers=cfg.workers, window=cfg.window, queue_depth=cfg.queue_depth,
        )
        t_start = time.perf_counter()
        with tracer.span(
            "ingest.run", cat=CAT_REGION, events=cfg.events,
            workers=cfg.workers, window=cfg.window,
        ):
            gen = threading.Thread(
                target=self._generate, name="repro-ingest-gen", daemon=True
            )
            self._threads = [
                threading.Thread(
                    target=self._ingest_worker, name=f"repro-ingest-{i}",
                    daemon=True,
                )
                for i in range(cfg.workers)
            ]
            for t in self._threads:
                t.start()
            gen.start()

            last_queried = 0
            while True:
                if self._workers_done() and not gen.is_alive():
                    break
                if cfg.query_every:
                    with self._apply_cond:
                        applied = self._next_bid
                    if applied - last_queried >= cfg.query_every:
                        last_queried = applied
                        self._run_queries(collector)
                        continue
                time.sleep(0.002)
            gen.join()
            while True:
                with self._threads_lock:
                    threads = list(self._threads)
                for t in threads:
                    t.join()
                if self._workers_done():
                    with self._threads_lock:
                        stable = len(self._threads) == len(threads)
                    if stable:
                        break
            if self._failure is not None:
                raise self._failure
            # Final query round: every enabled run measures the kernels on
            # the settled window at least once.
            if cfg.query_every:
                self._run_queries(collector)
        duration = time.perf_counter() - t_start

        result = IngestResult(
            config=cfg,
            events=cfg.events,
            batches=self._next_bid,
            evictions=self._window.evictions,
            queries=self._queries,
            query_failures=self._query_failures,
            churned=self._churned,
            backpressure_stalls=self._stalls,
            queue_max_depth=self._qmax,
            duration_s=duration,
            events_per_s=cfg.events / duration if duration > 0 else 0.0,
            latency_s=percentiles(self._latencies),
            query_latency_s={
                cell: percentiles(times) for cell, times in collector.items()
            },
            window_nnz=self._window.state.nnz,
            reblocks=self._blocker.reblocks,
            reblock_cache_hits=self._blocker.cache_hits,
            state=self._window.state,
        )
        result.records = self._build_records(result, collector)
        _LOG.info(
            "ingest.completed", fingerprint=cfg.fingerprint,
            events=result.events, batches=result.batches,
            events_per_s=round(result.events_per_s, 1),
            backpressure_stalls=result.backpressure_stalls,
            queries=result.queries, query_failures=result.query_failures,
        )
        return result

    def _build_records(self, result: IngestResult, collector: dict) -> list:
        cfg = self.config
        summary = result.summary()
        records = [
            PerfRecord(
                tensor=cfg.tensor_name,
                kernel="ingest",
                fmt="stream",
                platform=cfg.platform,
                flops=0.0,
                seconds=result.duration_s,
                gflops=0.0,
                bound_gflops=0.0,
                efficiency=0.0,
                host_seconds=result.duration_s,
                host_gflops=0.0,
                extra={"ingest": summary},
            )
        ]
        if not collector:
            return records
        final_hicoo = self._blocker.snapshot(self._window.version)
        features = extract_features(
            result.state, cfg.tensor_name, cfg.block_size, final_hicoo
        )
        model = RooflineModel(get_platform(cfg.platform))
        for (kernel, fmt), times in sorted(collector.items()):
            cost = cost_for(features, kernel, fmt, cfg.rank)
            host_s = float(np.median(times))
            attribution = attribute(model, cost, host_s, host_s)
            achieved = gflops(cost.flops, host_s)
            records.append(
                PerfRecord(
                    tensor=cfg.tensor_name,
                    kernel=kernel,
                    fmt=fmt,
                    platform=cfg.platform,
                    flops=float(cost.flops),
                    seconds=host_s,
                    gflops=achieved,
                    bound_gflops=attribution.bound_gflops,
                    efficiency=efficiency(achieved, attribution.bound_gflops),
                    host_seconds=host_s,
                    host_gflops=achieved,
                    extra={
                        "roofline": attribution.as_dict(),
                        "ingest": {
                            "query_count": len(times),
                            "query_latency_s": percentiles(times),
                            "events_per_s": summary["events_per_s"],
                            "latency_s": summary["latency_s"],
                        },
                    },
                )
            )
        return records


def verify_window_state(result: IngestResult) -> "tuple[bool, str]":
    """Check the run's final window against a serial replay.

    Bit-exact comparison (coordinates *and* float bit patterns) under
    exact eviction; tolerance-based under the lossy ``subtract`` mode.
    Returns ``(ok, detail)``.
    """
    if result.state is None:
        return True, "skipped (cache-served result carries no state)"
    want = reference_window_state(result.config)
    got = result.state
    if result.config.eviction != "exact":
        ok = got.allclose(want)
        return ok, "tolerance comparison (subtract eviction is lossy)"
    if got.shape != want.shape:
        return False, f"shape {got.shape} != {want.shape}"
    if not np.array_equal(got.indices, want.indices):
        return False, f"coordinate sets differ (nnz {got.nnz} vs {want.nnz})"
    if not np.array_equal(
        got.values.view(np.uint8), want.values.view(np.uint8)
    ):
        return False, "value bit patterns differ"
    return True, f"bit-exact ({got.nnz} nnz)"


def run_ingest_bench(
    config: IngestConfig,
    store=None,
    resume: bool = False,
    query_backend=None,
) -> IngestResult:
    """Run (or resume) one ingestion benchmark, optionally journaled.

    With ``store`` (a path or :class:`~repro.bench.runstore.RunStore`),
    every resulting :class:`PerfRecord` is journaled under a
    fingerprint derived from the config — the same append-only
    quarantine/resume discipline as ``repro sweep``: a failed run
    appends a quarantine line, a later successful run's record
    supersedes it, and ``resume=True`` serves a completed scenario
    straight from the journal without re-running.
    """
    from repro.bench.runstore import RunStore

    if store is not None and not isinstance(store, RunStore):
        store = RunStore(store)
    marker = config.store_case("ingest", "stream")
    if store is not None and resume and store.exists():
        state = store.load()
        line = state.records.get(marker.fingerprint)
        if line is not None:
            _LOG.info(
                "ingest.resumed_from_store", fingerprint=config.fingerprint,
            )
            prefix = f"{config.fingerprint}:"
            records = [
                PerfRecord.from_dict(state.records[fp]["record"])
                for fp in sorted(state.records)
                if fp.startswith(prefix)
            ]
            summary = line["record"].get("extra", {}).get("ingest", {})
            result = IngestResult(config=config, records=records)
            for key in (
                "events", "batches", "evictions", "queries",
                "query_failures", "backpressure_stalls", "queue_max_depth",
                "window_nnz", "reblocks", "reblock_cache_hits",
            ):
                if key in summary:
                    setattr(result, key, summary[key])
            result.churned = summary.get("churned_workers", 0)
            result.duration_s = summary.get("duration_s", 0.0)
            result.events_per_s = summary.get("events_per_s", 0.0)
            result.latency_s = summary.get("latency_s")
            result.query_latency_s = {
                (r.kernel, r.fmt): r.extra["ingest"]["query_latency_s"]
                for r in records
                if r.kernel != "ingest" and "ingest" in r.extra
            }
            return result

    bench = IngestBench(config, query_backend=query_backend)
    t0 = time.perf_counter()
    try:
        result = bench.run()
    except Exception as exc:
        if store is not None:
            _LOG.warn(
                "ingest.quarantined", fingerprint=config.fingerprint,
                error=f"{type(exc).__name__}: {exc}",
            )
            store.append_quarantine(
                marker,
                [{
                    "attempt": 0,
                    "kind": "error",
                    "detail": f"{type(exc).__name__}: {exc}",
                    "elapsed_s": time.perf_counter() - t0,
                }],
            )
        raise
    if store is not None:
        for record in result.records:
            case = config.store_case(record.kernel, record.fmt)
            store.append_record(case, record, attempt=0, elapsed_s=result.duration_s)
    return result
