"""Tensor reordering for locality (Li et al., ICS'19, cited by the paper).

The paper notes that the irregular vector/matrix accesses of Ttv/Ttm/
Mttkrp "could be improved due to reductions in memory pressure" if the
access "gains a good localized pattern ... from reordering techniques".
Reordering relabels the indices of each mode; the tensor is mathematically
a permuted copy, but clustered non-zeros fill HiCOO blocks more densely
(higher alpha, fewer blocks) and gather from hotter cache lines.

Three reference strategies:

* :func:`random_reorder`  — the control (destroys any natural order);
* :func:`degree_reorder`  — hub-first: relabel by decreasing slice nnz,
  concentrating the power-law mass at low indices;
* :func:`lexi_reorder`    — Lexi-Order-style alternating lexicographic
  sweeps: each mode is relabeled by the sorted order of its slices'
  non-zero patterns, iterated a few rounds, clustering similar slices.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.sptensor.coo import COOTensor
from repro.sptensor.hicoo import HiCOOTensor
from repro.util.prng import rng_from_seed
from repro.util.validation import check_mode


def apply_permutations(
    tensor: COOTensor, perms: dict[int, np.ndarray]
) -> COOTensor:
    """Relabel indices: new index on mode ``m`` is ``perms[m][old]``.

    Each permutation array maps old index -> new index and must be a
    bijection on ``range(shape[m])``.
    """
    inds = tensor.indices.astype(np.int64, copy=True)
    for mode, perm in perms.items():
        mode = check_mode(mode, tensor.nmodes)
        perm = np.asarray(perm, dtype=np.int64)
        if perm.shape != (tensor.shape[mode],):
            raise ValueError(
                f"permutation for mode {mode} must have length "
                f"{tensor.shape[mode]}, got {perm.shape}"
            )
        inds[:, mode] = perm[inds[:, mode]]
    return COOTensor(tensor.shape, inds, tensor.values, copy=False, check=True)


def random_reorder(
    tensor: COOTensor,
    modes: Sequence[int] | None = None,
    seed: "int | None" = 0,
) -> tuple[COOTensor, dict[int, np.ndarray]]:
    """Random relabeling of the given modes (default: all)."""
    rng = rng_from_seed(seed)
    modes = range(tensor.nmodes) if modes is None else modes
    perms = {
        check_mode(m, tensor.nmodes): rng.permutation(tensor.shape[m])
        for m in modes
    }
    return apply_permutations(tensor, perms), perms


def degree_reorder(
    tensor: COOTensor, modes: Sequence[int] | None = None
) -> tuple[COOTensor, dict[int, np.ndarray]]:
    """Relabel each mode by decreasing slice non-zero count (hubs first)."""
    modes = range(tensor.nmodes) if modes is None else modes
    perms = {}
    for m in modes:
        m = check_mode(m, tensor.nmodes)
        counts = np.bincount(
            tensor.indices[:, m].astype(np.int64), minlength=tensor.shape[m]
        )
        order = np.argsort(-counts, kind="stable")  # old indices, hot first
        perm = np.empty(tensor.shape[m], dtype=np.int64)
        perm[order] = np.arange(tensor.shape[m])
        perms[m] = perm
    return apply_permutations(tensor, perms), perms


def lexi_reorder(
    tensor: COOTensor, sweeps: int = 3
) -> tuple[COOTensor, dict[int, np.ndarray]]:
    """Alternating lexicographic relabeling (Lexi-Order-like).

    Each sweep relabels one mode by the lexicographic order of its
    slices' non-zero coordinate sets (approximated by the minimum
    linearized coordinate per slice, a cheap stand-in that clusters
    slices sharing low coordinates), cycling over the modes.
    """
    work = tensor.copy()
    total: dict[int, np.ndarray] = {
        m: np.arange(tensor.shape[m], dtype=np.int64)
        for m in range(tensor.nmodes)
    }
    for sweep in range(sweeps):
        mode = sweep % tensor.nmodes
        rest = [m for m in range(tensor.nmodes) if m != mode]
        lin = np.zeros(work.nnz, dtype=np.int64)
        for m in rest:
            lin = lin * np.int64(work.shape[m]) + work.indices[:, m].astype(np.int64)
        # key per slice: (min linearized rest-coordinate, -nnz)
        size = work.shape[mode]
        min_key = np.full(size, np.iinfo(np.int64).max)
        np.minimum.at(min_key, work.indices[:, mode].astype(np.int64), lin)
        counts = np.bincount(
            work.indices[:, mode].astype(np.int64), minlength=size
        )
        order = np.lexsort((-counts, min_key))
        perm = np.empty(size, dtype=np.int64)
        perm[order] = np.arange(size)
        work = apply_permutations(work, {mode: perm})
        total[mode] = perm[total[mode]]
    return work, total


def blocking_quality(tensor: COOTensor, block_size: int = 128) -> dict:
    """HiCOO blocking metrics used to score a reordering: fewer blocks and
    higher average occupancy (alpha) mean better locality."""
    h = HiCOOTensor.from_coo(tensor, block_size)
    nnzb = h.nnz_per_block()
    return {
        "nblocks": h.nblocks,
        "alpha": float(nnzb.mean()) if len(nnzb) else 0.0,
        "hicoo_bytes": h.nbytes,
        "compression": h.compression_ratio(),
    }
