"""Semi-sparse HiCOO (sHiCOO) — this paper's variant for dense-mode tensors.

sHiCOO is to HiCOO what sCOO is to COO (paper Fig. 2(c)): the sparse modes
are block-compressed with Morton-ordered blocks, 32-bit block indices and
8-bit element indices, while each entry carries a dense sub-block of values
covering the dense mode(s).  HiCOO-Ttm pre-allocates its output in this
format.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import FormatError, ShapeError
from repro.types import (
    BPTR_BYTES,
    DEFAULT_BLOCK_SIZE,
    EINDEX_BYTES,
    EINDEX_DTYPE,
    INDEX_BYTES,
    VALUE_BYTES,
    index_dtype_for,
)
from repro.sptensor.coo import COOTensor
from repro.sptensor.hicoo import _hicoo_sort_order
from repro.sptensor.scoo import SemiCOOTensor
from repro.util.bits import is_pow2
from repro.util.validation import check_mode, check_shape


class SemiHiCOOTensor:
    """Semi-sparse tensor with block-compressed sparse modes.

    ``values`` has shape ``(M, *dense_shape)`` like :class:`SemiCOOTensor`;
    ``binds``/``einds`` cover only the sparse modes, grouped by ``bptr``.
    """

    __slots__ = (
        "shape",
        "block_size",
        "dense_modes",
        "sparse_modes",
        "bptr",
        "binds",
        "einds",
        "values",
    )

    def __init__(
        self,
        shape: Sequence[int],
        block_size: int,
        dense_modes: Sequence[int],
        bptr: np.ndarray,
        binds: np.ndarray,
        einds: np.ndarray,
        values: np.ndarray,
        *,
        check: bool = True,
    ):
        self.shape = check_shape(shape)
        n = len(self.shape)
        dm = tuple(sorted(check_mode(m, n) for m in dense_modes))
        if len(set(dm)) != len(dm) or len(dm) == 0 or len(dm) >= n:
            raise FormatError(
                f"dense_modes must be a non-empty proper subset, got {dense_modes}"
            )
        if not is_pow2(block_size) or not (1 <= block_size <= 256):
            raise FormatError(
                f"block size must be a power of two in [1, 256], got {block_size}"
            )
        self.block_size = int(block_size)
        self.dense_modes = dm
        self.sparse_modes = tuple(m for m in range(n) if m not in dm)
        self.bptr = np.asarray(bptr, dtype=np.int64)
        self.binds = np.asarray(binds)
        self.einds = np.asarray(einds, dtype=EINDEX_DTYPE)
        self.values = np.asarray(values)
        if check:
            self._validate()

    def _validate(self) -> None:
        ns = len(self.sparse_modes)
        if self.binds.ndim != 2 or self.binds.shape[1] != ns:
            raise ShapeError(f"binds must be (nb, {ns}), got {self.binds.shape}")
        if self.einds.ndim != 2 or self.einds.shape[1] != ns:
            raise ShapeError(f"einds must be (M, {ns}), got {self.einds.shape}")
        dense_shape = tuple(self.shape[m] for m in self.dense_modes)
        if self.values.shape != (self.einds.shape[0],) + dense_shape:
            raise ShapeError(
                f"values must be (M, {dense_shape}), got {self.values.shape}"
            )
        if self.bptr[0] != 0 or self.bptr[-1] != self.einds.shape[0]:
            raise ShapeError("bptr must span [0, M]")

    # ------------------------------------------------------------------ #
    @property
    def nmodes(self) -> int:
        return len(self.shape)

    @property
    def nnz_sparse(self) -> int:
        return self.einds.shape[0]

    @property
    def nnz(self) -> int:
        block = 1
        for m in self.dense_modes:
            block *= self.shape[m]
        return self.nnz_sparse * block

    @property
    def nblocks(self) -> int:
        return self.binds.shape[0]

    @property
    def dense_shape(self) -> tuple[int, ...]:
        return tuple(self.shape[m] for m in self.dense_modes)

    @property
    def nbytes(self) -> int:
        ns = len(self.sparse_modes)
        return (
            self.nblocks * (BPTR_BYTES + ns * INDEX_BYTES)
            + self.nnz_sparse * ns * EINDEX_BYTES
            + self.nnz * VALUE_BYTES
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SemiHiCOOTensor(shape={self.shape}, dense_modes={self.dense_modes}, "
            f"sparse_nnz={self.nnz_sparse}, nblocks={self.nblocks})"
        )

    # ------------------------------------------------------------------ #
    @classmethod
    def from_scoo(
        cls, tensor: SemiCOOTensor, block_size: int = DEFAULT_BLOCK_SIZE
    ) -> "SemiHiCOOTensor":
        """Block-compress the sparse coordinates of an sCOO tensor."""
        b = np.int64(block_size)
        inds = tensor.indices.astype(np.int64, copy=False)
        bcoords = inds // b
        ecoords = (inds - bcoords * b).astype(EINDEX_DTYPE)
        perm = _hicoo_sort_order(bcoords, ecoords)
        bcoords = bcoords[perm]
        ecoords = np.ascontiguousarray(ecoords[perm])
        values = tensor.values[perm]
        m = tensor.nnz_sparse
        idt = index_dtype_for(tensor.shape)
        if m == 0:
            return cls(
                tensor.shape,
                block_size,
                tensor.dense_modes,
                np.zeros(1, dtype=np.int64),
                np.empty((0, len(tensor.sparse_modes)), dtype=idt),
                np.empty((0, len(tensor.sparse_modes)), dtype=EINDEX_DTYPE),
                values,
                check=False,
            )
        change = np.flatnonzero((np.diff(bcoords, axis=0) != 0).any(axis=1)) + 1
        starts = np.concatenate(([0], change))
        bptr = np.concatenate((starts, [m])).astype(np.int64)
        binds = bcoords[starts].astype(idt)
        return cls(
            tensor.shape, block_size, tensor.dense_modes, bptr, binds, ecoords,
            values, check=False,
        )

    def to_scoo(self) -> SemiCOOTensor:
        """Expand block/element indices back to full sparse coordinates."""
        bid = np.repeat(np.arange(self.nblocks, dtype=np.int64), np.diff(self.bptr))
        inds = (
            self.binds[bid].astype(np.int64) * np.int64(self.block_size)
            + self.einds.astype(np.int64)
        )
        return SemiCOOTensor(
            self.shape, self.dense_modes, inds, self.values, check=False
        )

    def to_coo(self, drop_zeros: bool = True) -> COOTensor:
        return self.to_scoo().to_coo(drop_zeros=drop_zeros)

    def to_dense(self) -> np.ndarray:
        return self.to_scoo().to_dense()
