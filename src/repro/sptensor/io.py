"""Tensor file I/O: FROSTT ``.tns`` text format and a fast binary format.

The FROSTT convention is one non-zero per line — N whitespace-separated
**1-based** indices followed by the value — with optional ``#`` comments.
The dimension sizes are not stored in the file; readers either accept them
explicitly or infer them from the maximum index per mode (FROSTT's own
convention).  The binary format is an ``.npz`` bundle that round-trips the
exact arrays, used to cache generated datasets between benchmark runs.
"""

from __future__ import annotations

import io as _io
import os
from typing import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.sptensor.coo import COOTensor


def write_tns(tensor: COOTensor, path) -> None:
    """Write a COO tensor in FROSTT ``.tns`` format (1-based indices)."""
    inds = tensor.indices.astype(np.int64) + 1
    with open(path, "w") as fh:
        fh.write(f"# shape: {' '.join(str(s) for s in tensor.shape)}\n")
        for row, val in zip(inds, tensor.values):
            fh.write(" ".join(str(int(i)) for i in row))
            fh.write(f" {float(val):.9g}\n")


def read_tns(path, shape: Sequence[int] | None = None) -> COOTensor:
    """Read a FROSTT ``.tns`` file.

    If ``shape`` is omitted, it is recovered from a ``# shape:`` header
    comment when present, otherwise inferred as the per-mode maximum index.
    """
    header_shape: tuple[int, ...] | None = None
    rows: list[list[float]] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            if line.startswith("#"):
                body = line[1:].strip()
                if body.lower().startswith("shape:"):
                    header_shape = tuple(
                        int(tok) for tok in body[len("shape:"):].split()
                    )
                continue
            rows.append([float(tok) for tok in line.split()])
    if not rows:
        if shape is None and header_shape is None:
            raise ShapeError(f"empty .tns file {path} and no shape given")
        return COOTensor.empty(shape or header_shape)
    arr = np.asarray(rows, dtype=np.float64)
    ncols = arr.shape[1]
    if ncols < 2:
        raise ShapeError(f"malformed .tns line with {ncols} fields in {path}")
    inds = arr[:, :-1].astype(np.int64) - 1
    vals = arr[:, -1].astype(np.float32)
    if (inds < 0).any():
        raise ShapeError(f"{path} contains zero or negative 1-based indices")
    if shape is None:
        shape = header_shape or tuple(int(x) + 1 for x in inds.max(axis=0))
    if len(shape) != ncols - 1:
        raise ShapeError(
            f"shape {shape} has {len(shape)} modes but file has {ncols - 1}"
        )
    return COOTensor(shape, inds, vals, copy=False)


def save_npz(tensor: COOTensor, path) -> None:
    """Save a COO tensor to the binary ``.npz`` cache format."""
    np.savez_compressed(
        path,
        shape=np.asarray(tensor.shape, dtype=np.int64),
        indices=tensor.indices,
        values=tensor.values,
    )


def load_npz(path) -> COOTensor:
    """Load a COO tensor written by :func:`save_npz`."""
    with np.load(path) as data:
        return COOTensor(
            tuple(int(s) for s in data["shape"]),
            data["indices"],
            data["values"],
            copy=True,
            check=False,
        )


def save_hicoo_npz(tensor, path) -> None:
    """Cache a HiCOO tensor (conversion is the expensive step for big
    tensors; benchmark drivers reload instead of re-blocking)."""
    np.savez_compressed(
        path,
        kind=np.asarray("hicoo"),
        shape=np.asarray(tensor.shape, dtype=np.int64),
        block_size=np.asarray(tensor.block_size, dtype=np.int64),
        bptr=tensor.bptr,
        binds=tensor.binds,
        einds=tensor.einds,
        values=tensor.values,
    )


def load_hicoo_npz(path):
    """Load a HiCOO tensor written by :func:`save_hicoo_npz`."""
    from repro.sptensor.hicoo import HiCOOTensor

    with np.load(path) as data:
        if str(data["kind"]) != "hicoo":
            raise ShapeError(f"{path} is not a HiCOO cache file")
        return HiCOOTensor(
            tuple(int(s) for s in data["shape"]),
            int(data["block_size"]),
            data["bptr"],
            data["binds"],
            data["einds"],
            data["values"],
            check=False,
        )


def save_csf_npz(tensor, path) -> None:
    """Cache a CSF tensor (tree arrays flattened per level)."""
    payload = {
        "kind": np.asarray("csf"),
        "shape": np.asarray(tensor.shape, dtype=np.int64),
        "mode_order": np.asarray(tensor.mode_order, dtype=np.int64),
        "values": tensor.values,
        "nlevels": np.asarray(tensor.nmodes, dtype=np.int64),
    }
    for lvl, fids in enumerate(tensor.fids):
        payload[f"fids{lvl}"] = fids
    for lvl, fptr in enumerate(tensor.fptr):
        payload[f"fptr{lvl}"] = fptr
    np.savez_compressed(path, **payload)


def load_csf_npz(path):
    """Load a CSF tensor written by :func:`save_csf_npz`."""
    from repro.sptensor.csf import CSFTensor

    with np.load(path) as data:
        if str(data["kind"]) != "csf":
            raise ShapeError(f"{path} is not a CSF cache file")
        n = int(data["nlevels"])
        return CSFTensor(
            tuple(int(s) for s in data["shape"]),
            tuple(int(m) for m in data["mode_order"]),
            [data[f"fptr{lvl}"] for lvl in range(n - 1)],
            [data[f"fids{lvl}"] for lvl in range(n)],
            data["values"],
            check=False,
        )


def tns_dumps(tensor: COOTensor) -> str:
    """Render the ``.tns`` text for a tensor (testing/debug aid)."""
    buf = _io.StringIO()
    inds = tensor.indices.astype(np.int64) + 1
    buf.write(f"# shape: {' '.join(str(s) for s in tensor.shape)}\n")
    for row, val in zip(inds, tensor.values):
        buf.write(" ".join(str(int(i)) for i in row))
        buf.write(f" {float(val):.9g}\n")
    return buf.getvalue()


def ensure_dir(path) -> None:
    """Create the directory for ``path`` if missing (benchmark cache aid)."""
    d = os.path.dirname(os.fspath(path))
    if d:
        os.makedirs(d, exist_ok=True)
