"""Compressed Sparse Fiber (CSF) format (Smith et al., IPDPS'15).

The paper lists CSF as the next format to be added to the suite ("CSF will
be considered for our benchmark suite in the near future"); we include it
as the suite's extension format.  CSF stores a sparse tensor as a forest:
level 0 holds the distinct indices of the first mode in ``mode_order``,
each deeper level holds the distinct child indices underneath each parent
fiber, and the leaves carry values.  Unlike COO/HiCOO it is mode-*specific*
— a tree built for one mode order favors computations rooted at that mode.

Arrays per level ``l`` (0-based):

* ``fids[l]``  — node indices at level ``l``;
* ``fptr[l]``  — for ``l < N-1``: child range of each level-``l`` node.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.types import INDEX_BYTES, VALUE_BYTES, index_dtype_for
from repro.sptensor.coo import COOTensor
from repro.util.validation import check_mode


class CSFTensor:
    """A sparse tensor stored as a compressed fiber tree."""

    __slots__ = ("shape", "mode_order", "fptr", "fids", "values")

    def __init__(
        self,
        shape: Sequence[int],
        mode_order: Sequence[int],
        fptr: list,
        fids: list,
        values: np.ndarray,
        *,
        check: bool = True,
    ):
        self.shape = tuple(int(s) for s in shape)
        n = len(self.shape)
        order = tuple(check_mode(m, n) for m in mode_order)
        if sorted(order) != list(range(n)):
            raise ShapeError(f"mode_order must permute 0..{n-1}, got {mode_order}")
        self.mode_order = order
        self.fptr = [np.asarray(p, dtype=np.int64) for p in fptr]
        self.fids = [np.asarray(f) for f in fids]
        self.values = np.asarray(values)
        if check:
            self._validate()

    def _validate(self) -> None:
        n = len(self.shape)
        if len(self.fids) != n:
            raise ShapeError(f"need {n} fid levels, got {len(self.fids)}")
        if len(self.fptr) != n - 1:
            raise ShapeError(f"need {n - 1} fptr levels, got {len(self.fptr)}")
        for lvl in range(n - 1):
            if len(self.fptr[lvl]) != len(self.fids[lvl]) + 1:
                raise ShapeError(f"fptr[{lvl}] must have len(fids[{lvl}])+1 entries")
            if self.fptr[lvl][-1] != len(self.fids[lvl + 1]):
                raise ShapeError(f"fptr[{lvl}] must span level {lvl + 1}")
        if len(self.values) != len(self.fids[-1]):
            raise ShapeError("values must align with the leaf level")

    # ------------------------------------------------------------------ #
    @property
    def nmodes(self) -> int:
        return len(self.shape)

    @property
    def nnz(self) -> int:
        return self.values.shape[0]

    @property
    def nbytes(self) -> int:
        """32-bit fids + 64-bit fptr + 32-bit values."""
        total = self.nnz * VALUE_BYTES
        for f in self.fids:
            total += len(f) * INDEX_BYTES
        for p in self.fptr:
            total += len(p) * 8
        return total

    def nodes_per_level(self) -> tuple[int, ...]:
        return tuple(len(f) for f in self.fids)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"CSFTensor(shape={self.shape}, nnz={self.nnz}, "
            f"mode_order={self.mode_order}, levels={self.nodes_per_level()})"
        )

    # ------------------------------------------------------------------ #
    @classmethod
    def from_coo(
        cls, tensor: COOTensor, mode_order: Sequence[int] | None = None
    ) -> "CSFTensor":
        """Build the fiber tree for ``mode_order`` (default: natural order)."""
        n = tensor.nmodes
        if mode_order is None:
            mode_order = tuple(range(n))
        order = tuple(check_mode(m, n) for m in mode_order)
        t = tensor.coalesce() if tensor.has_duplicates() else tensor.copy()
        t.sort(order)
        m = t.nnz
        idt = index_dtype_for(tensor.shape)
        if m == 0:
            return cls(
                tensor.shape,
                order,
                [np.zeros(1, dtype=np.int64) for _ in range(n - 1)],
                [np.empty(0, dtype=idt) for _ in range(n)],
                t.values,
                check=False,
            )
        cols = [t.indices[:, mo].astype(np.int64) for mo in order]
        fids: list[np.ndarray] = []
        fptr: list[np.ndarray] = []
        # Prefix keys: a node at level l is a distinct (cols[0..l]) prefix.
        # Walk levels top-down, tracking for each entry its level-l group id.
        prev_group = np.zeros(m, dtype=np.int64)  # all entries under one root run
        prev_ngroups = 1
        for lvl in range(n):
            # New group whenever the parent group or this level's index changes.
            change = np.zeros(m, dtype=bool)
            change[0] = True
            change[1:] = (np.diff(prev_group) != 0) | (np.diff(cols[lvl]) != 0)
            starts = np.flatnonzero(change)
            group = np.cumsum(change) - 1
            fids.append(cols[lvl][starts].astype(idt))
            if lvl > 0:
                # fptr of the parent level: first child node of each parent.
                parent_of_node = prev_group[starts]
                ptr = np.searchsorted(parent_of_node, np.arange(prev_ngroups + 1))
                fptr.append(ptr.astype(np.int64))
            prev_group = group
            prev_ngroups = len(starts)
        return cls(tensor.shape, order, fptr, fids, t.values.copy(), check=False)

    def to_coo(self) -> COOTensor:
        """Expand the tree back to coordinates."""
        n = self.nmodes
        m = self.nnz
        if m == 0:
            return COOTensor.empty(self.shape, dtype=self.values.dtype)
        # Propagate each level's fids down to the leaves.
        inds = np.empty((m, n), dtype=np.int64)
        # counts of leaves under each node, computed bottom-up.
        leaf_counts = [np.ones(len(self.fids[-1]), dtype=np.int64)]
        for lvl in range(n - 2, -1, -1):
            ptr = self.fptr[lvl]
            child = leaf_counts[0]
            sums = np.add.reduceat(child, ptr[:-1])
            sums[np.diff(ptr) == 0] = 0
            leaf_counts.insert(0, sums)
        for lvl in range(n):
            expanded = np.repeat(self.fids[lvl].astype(np.int64), leaf_counts[lvl])
            inds[:, self.mode_order[lvl]] = expanded
        return COOTensor(self.shape, inds, self.values, copy=True, check=False)
