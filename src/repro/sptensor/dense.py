"""Dense tensor algebra helpers: matricization, folding, Khatri-Rao.

These implement the textbook (Kolda & Bader, 2009) definitions used by the
dense reference kernels that validate the sparse implementations, and by
the tensor-method examples (CP-ALS, tensor power method).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ShapeError
from repro.util.validation import check_mode


def unfold(tensor: np.ndarray, mode: int) -> np.ndarray:
    """Mode-``n`` matricization ``X_(n)`` of a dense tensor.

    Rows are indexed by mode ``n``; columns enumerate the remaining modes
    with the *lowest* remaining mode varying slowest (row-major over the
    remaining modes), matching the Khatri-Rao column convention used by
    :func:`khatri_rao_reverse` in Mttkrp:
    ``U~(n) = X_(n) (U(N) ⊙ ... ⊙ U(n+1) ⊙ U(n-1) ⊙ ... ⊙ U(1))``.
    """
    tensor = np.asarray(tensor)
    mode = check_mode(mode, tensor.ndim)
    return np.moveaxis(tensor, mode, 0).reshape(tensor.shape[mode], -1)


def fold(matrix: np.ndarray, mode: int, shape) -> np.ndarray:
    """Inverse of :func:`unfold`: rebuild the dense tensor."""
    shape = tuple(int(s) for s in shape)
    mode = check_mode(mode, len(shape))
    rest = tuple(s for i, s in enumerate(shape) if i != mode)
    if matrix.shape != (shape[mode], int(np.prod(rest)) if rest else 1):
        raise ShapeError(
            f"matrix shape {matrix.shape} does not fold into {shape} at mode {mode}"
        )
    return np.moveaxis(matrix.reshape((shape[mode],) + rest), 0, mode)


def khatri_rao(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Column-wise Kronecker (Khatri-Rao) product ``C = A ⊙ B``.

    ``A`` is ``(I, R)``, ``B`` is ``(J, R)``; the result is ``(I*J, R)``
    with ``C[:, r] = kron(A[:, r], B[:, r])``.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[1]:
        raise ShapeError(
            f"Khatri-Rao needs matching column counts: {a.shape} vs {b.shape}"
        )
    i, r = a.shape
    j, _ = b.shape
    return (a[:, None, :] * b[None, :, :]).reshape(i * j, r)


def khatri_rao_list(mats) -> np.ndarray:
    """Left-to-right Khatri-Rao product of a list of matrices."""
    mats = list(mats)
    if not mats:
        raise ShapeError("khatri_rao_list needs at least one matrix")
    out = np.asarray(mats[0])
    for m in mats[1:]:
        out = khatri_rao(out, np.asarray(m))
    return out


def mttkrp_khatri_rao_operand(mats, mode: int) -> np.ndarray:
    """The Khatri-Rao chain for mode-``n`` Mttkrp (paper Eq. 5):
    ``U(N) ⊙ ... ⊙ U(n+1) ⊙ U(n-1) ⊙ ... ⊙ U(1)``.

    Combined with :func:`unfold`'s column convention, multiplying
    ``unfold(X, mode) @ result`` realizes the dense Mttkrp.
    """
    n = len(mats)
    mode = check_mode(mode, n)
    others = [np.asarray(mats[m]) for m in range(n) if m != mode]
    # unfold() enumerates remaining modes row-major (lowest mode slowest),
    # which corresponds to chaining the Khatri-Rao from the lowest mode
    # outward on the *left*: U(1) ⊙-position slowest ⇒ reverse order here.
    return khatri_rao_list(others)


def outer(vectors) -> np.ndarray:
    """Outer product of a list of vectors → rank-1 dense tensor."""
    vectors = [np.asarray(v) for v in vectors]
    out = vectors[0]
    for v in vectors[1:]:
        out = np.multiply.outer(out, v)
    return out
