"""Sparse tensor formats: COO, sCOO, HiCOO, gHiCOO, sHiCOO, CSF."""

from repro.sptensor.bcsf import BCSFTensor, VirtualRoot, bcsf_mttkrp
from repro.sptensor.coo import COOTensor, FiberIndex, stack_entries
from repro.sptensor.convert import as_format, to_coo
from repro.sptensor.csf import CSFTensor
from repro.sptensor.dense import (
    fold,
    khatri_rao,
    khatri_rao_list,
    mttkrp_khatri_rao_operand,
    outer,
    unfold,
)
from repro.sptensor.ghicoo import GHiCOOTensor
from repro.sptensor.hicoo import HiCOOTensor
from repro.sptensor.io import (
    load_csf_npz,
    load_hicoo_npz,
    load_npz,
    read_tns,
    save_csf_npz,
    save_hicoo_npz,
    save_npz,
    tns_dumps,
    write_tns,
)
from repro.sptensor.properties import (
    BlockStats,
    FiberStats,
    TensorSummary,
    block_stats,
    fiber_stats,
    mode_fill,
    nnz_per_slice,
    summarize,
)
from repro.sptensor.reorder import (
    apply_permutations,
    blocking_quality,
    degree_reorder,
    lexi_reorder,
    random_reorder,
)
from repro.sptensor.scoo import SemiCOOTensor
from repro.sptensor.shicoo import SemiHiCOOTensor

__all__ = [
    "COOTensor",
    "FiberIndex",
    "stack_entries",
    "HiCOOTensor",
    "GHiCOOTensor",
    "SemiCOOTensor",
    "SemiHiCOOTensor",
    "CSFTensor",
    "BCSFTensor",
    "VirtualRoot",
    "bcsf_mttkrp",
    "as_format",
    "to_coo",
    "unfold",
    "fold",
    "khatri_rao",
    "khatri_rao_list",
    "mttkrp_khatri_rao_operand",
    "outer",
    "read_tns",
    "write_tns",
    "tns_dumps",
    "save_npz",
    "load_npz",
    "save_hicoo_npz",
    "load_hicoo_npz",
    "save_csf_npz",
    "load_csf_npz",
    "FiberStats",
    "BlockStats",
    "TensorSummary",
    "fiber_stats",
    "block_stats",
    "summarize",
    "nnz_per_slice",
    "mode_fill",
    "apply_permutations",
    "random_reorder",
    "degree_reorder",
    "lexi_reorder",
    "blocking_quality",
]
