"""Structural statistics of sparse tensors.

The paper's analysis (Table 1, Observations 1-5) is driven by a handful of
tensor features: non-zero count ``M``, fiber count ``MF`` per mode, block
count ``nb`` and per-block occupancy for HiCOO, density, and mode-size
skew.  This module computes them uniformly so the roofline/OI machinery,
the GPU cost model and the dataset surrogates all agree on definitions.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sptensor.coo import COOTensor
from repro.sptensor.hicoo import HiCOOTensor
from repro.util.validation import check_mode


@dataclass(frozen=True)
class FiberStats:
    """Distribution of non-zeros over the mode-``n`` fibers of a tensor."""

    mode: int
    nfibers: int
    mean_len: float
    max_len: int
    min_len: int
    std_len: float

    @property
    def imbalance(self) -> float:
        """``max / mean`` — 1.0 is perfectly balanced."""
        return self.max_len / self.mean_len if self.mean_len else 1.0


def fiber_stats(tensor: COOTensor, mode: int) -> FiberStats:
    """Fiber-length distribution along ``mode`` (drives Ttv/Ttm balance)."""
    mode = check_mode(mode, tensor.nmodes)
    lengths = tensor.fiber_index(mode).fiber_lengths()
    if len(lengths) == 0:
        return FiberStats(mode, 0, 0.0, 0, 0, 0.0)
    return FiberStats(
        mode=mode,
        nfibers=int(len(lengths)),
        mean_len=float(lengths.mean()),
        max_len=int(lengths.max()),
        min_len=int(lengths.min()),
        std_len=float(lengths.std()),
    )


@dataclass(frozen=True)
class BlockStats:
    """Distribution of non-zeros over HiCOO blocks."""

    nblocks: int
    block_size: int
    mean_nnz: float
    max_nnz: int
    min_nnz: int

    @property
    def imbalance(self) -> float:
        return self.max_nnz / self.mean_nnz if self.mean_nnz else 1.0

    @property
    def alpha(self) -> float:
        """Average non-zeros per block (HiCOO paper's occupancy metric);
        hyper-sparse tensors have alpha close to 1, where HiCOO loses."""
        return self.mean_nnz


def block_stats(tensor: HiCOOTensor) -> BlockStats:
    nnzb = tensor.nnz_per_block()
    if len(nnzb) == 0:
        return BlockStats(0, tensor.block_size, 0.0, 0, 0)
    return BlockStats(
        nblocks=int(len(nnzb)),
        block_size=tensor.block_size,
        mean_nnz=float(nnzb.mean()),
        max_nnz=int(nnzb.max()),
        min_nnz=int(nnzb.min()),
    )


@dataclass(frozen=True)
class TensorSummary:
    """The per-tensor feature vector used throughout the harness."""

    name: str
    order: int
    shape: tuple[int, ...]
    nnz: int
    density: float
    fibers_per_mode: tuple[int, ...]
    max_fiber_imbalance: float

    @property
    def avg_fibers(self) -> float:
        """Mean ``MF`` across modes (kernels average over modes)."""
        return float(np.mean(self.fibers_per_mode)) if self.fibers_per_mode else 0.0


def summarize(tensor: COOTensor, name: str = "tensor") -> TensorSummary:
    """Compute the full feature vector of a COO tensor."""
    fib = [fiber_stats(tensor, m) for m in range(tensor.nmodes)]
    return TensorSummary(
        name=name,
        order=tensor.nmodes,
        shape=tensor.shape,
        nnz=tensor.nnz,
        density=tensor.density,
        fibers_per_mode=tuple(f.nfibers for f in fib),
        max_fiber_imbalance=max((f.imbalance for f in fib), default=1.0),
    )


def nnz_per_slice(tensor: COOTensor, mode: int) -> np.ndarray:
    """Non-zeros in each mode-``mode`` slice (index-histogram over a mode)."""
    mode = check_mode(mode, tensor.nmodes)
    return np.bincount(
        tensor.indices[:, mode].astype(np.int64), minlength=tensor.shape[mode]
    )


def mode_fill(tensor: COOTensor, mode: int) -> float:
    """Fraction of mode-``mode`` index values that actually appear.

    A mode with fill 1.0 and a short dimension is "dense-ish" — the trait
    the paper's irregular power-law tensors are built to exhibit.
    """
    mode = check_mode(mode, tensor.nmodes)
    if tensor.shape[mode] == 0:
        return 0.0
    return tensor.mode_sizes_touched(mode) / tensor.shape[mode]
