"""Generalized HiCOO (gHiCOO) — this paper's format contribution (Sec. 3.3).

HiCOO is not beneficial for hyper-sparse tensors where most blocks contain
only one or a few non-zeros.  gHiCOO lets the user choose *which modes* are
compressed in units of blocks; the remaining modes keep full-width COO
index arrays.  Besides rescuing hyper-sparse inputs, gHiCOO is convenient
for kernels that do not need every mode during computation: HiCOO-Ttv and
HiCOO-Ttm leave the product mode uncompressed, so the blocked structure of
the other modes never has to be unpacked (paper Sec. 3.4.1).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import FormatError, ShapeError
from repro.types import (
    BPTR_BYTES,
    DEFAULT_BLOCK_SIZE,
    EINDEX_BYTES,
    EINDEX_DTYPE,
    INDEX_BYTES,
    VALUE_BYTES,
    index_dtype_for,
)
from repro.sptensor.coo import COOTensor
from repro.sptensor.hicoo import _hicoo_sort_order
from repro.util.bits import is_pow2
from repro.util.validation import check_mode


class GHiCOOTensor:
    """A sparse tensor with a user-chosen subset of modes block-compressed.

    Attributes
    ----------
    compressed_modes:
        Sorted tuple of modes stored as (binds, einds) block/element pairs.
    uncompressed_modes:
        The remaining modes, stored as full-width per-entry index columns
        in ``cinds`` (same layout as COO).
    """

    __slots__ = (
        "shape",
        "block_size",
        "compressed_modes",
        "uncompressed_modes",
        "bptr",
        "binds",
        "einds",
        "cinds",
        "values",
    )

    def __init__(
        self,
        shape: Sequence[int],
        block_size: int,
        compressed_modes: Sequence[int],
        bptr: np.ndarray,
        binds: np.ndarray,
        einds: np.ndarray,
        cinds: np.ndarray,
        values: np.ndarray,
        *,
        check: bool = True,
    ):
        self.shape = tuple(int(s) for s in shape)
        n = len(self.shape)
        comp = tuple(sorted(check_mode(m, n) for m in compressed_modes))
        if len(set(comp)) != len(comp):
            raise FormatError(f"duplicate compressed modes: {compressed_modes}")
        if len(comp) == 0:
            raise FormatError("gHiCOO requires at least one compressed mode")
        self.compressed_modes = comp
        self.uncompressed_modes = tuple(m for m in range(n) if m not in comp)
        if not is_pow2(block_size) or not (1 <= block_size <= 256):
            raise FormatError(
                f"block size must be a power of two in [1, 256], got {block_size}"
            )
        self.block_size = int(block_size)
        self.bptr = np.asarray(bptr, dtype=np.int64)
        self.binds = np.asarray(binds)
        self.einds = np.asarray(einds, dtype=EINDEX_DTYPE)
        self.cinds = np.asarray(cinds)
        self.values = np.asarray(values)
        if check:
            self._validate()

    def _validate(self) -> None:
        nc, nu = len(self.compressed_modes), len(self.uncompressed_modes)
        if self.binds.ndim != 2 or self.binds.shape[1] != nc:
            raise ShapeError(f"binds must be (nb, {nc}), got {self.binds.shape}")
        if self.einds.ndim != 2 or self.einds.shape[1] != nc:
            raise ShapeError(f"einds must be (M, {nc}), got {self.einds.shape}")
        if self.cinds.ndim != 2 or self.cinds.shape[1] != nu:
            raise ShapeError(f"cinds must be (M, {nu}), got {self.cinds.shape}")
        if self.bptr[0] != 0 or self.bptr[-1] != len(self.values):
            raise ShapeError("bptr must span [0, nnz]")
        if len(self.bptr) != self.binds.shape[0] + 1:
            raise ShapeError("bptr length must be nb + 1")

    # ------------------------------------------------------------------ #
    @property
    def nmodes(self) -> int:
        return len(self.shape)

    @property
    def nnz(self) -> int:
        return self.values.shape[0]

    @property
    def nblocks(self) -> int:
        return self.binds.shape[0]

    def nnz_per_block(self) -> np.ndarray:
        return np.diff(self.bptr)

    @property
    def nbytes(self) -> int:
        """Storage model: blocks carry pointers + compressed block indices;
        entries carry 8-bit element indices for compressed modes, 32-bit
        full indices for uncompressed modes, and a 32-bit value."""
        nc, nu = len(self.compressed_modes), len(self.uncompressed_modes)
        return self.nblocks * (BPTR_BYTES + nc * INDEX_BYTES) + self.nnz * (
            nc * EINDEX_BYTES + nu * INDEX_BYTES + VALUE_BYTES
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GHiCOOTensor(shape={self.shape}, nnz={self.nnz}, "
            f"nblocks={self.nblocks}, B={self.block_size}, "
            f"compressed={self.compressed_modes})"
        )

    # ------------------------------------------------------------------ #
    @classmethod
    def from_coo(
        cls,
        tensor: COOTensor,
        block_size: int = DEFAULT_BLOCK_SIZE,
        compressed_modes: Sequence[int] | None = None,
    ) -> "GHiCOOTensor":
        """Convert from COO, compressing only ``compressed_modes``.

        Defaults to compressing every mode (pure-HiCOO layout inside the
        gHiCOO container).  Blocks are formed over the compressed modes
        only and Morton-sorted; uncompressed coordinates travel along.
        """
        n = tensor.nmodes
        if compressed_modes is None:
            compressed_modes = tuple(range(n))
        comp = tuple(sorted(check_mode(m, n) for m in compressed_modes))
        uncomp = tuple(m for m in range(n) if m not in comp)
        b = np.int64(block_size)
        inds = tensor.indices.astype(np.int64, copy=False)
        comp_inds = inds[:, list(comp)]
        bcoords = comp_inds // b
        ecoords = (comp_inds - bcoords * b).astype(EINDEX_DTYPE)
        perm = _hicoo_sort_order(
            bcoords, ecoords if ecoords.size else np.zeros_like(bcoords, dtype=EINDEX_DTYPE)
        )
        bcoords = bcoords[perm]
        ecoords = np.ascontiguousarray(ecoords[perm])
        cinds = np.ascontiguousarray(
            inds[perm][:, list(uncomp)].astype(index_dtype_for(tensor.shape))
        )
        values = tensor.values[perm]
        m = tensor.nnz
        idt = index_dtype_for(tensor.shape)
        if m == 0:
            return cls(
                tensor.shape,
                block_size,
                comp,
                np.zeros(1, dtype=np.int64),
                np.empty((0, len(comp)), dtype=idt),
                np.empty((0, len(comp)), dtype=EINDEX_DTYPE),
                np.empty((0, len(uncomp)), dtype=idt),
                values,
                check=False,
            )
        change = np.flatnonzero((np.diff(bcoords, axis=0) != 0).any(axis=1)) + 1
        starts = np.concatenate(([0], change))
        bptr = np.concatenate((starts, [m])).astype(np.int64)
        binds = bcoords[starts].astype(idt)
        return cls(
            tensor.shape, block_size, comp, bptr, binds, ecoords, cinds, values,
            check=False,
        )

    def to_coo(self) -> COOTensor:
        """Reassemble full coordinates from block/element/carried parts."""
        bid = np.repeat(np.arange(self.nblocks, dtype=np.int64), np.diff(self.bptr))
        inds = np.empty((self.nnz, self.nmodes), dtype=np.int64)
        comp_full = (
            self.binds[bid].astype(np.int64) * np.int64(self.block_size)
            + self.einds.astype(np.int64)
        )
        for j, m in enumerate(self.compressed_modes):
            inds[:, m] = comp_full[:, j]
        for j, m in enumerate(self.uncompressed_modes):
            inds[:, m] = self.cinds[:, j].astype(np.int64)
        return COOTensor(self.shape, inds, self.values, copy=False, check=False)

    def uncompressed_column(self, mode: int) -> np.ndarray:
        """Full-width index column of an uncompressed ``mode``."""
        mode = check_mode(mode, self.nmodes)
        if mode not in self.uncompressed_modes:
            raise FormatError(f"mode {mode} is compressed in this gHiCOO tensor")
        return self.cinds[:, self.uncompressed_modes.index(mode)]
