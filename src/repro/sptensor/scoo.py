"""Semi-sparse COO (sCOO) for tensors with dense mode(s) (paper Sec. 3.1).

A *dense mode* is one on which every fiber is dense (e.g. the output mode
of Ttm, which becomes dense by the sparse-dense property of Li et al.,
IA^3'16).  sCOO stores the dense modes as dense arrays hanging off each
sparse coordinate: the ``values`` array gains one axis per dense mode,
while the remaining (sparse) modes keep COO index columns.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import FormatError, ShapeError
from repro.types import INDEX_BYTES, VALUE_BYTES, index_dtype_for
from repro.sptensor.coo import COOTensor
from repro.util.validation import check_mode, check_shape


class SemiCOOTensor:
    """Semi-sparse tensor: sparse coordinates × dense sub-blocks.

    Parameters
    ----------
    shape:
        Full tensor shape including dense modes.
    dense_modes:
        Modes whose fibers are all dense.
    indices:
        ``(M, ns)`` coordinates over the *sparse* modes, in increasing mode
        order (``ns = N - len(dense_modes)``).
    values:
        ``(M, *dense_shape)`` array; ``values[m]`` is the dense sub-block
        attached to sparse coordinate ``m``.
    """

    __slots__ = ("shape", "dense_modes", "sparse_modes", "indices", "values")

    def __init__(
        self,
        shape: Sequence[int],
        dense_modes: Sequence[int],
        indices: np.ndarray,
        values: np.ndarray,
        *,
        check: bool = True,
    ):
        self.shape = check_shape(shape)
        n = len(self.shape)
        dm = tuple(sorted(check_mode(m, n) for m in dense_modes))
        if len(set(dm)) != len(dm) or len(dm) == 0 or len(dm) >= n:
            raise FormatError(
                f"dense_modes must be a non-empty proper subset of modes, "
                f"got {dense_modes} for order {n}"
            )
        self.dense_modes = dm
        self.sparse_modes = tuple(m for m in range(n) if m not in dm)
        self.indices = np.asarray(indices)
        self.values = np.asarray(values)
        if check:
            self._validate()

    def _validate(self) -> None:
        ns = len(self.sparse_modes)
        if self.indices.ndim != 2 or self.indices.shape[1] != ns:
            raise ShapeError(
                f"indices must be (M, {ns}), got {self.indices.shape}"
            )
        dense_shape = tuple(self.shape[m] for m in self.dense_modes)
        if self.values.shape != (self.indices.shape[0],) + dense_shape:
            raise ShapeError(
                f"values must be (M, {dense_shape}), got {self.values.shape}"
            )

    # ------------------------------------------------------------------ #
    @property
    def nmodes(self) -> int:
        return len(self.shape)

    @property
    def nnz_sparse(self) -> int:
        """Number of sparse coordinates ``M`` (dense fibers)."""
        return self.indices.shape[0]

    @property
    def nnz(self) -> int:
        """Total stored scalars: sparse coordinates × dense block size."""
        block = 1
        for m in self.dense_modes:
            block *= self.shape[m]
        return self.nnz_sparse * block

    @property
    def dense_shape(self) -> tuple[int, ...]:
        return tuple(self.shape[m] for m in self.dense_modes)

    @property
    def nbytes(self) -> int:
        """Paper model: 32-bit sparse indices + 32-bit stored values."""
        return (
            self.nnz_sparse * len(self.sparse_modes) * INDEX_BYTES
            + self.nnz * VALUE_BYTES
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"SemiCOOTensor(shape={self.shape}, dense_modes={self.dense_modes}, "
            f"sparse_nnz={self.nnz_sparse})"
        )

    # ------------------------------------------------------------------ #
    @classmethod
    def from_coo(
        cls, tensor: COOTensor, dense_modes: Sequence[int]
    ) -> "SemiCOOTensor":
        """Densify the given modes of a COO tensor.

        Groups entries by their sparse-mode coordinates and scatters each
        group into a dense sub-block.
        """
        n = tensor.nmodes
        dm = tuple(sorted(check_mode(m, n) for m in dense_modes))
        sm = tuple(m for m in range(n) if m not in dm)
        dense_shape = tuple(tensor.shape[m] for m in dm)
        # Sort by sparse coordinates, group runs.
        order = sm + dm
        t = tensor.copy()
        t.sort(order)
        if t.nnz == 0:
            return cls(
                tensor.shape,
                dm,
                np.empty((0, len(sm)), dtype=index_dtype_for(tensor.shape)),
                np.empty((0,) + dense_shape, dtype=t.values.dtype),
                check=False,
            )
        sp = t.indices[:, list(sm)].astype(np.int64)
        change = np.flatnonzero((np.diff(sp, axis=0) != 0).any(axis=1)) + 1
        starts = np.concatenate(([0], change))
        group = np.repeat(np.arange(len(starts)), np.diff(np.concatenate((starts, [t.nnz]))))
        vals = np.zeros((len(starts),) + dense_shape, dtype=t.values.dtype)
        dense_coord = tuple(t.indices[:, m].astype(np.int64) for m in dm)
        np.add.at(vals, (group,) + dense_coord, t.values)
        return cls(
            tensor.shape,
            dm,
            sp[starts].astype(index_dtype_for(tensor.shape)),
            vals,
            check=False,
        )

    def to_coo(self, drop_zeros: bool = True) -> COOTensor:
        """Expand dense sub-blocks to explicit coordinates."""
        m = self.nnz_sparse
        dense_shape = self.dense_shape
        block = int(np.prod(dense_shape)) if dense_shape else 1
        if m == 0 or block == 0:
            return COOTensor.empty(self.shape, dtype=self.values.dtype)
        flat_vals = self.values.reshape(m, block)
        dense_grid = np.stack(
            [g.ravel() for g in np.indices(dense_shape)], axis=1
        ).astype(np.int64)
        inds = np.empty((m * block, self.nmodes), dtype=np.int64)
        for j, mode in enumerate(self.sparse_modes):
            inds[:, mode] = np.repeat(self.indices[:, j].astype(np.int64), block)
        for j, mode in enumerate(self.dense_modes):
            inds[:, mode] = np.tile(dense_grid[:, j], m)
        out = COOTensor(
            self.shape, inds, flat_vals.ravel(), copy=False, check=False
        )
        return out.drop_zeros() if drop_zeros else out

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense ndarray."""
        out = np.zeros(self.shape, dtype=self.values.dtype)
        # Build an indexing tuple placing dense sub-blocks.
        for row in range(self.nnz_sparse):
            sel: list = [slice(None)] * self.nmodes
            for j, mode in enumerate(self.sparse_modes):
                sel[mode] = int(self.indices[row, j])
            out[tuple(sel)] += self.values[row]
        return out
