"""Balanced CSF (BCSF) — load-balanced fiber trees (Nisa et al., 2019).

The paper lists BCSF among the formats the suite will grow to.  Plain CSF
parallelizes Mttkrp over root subtrees, but power-law tensors concentrate
most non-zeros under a few hub roots, starving that decomposition.  BCSF
splits heavy roots into *virtual roots*: multiple scheduling units sharing
one root index but owning disjoint child ranges, each bounded by a leaf
cap — so the work per scheduling unit is balanced regardless of skew.

This implementation layers virtual roots over :class:`CSFTensor`: the tree
arrays are shared (no data duplication); ``vroots`` holds
``(root_node, child_lo, child_hi, leaf_lo, leaf_hi)`` per unit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.sptensor.coo import COOTensor
from repro.sptensor.csf import CSFTensor


@dataclass(frozen=True)
class VirtualRoot:
    """One balanced scheduling unit of a BCSF tree."""

    root_node: int  # index into fids[0]
    child_lo: int  # child range within fptr[0][root] .. (order >= 3)
    child_hi: int
    leaf_lo: int  # leaf (value) range covered
    leaf_hi: int

    @property
    def nnz(self) -> int:
        return self.leaf_hi - self.leaf_lo


class BCSFTensor:
    """A CSF tensor plus a balanced virtual-root partition."""

    __slots__ = ("csf", "max_nnz_per_vroot", "vroots")

    def __init__(self, csf: CSFTensor, max_nnz_per_vroot: int):
        if max_nnz_per_vroot < 1:
            raise ShapeError("max_nnz_per_vroot must be >= 1")
        self.csf = csf
        self.max_nnz_per_vroot = int(max_nnz_per_vroot)
        self.vroots = self._build_vroots()

    # ------------------------------------------------------------------ #
    @classmethod
    def from_coo(
        cls,
        tensor: COOTensor,
        mode_order: Sequence[int] | None = None,
        max_nnz_per_vroot: int = 1024,
    ) -> "BCSFTensor":
        return cls(CSFTensor.from_coo(tensor, mode_order), max_nnz_per_vroot)

    def _build_vroots(self) -> tuple[VirtualRoot, ...]:
        csf = self.csf
        n = csf.nmodes
        cap = self.max_nnz_per_vroot
        out: list[VirtualRoot] = []
        nroots = len(csf.fids[0])
        if csf.nnz == 0:
            return ()
        if n == 2:
            # children are the leaves themselves
            for root in range(nroots):
                lo, hi = int(csf.fptr[0][root]), int(csf.fptr[0][root + 1])
                for s in range(lo, hi, cap):
                    e = min(s + cap, hi)
                    out.append(VirtualRoot(root, s, e, s, e))
            return tuple(out)
        # order >= 3: split on level-1 children; per-child leaf counts
        # come from chaining the fptr levels down to the leaves.
        child_leaf_lo = csf.fptr[1]
        if n > 3:
            for lvl in range(2, n - 1):
                child_leaf_lo = csf.fptr[lvl][child_leaf_lo]
        # child c covers leaves [child_leaf_lo[c], child_leaf_lo[c+1])
        for root in range(nroots):
            c_lo, c_hi = int(csf.fptr[0][root]), int(csf.fptr[0][root + 1])
            start = c_lo
            while start < c_hi:
                end = start
                leaves_lo = int(child_leaf_lo[start])
                # extend the unit while under the cap (always >= 1 child)
                while end < c_hi and (
                    int(child_leaf_lo[end + 1]) - leaves_lo <= cap
                    or end == start
                ):
                    end += 1
                out.append(
                    VirtualRoot(
                        root,
                        start,
                        end,
                        leaves_lo,
                        int(child_leaf_lo[end]),
                    )
                )
                start = end
        return tuple(out)

    # ------------------------------------------------------------------ #
    @property
    def nmodes(self) -> int:
        return self.csf.nmodes

    @property
    def shape(self) -> tuple[int, ...]:
        return self.csf.shape

    @property
    def nnz(self) -> int:
        return self.csf.nnz

    @property
    def nvroots(self) -> int:
        return len(self.vroots)

    def vroot_nnz(self) -> np.ndarray:
        return np.asarray([v.nnz for v in self.vroots], dtype=np.int64)

    def imbalance(self) -> float:
        """max/mean leaves per scheduling unit (CSF roots vs BCSF vroots:
        the whole point of the format)."""
        w = self.vroot_nnz()
        if len(w) == 0:
            return 1.0
        return float(w.max() / w.mean())

    def root_imbalance(self) -> float:
        """The unbalanced baseline: leaves per plain CSF root subtree."""
        csf = self.csf
        if csf.nnz == 0:
            return 1.0
        counts = np.zeros(len(csf.fids[0]), dtype=np.int64)
        for v in self.vroots:
            counts[v.root_node] += v.nnz
        return float(counts.max() / counts.mean())

    def to_coo(self) -> COOTensor:
        return self.csf.to_coo()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"BCSFTensor(shape={self.shape}, nnz={self.nnz}, "
            f"vroots={self.nvroots}, cap={self.max_nnz_per_vroot})"
        )


def bcsf_mttkrp(
    x: BCSFTensor, mats: Sequence[np.ndarray], mode: int
) -> np.ndarray:
    """Mttkrp over balanced virtual roots.

    Identical math to :func:`repro.kernels.csf.csf_mttkrp` but the root
    scatter uses accumulation (virtual roots of one split root collide on
    the same output row — the atomicAdd of the GPU algorithm)."""
    from repro.kernels.csf import csf_mttkrp  # shares validation
    from repro.util.validation import check_mode

    mode = check_mode(mode, x.nmodes)
    if x.csf.mode_order[0] != mode:
        # rebuild with the product mode at the root, like csf_mttkrp
        rebuilt = BCSFTensor.from_coo(
            x.to_coo(),
            (mode,) + tuple(m for m in x.csf.mode_order if m != mode),
            x.max_nnz_per_vroot,
        )
        return bcsf_mttkrp(rebuilt, mats, mode)
    csf = x.csf
    n = x.nmodes
    rank = next(
        np.asarray(u).shape[1]
        for m, u in enumerate(mats)
        if m != mode and u is not None
    )
    dtype = np.result_type(
        csf.values, *[np.asarray(mats[m]) for m in range(n) if m != mode]
    )
    out = np.zeros((x.shape[mode], rank), dtype=dtype)
    if csf.nnz == 0:
        return out
    # bottom-up partials exactly as in csf_mttkrp
    leaf_mode = csf.mode_order[-1]
    t = csf.values.astype(dtype, copy=False)[:, None] * np.asarray(
        mats[leaf_mode]
    )[csf.fids[-1].astype(np.int64), :]
    for lvl in range(n - 2, 0, -1):
        t = np.add.reduceat(t, csf.fptr[lvl][:-1], axis=0)
        lvl_mode = csf.mode_order[lvl]
        t = t * np.asarray(mats[lvl_mode])[csf.fids[lvl].astype(np.int64), :]
    # per-vroot accumulation into the (possibly shared) output row
    if n == 2:
        # t is per-leaf; sum each vroot's leaf range
        for v in x.vroots:
            out[int(csf.fids[0][v.root_node])] += t[v.leaf_lo:v.leaf_hi].sum(axis=0)
        return out
    for v in x.vroots:
        out[int(csf.fids[0][v.root_node])] += t[v.child_lo:v.child_hi].sum(axis=0)
    return out
