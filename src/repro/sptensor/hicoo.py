"""Hierarchical Coordinate (HiCOO) format (Li et al., SC'18; paper Sec. 3.3).

HiCOO compresses COO indices in units of ``B × ... × B`` sparse blocks:

* ``bptr``  — start of every block's entries in the element arrays;
* ``binds`` — per-block block coordinates (32-bit, one per mode);
* ``einds`` — per-entry element offsets inside the block (8-bit);
* ``values`` — per-entry values.

Blocks are ordered by the Morton code of their block coordinates, which is
what gives HiCOO its locality advantage when the same representation is
traversed along different modes.  Like COO, HiCOO is mode-generic: one
representation serves every kernel in every mode.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import FormatError, ShapeError
from repro.types import (
    BPTR_BYTES,
    DEFAULT_BLOCK_SIZE,
    EINDEX_BYTES,
    EINDEX_DTYPE,
    INDEX_BYTES,
    VALUE_BYTES,
    index_dtype_for,
)
from repro.sptensor.coo import COOTensor
from repro.util.bits import is_pow2
from repro.util.morton import morton_encode


def _hicoo_sort_order(bcoords: np.ndarray, ecoords: np.ndarray) -> np.ndarray:
    """Permutation ordering entries by (Morton(block), element row-major).

    Falls back to lexicographic block ordering when the block coordinates
    are too wide for 64-bit Morton codes (affects locality only, never
    grouping correctness).
    """
    m, n = bcoords.shape
    if m == 0:
        return np.empty(0, dtype=np.intp)
    # Element key: row-major linear offset within a block; B <= 256 so the
    # key fits easily in int64 for any realistic order.
    ekey = np.zeros(m, dtype=np.int64)
    for d in range(n):
        ekey = ekey * 256 + ecoords[:, d].astype(np.int64)
    try:
        bkey = morton_encode(bcoords)
        return np.lexsort((ekey, bkey))
    except ValueError:
        cols = [ekey] + [bcoords[:, d] for d in range(n - 1, -1, -1)]
        return np.lexsort(tuple(cols))


class HiCOOTensor:
    """A general sparse tensor in HiCOO format.

    Construct via :meth:`from_coo`; the raw constructor adopts pre-built
    arrays and is used by kernels that pre-allocate outputs.
    """

    __slots__ = (
        "shape", "block_size", "bptr", "binds", "einds", "values",
        "_entry_bids", "_global_rows", "_plan_cache",
    )

    def __init__(
        self,
        shape: Sequence[int],
        block_size: int,
        bptr: np.ndarray,
        binds: np.ndarray,
        einds: np.ndarray,
        values: np.ndarray,
        *,
        check: bool = True,
    ):
        self.shape = tuple(int(s) for s in shape)
        if not is_pow2(block_size) or not (1 <= block_size <= 256):
            raise FormatError(
                f"HiCOO block size must be a power of two in [1, 256] "
                f"(8-bit element indices), got {block_size}"
            )
        self.block_size = int(block_size)
        self.bptr = np.asarray(bptr, dtype=np.int64)
        self.binds = np.asarray(binds)
        self.einds = np.asarray(einds, dtype=EINDEX_DTYPE)
        self.values = np.asarray(values)
        self._entry_bids: np.ndarray | None = None
        self._global_rows: dict[int, np.ndarray] = {}
        # Compiled-tier execution plans; HiCOO is immutable after build,
        # so the cache lives for the tensor's lifetime.
        self._plan_cache: dict = {}
        if check:
            self._validate()

    def _validate(self) -> None:
        n = len(self.shape)
        if self.binds.ndim != 2 or self.binds.shape[1] != n:
            raise ShapeError(f"binds must be (nb, {n}), got {self.binds.shape}")
        if self.einds.ndim != 2 or self.einds.shape[1] != n:
            raise ShapeError(f"einds must be (M, {n}), got {self.einds.shape}")
        if self.bptr.ndim != 1 or len(self.bptr) != self.binds.shape[0] + 1:
            raise ShapeError(
                f"bptr must have nb+1={self.binds.shape[0] + 1} entries, "
                f"got {len(self.bptr)}"
            )
        if self.bptr[0] != 0 or self.bptr[-1] != len(self.values):
            raise ShapeError("bptr must span [0, nnz]")
        if (np.diff(self.bptr) < 0).any():
            raise ShapeError("bptr must be non-decreasing")
        if self.einds.size and int(self.einds.max()) >= self.block_size:
            raise ShapeError("element index exceeds block size")

    # ------------------------------------------------------------------ #
    @property
    def nmodes(self) -> int:
        return len(self.shape)

    @property
    def nnz(self) -> int:
        return self.values.shape[0]

    @property
    def nblocks(self) -> int:
        """``nb``: number of non-empty tensor blocks."""
        return self.binds.shape[0]

    @property
    def density(self) -> float:
        total = 1.0
        for s in self.shape:
            total *= float(s)
        return self.nnz / total if total else 0.0

    def nnz_per_block(self) -> np.ndarray:
        """Entries per block — the source of HiCOO-Mttkrp-GPU imbalance."""
        return np.diff(self.bptr)

    @property
    def nbytes(self) -> int:
        """Paper storage model: 64-bit bptr, 32-bit binds, 8-bit einds."""
        n = self.nmodes
        return (
            self.nblocks * (BPTR_BYTES + n * INDEX_BYTES)
            + self.nnz * (n * EINDEX_BYTES + VALUE_BYTES)
        )

    def compression_ratio(self) -> float:
        """COO bytes divided by HiCOO bytes for the same tensor (>1 is a win)."""
        coo_bytes = (self.nmodes * INDEX_BYTES + VALUE_BYTES) * self.nnz
        return coo_bytes / self.nbytes if self.nbytes else float("inf")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HiCOOTensor(shape={self.shape}, nnz={self.nnz}, "
            f"nblocks={self.nblocks}, B={self.block_size})"
        )

    # ------------------------------------------------------------------ #
    @classmethod
    def from_coo(
        cls, tensor: COOTensor, block_size: int = DEFAULT_BLOCK_SIZE
    ) -> "HiCOOTensor":
        """Convert a COO tensor: split coordinates into block/element parts,
        Morton-sort the blocks, and group contiguous runs into ``bptr``."""
        if not is_pow2(block_size) or not (1 <= block_size <= 256):
            raise FormatError(
                f"block size must be a power of two in [1, 256], got {block_size}"
            )
        b = np.int64(block_size)
        inds = tensor.indices.astype(np.int64, copy=False)
        bcoords = inds // b
        ecoords = (inds - bcoords * b).astype(EINDEX_DTYPE)
        perm = _hicoo_sort_order(bcoords, ecoords)
        bcoords = bcoords[perm]
        ecoords = np.ascontiguousarray(ecoords[perm])
        values = tensor.values[perm]
        m = tensor.nnz
        if m == 0:
            return cls(
                tensor.shape,
                block_size,
                np.zeros(1, dtype=np.int64),
                np.empty((0, tensor.nmodes), dtype=index_dtype_for(tensor.shape)),
                np.empty((0, tensor.nmodes), dtype=EINDEX_DTYPE),
                values,
                check=False,
            )
        change = np.flatnonzero((np.diff(bcoords, axis=0) != 0).any(axis=1)) + 1
        starts = np.concatenate(([0], change))
        bptr = np.concatenate((starts, [m])).astype(np.int64)
        binds = bcoords[starts].astype(index_dtype_for(tensor.shape))
        return cls(tensor.shape, block_size, bptr, binds, ecoords, values, check=False)

    def to_coo(self) -> COOTensor:
        """Expand back to COO: ``index = bind * B + eind`` per entry."""
        out = COOTensor(
            self.shape, self.global_indices(), self.values, copy=False, check=False
        )
        return out

    def entry_block_ids(self) -> np.ndarray:
        """``(M,)`` map from entry to its owning block id (cached).

        HiCOO tensors are immutable once built, so the expansion is
        computed once and shared by every kernel call on this tensor.
        """
        if self._entry_bids is None:
            bid = np.repeat(
                np.arange(self.nblocks, dtype=np.int64), np.diff(self.bptr)
            )
            bid.setflags(write=False)
            self._entry_bids = bid
        return self._entry_bids

    def global_row(self, mode: int) -> np.ndarray:
        """``(M,)`` int64 global coordinates along ``mode``, cached.

        ``bind * B + eind`` per entry — the per-mode gather every HiCOO
        kernel needs.  The seed recomputed (and silently copied) this for
        *every* mode on *every* Mttkrp call; caching it per mode makes the
        re-gather free across kernel calls and modes.
        """
        col = self._global_rows.get(mode)
        if col is None:
            bid = self.entry_block_ids()
            col = (
                self.binds[bid, mode].astype(np.int64)
                * np.int64(self.block_size)
                + self.einds[:, mode].astype(np.int64)
            )
            col.setflags(write=False)
            self._global_rows[mode] = col
        return col

    def block_slice(self, b: int) -> slice:
        """Entry range of block ``b``."""
        return slice(int(self.bptr[b]), int(self.bptr[b + 1]))

    def copy(self) -> "HiCOOTensor":
        return HiCOOTensor(
            self.shape,
            self.block_size,
            self.bptr.copy(),
            self.binds.copy(),
            self.einds.copy(),
            self.values.copy(),
            check=False,
        )

    def global_indices(self) -> np.ndarray:
        """``(M, N)`` int64 reconstructed global coordinates (block-ordered)."""
        if self.nnz == 0:
            return np.empty((0, self.nmodes), dtype=np.int64)
        return np.stack(
            [self.global_row(m) for m in range(self.nmodes)], axis=1
        )
