"""Coordinate (COO) format for general sparse tensors.

COO is the suite's baseline format (paper Section 3.1): the values live in a
one-dimensional array and each mode contributes one index array.  The
storage of an order-``N`` tensor with ``M`` non-zeros is ``4(N+1)M`` bytes
under the paper's 32-bit convention.

The class below stores the index arrays as one ``(M, N)`` matrix (column
``n`` is mode ``n``'s index array); this is semantically identical to N
separate arrays and lets every kernel slice the mode it needs with no copy.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import ShapeError
from repro.types import INDEX_BYTES, VALUE_BYTES, VALUE_DTYPE, index_dtype_for
from repro.util.validation import (
    check_indices_in_bounds,
    check_mode,
    check_shape,
)


class FiberIndex:
    """Pointers into a mode-sorted COO tensor delimiting its mode-``n`` fibers.

    A mode-``n`` fiber is the vector obtained by fixing every index except
    mode ``n``.  After sorting the tensor so that mode ``n`` varies fastest,
    the non-zeros of each fiber are contiguous; ``fptr`` records where each
    fiber begins, exactly like the pre-processing step of COO-Ttv-OMP
    (paper Algorithm 1, line 1).

    Attributes
    ----------
    mode:
        The fiber mode ``n``.
    fptr:
        ``(MF + 1,)`` int64 array; fiber ``f`` spans entries
        ``fptr[f]:fptr[f+1]`` of the sorted tensor.
    order:
        The permutation that sorted the parent tensor (mode ``n`` fastest).
    """

    __slots__ = ("mode", "fptr", "order")

    def __init__(self, mode: int, fptr: np.ndarray, order: np.ndarray):
        self.mode = mode
        self.fptr = fptr
        self.order = order

    @property
    def nfibers(self) -> int:
        return len(self.fptr) - 1

    def fiber_lengths(self) -> np.ndarray:
        """Non-zeros per fiber — the source of Ttv/Ttm load imbalance."""
        return np.diff(self.fptr)


class COOTensor:
    """A general sparse tensor in coordinate format.

    Parameters
    ----------
    shape:
        Dimension sizes ``(I_1, ..., I_N)``.
    indices:
        ``(M, N)`` integer coordinates of the non-zeros.
    values:
        ``(M,)`` non-zero values.
    copy:
        Copy the input arrays (default) or adopt them.
    check:
        Validate coordinates against ``shape`` (default).  Generators that
        construct coordinates known to be in bounds pass ``False``.
    """

    __slots__ = (
        "shape", "indices", "values", "_sort_order", "_index_cols",
        "_plan_cache",
    )

    def __init__(
        self,
        shape: Sequence[int],
        indices: np.ndarray,
        values: np.ndarray,
        *,
        copy: bool = True,
        check: bool = True,
    ):
        self.shape = check_shape(shape)
        idx_dtype = index_dtype_for(self.shape)
        indices = np.asarray(indices)
        if indices.ndim == 1 and len(self.shape) == 1:
            indices = indices.reshape(-1, 1)
        if indices.ndim != 2 or indices.shape[1] != len(self.shape):
            raise ShapeError(
                f"indices must be (M, {len(self.shape)}), got {indices.shape}"
            )
        values = np.asarray(values)
        if values.ndim != 1 or values.shape[0] != indices.shape[0]:
            raise ShapeError(
                f"values must be (M,) matching indices; got values "
                f"{values.shape} vs indices {indices.shape}"
            )
        if check:
            check_indices_in_bounds(indices, self.shape)
        if copy:
            self.indices = np.array(indices, dtype=idx_dtype, order="C")
        else:
            self.indices = np.ascontiguousarray(indices, dtype=idx_dtype)
        if not np.issubdtype(values.dtype, np.floating):
            values = values.astype(VALUE_DTYPE)
        self.values = np.array(values) if copy else np.asarray(values)
        self._sort_order: tuple[int, ...] | None = None
        self._index_cols: dict[int, np.ndarray] = {}
        # Compiled-tier execution plans (repro.compiled.plans); entry-order
        # dependent, so invalidated together with the index-column cache.
        self._plan_cache: dict = {}

    # ------------------------------------------------------------------ #
    # Basic properties
    # ------------------------------------------------------------------ #
    @property
    def nmodes(self) -> int:
        """Tensor order ``N``."""
        return len(self.shape)

    @property
    def nnz(self) -> int:
        """Number of stored non-zeros ``M``."""
        return self.values.shape[0]

    @property
    def density(self) -> float:
        """``nnz / prod(shape)`` computed in floats to avoid overflow."""
        total = 1.0
        for s in self.shape:
            total *= float(s)
        return self.nnz / total if total else 0.0

    @property
    def nbytes(self) -> int:
        """Paper storage model: ``4(N+1)M`` bytes (32-bit indices+values)."""
        return (self.nmodes * INDEX_BYTES + VALUE_BYTES) * self.nnz

    @property
    def nbytes_actual(self) -> int:
        """Actual in-memory bytes of the backing arrays."""
        return self.indices.nbytes + self.values.nbytes

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"COOTensor(shape={self.shape}, nnz={self.nnz}, "
            f"density={self.density:.3g})"
        )

    def index_column(self, mode: int) -> np.ndarray:
        """Canonical int64 copy of mode ``mode``'s index column, cached.

        Kernels index factor matrices with int64 coordinates; slicing
        ``indices[:, mode].astype(np.int64)`` per call silently copies the
        (strided) column every time.  This caches one contiguous read-only
        int64 column per mode for the tensor's lifetime; :meth:`sort`
        invalidates the cache when it permutes the entries.
        """
        mode = check_mode(mode, self.nmodes)
        col = self._index_cols.get(mode)
        if col is None:
            col = np.ascontiguousarray(self.indices[:, mode], dtype=np.int64)
            col.setflags(write=False)
            self._index_cols[mode] = col
        return col

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def from_dense(cls, array: np.ndarray) -> "COOTensor":
        """Extract the non-zero pattern of a dense ndarray."""
        array = np.asarray(array)
        coords = np.nonzero(array)
        indices = np.stack(coords, axis=1) if array.ndim else np.empty((0, 1))
        values = array[coords]
        return cls(array.shape, indices, values, check=False)

    @classmethod
    def empty(cls, shape: Sequence[int], dtype=VALUE_DTYPE) -> "COOTensor":
        """A tensor of the given shape with no stored entries."""
        shape = check_shape(shape)
        return cls(
            shape,
            np.empty((0, len(shape)), dtype=index_dtype_for(shape)),
            np.empty(0, dtype=dtype),
            copy=False,
            check=False,
        )

    @classmethod
    def random(
        cls,
        shape: Sequence[int],
        nnz: int,
        rng: "int | np.random.Generator | None" = None,
        dtype=VALUE_DTYPE,
    ) -> "COOTensor":
        """Uniform random sparse tensor with exactly ``nnz`` distinct entries."""
        from repro.util.prng import rng_from_seed

        shape = check_shape(shape)
        gen = rng_from_seed(rng)
        total = 1
        for s in shape:
            total *= s
        nnz = min(int(nnz), total)
        if total <= 2**62:
            # Draw distinct linear positions, then unravel.
            lin = _sample_distinct(gen, total, nnz)
            coords = np.stack(np.unravel_index(lin, shape), axis=1)
        else:  # pragma: no cover - astronomically sparse case
            coords = np.stack(
                [gen.integers(0, s, size=nnz) for s in shape], axis=1
            )
            coords = np.unique(coords, axis=0)
        vals = gen.random(coords.shape[0]).astype(dtype) + dtype(0.5)
        return cls(shape, coords, vals, copy=False, check=False)

    def to_dense(self) -> np.ndarray:
        """Materialize as a dense ndarray (duplicates are summed)."""
        total = 1
        for s in self.shape:
            total *= s
        if total > 5e8:
            raise MemoryError(
                f"refusing to densify a tensor with {total} cells"
            )
        out = np.zeros(self.shape, dtype=self.values.dtype)
        np.add.at(out, tuple(self.indices[:, m] for m in range(self.nmodes)), self.values)
        return out

    def copy(self) -> "COOTensor":
        dup = COOTensor(self.shape, self.indices, self.values, copy=True, check=False)
        dup._sort_order = self._sort_order
        return dup

    def astype(self, dtype) -> "COOTensor":
        """Return a copy with values cast to ``dtype``."""
        dup = COOTensor(
            self.shape, self.indices, self.values.astype(dtype), copy=True, check=False
        )
        dup._sort_order = self._sort_order
        return dup

    # ------------------------------------------------------------------ #
    # Ordering, linearization, deduplication
    # ------------------------------------------------------------------ #
    def linearize(self, mode_order: Sequence[int] | None = None) -> np.ndarray:
        """Row-major linear index of each entry under ``mode_order``.

        ``mode_order[0]`` is the slowest-varying (most significant) mode.
        Used for pattern comparison, merging (Tew) and sorting.
        """
        order = self._normalize_order(mode_order)
        lin = np.zeros(self.nnz, dtype=np.int64)
        stride = 1
        # Accumulate from the fastest-varying mode backwards.
        for m in reversed(order):
            lin += self.indices[:, m].astype(np.int64) * stride
            stride *= self.shape[m]
        return lin

    def _normalize_order(self, mode_order: Sequence[int] | None) -> tuple[int, ...]:
        if mode_order is None:
            return tuple(range(self.nmodes))
        order = tuple(check_mode(m, self.nmodes) for m in mode_order)
        if sorted(order) != list(range(self.nmodes)):
            raise ShapeError(
                f"mode_order must be a permutation of 0..{self.nmodes - 1}, "
                f"got {mode_order}"
            )
        return order

    def sort(self, mode_order: Sequence[int] | None = None) -> "COOTensor":
        """Sort entries in row-major order of ``mode_order`` (in place).

        Returns ``self`` for chaining.  A no-op when already sorted in that
        order (the sort order is cached and invalidated by mutation).
        """
        order = self._normalize_order(mode_order)
        if self._sort_order == order:
            return self
        perm = np.argsort(self.linearize(order), kind="stable")
        self.indices = np.ascontiguousarray(self.indices[perm])
        self.values = self.values[perm]
        self._sort_order = order
        self._index_cols = {}
        self._plan_cache = {}
        return self

    @property
    def sort_order(self) -> tuple[int, ...] | None:
        """The cached mode order the entries are sorted by, if any."""
        return self._sort_order

    def coalesce(self) -> "COOTensor":
        """Return a new tensor with duplicate coordinates summed and sorted."""
        if self.nnz == 0:
            out = self.copy()
            out._sort_order = tuple(range(self.nmodes))
            return out
        lin = self.linearize()
        uniq, inverse = np.unique(lin, return_inverse=True)
        vals = np.zeros(len(uniq), dtype=self.values.dtype)
        np.add.at(vals, inverse, self.values)
        first = np.zeros(len(uniq), dtype=np.int64)
        # np.unique returns sorted uniq; recover one representative index per
        # group to keep the original coordinates (cheaper than unravel).
        seen_order = np.argsort(inverse, kind="stable")
        group_starts = np.searchsorted(inverse[seen_order], np.arange(len(uniq)))
        first = seen_order[group_starts]
        out = COOTensor(
            self.shape, self.indices[first], vals, copy=False, check=False
        )
        out._sort_order = tuple(range(self.nmodes))
        return out

    def has_duplicates(self) -> bool:
        lin = self.linearize()
        return len(np.unique(lin)) != self.nnz

    # ------------------------------------------------------------------ #
    # Fibers
    # ------------------------------------------------------------------ #
    def fiber_index(self, mode: int) -> FiberIndex:
        """Sort so mode ``mode`` varies fastest and compute fiber pointers.

        This is the pre-processing stage shared by Ttv and Ttm (paper
        Algorithm 1 line 1): it yields ``MF`` fibers, each a contiguous run
        of entries, without mutating ``self`` (the permutation is returned
        inside the :class:`FiberIndex`).
        """
        mode = check_mode(mode, self.nmodes)
        rest = [m for m in range(self.nmodes) if m != mode]
        order = tuple(rest) + (mode,)
        lin = self.linearize(order)
        perm = np.argsort(lin, kind="stable")
        if self.nnz == 0:
            return FiberIndex(mode, np.zeros(1, dtype=np.int64), perm)
        # Fiber boundaries: where the 'rest' part of the key changes.  The
        # rest-key is lin // shape[mode].
        rest_key = lin[perm] // np.int64(self.shape[mode])
        change = np.flatnonzero(np.diff(rest_key)) + 1
        fptr = np.concatenate(
            ([0], change, [self.nnz])
        ).astype(np.int64)
        return FiberIndex(mode, fptr, perm)

    def num_fibers(self, mode: int) -> int:
        """``MF``: count of non-empty mode-``mode`` fibers."""
        return self.fiber_index(mode).nfibers

    # ------------------------------------------------------------------ #
    # Comparison / export
    # ------------------------------------------------------------------ #
    def pattern_equals(self, other: "COOTensor") -> bool:
        """True when both tensors store exactly the same coordinate set."""
        if self.shape != other.shape or self.nnz != other.nnz:
            return False
        a = np.sort(self.linearize())
        b = np.sort(other.linearize())
        return bool(np.array_equal(a, b))

    def allclose(self, other: "COOTensor", rtol=1e-5, atol=1e-6) -> bool:
        """Numerical equality as *tensors* (pattern-order independent).

        Coalesces both operands, compares coordinates exactly and values
        approximately.  Explicit zeros are dropped before comparison.
        """
        if self.shape != other.shape:
            return False
        a = self.coalesce().drop_zeros(atol)
        b = other.coalesce().drop_zeros(atol)
        if a.nnz != b.nnz:
            return False
        if not np.array_equal(a.linearize(), b.linearize()):
            return False
        return bool(np.allclose(a.values, b.values, rtol=rtol, atol=atol))

    def drop_zeros(self, atol: float = 0.0) -> "COOTensor":
        """Remove stored entries with ``|value| <= atol``."""
        keep = np.abs(self.values) > atol
        if keep.all():
            return self
        out = COOTensor(
            self.shape, self.indices[keep], self.values[keep], copy=False, check=False
        )
        out._sort_order = self._sort_order
        return out

    def permute_modes(self, perm: Sequence[int]) -> "COOTensor":
        """Reorder the tensor's modes (a sparse transpose)."""
        order = self._normalize_order(perm)
        shape = tuple(self.shape[m] for m in order)
        return COOTensor(
            shape,
            np.ascontiguousarray(self.indices[:, list(order)]),
            self.values,
            copy=True,
            check=False,
        )

    def mode_sizes_touched(self, mode: int) -> int:
        """Distinct indices appearing on ``mode`` (working-set estimation)."""
        mode = check_mode(mode, self.nmodes)
        return int(len(np.unique(self.indices[:, mode])))


def _sample_distinct(gen: np.random.Generator, total: int, nnz: int) -> np.ndarray:
    """Sample ``nnz`` distinct integers from ``[0, total)`` memory-safely."""
    if nnz >= total:
        return np.arange(total, dtype=np.int64)
    if total <= 4 * nnz or total <= 1 << 22:
        return gen.choice(total, size=nnz, replace=False).astype(np.int64)
    # Rejection sampling: oversample, dedupe, top up until enough.
    out = np.unique(gen.integers(0, total, size=int(nnz * 1.2), dtype=np.int64))
    while len(out) < nnz:
        extra = gen.integers(0, total, size=nnz, dtype=np.int64)
        out = np.unique(np.concatenate([out, extra]))
    return gen.permutation(out)[:nnz]


def stack_entries(
    shape: Sequence[int],
    entries: Iterable[tuple[Sequence[int], float]],
) -> COOTensor:
    """Build a COOTensor from ``((i, j, ...), value)`` pairs (testing aid)."""
    coords, vals = [], []
    for coord, val in entries:
        coords.append(tuple(int(c) for c in coord))
        vals.append(float(val))
    if not coords:
        return COOTensor.empty(shape)
    return COOTensor(shape, np.asarray(coords), np.asarray(vals))
