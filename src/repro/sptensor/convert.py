"""Conversions between the suite's sparse tensor formats.

Every format can round-trip through COO; this module adds the direct,
user-facing ``as_format`` dispatcher that the benchmark harness uses to
materialize one tensor in each format under test.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import FormatError
from repro.types import DEFAULT_BLOCK_SIZE, Format
from repro.sptensor.coo import COOTensor
from repro.sptensor.ghicoo import GHiCOOTensor
from repro.sptensor.hicoo import HiCOOTensor
from repro.sptensor.scoo import SemiCOOTensor
from repro.sptensor.shicoo import SemiHiCOOTensor

AnyTensor = "COOTensor | HiCOOTensor | GHiCOOTensor | SemiCOOTensor | SemiHiCOOTensor"


def to_coo(tensor) -> COOTensor:
    """Convert any supported tensor object to COO."""
    if isinstance(tensor, COOTensor):
        return tensor
    if isinstance(tensor, (HiCOOTensor, GHiCOOTensor)):
        return tensor.to_coo()
    if isinstance(tensor, (SemiCOOTensor, SemiHiCOOTensor)):
        return tensor.to_coo()
    from repro.sptensor.csf import CSFTensor

    if isinstance(tensor, CSFTensor):
        return tensor.to_coo()
    raise FormatError(f"cannot convert {type(tensor).__name__} to COO")


def as_format(
    tensor,
    fmt: "Format | str",
    *,
    block_size: int = DEFAULT_BLOCK_SIZE,
    compressed_modes: Sequence[int] | None = None,
    dense_modes: Sequence[int] | None = None,
    mode_order: Sequence[int] | None = None,
):
    """Materialize ``tensor`` in format ``fmt``.

    Parameters
    ----------
    block_size:
        HiCOO-family block size ``B``.
    compressed_modes:
        For gHiCOO: which modes to block-compress (default: all).
    dense_modes:
        For sCOO/sHiCOO: which modes are dense.
    mode_order:
        For CSF: the fiber tree's mode order (default: natural order).
    """
    fmt = Format.coerce(fmt)
    coo = to_coo(tensor)
    if fmt is Format.COO:
        return coo
    if fmt is Format.HICOO:
        return HiCOOTensor.from_coo(coo, block_size)
    if fmt is Format.GHICOO:
        return GHiCOOTensor.from_coo(coo, block_size, compressed_modes)
    if fmt is Format.SCOO:
        if not dense_modes:
            raise FormatError("sCOO conversion requires dense_modes")
        return SemiCOOTensor.from_coo(coo, dense_modes)
    if fmt is Format.SHICOO:
        if not dense_modes:
            raise FormatError("sHiCOO conversion requires dense_modes")
        return SemiHiCOOTensor.from_scoo(
            SemiCOOTensor.from_coo(coo, dense_modes), block_size
        )
    if fmt is Format.CSF:
        from repro.sptensor.csf import CSFTensor

        return CSFTensor.from_coo(coo, mode_order)
    raise FormatError(f"unsupported target format {fmt}")  # pragma: no cover
