"""Input-adaptive format and parameter selection.

The paper frames format choice as data-dependent ("the best choice of
format depends on the sparsity pattern of a tensor, operations applied,
and the time required to translate between them") and cites input-adaptive
selection (SMAT, PLDI'13; model-driven CPD, IPDPS'17).  This module turns
the suite's cost models into a recommender: given a tensor's features and
the kernel mix, score each format's storage and modeled execution and pick
the winner.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.types import (
    BPTR_BYTES,
    DEFAULT_RANK,
    EINDEX_BYTES,
    INDEX_BYTES,
    VALUE_BYTES,
    Format,
    Kernel,
)
from repro.bench.cpumodel import modeled_cpu_time
from repro.roofline.oi import TensorFeatures, extract_features
from repro.roofline.platform import BLUESKY, PlatformSpec
from repro.sptensor.coo import COOTensor
from repro.sptensor.hicoo import HiCOOTensor


#: Per-call dispatch overhead charged to each execution tier, seconds.
#: The NumPy tier pays argument checking plus the chunk loop setup; the
#: compiled tier additionally pays tier resolution, plan-cache lookups,
#: and (amortized) workspace checkout — measured on this suite's hot-path
#: harness at a few tens of microseconds.
TIER_DISPATCH_S = {"numpy": 5e-6, "compiled": 6e-5}

#: Steady-state per-(entry x rank-column) cost of each tier, seconds,
#: fitted per kernel family on the hot-path bench tensors.  The gap is
#: widest for Mttkrp (the fused/JIT scatter replaces ``np.add.at``) and
#: nearly closes for the elementwise kernels (both tiers are one ufunc
#: pass, the compiled tier only drops the chunk dispatch).
_TIER_UNIT_S = {
    "mttkrp": {"numpy": 1.8e-8, "compiled": 4.7e-9},
    "ttv": {"numpy": 9e-9, "compiled": 4e-9},
    "ttm": {"numpy": 9e-9, "compiled": 4e-9},
    "tew": {"numpy": 2.5e-9, "compiled": 2.2e-9},
    "ts": {"numpy": 2.5e-9, "compiled": 2.2e-9},
}


def tier_cost(kernel: str, tier: str, nnz: int, r: int = 1) -> float:
    """Modeled seconds for one kernel call under an execution tier."""
    units = _TIER_UNIT_S.get(str(kernel), _TIER_UNIT_S["mttkrp"])
    work = float(max(int(nnz), 0)) * float(max(int(r), 1))
    return TIER_DISPATCH_S[tier] + units[tier] * work


def recommend_tier(kernel: str, nnz: int, r: int = 1) -> str:
    """Resolve ``tier="auto"``: the cheaper tier under the static model.

    The dispatch-overhead term is what keeps tiny tensors on the NumPy
    tier — below a few thousand entry-columns the compiled tier's plan
    and dispatch costs exceed anything its loops save.
    """
    compiled = tier_cost(kernel, "compiled", nnz, r)
    numpy_ = tier_cost(kernel, "numpy", nnz, r)
    return "compiled" if compiled < numpy_ else "numpy"


@dataclass(frozen=True)
class FormatScore:
    """One candidate format's storage and modeled runtime."""

    fmt: Format
    storage_bytes: float
    modeled_seconds: float
    notes: str = ""


@dataclass(frozen=True)
class Recommendation:
    """The tuner's verdict."""

    fmt: Format
    block_size: int
    scores: tuple[FormatScore, ...]
    alpha: float  # mean nnz per HiCOO block at the chosen block size

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        lines = [f"recommended format: {self.fmt.value} (B={self.block_size})"]
        for s in self.scores:
            lines.append(
                f"  {s.fmt.value:7s} storage {s.storage_bytes / 1e6:8.3f} MB  "
                f"modeled {s.modeled_seconds * 1e3:8.3f} ms  {s.notes}"
            )
        return "\n".join(lines)


def storage_bytes(features: TensorFeatures, fmt: Format) -> float:
    """Paper storage models per format from the feature vector."""
    n = features.order
    m = features.nnz
    if fmt is Format.COO:
        return float((n * INDEX_BYTES + VALUE_BYTES) * m)
    if fmt is Format.HICOO:
        return float(
            features.nb * (BPTR_BYTES + n * INDEX_BYTES)
            + m * (n * EINDEX_BYTES + VALUE_BYTES)
        )
    raise ValueError(f"no storage model for {fmt}")


def score_formats(
    features: TensorFeatures,
    kernels: Sequence[Kernel] = (Kernel.MTTKRP,),
    platform: PlatformSpec = BLUESKY,
    r: int = DEFAULT_RANK,
) -> list[FormatScore]:
    """Modeled total runtime of the kernel mix in each candidate format."""
    scores = []
    for fmt in (Format.COO, Format.HICOO):
        total = sum(
            modeled_cpu_time(platform, k, fmt, features, r).total_s
            for k in kernels
        )
        alpha = features.nnz / max(features.nb, 1)
        note = ""
        if fmt is Format.HICOO and alpha < 1.5:
            note = "hypersparse: ~1 nnz/block, HiCOO metadata dominates"
        scores.append(
            FormatScore(fmt, storage_bytes(features, fmt), total, note)
        )
    return scores


def recommend_block_size(
    tensor: COOTensor,
    candidates: Sequence[int] = (32, 64, 128, 256),
    min_alpha: float = 1.5,
) -> tuple[int, float]:
    """Smallest candidate block size reaching ``min_alpha`` occupancy
    (small blocks localize best, but under-full blocks waste metadata);
    falls back to the largest candidate."""
    best_b, best_alpha = max(candidates), 0.0
    for b in sorted(candidates):
        h = HiCOOTensor.from_coo(tensor, b)
        alpha = tensor.nnz / max(h.nblocks, 1)
        if alpha >= min_alpha:
            return b, alpha
        best_alpha = alpha
    return best_b, best_alpha


def recommend_format(
    tensor: COOTensor,
    kernels: Sequence["Kernel | str"] = (Kernel.MTTKRP,),
    platform: PlatformSpec = BLUESKY,
    r: int = DEFAULT_RANK,
    block_size: int | None = None,
    storage_weight: float = 0.3,
) -> Recommendation:
    """Pick COO or HiCOO for this tensor and kernel mix.

    The score blends modeled runtime with storage (normalized to the COO
    baseline, weighted by ``storage_weight``) — mirroring the paper's
    framing that format choice trades space against kernel speed.
    """
    kernels = [Kernel.coerce(k) for k in kernels]
    if block_size is None:
        block_size, _ = recommend_block_size(tensor)
    hicoo = HiCOOTensor.from_coo(tensor, block_size)
    features = extract_features(tensor, "tune", block_size, hicoo)
    scores = score_formats(features, kernels, platform, r)
    coo_score = next(s for s in scores if s.fmt is Format.COO)

    def blended(s: FormatScore) -> float:
        t = s.modeled_seconds / max(coo_score.modeled_seconds, 1e-30)
        b = s.storage_bytes / max(coo_score.storage_bytes, 1.0)
        return (1 - storage_weight) * t + storage_weight * b

    winner = min(scores, key=blended)
    return Recommendation(
        fmt=winner.fmt,
        block_size=block_size,
        scores=tuple(scores),
        alpha=features.nnz / max(features.nb, 1),
    )
