"""Observability layer: span tracing, counters, and trace analytics.

Enable with ``Tracer().install()`` (or ``with Tracer() as t: ...``); the
backends, scatter-add workspaces, GPU cost model, and kernels feed the
installed tracer automatically.  Disabled (the default), every
instrumentation site costs one branch on the process-global null tracer.
"""

from repro.obs.analytics import (
    TraceStats,
    WorkerStats,
    analyze,
    imbalance_factor,
    rollup_gauges,
    worker_busy,
)
from repro.obs.attribution import (
    COMPUTE_BOUND,
    MEMORY_BOUND,
    RooflineAttribution,
    attach_to_trace,
    attribute,
    classify_boundedness,
    effective_bandwidth_gbs,
)
from repro.obs.context import (
    TRACE_ENV,
    ContextError,
    TraceContext,
    activate_context,
    current_context,
    derive_span_id,
    install_context,
    new_trace_id,
)
from repro.obs.export import (
    chrome_trace,
    flame_summary,
    load_chrome,
    merge_traces,
    save_chrome,
    write_jsonl,
)
from repro.obs.log import configure as configure_logging
from repro.obs.log import get_logger
from repro.obs.registry import (
    MetricsError,
    MetricsRegistry,
    get_metrics,
    set_metrics,
)
from repro.obs.tracer import (
    CAT_CASE,
    CAT_CHUNK,
    CAT_GPU,
    CAT_KERNEL,
    CAT_REGION,
    CAT_REQUEST,
    CAT_SCHED,
    NULL_TRACER,
    NullTracer,
    SpanEvent,
    Trace,
    Tracer,
    current_tracer,
    scoped_tracer,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "current_tracer",
    "scoped_tracer",
    "Trace",
    "SpanEvent",
    "CAT_REGION",
    "CAT_CASE",
    "CAT_CHUNK",
    "CAT_KERNEL",
    "CAT_GPU",
    "CAT_REQUEST",
    "CAT_SCHED",
    "TraceContext",
    "ContextError",
    "TRACE_ENV",
    "new_trace_id",
    "derive_span_id",
    "current_context",
    "activate_context",
    "install_context",
    "get_logger",
    "configure_logging",
    "TraceStats",
    "WorkerStats",
    "analyze",
    "worker_busy",
    "imbalance_factor",
    "rollup_gauges",
    "RooflineAttribution",
    "attribute",
    "attach_to_trace",
    "classify_boundedness",
    "effective_bandwidth_gbs",
    "MEMORY_BOUND",
    "COMPUTE_BOUND",
    "MetricsRegistry",
    "MetricsError",
    "get_metrics",
    "set_metrics",
    "chrome_trace",
    "merge_traces",
    "save_chrome",
    "load_chrome",
    "write_jsonl",
    "flame_summary",
]
