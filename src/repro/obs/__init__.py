"""Observability layer: span tracing, counters, and trace analytics.

Enable with ``Tracer().install()`` (or ``with Tracer() as t: ...``); the
backends, scatter-add workspaces, GPU cost model, and kernels feed the
installed tracer automatically.  Disabled (the default), every
instrumentation site costs one branch on the process-global null tracer.
"""

from repro.obs.analytics import (
    TraceStats,
    WorkerStats,
    analyze,
    imbalance_factor,
    worker_busy,
)
from repro.obs.export import (
    chrome_trace,
    flame_summary,
    load_chrome,
    save_chrome,
    write_jsonl,
)
from repro.obs.tracer import (
    CAT_CASE,
    CAT_CHUNK,
    CAT_GPU,
    CAT_KERNEL,
    CAT_REGION,
    NULL_TRACER,
    NullTracer,
    SpanEvent,
    Trace,
    Tracer,
    current_tracer,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "current_tracer",
    "Trace",
    "SpanEvent",
    "CAT_REGION",
    "CAT_CASE",
    "CAT_CHUNK",
    "CAT_KERNEL",
    "CAT_GPU",
    "TraceStats",
    "WorkerStats",
    "analyze",
    "worker_busy",
    "imbalance_factor",
    "chrome_trace",
    "save_chrome",
    "load_chrome",
    "write_jsonl",
    "flame_summary",
]
