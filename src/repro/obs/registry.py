"""Process-global, slot-aware metrics registry with Prometheus export.

Traces answer "what happened inside *this* kernel invocation"; a
long-running sweep needs the orthogonal view — monotonically growing
counters, level gauges and latency histograms that survive across cases
and can be scraped or dumped while the sweep is still running.  This
module is that substrate:

* :class:`MetricsRegistry` — counters, gauges and histograms, each with
  a **label set** (``kernel="mttkrp", fmt="hicoo"``), Prometheus style.
  Writes are **slot-aware**: every metric value is sharded into
  per-worker cells keyed by the backend worker slot executing the write
  (:func:`repro.parallel.slots.current_slot`), falling back to the OS
  thread, so concurrent increments from backend chunks never contend on
  one cell; readers aggregate cells on export.
* exporters — :meth:`MetricsRegistry.render_prometheus` (text
  exposition format) and :meth:`MetricsRegistry.as_dict` (JSON), both
  deterministic (sorted names and label sets) so goldens can pin them.
* :meth:`MetricsRegistry.absorb_trace` — folds a frozen
  :class:`~repro.obs.tracer.Trace`'s counters and gauges into the
  registry, which is how the tracer's per-kernel counters feed the
  process-wide view.
* a process-global default (:func:`get_metrics` / :func:`set_metrics`)
  fed by the sweep executor and the suite runner, dumped by the
  ``repro metrics`` CLI.
"""

from __future__ import annotations

import math
import threading
from collections import deque

# Lazy proxy, mirroring repro.obs.tracer: repro.parallel instruments
# itself against repro.obs, so importing slots at module level would
# close an import cycle.
_current_slot = None


def _slot():
    global _current_slot
    if _current_slot is None:
        from repro.parallel.slots import current_slot as cs
        _current_slot = cs
    return _current_slot()


def _cell_key() -> tuple:
    slot = _slot()
    if slot is not None:
        return ("slot", int(slot))
    return ("tid", threading.get_ident())


def _label_key(labels: dict) -> tuple:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


#: Default histogram buckets (seconds-flavoured, log-spaced).
DEFAULT_BUCKETS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

COUNTER = "counter"
GAUGE = "gauge"
HISTOGRAM = "histogram"

#: Sliding window of raw observations kept per histogram label set, so
#: quantiles (p50/p95/p99) reflect *recent* latency rather than bucket
#: interpolation over the whole process lifetime.
RECENT_WINDOW = 1024


class MetricsError(ValueError):
    """A metric used inconsistently (kind clash, bad buckets)."""


class _Metric:
    """One named metric: kind, per-label-set per-cell values."""

    __slots__ = ("name", "kind", "buckets", "series", "recent")

    def __init__(self, name: str, kind: str, buckets=None):
        self.name = name
        self.kind = kind
        self.buckets = buckets
        #: label_key -> cell_key -> value (counter/gauge) or
        #: ``[bucket_counts..., count, total]`` list (histogram).
        self.series: dict[tuple, dict] = {}
        #: label_key -> bounded deque of raw observations (histograms
        #: only) feeding quantile summaries.  deque.append is atomic
        #: under the GIL, so the hot path stays lock-free.
        self.recent: dict[tuple, deque] = {}


class MetricsRegistry:
    """Labelled counters/gauges/histograms with lock-light hot paths."""

    def __init__(self):
        self._metrics: dict[str, _Metric] = {}
        self._lock = threading.Lock()

    # -- registration -------------------------------------------------- #
    def _metric(self, name: str, kind: str, buckets=None) -> _Metric:
        metric = self._metrics.get(name)
        if metric is None:
            with self._lock:
                metric = self._metrics.get(name)
                if metric is None:
                    if kind == HISTOGRAM:
                        buckets = tuple(float(b) for b in (buckets or DEFAULT_BUCKETS))
                        if list(buckets) != sorted(buckets) or len(set(buckets)) != len(buckets):
                            raise MetricsError(
                                f"histogram {name!r} buckets must be strictly "
                                f"increasing: {buckets}"
                            )
                    metric = _Metric(name, kind, buckets)
                    self._metrics[name] = metric
        if metric.kind != kind:
            raise MetricsError(
                f"metric {name!r} is a {metric.kind}, not a {kind}"
            )
        return metric

    def _cells(self, metric: _Metric, labels: dict) -> dict:
        lk = _label_key(labels)
        cells = metric.series.get(lk)
        if cells is None:
            with self._lock:
                cells = metric.series.setdefault(lk, {})
        return cells

    # -- writes (hot path: no lock once the series exists) -------------- #
    def inc(self, name: str, value: float = 1.0, **labels) -> None:
        """Add ``value`` to the counter ``name`` for this label set."""
        cells = self._cells(self._metric(name, COUNTER), labels)
        key = _cell_key()
        cells[key] = cells.get(key, 0.0) + float(value)

    def set_gauge(self, name: str, value: float, **labels) -> None:
        """Set the gauge's last-observed value for this worker cell."""
        cells = self._cells(self._metric(name, GAUGE), labels)
        cells[_cell_key()] = float(value)

    def observe(self, name: str, value: float, buckets=None, **labels) -> None:
        """Record one observation into the histogram ``name``.

        ``buckets`` (upper bounds, strictly increasing) only takes
        effect on the histogram's first use.
        """
        metric = self._metric(name, HISTOGRAM, buckets)
        cells = self._cells(metric, labels)
        key = _cell_key()
        cell = cells.get(key)
        if cell is None:
            # bucket counts + [count, sum] tail.
            cell = cells[key] = [0] * len(metric.buckets) + [0, 0.0]
        value = float(value)
        for i, bound in enumerate(metric.buckets):
            if value <= bound:
                cell[i] += 1
                break
        cell[-2] += 1
        cell[-1] += value
        lk = _label_key(labels)
        recent = metric.recent.get(lk)
        if recent is None:
            with self._lock:
                recent = metric.recent.setdefault(
                    lk, deque(maxlen=RECENT_WINDOW)
                )
        recent.append(value)

    # -- trace ingestion ----------------------------------------------- #
    def absorb_trace(self, trace, **labels) -> None:
        """Fold a frozen trace's counters/gauges into the registry.

        Counter totals (summed across workers) increment counters of the
        same name; gauges enter at their max-per-slot-then-sum rollup
        (see :func:`repro.obs.analytics.rollup_gauges`).  ``labels``
        (e.g. ``kernel=..., fmt=...``) tag every absorbed series.
        """
        from repro.obs.analytics import rollup_gauges

        for name in sorted(trace.counters):
            self.inc(name, trace.counter_total(name), **labels)
        for name, value in sorted(rollup_gauges(trace).items()):
            self.set_gauge(name, value, **labels)

    def absorb_dict(self, dump: dict, **labels) -> None:
        """Fold another registry's :meth:`as_dict` export into this one.

        This is how worker-subprocess metrics come home: the worker
        dumps its registry into the case verdict and the executor
        absorbs it here, so ``exec.*`` counters and kernel histograms
        survive process isolation.  Counters add, gauges overwrite,
        histogram bucket/count/sum totals merge (mismatched bucket
        bounds degrade to count/sum only).  Raw observation windows are
        not carried across, so absorbed-only histograms report ``None``
        quantiles.  ``labels`` tag every absorbed series.
        """
        for name, series in (dump.get("counters") or {}).items():
            for s in series:
                merged = {**(s.get("labels") or {}), **labels}
                self.inc(name, float(s.get("value", 0.0)), **merged)
        for name, series in (dump.get("gauges") or {}).items():
            for s in series:
                merged = {**(s.get("labels") or {}), **labels}
                self.set_gauge(name, float(s.get("value", 0.0)), **merged)
        for name, series in (dump.get("histograms") or {}).items():
            for s in series:
                self._absorb_histogram(name, s, labels)

    def _absorb_histogram(self, name: str, snap: dict, extra_labels: dict) -> None:
        buckets = snap.get("buckets") or {}
        bounds = sorted(
            float(le) for le in buckets if le != "+Inf"
        )
        metric = self._metric(name, HISTOGRAM, bounds or None)
        merged = {**(snap.get("labels") or {}), **extra_labels}
        cells = self._cells(metric, merged)
        key = _cell_key()
        cell = cells.get(key)
        if cell is None:
            cell = cells[key] = [0] * len(metric.buckets) + [0, 0.0]
        # De-cumulate the exported bucket counts back into per-bucket
        # increments; bounds absent from the dump contribute nothing.
        previous = 0
        for i, bound in enumerate(metric.buckets):
            cumulative = buckets.get(_le(bound))
            if cumulative is None:
                continue
            cell[i] += int(cumulative) - previous
            previous = int(cumulative)
        cell[-2] += int(snap.get("count", 0))
        cell[-1] += float(snap.get("sum", 0.0))

    # -- reads --------------------------------------------------------- #
    def _aggregate(self, metric: _Metric) -> dict:
        """label_key -> aggregated value, cells folded under the lock."""
        out = {}
        with self._lock:
            series = {lk: dict(cells) for lk, cells in metric.series.items()}
        for lk, cells in series.items():
            if metric.kind == HISTOGRAM:
                agg = [0] * (len(metric.buckets) + 1) + [0.0]
                for cell in cells.values():
                    for i, v in enumerate(cell):
                        agg[i] += v
                out[lk] = agg
            elif metric.kind == COUNTER:
                out[lk] = float(sum(cells.values()))
            else:  # gauge: sum of per-cell levels (one level per worker)
                out[lk] = float(sum(cells.values()))
        return out

    def counter_value(self, name: str, **labels) -> float:
        metric = self._metrics.get(name)
        if metric is None:
            return 0.0
        return self._aggregate(metric).get(_label_key(labels), 0.0)

    def gauge_value(self, name: str, **labels) -> float:
        metric = self._metrics.get(name)
        if metric is None:
            return 0.0
        return self._aggregate(metric).get(_label_key(labels), 0.0)

    def counter_totals(self, prefix: "str | None" = None) -> dict:
        """``name -> total`` for counters, summed across label sets.

        ``prefix`` filters by name prefix (e.g. ``"serve."``) — the
        serve daemon's ``status`` op reports its counters this way.
        """
        out = {}
        with self._lock:
            metrics = dict(self._metrics)
        for name in sorted(metrics):
            metric = metrics[name]
            if metric.kind != COUNTER:
                continue
            if prefix and not name.startswith(prefix):
                continue
            out[name] = float(sum(self._aggregate(metric).values()))
        return out

    def histogram_snapshot(self, name: str, **labels) -> dict:
        """``{"count": n, "sum": s, "buckets": {le: cumulative_count}}``."""
        metric = self._metrics.get(name)
        if metric is None or metric.kind != HISTOGRAM:
            return {"count": 0, "sum": 0.0, "buckets": {}}
        agg = self._aggregate(metric).get(_label_key(labels))
        if agg is None:
            return {"count": 0, "sum": 0.0, "buckets": {}}
        buckets, cumulative = {}, 0
        for bound, n in zip(metric.buckets, agg):
            cumulative += n
            buckets[_le(bound)] = cumulative
        buckets["+Inf"] = agg[-2]
        return {"count": int(agg[-2]), "sum": float(agg[-1]), "buckets": buckets}

    def histogram_quantiles(self, name: str, qs=None, **labels) -> "dict | None":
        """Empirical quantiles over the recent-observation window.

        Returns ``{"p50": ..., "p95": ..., "p99": ...}`` (or the
        requested ``qs``) from the raw observations retained for the
        histogram, or ``None`` when there is no data — the same
        no-fake-zeros convention as :func:`repro.metrics.stats`.  With no
        ``labels`` the windows of every label set are pooled; with
        labels only that exact series is summarized.
        """
        from repro.metrics.stats import percentiles

        metric = self._metrics.get(name)
        if metric is None or metric.kind != HISTOGRAM:
            return None
        with self._lock:
            if labels:
                windows = [tuple(metric.recent.get(_label_key(labels), ()))]
            else:
                windows = [
                    tuple(metric.recent[lk]) for lk in sorted(metric.recent)
                ]
        values = [v for window in windows for v in window]
        if qs is None:
            return percentiles(values)
        return percentiles(values, qs)

    # -- exporters ----------------------------------------------------- #
    def as_dict(self) -> dict:
        """Deterministic JSON form: kind -> name -> list of label series."""
        out = {"counters": {}, "gauges": {}, "histograms": {}}
        with self._lock:
            metrics = dict(self._metrics)
        for name in sorted(metrics):
            metric = metrics[name]
            agg = self._aggregate(metric)
            series = []
            for lk in sorted(agg):
                labels = dict(lk)
                if metric.kind == HISTOGRAM:
                    snap = self.histogram_snapshot(name, **labels)
                    quantiles = self.histogram_quantiles(name, **labels)
                    series.append(
                        {"labels": labels, **snap, "quantiles": quantiles}
                    )
                else:
                    series.append({"labels": labels, "value": agg[lk]})
            key = {COUNTER: "counters", GAUGE: "gauges", HISTOGRAM: "histograms"}
            out[key[metric.kind]][name] = series
        return out

    def render_prometheus(self) -> str:
        """The registry in Prometheus text exposition format."""
        lines = []
        with self._lock:
            metrics = dict(self._metrics)
        for name in sorted(metrics):
            metric = metrics[name]
            pname = _prom_name(name)
            lines.append(f"# TYPE {pname} {metric.kind}")
            agg = self._aggregate(metric)
            qlines = []
            for lk in sorted(agg):
                labels = dict(lk)
                if metric.kind == HISTOGRAM:
                    snap = self.histogram_snapshot(name, **labels)
                    for le, n in snap["buckets"].items():
                        lines.append(
                            f"{pname}_bucket{_prom_labels(labels, le=le)} {n}"
                        )
                    lines.append(
                        f"{pname}_sum{_prom_labels(labels)} {_prom_value(snap['sum'])}"
                    )
                    lines.append(
                        f"{pname}_count{_prom_labels(labels)} {snap['count']}"
                    )
                    quantiles = self.histogram_quantiles(name, **labels)
                    for qkey in sorted(
                        quantiles or (), key=lambda k: float(k[1:])
                    ):
                        qlabels = {
                            **labels,
                            "quantile": f"{float(qkey[1:]) / 100.0:g}",
                        }
                        qlines.append(
                            f"{pname}_quantile{_prom_labels(qlabels)} "
                            f"{_prom_value(quantiles[qkey])}"
                        )
                else:
                    lines.append(
                        f"{pname}{_prom_labels(labels)} {_prom_value(agg[lk])}"
                    )
            if qlines:
                # Quantiles are derived gauges, exported as a sibling
                # metric so the histogram series itself stays canonical.
                lines.append(f"# TYPE {pname}_quantile gauge")
                lines.extend(qlines)
        return "\n".join(lines) + ("\n" if lines else "")

    def clear(self) -> None:
        """Drop every metric (tests and fresh sweep invocations)."""
        with self._lock:
            self._metrics.clear()


def _le(bound: float) -> str:
    """Prometheus ``le`` label for a bucket bound (no trailing zeros)."""
    if bound == math.inf:
        return "+Inf"
    text = f"{bound:.10f}".rstrip("0").rstrip(".")
    return text or "0"


def _prom_name(name: str) -> str:
    return "".join(c if (c.isalnum() or c in "_:") else "_" for c in name)


def _prom_escape(value: str) -> str:
    return value.replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _prom_labels(labels: dict, le: "str | None" = None) -> str:
    items = sorted(labels.items())
    if le is not None:
        items.append(("le", le))
    if not items:
        return ""
    body = ",".join(f'{_prom_name(k)}="{_prom_escape(str(v))}"' for k, v in items)
    return "{" + body + "}"


def _prom_value(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


#: The process-global registry fed by the executor/runner by default.
_GLOBAL = MetricsRegistry()


def get_metrics() -> MetricsRegistry:
    """The process-global registry."""
    return _GLOBAL


def set_metrics(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the process-global registry; returns the previous one."""
    global _GLOBAL
    previous = _GLOBAL
    _GLOBAL = registry
    return previous
