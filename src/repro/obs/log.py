"""Structured, trace-correlated logging for the whole stack.

One logging discipline replaces the ad-hoc ``print(..., file=sys.stderr)``
diagnostics that used to be scattered through the CLI, ingest, executor
and daemon: every record is an *event* plus key/value fields, emitted as
one line on **stderr** so that machine-readable stdout (``--json``
modes, the serve protocol) stays byte-clean.

Configuration is environment-driven so it works identically in the CLI,
the daemon and worker subprocesses:

* ``REPRO_LOG`` — ``json`` (sorted-key JSON lines), ``text`` (human
  one-liners, the default), or ``off``;
* ``REPRO_LOG_LEVEL`` — ``debug`` | ``info`` | ``warn`` | ``error``
  (default ``info``).

Records are automatically correlated: when a trace context is active
(:func:`repro.obs.context.current_context`) the ``trace_id`` and parent
span ride along, and inside a worker-pool slot the slot index is
attached — so ``REPRO_LOG=json`` output can be joined against merged
Chrome traces by trace_id.

The disabled path is one cached-config check plus an integer compare;
``REPRO_LOG=off`` keeps hot loops at parity with no logging at all.
"""

from __future__ import annotations

import json
import os
import sys
import threading
import time

MODE_ENV = "REPRO_LOG"
LEVEL_ENV = "REPRO_LOG_LEVEL"

MODES = ("json", "text", "off")
LEVELS = {"debug": 10, "info": 20, "warn": 30, "error": 40}

_DEFAULT_MODE = "text"
_DEFAULT_LEVEL = "info"


class _Config:
    __slots__ = ("mode", "level", "stream")

    def __init__(self, mode, level, stream):
        self.mode = mode
        self.level = level
        self.stream = stream


_lock = threading.Lock()
_config: "_Config | None" = None
_loggers: dict = {}


def _resolve() -> _Config:
    global _config
    cfg = _config
    if cfg is None:
        mode = os.environ.get(MODE_ENV, _DEFAULT_MODE).strip().lower()
        if mode not in MODES:
            mode = _DEFAULT_MODE
        level = os.environ.get(LEVEL_ENV, _DEFAULT_LEVEL).strip().lower()
        if level not in LEVELS:
            level = _DEFAULT_LEVEL
        with _lock:
            if _config is None:
                _config = _Config(mode, LEVELS[level], None)
            cfg = _config
    return cfg


def configure(mode=None, level=None, stream=None) -> None:
    """Override the environment-resolved config (tests, embedders).

    ``stream=None`` keeps the default (``sys.stderr`` looked up at emit
    time, so pytest capture and redirection keep working).
    """
    base = _resolve()
    with _lock:
        global _config
        _config = _Config(
            mode if mode is not None else base.mode,
            LEVELS[level] if level is not None else base.level,
            stream if stream is not None else base.stream,
        )


def reset() -> None:
    """Drop any cached/overridden config; re-read the environment lazily."""
    global _config
    with _lock:
        _config = None


def _correlation() -> dict:
    """trace_id/span/slot fields for the current thread, best-effort."""
    fields = {}
    try:
        from repro.obs.context import current_context

        ctx = current_context()
        if ctx is not None:
            fields["trace_id"] = ctx.trace_id
            if ctx.parent_span:
                fields["span"] = ctx.parent_span
    except Exception:
        pass
    try:
        from repro.parallel.slots import current_slot

        slot = current_slot()
        if slot is not None:
            fields["slot"] = slot
    except Exception:
        pass
    return fields


class Logger:
    """A named structured logger; cheap enough to create eagerly."""

    __slots__ = ("name",)

    def __init__(self, name: str):
        self.name = name

    def enabled_for(self, level: str) -> bool:
        cfg = _resolve()
        return cfg.mode != "off" and LEVELS.get(level, 100) >= cfg.level

    def debug(self, event: str, **fields) -> None:
        self._emit("debug", event, fields)

    def info(self, event: str, **fields) -> None:
        self._emit("info", event, fields)

    def warn(self, event: str, **fields) -> None:
        self._emit("warn", event, fields)

    def error(self, event: str, **fields) -> None:
        self._emit("error", event, fields)

    def _emit(self, level: str, event: str, fields: dict) -> None:
        cfg = _resolve()
        if cfg.mode == "off" or LEVELS[level] < cfg.level:
            return
        record = dict(fields)
        record.update(_correlation())
        # Reserved keys win over caller fields of the same name.
        record["ts"] = round(time.time(), 6)
        record["level"] = level
        record["logger"] = self.name
        record["event"] = event
        stream = cfg.stream if cfg.stream is not None else sys.stderr
        try:
            if cfg.mode == "json":
                line = json.dumps(record, sort_keys=True, default=str)
            else:
                extras = " ".join(
                    f"{k}={record[k]}"
                    for k in sorted(record)
                    if k not in ("ts", "level", "logger", "event")
                )
                stamp = time.strftime("%H:%M:%S", time.localtime(record["ts"]))
                line = f"[{stamp}] {level:<5} {self.name}: {event}"
                if extras:
                    line = f"{line} {extras}"
            stream.write(line + "\n")
            stream.flush()
        except (OSError, ValueError):
            pass  # a dead stderr (closed pipe) must never crash the run


def get_logger(name: str) -> Logger:
    """The cached :class:`Logger` for ``name`` (dotted, like stdlib)."""
    logger = _loggers.get(name)
    if logger is None:
        with _lock:
            logger = _loggers.setdefault(name, Logger(name))
    return logger
