"""Fold a recorded trace into the paper's utilization metrics.

The paper's load-balance discussion (Observations 1, 4) compares the
busiest worker against the mean — a ratio of 1.0 is a perfectly balanced
loop, N means one worker did N times its fair share and the others waited.
:func:`analyze` derives that and its companions from the chunk spans the
backends record:

* **per-worker busy time** — summed chunk-span durations per worker slot;
* **load-imbalance factor** — max busy / mean busy across workers;
* **chunk imbalance** — max / mean single-chunk duration (granularity
  skew, independent of which worker drew the long chunk);
* **busy fraction** — total busy time over ``nworkers x wall``: the share
  of the region's worker-seconds actually spent in chunk bodies;
* **critical-path estimate** — the busiest worker's chunk time plus the
  wall clock spent outside any parallel region (serial pre/post
  processing): a lower bound on the traced interval at infinite width;
* **counter rollups** — every counter summed across workers; gauges roll
  up **max-per-worker, then summed across slot workers**
  (:func:`rollup_gauges`), so a byte gauge re-set across regions
  contributes each arena's peak exactly once.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.tracer import CAT_CHUNK, CAT_REGION, Trace


@dataclass(frozen=True)
class WorkerStats:
    """Chunk-execution totals of one worker slot."""

    worker: str
    busy_s: float
    nchunks: int
    max_chunk_s: float

    @property
    def mean_chunk_s(self) -> float:
        return self.busy_s / self.nchunks if self.nchunks else 0.0


@dataclass(frozen=True)
class TraceStats:
    """Derived utilization metrics of one trace (or one traced kernel)."""

    wall_s: float
    nworkers: int
    nchunks: int
    total_busy_s: float
    per_worker: tuple
    imbalance: float
    chunk_imbalance: float
    busy_frac: float
    critical_path_s: float
    counters: dict = field(default_factory=dict)
    gauges: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """JSON-friendly form for ``PerfRecord.extra`` / result files."""
        return {
            "wall_s": self.wall_s,
            "nworkers": self.nworkers,
            "nchunks": self.nchunks,
            "total_busy_s": self.total_busy_s,
            "imbalance": self.imbalance,
            "chunk_imbalance": self.chunk_imbalance,
            "busy_frac": self.busy_frac,
            "critical_path_s": self.critical_path_s,
            "busy_per_worker": {w.worker: w.busy_s for w in self.per_worker},
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
        }

    def render(self) -> str:
        """The ``repro trace`` report: busy table + derived factors."""
        lines = ["per-worker busy time"]
        lines.append(f"  {'worker':<12} {'busy_s':>10} {'chunks':>7} "
                     f"{'max_chunk_s':>12} {'share':>7}")
        total = self.total_busy_s or 1.0
        for w in self.per_worker:
            lines.append(
                f"  {w.worker:<12} {w.busy_s:>10.6f} {w.nchunks:>7d} "
                f"{w.max_chunk_s:>12.6f} {w.busy_s / total:>6.1%}"
            )
        lines.append("")
        lines.append(f"wall clock          {self.wall_s:.6f} s")
        lines.append(f"load imbalance      {self.imbalance:.3f}  (max/mean worker busy)")
        lines.append(f"chunk imbalance     {self.chunk_imbalance:.3f}  (max/mean chunk time)")
        lines.append(f"busy fraction       {self.busy_frac:.1%}  of {self.nworkers} worker(s) x wall")
        lines.append(f"critical path est.  {self.critical_path_s:.6f} s")
        if self.counters:
            lines.append("")
            lines.append("counter rollups (summed across workers)")
            for name in sorted(self.counters):
                lines.append(f"  {name:<28} {self.counters[name]:>16,.1f}")
        for name in sorted(self.gauges):
            lines.append(f"  {name:<28} {self.gauges[name]:>16,.1f} (gauge)")
        return "\n".join(lines)


def worker_busy(trace: Trace) -> dict:
    """``worker label -> summed chunk-span seconds``."""
    busy: dict[str, float] = {}
    for e in trace.spans(CAT_CHUNK):
        busy[e.worker] = busy.get(e.worker, 0.0) + e.duration_s
    return busy


def imbalance_factor(busy: dict) -> float:
    """Max over mean of the per-worker busy times (1.0 when balanced)."""
    values = [v for v in busy.values() if v > 0.0]
    if not values:
        return 1.0
    mean = sum(values) / len(values)
    return max(values) / mean if mean > 0 else 1.0


def _merged_duration(intervals) -> float:
    """Total length of the union of (t0, t1) intervals."""
    total, end = 0.0, None
    for t0, t1 in sorted(intervals):
        if end is None or t0 > end:
            total += t1 - t0
            end = t1
        elif t1 > end:
            total += t1 - end
            end = t1
    return total


def rollup_gauges(trace: Trace) -> dict:
    """Roll each gauge up as **max per worker, then sum across workers**.

    A gauge is a level, not a flow: a worker that sets ``ws.arena_bytes``
    in every region re-states its *current* arena size, it does not
    allocate a fresh arena each time.  Summing last-values per worker is
    right (each slot owns one arena), but summing every observation — or
    summing last-values after a region shrank some arenas — double-counts
    or under-counts the high-water footprint.  The rule here: take each
    worker's **peak** observation (``Trace.gauge_peaks``, falling back to
    the last value for hand-built traces), then sum across workers, so
    the rollup is the aggregate high-water level across the pool.
    """
    out: dict[str, float] = {}
    names = set(trace.gauges) | set(trace.gauge_peaks)
    for name in names:
        last = trace.gauges.get(name, {})
        peaks = dict(last)
        peaks.update(trace.gauge_peaks.get(name, {}))
        out[name] = float(sum(peaks.values()))
    return out


def analyze(trace: Trace) -> TraceStats:
    """Fold chunk spans and counters into :class:`TraceStats`.

    Counters are summed across workers; gauges use the
    max-per-worker-then-sum rule of :func:`rollup_gauges`.
    """
    chunks = trace.spans(CAT_CHUNK)
    busy = worker_busy(trace)
    per_worker = []
    for worker in sorted(busy):
        mine = [e for e in chunks if e.worker == worker]
        per_worker.append(
            WorkerStats(
                worker=worker,
                busy_s=busy[worker],
                nchunks=len(mine),
                max_chunk_s=max((e.duration_s for e in mine), default=0.0),
            )
        )
    total_busy = sum(busy.values())
    wall = trace.wall_s
    nworkers = max(len(busy), 1)
    durations = [e.duration_s for e in chunks]
    chunk_imb = 1.0
    if durations:
        mean = sum(durations) / len(durations)
        chunk_imb = max(durations) / mean if mean > 0 else 1.0
    # Serial time: the traced interval not covered by any parallel region.
    region_s = _merged_duration(
        [(e.t0, e.t1) for e in trace.spans(CAT_REGION)]
    )
    serial_s = max(0.0, wall - region_s)
    critical = max(busy.values(), default=0.0) + serial_s
    counters = {
        name: float(sum(per.values())) for name, per in trace.counters.items()
    }
    gauges = rollup_gauges(trace)
    return TraceStats(
        wall_s=wall,
        nworkers=nworkers,
        nchunks=len(chunks),
        total_busy_s=total_busy,
        per_worker=tuple(per_worker),
        imbalance=imbalance_factor(busy),
        chunk_imbalance=chunk_imb,
        busy_frac=(total_busy / (nworkers * wall)) if wall > 0 else 0.0,
        critical_path_s=critical,
        counters=counters,
        gauges=gauges,
    )
