"""Span-based tracing and counters for the parallel execution stack.

The paper's observations are *explanations* of kernel time — which worker
ran which chunk, how long, how many scatter updates collided — yet a
benchmark that only reports end-to-end seconds cannot support them.  This
module records that missing structure:

* :class:`Tracer` — nestable wall-clock **spans**
  (``with tracer.span("mttkrp", fmt="coo", mode=0): ...``) and named
  **counters**/**gauges**, buffered *per worker*: events land in the
  buffer of the backend worker slot executing them
  (:func:`repro.parallel.slots.current_slot`), falling back to a
  per-OS-thread buffer outside backend chunks.  A worker slot is held
  exclusively while a chunk runs, so buffer appends are thread-confined
  and need no locking on the hot path.
* :class:`NullTracer` — the installed-by-default no-op.  Instrumentation
  sites are written as ``if tracer.enabled: ...`` so a disabled span
  costs one attribute load and one branch; ``NullTracer.span`` returns a
  shared reentrant null context for call sites that skip the guard.
* :func:`current_tracer` / :meth:`Tracer.install` — process-global
  registration.  Instrumented code (backends, kernels, the GPU cost
  model) always reads the global, so enabling tracing is one call and
  requires no plumbing through kernel signatures; the race-check and
  chaos backends inherit the installed tracer the same way.

The recorded trace freezes into an immutable :class:`Trace` for the
analytics (:mod:`repro.obs.analytics`) and exporters
(:mod:`repro.obs.export`).
"""

from __future__ import annotations

import contextlib
import threading
import time
from dataclasses import dataclass, field

# Imported lazily: ``repro.parallel`` instruments itself against this
# module, so a module-level import of ``repro.parallel.slots`` would close
# an import cycle whenever ``repro.obs`` loads first.
_current_slot = None


def current_slot():
    """Proxy for :func:`repro.parallel.slots.current_slot` (lazy-bound)."""
    global _current_slot
    if _current_slot is None:
        from repro.parallel.slots import current_slot as cs
        _current_slot = cs
    return _current_slot()

#: Event categories used by the suite's instrumentation sites.
CAT_REGION = "region"   # one parallel_for / map_ranges loop
CAT_CHUNK = "chunk"     # one chunk executed by one worker slot
CAT_KERNEL = "kernel"   # one kernel invocation (mttkrp, ttv, ...)
CAT_GPU = "gpu"         # one simulated GPU launch
CAT_CASE = "case"       # one sweep-executor case attempt
CAT_REQUEST = "request" # one serve-daemon request (client → result)
CAT_SCHED = "sched"     # one scheduler execution (dequeue → case done)


@dataclass
class SpanEvent:
    """One closed span (or instant marker) recorded by a worker."""

    name: str
    cat: str
    t0: float
    t1: float
    #: Backend worker slot executing the span, or -1 outside any chunk.
    slot: int
    #: Nesting depth within the recording thread at the time of entry.
    depth: int
    #: Ancestor span names (same thread) ending with this span's name —
    #: the folded-stack path the flame summary groups by.
    path: tuple
    attrs: dict
    #: Instant events mark a point in time (``t1 == t0``).
    instant: bool = False
    #: Worker label and Chrome-trace thread id, resolved at freeze time.
    worker: str = ""
    tid: int = 0

    @property
    def duration_s(self) -> float:
        return self.t1 - self.t0


class _WorkerBuffer:
    """Events and counter totals of one worker (slot or plain thread)."""

    __slots__ = ("key", "events", "counters", "gauges", "gauge_peaks")

    def __init__(self, key: tuple):
        self.key = key
        self.events: list[SpanEvent] = []
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        #: High-water mark of every gauge this worker ever set — a gauge
        #: re-set across regions keeps its peak here even though
        #: ``gauges`` only retains the last value.
        self.gauge_peaks: dict[str, float] = {}


class _Span:
    """Context manager recording one span on exit.

    A fresh ``_Span`` is created per :meth:`Tracer.span` call, so the same
    tracer can have any number of spans open concurrently across threads.
    """

    __slots__ = ("_tracer", "name", "cat", "attrs", "_t0")

    def __init__(self, tracer: "Tracer", name: str, cat: str, attrs: dict):
        self._tracer = tracer
        self.name = name
        self.cat = cat
        self.attrs = attrs
        self._t0 = 0.0

    def __enter__(self) -> "_Span":
        self._tracer._stack().append(self)
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        t1 = time.perf_counter()
        tracer = self._tracer
        stack = tracer._stack()
        stack.pop()
        if exc_type is not None:
            self.attrs["error"] = exc_type.__name__
        slot = current_slot()
        tracer._buffer().events.append(
            SpanEvent(
                name=self.name,
                cat=self.cat,
                t0=self._t0,
                t1=t1,
                slot=-1 if slot is None else int(slot),
                depth=len(stack),
                path=tuple(s.name for s in stack) + (self.name,),
                attrs=self.attrs,
            )
        )


@dataclass(frozen=True)
class Trace:
    """An immutable snapshot of everything a :class:`Tracer` recorded.

    ``counters``/``gauges`` map ``name -> {worker_label: value}``; events
    are sorted by start time with ``worker``/``tid`` resolved (slot ``n``
    becomes ``worker-n`` with Chrome tid ``n``; non-slot threads become
    ``thread-i`` with tids starting at :data:`EXTERNAL_TID_BASE`).
    ``gauges`` holds each worker's *last* observation; ``gauge_peaks``
    holds the per-worker high-water mark across the whole recording
    (what the analytics roll up for byte gauges re-set across regions).
    """

    events: tuple
    counters: dict
    gauges: dict
    meta: dict = field(default_factory=dict)
    gauge_peaks: dict = field(default_factory=dict)
    #: Traces adopted from other processes (worker subprocesses) — kept
    #: separate rather than merged, so exporters can assign per-process
    #: pids and timelines (:func:`repro.obs.export.merge_traces`).
    children: tuple = ()
    #: ``time.time() - time.perf_counter()`` sampled when the recording
    #: tracer was created.  Event timestamps are perf-counter values with
    #: a per-process epoch; adding this offset places them on the shared
    #: wall clock so traces from different processes align.
    epoch_offset_s: float = 0.0

    @property
    def t0(self) -> float:
        return min((e.t0 for e in self.events), default=0.0)

    @property
    def wall_s(self) -> float:
        """End-to-end wall clock spanned by the recorded events."""
        if not self.events:
            return 0.0
        return max(e.t1 for e in self.events) - self.t0

    def spans(self, cat: "str | None" = None):
        """Closed (non-instant) spans, optionally of one category."""
        return [
            e for e in self.events
            if not e.instant and (cat is None or e.cat == cat)
        ]

    def counter_total(self, name: str) -> float:
        """One counter summed across workers (0.0 if never bumped)."""
        return float(sum(self.counters.get(name, {}).values()))

    @property
    def workers(self) -> list:
        """Worker labels observed in the trace, slot workers first."""
        seen: dict[str, None] = {}
        for e in self.events:
            seen.setdefault(e.worker)
        for per in list(self.counters.values()) + list(self.gauges.values()):
            for w in per:
                seen.setdefault(w)
        return sorted(seen, key=lambda w: (not w.startswith("worker-"), w))

    # -- wire form (worker verdict JSON) ------------------------------- #
    def to_dict(self) -> dict:
        """A JSON-safe form carrying the full trace across processes.

        This is how a worker subprocess ships its frozen trace home
        inside the case verdict; :meth:`from_dict` round-trips it so the
        parent can :meth:`Tracer.adopt` the result.
        """
        return {
            "events": [
                {
                    "name": e.name,
                    "cat": e.cat,
                    "t0": e.t0,
                    "t1": e.t1,
                    "slot": e.slot,
                    "depth": e.depth,
                    "path": list(e.path),
                    "attrs": dict(e.attrs),
                    "instant": e.instant,
                    "worker": e.worker,
                    "tid": e.tid,
                }
                for e in self.events
            ],
            "counters": {k: dict(v) for k, v in self.counters.items()},
            "gauges": {k: dict(v) for k, v in self.gauges.items()},
            "gauge_peaks": {k: dict(v) for k, v in self.gauge_peaks.items()},
            "meta": dict(self.meta),
            "epoch_offset_s": self.epoch_offset_s,
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Trace":
        events = tuple(
            SpanEvent(
                name=e["name"],
                cat=e["cat"],
                t0=float(e["t0"]),
                t1=float(e["t1"]),
                slot=int(e.get("slot", -1)),
                depth=int(e.get("depth", 0)),
                path=tuple(e.get("path", ())),
                attrs=dict(e.get("attrs", {})),
                instant=bool(e.get("instant", False)),
                worker=e.get("worker", ""),
                tid=int(e.get("tid", 0)),
            )
            for e in data.get("events", ())
        )
        return cls(
            events=events,
            counters={k: dict(v) for k, v in data.get("counters", {}).items()},
            gauges={k: dict(v) for k, v in data.get("gauges", {}).items()},
            meta=dict(data.get("meta", {})),
            gauge_peaks={
                k: dict(v) for k, v in data.get("gauge_peaks", {}).items()
            },
            children=tuple(
                cls.from_dict(c) for c in data.get("children", ())
            ),
            epoch_offset_s=float(data.get("epoch_offset_s", 0.0)),
        )


#: Chrome-trace tids for events recorded outside any backend worker slot.
EXTERNAL_TID_BASE = 1000


class Tracer:
    """Collects spans and counters; install process-wide to enable.

    >>> tracer = Tracer()
    >>> with tracer:                    # install() / uninstall()
    ...     with tracer.span("work", cat="kernel", mode=0):
    ...         tracer.count("nnz", 128)
    >>> trace = tracer.freeze()
    >>> [s.name for s in trace.spans()]
    ['work']
    """

    enabled = True

    def __init__(self, meta: "dict | None" = None, trace_id: str = ""):
        self.meta = dict(meta or {})
        self.trace_id = str(trace_id or "")
        if self.trace_id:
            self.meta.setdefault("trace_id", self.trace_id)
        self._buffers: dict[tuple, _WorkerBuffer] = {}
        self._lock = threading.Lock()
        self._tls = threading.local()
        self._prev: "Tracer | NullTracer | None" = None
        self._children: list = []
        # Wall-clock anchor pairing perf-counter timestamps with the
        # shared epoch; see Trace.epoch_offset_s.
        self._epoch_offset_s = time.time() - time.perf_counter()

    # -- recording ----------------------------------------------------- #
    def _stack(self) -> list:
        stack = getattr(self._tls, "stack", None)
        if stack is None:
            stack = self._tls.stack = []
        return stack

    def _buffer(self) -> _WorkerBuffer:
        slot = current_slot()
        key = ("slot", int(slot)) if slot is not None else ("tid", threading.get_ident())
        buf = self._buffers.get(key)
        if buf is None:
            with self._lock:
                buf = self._buffers.setdefault(key, _WorkerBuffer(key))
        return buf

    def span(self, name: str, cat: str = CAT_KERNEL, **attrs) -> _Span:
        """A context manager recording ``name`` with wall-clock bounds.

        Spans nest: entering a span inside another (on the same thread)
        records the ancestor path, so the flame summary can fold stacks.
        The executing worker slot is captured automatically.
        """
        return _Span(self, name, cat, attrs)

    def instant(self, name: str, cat: str = CAT_KERNEL, **attrs) -> None:
        """Record a zero-duration marker (e.g. one simulated GPU launch)."""
        now = time.perf_counter()
        slot = current_slot()
        stack = self._stack()
        self._buffer().events.append(
            SpanEvent(
                name=name,
                cat=cat,
                t0=now,
                t1=now,
                slot=-1 if slot is None else int(slot),
                depth=len(stack),
                path=tuple(s.name for s in stack) + (name,),
                attrs=attrs,
                instant=True,
            )
        )

    def annotate(self, **attrs) -> None:
        """Merge attributes into the innermost open span of this thread.

        Lets a kernel body enrich the *backend's* chunk span (e.g. with
        the entry count it processed) without threading span handles
        through call signatures.  No-op outside any open span.
        """
        stack = self._stack()
        if stack:
            stack[-1].attrs.update(attrs)

    def count(self, name: str, value: float = 1.0) -> None:
        """Add ``value`` to this worker's total for counter ``name``."""
        counters = self._buffer().counters
        counters[name] = counters.get(name, 0.0) + value

    def gauge(self, name: str, value: float) -> None:
        """Set this worker's last-observed value for gauge ``name``.

        The per-worker high-water mark is tracked alongside, so a gauge
        re-set across regions (an arena shrinking between kernels) still
        reports its true peak through :attr:`Trace.gauge_peaks`.
        """
        buf = self._buffer()
        value = float(value)
        buf.gauges[name] = value
        peak = buf.gauge_peaks.get(name)
        if peak is None or value > peak:
            buf.gauge_peaks[name] = value

    def adopt(self, trace: Trace) -> None:
        """Attach a frozen trace from another process as a child.

        The executor calls this with the trace a worker subprocess
        returned in its verdict; :meth:`freeze` carries adopted traces
        through as :attr:`Trace.children`.  Thread-safe — verdicts land
        on scheduler pool threads.
        """
        with self._lock:
            self._children.append(trace)

    # -- lifecycle ----------------------------------------------------- #
    def install(self) -> "Tracer":
        """Make this the process-global tracer read by instrumentation."""
        global _ACTIVE
        self._prev = _ACTIVE
        _ACTIVE = self
        return self

    def uninstall(self) -> None:
        """Restore the tracer that was active before :meth:`install`."""
        global _ACTIVE
        if _ACTIVE is self:
            _ACTIVE = self._prev if self._prev is not None else NULL_TRACER
            self._prev = None

    __enter__ = install

    def __exit__(self, *exc) -> None:
        self.uninstall()

    def clear(self) -> None:
        """Drop all recorded events and counter totals."""
        with self._lock:
            self._buffers.clear()

    # -- snapshot ------------------------------------------------------ #
    def freeze(self) -> Trace:
        """Resolve worker identities and return an immutable snapshot.

        Safe to call repeatedly; recording may continue afterwards (the
        snapshot copies event lists, not the events themselves).
        """
        with self._lock:
            buffers = list(self._buffers.values())
            children = tuple(self._children)
        slot_keys = sorted(b.key[1] for b in buffers if b.key[0] == "slot")
        thread_keys = [b.key for b in buffers if b.key[0] == "tid"]
        labels: dict[tuple, tuple] = {
            ("slot", s): (f"worker-{s}", s) for s in slot_keys
        }
        for i, key in enumerate(sorted(thread_keys, key=lambda k: k[1])):
            labels[key] = (f"thread-{i}", EXTERNAL_TID_BASE + i)
        events: list[SpanEvent] = []
        counters: dict[str, dict[str, float]] = {}
        gauges: dict[str, dict[str, float]] = {}
        gauge_peaks: dict[str, dict[str, float]] = {}
        for buf in buffers:
            label, tid = labels[buf.key]
            for e in buf.events:
                e.worker, e.tid = label, tid
                events.append(e)
            for name, value in buf.counters.items():
                counters.setdefault(name, {})[label] = value
            for name, value in buf.gauges.items():
                gauges.setdefault(name, {})[label] = value
            for name, value in buf.gauge_peaks.items():
                gauge_peaks.setdefault(name, {})[label] = value
        events.sort(key=lambda e: (e.t0, e.t1))
        return Trace(
            events=tuple(events),
            counters=counters,
            gauges=gauges,
            meta=dict(self.meta),
            gauge_peaks=gauge_peaks,
            children=children,
            epoch_offset_s=self._epoch_offset_s,
        )


#: Shared reentrant no-op context manager handed out by the null tracer.
_NULL_SPAN = contextlib.nullcontext()


class NullTracer:
    """The disabled tracer: every operation is a no-op.

    Installed by default so instrumentation sites can unconditionally
    read :func:`current_tracer`; the ``enabled`` flag lets hot paths skip
    even the null calls with a single branch.
    """

    __slots__ = ()
    enabled = False

    def span(self, name: str, cat: str = CAT_KERNEL, **attrs):
        return _NULL_SPAN

    def instant(self, name: str, cat: str = CAT_KERNEL, **attrs) -> None:
        pass

    def annotate(self, **attrs) -> None:
        pass

    def count(self, name: str, value: float = 1.0) -> None:
        pass

    def gauge(self, name: str, value: float) -> None:
        pass


NULL_TRACER = NullTracer()

_ACTIVE: "Tracer | NullTracer" = NULL_TRACER

# Thread-local tracer overlay.  The serve daemon handles concurrent
# traced requests on a shared worker pool, so a process-global install
# would interleave unrelated requests into one trace; scoped_tracer()
# binds a request's tracer to the pool thread executing its case.
_TLS_SCOPE = threading.local()


def current_tracer() -> "Tracer | NullTracer":
    """The active tracer: this thread's scoped one, else the global."""
    tracer = getattr(_TLS_SCOPE, "tracer", None)
    return _ACTIVE if tracer is None else tracer


@contextlib.contextmanager
def scoped_tracer(tracer: "Tracer | NullTracer"):
    """Make ``tracer`` current on this thread for the ``with`` body."""
    prev = getattr(_TLS_SCOPE, "tracer", None)
    _TLS_SCOPE.tracer = tracer
    try:
        yield tracer
    finally:
        _TLS_SCOPE.tracer = prev
