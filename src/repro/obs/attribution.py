"""Roofline attribution: explain a measurement against its bound.

The paper's payoff is not raw timings but the *analysis* built on them:
Figure 3's roofline bounds turned into Observations 1-5 about which
kernel/format pairs are memory-bound and how far each sits from its
ceiling.  This module is the join between a measurement and the roofline
model: for one (kernel, format, tensor, platform) execution it derives

* the accurate-OI roofline bound (``min(peak, OI x ERT-DRAM)``, the
  per-tensor bound of Figures 4-7);
* the **bound fraction** — achieved GFLOPS over that bound (1.0 == at
  the roofline, >1.0 == served from cache, Observation 2);
* the **boundedness** classification — memory- vs compute-bound, from
  the kernel's OI against the platform's ridge point (Observation on
  Figure 3: every suite kernel sits left of the ridge on all four
  platforms);
* the **effective DRAM bandwidth** — the kernel's modeled byte traffic
  over the *measured host* wall-clock, i.e. the bandwidth the execution
  actually sustained, comparable against the ERT-DRAM ceiling.

:class:`RooflineAttribution` travels as ``PerfRecord.extra["roofline"]``
(and therefore into run-store lines and results CSVs), and
:func:`attach_to_trace` copies the headline numbers onto the ``kernel``
spans of a recorded trace so Chrome-trace viewers show bound-fraction
per span.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kernels.flops import KernelCost
from repro.metrics.perf import gflops
from repro.obs.tracer import CAT_KERNEL, Trace

MEMORY_BOUND = "memory"
COMPUTE_BOUND = "compute"


def classify_boundedness(oi: float, ridge_oi: float) -> str:
    """Memory- or compute-bound: which roof the OI sits under.

    Left of the ridge point the DRAM roof is the lower ceiling (memory
    bound); at or right of it the compute roof binds.
    """
    return MEMORY_BOUND if oi < ridge_oi else COMPUTE_BOUND


def effective_bandwidth_gbs(nbytes: float, seconds: float) -> float:
    """Sustained GB/s implied by moving ``nbytes`` in ``seconds``.

    0.0 when the interval is non-positive (unmeasured host time).
    """
    if seconds <= 0.0:
        return 0.0
    return nbytes / seconds / 1e9


@dataclass(frozen=True)
class RooflineAttribution:
    """One measurement explained against its platform roofline."""

    platform: str
    kernel: str
    fmt: str
    #: Accurate per-tensor operational intensity (flops/byte).
    oi: float
    #: The platform's ridge point (peak / ERT-DRAM).
    ridge_oi: float
    #: ``min(peak, OI x ERT-DRAM)`` — the Figures 4-7 bound.
    bound_gflops: float
    #: Modeled/simulated achieved GFLOPS on the paper platform.
    achieved_gflops: float
    #: ``achieved / bound`` (1.0 == at the roofline).
    bound_fraction: float
    #: ``"memory"`` or ``"compute"`` (OI vs ridge point).
    boundedness: str
    modeled_flops: float
    modeled_bytes: float
    #: The ERT-DRAM ceiling the bound was computed against (GB/s).
    bw_ceiling_gbs: float
    #: Modeled bytes over *measured host* seconds (GB/s; 0.0 when the
    #: host wall-clock was not measured).
    effective_bw_gbs: float
    #: ``effective_bw / ceiling`` — how much of the obtainable DRAM
    #: bandwidth the host execution sustained (0.0 when unmeasured).
    bw_fraction: float

    def as_dict(self) -> dict:
        """JSON-safe form for ``PerfRecord.extra["roofline"]``."""
        return {
            "platform": self.platform,
            "kernel": self.kernel,
            "fmt": self.fmt,
            "oi": float(self.oi),
            "ridge_oi": float(self.ridge_oi),
            "bound_gflops": float(self.bound_gflops),
            "achieved_gflops": float(self.achieved_gflops),
            "bound_fraction": float(self.bound_fraction),
            "boundedness": self.boundedness,
            "modeled_flops": float(self.modeled_flops),
            "modeled_bytes": float(self.modeled_bytes),
            "bw_ceiling_gbs": float(self.bw_ceiling_gbs),
            "effective_bw_gbs": float(self.effective_bw_gbs),
            "bw_fraction": float(self.bw_fraction),
        }

    def span_attrs(self) -> dict:
        """The headline numbers worth showing on a trace span."""
        return {
            "roofline.bound_gflops": round(float(self.bound_gflops), 4),
            "roofline.bound_fraction": round(float(self.bound_fraction), 4),
            "roofline.oi": round(float(self.oi), 5),
            "roofline.boundedness": self.boundedness,
            "roofline.effective_bw_gbs": round(float(self.effective_bw_gbs), 3),
        }


def attribute(
    model,
    cost: KernelCost,
    seconds: float,
    host_seconds: float = 0.0,
) -> RooflineAttribution:
    """Build the :class:`RooflineAttribution` of one measurement.

    ``model`` is the platform's :class:`~repro.roofline.model.RooflineModel`;
    ``cost`` the kernel's Table-1 cost instantiated for the tensor
    (:func:`repro.roofline.oi.cost_for`); ``seconds`` the modeled or
    simulated platform time; ``host_seconds`` the measured host
    wall-clock (0.0 when not measured).
    """
    platform = model.platform
    bound = model.attainable(cost.oi)
    achieved = gflops(cost.flops, seconds)
    eff_bw = effective_bandwidth_gbs(cost.bytes, host_seconds)
    ceiling = platform.ert_dram_bw_gbs
    return RooflineAttribution(
        platform=platform.name,
        kernel=cost.kernel.value,
        fmt=cost.fmt.value,
        oi=cost.oi,
        ridge_oi=platform.ridge_oi,
        bound_gflops=bound,
        achieved_gflops=achieved,
        bound_fraction=achieved / bound if bound > 0 else 0.0,
        boundedness=classify_boundedness(cost.oi, platform.ridge_oi),
        modeled_flops=cost.flops,
        modeled_bytes=cost.bytes,
        bw_ceiling_gbs=ceiling,
        effective_bw_gbs=eff_bw,
        bw_fraction=eff_bw / ceiling if ceiling > 0 else 0.0,
    )


def attach_to_trace(trace: Trace, attribution: RooflineAttribution) -> Trace:
    """Stamp the attribution onto every ``kernel`` span of ``trace``.

    Span attrs are enriched in place (the trace snapshot shares the
    event objects), so a Chrome export after this call shows
    bound-fraction, OI and boundedness in each kernel span's ``args``.
    Returns ``trace`` for chaining.
    """
    attrs = attribution.span_attrs()
    for event in trace.spans(CAT_KERNEL):
        event.attrs.update(attrs)
    return trace
