"""Trace exporters: Chrome trace-event JSON, JSON lines, flame summary.

The Chrome format is the JSON-array-of-events schema understood by
Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``: complete
spans are ``"ph": "X"`` events with microsecond ``ts``/``dur``, instant
markers are ``"ph": "i"``, per-worker counter totals are ``"ph": "C"``
samples, and ``"ph": "M"`` metadata names each worker's timeline row.
Timestamps are rebased to the trace start so the viewer opens at zero.
"""

from __future__ import annotations

import json
from typing import IO

from repro.obs.tracer import Trace

#: Schema version stamped into exported traces' ``otherData``.
CHROME_TRACE_VERSION = 1


def chrome_trace(trace: Trace) -> dict:
    """The trace as a Chrome trace-event dict (``json.dump``-ready)."""
    t0 = trace.t0
    tid_of: dict[str, int] = {}
    events: list[dict] = []
    for e in trace.events:
        tid_of.setdefault(e.worker, e.tid)
        record = {
            "name": e.name,
            "cat": e.cat,
            "ph": "i" if e.instant else "X",
            "ts": round((e.t0 - t0) * 1e6, 3),
            "pid": 0,
            "tid": e.tid,
            "args": {"slot": e.slot, **e.attrs},
        }
        if e.instant:
            record["s"] = "t"  # thread-scoped instant
        else:
            record["dur"] = round((e.t1 - e.t0) * 1e6, 3)
        events.append(record)
    end_ts = round(trace.wall_s * 1e6, 3)
    for name, per_worker in sorted(trace.counters.items()):
        for worker, value in sorted(per_worker.items()):
            events.append({
                "name": name,
                "ph": "C",
                "ts": end_ts,
                "pid": 0,
                "tid": tid_of.get(worker, 0),
                "args": {"value": value},
            })
    meta = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "args": {"name": worker},
        }
        for worker, tid in sorted(tid_of.items(), key=lambda kv: kv[1])
    ]
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "exporter": "repro.obs",
            "version": CHROME_TRACE_VERSION,
            **trace.meta,
        },
    }


def _flatten(trace: Trace) -> list:
    """``trace`` followed by its adopted descendants, depth-first."""
    out = [trace]
    for child in trace.children:
        out.extend(_flatten(child))
    return out


def _abs_start(trace: Trace) -> float:
    """Earliest event start on the shared wall clock (epoch-rebased)."""
    return min(
        (e.t0 for e in trace.events), default=0.0
    ) + trace.epoch_offset_s


def merge_traces(
    root: Trace, children=None, trace_id: str = ""
) -> dict:
    """Merge a parent trace and its child-process traces into one
    Chrome trace-event dict.

    Each trace becomes its own Chrome *process*: pid 0 is ``root``, its
    adopted children (``root.children``, or the explicit ``children``
    list) get pids 1..N in a canonical order, each with ``process_name``
    and per-worker ``thread_name`` metadata.  Timestamps are rebased to
    one shared timeline via each trace's :attr:`Trace.epoch_offset_s`
    wall-clock anchor, so a worker subprocess's kernel spans line up
    under the daemon's request span that spawned them.

    When a child's ``meta["parent_span"]`` names a span id that some
    parent event carries in ``args`` (the executor stamps ``span_id`` on
    ``case`` spans), a Chrome flow arrow (``ph: "s"`` → ``ph: "f"``)
    links the parent span to the child's first event.

    The output is deterministic: the same inputs produce byte-identical
    JSON, making merged traces diffable and goldenable.
    """
    if children is not None:
        kids = [t for child in children for t in _flatten(child)]
    else:
        kids = _flatten(root)[1:]
    # Canonical child order: adoption order is completion order (racy
    # across runs), so sort by stable trace content instead.
    kids.sort(
        key=lambda t: (
            str(t.meta.get("process", "")),
            str(t.meta.get("parent_span", "")),
            _abs_start(t),
        )
    )
    procs = [(0, root)] + [(i + 1, t) for i, t in enumerate(kids)]

    starts = [_abs_start(t) for _, t in procs if t.events]
    t_zero = min(starts) if starts else 0.0

    def ts(raw: float, trace: Trace) -> float:
        return round((raw + trace.epoch_offset_s - t_zero) * 1e6, 3)

    meta_events: list[dict] = []
    events: list[dict] = []
    span_index: dict[str, tuple] = {}
    for pid, trace in procs:
        label = str(
            trace.meta.get("process") or ("main" if pid == 0 else f"proc-{pid}")
        )
        meta_events.append({
            "name": "process_name",
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "args": {"name": label},
        })
        tid_of: dict[str, int] = {}
        for e in trace.events:
            tid_of.setdefault(e.worker, e.tid)
            record = {
                "name": e.name,
                "cat": e.cat,
                "ph": "i" if e.instant else "X",
                "ts": ts(e.t0, trace),
                "pid": pid,
                "tid": e.tid,
                "args": {"slot": e.slot, **e.attrs},
            }
            if e.instant:
                record["s"] = "t"
            else:
                record["dur"] = round((e.t1 - e.t0) * 1e6, 3)
            events.append(record)
            span_id = e.attrs.get("span_id")
            if span_id and span_id not in span_index:
                span_index[str(span_id)] = (pid, e.tid, record["ts"])
        end_ts = ts(
            max((e.t1 for e in trace.events), default=0.0), trace
        ) if trace.events else 0.0
        for name, per_worker in sorted(trace.counters.items()):
            for worker, value in sorted(per_worker.items()):
                events.append({
                    "name": name,
                    "ph": "C",
                    "ts": end_ts,
                    "pid": pid,
                    "tid": tid_of.get(worker, 0),
                    "args": {"value": value},
                })
        meta_events.extend(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "args": {"name": worker},
            }
            for worker, tid in sorted(tid_of.items(), key=lambda kv: kv[1])
        )
    # Flow arrows: child process -> the parent span that spawned it.
    for pid, trace in procs[1:]:
        parent_span = str(trace.meta.get("parent_span", ""))
        origin = span_index.get(parent_span)
        if not parent_span or origin is None or not trace.events:
            continue
        ppid, ptid, pts = origin
        if ppid == pid:
            continue
        first = trace.events[0]
        events.append({
            "name": "spawn",
            "cat": "flow",
            "ph": "s",
            "id": parent_span,
            "ts": pts,
            "pid": ppid,
            "tid": ptid,
        })
        events.append({
            "name": "spawn",
            "cat": "flow",
            "ph": "f",
            "bp": "e",
            "id": parent_span,
            "ts": ts(first.t0, trace),
            "pid": pid,
            "tid": first.tid,
        })
    meta_events.sort(key=lambda m: (m["pid"], m["tid"], m["name"]))
    events.sort(
        key=lambda e: (e["ts"], e["pid"], e["tid"], e["ph"], e["name"])
    )
    return {
        "traceEvents": meta_events + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "exporter": "repro.obs",
            "version": CHROME_TRACE_VERSION,
            "processes": len(procs),
            "trace_id": str(trace_id or root.meta.get("trace_id", "")),
            **root.meta,
        },
    }


def save_chrome(trace: "Trace | dict", path: str) -> None:
    """Write Chrome trace-event JSON to ``path``.

    Accepts either a :class:`Trace` (exported single-process via
    :func:`chrome_trace`) or an already-built trace-event dict (e.g.
    from :func:`merge_traces`).
    """
    doc = trace if isinstance(trace, dict) else chrome_trace(trace)
    with open(path, "w") as f:
        json.dump(doc, f, indent=1)
        f.write("\n")


def load_chrome(path: str) -> dict:
    """Parse an exported Chrome trace (schema sanity checks included)."""
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError(f"{path} is not a Chrome trace-event file")
    return doc


def write_jsonl(trace: Trace, fileobj: "IO[str] | str") -> None:
    """One JSON object per event (plus one trailer with counters/meta)."""
    own = isinstance(fileobj, str)
    f = open(fileobj, "w") if own else fileobj
    try:
        t0 = trace.t0
        for e in trace.events:
            f.write(json.dumps({
                "name": e.name,
                "cat": e.cat,
                "worker": e.worker,
                "slot": e.slot,
                "t0_s": round(e.t0 - t0, 9),
                "dur_s": round(e.duration_s, 9),
                "depth": e.depth,
                "path": list(e.path),
                "attrs": e.attrs,
                "instant": e.instant,
            }) + "\n")
        f.write(json.dumps({
            "counters": trace.counters,
            "gauges": trace.gauges,
            "meta": trace.meta,
        }) + "\n")
    finally:
        if own:
            f.close()


def flame_summary(trace: Trace, limit: int = 30) -> str:
    """Folded-stack rollup: one line per span path, hottest first.

    Paths are per-thread ancestor chains (``mttkrp;parallel_for``), so the
    output is the text analogue of a flame graph; chunk spans recorded on
    worker threads appear as their own roots.
    """
    agg: dict[tuple, list] = {}
    for e in trace.spans():
        entry = agg.setdefault(e.path, [0, 0.0])
        entry[0] += 1
        entry[1] += e.duration_s
    if not agg:
        return "(no spans recorded)"
    rows = sorted(agg.items(), key=lambda kv: -kv[1][1])[:limit]
    width = max(len(";".join(p)) for p, _ in rows)
    lines = [f"{'span path':<{width}}  {'count':>6} {'total_s':>12} {'mean_s':>12}"]
    for path, (count, total) in rows:
        lines.append(
            f"{';'.join(path):<{width}}  {count:>6d} {total:>12.6f} "
            f"{total / count:>12.6f}"
        )
    if len(agg) > limit:
        lines.append(f"... {len(agg) - limit} more path(s)")
    return "\n".join(lines)
