"""Trace exporters: Chrome trace-event JSON, JSON lines, flame summary.

The Chrome format is the JSON-array-of-events schema understood by
Perfetto (https://ui.perfetto.dev) and ``chrome://tracing``: complete
spans are ``"ph": "X"`` events with microsecond ``ts``/``dur``, instant
markers are ``"ph": "i"``, per-worker counter totals are ``"ph": "C"``
samples, and ``"ph": "M"`` metadata names each worker's timeline row.
Timestamps are rebased to the trace start so the viewer opens at zero.
"""

from __future__ import annotations

import json
from typing import IO

from repro.obs.tracer import Trace

#: Schema version stamped into exported traces' ``otherData``.
CHROME_TRACE_VERSION = 1


def chrome_trace(trace: Trace) -> dict:
    """The trace as a Chrome trace-event dict (``json.dump``-ready)."""
    t0 = trace.t0
    tid_of: dict[str, int] = {}
    events: list[dict] = []
    for e in trace.events:
        tid_of.setdefault(e.worker, e.tid)
        record = {
            "name": e.name,
            "cat": e.cat,
            "ph": "i" if e.instant else "X",
            "ts": round((e.t0 - t0) * 1e6, 3),
            "pid": 0,
            "tid": e.tid,
            "args": {"slot": e.slot, **e.attrs},
        }
        if e.instant:
            record["s"] = "t"  # thread-scoped instant
        else:
            record["dur"] = round((e.t1 - e.t0) * 1e6, 3)
        events.append(record)
    end_ts = round(trace.wall_s * 1e6, 3)
    for name, per_worker in sorted(trace.counters.items()):
        for worker, value in sorted(per_worker.items()):
            events.append({
                "name": name,
                "ph": "C",
                "ts": end_ts,
                "pid": 0,
                "tid": tid_of.get(worker, 0),
                "args": {"value": value},
            })
    meta = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": 0,
            "tid": tid,
            "args": {"name": worker},
        }
        for worker, tid in sorted(tid_of.items(), key=lambda kv: kv[1])
    ]
    return {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "exporter": "repro.obs",
            "version": CHROME_TRACE_VERSION,
            **trace.meta,
        },
    }


def save_chrome(trace: Trace, path: str) -> None:
    """Write the Chrome trace-event JSON to ``path``."""
    with open(path, "w") as f:
        json.dump(chrome_trace(trace), f, indent=1)
        f.write("\n")


def load_chrome(path: str) -> dict:
    """Parse an exported Chrome trace (schema sanity checks included)."""
    with open(path) as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError(f"{path} is not a Chrome trace-event file")
    return doc


def write_jsonl(trace: Trace, fileobj: "IO[str] | str") -> None:
    """One JSON object per event (plus one trailer with counters/meta)."""
    own = isinstance(fileobj, str)
    f = open(fileobj, "w") if own else fileobj
    try:
        t0 = trace.t0
        for e in trace.events:
            f.write(json.dumps({
                "name": e.name,
                "cat": e.cat,
                "worker": e.worker,
                "slot": e.slot,
                "t0_s": round(e.t0 - t0, 9),
                "dur_s": round(e.duration_s, 9),
                "depth": e.depth,
                "path": list(e.path),
                "attrs": e.attrs,
                "instant": e.instant,
            }) + "\n")
        f.write(json.dumps({
            "counters": trace.counters,
            "gauges": trace.gauges,
            "meta": trace.meta,
        }) + "\n")
    finally:
        if own:
            f.close()


def flame_summary(trace: Trace, limit: int = 30) -> str:
    """Folded-stack rollup: one line per span path, hottest first.

    Paths are per-thread ancestor chains (``mttkrp;parallel_for``), so the
    output is the text analogue of a flame graph; chunk spans recorded on
    worker threads appear as their own roots.
    """
    agg: dict[tuple, list] = {}
    for e in trace.spans():
        entry = agg.setdefault(e.path, [0, 0.0])
        entry[0] += 1
        entry[1] += e.duration_s
    if not agg:
        return "(no spans recorded)"
    rows = sorted(agg.items(), key=lambda kv: -kv[1][1])[:limit]
    width = max(len(";".join(p)) for p, _ in rows)
    lines = [f"{'span path':<{width}}  {'count':>6} {'total_s':>12} {'mean_s':>12}"]
    for path, (count, total) in rows:
        lines.append(
            f"{';'.join(path):<{width}}  {count:>6d} {total:>12.6f} "
            f"{total / count:>12.6f}"
        )
    if len(agg) > limit:
        lines.append(f"... {len(agg) - limit} more path(s)")
    return "\n".join(lines)
