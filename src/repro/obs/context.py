"""Trace-context propagation across threads and worker subprocesses.

The tracer (:mod:`repro.obs.tracer`) records what happened inside *one*
process; a served sweep crosses at least three — client, daemon, and a
worker subprocess per case attempt.  A :class:`TraceContext` is the
correlation envelope that stitches them back together:

* ``trace_id`` — one id per logical request, minted at the edge (the
  client or the daemon) and carried unchanged through every hop, so all
  spans of a request share it no matter which process recorded them;
* ``parent_span`` — the span id of the hop that spawned this context
  (:func:`derive_span_id` derives ids deterministically from the trace
  id and stable parts such as case fingerprints, so a replayed sweep
  produces identical span ids);
* ``baggage`` — small, propagated key/value annotations.

Contexts cross process boundaries as plain dicts (the serve protocol's
optional ``trace`` request field, the worker case-payload JSON) or via
the :data:`TRACE_ENV` environment variable; inside a process they are
held thread-locally (:func:`activate_context`) over a process-global
default (:func:`install_context`), mirroring how the tracer itself is
scoped.  Everything here is inert unless something installs a context:
with no context and a disabled tracer the serving stack behaves
byte-identically to an untraced run.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import threading
from dataclasses import dataclass, field

#: Environment variable carrying a serialized context into subprocesses
#: (the worker payload JSON is the primary channel; the env var lets any
#: externally spawned process join a trace).
TRACE_ENV = "REPRO_TRACE_CONTEXT"


def new_trace_id() -> str:
    """A fresh 16-hex-digit trace id (random; one per logical request)."""
    return os.urandom(8).hex()


def derive_span_id(trace_id: str, *parts) -> str:
    """A deterministic 16-hex-digit span id from the trace id and parts.

    Span ids derive from stable identities (case fingerprint, attempt
    number, request sequence) rather than randomness, so the parent and
    the child process compute the *same* id independently — that is what
    lets :func:`repro.obs.export.merge_traces` link a worker trace back
    to the exact ``case`` span that spawned it.
    """
    text = "\x1f".join([str(trace_id)] + [str(p) for p in parts])
    return hashlib.sha256(text.encode("utf-8")).hexdigest()[:16]


class ContextError(ValueError):
    """A malformed trace-context wire form."""


@dataclass(frozen=True)
class TraceContext:
    """One hop's view of a distributed trace (immutable).

    ``baggage`` is canonicalized to sorted ``(key, value)`` string pairs
    so equal contexts compare and serialize identically regardless of
    construction order.
    """

    trace_id: str
    parent_span: str = ""
    baggage: tuple = field(default=())

    def __post_init__(self):
        if not self.trace_id or not isinstance(self.trace_id, str):
            raise ContextError(
                f"trace_id must be a non-empty string, got {self.trace_id!r}"
            )
        items = (
            self.baggage.items()
            if isinstance(self.baggage, dict)
            else self.baggage
        )
        canonical = tuple(sorted((str(k), str(v)) for k, v in items))
        object.__setattr__(self, "baggage", canonical)
        object.__setattr__(self, "parent_span", str(self.parent_span or ""))

    def child(self, span_id: str) -> "TraceContext":
        """The context a hop hands to work it spawns under ``span_id``."""
        return TraceContext(
            trace_id=self.trace_id, parent_span=str(span_id),
            baggage=self.baggage,
        )

    # -- wire forms ----------------------------------------------------- #
    def to_dict(self) -> dict:
        """The pinned wire form (serve protocol ``trace`` field, worker
        payload)."""
        return {
            "trace_id": self.trace_id,
            "parent_span": self.parent_span,
            "baggage": dict(self.baggage),
        }

    @classmethod
    def from_dict(cls, d) -> "TraceContext":
        if not isinstance(d, dict):
            raise ContextError(
                f"trace context must be an object, got {type(d).__name__}"
            )
        unknown = set(d) - {"trace_id", "parent_span", "baggage"}
        if unknown:
            raise ContextError(f"unknown trace context key(s) {sorted(unknown)}")
        return cls(
            trace_id=d.get("trace_id", ""),
            parent_span=d.get("parent_span", ""),
            baggage=d.get("baggage") or (),
        )

    def to_env(self) -> str:
        """The :data:`TRACE_ENV` value injecting this context into a
        subprocess environment."""
        return json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))

    @classmethod
    def from_env(cls, environ=None) -> "TraceContext | None":
        """The context carried by :data:`TRACE_ENV`, or ``None``.

        A malformed value is treated as absent rather than raised — a
        worker must never fail a case because of a bad tracing envelope.
        """
        raw = (environ if environ is not None else os.environ).get(TRACE_ENV)
        if not raw:
            return None
        try:
            return cls.from_dict(json.loads(raw))
        except (ValueError, TypeError):
            return None


# --------------------------------------------------------------------- #
# Current-context scoping: thread-local overlay over a process global,
# mirroring the tracer's install()/scoped discipline.
# --------------------------------------------------------------------- #
_TLS = threading.local()
_GLOBAL: "TraceContext | None" = None


def current_context() -> "TraceContext | None":
    """The active context: this thread's, else the process-global one."""
    ctx = getattr(_TLS, "context", None)
    return ctx if ctx is not None else _GLOBAL


@contextlib.contextmanager
def activate_context(context: "TraceContext | None"):
    """Make ``context`` current on this thread for the ``with`` body.

    The serve daemon's pool threads use this so concurrent traced
    requests never see each other's contexts.
    """
    prev = getattr(_TLS, "context", None)
    _TLS.context = context
    try:
        yield context
    finally:
        _TLS.context = prev


def install_context(context: "TraceContext | None") -> "TraceContext | None":
    """Set the process-global default context; returns the previous one.

    Used at process edges (the ``repro sweep --trace`` CLI, the worker
    subprocess) where every thread should inherit the request context.
    """
    global _GLOBAL
    previous = _GLOBAL
    _GLOBAL = context
    return previous
