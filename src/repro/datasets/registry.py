"""Real-world tensor registry — the paper's Table 2.

The paper benchmarks 15 tensors from FROSTT, HaTen2 and the CHOA
electronic-medical-records collection.  Those files are large (26-144M
non-zeros), some are private (choa), and this environment has no network,
so the registry stores the exact Table 2 metadata and the suite
synthesizes *surrogate* stand-ins (see :mod:`repro.datasets.surrogate`)
matching each tensor's order, dimension ratios and density regime.  The
benchmark harness runs against the surrogates; EXPERIMENTS.md records the
substitution.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RealTensorInfo:
    """One row of Table 2."""

    key: str  # r1..r15
    name: str
    shape: tuple[int, ...]
    nnz: int
    domain: str
    source: str  # FROSTT / HaTen2 / CHOA

    @property
    def order(self) -> int:
        return len(self.shape)

    @property
    def density(self) -> float:
        cap = 1.0
        for s in self.shape:
            cap *= float(s)
        return self.nnz / cap


#: Table 2, sorted by order then decreasing density as in the paper.
REAL_TENSORS: tuple[RealTensorInfo, ...] = (
    RealTensorInfo("r1", "vast", (165_000, 11_000, 2), 26_000_000,
                   "pattern recognition", "FROSTT"),
    RealTensorInfo("r2", "nell2", (12_000, 9_000, 29_000), 77_000_000,
                   "natural language processing", "FROSTT"),
    RealTensorInfo("r3", "choa", (712_000, 10_000, 767), 27_000_000,
                   "healthcare analytics", "CHOA"),
    RealTensorInfo("r4", "darpa", (22_000, 22_000, 24_000_000), 28_000_000,
                   "anomaly detection", "HaTen2"),
    RealTensorInfo("r5", "fb-m", (23_000_000, 23_000_000, 166), 100_000_000,
                   "social network", "HaTen2"),
    RealTensorInfo("r6", "fb-s", (39_000_000, 39_000_000, 532), 140_000_000,
                   "social network", "HaTen2"),
    RealTensorInfo("r7", "flickr", (320_000, 28_000_000, 1_600_000),
                   113_000_000, "recommendation systems", "FROSTT"),
    RealTensorInfo("r8", "deli", (533_000, 17_000_000, 2_500_000),
                   140_000_000, "recommendation systems", "FROSTT"),
    RealTensorInfo("r9", "nell1", (2_900_000, 2_100_000, 25_000_000),
                   144_000_000, "natural language processing", "FROSTT"),
    RealTensorInfo("r10", "crime4d", (6_000, 24, 77, 32), 5_000_000,
                   "crime detection", "FROSTT"),
    RealTensorInfo("r11", "uber4d", (183, 24, 1_140, 1_717), 3_000_000,
                   "transportation", "FROSTT"),
    RealTensorInfo("r12", "nips4d", (2_000, 3_000, 14_000, 17), 3_000_000,
                   "pattern recognition", "FROSTT"),
    RealTensorInfo("r13", "enron4d", (6_000, 6_000, 244_000, 1_000),
                   54_000_000, "anomaly detection", "FROSTT"),
    RealTensorInfo("r14", "flickr4d", (320_000, 28_000_000, 1_600_000, 731),
                   113_000_000, "recommendation systems", "FROSTT"),
    RealTensorInfo("r15", "deli4d", (533_000, 17_000_000, 2_500_000, 1_000),
                   140_000_000, "recommendation systems", "FROSTT"),
)

_BY_KEY = {t.key: t for t in REAL_TENSORS}
_BY_NAME = {t.name: t for t in REAL_TENSORS}


def get_real(key_or_name: str) -> RealTensorInfo:
    """Look up a Table 2 row by key ("r4") or name ("darpa")."""
    info = _BY_KEY.get(key_or_name) or _BY_NAME.get(key_or_name)
    if info is None:
        raise KeyError(
            f"unknown real tensor {key_or_name!r}; "
            f"known: {sorted(_BY_KEY)} / {sorted(_BY_NAME)}"
        )
    return info
