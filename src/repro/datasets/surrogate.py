"""Surrogate stand-ins for the paper's real-world tensors.

Substitution (documented in DESIGN.md): the FROSTT/HaTen2/CHOA files are
unavailable offline (and choa is private), so for each Table 2 tensor we
synthesize a power-law tensor whose

* order matches exactly;
* dimensions are the paper's, uniformly shrunk by ``scale**(1/order)``
  (preserving the mode-size *ratios*, e.g. darpa's 1000x-longer third
  mode);
* density matches the paper's row (both nnz and capacity shrink by
  ``scale``);
* non-zero distribution is heavy-tailed (real FROSTT tensors are built
  from web/social data and are strongly skewed), with short modes —
  scaled dimension below a fullness threshold — drawn uniformly so they
  stay effectively dense, as in the originals (e.g. vast's mode of size
  2, fb-m's mode of size 166).

This preserves exactly the features the paper's analysis keys on: M, MF
per mode, density regime, fiber-length imbalance, and mode-size skew.
"""

from __future__ import annotations

from repro.errors import GenerationError
from repro.sptensor.coo import COOTensor
from repro.datasets.registry import REAL_TENSORS, RealTensorInfo, get_real
from repro.generate.powerlaw import powerlaw_tensor

#: Modes whose scaled dimension is at most this are drawn uniformly
#: (they are short enough to be effectively dense at the scaled nnz).
DENSE_MODE_THRESHOLD = 64


def surrogate_shape(info: RealTensorInfo, scale: float) -> tuple[int, ...]:
    """The paper shape shrunk by ``scale**(1/order)`` with floor 2."""
    if scale < 1:
        raise GenerationError("scale must be >= 1")
    f = scale ** (1.0 / info.order)
    return tuple(max(2, int(round(s / f))) for s in info.shape)


def surrogate_nnz(info: RealTensorInfo, scale: float) -> int:
    return max(32, int(round(info.nnz / scale)))


def make_surrogate(
    key_or_name: str,
    scale: float = 1000.0,
    seed: int | None = 0,
    alpha: float = 2.0,
) -> COOTensor:
    """Generate the surrogate for one Table 2 tensor.

    ``scale=1000`` (default) turns the 26-144M-nnz originals into
    26-144K-nnz stand-ins that run in seconds on a laptop.
    """
    info = get_real(key_or_name)
    shape = surrogate_shape(info, scale)
    nnz = surrogate_nnz(info, scale)
    cap = 1.0
    for s in shape:
        cap *= float(s)
    nnz = min(nnz, int(cap * 0.5))
    dense_modes = tuple(
        m for m, s in enumerate(shape) if s <= DENSE_MODE_THRESHOLD
    )
    return powerlaw_tensor(
        shape, nnz, alpha=alpha, dense_modes=dense_modes, seed=seed
    )


def surrogate_suite(
    keys=None, scale: float = 1000.0, seed: int = 100
) -> dict[str, COOTensor]:
    """Surrogates for several (default: all 15) Table 2 tensors."""
    infos = REAL_TENSORS if keys is None else [get_real(k) for k in keys]
    return {
        info.name: make_surrogate(info.key, scale=scale, seed=seed + i)
        for i, info in enumerate(infos)
    }
