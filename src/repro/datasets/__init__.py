"""Real-tensor metadata (Table 2) and surrogate generation."""

from repro.datasets.registry import REAL_TENSORS, RealTensorInfo, get_real
from repro.datasets.surrogate import (
    DENSE_MODE_THRESHOLD,
    make_surrogate,
    surrogate_nnz,
    surrogate_shape,
    surrogate_suite,
)

__all__ = [
    "REAL_TENSORS",
    "RealTensorInfo",
    "get_real",
    "make_surrogate",
    "surrogate_shape",
    "surrogate_nnz",
    "surrogate_suite",
    "DENSE_MODE_THRESHOLD",
]
