"""Exception hierarchy for the sparse tensor benchmark suite."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all suite-specific errors."""


class ShapeError(ReproError, ValueError):
    """Tensor shapes are inconsistent for the requested operation."""


class ModeError(ReproError, ValueError):
    """A mode (dimension) argument is out of range or otherwise invalid."""


class FormatError(ReproError, ValueError):
    """A tensor is stored in a format unsupported by the operation."""


class PatternMismatchError(ReproError, ValueError):
    """Two tensors do not share the non-zero pattern required by a fast path."""


class GenerationError(ReproError, RuntimeError):
    """A synthetic tensor generator could not satisfy its parameters."""


class BenchmarkError(ReproError, RuntimeError):
    """The benchmark harness hit an unrecoverable condition."""
