"""Shared type definitions, dtypes and enums for the benchmark suite.

The paper (Li et al., PPoPP 2020) fixes the storage convention for every
format: 32-bit indices, single-precision (32-bit) floating point values,
and 8-bit element indices inside HiCOO blocks.  These module-level
constants are the single source of truth for those conventions; every
format and kernel imports them from here rather than hard-coding dtypes.
"""

from __future__ import annotations

import enum

import numpy as np

#: Default dtype for COO/HiCOO *block* indices (paper: 32-bit indices).
INDEX_DTYPE = np.uint32

#: Wide index dtype used when a dimension exceeds the uint32 range or when
#: intermediate linearized indices may overflow 32 bits.
WIDE_INDEX_DTYPE = np.int64

#: Dtype for HiCOO element (intra-block) indices (paper: 8 bits).
EINDEX_DTYPE = np.uint8

#: Default value dtype (paper: single precision).
VALUE_DTYPE = np.float32

#: Default HiCOO block size (paper Section 5.1.2 fixes B = 128).
DEFAULT_BLOCK_SIZE = 128

#: Default number of matrix columns for Ttm/Mttkrp (paper: R = 16, chosen to
#: reflect the low-rank feature of popular tensor methods).
DEFAULT_RANK = 16

#: Bytes per stored index / value under the paper's convention.
INDEX_BYTES = 4
EINDEX_BYTES = 1
VALUE_BYTES = 4
BPTR_BYTES = 8


class OpKind(str, enum.Enum):
    """Element-wise operation selector for Tew and Ts kernels."""

    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"

    @classmethod
    def coerce(cls, op: "OpKind | str") -> "OpKind":
        """Accept either an :class:`OpKind` or its string value."""
        if isinstance(op, OpKind):
            return op
        try:
            return cls(str(op).lower())
        except ValueError as exc:  # pragma: no cover - defensive
            raise ValueError(
                f"unknown element-wise op {op!r}; expected one of "
                f"{[m.value for m in cls]}"
            ) from exc


class Schedule(str, enum.Enum):
    """OpenMP-style loop scheduling strategies for the CPU backend."""

    STATIC = "static"
    DYNAMIC = "dynamic"
    GUIDED = "guided"

    @classmethod
    def coerce(cls, sched: "Schedule | str") -> "Schedule":
        if isinstance(sched, Schedule):
            return sched
        try:
            return cls(str(sched).lower())
        except ValueError as exc:  # pragma: no cover - defensive
            raise ValueError(
                f"unknown schedule {sched!r}; expected one of "
                f"{[m.value for m in cls]}"
            ) from exc


class Kernel(str, enum.Enum):
    """The five benchmark kernels of the suite."""

    TEW = "tew"
    TS = "ts"
    TTV = "ttv"
    TTM = "ttm"
    MTTKRP = "mttkrp"

    @classmethod
    def coerce(cls, kernel: "Kernel | str") -> "Kernel":
        if isinstance(kernel, Kernel):
            return kernel
        try:
            return cls(str(kernel).lower())
        except ValueError as exc:  # pragma: no cover - defensive
            raise ValueError(
                f"unknown kernel {kernel!r}; expected one of "
                f"{[m.value for m in cls]}"
            ) from exc


class Format(str, enum.Enum):
    """Sparse tensor storage formats supported by the suite."""

    COO = "coo"
    SCOO = "scoo"
    HICOO = "hicoo"
    GHICOO = "ghicoo"
    SHICOO = "shicoo"
    CSF = "csf"

    @classmethod
    def coerce(cls, fmt: "Format | str") -> "Format":
        if isinstance(fmt, Format):
            return fmt
        try:
            return cls(str(fmt).lower())
        except ValueError as exc:  # pragma: no cover - defensive
            raise ValueError(
                f"unknown format {fmt!r}; expected one of "
                f"{[m.value for m in cls]}"
            ) from exc


def index_dtype_for(shape) -> np.dtype:
    """Return the narrowest supported index dtype covering ``shape``.

    The paper stores 32-bit indices; we transparently widen to int64 for
    tensors whose dimensions do not fit (e.g. huge synthetic Kronecker
    tensors), because silently wrapping indices would corrupt data.
    """
    if len(shape) == 0:
        return np.dtype(INDEX_DTYPE)
    if max(shape) >= np.iinfo(INDEX_DTYPE).max:
        return np.dtype(WIDE_INDEX_DTYPE)
    return np.dtype(INDEX_DTYPE)
