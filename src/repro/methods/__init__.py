"""Tensor methods built on the suite's kernels (the paper's motivating
applications and its named future-work operations)."""

from repro.methods.cpd import CPResult, cp_als
from repro.methods.power import (
    PowerResult,
    symmetric_rank1_tensor,
    tensor_power_method,
    ttv_collapse,
)
from repro.methods.tucker import TuckerResult, ttm_chain, tucker_hooi

__all__ = [
    "cp_als",
    "CPResult",
    "tensor_power_method",
    "PowerResult",
    "symmetric_rank1_tensor",
    "ttv_collapse",
    "ttm_chain",
    "tucker_hooi",
    "TuckerResult",
]
