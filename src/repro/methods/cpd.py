"""CANDECOMP/PARAFAC decomposition via alternating least squares (CP-ALS).

The paper motivates Mttkrp as "the most computationally expensive kernel
in CP decomposition"; this module closes the loop by implementing CP-ALS
on top of the suite's sparse Mttkrp, exactly as ParTI/SPLATT structure it:

    for each mode n:  A(n) <- MTTKRP(X, {A}, n) @ pinv(V)
    where V = hadamard of A(m)^T A(m) over m != n

The data fit is tracked with the standard norm identity so the residual
is never materialized:

    ||X - K||^2 = ||X||^2 + ||K||^2 - 2 <X, K>
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ShapeError
from repro.kernels.mttkrp import coo_mttkrp, hicoo_mttkrp
from repro.sptensor.coo import COOTensor
from repro.sptensor.hicoo import HiCOOTensor
from repro.util.prng import rng_from_seed


@dataclass
class CPResult:
    """A rank-R Kruskal tensor: ``sum_r lambda_r a_r ° b_r ° c_r ...``."""

    weights: np.ndarray  # (R,)
    factors: list  # one (I_m, R) matrix per mode
    fits: list = field(default_factory=list)  # fit per iteration
    n_iters: int = 0
    converged: bool = False

    @property
    def rank(self) -> int:
        return len(self.weights)

    def norm(self) -> float:
        """Frobenius norm of the Kruskal tensor (via the Gram identity)."""
        coeff = np.outer(self.weights, self.weights)
        for a in self.factors:
            coeff = coeff * (a.T @ a)
        return float(np.sqrt(max(coeff.sum(), 0.0)))

    def to_dense(self) -> np.ndarray:
        """Materialize (small tensors only)."""
        shape = tuple(a.shape[0] for a in self.factors)
        out = np.zeros(shape)
        for r in range(self.rank):
            comp = self.weights[r]
            rank1 = self.factors[0][:, r]
            for a in self.factors[1:]:
                rank1 = np.multiply.outer(rank1, a[:, r])
            out += comp * rank1
        return out

    def inner(self, tensor: COOTensor, mttkrp_mode0: np.ndarray) -> float:
        """``<X, K>`` given a mode-0 Mttkrp of X against the factors."""
        return float(
            (self.weights * (self.factors[0] * mttkrp_mode0).sum(axis=0)).sum()
        )


def _mttkrp(tensor, factors, mode, backend):
    if isinstance(tensor, HiCOOTensor):
        return hicoo_mttkrp(tensor, factors, mode, backend)
    return coo_mttkrp(tensor, factors, mode, backend)


def cp_als(
    tensor: "COOTensor | HiCOOTensor",
    rank: int,
    n_iters: int = 50,
    tol: float = 1e-5,
    seed: "int | None" = 0,
    backend=None,
    init_factors=None,
) -> CPResult:
    """Fit a rank-``rank`` CP decomposition with ALS.

    Works on COO or HiCOO tensors (the Mttkrp dispatches per format, so
    this doubles as an end-to-end HiCOO workload).  Returns the factors
    with unit-norm columns and the scale absorbed into ``weights``.
    """
    if rank < 1:
        raise ShapeError("rank must be >= 1")
    shape = tensor.shape
    n = len(shape)
    rng = rng_from_seed(seed)
    if init_factors is None:
        factors = [rng.random((s, rank)) for s in shape]
    else:
        factors = [np.array(f, dtype=np.float64, copy=True) for f in init_factors]
        if len(factors) != n or any(
            f.shape != (shape[m], rank) for m, f in enumerate(factors)
        ):
            raise ShapeError("init_factors must match tensor shape and rank")
    grams = [f.T @ f for f in factors]
    values64 = tensor.values.astype(np.float64)
    norm_x = float(np.sqrt((values64**2).sum()))
    weights = np.ones(rank)
    result = CPResult(weights, factors)

    prev_fit = -np.inf
    for it in range(n_iters):
        for mode in range(n):
            m = _mttkrp(tensor, factors, mode, backend).astype(np.float64)
            v = np.ones((rank, rank))
            for other in range(n):
                if other != mode:
                    v = v * grams[other]
            a = m @ np.linalg.pinv(v)
            # column normalization: 2-norm after iter 0, max-norm first
            # (the Tensor Toolbox convention, keeps columns bounded)
            if it == 0:
                norms = np.linalg.norm(a, axis=0)
            else:
                norms = np.maximum(np.abs(a).max(axis=0), 1.0)
            norms = np.where(norms > 0, norms, 1.0)
            a = a / norms
            # previous factors are unit-norm, so the full scale lands in
            # each fresh update; strip it into the weights (Tensor
            # Toolbox's cp_als convention: lambda is overwritten per mode)
            weights = norms
            factors[mode] = a
            grams[mode] = a.T @ a
            last_mttkrp, last_mode = m, mode
        result.weights = weights
        result.factors = factors
        # fit via the norm identity, using the last computed Mttkrp
        norm_k = result.norm()
        inner = float(
            (result.weights * (factors[last_mode] * last_mttkrp).sum(axis=0)).sum()
        )
        residual_sq = max(norm_x**2 + norm_k**2 - 2 * inner, 0.0)
        fit = 1.0 - np.sqrt(residual_sq) / norm_x if norm_x > 0 else 1.0
        result.fits.append(fit)
        result.n_iters = it + 1
        if abs(fit - prev_fit) < tol:
            result.converged = True
            break
        prev_fit = fit
    return result
