"""Tucker decomposition pieces: TTM-chain and a HOOI driver.

The paper motivates Ttm through the Tucker decomposition and names
"TTM-chain in Tucker decomposition" as the first future-work operation of
the suite; we implement both.  A TTM-chain contracts a sparse tensor with
one matrix per listed mode — after the first Ttm the intermediate is
semi-sparse (sCOO), so the chain alternates Ttm and sCOO→COO expansion,
precisely the sequence a sparse Tucker implementation performs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.errors import ShapeError
from repro.kernels.ttm import coo_ttm
from repro.sptensor.coo import COOTensor
from repro.sptensor.dense import unfold
from repro.util.prng import rng_from_seed
from repro.util.validation import check_mode


def ttm_chain(
    tensor: COOTensor,
    mats: Sequence[np.ndarray],
    modes: Sequence[int],
    backend=None,
) -> COOTensor:
    """Contract ``tensor`` with ``mats[i]`` along ``modes[i]``, in order.

    Each matrix must be ``(I_mode, R_mode)``; the result has the R sizes
    in the contracted positions.  Contracting modes in *decreasing
    fiber-count order* would minimize intermediate sizes; we keep the
    caller's order to stay predictable.
    """
    if len(mats) != len(modes):
        raise ShapeError("one matrix per contracted mode")
    modes = [check_mode(m, tensor.nmodes) for m in modes]
    if len(set(modes)) != len(modes):
        raise ShapeError(f"duplicate modes in TTM-chain: {modes}")
    out = tensor
    for u, mode in zip(mats, modes):
        semi = coo_ttm(out, np.asarray(u), mode, backend)
        out = semi.to_coo(drop_zeros=False)
    return out


@dataclass
class TuckerResult:
    """A Tucker tensor: dense core + one orthonormal factor per mode."""

    core: np.ndarray
    factors: list
    fits: list = field(default_factory=list)
    n_iters: int = 0

    @property
    def ranks(self) -> tuple[int, ...]:
        return self.core.shape

    def to_dense(self) -> np.ndarray:
        out = self.core
        for mode, u in enumerate(self.factors):
            out = np.moveaxis(
                np.tensordot(out, u, axes=([mode], [1])), -1, mode
            )
        return out


def tucker_hooi(
    tensor: COOTensor,
    ranks: Sequence[int],
    n_iters: int = 20,
    tol: float = 1e-6,
    seed: "int | None" = 0,
    backend=None,
) -> TuckerResult:
    """Higher-Order Orthogonal Iteration on a sparse tensor.

    Each mode update runs a sparse TTM-chain over all *other* modes with
    the transposed factors (the dominant cost, using the suite's Ttm),
    then takes the leading left singular vectors of the small dense
    intermediate.  Suitable for the modest ranks of the paper's setting
    (R < 100); the intermediate has size ``I_n x prod(R_other)``.
    """
    n = tensor.nmodes
    ranks = [int(r) for r in ranks]
    if len(ranks) != n:
        raise ShapeError("one rank per mode")
    if any(r < 1 or r > s for r, s in zip(ranks, tensor.shape)):
        raise ShapeError(f"ranks {ranks} incompatible with shape {tensor.shape}")
    rng = rng_from_seed(seed)
    factors = [
        np.linalg.qr(rng.standard_normal((s, r)))[0]
        for s, r in zip(tensor.shape, ranks)
    ]
    values64 = tensor.values.astype(np.float64)
    norm_x = float(np.sqrt((values64**2).sum()))
    result = TuckerResult(np.zeros(ranks), factors)
    prev_fit = -np.inf
    core = np.zeros(ranks)
    for it in range(n_iters):
        for mode in range(n):
            others = [m for m in range(n) if m != mode]
            y = ttm_chain(
                tensor, [factors[m] for m in others], others, backend
            )
            dense = y.to_dense()
            u_mat = unfold(dense, mode)
            u, _, _ = np.linalg.svd(u_mat, full_matrices=False)
            factors[mode] = u[:, : ranks[mode]]
        # Core: contract every mode with the final factors.
        full = ttm_chain(tensor, factors, list(range(n)), backend)
        core = full.to_dense()
        # Orthonormal factors: ||X - T||^2 = ||X||^2 - ||core||^2.
        norm_core = float(np.linalg.norm(core))
        residual_sq = max(norm_x**2 - norm_core**2, 0.0)
        fit = 1.0 - np.sqrt(residual_sq) / norm_x if norm_x > 0 else 1.0
        result.fits.append(fit)
        result.n_iters = it + 1
        if abs(fit - prev_fit) < tol:
            break
        prev_fit = fit
    result.core = core
    result.factors = factors
    return result
