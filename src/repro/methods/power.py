"""Tensor power method — orthogonal symmetric tensor decomposition.

The paper motivates Ttv as "a critical computational kernel of the tensor
power method" (Anandkumar et al., JMLR'14): for a symmetric third-order
tensor ``T = sum_r w_r u_r ⊗ u_r ⊗ u_r`` with orthonormal ``u_r``, the
iteration

    v <- (T x_2 v x_3 v) / ||T x_2 v x_3 v||

converges to the eigenvector with the largest weight; deflating
``T <- T - w v⊗v⊗v`` and repeating recovers the whole decomposition.
Each iteration step is two of the suite's sparse Ttv calls.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ShapeError
from repro.kernels.ttv import coo_ttv
from repro.sptensor.coo import COOTensor
from repro.util.prng import rng_from_seed


@dataclass
class PowerResult:
    """Recovered orthogonal components of a symmetric tensor."""

    eigenvalues: list = field(default_factory=list)
    eigenvectors: list = field(default_factory=list)
    iterations: list = field(default_factory=list)

    @property
    def ncomponents(self) -> int:
        return len(self.eigenvalues)


def symmetric_rank1_tensor(weights, vectors, threshold: float = 1e-10) -> COOTensor:
    """``sum_r w_r u_r ⊗ u_r ⊗ u_r`` as a sparse COO tensor.

    Dense rank-1 sums are usually dense; callers wanting sparsity pass
    sparse ``vectors``.  Entries below ``threshold`` are dropped.
    """
    vectors = np.asarray(vectors, dtype=np.float64)
    weights = np.asarray(weights, dtype=np.float64)
    if vectors.ndim != 2 or len(weights) != vectors.shape[1]:
        raise ShapeError("vectors must be (I, R) with R matching weights")
    i = vectors.shape[0]
    dense = np.einsum("r,ir,jr,kr->ijk", weights, vectors, vectors, vectors)
    dense[np.abs(dense) < threshold] = 0.0
    return COOTensor.from_dense(dense)


def ttv_collapse(tensor: COOTensor, v: np.ndarray, backend=None) -> np.ndarray:
    """``T x_2 v x_3 v`` for a cubical third-order tensor via two Ttv."""
    if tensor.nmodes != 3:
        raise ShapeError("tensor power method expects a third-order tensor")
    y = coo_ttv(tensor, v, 2, backend)  # (I, J) sparse
    z = coo_ttv(y, v, 1, backend)  # (I,) sparse
    out = np.zeros(tensor.shape[0], dtype=np.float64)
    out[z.indices[:, 0].astype(np.int64)] = z.values.astype(np.float64)
    return out


def tensor_power_method(
    tensor: COOTensor,
    n_components: int = 1,
    n_restarts: int = 5,
    n_iters: int = 100,
    tol: float = 1e-8,
    seed: "int | None" = 0,
    backend=None,
) -> PowerResult:
    """Recover the leading orthogonal components of a symmetric tensor.

    Runs the power iteration with random restarts (keeping the restart
    achieving the largest eigenvalue) and deflates between components.
    Deflation happens in sparse form via the Tew kernel, so the whole
    method exercises Ttv + Tew end-to-end.
    """
    if tensor.nmodes != 3 or len(set(tensor.shape)) != 1:
        raise ShapeError("expects a cubical third-order symmetric tensor")
    rng = rng_from_seed(seed)
    work = tensor.astype(np.float64)
    result = PowerResult()
    dim = tensor.shape[0]

    for _ in range(n_components):
        best_val, best_vec, best_it = -np.inf, None, 0
        for _ in range(n_restarts):
            v = rng.standard_normal(dim)
            v /= np.linalg.norm(v)
            it = 0
            for it in range(1, n_iters + 1):
                w = ttv_collapse(work, v, backend)
                nw = np.linalg.norm(w)
                if nw < 1e-14:
                    break
                w /= nw
                if np.linalg.norm(w - v) < tol:
                    v = w
                    break
                v = w
            lam = float(ttv_collapse(work, v, backend) @ v)
            if lam > best_val:
                best_val, best_vec, best_it = lam, v, it
        if best_vec is None:  # pragma: no cover - degenerate input
            break
        result.eigenvalues.append(best_val)
        result.eigenvectors.append(best_vec)
        result.iterations.append(best_it)
        # Deflate: T <- T - lambda v⊗v⊗v (sparse subtraction via Tew).
        from repro.kernels.tew import coo_tew

        rank1 = symmetric_rank1_tensor([best_val], best_vec[:, None])
        work = coo_tew(work, rank1, "sub").drop_zeros(1e-12)
    return result
