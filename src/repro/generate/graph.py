"""Graph-theoretic property checks for generated tensors.

The paper selects its two generators because the resulting (hyper)graphs
"follow the power law distribution, exhibit a small diameter, and have a
high average clustering coefficient."  These helpers verify those claims
on generated tensors: degree distributions per mode, a maximum-likelihood
power-law exponent fit (Clauset-Shalizi-Newman), and clustering/diameter
via networkx on the mode-(0,1) graph projection.
"""

from __future__ import annotations

import numpy as np

from repro.sptensor.coo import COOTensor
from repro.util.validation import check_mode


def degree_distribution(tensor: COOTensor, mode: int) -> np.ndarray:
    """Non-zero count per index of ``mode`` (the hypergraph degree)."""
    mode = check_mode(mode, tensor.nmodes)
    deg = np.bincount(
        tensor.indices[:, mode].astype(np.int64), minlength=tensor.shape[mode]
    )
    return deg[deg > 0]


def powerlaw_exponent_mle(degrees: np.ndarray, dmin: int = 1) -> float:
    """Clauset-Shalizi-Newman MLE for the power-law exponent alpha.

    ``alpha = 1 + n / sum(ln(d / (dmin - 0.5)))`` over degrees >= dmin.
    """
    d = np.asarray(degrees, dtype=np.float64)
    d = d[d >= dmin]
    if len(d) < 2:
        return float("nan")
    return float(1.0 + len(d) / np.log(d / (dmin - 0.5)).sum())


def degree_tail_ratio(degrees: np.ndarray, quantile: float = 0.99) -> float:
    """Share of all non-zeros owned by the top ``1-quantile`` of vertices —
    a scale-free distribution concentrates mass in a tiny hub set."""
    d = np.sort(np.asarray(degrees, dtype=np.float64))[::-1]
    if d.sum() == 0:
        return 0.0
    k = max(1, int(round(len(d) * (1.0 - quantile))))
    return float(d[:k].sum() / d.sum())


def project_graph(tensor: COOTensor, modes: tuple[int, int] = (0, 1)):
    """Project two modes of the tensor onto an undirected networkx graph
    (vertices of mode ``modes[1]`` are offset to keep the sides disjoint
    when dimensions overlap)."""
    import networkx as nx

    a, b = (check_mode(m, tensor.nmodes) for m in modes)
    offset = tensor.shape[a]
    g = nx.Graph()
    u = tensor.indices[:, a].astype(np.int64)
    v = tensor.indices[:, b].astype(np.int64) + offset
    g.add_edges_from(zip(u.tolist(), v.tolist()))
    return g


def clustering_coefficient(tensor: COOTensor, modes: tuple[int, int] = (0, 1)) -> float:
    """Average clustering of the *unipartite collapse* of two modes.

    The bipartite projection itself is triangle-free, so we collapse it:
    mode-``a`` vertices are linked when they share a mode-``b`` neighbor.
    Intended for small generated tensors (test-scale validation only).
    """
    import networkx as nx

    a, b = (check_mode(m, tensor.nmodes) for m in modes)
    u = tensor.indices[:, a].astype(np.int64)
    v = tensor.indices[:, b].astype(np.int64)
    # group mode-a vertices by shared mode-b index
    order = np.argsort(v, kind="stable")
    u, v = u[order], v[order]
    g = nx.Graph()
    g.add_nodes_from(np.unique(u).tolist())
    starts = np.concatenate(([0], np.flatnonzero(np.diff(v)) + 1, [len(v)]))
    for s, e in zip(starts[:-1], starts[1:]):
        group = np.unique(u[s:e])
        if len(group) > 200:  # clamp hub fan-out to keep this tractable
            group = group[:200]
        for i in range(len(group)):
            for j in range(i + 1, len(group)):
                g.add_edge(int(group[i]), int(group[j]))
    if g.number_of_nodes() == 0:
        return 0.0
    return float(nx.average_clustering(g))


def effective_diameter(tensor: COOTensor, modes: tuple[int, int] = (0, 1)) -> float:
    """90th-percentile shortest-path length over the largest component of
    the bipartite projection (small tensors only)."""
    import networkx as nx

    g = project_graph(tensor, modes)
    if g.number_of_nodes() == 0:
        return 0.0
    comp = max(nx.connected_components(g), key=len)
    sub = g.subgraph(comp)
    lengths = []
    nodes = list(sub.nodes)
    # sample sources to bound cost
    rng = np.random.default_rng(0)
    for src in rng.choice(nodes, size=min(20, len(nodes)), replace=False):
        lengths.extend(nx.single_source_shortest_path_length(sub, src).values())
    return float(np.percentile(lengths, 90)) if lengths else 0.0
