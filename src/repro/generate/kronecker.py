"""Stochastic Kronecker tensor generator (paper Sec. 4.2.1).

The Stochastic Kronecker graph model (Leskovec et al., JMLR'10) grows a
graph as the n-fold Kronecker power of a small *initiator* matrix, then
realizes edges by Bernoulli sampling; the result follows a power-law
degree distribution with small diameter and high clustering.  The paper
extends the model to order-N tensors by taking the initiator to be an
N-mode probability tensor.

Sampling: rather than materializing the (exponentially large) Kronecker
power, each non-zero is placed by descending the initiator ``n`` times —
at each level an initiator cell is drawn with probability proportional to
its weight and contributes one digit (base = initiator dimension) to every
mode's coordinate.  This is the standard R-MAT-style realization and is
equivalent in expectation to Bernoulli sampling of the full product.

The exponential growth of the Kronecker power means mode sizes are powers
of the initiator dimension; the paper overcomes this by running one extra
iteration and stripping coordinates that fall outside the requested shape,
which :func:`kronecker_tensor` reproduces.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from repro.errors import GenerationError
from repro.types import VALUE_DTYPE
from repro.sptensor.coo import COOTensor
from repro.util.prng import rng_from_seed


def default_initiator(order: int, dim: int = 2, skew: float = 0.6) -> np.ndarray:
    """A corner-weighted initiator generalizing the R-MAT (a,b,c,d) matrix.

    Cell weight decays geometrically with the sum of its coordinates, so
    low-index regions of the generated tensor are densest — producing the
    heavy-tailed slice/fiber distribution of real-world tensors.
    """
    if dim < 2:
        raise GenerationError("initiator dimension must be >= 2")
    if not 0 < skew < 1:
        raise GenerationError(f"skew must be in (0, 1), got {skew}")
    grids = np.indices((dim,) * order).reshape(order, -1).sum(axis=0)
    weights = skew ** grids.astype(np.float64)
    weights /= weights.sum()
    return weights.reshape((dim,) * order)


def _sample_coords(
    initiator: np.ndarray,
    iterations: int,
    count: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Draw ``count`` coordinates by descending the initiator ``iterations``
    times; returns an ``(count, order)`` int64 array."""
    order = initiator.ndim
    dim = initiator.shape[0]
    flat = initiator.ravel().astype(np.float64)
    flat = flat / flat.sum()
    cells = rng.choice(flat.size, size=(count, iterations), p=flat)
    digits = np.stack(np.unravel_index(cells, initiator.shape), axis=0)
    coords = np.zeros((count, order), dtype=np.int64)
    for it in range(iterations):
        coords = coords * dim + digits[:, :, it].T
    return coords


def kronecker_tensor(
    shape: Sequence[int],
    nnz: int,
    initiator: np.ndarray | None = None,
    seed: "int | np.random.Generator | None" = None,
    max_rounds: int = 64,
    dtype=VALUE_DTYPE,
) -> COOTensor:
    """Generate a sparse tensor from the stochastic Kronecker model.

    Parameters
    ----------
    shape:
        Requested dimension sizes (need not be powers of the initiator
        dimension — the strip-oversize trick handles the remainder).
    nnz:
        Number of distinct non-zeros to realize.
    initiator:
        N-mode cubical probability tensor; defaults to
        :func:`default_initiator` of matching order.
    seed:
        PRNG seed for reproducible generation.
    max_rounds:
        Abort threshold for the resample loop (hit only when ``nnz``
        approaches the tensor capacity and collisions dominate).
    """
    shape = tuple(int(s) for s in shape)
    order = len(shape)
    if initiator is None:
        initiator = default_initiator(order)
    initiator = np.asarray(initiator, dtype=np.float64)
    if initiator.ndim != order:
        raise GenerationError(
            f"initiator order {initiator.ndim} does not match shape order {order}"
        )
    if len(set(initiator.shape)) != 1:
        raise GenerationError("initiator must be cubical")
    if (initiator < 0).any() or initiator.sum() <= 0:
        raise GenerationError("initiator must be a non-negative weight tensor")
    dim = initiator.shape[0]
    # One extra iteration past the largest mode, then strip (paper 4.2.1).
    iterations = max(1, math.ceil(math.log(max(shape), dim)))
    rng = rng_from_seed(seed)

    collected = np.empty((0, order), dtype=np.int64)
    shape_arr = np.asarray(shape, dtype=np.int64)
    for _ in range(max_rounds):
        need = nnz - collected.shape[0]
        if need <= 0:
            break
        draw = max(need + 16, int(need * 1.3))
        coords = _sample_coords(initiator, iterations, draw, rng)
        # Strip coordinates falling outside the requested shape.
        keep = (coords < shape_arr).all(axis=1)
        coords = coords[keep]
        collected = np.unique(
            np.concatenate([collected, coords], axis=0), axis=0
        )
    if collected.shape[0] < nnz:
        raise GenerationError(
            f"could not realize {nnz} distinct non-zeros in shape {shape} "
            f"after {max_rounds} rounds (got {collected.shape[0]}); the "
            "initiator may be too concentrated for this density"
        )
    perm = rng.permutation(collected.shape[0])[:nnz]
    coords = collected[perm]
    values = (rng.random(nnz) + 0.5).astype(dtype)
    return COOTensor(shape, coords, values, copy=False, check=False)
