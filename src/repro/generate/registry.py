"""Synthetic tensor registry — the paper's Table 3 configurations.

Fifteen synthetic tensors: regular (equidimensional) 3-D/4-D tensors from
the stochastic Kronecker generator and irregular tensors — hypersparse
equidimensional long modes plus short, effectively-dense modes — from the
biased power-law generator, each in a "small, medium, large" period.

Each :class:`SyntheticConfig` records the *paper-scale* shape and non-zero
count and can generate itself at any downscale factor; scaling divides the
non-zeros by ``scale`` and every dimension by ``scale**(1/order)``, which
preserves the density regime (the feature the paper's analysis keys on).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import GenerationError
from repro.sptensor.coo import COOTensor
from repro.generate.kronecker import kronecker_tensor
from repro.generate.powerlaw import powerlaw_tensor


@dataclass(frozen=True)
class SyntheticConfig:
    """One row of Table 3."""

    key: str  # s1..s15
    name: str  # regS, irrM4d, ...
    generator: str  # "kron" | "pl"
    paper_shape: tuple[int, ...]
    paper_nnz: int
    dense_modes: tuple[int, ...] = ()  # power-law generator's short modes
    alpha: float = 2.0

    @property
    def order(self) -> int:
        return len(self.paper_shape)

    @property
    def paper_density(self) -> float:
        cap = 1.0
        for s in self.paper_shape:
            cap *= float(s)
        return self.paper_nnz / cap

    def scaled_shape(self, scale: float) -> tuple[int, ...]:
        """Dimensions shrunk by ``scale**(1/order)`` (floor 2, or 4 on
        power-law hub modes so the distribution keeps a tail)."""
        if scale < 1:
            raise GenerationError("scale must be >= 1")
        f = scale ** (1.0 / self.order)
        return tuple(max(2, int(round(s / f))) for s in self.paper_shape)

    def scaled_nnz(self, scale: float) -> int:
        return max(16, int(round(self.paper_nnz / scale)))

    def generate(self, scale: float = 1000.0, seed: int | None = 0) -> COOTensor:
        """Materialize this configuration at ``scale`` (1.0 = paper size)."""
        shape = self.scaled_shape(scale)
        nnz = self.scaled_nnz(scale)
        cap = 1.0
        for s in shape:
            cap *= float(s)
        nnz = min(nnz, int(cap * 0.5))
        if self.generator == "kron":
            return kronecker_tensor(shape, nnz, seed=seed)
        if self.generator == "pl":
            return powerlaw_tensor(
                shape, nnz, alpha=self.alpha, dense_modes=self.dense_modes,
                seed=seed,
            )
        raise GenerationError(f"unknown generator {self.generator!r}")


#: Table 3, in paper order (s1..s15).
SYNTHETIC_TENSORS: tuple[SyntheticConfig, ...] = (
    SyntheticConfig("s1", "regS", "kron", (65_000,) * 3, 1_100_000),
    SyntheticConfig("s2", "regM", "kron", (1_100_000,) * 3, 11_500_000),
    SyntheticConfig("s3", "regL", "kron", (8_300_000,) * 3, 94_000_000),
    SyntheticConfig("s4", "irrS", "pl", (32_000, 32_000, 76), 1_000_000, (2,)),
    SyntheticConfig("s5", "irrM", "pl", (524_000, 524_000, 126), 10_000_000, (2,)),
    SyntheticConfig("s6", "irrL", "pl", (4_200_000, 4_200_000, 168), 84_000_000, (2,)),
    SyntheticConfig("s7", "regS4d", "kron", (8_200,) * 4, 1_000_000),
    SyntheticConfig("s8", "regM4d", "kron", (2_100_000,) * 4, 11_200_000),
    SyntheticConfig("s9", "regL4d", "kron", (8_300_000,) * 4, 110_000_000),
    SyntheticConfig(
        "s10", "irrS4d", "pl", (1_600_000,) * 3 + (82,), 1_000_000, (3,)
    ),
    SyntheticConfig(
        "s11", "irrM4d", "pl", (2_600_000,) * 3 + (144,), 10_800_000, (3,)
    ),
    SyntheticConfig(
        "s12", "irrL4d", "pl", (4_200_000,) * 3 + (226,), 100_000_000, (3,)
    ),
    SyntheticConfig(
        "s13", "irr2S4d", "pl", (1_000_000, 1_000_000, 122, 436), 1_600_000, (2, 3)
    ),
    SyntheticConfig(
        "s14", "irr2M4d", "pl", (4_200_000, 4_200_000, 232, 746), 19_900_000, (2, 3)
    ),
    SyntheticConfig(
        "s15", "irr2L4d", "pl", (8_300_000, 8_300_000, 952, 324), 109_000_000, (2, 3)
    ),
)

_BY_KEY = {c.key: c for c in SYNTHETIC_TENSORS}
_BY_NAME = {c.name: c for c in SYNTHETIC_TENSORS}


def get_synthetic(key_or_name: str) -> SyntheticConfig:
    """Look up a Table 3 configuration by key ("s5") or name ("irrM")."""
    cfg = _BY_KEY.get(key_or_name) or _BY_NAME.get(key_or_name)
    if cfg is None:
        raise KeyError(
            f"unknown synthetic tensor {key_or_name!r}; "
            f"known: {sorted(_BY_KEY)} / {sorted(_BY_NAME)}"
        )
    return cfg


def generate_suite(
    keys: Sequence[str] | None = None,
    scale: float = 1000.0,
    seed: int = 0,
) -> dict[str, COOTensor]:
    """Generate several Table 3 tensors keyed by their short name."""
    configs = (
        SYNTHETIC_TENSORS
        if keys is None
        else [get_synthetic(k) for k in keys]
    )
    return {
        c.name: c.generate(scale=scale, seed=seed + i)
        for i, c in enumerate(configs)
    }
