"""Biased power-law stream tensor generator (paper Sec. 4.2.2).

Modeled on the FireHose streaming benchmark's *biased power-law* front-end
generator: a stream of events whose key popularity follows a power law.
The paper combines such power-law graphs into slices of higher-order
tensors: the sparse, equidimensional modes take power-law-distributed
indices (a few hub indices absorb most of the non-zeros) while the short
modes are drawn uniformly and end up *completely dense* — the structure of
the paper's ``irr*`` tensors ("one mode completely dense and much smaller
compared to the two other modes which are equidimensional and sparse").
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import GenerationError
from repro.types import VALUE_DTYPE
from repro.sptensor.coo import COOTensor
from repro.util.prng import rng_from_seed


def powerlaw_indices(
    count: int,
    size: int,
    alpha: float,
    rng: np.random.Generator,
    shuffle_map: bool = True,
) -> np.ndarray:
    """Draw ``count`` indices in ``[0, size)`` with a power-law popularity.

    Uses inverse-CDF sampling of a truncated Pareto: index rank ``k`` is
    drawn with probability ~ ``(k+1)^-alpha``.  With ``shuffle_map`` the
    ranks are mapped through a seeded permutation so the hubs are scattered
    over the index space (FireHose's keys are hashed, not ordered).
    """
    if size <= 0:
        raise GenerationError("size must be positive")
    if alpha <= 1.0:
        raise GenerationError(f"power-law exponent must exceed 1, got {alpha}")
    u = rng.random(count)
    # Inverse CDF of a continuous truncated power-law on [1, size+1).
    a = 1.0 - alpha
    lo, hi = 1.0, float(size + 1)
    ranks = ((hi**a - lo**a) * u + lo**a) ** (1.0 / a)
    idx = np.minimum(ranks.astype(np.int64) - 1, size - 1)
    if shuffle_map:
        # Deterministic scatter of ranks over the index space.
        mapping = rng.permutation(size)
        idx = mapping[idx]
    return idx


def powerlaw_tensor(
    shape: Sequence[int],
    nnz: int,
    alpha: float = 2.0,
    dense_modes: Sequence[int] = (),
    seed: "int | np.random.Generator | None" = None,
    max_rounds: int = 64,
    dtype=VALUE_DTYPE,
) -> COOTensor:
    """Generate a sparse tensor whose sparse-mode indices are power-law.

    Parameters
    ----------
    dense_modes:
        Modes drawn *uniformly*; when their dimension is much smaller than
        ``nnz`` they become effectively dense, as in the paper's irregular
        tensors.  All other modes draw from the biased power law.
    alpha:
        Power-law exponent (> 1); 2-2.5 matches real-world graphs.
    """
    shape = tuple(int(s) for s in shape)
    order = len(shape)
    dense = set(int(m) % order for m in dense_modes)
    rng = rng_from_seed(seed)
    capacity = 1.0
    for s in shape:
        capacity *= float(s)
    if nnz > capacity:
        raise GenerationError(f"cannot place {nnz} non-zeros in shape {shape}")

    collected = np.empty((0, order), dtype=np.int64)
    for _ in range(max_rounds):
        need = nnz - collected.shape[0]
        if need <= 0:
            break
        draw = max(need + 16, int(need * 1.3))
        cols = []
        for m in range(order):
            if m in dense:
                cols.append(rng.integers(0, shape[m], size=draw))
            else:
                cols.append(powerlaw_indices(draw, shape[m], alpha, rng))
        coords = np.stack(cols, axis=1)
        collected = np.unique(
            np.concatenate([collected, coords], axis=0), axis=0
        )
    if collected.shape[0] < nnz:
        raise GenerationError(
            f"could not realize {nnz} distinct non-zeros in shape {shape}: "
            f"power-law hubs saturated after {max_rounds} rounds "
            f"(got {collected.shape[0]}); lower alpha or nnz"
        )
    perm = rng.permutation(collected.shape[0])[:nnz]
    coords = collected[perm]
    values = (rng.random(nnz) + 0.5).astype(dtype)
    return COOTensor(shape, coords, values, copy=False, check=False)


def powerlaw_stream(
    nnz: int,
    shape: Sequence[int],
    alpha: float = 2.0,
    dense_modes: Sequence[int] = (),
    seed: "int | np.random.Generator | None" = None,
    batch: int = 8192,
):
    """Yield ``(coords, values)`` batches like a FireHose event stream.

    Unlike :func:`powerlaw_tensor`, duplicates are *not* removed — a
    stream naturally revisits hot keys.  Feed the concatenated batches to
    :meth:`COOTensor.coalesce` to accumulate a tensor from the stream.
    """
    shape = tuple(int(s) for s in shape)
    order = len(shape)
    dense = set(int(m) % order for m in dense_modes)
    rng = rng_from_seed(seed)
    remaining = int(nnz)
    while remaining > 0:
        draw = min(batch, remaining)
        cols = []
        for m in range(order):
            if m in dense:
                cols.append(rng.integers(0, shape[m], size=draw))
            else:
                cols.append(powerlaw_indices(draw, shape[m], alpha, rng))
        coords = np.stack(cols, axis=1)
        values = (rng.random(draw) + 0.5).astype(VALUE_DTYPE)
        yield coords, values
        remaining -= draw
