"""Synthetic tensor generation: Kronecker, power-law, and Table 3 registry."""

from repro.generate.graph import (
    clustering_coefficient,
    degree_distribution,
    degree_tail_ratio,
    effective_diameter,
    powerlaw_exponent_mle,
    project_graph,
)
from repro.generate.kronecker import default_initiator, kronecker_tensor
from repro.generate.powerlaw import (
    powerlaw_indices,
    powerlaw_stream,
    powerlaw_tensor,
)
from repro.generate.registry import (
    SYNTHETIC_TENSORS,
    SyntheticConfig,
    generate_suite,
    get_synthetic,
)

__all__ = [
    "kronecker_tensor",
    "default_initiator",
    "powerlaw_tensor",
    "powerlaw_indices",
    "powerlaw_stream",
    "degree_distribution",
    "powerlaw_exponent_mle",
    "degree_tail_ratio",
    "clustering_coefficient",
    "effective_diameter",
    "project_graph",
    "SyntheticConfig",
    "SYNTHETIC_TENSORS",
    "get_synthetic",
    "generate_suite",
]
