"""CPU parallel substrate: backends, partitioners, atomics, workspaces,
and the concurrency-correctness harness (race-check + chaos backends)."""

from repro.parallel.atomic import (
    ContentionStats,
    atomic_add_rows,
    contention_stats,
    sorted_reduce_rows,
)
from repro.parallel.backend import Backend, get_backend, register_backend
from repro.parallel.chaos import ChaosBackend, ChaosError
from repro.parallel.openmp import OpenMPBackend
from repro.parallel.racecheck import RaceCheckBackend, RaceViolation, RegionReport
from repro.parallel.slots import SlotPool, bound_slot, current_slot
from repro.parallel.ownership import (
    OwnerPartition,
    owner_partition,
    owner_scatter_add,
)
from repro.parallel.workspace import WorkspacePool
from repro.parallel.partition import (
    balanced_partition,
    chunk_ranges,
    fixed_chunks,
    guided_chunks,
    load_imbalance,
    makespan,
)
from repro.parallel.sequential import SequentialBackend

# Default registry entries: the suite always has a sequential executor, an
# OpenMP-like pool sized to the host, and the race-check replayer.
register_backend("sequential", SequentialBackend())
register_backend("seq", get_backend("sequential"))
register_backend("openmp", OpenMPBackend())
register_backend("omp", get_backend("openmp"))
register_backend("racecheck", RaceCheckBackend())

__all__ = [
    "Backend",
    "SequentialBackend",
    "OpenMPBackend",
    "RaceCheckBackend",
    "RaceViolation",
    "RegionReport",
    "ChaosBackend",
    "ChaosError",
    "SlotPool",
    "bound_slot",
    "current_slot",
    "get_backend",
    "register_backend",
    "chunk_ranges",
    "fixed_chunks",
    "guided_chunks",
    "balanced_partition",
    "load_imbalance",
    "makespan",
    "atomic_add_rows",
    "sorted_reduce_rows",
    "contention_stats",
    "ContentionStats",
    "WorkspacePool",
    "OwnerPartition",
    "owner_partition",
    "owner_scatter_add",
]
