"""OpenMP-like thread-pool backend.

Mirrors ``#pragma omp parallel for schedule(...)``:

* ``static``  — the iteration space is pre-split into one chunk per thread;
* ``dynamic`` — fixed-size chunks are pulled from a shared queue;
* ``guided``  — chunk sizes decay as the remaining work shrinks.

Chunks run on a persistent :class:`~concurrent.futures.ThreadPoolExecutor`.
Because kernel bodies are NumPy ufunc calls that release the GIL, chunks
execute concurrently on multicore hosts; on a single core the backend
degrades gracefully to interleaved execution with identical results.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor, wait

from repro.types import Schedule
from repro.parallel.backend import Backend, RangeBody
from repro.parallel.partition import chunk_ranges, fixed_chunks, guided_chunks


def _default_nthreads() -> int:
    """Paper protocol: one thread per physical core (env override wins)."""
    env = os.environ.get("REPRO_NUM_THREADS") or os.environ.get("OMP_NUM_THREADS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return max(1, os.cpu_count() or 1)


class OpenMPBackend(Backend):
    """Thread-pool executor with OpenMP-style scheduling."""

    def __init__(self, nthreads: int | None = None, default_chunk: int = 2048):
        self.nthreads = nthreads if nthreads else _default_nthreads()
        self.default_chunk = int(default_chunk)
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.nthreads, thread_name_prefix="repro-omp"
            )
        return self._pool

    def shutdown(self) -> None:
        """Tear down the worker pool (tests; otherwise lives with process)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def parallel_for(
        self,
        total: int,
        body: RangeBody,
        schedule: "Schedule | str" = Schedule.STATIC,
        chunk: int | None = None,
    ) -> None:
        schedule = Schedule.coerce(schedule)
        if total <= 0:
            return
        if schedule is Schedule.STATIC:
            ranges = (
                fixed_chunks(total, chunk)
                if chunk is not None
                else chunk_ranges(total, self.nthreads)
            )
        elif schedule is Schedule.DYNAMIC:
            ranges = fixed_chunks(total, chunk or self.default_chunk)
        else:  # GUIDED
            # Floor at the backend's default chunk (OpenMP's guided floors
            # at the chunk argument too): min_chunk=1 degenerates into a
            # long tail of 1-element chunks once remaining/nthreads < 1.
            ranges = guided_chunks(
                total, self.nthreads, min_chunk=chunk or self.default_chunk
            )
        if len(ranges) == 1 or self.nthreads == 1:
            for lo, hi in ranges:
                body(lo, hi)
            return
        pool = self._ensure_pool()
        futures = [pool.submit(body, lo, hi) for lo, hi in ranges]
        done, _ = wait(futures)
        for f in done:
            exc = f.exception()
            if exc is not None:
                raise exc

    def map_ranges(self, ranges, body: RangeBody) -> None:
        ranges = list(ranges)
        if len(ranges) <= 1 or self.nthreads == 1:
            for lo, hi in ranges:
                body(lo, hi)
            return
        pool = self._ensure_pool()
        futures = [pool.submit(body, lo, hi) for lo, hi in ranges]
        done, _ = wait(futures)
        for f in done:
            exc = f.exception()
            if exc is not None:
                raise exc
