"""OpenMP-like thread-pool backend.

Mirrors ``#pragma omp parallel for schedule(...)``:

* ``static``  — the iteration space is pre-split into one chunk per thread;
* ``dynamic`` — fixed-size chunks are pulled from a shared queue;
* ``guided``  — chunk sizes decay as the remaining work shrinks.

Chunks run on a persistent :class:`~concurrent.futures.ThreadPoolExecutor`.
Because kernel bodies are NumPy ufunc calls that release the GIL, chunks
execute concurrently on multicore hosts; on a single core the backend
degrades gracefully to interleaved execution with identical results.

Every chunk executes under a leased *worker slot*
(:class:`~repro.parallel.slots.SlotPool`) — the ``omp_get_thread_num()``
analogue that privatized state (``WorkspacePool`` arenas) keys itself on,
so worker identity survives executor recycling and OS thread-ident reuse.

Error semantics: a failing chunk causes ``parallel_for``/``map_ranges`` to
raise the failure of the *earliest chunk in chunk order* (not an arbitrary
member of an unordered ``wait()`` set) after cancelling chunks that have
not started yet.
"""

from __future__ import annotations

import os
import threading
from concurrent.futures import FIRST_EXCEPTION, ThreadPoolExecutor, wait

from repro.types import Schedule
from repro.obs.tracer import CAT_CHUNK, CAT_REGION, current_tracer
from repro.parallel.backend import Backend, RangeBody
from repro.parallel.partition import plan_ranges
from repro.parallel.slots import SlotPool, bound_slot


def _default_nthreads() -> int:
    """Paper protocol: one thread per physical core (env override wins)."""
    env = os.environ.get("REPRO_NUM_THREADS") or os.environ.get("OMP_NUM_THREADS")
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return max(1, os.cpu_count() or 1)


class OpenMPBackend(Backend):
    """Thread-pool executor with OpenMP-style scheduling."""

    def __init__(self, nthreads: int | None = None, default_chunk: int = 2048):
        self.nthreads = nthreads if nthreads else _default_nthreads()
        self.default_chunk = int(default_chunk)
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        self._slots = SlotPool(self.nthreads)

    def _ensure_pool(self) -> ThreadPoolExecutor:
        pool = self._pool
        if pool is None:
            with self._pool_lock:
                pool = self._pool
                if pool is None:
                    pool = self._pool = ThreadPoolExecutor(
                        max_workers=self.nthreads, thread_name_prefix="repro-omp"
                    )
        return pool

    def shutdown(self) -> None:
        """Tear down the worker pool (tests; otherwise lives with process).

        The backend stays usable: the next loop lazily recreates the
        executor, and slot-keyed workspace pools survive the recycled
        worker threads.
        """
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def plan(
        self,
        total: int,
        schedule: "Schedule | str" = Schedule.STATIC,
        chunk: int | None = None,
    ) -> list[tuple[int, int]]:
        """The chunk decomposition ``parallel_for`` would execute.

        Exposed so the race-check and chaos backends replay the identical
        decomposition this backend runs.
        """
        return plan_ranges(total, schedule, chunk, self.nthreads, self.default_chunk)

    def parallel_for(
        self,
        total: int,
        body: RangeBody,
        schedule: "Schedule | str" = Schedule.STATIC,
        chunk: int | None = None,
    ) -> None:
        self._execute(
            self.plan(total, schedule, chunk),
            body,
            schedule=str(getattr(schedule, "value", schedule)),
        )

    def map_ranges(self, ranges, body: RangeBody) -> None:
        self._execute(list(ranges), body, schedule="explicit")

    def _execute(
        self,
        ranges: list[tuple[int, int]],
        body: RangeBody,
        schedule: str = "explicit",
    ) -> None:
        if not ranges:
            return

        tracer = current_tracer()
        if tracer.enabled:
            # One span per chunk (tagged with the executing worker slot at
            # span exit) nested under one region span on the caller
            # thread.  Disabled tracing never reaches this wrapping: the
            # hot path pays one branch, zero per chunk.
            inner = body

            def body(lo: int, hi: int, _inner=inner) -> None:
                with tracer.span(
                    "chunk", cat=CAT_CHUNK, backend="openmp",
                    schedule=schedule, lo=lo, hi=hi,
                ):
                    _inner(lo, hi)

            region = tracer.span(
                "parallel_for", cat=CAT_REGION, backend="openmp",
                schedule=schedule, nchunks=len(ranges),
                nthreads=self.nthreads,
            )
            with region:
                self._run_ranges(ranges, body)
            return
        self._run_ranges(ranges, body)

    def _run_ranges(self, ranges: list[tuple[int, int]], body: RangeBody) -> None:
        def run_chunk(lo: int, hi: int) -> None:
            with self._slots.lease():
                body(lo, hi)

        if len(ranges) == 1 or self.nthreads == 1:
            # Caller-thread execution: bind slot 0 directly instead of
            # leasing, so a direct call concurrent with a saturated
            # executor cannot exhaust the slot pool.  Distinct kernel
            # calls check out distinct workspace pools, so sharing slot 0
            # across concurrent direct callers never aliases arenas.
            for lo, hi in ranges:
                with bound_slot(0):
                    body(lo, hi)
            return
        pool = self._ensure_pool()
        futures = [pool.submit(run_chunk, lo, hi) for lo, hi in ranges]
        done, pending = wait(futures, return_when=FIRST_EXCEPTION)
        if pending:
            # Only non-empty when some chunk failed: cancel chunks that
            # have not started, let the uncancellable ones drain.
            for f in pending:
                f.cancel()
            wait(futures)
        for f in futures:  # chunk order, so the first failure wins
            if f.cancelled():
                continue
            exc = f.exception()
            if exc is not None:
                raise exc
