"""Worker-slot identity for the thread-pool backends.

OpenMP kernels privatize per *logical worker* (``omp_get_thread_num()``),
not per OS thread: the identity that matters for a thread-private arena is
"which of the backend's ``nthreads`` execution slots is running this
chunk".  Keying privatized state by raw ``threading.get_ident()`` conflates
the two — thread idents outlive executor recycling, get reused by the OS,
and multiply under worker churn, which is exactly how the backend-cached
:class:`~repro.parallel.workspace.WorkspacePool` leaked arenas past its
``max_arenas`` bound.

This module is the single source of worker identity: backends lease a slot
in ``[0, nthreads)`` around each chunk they execute (:class:`SlotPool`),
bind it to the running thread (:func:`bound_slot`), and privatized state
keys itself on :func:`current_slot`.  Two chunks never share a slot while
both are in flight, so slot-keyed state is race-free *and* bounded by the
slot count no matter how many OS threads come and go.
"""

from __future__ import annotations

import contextlib
import threading

_current = threading.local()


def current_slot() -> "int | None":
    """The worker slot bound to the calling thread, or ``None`` outside
    any backend-executed chunk."""
    return getattr(_current, "slot", None)


@contextlib.contextmanager
def bound_slot(slot: int):
    """Bind ``slot`` as the calling thread's worker identity."""
    prev = getattr(_current, "slot", None)
    _current.slot = int(slot)
    try:
        yield int(slot)
    finally:
        _current.slot = prev


class SlotPool:
    """Leases worker slots ``0..nslots-1`` to concurrently running chunks.

    A lease is scoped to one chunk execution: the slot is exclusive while
    held and returns to the free list when the chunk finishes, so a thread
    that dies mid-loop (worker churn) releases its identity for the next
    worker instead of stranding it.
    """

    __slots__ = ("nslots", "_free", "_lock")

    def __init__(self, nslots: int):
        self.nslots = max(1, int(nslots))
        # Pop from the end; reversed so low slots are handed out first.
        self._free = list(range(self.nslots))[::-1]
        self._lock = threading.Lock()

    @contextlib.contextmanager
    def lease(self):
        """Exclusively hold one slot, bound to the calling thread."""
        with self._lock:
            if not self._free:
                raise RuntimeError(
                    f"SlotPool exhausted: more than {self.nslots} chunks "
                    "executing concurrently"
                )
            slot = self._free.pop()
        try:
            with bound_slot(slot):
                yield slot
        finally:
            with self._lock:
                self._free.append(slot)
